// Package deepod is a from-scratch Go implementation of DeepOD, the
// origin–destination travel-time estimation model of "Effective Travel Time
// Estimation: When Historical Trajectories over Road Networks Matter"
// (Yuan, Li, Bao, Feng; SIGMOD 2020), together with every substrate the
// paper depends on: road networks, map matching, a traffic and taxi-order
// simulator (the stand-in for the proprietary ride-hailing datasets),
// node2vec-style graph embeddings, and the five baselines the paper
// compares against.
//
// The quickest path from zero to an estimate:
//
//	city, _ := deepod.BuildCity("chengdu-s", deepod.CityOptions{Orders: 4000})
//	est, _ := deepod.Train(deepod.SmallConfig(), city, nil)
//	eta := est.Estimate(&city.Split.Test[0].Matched) // seconds
//
// Everything the examples and CLIs use flows through this package; the
// internal packages carry the implementation.
package deepod

import (
	"context"
	"fmt"
	"math"
	"time"

	"deepod/internal/citysim"
	"deepod/internal/core"
	"deepod/internal/dataset"
	"deepod/internal/experiments"
	"deepod/internal/geo"
	"deepod/internal/mapmatch"
	"deepod/internal/metrics"
	"deepod/internal/models"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// Re-exported domain types. The aliases make the public API self-contained
// while keeping one definition of each type.
type (
	// Config holds DeepOD's hyper-parameters (paper notation).
	Config = core.Config
	// TrainOptions tunes the training loop.
	TrainOptions = core.TrainOptions
	// TrainStats reports training outcomes (validation curve, convergence).
	TrainStats = core.TrainStats
	// Model is the trained DeepOD network.
	Model = core.Model

	// TripRecord is one taxi order (OD input + trajectory + travel time).
	TripRecord = traj.TripRecord
	// ODInput is an origin, destination and departure time (Definition 2).
	ODInput = traj.ODInput
	// MatchedOD is an OD input matched onto road segments.
	MatchedOD = traj.MatchedOD
	// Trajectory is a spatio-temporal path plus position ratios (Def. 1).
	Trajectory = traj.Trajectory

	// Graph is a directed, weighted road network (paper §2).
	Graph = roadnet.Graph
	// Split is a chronological train/valid/test partition.
	Split = dataset.Split

	// Estimator is any trained travel-time predictor (DeepOD or baseline).
	Estimator = models.Estimator
	// Trainable is an Estimator that can be fitted to trip records.
	Trainable = models.Trainable

	// Point is a planar position in meters.
	Point = geo.Point
)

// Configuration constructors (see core.PaperConfig / core.SmallConfig).
var (
	// PaperConfig returns the paper's §6.2 hyper-parameters.
	PaperConfig = core.PaperConfig
	// SmallConfig returns laptop-scale hyper-parameters.
	SmallConfig = core.SmallConfig
)

// Metrics of the paper's §6.1 (fractions, not percentages).
var (
	MAE  = metrics.MAE
	MAPE = metrics.MAPE
	MARE = metrics.MARE
)

// City bundles a synthetic city: the road network, the traffic field, the
// generated taxi orders and their chronological 42:7:12 split.
type City struct {
	Name    string
	Graph   *Graph
	Traffic *citysim.Traffic
	Grid    *citysim.SpeedGridder
	Records []TripRecord
	Split   Split
}

// CityOptions tunes BuildCity.
type CityOptions struct {
	// Orders is the number of taxi orders to synthesize (default 2000).
	Orders int
	// HorizonDays is the simulated time span (default 28).
	HorizonDays int
	// GridCellMeters / GridPeriod configure the traffic-condition grids
	// (defaults 250 m / 5 min, the paper's settings).
	GridCellMeters float64
	GridPeriod     time.Duration
	// Seed makes the city reproducible (default 1).
	Seed int64
}

// BuildCity generates one of the named synthetic cities ("chengdu-s",
// "xian-s", "beijing-s") with taxi orders and splits. These presets mirror
// the relative sizes of the paper's three road networks.
func BuildCity(name string, opts CityOptions) (*City, error) {
	if opts.Orders <= 0 {
		opts.Orders = 2000
	}
	if opts.HorizonDays <= 0 {
		opts.HorizonDays = 28
	}
	if opts.GridCellMeters <= 0 {
		opts.GridCellMeters = 250
	}
	if opts.GridPeriod <= 0 {
		opts.GridPeriod = 5 * time.Minute
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	ccfg, err := roadnet.CityPreset(name)
	if err != nil {
		return nil, err
	}
	ccfg.Seed += opts.Seed
	g, err := roadnet.GenerateCity(ccfg)
	if err != nil {
		return nil, err
	}
	tf, err := citysim.NewTraffic(g, float64(opts.HorizonDays)*86400, opts.Seed+7)
	if err != nil {
		return nil, err
	}
	grid, err := citysim.NewSpeedGridder(tf, opts.GridCellMeters, opts.GridPeriod.Seconds())
	if err != nil {
		return nil, err
	}
	gen, err := citysim.NewGenerator(tf, grid, citysim.DefaultOrderConfig(opts.Orders, opts.Seed+13))
	if err != nil {
		return nil, err
	}
	records, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	split, err := dataset.PaperSplit(records)
	if err != nil {
		return nil, err
	}
	return &City{Name: name, Graph: g, Traffic: tf, Grid: grid, Records: records, Split: split}, nil
}

// Train builds a DeepOD model over the city's road network and fits it on
// the city's training/validation splits. opts may be nil for defaults.
func Train(cfg Config, city *City, opts *TrainOptions) (*Model, error) {
	m, err := core.New(cfg, city.Graph)
	if err != nil {
		return nil, err
	}
	var o TrainOptions
	if opts != nil {
		o = *opts
	}
	if _, err := m.Train(city.Split.Train, city.Split.Valid, o); err != nil {
		return nil, err
	}
	return m, nil
}

// TrainWithStats is Train but also returns the training statistics.
func TrainWithStats(cfg Config, city *City, opts *TrainOptions) (*Model, *TrainStats, error) {
	m, err := core.New(cfg, city.Graph)
	if err != nil {
		return nil, nil, err
	}
	var o TrainOptions
	if opts != nil {
		o = *opts
	}
	stats, err := m.Train(city.Split.Train, city.Split.Valid, o)
	if err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// Baseline constructs an untrained baseline by name: "TEMP", "LR", "GBM",
// "STNN", "MURAT" or "RouteETA" (the route-based extension estimator).
func Baseline(name string, g *Graph) (Trainable, error) {
	switch name {
	case "TEMP":
		return models.NewTEMP(g), nil
	case "LR":
		return models.NewLinReg(g), nil
	case "GBM":
		return models.NewGBM(g), nil
	case "STNN":
		return models.NewSTNN(g), nil
	case "MURAT":
		return models.NewMURAT(g), nil
	case "RouteETA":
		return models.NewRouteETA(g), nil
	}
	return nil, fmt.Errorf("deepod: unknown baseline %q (want TEMP, LR, GBM, STNN, MURAT or RouteETA)", name)
}

// NewMatcher builds an HMM map matcher over a road network, for aligning
// raw GPS input to segments (the paper's §2 preprocessing).
func NewMatcher(g *Graph) (*mapmatch.Matcher, error) {
	return mapmatch.New(g, mapmatch.DefaultConfig())
}

// MatchOD snaps an OD input's endpoints to road segments, producing the
// MatchedOD representation the models consume.
func MatchOD(m *mapmatch.Matcher, od ODInput) (MatchedOD, error) {
	return MatchODCtx(context.Background(), m, od)
}

// MatchODCtx is MatchOD with trace context: inside a traced request the
// two mapmatch.point spans join the request's span tree.
func MatchODCtx(ctx context.Context, m *mapmatch.Matcher, od ODInput) (MatchedOD, error) {
	oe, of, err := m.MatchPointCtx(ctx, od.Origin)
	if err != nil {
		return MatchedOD{}, fmt.Errorf("deepod: matching origin: %w", err)
	}
	de, df, err := m.MatchPointCtx(ctx, od.Dest)
	if err != nil {
		return MatchedOD{}, fmt.Errorf("deepod: matching destination: %w", err)
	}
	return MatchedOD{
		OriginEdge: oe, DestEdge: de,
		RStart: of, REnd: 1 - df,
		DepartSec: od.DepartSec,
		External:  od.External,
	}, nil
}

// Evaluate computes MAE (seconds), MAPE and MARE (fractions) of an
// estimator over test records.
func Evaluate(est Estimator, test []TripRecord) (mae, mape, mare float64) {
	actual := make([]float64, len(test))
	pred := make([]float64, len(test))
	for i := range test {
		actual[i] = test[i].TravelSec
		pred[i] = est.Estimate(&test[i].Matched)
	}
	return metrics.MAE(actual, pred), metrics.MAPE(actual, pred), metrics.MARE(actual, pred)
}

// ErrorRefDist bins the per-sample absolute errors of est over test into a
// reference distribution — the drift baseline internal/quality compares
// live serving errors against. ttetrain records it into the checkpoint so
// tteserve can arm drift detection on load.
func ErrorRefDist(est Estimator, test []TripRecord) *metrics.RefDist {
	d := metrics.NewRefDist(nil)
	for i := range test {
		d.Observe(math.Abs(test[i].TravelSec - est.Estimate(&test[i].Matched)))
	}
	return d
}

// Experiment scales for the benchmark harness (see internal/experiments).
var (
	// TinyScale checks plumbing in seconds.
	TinyScale = experiments.TinyScale
	// ShapeScale reproduces the headline comparison on one city.
	ShapeScale = experiments.ShapeScale
	// SmallScale is the full three-city harness scale.
	SmallScale = experiments.SmallScale
)
