# Convenience targets; `make check` is the PR gate (see scripts/check.sh).

.PHONY: build test check race fmt bench servebench

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

race:
	go test -race ./internal/obs/... ./internal/serve/... ./internal/metrics/... ./internal/infer/...
	go test -race -run 'ConcurrentSafe' ./internal/core/

fmt:
	gofmt -w .

bench:
	go test -run '^$$' -bench=. ./internal/infer/

servebench:
	go run ./cmd/ttebench -servebench
