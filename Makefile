# Convenience targets; `make check` is the PR gate (see scripts/check.sh).

.PHONY: build test check race fmt

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

race:
	go test -race ./internal/obs/... ./internal/serve/... ./internal/metrics/...

fmt:
	gofmt -w .
