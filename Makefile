# Convenience targets; `make check` is the PR gate (see scripts/check.sh).

.PHONY: build test check race fmt bench tracebench qualitybench slobench servebench batchsweep trainbench ingestbench flightbench replaybench telemetrybench

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

race:
	go test -race ./internal/obs/... ./internal/serve/... ./internal/metrics/... ./internal/infer/... ./internal/mapmatch/... ./internal/quality/... ./internal/slo/... ./internal/prof/... ./internal/traffic/... ./internal/recorder/... ./internal/replay/... ./internal/telemetry/...
	go test -race -run 'ConcurrentSafe|Trace|Parallel' ./internal/core/
	go test -race -run 'Parallel' ./internal/embed/

fmt:
	gofmt -w .

bench:
	go test -run '^$$' -bench=. ./internal/infer/

tracebench:
	go test -run 'TestUntracedSpanOverhead' -v ./internal/obs/
	go test -run '^$$' -bench 'BenchmarkSpan|BenchmarkTraceStoreOffer' ./internal/obs/

qualitybench:
	go test -run 'TestPredictionStampDisabledOverhead' -v ./internal/infer/

slobench:
	go test -run 'TestSLORequestAccountingOverhead' -v ./internal/infer/
	go test -run '^$$' -bench 'BenchmarkEvaluatorTick|BenchmarkManagerSet' ./internal/slo/

servebench:
	go run ./cmd/ttebench -servebench -servebench-telemetry-gate 3 -servebench-fused-gate 1.02

batchsweep:
	go run ./cmd/ttebench -servebench -servebench-batch-only -servebench-fused-gate 1.02 \
		-servebench-out BENCH_serve_sweep.json

trainbench:
	go run ./cmd/ttebench -trainbench -trainbench-gate 2

ingestbench:
	go run ./cmd/ttebench -ingestbench -ingestbench-gate-probes 50000 -ingestbench-gate-degrade 0.2

flightbench:
	go test -run 'TestFlightDisabledOverhead' -v ./internal/infer/

replaybench:
	go run ./cmd/ttereplay -smoke -gate-unexplained 0

telemetrybench:
	go test -run 'TestTelemetryDisabledOverhead' -v ./internal/obs/
	go test -race -run 'TestExporterRoundTrip|TestExporterFlappingSink' -v ./internal/telemetry/
