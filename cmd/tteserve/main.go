// Command tteserve exposes OD travel-time estimation over HTTP — the
// paper's "online estimation" stage (Algorithm 1) as a service. It either
// loads a model saved by ttetrain or trains one at startup, then routes
// all estimate traffic through the inference engine (internal/infer):
// bounded admission queue with load shedding, per-worker micro-batching,
// a sharded LRU+TTL estimate cache, and hot model reload.
//
//	tteserve -city chengdu-s -model model.gob -addr :8080
//
//	POST /estimate
//	{"origin":{"X":500,"Y":700},"dest":{"X":1900,"Y":2100},"depart_sec":36000}
//	→ {"travel_seconds":412.7,"travel_human":"6m52s","model":"8c7e12ab90ff"}
//
//	GET  /healthz → {"status":"ok", ...}
//	GET  /version → live model snapshot hash, engine config, build info
//	POST /reload  → re-read -model from disk and atomically swap it in
//	GET  /metrics → Prometheus text exposition (see README "Observability")
//
// SIGHUP triggers the same reload as POST /reload. Errors are JSON:
// {"error": "..."}. With -debug-addr, net/http/pprof is served on a
// separate mux so profiling is never exposed on the public listener.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deepod"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/serve"
	"deepod/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tteserve: ")
	var (
		city      = flag.String("city", "chengdu-s", "city preset")
		orders    = flag.Int("orders", 1200, "orders used if training at startup")
		seed      = flag.Int64("seed", 1, "random seed")
		modelPath = flag.String("model", "", "model saved by ttetrain (empty = train at startup)")
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "maximum /estimate body bytes")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		logReq    = flag.Bool("log-requests", true, "log one line per request")
		logSpans  = flag.Bool("log-spans", false, "log every pipeline span (verbose)")

		direct       = flag.Bool("direct", false, "bypass the inference engine: one synchronous match+estimate per request")
		workers      = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "engine admission queue depth (full queue sheds 429)")
		maxBatch     = flag.Int("batch", 16, "max requests per worker micro-batch")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max queue wait before shedding 503")
		cacheEntries = flag.Int("cache", 8192, "estimate cache capacity in entries (0 = disabled)")
		cacheTTL     = flag.Duration("cache-ttl", 5*time.Minute, "estimate cache entry lifetime")
		cacheCell    = flag.Float64("cache-cell", 250, "spatial quantization cell for cache keys, meters")
	)
	flag.Parse()

	c, err := deepod.BuildCity(*city, deepod.CityOptions{Orders: *orders, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	var snap *infer.Snapshot
	if *modelPath != "" {
		snap, err = infer.LoadCheckpoint(*modelPath, c.Graph)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model %s from %s", snap.ID, *modelPath)
	} else {
		log.Printf("training model on %d orders...", *orders)
		cfg := deepod.SmallConfig()
		m, err := deepod.Train(cfg, c, nil)
		if err != nil {
			log.Fatal(err)
		}
		snap = infer.ModelSnapshot(fmt.Sprintf("startup-train-seed%d", *seed), m)
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		log.Fatal(err)
	}
	match := func(od traj.ODInput) (traj.MatchedOD, error) {
		return deepod.MatchOD(matcher, od)
	}

	if *logSpans {
		obs.SetSpanLogger(func(name, parent string, d time.Duration) {
			if parent != "" {
				name = parent + ">" + name
			}
			log.Printf("span %s %s", name, d.Round(time.Microsecond))
		})
	}
	var logf obs.Logf
	if *logReq {
		logf = log.Printf
	}

	bounds := c.Graph.Bounds()
	scfg := serve.Config{
		City:   c.Name,
		Bounds: &bounds,
		Health: map[string]any{
			"edges": c.Graph.NumEdges(),
			"model": snap.ID,
		},
		MaxBodyBytes: *maxBody,
		Logf:         logf,
	}

	scfg.External = c.Grid.External
	if *direct {
		log.Printf("engine disabled (-direct): serving synchronous per-request path")
		scfg.Match = match
		scfg.Estimate = snap.Estimate
	} else {
		cells, err := roadnet.NewEdgeIndex(c.Graph, *cacheCell)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := infer.New(infer.Config{
			Match:        match,
			Snapshot:     snap,
			Workers:      *workers,
			QueueDepth:   *queueDepth,
			MaxBatch:     *maxBatch,
			QueueTimeout: *queueTimeout,
			CacheEntries: *cacheEntries,
			CacheTTL:     *cacheTTL,
			Cells:        cells,
			Slotter:      snap.Slotter,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		scfg.Infer = eng.Do
		scfg.Version = eng.Version

		reload := func() (map[string]any, error) {
			if *modelPath == "" {
				return nil, fmt.Errorf("server was started without -model; nothing to reload from")
			}
			next, err := infer.LoadCheckpoint(*modelPath, c.Graph)
			if err != nil {
				return nil, err
			}
			prev, err := eng.Swap(next)
			if err != nil {
				return nil, err
			}
			log.Printf("reloaded model %s (was %s)", next.ID, prev.ID)
			return map[string]any{"model": next.ID, "previous": prev.ID}, nil
		}
		scfg.Reload = reload

		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if _, err := reload(); err != nil {
					log.Printf("SIGHUP reload: %v", err)
				}
			}
		}()
		log.Printf("engine: %d workers, queue %d, batch %d, cache %d entries (TTL %s, cell %.0fm)",
			eng.Version()["workers"], *queueDepth, *maxBatch, *cacheEntries, *cacheTTL, *cacheCell)
	}

	srv, err := serve.New(scfg)
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		go func() {
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
			log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hsrv := serve.NewHTTPServer(*addr, srv.Handler())
	log.Printf("serving %s on %s (metrics at /metrics)", *city, *addr)
	if err := serve.ListenAndServe(ctx, hsrv, *grace, log.Printf); err != nil {
		log.Fatal(err)
	}
	log.Printf("bye")
}
