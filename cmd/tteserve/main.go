// Command tteserve exposes OD travel-time estimation over HTTP — the
// paper's "online estimation" stage (Algorithm 1) as a service. It either
// loads a model saved by ttetrain or trains one at startup, then answers
// JSON estimation requests:
//
//	tteserve -city chengdu-s -model model.gob -addr :8080
//
//	POST /estimate
//	{"origin":{"X":500,"Y":700},"dest":{"X":1900,"Y":2100},"depart_sec":36000}
//	→ {"travel_seconds":412.7,"travel_human":"6m52s"}
//
//	GET /healthz → {"status":"ok", ...}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"deepod"
	"deepod/internal/core"
	"deepod/internal/mapmatch"
)

type server struct {
	city    *deepod.City
	model   *core.Model
	matcher *mapmatch.Matcher
}

type estimateRequest struct {
	Origin    deepod.Point `json:"origin"`
	Dest      deepod.Point `json:"dest"`
	DepartSec float64      `json:"depart_sec"`
}

type estimateResponse struct {
	TravelSeconds float64 `json:"travel_seconds"`
	TravelHuman   string  `json:"travel_human"`
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req estimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.DepartSec < 0 {
		http.Error(w, "depart_sec must be non-negative", http.StatusBadRequest)
		return
	}
	od := deepod.ODInput{
		Origin: req.Origin, Dest: req.Dest, DepartSec: req.DepartSec,
		External: s.city.Grid.External(req.DepartSec),
	}
	matched, err := deepod.MatchOD(s.matcher, od)
	if err != nil {
		http.Error(w, fmt.Sprintf("map matching failed: %v", err), http.StatusUnprocessableEntity)
		return
	}
	sec := s.model.Estimate(&matched)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(estimateResponse{
		TravelSeconds: sec,
		TravelHuman:   time.Duration(sec * float64(time.Second)).Round(time.Second).String(),
	})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status":  "ok",
		"city":    s.city.Name,
		"edges":   s.city.Graph.NumEdges(),
		"weights": s.model.NumWeights(),
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tteserve: ")
	var (
		city      = flag.String("city", "chengdu-s", "city preset")
		orders    = flag.Int("orders", 1200, "orders used if training at startup")
		seed      = flag.Int64("seed", 1, "random seed")
		modelPath = flag.String("model", "", "model saved by ttetrain (empty = train at startup)")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	c, err := deepod.BuildCity(*city, deepod.CityOptions{Orders: *orders, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	var m *core.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err = core.Load(f, c.Graph)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model from %s", *modelPath)
	} else {
		log.Printf("training model on %d orders...", *orders)
		cfg := deepod.SmallConfig()
		m, err = deepod.Train(cfg, c, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{city: c, model: m, matcher: matcher}
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/healthz", s.handleHealth)
	log.Printf("serving %s on %s", *city, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
