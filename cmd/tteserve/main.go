// Command tteserve exposes OD travel-time estimation over HTTP — the
// paper's "online estimation" stage (Algorithm 1) as a service. It either
// loads a model saved by ttetrain or trains one at startup, then answers
// JSON estimation requests:
//
//	tteserve -city chengdu-s -model model.gob -addr :8080
//
//	POST /estimate
//	{"origin":{"X":500,"Y":700},"dest":{"X":1900,"Y":2100},"depart_sec":36000}
//	→ {"travel_seconds":412.7,"travel_human":"6m52s"}
//
//	GET /healthz → {"status":"ok", ...}
//	GET /metrics → Prometheus text exposition (see README "Observability")
//
// Errors are JSON: {"error": "..."}. With -debug-addr, net/http/pprof is
// served on a separate mux so profiling is never exposed on the public
// listener. SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deepod"
	"deepod/internal/core"
	"deepod/internal/obs"
	"deepod/internal/serve"
	"deepod/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tteserve: ")
	var (
		city      = flag.String("city", "chengdu-s", "city preset")
		orders    = flag.Int("orders", 1200, "orders used if training at startup")
		seed      = flag.Int64("seed", 1, "random seed")
		modelPath = flag.String("model", "", "model saved by ttetrain (empty = train at startup)")
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "maximum /estimate body bytes")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		logReq    = flag.Bool("log-requests", true, "log one line per request")
		logSpans  = flag.Bool("log-spans", false, "log every pipeline span (verbose)")
	)
	flag.Parse()

	c, err := deepod.BuildCity(*city, deepod.CityOptions{Orders: *orders, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	var m *core.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err = core.Load(f, c.Graph)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model from %s", *modelPath)
	} else {
		log.Printf("training model on %d orders...", *orders)
		cfg := deepod.SmallConfig()
		m, err = deepod.Train(cfg, c, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		log.Fatal(err)
	}

	if *logSpans {
		obs.SetSpanLogger(func(name, parent string, d time.Duration) {
			if parent != "" {
				name = parent + ">" + name
			}
			log.Printf("span %s %s", name, d.Round(time.Microsecond))
		})
	}
	var logf obs.Logf
	if *logReq {
		logf = log.Printf
	}
	srv, err := serve.New(serve.Config{
		City: c.Name,
		Match: func(od traj.ODInput) (traj.MatchedOD, error) {
			return deepod.MatchOD(matcher, od)
		},
		Estimate: m.Estimate,
		External: c.Grid.External,
		Health: map[string]any{
			"edges":   c.Graph.NumEdges(),
			"weights": m.NumWeights(),
		},
		MaxBodyBytes: *maxBody,
		Logf:         logf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		go func() {
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
			log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hsrv := serve.NewHTTPServer(*addr, srv.Handler())
	log.Printf("serving %s on %s (metrics at /metrics)", *city, *addr)
	if err := serve.ListenAndServe(ctx, hsrv, *grace, log.Printf); err != nil {
		log.Fatal(err)
	}
	log.Printf("bye")
}
