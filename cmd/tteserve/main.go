// Command tteserve exposes OD travel-time estimation over HTTP — the
// paper's "online estimation" stage (Algorithm 1) as a service. It either
// loads a model saved by ttetrain or trains one at startup, then routes
// all estimate traffic through the inference engine (internal/infer):
// bounded admission queue with load shedding, per-worker micro-batching,
// a sharded LRU+TTL estimate cache, and hot model reload.
//
//	tteserve -city chengdu-s -model model.gob -addr :8080
//
//	POST /estimate
//	{"origin":{"X":500,"Y":700},"dest":{"X":1900,"Y":2100},"depart_sec":36000}
//	→ {"travel_seconds":412.7,"travel_human":"6m52s","model":"8c7e12ab90ff"}
//
//	GET  /healthz      → {"status":"ok", ...} (liveness)
//	GET  /readyz       → 200 when serving, 503 while not ready (readiness)
//	GET  /version      → live model snapshot hash, engine config, build info
//	POST /reload       → re-read -model from disk and atomically swap it in
//	GET  /metrics      → Prometheus text exposition (see README "Observability")
//	GET  /debug/traces → tail-sampled request traces as JSON
//	GET  /debug/slo    → SLO status: per-objective SLI, error budget, burn rates
//	GET  /debug/alerts → firing alerts and transition history
//	GET  /debug/profiles → alert-triggered profile bundles (list + pprof download)
//	POST /probes       → NDJSON GPS probe firehose feeding the live traffic store (with -traffic)
//	GET  /debug/traffic → live traffic pipeline state: probes, coverage, epoch (with -traffic)
//	GET  /debug/recorder → flight-recorder wide events + segment downloads (with -recorder)
//	GET  /debug/metrics/history → queryable in-process metric history (with -telemetry)
//	GET  /debug/dashboard → unified ops view: SLO, alerts, quality, traffic, sparklines
//
// With -telemetry (default on) a history sampler ticks the metrics
// registry every -telemetry-interval into per-series bounded rings (a raw
// tier plus a coarse long-horizon tier), queryable at
// /debug/metrics/history?series=...&range=...&agg=... and charted on
// /debug/dashboard. With -exemplars, histogram observations on traced
// requests carry their trace ID: /metrics?exemplars=1 exposes them in
// OpenMetrics exemplar syntax and /debug/metrics/history returns them
// next to each series, resolvable at /debug/traces?trace=<id>. With
// -export-endpoint the sampled history is pushed as OTLP-shaped JSON
// batches every -export-interval with bounded queueing, exponential
// backoff and shed-on-overflow.
//
// With -recorder, every served estimate is offered to the flight recorder:
// errors and shed requests are always captured, the slowest N per window
// and a -recorder-sample fraction of the rest ride along, and with
// -recorder-dir the captures append to rotating JSONL segment files that
// ttereplay can re-execute offline against a checkpoint.
//
// With -traffic, GPS probes posted to /probes stream through incremental
// map matching into a sharded per-edge speed store; the engine then reads
// the live speed field (merged over the training-time prior) at estimate
// time, falling back to the prior whenever the store is cold or the
// requested departure is far from the probe high-water mark
// (-traffic-stale-sec). The -traffic-* flags tune workers, windowing,
// decay, coverage and staleness.
//
// With -slo (default on) the SLO engine evaluates burn-rate alert rules
// over the built-in objectives (availability, latency, shed rate of
// /estimate) every -slo-interval; -slo-config swaps in custom objectives
// and rules, -burn-fast tunes the default page rule, and firing alerts
// capture CPU/heap/goroutine profiles (-profile-on-alert, -profile-dir).
// The quality monitor's drift alert routes through the same manager.
//
// Every request is traced: the trace ID is taken from X-Trace-Id (or
// generated), echoed in the response, stamped on every log line, and the
// slowest / errored traces are retained at /debug/traces. Logging is
// structured (log/slog): error responses always log, success access logs
// are sampled with -log-every.
//
// SIGHUP triggers the same reload as POST /reload. Errors are JSON:
// {"error": "..."}. With -debug-addr, net/http/pprof is served on a
// separate mux so profiling is never exposed on the public listener.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"deepod"
	"deepod/internal/core"
	"deepod/internal/infer"
	"deepod/internal/mapmatch"
	"deepod/internal/obs"
	"deepod/internal/prof"
	"deepod/internal/quality"
	"deepod/internal/recorder"
	"deepod/internal/roadnet"
	"deepod/internal/serve"
	"deepod/internal/slo"
	"deepod/internal/telemetry"
	"deepod/internal/traffic"
	"deepod/internal/traj"
)

// modelEstimator adapts *core.Model to the Estimator interface for the
// startup-train reference-distribution pass.
type modelEstimator struct{ m *core.Model }

func (e *modelEstimator) Name() string                          { return "DeepOD" }
func (e *modelEstimator) Estimate(od *deepod.MatchedOD) float64 { return e.m.Estimate(od) }

// recorderOrNil keeps a nil *quality.Monitor from becoming a non-nil
// PredictionRecorder interface on the engine config.
func recorderOrNil(mon *quality.Monitor) infer.PredictionRecorder {
	if mon == nil {
		return nil
	}
	return mon
}

// alertSinkOrNil keeps a nil *slo.Manager from becoming a non-nil
// AlertSink interface on the quality config.
func alertSinkOrNil(m *slo.Manager) quality.AlertSink {
	if m == nil {
		return nil
	}
	return m
}

func main() {
	var (
		city      = flag.String("city", "chengdu-s", "city preset")
		orders    = flag.Int("orders", 1200, "orders used if training at startup")
		seed      = flag.Int64("seed", 1, "random seed")
		modelPath = flag.String("model", "", "model saved by ttetrain (empty = train at startup)")
		trainWork = flag.Int("train-workers", runtime.GOMAXPROCS(0), "data-parallel workers for startup training; 1 = serial")
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "maximum /estimate body bytes")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logEvery  = flag.Int("log-every", 1, "sample success access logs: log every Nth 2xx/3xx request (errors always log)")
		logSpans  = flag.Bool("log-spans", false, "log every pipeline span (verbose)")

		direct       = flag.Bool("direct", false, "bypass the inference engine: one synchronous match+estimate per request")
		workers      = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "engine admission queue depth (full queue sheds 429)")
		maxBatch     = flag.Int("batch", 16, "max requests per worker micro-batch; batches of 2+ are served by one fused [B×d] forward, bit-identical to per-request estimates")
		useF32       = flag.Bool("f32", false, "serve the checkpoint through the quantized float32 head; refused unless its accuracy gate passes on the checkpoint's calibration set (requires -model)")
		f32Threshold = flag.Float64("f32-threshold", core.DefaultF32Threshold, "max relative MAE delta (f32 vs f64) the float32 head may show before being refused")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max queue wait before shedding 503")
		cacheEntries = flag.Int("cache", 8192, "estimate cache capacity in entries (0 = disabled)")
		cacheTTL     = flag.Duration("cache-ttl", 5*time.Minute, "estimate cache entry lifetime")
		cacheCell    = flag.Float64("cache-cell", 250, "spatial quantization cell for cache keys, meters")

		trafficOn      = flag.Bool("traffic", false, "live traffic: POST /probes GPS firehose → incremental map matching → edge-speed store feeding serving-time features (engine path only)")
		trafficWorkers = flag.Int("traffic-workers", 1, "probe map-matching workers (vehicles are hash-partitioned across them)")
		trafficWindowS = flag.Float64("traffic-window-sec", 60, "edge-speed aggregation window, sim seconds")
		trafficWindows = flag.Int("traffic-windows", 5, "speed windows retained per edge (ring)")
		trafficDecay   = flag.Float64("traffic-decay", 0.7, "age-decay multiplier applied per window of staleness")
		trafficStaleS  = flag.Float64("traffic-stale-sec", 600, "live speeds further than this from the requested departure fall back to the training-time prior")
		trafficMinCov  = flag.Float64("traffic-min-coverage", 0.02, "edge-coverage fraction below which estimates keep using the prior")
		trafficCell    = flag.Float64("traffic-cell", 250, "live feature grid cell, meters (must match the model's speed grid)")
		trafficTTLS    = flag.Float64("traffic-session-ttl-sec", 300, "idle vehicle-session eviction TTL, sim seconds")
		trafficMaxBody = flag.Int64("traffic-max-body", serve.DefaultProbeMaxBodyBytes, "maximum /probes body bytes")

		traceCap     = flag.Int("trace-capacity", 512, "retained trace ring-buffer size")
		traceSlowest = flag.Int("trace-slowest", 16, "always retain the slowest N traces per window")
		traceWindow  = flag.Duration("trace-window", 10*time.Second, "slowest-N rotation window")
		traceSample  = flag.Float64("trace-sample", 0.01, "probability of retaining a normal (non-error, non-slow) trace")

		runtimeEvery = flag.Duration("runtime-stats", 10*time.Second, "runtime stats (goroutines, heap, GC) sampling period; 0 disables")

		qualityOn      = flag.Bool("quality", true, "online model-quality monitoring: stamp predictions, accept POST /feedback, serve GET /debug/quality (engine path only)")
		qualityWindow  = flag.Duration("quality-window", time.Minute, "quality metric aggregation window")
		pendingTTL     = flag.Duration("pending-ttl", 10*time.Minute, "how long a stamped prediction waits for feedback before expiring")
		driftThreshold = flag.Float64("drift-threshold", 0.2, "PSI above which the error distribution counts as drifted")

		recorderOn        = flag.Bool("recorder", false, "flight recorder: capture a wide event per served estimate, GET /debug/recorder (engine path only)")
		recorderDir       = flag.String("recorder-dir", "", "mirror captured wide events to JSONL segment files in this directory (empty = in-memory only)")
		recorderSample    = flag.Float64("recorder-sample", 0.01, "probability of capturing a normal (non-error, non-slow) estimate; errors and shed requests are always captured")
		recorderCap       = flag.Int("recorder-capacity", 4096, "in-memory wide-event ring size, events")
		recorderSlowest   = flag.Int("recorder-slowest", 16, "always capture the slowest N estimates per capture window")
		recorderSegEvents = flag.Int("recorder-segment-events", 4096, "rotate the on-disk segment file after this many events")
		recorderSegments  = flag.Int("recorder-segments", 8, "segment files retained on disk (oldest deleted beyond this)")

		telemetryOn       = flag.Bool("telemetry", true, "history sampler: in-process metric history at /debug/metrics/history and dashboard sparklines")
		telemetryInterval = flag.Duration("telemetry-interval", 10*time.Second, "history sampling period (raw tier)")
		exemplarsOn       = flag.Bool("exemplars", false, "attach trace-ID exemplars to histogram observations (exposed at /metrics?exemplars=1 and in /debug/metrics/history)")
		exportEndpoint    = flag.String("export-endpoint", "", "push sampled metric history as OTLP-shaped JSON to this HTTP endpoint (empty = disabled)")
		exportInterval    = flag.Duration("export-interval", 15*time.Second, "metric history push period")

		sloOn       = flag.Bool("slo", true, "SLO engine: burn-rate alerting over the built-in objectives, GET /debug/slo and /debug/alerts")
		sloConfig   = flag.String("slo-config", "", "JSON file with custom SLO objectives and burn rules (empty = built-in defaults)")
		sloInterval = flag.Duration("slo-interval", 10*time.Second, "SLO evaluation period (a -slo-config interval_sec overrides)")
		burnFast    = flag.Float64("burn-fast", 14.4, "fast-window burn-rate threshold for the default page rule")
		profOnAlert = flag.Bool("profile-on-alert", true, "capture a CPU/heap/goroutine profile bundle when an alert fires")
		profileDir  = flag.String("profile-dir", "", "mirror captured profiles to this directory (empty = in-memory only)")
	)
	flag.Parse()

	// Structured logging: every line carries trace_id when the context
	// does, which is how a log line is joined to its /debug/traces entry.
	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(obs.NewTraceHandler(h)).With("app", "tteserve")
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	c, err := deepod.BuildCity(*city, deepod.CityOptions{Orders: *orders, Seed: *seed})
	if err != nil {
		fatal("building city", err)
	}
	ckptOpts := infer.CheckpointOptions{Float32: *useF32, F32Threshold: *f32Threshold}
	var snap *infer.Snapshot
	if *modelPath != "" {
		snap, err = infer.LoadCheckpointOpts(context.Background(), *modelPath, c.Graph, ckptOpts)
		if err != nil {
			fatal("loading checkpoint", err)
		}
		logger.Info("model loaded", "model", snap.ID, "path", *modelPath, "f32", *useF32)
	} else {
		if *useF32 {
			fatal("flag error", fmt.Errorf("-f32 requires -model: the gate replays the checkpoint's calibration set"))
		}
		logger.Info("training model at startup", "orders", *orders, "train_workers", *trainWork)
		cfg := deepod.SmallConfig()
		cfg.TrainWorkers = *trainWork
		m, err := deepod.Train(cfg, c, nil)
		if err != nil {
			fatal("startup training", err)
		}
		// A startup-trained model has no checkpoint to carry a drift
		// reference, so record its test-split error distribution here.
		m.SetRefDist(deepod.ErrorRefDist(&modelEstimator{m}, c.Split.Test))
		snap = infer.ModelSnapshot(fmt.Sprintf("startup-train-seed%d", *seed), m)
	}
	// tte_build_info: constant-1 gauge whose labels identify this binary
	// and the checkpoint it serves — dashboards join it to split any panel
	// by deploy. The same fields appear in GET /version.
	obs.RegisterBuildInfo(nil, "model", snap.ID, "city", c.Name)

	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		fatal("building matcher", err)
	}
	match := func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error) {
		return deepod.MatchODCtx(ctx, matcher, od)
	}

	if *logSpans {
		obs.SetSpanLogger(func(name, parent string, d time.Duration) {
			if parent != "" {
				name = parent + ">" + name
			}
			logger.Debug("span", "span", name, "dur", d.Round(time.Microsecond))
		})
		// Span logging is Debug-level; re-build the logger so it shows.
		opts := &slog.HandlerOptions{Level: slog.LevelDebug}
		if *logJSON {
			h = slog.NewJSONHandler(os.Stderr, opts)
		} else {
			h = slog.NewTextHandler(os.Stderr, opts)
		}
		logger = slog.New(obs.NewTraceHandler(h)).With("app", "tteserve")
	}

	if *runtimeEvery > 0 {
		stopRuntime := obs.StartRuntimeStats(nil, *runtimeEvery)
		defer stopRuntime()
	}
	traces := obs.NewTraceStore(nil, obs.TraceStoreConfig{
		Capacity:   *traceCap,
		SlowestN:   *traceSlowest,
		Window:     *traceWindow,
		SampleRate: *traceSample,
	})

	// Telemetry history: the sampler ticks the default registry into
	// bounded per-series rings; the exporter (when an endpoint is given)
	// pushes the deltas out with backoff and bounded queueing. Exemplars
	// are process-global: once on, traced requests stamp their trace ID
	// onto histogram observations.
	obs.SetExemplars(*exemplarsOn)
	var (
		history  *telemetry.History
		exporter *telemetry.Exporter
	)
	if *telemetryOn {
		history, err = telemetry.NewHistory(telemetry.Config{
			Interval: *telemetryInterval,
			Logger:   logger,
		})
		if err != nil {
			fatal("building telemetry history", err)
		}
		history.Start()
		defer history.Close()
		if *exportEndpoint != "" {
			hostname, _ := os.Hostname()
			exporter, err = telemetry.NewExporter(telemetry.ExportConfig{
				Endpoint: *exportEndpoint,
				Interval: *exportInterval,
				History:  history,
				Instance: hostname,
				Logger:   logger,
			})
			if err != nil {
				fatal("building telemetry exporter", err)
			}
			exporter.Start()
			defer exporter.Close()
			logger.Info("telemetry export on", "endpoint", *exportEndpoint, "interval", *exportInterval)
		}
	} else if *exportEndpoint != "" {
		logger.Info("-export-endpoint needs -telemetry; export disabled")
	}

	// The SLO/alerting layer is assembled before the engine branch so the
	// quality monitor can route its drift alert through the same manager.
	var (
		alertMgr *slo.Manager
		profiler *prof.Profiler
		sloEval  *slo.Evaluator
	)
	if *sloOn {
		alertMgr = slo.NewManager(slo.ManagerConfig{Logger: logger})
		profiler, err = prof.New(prof.Config{Dir: *profileDir, Logger: logger})
		if err != nil {
			fatal("building profiler", err)
		}
		defer profiler.Close()
		if *profOnAlert {
			alertMgr.Subscribe(func(ev slo.Event) {
				if ev.State == slo.StateFiring {
					profiler.TriggerAsync("alert:"+ev.Name, ev.Labels)
				}
			})
		}
		objectives := slo.DefaultObjectives()
		rules := slo.DefaultRules(*burnFast)
		interval := *sloInterval
		if *sloConfig != "" {
			var cfgInterval time.Duration
			objectives, rules, cfgInterval, err = slo.LoadConfig(*sloConfig)
			if err != nil {
				fatal("loading SLO config", err)
			}
			if cfgInterval > 0 {
				interval = cfgInterval
			}
		}
		sloEval, err = slo.New(slo.Config{
			Objectives: objectives,
			Rules:      rules,
			Interval:   interval,
			Manager:    alertMgr,
			Logger:     logger,
		})
		if err != nil {
			fatal("building SLO evaluator", err)
		}
		sloEval.Start()
		defer sloEval.Close()
	}

	bounds := c.Graph.Bounds()
	scfg := serve.Config{
		City:   c.Name,
		Bounds: &bounds,
		Health: map[string]any{
			"edges": c.Graph.NumEdges(),
			"model": snap.ID,
		},
		MaxBodyBytes:   *maxBody,
		Logger:         logger,
		AccessLogEvery: *logEvery,
		Traces:         traces,
		SLO:            sloEval,
		Alerts:         alertMgr,
		Profiles:       profiler,
		History:        history,
		Exporter:       exporter,
	}

	scfg.External = c.Grid.External
	if *direct {
		logger.Info("engine disabled (-direct): serving synchronous per-request path")
		if *qualityOn {
			logger.Info("quality monitoring needs the engine path for prediction stamping; disabled under -direct")
		}
		if *trafficOn {
			logger.Info("live traffic needs the engine path to bind serving-time features; disabled under -direct")
		}
		scfg.Match = match
		scfg.Estimate = snap.Estimate
	} else {
		cells, err := roadnet.NewEdgeIndex(c.Graph, *cacheCell)
		if err != nil {
			fatal("building cache quantizer", err)
		}
		var mon *quality.Monitor
		if *qualityOn {
			mon = quality.New(quality.Config{
				Window:         *qualityWindow,
				PendingTTL:     *pendingTTL,
				DriftThreshold: *driftThreshold,
				Reference:      snap.RefDist,
				ReferenceModel: snap.ID,
				Cells:          cells, // same quantizer as the estimate cache
				Slotter:        snap.Slotter,
				Logger:         logger,
				Alerts:         alertSinkOrNil(alertMgr),
			})
			if snap.RefDist == nil {
				logger.Info("quality: no reference error distribution in the model; drift detection off until a reload provides one")
			}
		}
		// Live traffic pipeline: probes posted to /probes flow through
		// incremental map matching into the edge-speed store; the engine
		// reads the merged live/prior speed field at estimate time.
		var liveTraffic *traffic.FeatureSource
		if *trafficOn {
			store, err := traffic.NewStore(c.Graph, traffic.StoreConfig{
				WindowSec: *trafficWindowS,
				Windows:   *trafficWindows,
				Decay:     *trafficDecay,
			})
			if err != nil {
				fatal("building traffic store", err)
			}
			ing, err := traffic.NewIngestor(matcher, store, traffic.IngestConfig{
				Workers: *trafficWorkers,
				Tracker: mapmatch.TrackerConfig{SessionTTLSec: *trafficTTLS},
			})
			if err != nil {
				fatal("building traffic ingestor", err)
			}
			defer ing.Close()
			liveTraffic, err = traffic.NewFeatureSource(c.Graph, store, c.Grid.External, traffic.FeatureConfig{
				CellMeters:    *trafficCell,
				MinCoverage:   *trafficMinCov,
				StaleAfterSec: *trafficStaleS,
			})
			if err != nil {
				fatal("building traffic feature source", err)
			}
			scfg.Probes = ing
			scfg.TrafficStatus = ing.Status
			scfg.ProbeMaxBodyBytes = *trafficMaxBody
			logger.Info("live traffic ingestion on",
				"workers", *trafficWorkers,
				"window_sec", *trafficWindowS,
				"windows", *trafficWindows,
				"stale_sec", *trafficStaleS,
				"min_coverage", *trafficMinCov,
			)
		}
		// Flight recorder: one wide event per served estimate, policy-
		// sampled, mirrored to disk with -recorder-dir so a recorded
		// session can be replayed offline by ttereplay.
		var flight *recorder.Recorder
		if *recorderOn {
			flight, err = recorder.New(recorder.Config{
				Capacity:      *recorderCap,
				SlowestN:      *recorderSlowest,
				SampleRate:    *recorderSample,
				Cells:         cells, // same quantizer as the estimate cache
				Slotter:       snap.Slotter,
				Dir:           *recorderDir,
				SegmentEvents: *recorderSegEvents,
				MaxSegments:   *recorderSegments,
				Meta:          map[string]string{"city": c.Name, "model": snap.ID},
			})
			if err != nil {
				fatal("building flight recorder", err)
			}
			defer flight.Close()
			scfg.Recorder = flight
			logger.Info("flight recorder on",
				"sample", *recorderSample,
				"capacity", *recorderCap,
				"dir", *recorderDir,
			)
		}
		engCfg := infer.Config{
			Match:        match,
			Snapshot:     snap,
			Workers:      *workers,
			QueueDepth:   *queueDepth,
			MaxBatch:     *maxBatch,
			QueueTimeout: *queueTimeout,
			CacheEntries: *cacheEntries,
			CacheTTL:     *cacheTTL,
			Cells:        cells,
			Slotter:      snap.Slotter,
			Recorder:     recorderOrNil(mon),
		}
		if flight != nil {
			// Assigned conditionally so a nil *recorder.Recorder never
			// becomes a non-nil FlightRecorder interface.
			engCfg.Flight = flight
		}
		if liveTraffic != nil {
			// Assigned conditionally so a nil *FeatureSource never becomes
			// a non-nil TrafficSource interface.
			engCfg.Traffic = liveTraffic
		}
		eng, err := infer.New(engCfg)
		if err != nil {
			fatal("building engine", err)
		}
		defer eng.Close()
		scfg.Infer = eng.Do
		scfg.Version = eng.Version
		scfg.Ready = eng.Readiness
		scfg.Quality = mon

		reload := func(ctx context.Context) (map[string]any, error) {
			if *modelPath == "" {
				return nil, fmt.Errorf("server was started without -model; nothing to reload from")
			}
			next, err := infer.LoadCheckpointOpts(ctx, *modelPath, c.Graph, ckptOpts)
			if err != nil {
				eng.RecordReloadFailure(err)
				return nil, err
			}
			prev, err := eng.SwapCtx(ctx, next)
			if err != nil {
				eng.RecordReloadFailure(err)
				return nil, err
			}
			if mon != nil {
				// Pending predictions from the old model still join (their
				// entries carry the old generation); only the drift baseline
				// follows the new checkpoint.
				mon.SetReference(next.RefDist, next.ID)
			}
			logger.InfoContext(ctx, "model reloaded", "model", next.ID, "previous", prev.ID)
			return map[string]any{"model": next.ID, "previous": prev.ID}, nil
		}
		scfg.Reload = reload

		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if _, err := reload(context.Background()); err != nil {
					logger.Error("SIGHUP reload failed", "err", err)
				}
			}
		}()
		logger.Info("engine ready",
			"workers", eng.Version()["workers"],
			"queue", *queueDepth,
			"batch", *maxBatch,
			"cache_entries", *cacheEntries,
			"cache_ttl", *cacheTTL,
			"cache_cell_m", *cacheCell,
		)
	}

	srv, err := serve.New(scfg)
	if err != nil {
		fatal("building server", err)
	}

	if *debugAddr != "" {
		go func() {
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
			logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", *debugAddr))
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hsrv := serve.NewHTTPServer(*addr, srv.Handler())
	logger.Info("serving", "city", *city, "addr", *addr, "metrics", "/metrics", "traces", "/debug/traces")
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	if err := serve.ListenAndServe(ctx, hsrv, *grace, logf); err != nil {
		fatal("server", err)
	}
	logger.Info("bye")
}
