// Command ttereplay re-executes flight-recorder segments offline: it loads
// a checkpoint, rebuilds the recording's city deterministically, replays
// every captured request through a real inference engine with fixed
// workers and a pinned traffic epoch, and diffs the answers against what
// was served.
//
// Two modes of use:
//
//	# Determinism audit: same checkpoint the recording served.
//	# Every estimate must reproduce bit-for-bit; any unexplained diff is
//	# a nondeterminism bug.
//	ttereplay -city chengdu-s -model model.gob -segments /var/tte/recorder \
//	    -gate-unexplained 0
//
//	# Regression diff: a candidate checkpoint against recorded traffic.
//	# The report quantifies how the answers moved (MAE vs recorded,
//	# per-generation and per-origin-cell tables, answers changed beyond
//	# -tolerance-sec).
//	ttereplay -city chengdu-s -model candidate.gob -segments /var/tte/recorder
//
// The report is written to -out (default BENCH_replay.json) with a
// throughput figure (replayed events/s). -gate-unexplained N exits
// non-zero when unexplained diffs exceed N; -gate-throughput M when the
// replay rate falls below M events/s.
//
// -smoke runs the whole loop self-contained for CI: build a synthetic
// city, train a small model, save + reload it as a checkpoint (so the
// recorded snapshot ID is the checkpoint SHA), record a serve session
// through an engine with the recorder at sample rate 1, then replay the
// segments against the identical checkpoint and require zero unexplained
// diffs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"deepod"
	"deepod/internal/benchmeta"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/recorder"
	"deepod/internal/replay"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

func main() {
	var (
		city      = flag.String("city", "chengdu-s", "city preset the recording served (replay rebuilds its graph and prior)")
		orders    = flag.Int("orders", 1200, "synthetic orders for the city build (must match the recording's)")
		seed      = flag.Int64("seed", 1, "random seed (must match the recording's)")
		modelPath = flag.String("model", "", "checkpoint to replay against (required unless -smoke)")
		segDir    = flag.String("segments", "", "flight-recorder segment directory to replay (required unless -smoke)")
		cacheEnt  = flag.Int("cache", 8192, "replay engine estimate-cache entries (-1 disables; a rate-1 recording replays cache hits exactly)")
		cacheCell = flag.Float64("cache-cell", 250, "spatial quantization cell for cache keys, meters (must match the recording engine's)")
		tolerance = flag.Float64("tolerance-sec", 1, "report answers that moved more than this many seconds as changed")
		out       = flag.String("out", "BENCH_replay.json", "JSON report path")

		gateUnexplained = flag.Int("gate-unexplained", -1, "fail when unexplained diffs exceed this (-1 disables; 0 = require bit-for-bit)")
		gateThroughput  = flag.Float64("gate-throughput", 0, "fail when replay throughput falls below this many events/s (0 disables)")

		smoke         = flag.Bool("smoke", false, "self-contained record+replay loop: train, record a session, replay it against the same checkpoint")
		smokeOrders   = flag.Int("smoke-orders", 200, "orders for the -smoke city build")
		smokeRequests = flag.Int("smoke-requests", 48, "estimate requests recorded in -smoke")
		smokeDir      = flag.String("smoke-dir", "", "working dir for -smoke checkpoint + segments (empty = temp dir)")
		trainWork     = flag.Int("train-workers", runtime.GOMAXPROCS(0), "data-parallel workers for the -smoke training run")
	)
	flag.Parse()

	if *smoke {
		*orders = *smokeOrders
	} else if *modelPath == "" || *segDir == "" {
		log.Fatal("ttereplay: -model and -segments are required (or use -smoke)")
	}

	c, err := deepod.BuildCity(*city, deepod.CityOptions{Orders: *orders, Seed: *seed})
	if err != nil {
		log.Fatalf("building city: %v", err)
	}
	cells, err := roadnet.NewEdgeIndex(c.Graph, *cacheCell)
	if err != nil {
		log.Fatalf("building quantizer: %v", err)
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		log.Fatalf("building matcher: %v", err)
	}
	match := func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error) {
		return deepod.MatchODCtx(ctx, matcher, od)
	}

	if *smoke {
		dir := *smokeDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "ttereplay-smoke-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		ckpt := filepath.Join(dir, "model.gob")
		*segDir = filepath.Join(dir, "segments")
		*modelPath = ckpt

		log.Printf("smoke: training on %d orders (%d workers)", *smokeOrders, *trainWork)
		cfg := deepod.SmallConfig()
		cfg.TrainWorkers = *trainWork
		m, err := deepod.Train(cfg, c, nil)
		if err != nil {
			log.Fatalf("smoke: training: %v", err)
		}
		f, err := os.Create(ckpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			f.Close()
			log.Fatalf("smoke: saving checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		// Load the checkpoint back the way tteserve does, so the recorded
		// snapshot ID is the checkpoint SHA the replay will also load.
		snap, err := infer.LoadCheckpoint(ckpt, c.Graph)
		if err != nil {
			log.Fatalf("smoke: reloading checkpoint: %v", err)
		}
		if err := smokeRecord(c, snap, match, cells, *segDir, *smokeRequests); err != nil {
			log.Fatalf("smoke: recording: %v", err)
		}
		log.Printf("smoke: recorded session in %s, replaying against %s", *segDir, snap.ID)
		if *gateUnexplained < 0 {
			*gateUnexplained = 0
		}
	}

	snap, err := infer.LoadCheckpoint(*modelPath, c.Graph)
	if err != nil {
		log.Fatalf("loading checkpoint: %v", err)
	}
	headers, events, err := recorder.ReadDir(*segDir)
	if err != nil {
		log.Fatalf("reading segments: %v", err)
	}
	log.Printf("replaying %d events from %d segments against %s", len(events), len(headers), snap.ID)

	rep, err := replay.Run(context.Background(), replay.Config{
		Snapshot:     snap,
		Match:        match,
		External:     c.Grid.External,
		CacheEntries: *cacheEnt,
		Cells:        cells,
		Slotter:      snap.Slotter,
		ToleranceSec: *tolerance,
	}, events)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}

	env := benchmeta.Capture()
	report := map[string]any{
		"bench":         "replay",
		"city":          *city,
		"model":         *modelPath,
		"segments":      *segDir,
		"cpus":          env.CPUs,
		"gomaxprocs":    env.GOMAXPROCS,
		"go_version":    env.GoVersion,
		"gate_enforced": *gateUnexplained >= 0 || *gateThroughput > 0,
		"replay":        rep,
	}
	if len(headers) > 0 {
		report["segment_meta"] = headers[0].Meta
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("writing report: %v", err)
	}
	log.Printf("replayed %d/%d events: %d matched bit-for-bit, %d explained, %d UNEXPLAINED, %d/%d errors reproduced, MAE %.3fs, %.0f events/s → %s",
		rep.Replayed, rep.Events, rep.Matched, rep.ExplainedDiffs, rep.UnexplainedDiffs,
		rep.ErrorsReproduced, rep.ErrorsReproduced+rep.ErrorsChanged,
		rep.Overall.MAESec, rep.EventsPerSec, *out)

	failed := false
	if *gateUnexplained >= 0 && rep.UnexplainedDiffs > *gateUnexplained {
		log.Printf("GATE FAILED: %d unexplained diffs > %d — the engine is not deterministic for this checkpoint",
			rep.UnexplainedDiffs, *gateUnexplained)
		failed = true
	}
	if *gateThroughput > 0 && rep.EventsPerSec < *gateThroughput {
		log.Printf("GATE FAILED: replay throughput %.0f events/s < %.0f", rep.EventsPerSec, *gateThroughput)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// smokeRecord drives a serve session through a real engine with the flight
// recorder at sample rate 1 mirroring to segDir: test-split requests, a
// few repeats (cache hits), and a few invalid departures (error capture).
func smokeRecord(c *deepod.City, snap *infer.Snapshot,
	match func(context.Context, traj.ODInput) (traj.MatchedOD, error),
	cells infer.Quantizer, segDir string, requests int) error {
	rec, err := recorder.New(recorder.Config{
		SampleRate:    1,
		Cells:         cells,
		Slotter:       snap.Slotter,
		Dir:           segDir,
		SegmentEvents: 64, // several segments even in a short session
		MaxSegments:   64,
		Meta:          map[string]string{"city": c.Name, "model": snap.ID, "mode": "smoke"},
		Registry:      obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	eng, err := infer.New(infer.Config{
		Match:        match,
		Snapshot:     snap,
		Workers:      2, // recording needs no determinism, only the replay does
		MaxBatch:     16,
		QueueDepth:   2 * requests,
		CacheEntries: 4096,
		Cells:        cells,
		Slotter:      snap.Slotter,
		Flight:       rec,
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		rec.Close()
		return err
	}
	trips := c.Split.Test
	if len(trips) == 0 {
		trips = c.Records
	}
	// Fire the whole request set as one concurrent burst so the queue backs
	// up and the workers drain multi-request batches through the snapshot's
	// fused [B×d] forward — the replay below re-answers those same events
	// per-sample (Workers 1, MaxBatch 1), so zero unexplained diffs proves
	// the fused path is bit-identical to the per-sample path on a real
	// checkpoint, not just in unit tests.
	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		served int
	)
	for i := 0; i < requests && len(trips) > 0; i++ {
		trip := trips[i%len(trips)]
		od := trip.OD
		od.External = c.Grid.External(od.DepartSec)
		wg.Add(1)
		go func(od traj.ODInput) {
			defer wg.Done()
			if _, err := eng.Do(context.Background(), od); err == nil {
				mu.Lock()
				served++
				mu.Unlock()
			}
		}(od)
	}
	wg.Wait()
	// A few immediate repeats, sequential so they deterministically hit the
	// now-populated estimate cache: cache-hit events in the recording.
	for i := 3; i < requests && len(trips) > 0; i += 7 {
		trip := trips[i%len(trips)]
		od := trip.OD
		od.External = c.Grid.External(od.DepartSec)
		if _, err := eng.Do(context.Background(), od); err == nil {
			served++
		}
	}
	for i := 0; i < 3; i++ { // errors are always captured
		_, _ = eng.Do(context.Background(), traj.ODInput{DepartSec: -1 - float64(i)})
	}
	eng.Close()
	rec.Close()
	if served == 0 {
		return fmt.Errorf("no requests served")
	}
	log.Printf("smoke: served %d estimates (+3 rejections), captured %d events",
		served, rec.Stats().Captured())
	return nil
}
