// Command ttetrain trains a travel-time estimator (DeepOD or a baseline)
// on a synthetic city and reports test errors; DeepOD models can be saved
// to disk and reloaded by tteserve.
//
// Usage:
//
//	ttetrain -city chengdu-s -orders 2000 -method DeepOD -save model.gob
//	ttetrain -city chengdu-s -method GBM
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"deepod"
	"deepod/internal/core"
	"deepod/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttetrain: ")
	var (
		city    = flag.String("city", "chengdu-s", "city preset")
		orders  = flag.Int("orders", 2000, "number of taxi orders")
		days    = flag.Int("days", 28, "simulated horizon in days")
		seed    = flag.Int64("seed", 1, "random seed")
		method  = flag.String("method", "DeepOD", "DeepOD, TEMP, LR, GBM, STNN or MURAT")
		epochs  = flag.Int("epochs", 0, "override training epochs (DeepOD)")
		aux     = flag.Float64("aux", -1, "override auxiliary-loss weight w (DeepOD)")
		workers = flag.Int("train-workers", runtime.GOMAXPROCS(0), "data-parallel training workers (DeepOD); 1 = serial")
		save    = flag.String("save", "", "save the trained DeepOD model to this path")
	)
	flag.Parse()

	c, err := deepod.BuildCity(*city, deepod.CityOptions{
		Orders: *orders, HorizonDays: *days, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: train=%d valid=%d test=%d\n",
		len(c.Split.Train), len(c.Split.Valid), len(c.Split.Test))

	var est deepod.Estimator
	start := time.Now()
	if *method == "DeepOD" {
		cfg := deepod.SmallConfig()
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		if *aux >= 0 {
			cfg.AuxWeight = *aux
		}
		cfg.TrainWorkers = *workers
		m, stats, err := deepod.TrainWithStats(cfg, c, &deepod.TrainOptions{
			Progress: func(epoch, step int, valMAE float64) {
				fmt.Printf("  epoch %d step %d: validation MAE %.1fs\n", epoch, step, valMAE)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v (%d steps, converged at step %d)\n",
			stats.Elapsed.Round(time.Millisecond), stats.Steps, stats.ConvergedStep)
		printPhaseBreakdown()
		// Record the test-split error distribution into the model before
		// saving: it travels with the checkpoint as the drift reference for
		// the serving-time quality monitor.
		m.SetRefDist(deepod.ErrorRefDist(&modelEstimator{m}, c.Split.Test))
		// A slice of test ODs also travels with the checkpoint as the
		// calibration set the float32 serving head is gated against at
		// load time (tteserve -f32).
		calib := make([]deepod.MatchedOD, len(c.Split.Test))
		for i := range c.Split.Test {
			calib[i] = c.Split.Test[i].Matched
		}
		m.SetCalibration(calib)
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.Save(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved model to %s (%d weights)\n", *save, m.NumWeights())
		}
		est = &modelEstimator{m}
	} else {
		b, err := deepod.Baseline(*method, c.Graph)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Train(c.Split.Train, c.Split.Valid); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v\n", time.Since(start).Round(time.Millisecond))
		est = b
	}

	mae, mape, mare := deepod.Evaluate(est, c.Split.Test)
	fmt.Printf("%s test errors: MAE=%.2fs MAPE=%.2f%% MARE=%.2f%%\n",
		*method, mae, mape*100, mare*100)
}

// printPhaseBreakdown reads the obs registry the training loop recorded
// into and prints where offline time went — the Table 5 offline-cost
// story, split by phase. The same numbers are scraped from tteserve's
// /metrics after a startup-train.
func printPhaseBreakdown() {
	type row struct {
		name  string
		sum   float64
		count uint64
	}
	var rows []row
	for _, s := range obs.Default().Snapshot() {
		switch s.Name {
		case "tte_train_phase_seconds":
			if s.Count > 0 {
				rows = append(rows, row{"train/" + s.Label("phase"), s.Sum, s.Count})
			}
		case obs.SpanFamily:
			span := s.Label("span")
			if s.Count > 0 && (span == "encode" || span == "estimate" || span == "mapmatch.point") {
				rows = append(rows, row{"online/" + span, s.Sum, s.Count})
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("offline cost breakdown:")
	for _, r := range rows {
		avg := time.Duration(r.sum / float64(r.count) * float64(time.Second))
		fmt.Printf("  %-22s total %9s  over %7d obs  avg %9s\n",
			r.name, time.Duration(r.sum*float64(time.Second)).Round(time.Millisecond),
			r.count, avg.Round(time.Microsecond))
	}
}

// modelEstimator adapts *core.Model to the Estimator interface.
type modelEstimator struct{ m *core.Model }

func (e *modelEstimator) Name() string { return "DeepOD" }
func (e *modelEstimator) Estimate(od *deepod.MatchedOD) float64 {
	return e.m.Estimate(od)
}
