// Command ttegen synthesizes a city's taxi-order dataset and writes it as
// JSON, printing Table 2-style statistics. The same (city, seed, orders)
// triple always produces the same dataset, so downstream commands can
// regenerate instead of reloading.
//
// Usage:
//
//	ttegen -city chengdu-s -orders 2000 -days 28 -seed 1 -out orders.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"deepod"
	"deepod/internal/dataset"
	"deepod/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttegen: ")
	var (
		city   = flag.String("city", "chengdu-s", "city preset: chengdu-s, xian-s or beijing-s")
		orders = flag.Int("orders", 2000, "number of taxi orders to synthesize")
		days   = flag.Int("days", 28, "simulated horizon in days")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output JSON path (empty = statistics only)")
	)
	flag.Parse()

	c, err := deepod.BuildCity(*city, deepod.CityOptions{
		Orders: *orders, HorizonDays: *days, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	g := c.Graph
	stats := dataset.Summarize(c.Records, func(r *traj.TripRecord) float64 {
		return r.Trajectory.Length(g)
	})
	fmt.Printf("city: %s (%d vertices, %d edges)\n", *city, g.NumVertices(), g.NumEdges())
	fmt.Printf("# of orders:            %d\n", stats.NumOrders)
	fmt.Printf("Avg # of points:        %.0f\n", stats.AvgGPSPoints)
	fmt.Printf("Avg travel time(s):     %.2f\n", stats.AvgTravelSec)
	fmt.Printf("Avg # of road segments: %.0f\n", stats.AvgSegments)
	fmt.Printf("Avg length(meter):      %.2f\n", stats.AvgLengthM)
	fmt.Printf("split: train=%d valid=%d test=%d\n",
		len(c.Split.Train), len(c.Split.Valid), len(c.Split.Test))

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(c.Records); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d records to %s\n", len(c.Records), *out)
}
