package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepod"
	"deepod/internal/benchmeta"
	"deepod/internal/citysim"
	"deepod/internal/core"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/traffic"
	"deepod/internal/traj"
)

// ingestBenchOptions configures the live-traffic ingestion benchmark
// (-ingestbench).
type ingestBenchOptions struct {
	City        string
	Orders      int
	Vehicles    int
	PeriodSec   float64
	SpanSec     float64
	Duration    time.Duration
	Workers     int
	Concurrency int
	DistinctODs int
	Seed        int64
	Out         string
	// CombinedRate paces the combined-phase firehose to this many probes/s
	// (0 = unpaced). The write-only phase is always unpaced — it measures
	// capacity — while the combined phase asks what a *target* ingest rate
	// costs the read path, which is only comparable when the rate is fixed.
	CombinedRate float64
	// GateProbes, when > 0, fails the run unless the write-only phase
	// sustains at least this many accepted probes/s. GateDegrade, when > 0,
	// fails the run when the combined phase's read QPS drops more than this
	// fraction below the read-only baseline. Both are enforced only on
	// machines with >= 4 CPUs — ingest and serve genuinely contend for
	// cycles on smaller boxes.
	GateProbes  float64
	GateDegrade float64
}

// ingestBenchPhase is one measured scenario.
type ingestBenchPhase struct {
	Name        string  `json:"name"`
	DurationSec float64 `json:"duration_sec"`
	// Write-side numbers (write_only and combined phases).
	ProbesAccepted uint64  `json:"probes_accepted,omitempty"`
	ProbesShed     uint64  `json:"probes_shed,omitempty"`
	ProbesPerSec   float64 `json:"probes_per_sec,omitempty"`
	// Read-side numbers (read_only and combined phases).
	Requests int     `json:"requests,omitempty"`
	Errors   int     `json:"errors,omitempty"`
	QPS      float64 `json:"qps,omitempty"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
}

// ingestBenchReport is the BENCH_ingest.json payload.
type ingestBenchReport struct {
	City        string  `json:"city"`
	Vehicles    int     `json:"vehicles"`
	ProbePool   int     `json:"probe_pool"`
	SpanSec     float64 `json:"span_sec"`
	Workers     int     `json:"ingest_workers"`
	Concurrency int     `json:"read_concurrency"`
	DistinctODs int     `json:"distinct_ods"`
	benchmeta.Env

	Phases []ingestBenchPhase `json:"phases"`

	// Headline numbers the CI gate reads.
	WriteProbesPerSec    float64 `json:"write_probes_per_sec"`
	CombinedProbesPerSec float64 `json:"combined_probes_per_sec"`
	ReadOnlyQPS          float64 `json:"read_only_qps"`
	CombinedQPS          float64 `json:"combined_qps"`
	// ReadDegradation is 1 - combined/read-only QPS: how much serving
	// throughput the firehose costs.
	ReadDegradation float64 `json:"read_degradation"`

	// Store state after the run: proof the probes became usable speeds.
	Store  traffic.StoreStats  `json:"store"`
	Ingest traffic.IngestStats `json:"ingest"`

	GateProbes   float64 `json:"gate_probes,omitempty"`
	GateDegrade  float64 `json:"gate_degrade,omitempty"`
	GateEnforced bool    `json:"gate_enforced"`
}

// runIngestBench measures the probe firehose: write-only ingest throughput,
// the uncached read-only estimate baseline, and the combined scenario where
// ingestion and serving contend — then writes BENCH_ingest.json and
// optionally enforces the throughput/degradation gates.
func runIngestBench(o ingestBenchOptions) error {
	c, err := deepod.BuildCity(o.City, deepod.CityOptions{Orders: o.Orders, Seed: o.Seed})
	if err != nil {
		return err
	}
	m, err := core.New(deepod.SmallConfig(), c.Graph)
	if err != nil {
		return err
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		return err
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}

	// Pre-generate the probe pool once: o.Vehicles simulated vehicles
	// cruising the city for SpanSec. The replay loop shifts timestamps by
	// whole spans so every pass stays monotone per vehicle, letting a few
	// seconds of wall time push an unbounded amount of sim traffic.
	ps, err := citysim.NewProbeStream(c.Traffic, citysim.ProbeConfig{
		Vehicles:    o.Vehicles,
		PeriodSec:   o.PeriodSec,
		NoiseMeters: 8,
		Seed:        o.Seed,
	})
	if err != nil {
		return err
	}
	pool := ps.Window(0, o.SpanSec)
	if len(pool) == 0 {
		return fmt.Errorf("ingestbench: probe pool is empty")
	}
	const batchSize = 512
	var batches [][]traffic.Probe
	for i := 0; i < len(pool); i += batchSize {
		end := i + batchSize
		if end > len(pool) {
			end = len(pool)
		}
		b := make([]traffic.Probe, 0, end-i)
		for _, p := range pool[i:end] {
			b = append(b, traffic.Probe{Vehicle: p.Vehicle, X: p.Pos.X, Y: p.Pos.Y, T: p.T})
		}
		batches = append(batches, b)
	}

	rep := ingestBenchReport{
		City: o.City, Vehicles: o.Vehicles, ProbePool: len(pool), SpanSec: o.SpanSec,
		Workers: o.Workers, Concurrency: o.Concurrency, DistinctODs: o.DistinctODs,
		Env:        benchmeta.Capture(),
		GateProbes: o.GateProbes, GateDegrade: o.GateDegrade,
	}
	log.Printf("ingestbench: %s, %d vehicles, %d probes pooled over %.0fs, %d ingest workers, %d read clients, %s per phase",
		o.City, o.Vehicles, len(pool), o.SpanSec, o.Workers, o.Concurrency, o.Duration)

	// Fresh pipeline per benchmark run; all phases share it so the combined
	// phase reads genuinely live snapshots.
	reg := obs.NewRegistry()
	store, err := traffic.NewStore(c.Graph, traffic.StoreConfig{Registry: reg})
	if err != nil {
		return err
	}
	ing, err := traffic.NewIngestor(matcher, store, traffic.IngestConfig{Workers: o.Workers, Registry: reg})
	if err != nil {
		return err
	}
	defer ing.Close()
	// StaleAfterSec is effectively infinite so every estimate walks the
	// full merge path — the most expensive read the live channel has.
	fs, err := traffic.NewFeatureSource(c.Graph, store, c.Grid.External, traffic.FeatureConfig{
		StaleAfterSec: 1e15,
		Registry:      reg,
	})
	if err != nil {
		return err
	}
	eng, err := infer.New(infer.Config{
		Match: func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return deepod.MatchODCtx(ctx, matcher, od)
		},
		Snapshot:     infer.ModelSnapshot("ingestbench", m),
		Workers:      runtime.GOMAXPROCS(0),
		QueueDepth:   4 * o.Concurrency,
		QueueTimeout: 5 * time.Second,
		Traffic:      fs,
		Registry:     reg,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	if o.DistinctODs > len(c.Records) {
		o.DistinctODs = len(c.Records)
	}
	ods := make([]traj.ODInput, o.DistinctODs)
	for i := range ods {
		ods[i] = c.Records[i].OD
	}

	// writeLoop replays the pool until stop flips, shifting each pass by a
	// whole span so per-vehicle time keeps increasing. A fully shed batch
	// backs off briefly before retrying — the same discipline the HTTP
	// firehose asks of emitters via 429 + Retry-After — so the writer
	// measures pipeline capacity instead of burning its CPU on rejected
	// sends. Returns accepted and shed counts.
	writeLoop := func(stop *atomic.Bool, rate float64) (accepted, shed uint64) {
		buf := make([]traffic.Probe, 0, batchSize)
		start := time.Now()
		for pass := 0; !stop.Load(); pass++ {
			shift := float64(pass) * o.SpanSec
			for _, b := range batches {
				if stop.Load() {
					return accepted, shed
				}
				buf = buf[:0]
				for _, p := range b {
					p.T += shift
					buf = append(buf, p)
				}
				for {
					a, s := ing.Ingest(buf)
					accepted += uint64(a)
					if a > 0 || s == 0 {
						shed += uint64(s)
						break
					}
					// Whole batch shed: the queue is full. Retry the same
					// batch after a beat rather than dropping sim traffic —
					// re-sending keeps per-vehicle timestamps monotone.
					if stop.Load() {
						shed += uint64(s)
						return accepted, shed
					}
					time.Sleep(200 * time.Microsecond)
				}
				if rate > 0 {
					// Token-bucket pacing: sleep whenever the accepted
					// count is ahead of the target rate.
					ahead := float64(accepted)/rate - time.Since(start).Seconds()
					if ahead > 0 {
						time.Sleep(time.Duration(ahead * float64(time.Second)))
					}
				}
			}
		}
		return accepted, shed
	}

	// readLoop runs closed-loop estimate clients for the phase duration.
	readLoop := func(deadline time.Time) (lats []float64, errs int) {
		var wg sync.WaitGroup
		bufs := make([][]float64, o.Concurrency)
		errc := make([]int, o.Concurrency)
		ctx := context.Background()
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]float64, 0, 4096)
				for i := w; time.Now().Before(deadline); i++ {
					start := time.Now()
					_, err := eng.Do(ctx, ods[i%len(ods)])
					buf = append(buf, time.Since(start).Seconds())
					if err != nil {
						errc[w]++
					}
				}
				bufs[w] = buf
			}(w)
		}
		wg.Wait()
		for w := range bufs {
			lats = append(lats, bufs[w]...)
			errs += errc[w]
		}
		sort.Float64s(lats)
		return lats, errs
	}

	readPhase := func(name string, lats []float64, errs int) ingestBenchPhase {
		return ingestBenchPhase{
			Name:        name,
			DurationSec: o.Duration.Seconds(),
			Requests:    len(lats),
			Errors:      errs,
			QPS:         float64(len(lats)) / o.Duration.Seconds(),
			P50Ms:       percentile(lats, 0.50) * 1000,
			P99Ms:       percentile(lats, 0.99) * 1000,
		}
	}

	// Phase 1: write-only firehose.
	var stop atomic.Bool
	timer := time.AfterFunc(o.Duration, func() { stop.Store(true) })
	accepted, shed := writeLoop(&stop, 0)
	timer.Stop()
	ing.Drain()
	write := ingestBenchPhase{
		Name:           "write_only",
		DurationSec:    o.Duration.Seconds(),
		ProbesAccepted: accepted,
		ProbesShed:     shed,
		ProbesPerSec:   float64(accepted) / o.Duration.Seconds(),
	}
	rep.Phases = append(rep.Phases, write)
	rep.WriteProbesPerSec = write.ProbesPerSec
	log.Printf("  write_only  %9.0f probes/s  (%d accepted, %d shed)", write.ProbesPerSec, accepted, shed)

	// Phase 2: read-only baseline against the warm store.
	lats, errs := readLoop(time.Now().Add(o.Duration))
	read := readPhase("read_only", lats, errs)
	rep.Phases = append(rep.Phases, read)
	rep.ReadOnlyQPS = read.QPS
	log.Printf("  read_only   %9.0f est/s     (p50 %.2fms, p99 %.2fms, %d errors)", read.QPS, read.P50Ms, read.P99Ms, errs)

	// Phase 3: combined — the firehose and the estimate traffic contend.
	stop.Store(false)
	var cAccepted, cShed uint64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		cAccepted, cShed = writeLoop(&stop, o.CombinedRate)
	}()
	lats, errs = readLoop(time.Now().Add(o.Duration))
	stop.Store(true)
	wwg.Wait()
	ing.Drain()
	combined := readPhase("combined", lats, errs)
	combined.ProbesAccepted = cAccepted
	combined.ProbesShed = cShed
	combined.ProbesPerSec = float64(cAccepted) / o.Duration.Seconds()
	rep.Phases = append(rep.Phases, combined)
	rep.CombinedQPS = combined.QPS
	rep.CombinedProbesPerSec = combined.ProbesPerSec
	if rep.ReadOnlyQPS > 0 {
		rep.ReadDegradation = 1 - rep.CombinedQPS/rep.ReadOnlyQPS
	}
	log.Printf("  combined    %9.0f est/s + %9.0f probes/s  (read degradation %.1f%%)",
		combined.QPS, combined.ProbesPerSec, 100*rep.ReadDegradation)

	rep.Store = store.Stats()
	rep.Ingest = ing.Stats()
	if rep.Store.Covered == 0 {
		return fmt.Errorf("ingestbench: store covered no edges — the pipeline dropped everything")
	}

	if o.GateProbes > 0 || o.GateDegrade > 0 {
		if rep.CPUs < 4 {
			log.Printf("ingestbench: gates skipped — %d CPU(s) cannot host ingest and serve side by side", rep.CPUs)
		} else {
			rep.GateEnforced = true
		}
	}

	if err := writeIngestBenchReport(o.Out, &rep); err != nil {
		return err
	}
	log.Printf("ingestbench: %d edges covered (%.1f%%), epoch %d; report written to %s",
		rep.Store.Covered, 100*rep.Store.Coverage, rep.Store.Epoch, o.Out)

	if rep.GateEnforced {
		if o.GateProbes > 0 && rep.WriteProbesPerSec < o.GateProbes {
			return fmt.Errorf("ingestbench: throughput gate failed: %.0f probes/s sustained, want >= %.0f",
				rep.WriteProbesPerSec, o.GateProbes)
		}
		if o.GateDegrade > 0 && rep.ReadDegradation > o.GateDegrade {
			return fmt.Errorf("ingestbench: degradation gate failed: combined reads lost %.1f%% QPS, allowed %.1f%%",
				100*rep.ReadDegradation, 100*o.GateDegrade)
		}
	}
	return nil
}

func writeIngestBenchReport(path string, rep *ingestBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
