package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"deepod"
	"deepod/internal/benchmeta"
)

// trainBenchOptions configures the training throughput benchmark
// (-trainbench).
type trainBenchOptions struct {
	City    string
	Orders  int
	Steps   int
	Batch   int
	Workers []int
	Seed    int64
	Out     string
	// Gate, when > 0, makes the run fail unless samples/sec at 4 workers is
	// at least Gate × the 1-worker throughput. Enforced only on machines
	// with ≥ 4 CPUs — a 1-core runner cannot demonstrate parallel speedup.
	Gate float64
}

// trainBenchMode is one measured worker count.
type trainBenchMode struct {
	Workers       int     `json:"workers"`
	Steps         int     `json:"steps"`
	Samples       int     `json:"samples"`
	OptimSec      float64 `json:"optim_sec"` // Train wall time minus embedding pre-training
	StepsPerSec   float64 `json:"steps_per_sec"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	NsPerSample   float64 `json:"ns_per_sample"`
	// AllocsPerSample is the process-wide heap-allocation delta across the
	// run divided by samples — the arena/pooling regression signal.
	AllocsPerSample float64 `json:"allocs_per_sample"`
	FinalValMAE     float64 `json:"final_val_mae_sec"`
}

// trainBenchReport is the BENCH_train.json payload.
type trainBenchReport struct {
	City      string `json:"city"`
	Orders    int    `json:"orders"`
	BatchSize int    `json:"batch_size"`
	MaxSteps  int    `json:"max_steps"`
	benchmeta.Env
	Modes []trainBenchMode `json:"modes"`
	// SpeedupBestVs1 is best samples/sec over the 1-worker samples/sec;
	// Speedup4Vs1 is the 4-worker ratio (0 when 4 workers was not run).
	SpeedupBestVs1 float64 `json:"speedup_best_vs_1"`
	Speedup4Vs1    float64 `json:"speedup_4_vs_1,omitempty"`
	GateThreshold  float64 `json:"gate_threshold,omitempty"`
	GateEnforced   bool    `json:"gate_enforced"`
}

// trainBenchConfig mirrors the TinyScale model dimensions so one step is
// cheap enough to benchmark many worker counts in seconds.
func trainBenchConfig() deepod.Config {
	c := deepod.SmallConfig()
	c.Ds, c.Dt = 8, 8
	c.D1m, c.D2m, c.D3m, c.D4m = 16, 8, 16, 8
	c.D5m, c.D6m, c.D7m, c.D9m = 16, 8, 16, 16
	c.Dh, c.Dtraf = 16, 8
	c.EmbedWalks, c.EmbedEpochs = 1, 1
	return c
}

// parseWorkerList parses "1,2,4"; an empty string yields 1, 2 and
// GOMAXPROCS (deduplicated, sorted).
func parseWorkerList(s string) ([]int, error) {
	set := map[int]bool{}
	if s == "" {
		set[1], set[2], set[runtime.GOMAXPROCS(0)] = true, true, true
	} else {
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad worker count %q", f)
			}
			set[n] = true
		}
	}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// runTrainBench measures offline-training throughput (steps/sec and
// samples/sec, plus ns and allocations per sample) for each worker count on
// the same city, seed and step budget, writes BENCH_train.json, and
// optionally enforces the parallel-speedup gate.
func runTrainBench(o trainBenchOptions) error {
	city, err := deepod.BuildCity(o.City, deepod.CityOptions{Orders: o.Orders, HorizonDays: 14, Seed: o.Seed})
	if err != nil {
		return err
	}
	rep := trainBenchReport{
		City: o.City, Orders: o.Orders, BatchSize: o.Batch, MaxSteps: o.Steps,
		Env:           benchmeta.Capture(),
		GateThreshold: o.Gate,
	}
	log.Printf("trainbench: city=%s orders=%d batch=%d steps=%d cpus=%d",
		o.City, o.Orders, o.Batch, o.Steps, rep.CPUs)

	for _, workers := range o.Workers {
		cfg := trainBenchConfig()
		cfg.BatchSize = o.Batch
		cfg.Epochs = 1 << 20 // MaxSteps terminates the run
		cfg.TrainWorkers = workers
		opts := deepod.TrainOptions{MaxSteps: o.Steps, ValSample: 50}

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		_, stats, err := deepod.TrainWithStats(cfg, city, &opts)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("trainbench workers=%d: %w", workers, err)
		}

		optim := wall - stats.EmbedElapsed
		if optim <= 0 {
			optim = wall
		}
		mode := trainBenchMode{
			Workers:         workers,
			Steps:           stats.Steps,
			Samples:         stats.SamplesSeen,
			OptimSec:        optim.Seconds(),
			StepsPerSec:     float64(stats.Steps) / optim.Seconds(),
			SamplesPerSec:   float64(stats.SamplesSeen) / optim.Seconds(),
			NsPerSample:     float64(optim.Nanoseconds()) / float64(stats.SamplesSeen),
			AllocsPerSample: float64(after.Mallocs-before.Mallocs) / float64(stats.SamplesSeen),
			FinalValMAE:     stats.FinalValMAE,
		}
		rep.Modes = append(rep.Modes, mode)
		log.Printf("  workers=%-2d  %7.1f samples/s  %6.2f steps/s  %8.0f allocs/sample  val MAE %.1fs",
			workers, mode.SamplesPerSec, mode.StepsPerSec, mode.AllocsPerSample, mode.FinalValMAE)
	}

	var base, best, four float64
	for _, m := range rep.Modes {
		if m.Workers == 1 {
			base = m.SamplesPerSec
		}
		if m.Workers == 4 {
			four = m.SamplesPerSec
		}
		if m.SamplesPerSec > best {
			best = m.SamplesPerSec
		}
	}
	if base > 0 {
		rep.SpeedupBestVs1 = best / base
		if four > 0 {
			rep.Speedup4Vs1 = four / base
		}
	}

	if o.Gate > 0 {
		switch {
		case rep.CPUs < 4:
			log.Printf("trainbench: speedup gate skipped — %d CPU(s) cannot demonstrate 4-worker scaling", rep.CPUs)
		case four == 0 || base == 0:
			log.Printf("trainbench: speedup gate skipped — need both 1- and 4-worker runs (got workers=%v)", o.Workers)
		default:
			rep.GateEnforced = true
		}
	}

	if err := writeTrainBenchReport(o.Out, &rep); err != nil {
		return err
	}
	log.Printf("trainbench: best speedup %.2fx vs 1 worker; report written to %s", rep.SpeedupBestVs1, o.Out)

	if rep.GateEnforced && rep.Speedup4Vs1 < o.Gate {
		return fmt.Errorf("trainbench: speedup gate failed: 4 workers reached %.2fx of 1-worker throughput, want >= %.2fx",
			rep.Speedup4Vs1, o.Gate)
	}
	return nil
}

func writeTrainBenchReport(path string, rep *trainBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
