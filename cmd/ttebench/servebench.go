package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"deepod"
	"deepod/internal/benchmeta"
	"deepod/internal/core"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/quality"
	"deepod/internal/roadnet"
	"deepod/internal/serve"
	"deepod/internal/telemetry"
	"deepod/internal/traj"
)

// serveBenchOptions configures the serving load benchmark (-servebench).
type serveBenchOptions struct {
	City        string
	Duration    time.Duration
	Concurrency int
	DistinctODs int
	Orders      int
	Seed        int64
	Out         string
	// ProfileDir receives the profile bundles captured during the
	// alert-spike scenario (empty keeps them in memory only).
	ProfileDir string
	// TelemetryGate, when > 0, makes the run fail when the engine+telemetry
	// mode costs more than this percentage of the bare engine's QPS.
	// Enforced only on machines with >= 4 CPUs — overhead percentages on
	// starved runners measure scheduling noise, not the telemetry stack.
	TelemetryGate float64
	// DashboardOut, when non-empty, writes the rendered /debug/dashboard
	// HTML of the telemetry-mode server there (the CI workflow uploads it
	// as an artifact).
	DashboardOut string
	// BatchOnly runs only the uncached QPS-vs-MaxBatch sweep (and its gate),
	// skipping the mode comparison, telemetry and alert-spike scenarios —
	// the cheap shape scripts/check.sh runs on every PR.
	BatchOnly bool
	// FusedGate, when > 0, makes the run fail unless the fused batched
	// forward reaches at least this × the per-sample matvec throughput at
	// MaxBatch 16. Enforced only on machines with >= 4 CPUs — on a starved
	// runner the engine worker and the closed-loop clients fight for the
	// same core and the ratio measures scheduling, not kernels.
	FusedGate float64
}

// serveBenchMode is one measured serving configuration.
type serveBenchMode struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Shed      uint64  `json:"shed"`
	CacheHits uint64  `json:"cache_hits"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// Joined and QualityMAESec are set only for the feedback-replay mode:
	// predictions joined with ground truth, and the resulting online MAE.
	Joined        uint64  `json:"joined,omitempty"`
	QualityMAESec float64 `json:"quality_mae_sec,omitempty"`
}

// serveBenchReport is the BENCH_serve.json payload.
type serveBenchReport struct {
	City          string  `json:"city"`
	DurationSec   float64 `json:"duration_sec"`
	Concurrency   int     `json:"concurrency"`
	DistinctODs   int     `json:"distinct_ods"`
	EngineWorkers int     `json:"engine_workers"`
	benchmeta.Env
	Modes                 []serveBenchMode `json:"modes"`
	SpeedupCachedVsDirect float64          `json:"speedup_cached_vs_direct"`
	// FeedbackOverheadPct is the throughput cost of full quality monitoring
	// (stamp + pending table + feedback join) vs the bare engine mode.
	FeedbackOverheadPct float64 `json:"feedback_overhead_pct"`
	// TelemetryOverheadPct is the throughput cost of the full telemetry
	// stack (history sampler + exemplars + push exporter + 1% tracing) vs
	// the bare engine mode.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// Telemetry snapshots the history sampler and exporter after the
	// engine+telemetry mode, proving the pipeline actually ran.
	Telemetry *serveBenchTelemetry `json:"telemetry,omitempty"`
	// TelemetryGateThreshold and GateEnforced record the overhead gate so
	// a green CI run is distinguishable from a skipped one.
	TelemetryGateThreshold float64 `json:"telemetry_gate_threshold,omitempty"`
	GateEnforced           bool    `json:"gate_enforced"`
	// AlertSpike reports the synthetic error-spike scenario: burn-rate
	// alert detection/resolution latency and SLO monitoring overhead.
	AlertSpike *alertSpikeReport `json:"alert_spike,omitempty"`
	// BatchSweep is the uncached engine measured at several admission batch
	// ceilings with the fused [B×d] forward, plus the per-sample matvec
	// baseline at MaxBatch 16.
	BatchSweep []batchSweepPoint `json:"batch_sweep,omitempty"`
	// FusedSpeedup is fused QPS over matvec QPS, both at MaxBatch 16 on the
	// uncached engine; FusedGateThreshold and FusedGateEnforced record the
	// speedup gate the same way the telemetry gate is recorded.
	FusedSpeedup       float64 `json:"fused_speedup,omitempty"`
	FusedGateThreshold float64 `json:"fused_gate_threshold,omitempty"`
	FusedGateEnforced  bool    `json:"fused_gate_enforced"`
}

// batchSweepPoint is one uncached engine run of the batch sweep.
type batchSweepPoint struct {
	MaxBatch int `json:"max_batch"`
	// Fused says whether the snapshot offered EstimateBatch (the fused
	// [B×d] forward) or forced the per-sample matvec path.
	Fused    bool    `json:"fused"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// serveBenchTelemetry is the telemetry-pipeline evidence embedded in the
// report: sampler shape, exporter deliveries to the in-process sink, and
// how many requests ran under a hand-opened trace (the exemplar sources).
type serveBenchTelemetry struct {
	History telemetry.Stats       `json:"history"`
	Export  telemetry.ExportStats `json:"export"`
	Traced  uint64                `json:"traced_requests"`
}

// runServeBench measures the serving path four ways on a repeated-OD
// workload — direct (one synchronous match+estimate per request, the
// pre-engine behavior), through the engine without caching, through the
// engine with the estimate cache, and through the engine with the online
// quality monitor replaying each record's observed travel time as feedback
// — and reports QPS and latency percentiles for each. The model is
// untrained: forward-pass cost is identical to a trained model's, and only
// costs are measured here.
func runServeBench(o serveBenchOptions) error {
	c, err := deepod.BuildCity(o.City, deepod.CityOptions{Orders: o.Orders, Seed: o.Seed})
	if err != nil {
		return err
	}
	cfg := deepod.SmallConfig()
	m, err := core.New(cfg, c.Graph)
	if err != nil {
		return err
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		return err
	}
	match := func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error) {
		return deepod.MatchODCtx(ctx, matcher, od)
	}

	// The workload: a fixed set of on-network OD pairs cycled by every
	// worker — the "heavy traffic from popular routes" shape that gives a
	// cache something to do.
	if o.DistinctODs > len(c.Records) {
		o.DistinctODs = len(c.Records)
	}
	ods := make([]traj.ODInput, o.DistinctODs)
	actuals := make([]float64, o.DistinctODs) // ground truth for feedback replay
	for i := range ods {
		ods[i] = c.Records[i].OD
		actuals[i] = c.Records[i].TravelSec
	}

	workers := runtime.GOMAXPROCS(0)
	report := serveBenchReport{
		City:                   o.City,
		DurationSec:            o.Duration.Seconds(),
		Concurrency:            o.Concurrency,
		DistinctODs:            o.DistinctODs,
		EngineWorkers:          workers,
		Env:                    benchmeta.Capture(),
		TelemetryGateThreshold: o.TelemetryGate,
	}

	cells, err := roadnet.NewEdgeIndex(c.Graph, 250)
	if err != nil {
		return err
	}
	newEngine := func(cacheEntries int, rec infer.PredictionRecorder, reg *obs.Registry) (*infer.Engine, error) {
		return infer.New(infer.Config{
			Match:        match,
			Snapshot:     infer.ModelSnapshot("servebench", m),
			Workers:      workers,
			QueueDepth:   4 * o.Concurrency,
			MaxBatch:     16,
			QueueTimeout: 5 * time.Second,
			CacheEntries: cacheEntries,
			CacheTTL:     time.Hour, // workload is stationary; measure hits, not churn
			Cells:        cells,
			Slotter:      m.Slotter(),
			Recorder:     rec,
			Registry:     reg, // keep bench metrics out of the default registry
		})
	}

	direct := func(ctx context.Context, _ int, od traj.ODInput) (infer.Result, error) {
		matched, err := match(ctx, od)
		if err != nil {
			return infer.Result{}, err
		}
		return infer.Result{Seconds: m.EstimateCtx(ctx, &matched)}, nil
	}

	// do receives the workload index alongside the OD so the feedback mode
	// can look up the record's ground-truth travel time.
	run := func(name string, do func(context.Context, int, traj.ODInput) (infer.Result, error), eng *infer.Engine) serveBenchMode {
		var (
			wg   sync.WaitGroup
			lats = make([][]float64, o.Concurrency)
			errs = make([]int, o.Concurrency)
		)
		deadline := time.Now().Add(o.Duration)
		ctx := context.Background()
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]float64, 0, 4096)
				for i := w; time.Now().Before(deadline); i++ {
					od := ods[i%len(ods)]
					start := time.Now()
					_, err := do(ctx, i%len(ods), od)
					buf = append(buf, time.Since(start).Seconds())
					if err != nil {
						errs[w]++
					}
				}
				lats[w] = buf
			}(w)
		}
		wg.Wait()
		var all []float64
		var nerr int
		for w := range lats {
			all = append(all, lats[w]...)
			nerr += errs[w]
		}
		sort.Float64s(all)
		mode := serveBenchMode{
			Name:     name,
			Requests: len(all),
			Errors:   nerr,
			QPS:      float64(len(all)) / o.Duration.Seconds(),
			P50Ms:    percentile(all, 0.50) * 1000,
			P99Ms:    percentile(all, 0.99) * 1000,
		}
		if eng != nil {
			st := eng.Stats()
			mode.Shed = st.Shed
			mode.CacheHits = st.CacheHits
		}
		return mode
	}

	log.Printf("servebench: %s, %d distinct ODs, %d clients, %s per mode",
		o.City, o.DistinctODs, o.Concurrency, o.Duration)

	var b strings.Builder
	if !o.BatchOnly {
		report.Modes = append(report.Modes, run("direct", direct, nil))

		engNo, err := newEngine(0, nil, obs.NewRegistry())
		if err != nil {
			return err
		}
		engine := func(ctx context.Context, _ int, od traj.ODInput) (infer.Result, error) {
			return engNo.Do(ctx, od)
		}
		report.Modes = append(report.Modes, run("engine", engine, engNo))
		engNo.Close()

		engCache, err := newEngine(65536, nil, obs.NewRegistry())
		if err != nil {
			return err
		}
		cached := func(ctx context.Context, _ int, od traj.ODInput) (infer.Result, error) {
			return engCache.Do(ctx, od)
		}
		report.Modes = append(report.Modes, run("engine+cache", cached, engCache))
		engCache.Close()

		report.SpeedupCachedVsDirect = report.Modes[2].QPS / report.Modes[0].QPS

		// Feedback replay: the full quality loop on every request — the engine
		// stamps each prediction into the monitor's pending table and the client
		// immediately reports the record's observed travel time as ground truth.
		// One hour-long window so the whole run lands in Current.
		mon := quality.New(quality.Config{
			Window:     time.Hour,
			PendingTTL: time.Hour,
			Cells:      cells,
			Slotter:    m.Slotter(),
			Registry:   obs.NewRegistry(),
		})
		engFb, err := newEngine(0, mon, obs.NewRegistry())
		if err != nil {
			return err
		}
		feedback := func(ctx context.Context, i int, od traj.ODInput) (infer.Result, error) {
			res, err := engFb.Do(ctx, od)
			if err != nil || res.PredictionID == "" {
				return res, err
			}
			if _, ferr := mon.Feedback(res.PredictionID, actuals[i]); ferr != nil {
				return res, ferr
			}
			return res, nil
		}
		report.Modes = append(report.Modes, run("engine+feedback", feedback, engFb))
		engFb.Close()

		st := mon.State()
		fb := &report.Modes[3]
		fb.Joined = st.Counters.Joined
		if st.Current != nil && st.Current.Count > 0 {
			fb.QualityMAESec = float64(st.Current.MAESeconds)
		}
		if report.Modes[1].QPS > 0 {
			report.FeedbackOverheadPct = 100 * (1 - report.Modes[3].QPS/report.Modes[1].QPS)
		}

		// Telemetry mode: the bare engine again, but with the full telemetry
		// stack live — history sampler ticking the engine's registry at a fast
		// interval, exemplar recording on, the push exporter shipping deltas to
		// an in-process sink, and ~1% of requests running under a hand-opened
		// trace (servebench calls eng.Do directly, so there is no HTTP
		// middleware to start one). The QPS delta vs the bare engine is the
		// price of turning everything on.
		if err := runTelemetryMode(o, &report, newEngine, run); err != nil {
			return err
		}
		if o.TelemetryGate > 0 {
			if report.CPUs < 4 {
				log.Printf("servebench: telemetry overhead gate skipped — %d CPU(s) cannot measure overhead without scheduling noise", report.CPUs)
			} else {
				report.GateEnforced = true
			}
		}

		// Alert-spike scenario: synthetic error spike through the SLO engine on
		// the same city and workload, reporting detection/resolution latency.
		log.Printf("servebench: alert-spike scenario (burn-rate detection latency)")
		spikeRep, err := runAlertSpike(o, m, cells, match, ods)
		if err != nil {
			return err
		}
		report.AlertSpike = spikeRep

		fmt.Fprintf(&b, "Serving load benchmark — %s, %d clients, %d distinct ODs\n",
			o.City, o.Concurrency, o.DistinctODs)
		fmt.Fprintf(&b, "%-16s %10s %8s %10s %10s %8s %10s %8s\n",
			"mode", "QPS", "reqs", "p50 ms", "p99 ms", "errors", "cache hit", "joined")
		for _, md := range report.Modes {
			fmt.Fprintf(&b, "%-16s %10.0f %8d %10.3f %10.3f %8d %10d %8d\n",
				md.Name, md.QPS, md.Requests, md.P50Ms, md.P99Ms, md.Errors, md.CacheHits, md.Joined)
		}
		fmt.Fprintf(&b, "cached throughput vs direct: %.1fx\n", report.SpeedupCachedVsDirect)
		fmt.Fprintf(&b, "quality monitoring overhead vs bare engine: %.1f%% (online MAE %.1fs over %d joined)\n",
			report.FeedbackOverheadPct, fb.QualityMAESec, fb.Joined)
		if t := report.Telemetry; t != nil {
			fmt.Fprintf(&b, "telemetry overhead vs bare engine: %.1f%% (%d series sampled, %d batches / %d points exported, %d traced requests)\n",
				report.TelemetryOverheadPct, t.History.Series, t.Export.BatchesOK, t.Export.PointsExported, t.Traced)
		}
		fmt.Fprintf(&b, "alert spike (%d rounds, %.0f ms eval interval): detect p50 %.0f ms / max %.0f ms, resolve p50 %.0f ms, %d profiles, SLO overhead %.1f%%\n",
			spikeRep.Rounds, spikeRep.EvalIntervalMs, spikeRep.DetectP50Ms, spikeRep.DetectMaxMs,
			spikeRep.ResolveP50Ms, spikeRep.Profiles, spikeRep.SLOOverheadPct)
	}

	if err := runBatchSweep(o, &report, m, match, cells, run, &b); err != nil {
		return err
	}
	if o.FusedGate > 0 {
		if report.CPUs < 4 {
			log.Printf("servebench: fused speedup gate skipped — %d CPU(s) cannot separate kernel throughput from scheduling noise", report.CPUs)
		} else {
			report.FusedGateEnforced = true
		}
	}
	fmt.Println(b.String())

	f, err := os.Create(o.Out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("servebench: wrote %s", o.Out)

	if report.GateEnforced && report.TelemetryOverheadPct > o.TelemetryGate {
		return fmt.Errorf("servebench: telemetry overhead gate failed: %.1f%% QPS cost vs bare engine, want <= %.1f%%",
			report.TelemetryOverheadPct, o.TelemetryGate)
	}
	if report.FusedGateEnforced && report.FusedSpeedup < o.FusedGate {
		return fmt.Errorf("servebench: fused speedup gate failed: fused forward reached %.2fx of matvec throughput at MaxBatch 16, want >= %.2fx",
			report.FusedSpeedup, o.FusedGate)
	}
	return nil
}

// runBatchSweep measures the uncached engine at MaxBatch ∈ {1, 4, 16, 64}
// with the fused [B×d] snapshot, then once more at MaxBatch 16 with
// EstimateBatch stripped so every drained batch falls back to per-sample
// matvec forwards — the ratio of the two MaxBatch-16 runs is the serving-
// level win of the fused kernels (diluted by per-request map matching,
// which batching cannot amortize). Results land in report.BatchSweep and
// report.FusedSpeedup and are appended to the printed summary.
func runBatchSweep(
	o serveBenchOptions,
	report *serveBenchReport,
	m *core.Model,
	match func(context.Context, traj.ODInput) (traj.MatchedOD, error),
	cells *roadnet.EdgeIndex,
	run func(string, func(context.Context, int, traj.ODInput) (infer.Result, error), *infer.Engine) serveBenchMode,
	b *strings.Builder,
) error {
	report.FusedGateThreshold = o.FusedGate

	fused := infer.ModelSnapshot("servebench", m)
	matvec := *fused
	matvec.EstimateBatch = nil // worker falls back to one Estimate per drained request

	newSweepEngine := func(maxBatch int, snap *infer.Snapshot) (*infer.Engine, error) {
		return infer.New(infer.Config{
			Match:        match,
			Snapshot:     snap,
			Workers:      runtime.GOMAXPROCS(0),
			QueueDepth:   4 * o.Concurrency,
			MaxBatch:     maxBatch,
			QueueTimeout: 5 * time.Second,
			Cells:        cells,
			Slotter:      m.Slotter(),
			Registry:     obs.NewRegistry(),
		})
	}
	measure := func(name string, maxBatch int, snap *infer.Snapshot, isFused bool) (batchSweepPoint, error) {
		eng, err := newSweepEngine(maxBatch, snap)
		if err != nil {
			return batchSweepPoint{}, err
		}
		defer eng.Close()
		do := func(ctx context.Context, _ int, od traj.ODInput) (infer.Result, error) {
			return eng.Do(ctx, od)
		}
		md := run(name, do, eng)
		return batchSweepPoint{
			MaxBatch: maxBatch,
			Fused:    isFused,
			Requests: md.Requests,
			Errors:   md.Errors,
			QPS:      md.QPS,
			P50Ms:    md.P50Ms,
			P99Ms:    md.P99Ms,
		}, nil
	}

	log.Printf("servebench: batch sweep (uncached engine, MaxBatch 1/4/16/64 fused + matvec baseline)")
	var fused16, matvec16 float64
	for _, mb := range []int{1, 4, 16, 64} {
		pt, err := measure(fmt.Sprintf("fused-b%d", mb), mb, fused, true)
		if err != nil {
			return err
		}
		if mb == 16 {
			fused16 = pt.QPS
		}
		report.BatchSweep = append(report.BatchSweep, pt)
	}
	pt, err := measure("matvec-b16", 16, &matvec, false)
	if err != nil {
		return err
	}
	matvec16 = pt.QPS
	report.BatchSweep = append(report.BatchSweep, pt)
	if matvec16 > 0 {
		report.FusedSpeedup = fused16 / matvec16
	}

	fmt.Fprintf(b, "Uncached batch sweep — fused [B×d] forward vs per-sample matvec\n")
	fmt.Fprintf(b, "%-16s %10s %8s %10s %10s %8s\n", "mode", "QPS", "reqs", "p50 ms", "p99 ms", "errors")
	for _, pt := range report.BatchSweep {
		name := fmt.Sprintf("fused-b%d", pt.MaxBatch)
		if !pt.Fused {
			name = fmt.Sprintf("matvec-b%d", pt.MaxBatch)
		}
		fmt.Fprintf(b, "%-16s %10.0f %8d %10.3f %10.3f %8d\n",
			name, pt.QPS, pt.Requests, pt.P50Ms, pt.P99Ms, pt.Errors)
	}
	fmt.Fprintf(b, "fused throughput vs matvec at MaxBatch 16: %.2fx\n", report.FusedSpeedup)
	return nil
}

// runTelemetryMode measures the engine+telemetry serving mode: a fresh
// uncached engine whose registry is sampled by a fast-interval History,
// with exemplar recording enabled process-wide for the mode's duration, a
// push Exporter delivering OTLP-shaped batches to an in-process HTTP sink,
// and ~1% of requests running under a hand-opened trace offered to a
// TraceStore — the whole observability stack at once. It appends the mode
// to the report, fills TelemetryOverheadPct and report.Telemetry, and
// renders /debug/dashboard to o.DashboardOut when asked.
func runTelemetryMode(
	o serveBenchOptions,
	report *serveBenchReport,
	newEngine func(int, infer.PredictionRecorder, *obs.Registry) (*infer.Engine, error),
	run func(string, func(context.Context, int, traj.ODInput) (infer.Result, error), *infer.Engine) serveBenchMode,
) error {
	reg := obs.NewRegistry()
	obs.SetExemplars(true)
	defer obs.SetExemplars(false)

	hist, err := telemetry.NewHistory(telemetry.Config{
		Interval: 250 * time.Millisecond, // fast enough to tick many times in a short window
		Source:   reg,
		Registry: reg,
	})
	if err != nil {
		return err
	}
	hist.Start()
	defer hist.Close()

	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer sink.Close()
	exp, err := telemetry.NewExporter(telemetry.ExportConfig{
		Endpoint: sink.URL,
		Interval: 500 * time.Millisecond,
		History:  hist,
		Registry: reg,
		Service:  "servebench",
	})
	if err != nil {
		return err
	}
	exp.Start()
	defer exp.Close()

	ts := obs.NewTraceStore(reg, obs.TraceStoreConfig{SampleRate: 1, Seed: o.Seed})
	eng, err := newEngine(0, nil, reg)
	if err != nil {
		return err
	}
	defer eng.Close()

	// servebench calls eng.Do directly — no HTTP middleware starts traces —
	// so the mode opens one by hand for every 100th workload index. Those
	// requests' histogram observations carry the trace ID as an exemplar,
	// and the finished traces land in the store the exemplars resolve
	// against.
	var tracedN uint64
	var tracedMu sync.Mutex
	do := func(ctx context.Context, i int, od traj.ODInput) (infer.Result, error) {
		if i%100 != 0 {
			return eng.Do(ctx, od)
		}
		tracedMu.Lock()
		tracedN++
		tracedMu.Unlock()
		tctx, tr := obs.StartTrace(ctx, obs.NewTraceID(), "/estimate")
		start := time.Now()
		res, err := eng.Do(tctx, od)
		ts.Offer(tr, time.Since(start))
		return res, err
	}
	report.Modes = append(report.Modes, run("engine+telemetry", do, eng))

	// Final synchronous sample + collect, then wait briefly for the sender
	// goroutine so the report proves end-to-end delivery even on very short
	// measurement windows.
	hist.Tick()
	exp.Collect()
	deadline := time.Now().Add(5 * time.Second)
	for exp.Stats().BatchesOK == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}

	tel := report.Modes[len(report.Modes)-1]
	if report.Modes[1].QPS > 0 {
		report.TelemetryOverheadPct = 100 * (1 - tel.QPS/report.Modes[1].QPS)
	}
	report.Telemetry = &serveBenchTelemetry{
		History: hist.HistoryStats(),
		Export:  exp.Stats(),
		Traced:  tracedN,
	}

	if o.DashboardOut != "" {
		srv, err := serve.New(serve.Config{
			City:     o.City,
			Infer:    eng.Do,
			Registry: reg,
			Traces:   ts,
			History:  hist,
			Exporter: exp,
		})
		if err != nil {
			return err
		}
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/dashboard", nil))
		if rr.Code != http.StatusOK {
			return fmt.Errorf("servebench: dashboard render: HTTP %d", rr.Code)
		}
		if err := os.WriteFile(o.DashboardOut, rr.Body.Bytes(), 0o644); err != nil {
			return err
		}
		log.Printf("servebench: wrote rendered dashboard to %s", o.DashboardOut)
	}
	return nil
}

// percentile returns the q-quantile of sorted values by the nearest-rank
// (ceil) definition: the smallest value with at least ⌈q·n⌉ values at or
// below it. The old int(q*(n-1)) truncation biased high quantiles low on
// small samples — on 100 values p99 read index 98 instead of 99.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
