package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"deepod"
	"deepod/internal/core"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// serveBenchOptions configures the serving load benchmark (-servebench).
type serveBenchOptions struct {
	City        string
	Duration    time.Duration
	Concurrency int
	DistinctODs int
	Orders      int
	Seed        int64
	Out         string
}

// serveBenchMode is one measured serving configuration.
type serveBenchMode struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Shed      uint64  `json:"shed"`
	CacheHits uint64  `json:"cache_hits"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// serveBenchReport is the BENCH_serve.json payload.
type serveBenchReport struct {
	City                  string           `json:"city"`
	DurationSec           float64          `json:"duration_sec"`
	Concurrency           int              `json:"concurrency"`
	DistinctODs           int              `json:"distinct_ods"`
	EngineWorkers         int              `json:"engine_workers"`
	Modes                 []serveBenchMode `json:"modes"`
	SpeedupCachedVsDirect float64          `json:"speedup_cached_vs_direct"`
}

// runServeBench measures the serving path three ways on a repeated-OD
// workload — direct (one synchronous match+estimate per request, the
// pre-engine behavior), through the engine without caching, and through
// the engine with the estimate cache — and reports QPS and latency
// percentiles for each. The model is untrained: forward-pass cost is
// identical to a trained model's, and only costs are measured here.
func runServeBench(o serveBenchOptions) error {
	c, err := deepod.BuildCity(o.City, deepod.CityOptions{Orders: o.Orders, Seed: o.Seed})
	if err != nil {
		return err
	}
	cfg := deepod.SmallConfig()
	m, err := core.New(cfg, c.Graph)
	if err != nil {
		return err
	}
	matcher, err := deepod.NewMatcher(c.Graph)
	if err != nil {
		return err
	}
	match := func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error) {
		return deepod.MatchODCtx(ctx, matcher, od)
	}

	// The workload: a fixed set of on-network OD pairs cycled by every
	// worker — the "heavy traffic from popular routes" shape that gives a
	// cache something to do.
	if o.DistinctODs > len(c.Records) {
		o.DistinctODs = len(c.Records)
	}
	ods := make([]traj.ODInput, o.DistinctODs)
	for i := range ods {
		ods[i] = c.Records[i].OD
	}

	workers := runtime.GOMAXPROCS(0)
	report := serveBenchReport{
		City:          o.City,
		DurationSec:   o.Duration.Seconds(),
		Concurrency:   o.Concurrency,
		DistinctODs:   o.DistinctODs,
		EngineWorkers: workers,
	}

	newEngine := func(cacheEntries int) (*infer.Engine, error) {
		cells, err := roadnet.NewEdgeIndex(c.Graph, 250)
		if err != nil {
			return nil, err
		}
		return infer.New(infer.Config{
			Match:        match,
			Snapshot:     infer.ModelSnapshot("servebench", m),
			Workers:      workers,
			QueueDepth:   4 * o.Concurrency,
			MaxBatch:     16,
			QueueTimeout: 5 * time.Second,
			CacheEntries: cacheEntries,
			CacheTTL:     time.Hour, // workload is stationary; measure hits, not churn
			Cells:        cells,
			Slotter:      m.Slotter(),
			Registry:     obs.NewRegistry(), // keep bench metrics out of the default registry
		})
	}

	direct := func(ctx context.Context, od traj.ODInput) (infer.Result, error) {
		matched, err := match(ctx, od)
		if err != nil {
			return infer.Result{}, err
		}
		return infer.Result{Seconds: m.EstimateCtx(ctx, &matched)}, nil
	}

	run := func(name string, do func(context.Context, traj.ODInput) (infer.Result, error), eng *infer.Engine) serveBenchMode {
		var (
			wg   sync.WaitGroup
			lats = make([][]float64, o.Concurrency)
			errs = make([]int, o.Concurrency)
		)
		deadline := time.Now().Add(o.Duration)
		ctx := context.Background()
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]float64, 0, 4096)
				for i := w; time.Now().Before(deadline); i++ {
					od := ods[i%len(ods)]
					start := time.Now()
					_, err := do(ctx, od)
					buf = append(buf, time.Since(start).Seconds())
					if err != nil {
						errs[w]++
					}
				}
				lats[w] = buf
			}(w)
		}
		wg.Wait()
		var all []float64
		var nerr int
		for w := range lats {
			all = append(all, lats[w]...)
			nerr += errs[w]
		}
		sort.Float64s(all)
		mode := serveBenchMode{
			Name:     name,
			Requests: len(all),
			Errors:   nerr,
			QPS:      float64(len(all)) / o.Duration.Seconds(),
			P50Ms:    percentile(all, 0.50) * 1000,
			P99Ms:    percentile(all, 0.99) * 1000,
		}
		if eng != nil {
			st := eng.Stats()
			mode.Shed = st.Shed
			mode.CacheHits = st.CacheHits
		}
		return mode
	}

	log.Printf("servebench: %s, %d distinct ODs, %d clients, %s per mode",
		o.City, o.DistinctODs, o.Concurrency, o.Duration)

	report.Modes = append(report.Modes, run("direct", direct, nil))

	engNo, err := newEngine(0)
	if err != nil {
		return err
	}
	report.Modes = append(report.Modes, run("engine", engNo.Do, engNo))
	engNo.Close()

	engCache, err := newEngine(65536)
	if err != nil {
		return err
	}
	report.Modes = append(report.Modes, run("engine+cache", engCache.Do, engCache))
	engCache.Close()

	report.SpeedupCachedVsDirect = report.Modes[2].QPS / report.Modes[0].QPS

	var b strings.Builder
	fmt.Fprintf(&b, "Serving load benchmark — %s, %d clients, %d distinct ODs\n",
		o.City, o.Concurrency, o.DistinctODs)
	fmt.Fprintf(&b, "%-14s %10s %8s %10s %10s %8s %10s\n",
		"mode", "QPS", "reqs", "p50 ms", "p99 ms", "errors", "cache hit")
	for _, md := range report.Modes {
		fmt.Fprintf(&b, "%-14s %10.0f %8d %10.3f %10.3f %8d %10d\n",
			md.Name, md.QPS, md.Requests, md.P50Ms, md.P99Ms, md.Errors, md.CacheHits)
	}
	fmt.Fprintf(&b, "cached throughput vs direct: %.1fx\n", report.SpeedupCachedVsDirect)
	fmt.Println(b.String())

	f, err := os.Create(o.Out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("servebench: wrote %s", o.Out)
	return nil
}

// percentile returns the q-quantile of sorted values (nearest rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
