package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"deepod/internal/core"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/prof"
	"deepod/internal/roadnet"
	"deepod/internal/serve"
	"deepod/internal/slo"
	"deepod/internal/traj"
)

// alertSpikeReport is the alert-spike scenario's slice of
// BENCH_serve.json: how fast the SLO engine notices a synthetic error
// spike on a live serving stack, how fast it stands down after recovery,
// and what the monitoring costs when nothing is wrong.
type alertSpikeReport struct {
	Rounds         int     `json:"rounds"`
	EvalIntervalMs float64 `json:"eval_interval_ms"`
	// DetectP50Ms / DetectMaxMs: spike start → fast-burn alert firing.
	DetectP50Ms float64 `json:"detect_p50_ms"`
	DetectMaxMs float64 `json:"detect_max_ms"`
	// ResolveP50Ms: recovery start → alert resolved (bounded below by the
	// rule's short confirmation window).
	ResolveP50Ms float64 `json:"resolve_p50_ms"`
	// Profiles captured by the firing alerts (≥1 expected).
	Profiles int `json:"profiles"`
	// SLOOverheadPct is the healthy-path throughput cost of the running
	// evaluator vs the same stack with it stopped. The evaluation loop is
	// off the request path, so this is expected to be noise around zero.
	SLOOverheadPct float64 `json:"slo_overhead_pct"`
}

// runAlertSpike drives a synthetic error spike through a real engine +
// serve stack wired exactly like tteserve's: burn-rate evaluator, alert
// manager, anomaly-triggered profiler. Errors are injected between the
// HTTP layer and the engine so they surface as 500s — the availability
// SLI's "bad" events.
func runAlertSpike(o serveBenchOptions, m *core.Model, cells *roadnet.EdgeIndex,
	match func(context.Context, traj.ODInput) (traj.MatchedOD, error), ods []traj.ODInput) (*alertSpikeReport, error) {
	const (
		interval = 25 * time.Millisecond
		shortWin = 250 * time.Millisecond
		longWin  = time.Second
		burn     = 5.0
		rounds   = 3
	)
	reg := obs.NewRegistry()
	eng, err := infer.New(infer.Config{
		Match:    match,
		Snapshot: infer.ModelSnapshot("alertspike", m),
		Cells:    cells,
		Slotter:  m.Slotter(),
		Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	var spike atomic.Bool
	inferFn := func(ctx context.Context, od traj.ODInput) (infer.Result, error) {
		if spike.Load() {
			return infer.Result{}, errors.New("injected backend failure")
		}
		return eng.Do(ctx, od)
	}

	mgr := slo.NewManager(slo.ManagerConfig{Registry: reg}) // no logger: keep bench output clean
	profiler, err := prof.New(prof.Config{
		Dir:         o.ProfileDir,
		CPUDuration: 20 * time.Millisecond,
		Cooldown:    time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		return nil, err
	}
	defer profiler.Close()
	mgr.Subscribe(func(ev slo.Event) {
		if ev.State == slo.StateFiring {
			profiler.TriggerAsync("alert:"+ev.Name, ev.Labels)
		}
	})

	ev, err := slo.New(slo.Config{
		Objectives: []slo.Objective{{
			Name:   "availability",
			Target: 0.99,
			Ratio: &slo.RatioSLI{
				Bad:   slo.Selector{Metric: "tte_http_requests_total", Match: map[string]string{"route": "/estimate", "code": "5xx"}},
				Total: slo.Selector{Metric: "tte_http_requests_total", Match: map[string]string{"route": "/estimate"}},
			},
		}},
		Rules:    []slo.BurnRule{{Name: "fast", Severity: "page", Long: longWin, Short: shortWin, Burn: burn}},
		Interval: interval,
		Source:   reg,
		Manager:  mgr,
	})
	if err != nil {
		return nil, err
	}

	srv, err := serve.New(serve.Config{City: o.City, Infer: inferFn, Registry: reg})
	if err != nil {
		return nil, err
	}
	h := srv.Handler()

	send := func(i int) int {
		od := ods[i%len(ods)]
		body := fmt.Sprintf(`{"origin":{"X":%g,"Y":%g},"dest":{"X":%g,"Y":%g},"depart_sec":%g}`,
			od.Origin.X, od.Origin.Y, od.Dest.X, od.Dest.Y, od.DepartSec)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate", strings.NewReader(body)))
		return rec.Code
	}

	// Healthy-path throughput, evaluator running.
	const overheadN = 1000
	measure := func() float64 {
		start := time.Now()
		for i := 0; i < overheadN; i++ {
			send(i)
		}
		return float64(overheadN) / time.Since(start).Seconds()
	}
	ev.Start()
	for i := 0; i < 100; i++ { // warm the path before timing it
		send(i)
	}
	qpsOn := measure()

	rep := &alertSpikeReport{Rounds: rounds, EvalIntervalMs: interval.Seconds() * 1000}
	var detects, resolves []float64
	for r := 0; r < rounds; r++ {
		// Healthy padding long enough that the previous round's badness has
		// left the short window before the next spike lands.
		padEnd := time.Now().Add(shortWin + 2*interval)
		for i := 0; time.Now().Before(padEnd); i++ {
			send(i)
		}
		spike.Store(true)
		t0 := time.Now()
		for i := 0; len(mgr.Active()) == 0; i++ {
			if time.Since(t0) > 5*time.Second {
				return nil, fmt.Errorf("alertspike: round %d: alert did not fire within 5s", r)
			}
			send(i)
		}
		detects = append(detects, time.Since(t0).Seconds()*1000)

		spike.Store(false)
		t1 := time.Now()
		for i := 0; len(mgr.Active()) > 0; i++ {
			if time.Since(t1) > 10*time.Second {
				return nil, fmt.Errorf("alertspike: round %d: alert did not resolve within 10s", r)
			}
			send(i)
		}
		resolves = append(resolves, time.Since(t1).Seconds()*1000)
	}

	// Captures run async off the firing edge; give the last one a moment.
	deadline := time.Now().Add(2 * time.Second)
	for len(profiler.List()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ev.Close()
	qpsOff := measure()
	if qpsOff > 0 {
		rep.SLOOverheadPct = 100 * (1 - qpsOn/qpsOff)
	}

	sort.Float64s(detects)
	sort.Float64s(resolves)
	rep.DetectP50Ms = percentile(detects, 0.5)
	rep.DetectMaxMs = percentile(detects, 1)
	rep.ResolveP50Ms = percentile(resolves, 0.5)
	rep.Profiles = len(profiler.List())
	return rep, nil
}
