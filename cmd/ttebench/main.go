// Command ttebench runs the benchmark harness: it regenerates the tables
// and figures of the paper's evaluation section (§6) on the synthetic
// cities and prints them in the paper's layout.
//
// Usage:
//
//	ttebench                      # every experiment at the default scale
//	ttebench -scale small         # full-strength three-city run (slow)
//	ttebench -exp table4,fig9     # a subset
//
// Experiments: table2 table3 table4 table5 table6 table7 fig5a fig8 fig9
// fig11 fig12 fig13 fig14a fig14b embedstudy ext-route (table3 prints
// Figure 10 as well).
//
// With -servebench, ttebench instead load-tests the serving path: the
// direct per-request pipeline vs the inference engine (internal/infer)
// with and without its estimate cache, with the online quality monitor,
// and with the full telemetry stack (history sampler + exemplars + push
// exporter + 1% tracing, internal/telemetry) on a repeated-OD workload. It
// prints QPS / p50 / p99 per mode, then drives a synthetic error spike
// through the SLO engine (internal/slo) and reports burn-rate alert
// detection/resolution latency plus monitoring overhead, and writes the
// report to -servebench-out (default BENCH_serve.json).
// -servebench-profile-dir keeps the alert-triggered profile bundles;
// -servebench-telemetry-gate fails the run when the telemetry stack costs
// more than the given % of bare-engine QPS (>= 4-CPU machines only);
// -servebench-dashboard-out writes the rendered /debug/dashboard HTML.
// The run ends with an uncached QPS-vs-MaxBatch sweep (1/4/16/64, fused
// [B×d] forward vs a per-sample matvec baseline); -servebench-fused-gate
// fails the run when the fused forward is below the given × matvec
// throughput at MaxBatch 16 (>= 4-CPU machines only), and
// -servebench-batch-only runs just that sweep — the shape scripts/check.sh
// uses.
//
// With -ingestbench, ttebench measures the live-traffic pipeline: a
// citysim-generated GPS probe firehose is replayed through incremental map
// matching into the edge-speed store, alone (write-only), against an
// uncached estimate workload baseline (read-only), and with both contending
// (combined). It reports sustained probes/s, estimate QPS and the read-QPS
// degradation the firehose costs, and writes the report to -ingestbench-out
// (default BENCH_ingest.json). -ingestbench-gate-probes and
// -ingestbench-gate-degrade enforce CI floors on machines with >= 4 CPUs.
//
// With -trainbench, ttebench measures offline-training throughput
// (steps/sec, samples/sec, ns and allocs per sample) at several
// -train-workers counts on one TinyScale city and writes the report to
// -trainbench-out (default BENCH_train.json). -trainbench-gate enforces a
// minimum 4-worker/1-worker samples/sec ratio on machines with >= 4 CPUs.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"deepod/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttebench: ")
	var (
		scaleName = flag.String("scale", "tiny", "experiment scale: tiny, shape or small")
		expList   = flag.String("exp", "all", "comma-separated experiment list or 'all'")

		servebench    = flag.Bool("servebench", false, "run the serving load benchmark instead of the paper experiments")
		sbCity        = flag.String("servebench-city", "chengdu-s", "city preset for -servebench")
		sbDuration    = flag.Duration("servebench-duration", 3*time.Second, "measurement window per serving mode")
		sbConcurrency = flag.Int("servebench-conc", 32, "concurrent closed-loop clients")
		sbDistinct    = flag.Int("servebench-ods", 200, "distinct OD pairs cycled by the workload")
		sbOrders      = flag.Int("servebench-orders", 400, "orders synthesized for the workload city")
		sbSeed        = flag.Int64("servebench-seed", 1, "workload random seed")
		sbOut         = flag.String("servebench-out", "BENCH_serve.json", "JSON report path")
		sbProfileDir  = flag.String("servebench-profile-dir", "", "write profiles captured during the alert-spike scenario here (empty = in-memory only)")
		sbTelGate     = flag.Float64("servebench-telemetry-gate", 0, "fail when engine+telemetry costs more than this % of bare-engine QPS (0 disables; skipped on <4-CPU machines)")
		sbDashOut     = flag.String("servebench-dashboard-out", "", "write the telemetry-mode server's rendered /debug/dashboard HTML here")
		sbBatchOnly   = flag.Bool("servebench-batch-only", false, "run only the uncached QPS-vs-MaxBatch sweep and its fused gate (the cheap per-PR shape)")
		sbFusedGate   = flag.Float64("servebench-fused-gate", 0, "fail when the fused [B×d] forward is below this × matvec throughput at MaxBatch 16 (0 disables; skipped on <4-CPU machines)")

		ingestbench   = flag.Bool("ingestbench", false, "run the live-traffic ingestion benchmark instead of the paper experiments")
		ibCity        = flag.String("ingestbench-city", "chengdu-s", "city preset for -ingestbench")
		ibOrders      = flag.Int("ingestbench-orders", 400, "orders synthesized for the benchmark city (estimate workload)")
		ibVehicles    = flag.Int("ingestbench-vehicles", 300, "simulated probe vehicles")
		ibPeriod      = flag.Float64("ingestbench-period-sec", 5, "probe report period per vehicle, sim seconds")
		ibSpan        = flag.Float64("ingestbench-span-sec", 300, "sim seconds of probe traffic pre-generated and replayed in a loop")
		ibDuration    = flag.Duration("ingestbench-duration", 3*time.Second, "measurement window per phase")
		ibWorkers     = flag.Int("ingestbench-workers", 0, "ingest map-matching workers (0 = GOMAXPROCS)")
		ibConc        = flag.Int("ingestbench-conc", 16, "concurrent closed-loop estimate clients")
		ibODs         = flag.Int("ingestbench-ods", 200, "distinct OD pairs cycled by the read workload")
		ibRate        = flag.Float64("ingestbench-rate", 50000, "combined-phase firehose pacing, probes/s (0 = unpaced)")
		ibSeed        = flag.Int64("ingestbench-seed", 1, "workload random seed")
		ibOut         = flag.String("ingestbench-out", "BENCH_ingest.json", "JSON report path")
		ibGateProbes  = flag.Float64("ingestbench-gate-probes", 0, "fail below this sustained write-only probes/s (0 disables; skipped on <4-CPU machines)")
		ibGateDegrade = flag.Float64("ingestbench-gate-degrade", 0, "fail when combined read QPS degrades more than this fraction vs read-only (0 disables; skipped on <4-CPU machines)")

		trainbench = flag.Bool("trainbench", false, "run the training throughput benchmark instead of the paper experiments")
		tbCity     = flag.String("trainbench-city", "chengdu-s", "city preset for -trainbench")
		tbOrders   = flag.Int("trainbench-orders", 300, "orders synthesized for the benchmark city")
		tbSteps    = flag.Int("trainbench-steps", 30, "optimizer steps measured per worker count")
		tbBatch    = flag.Int("trainbench-batch", 32, "mini-batch size")
		tbWorkers  = flag.String("trainbench-workers", "", "comma-separated worker counts (default \"1,2,GOMAXPROCS\")")
		tbSeed     = flag.Int64("trainbench-seed", 1, "city random seed")
		tbOut      = flag.String("trainbench-out", "BENCH_train.json", "JSON report path")
		tbGate     = flag.Float64("trainbench-gate", 0, "fail below this 4-worker/1-worker samples/sec ratio (0 disables; skipped on <4-CPU machines)")
	)
	flag.Parse()

	if *trainbench {
		workers, err := parseWorkerList(*tbWorkers)
		if err != nil {
			log.Fatal(err)
		}
		err = runTrainBench(trainBenchOptions{
			City:    *tbCity,
			Orders:  *tbOrders,
			Steps:   *tbSteps,
			Batch:   *tbBatch,
			Workers: workers,
			Seed:    *tbSeed,
			Out:     *tbOut,
			Gate:    *tbGate,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *ingestbench {
		err := runIngestBench(ingestBenchOptions{
			City:         *ibCity,
			Orders:       *ibOrders,
			Vehicles:     *ibVehicles,
			PeriodSec:    *ibPeriod,
			SpanSec:      *ibSpan,
			Duration:     *ibDuration,
			Workers:      *ibWorkers,
			Concurrency:  *ibConc,
			DistinctODs:  *ibODs,
			CombinedRate: *ibRate,
			Seed:         *ibSeed,
			Out:          *ibOut,
			GateProbes:   *ibGateProbes,
			GateDegrade:  *ibGateDegrade,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *servebench {
		err := runServeBench(serveBenchOptions{
			City:          *sbCity,
			Duration:      *sbDuration,
			Concurrency:   *sbConcurrency,
			DistinctODs:   *sbDistinct,
			Orders:        *sbOrders,
			Seed:          *sbSeed,
			Out:           *sbOut,
			ProfileDir:    *sbProfileDir,
			TelemetryGate: *sbTelGate,
			DashboardOut:  *sbDashOut,
			BatchOnly:     *sbBatchOnly,
			FusedGate:     *sbFusedGate,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	var sc experiments.Scale
	switch *scaleName {
	case "tiny":
		sc = experiments.TinyScale()
	case "shape":
		sc = experiments.ShapeScale()
	case "small":
		sc = experiments.SmallScale()
	default:
		log.Fatalf("unknown scale %q (want tiny, shape or small)", *scaleName)
	}

	want := map[string]bool{}
	all := *expList == "all"
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(e)] = true
	}
	selected := func(name string) bool { return all || want[name] }

	suite := experiments.NewSuite(sc)
	run := func(name string, f func() (fmt.Stringer, error)) {
		if !selected(name) {
			return
		}
		start := time.Now()
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() (fmt.Stringer, error) { return experiments.RunTable2(sc) })
	run("fig5a", func() (fmt.Stringer, error) { return experiments.RunFigure5a(sc) })
	run("table3", func() (fmt.Stringer, error) { return experiments.RunTable3Figure10(suite) })
	run("table4", func() (fmt.Stringer, error) { return experiments.RunTable4(suite) })
	run("table5", func() (fmt.Stringer, error) { return experiments.RunTable5(suite) })
	run("table6", func() (fmt.Stringer, error) { return experiments.RunTable6(suite) })
	run("table7", func() (fmt.Stringer, error) { return experiments.RunTable7(suite) })
	run("fig8", func() (fmt.Stringer, error) { return experiments.RunFigure8(sc, nil) })
	run("fig9", func() (fmt.Stringer, error) {
		return experiments.RunFigure9(sc, sc.CityList()[0], nil)
	})
	run("fig11", func() (fmt.Stringer, error) { return experiments.RunFigure11(suite, sc.CityList()[0]) })
	run("fig12", func() (fmt.Stringer, error) { return experiments.RunFigure12(suite, sc.CityList()[0], 50) })
	run("fig13", func() (fmt.Stringer, error) { return experiments.RunFigure13(suite, sc.CityList()[0], 50) })
	run("fig14a", func() (fmt.Stringer, error) {
		return experiments.RunFigure14a(sc, sc.CityList()[0], nil)
	})
	run("fig14b", func() (fmt.Stringer, error) { return experiments.RunFigure14b(suite, sc.CityList()[0]) })
	run("embedstudy", func() (fmt.Stringer, error) { return experiments.RunEmbedStudy(sc) })
	run("ext-route", func() (fmt.Stringer, error) { return experiments.RunExtRoute(suite) })
}
