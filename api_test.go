package deepod

import (
	"math"
	"testing"
	"time"
)

func testCity(t testing.TB) *City {
	t.Helper()
	c, err := BuildCity("chengdu-s", CityOptions{Orders: 150, HorizonDays: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildCityDefaultsAndValidation(t *testing.T) {
	c := testCity(t)
	if c.Graph.NumEdges() == 0 || len(c.Records) != 150 {
		t.Fatalf("city malformed: %d edges, %d records", c.Graph.NumEdges(), len(c.Records))
	}
	if len(c.Split.Train)+len(c.Split.Valid)+len(c.Split.Test) != 150 {
		t.Fatal("split loses records")
	}
	if _, err := BuildCity("gotham", CityOptions{}); err == nil {
		t.Fatal("unknown city accepted")
	}
	// Determinism across builds.
	c2, err := BuildCity("chengdu-s", CityOptions{Orders: 150, HorizonDays: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Records[0].TravelSec != c2.Records[0].TravelSec {
		t.Fatal("BuildCity not deterministic")
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	c := testCity(t)
	cfg := SmallConfig()
	cfg.Ds, cfg.Dt = 8, 8
	cfg.D1m, cfg.D2m, cfg.D3m, cfg.D4m = 16, 8, 16, 8
	cfg.D5m, cfg.D6m, cfg.D7m, cfg.D9m = 16, 8, 16, 16
	cfg.Dh, cfg.Dtraf = 16, 8
	cfg.Epochs = 1
	cfg.EmbedWalks, cfg.EmbedEpochs = 1, 1
	m, stats, err := TrainWithStats(cfg, c, &TrainOptions{MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 {
		t.Fatal("no steps recorded")
	}
	mae, mape, mare := Evaluate(apiEstimator{m}, c.Split.Test)
	if mae <= 0 || mape <= 0 || mare <= 0 {
		t.Fatalf("degenerate metrics: %v %v %v", mae, mape, mare)
	}
}

type apiEstimator struct{ m *Model }

func (e apiEstimator) Name() string                   { return "DeepOD" }
func (e apiEstimator) Estimate(od *MatchedOD) float64 { return e.m.Estimate(od) }

func TestBaselineFactory(t *testing.T) {
	c := testCity(t)
	for _, name := range []string{"TEMP", "LR", "GBM", "STNN", "MURAT"} {
		b, err := Baseline(name, c.Graph)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("Baseline(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := Baseline("oracle", c.Graph); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestMatchODRoundTrip(t *testing.T) {
	c := testCity(t)
	matcher, err := NewMatcher(c.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Matching a record's own OD must land near the record's matched edges.
	rec := &c.Split.Test[0]
	matched, err := MatchOD(matcher, rec.OD)
	if err != nil {
		t.Fatal(err)
	}
	op := c.Graph.PointAlongEdge(matched.OriginEdge, matched.RStart)
	want := rec.OD.Origin
	if d := math.Hypot(op.X-want.X, op.Y-want.Y); d > 60 {
		t.Fatalf("matched origin %v m from true origin", d)
	}
	if matched.DepartSec != rec.OD.DepartSec {
		t.Fatal("departure time lost in matching")
	}
}

func TestCityOptionsDefaults(t *testing.T) {
	c, err := BuildCity("chengdu-s", CityOptions{Orders: 60, HorizonDays: 7, GridPeriod: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ext := c.Grid.External(3600)
	if ext == nil || len(ext.SpeedGrid) == 0 {
		t.Fatal("external features missing")
	}
}

func TestEvaluateAgainstKnownPredictor(t *testing.T) {
	c := testCity(t)
	// A constant predictor lets us verify the metric wiring end to end.
	constEst := fixedEstimator{value: 300}
	mae, mape, mare := Evaluate(constEst, c.Split.Test[:10])
	var wantMAE, sumAbs, sumAct float64
	for i := 0; i < 10; i++ {
		d := c.Split.Test[i].TravelSec - 300
		if d < 0 {
			d = -d
		}
		wantMAE += d / 10
		sumAbs += d
		sumAct += c.Split.Test[i].TravelSec
	}
	if math.Abs(mae-wantMAE) > 1e-9 {
		t.Fatalf("Evaluate MAE %v, want %v", mae, wantMAE)
	}
	if math.Abs(mare-sumAbs/sumAct) > 1e-9 {
		t.Fatalf("Evaluate MARE %v, want %v", mare, sumAbs/sumAct)
	}
	if mape <= 0 {
		t.Fatalf("MAPE %v", mape)
	}
}

type fixedEstimator struct{ value float64 }

func (f fixedEstimator) Name() string                { return "const" }
func (f fixedEstimator) Estimate(*MatchedOD) float64 { return f.value }

func TestScalesExposed(t *testing.T) {
	for name, sc := range map[string]func() interface{ CityList() []string }{
		"tiny":  func() interface{ CityList() []string } { return TinyScale() },
		"shape": func() interface{ CityList() []string } { return ShapeScale() },
		"small": func() interface{ CityList() []string } { return SmallScale() },
	} {
		if len(sc().CityList()) == 0 {
			t.Fatalf("scale %s has no cities", name)
		}
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	c := testCity(t)
	bad := SmallConfig()
	bad.Ds = 0
	if _, err := Train(bad, c, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, _, err := TrainWithStats(bad, c, nil); err == nil {
		t.Fatal("invalid config accepted by TrainWithStats")
	}
}
