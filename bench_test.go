package deepod

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section (§6). Each benchmark regenerates the
// corresponding artifact at TinyScale (so `go test -bench=.` completes in
// minutes on one core); run `go run ./cmd/ttebench -scale small` for the
// full-strength tables. Use -v / -benchtime=1x to see the rendered output.

import (
	"fmt"
	"sync"
	"testing"

	"deepod/internal/experiments"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite builds (once) the shared suite with cached trained models so
// benchmarks that reuse models measure their own work, not re-training.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.TinyScale())
	})
	return suite
}

// BenchmarkTable2DatasetStats regenerates Table 2 (dataset statistics).
func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(experiments.TinyScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable3Convergence regenerates Table 3 and Figure 10
// (convergence steps/time and validation curves of the deep models).
func BenchmarkTable3Convergence(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3Figure10(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable4TestErrors regenerates Table 4 (test errors of all
// methods and ablations on all cities).
func BenchmarkTable4TestErrors(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable5Efficiency regenerates Table 5 (model size, training
// time, estimation time).
func BenchmarkTable5Efficiency(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable6Scalability regenerates Table 6 (MAPE vs training-data
// fraction on the largest city).
func BenchmarkTable6Scalability(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable6(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable7EmbeddingVariants regenerates Table 7 (embedding
// initialization variants T-one / T-day / T-stamp / R-one).
func BenchmarkTable7EmbeddingVariants(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable7(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure5aPeriodicity regenerates Figure 5a (weekly periodicity
// of simulated traffic flow).
func BenchmarkFigure5aPeriodicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5a(experiments.TinyScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure8HyperParams regenerates Figure 8 (hyper-parameter
// sweeps) with a reduced grid.
func BenchmarkFigure8HyperParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure8(experiments.TinyScale(), []int{8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure9LossWeight regenerates Figure 9 (loss-weight sweep).
func BenchmarkFigure9LossWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure9(experiments.TinyScale(), "chengdu-s", []float64{0.1, 0.3, 0.5, 0.7})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure11ErrorPDF regenerates Figure 11 (per-method MAPE
// distribution curves).
func BenchmarkFigure11ErrorPDF(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure11(s, "chengdu-s")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure12Scatter regenerates Figure 12 (estimated vs actual time
// on 50 random test trips).
func BenchmarkFigure12Scatter(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure12(s, "chengdu-s", 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure13WorstCases regenerates Figure 13 (each method's worst
// cases by MAPE).
func BenchmarkFigure13WorstCases(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure13(s, "chengdu-s", 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure14aSlotSize regenerates Figure 14a (MAPE vs time-slot
// size).
func BenchmarkFigure14aSlotSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure14a(experiments.TinyScale(), "chengdu-s", []int{15, 30, 60})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure14bHeatmap regenerates Figure 14b (heatmap of the 1-D
// t-SNE projection of time-slot embeddings).
func BenchmarkFigure14bHeatmap(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure14b(s, "chengdu-s")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkEstimateDeepOD measures single-query estimation latency of a
// trained DeepOD model (the per-row quantity behind Table 5's estimation
// time).
func BenchmarkEstimateDeepOD(b *testing.B) {
	s := benchSuite(b)
	m, err := s.Model("chengdu-s", "DeepOD")
	if err != nil {
		b.Fatal(err)
	}
	w, err := s.World("chengdu-s")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Estimate(&w.Split.Test[i%len(w.Split.Test)].Matched)
	}
}

// BenchmarkEstimateBaselines measures the baselines' estimation latency.
func BenchmarkEstimateBaselines(b *testing.B) {
	s := benchSuite(b)
	for _, method := range []string{"TEMP", "LR", "GBM", "STNN", "MURAT"} {
		method := method
		b.Run(method, func(b *testing.B) {
			m, err := s.Model("chengdu-s", method)
			if err != nil {
				b.Fatal(err)
			}
			w, err := s.World("chengdu-s")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Estimate(&w.Split.Test[i%len(w.Split.Test)].Matched)
			}
		})
	}
}

// BenchmarkTrainStep measures one optimizer step (batch forward+backward)
// of DeepOD — the ablation bench for the gradient-accumulation design
// choice of DESIGN.md §4.1, across batch sizes.
func BenchmarkTrainStep(b *testing.B) {
	city, err := BuildCity("chengdu-s", CityOptions{Orders: 200, HorizonDays: 14})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{8, 32, 128} {
		batch := batch
		for _, workers := range []int{1, 2} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers%d", sizeName(batch), workers), func(b *testing.B) {
				cfg := tinyBenchConfig()
				cfg.BatchSize = batch
				cfg.Epochs = 1 << 20 // MaxSteps terminates the run
				cfg.TrainWorkers = workers
				b.ReportAllocs()
				m, err := TrainWithMaxSteps(cfg, city, b.N)
				if err != nil {
					b.Fatal(err)
				}
				_ = m
			})
		}
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "batch8"
	case 32:
		return "batch32"
	case 128:
		return "batch128"
	}
	return "batch"
}

func tinyBenchConfig() Config {
	c := SmallConfig()
	c.Ds, c.Dt = 8, 8
	c.D1m, c.D2m, c.D3m, c.D4m = 16, 8, 16, 8
	c.D5m, c.D6m, c.D7m, c.D9m = 16, 8, 16, 16
	c.Dh, c.Dtraf = 16, 8
	c.EmbedWalks, c.EmbedEpochs = 1, 1
	return c
}

// TrainWithMaxSteps trains a model for at most maxSteps optimizer steps
// (benchmark helper).
func TrainWithMaxSteps(cfg Config, city *City, maxSteps int) (*Model, error) {
	return Train(cfg, city, &TrainOptions{MaxSteps: maxSteps})
}

// BenchmarkEmbedMethodStudy regenerates the §5 embedding-method comparison
// (node2vec vs DeepWalk vs LINE initialization).
func BenchmarkEmbedMethodStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEmbedStudy(experiments.TinyScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkExtRouteComparison runs the extension experiment comparing
// OD-based DeepOD against the route-based RouteETA estimator.
func BenchmarkExtRouteComparison(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunExtRoute(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}
