module deepod

go 1.22
