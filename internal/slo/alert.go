package slo

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"deepod/internal/obs"
)

// State is an alert's lifecycle position.
type State string

const (
	// StateFiring means the alert's condition currently holds.
	StateFiring State = "firing"
	// StateResolved means the condition stopped holding.
	StateResolved State = "resolved"
)

// Alert describes one alert identity and its current evidence. Name is the
// deduplication key: repeated Set calls for the same name collapse into
// one firing alert until it resolves.
type Alert struct {
	Name string `json:"name"`
	// Severity picks the notification log level: "page" logs at Error,
	// anything else at Warn.
	Severity string `json:"severity"`
	// Labels identify the source (slo, rule, shard, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Annotations carry the evidence (burn rates, PSI, thresholds).
	Annotations map[string]any `json:"annotations,omitempty"`
	// Value is the headline number behind the alert (burn rate, PSI).
	Value float64 `json:"value"`
}

// Event is one state transition, delivered to subscribers and retained in
// the history ring.
type Event struct {
	Alert
	State State     `json:"state"`
	At    time.Time `json:"at"`
}

// ActiveAlert is a firing alert's live record.
type ActiveAlert struct {
	Alert
	Since time.Time `json:"since"`
	// LastSet is the most recent evaluation that confirmed the condition.
	LastSet time.Time `json:"last_set"`
	// Sets counts evaluations that confirmed the condition while firing
	// (dedup: they update evidence, they do not re-notify).
	Sets uint64 `json:"sets"`
}

// ManagerConfig assembles a Manager; every field defaults.
type ManagerConfig struct {
	// HistorySize bounds the transition-event ring (default 256).
	HistorySize int
	// Registry receives tte_alert_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger receives one line per transition (nil logs nowhere).
	Logger *slog.Logger
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Manager is the process-wide alert surface: a level-triggered,
// deduplicating firing/resolved state machine. Sources (the SLO evaluator,
// the quality monitor's drift detector) report the current truth of their
// condition with Set; the manager turns edges into notifications, keeps
// the firing set and a bounded history, and fans transitions out to
// subscribers (the anomaly-triggered profiler). All methods are safe for
// concurrent use; subscribers run outside the manager lock and must not
// block for long.
type Manager struct {
	cfg ManagerConfig
	now func() time.Time

	mu      sync.Mutex
	active  map[string]*ActiveAlert
	history []Event // ring, oldest first
	head    int
	total   int
	subs    []func(Event)

	firingGauge *obs.Gauge
	firedTotal  *obs.Counter
	resolvTotal *obs.Counter
}

// NewManager builds a Manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_alerts_firing", "Alerts currently in the firing state.")
	reg.Help("tte_alert_transitions_total", "Alert state transitions, by new state.")
	return &Manager{
		cfg:         cfg,
		now:         cfg.Now,
		active:      make(map[string]*ActiveAlert),
		firingGauge: reg.Gauge("tte_alerts_firing"),
		firedTotal:  reg.Counter("tte_alert_transitions_total", "state", "firing"),
		resolvTotal: reg.Counter("tte_alert_transitions_total", "state", "resolved"),
	}
}

// Subscribe registers fn to receive every state transition. Subscribers
// are invoked synchronously (outside the manager lock) in registration
// order; slow work belongs in a goroutine on the subscriber's side.
func (m *Manager) Subscribe(fn func(Event)) {
	m.mu.Lock()
	m.subs = append(m.subs, fn)
	m.mu.Unlock()
}

// Set reports the current truth of a's condition. Edges transition the
// state machine — resolved→firing notifies and records, firing→resolved
// likewise; levels are deduplicated — a re-confirmed firing alert only
// updates its evidence, and a clear on an unknown name is a no-op.
func (m *Manager) Set(a Alert, firing bool) {
	now := m.now()
	var ev *Event
	m.mu.Lock()
	cur, exists := m.active[a.Name]
	switch {
	case firing && !exists:
		m.active[a.Name] = &ActiveAlert{Alert: a, Since: now, LastSet: now, Sets: 1}
		ev = &Event{Alert: a, State: StateFiring, At: now}
	case firing && exists:
		cur.Alert = a // refresh evidence
		cur.LastSet = now
		cur.Sets++
	case !firing && exists:
		delete(m.active, a.Name)
		ev = &Event{Alert: a, State: StateResolved, At: now}
	}
	var subs []func(Event)
	if ev != nil {
		m.pushHistoryLocked(*ev)
		subs = append(subs, m.subs...)
	}
	m.firingGauge.Set(float64(len(m.active)))
	m.mu.Unlock()

	if ev == nil {
		return
	}
	if ev.State == StateFiring {
		m.firedTotal.Inc()
	} else {
		m.resolvTotal.Inc()
	}
	m.notify(*ev)
	for _, fn := range subs {
		fn(*ev)
	}
}

// SetAlert is the narrow level-triggered entry point other packages bind
// to through a local one-method interface (quality.AlertSink), keeping
// them decoupled from this package's types.
func (m *Manager) SetAlert(name string, firing bool, severity string, value float64, annotations map[string]any) {
	m.Set(Alert{Name: name, Severity: severity, Value: value, Annotations: annotations}, firing)
}

func (m *Manager) notify(ev Event) {
	if m.cfg.Logger == nil {
		return
	}
	attrs := []any{"alert", ev.Name, "severity", ev.Severity, "value", ev.Value}
	for k, v := range ev.Labels {
		attrs = append(attrs, k, v)
	}
	for k, v := range ev.Annotations {
		attrs = append(attrs, k, v)
	}
	switch {
	case ev.State == StateResolved:
		m.cfg.Logger.Info("alert resolved", attrs...)
	case ev.Severity == "page":
		m.cfg.Logger.Error("alert firing", attrs...)
	default:
		m.cfg.Logger.Warn("alert firing", attrs...)
	}
}

func (m *Manager) pushHistoryLocked(ev Event) {
	if len(m.history) < m.cfg.HistorySize {
		m.history = append(m.history, ev)
	} else {
		m.history[m.head] = ev
		m.head = (m.head + 1) % len(m.history)
	}
	m.total++
}

// Active returns the firing alerts, sorted by name.
func (m *Manager) Active() []ActiveAlert {
	m.mu.Lock()
	out := make([]ActiveAlert, 0, len(m.active))
	for _, a := range m.active {
		out = append(out, *a)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// History returns retained transitions, newest first.
func (m *Manager) History() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, 0, len(m.history))
	for i := len(m.history) - 1; i >= 0; i-- {
		out = append(out, m.history[(m.head+i)%len(m.history)])
	}
	return out
}

// alertsPayload is the GET /debug/alerts body.
type alertsPayload struct {
	Firing []ActiveAlert `json:"firing"`
	// History holds transitions newest first; Transitions counts all of
	// them ever, including ones the ring has dropped.
	History     []Event `json:"history"`
	Transitions int     `json:"transitions"`
}

// Handler serves GET /debug/alerts: the firing set and transition history
// as JSON. Served raw like /metrics — reading alerts must not create any.
func (m *Manager) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		m.mu.Lock()
		total := m.total
		m.mu.Unlock()
		body := alertsPayload{Firing: m.Active(), History: m.History(), Transitions: total}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}
