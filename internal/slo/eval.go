package slo

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"time"

	"deepod/internal/obs"
	"deepod/internal/telemetry"
)

// Config assembles an Evaluator.
type Config struct {
	// Objectives are the SLOs to evaluate. Required, validated at New.
	Objectives []Objective
	// Rules are the burn-rate alert rules applied to every objective
	// (default DefaultRules(0)).
	Rules []BurnRule
	// Interval is the snapshot/evaluation period (default 10s). Evaluation
	// happens on a background goroutine; nothing runs on request paths.
	Interval time.Duration
	// MaxPoints bounds each objective's history ring (default: enough to
	// cover the longest rule window at Interval, capped at 32768). A
	// window reaching past the retained history falls back to the oldest
	// point — burn-since-oldest, which is the right degradation: young
	// processes alert on what they have seen.
	MaxPoints int
	// Source is the registry snapshots are read from (default
	// obs.Default()).
	Source *obs.Registry
	// Registry receives tte_slo_* metrics (default Source).
	Registry *obs.Registry
	// Manager receives alert state transitions. Optional; nil means
	// evaluate-and-expose only.
	Manager *Manager
	// Logger receives evaluator lifecycle lines (nil logs nowhere).
	Logger *slog.Logger
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// point is one cumulative (good, total) observation. The history itself
// lives in a telemetry.Ring — the same bounded ring the metric history
// sampler uses, replacing the private ring this package once grew.
type point struct {
	t           time.Time
	good, total float64
}

// before returns the newest point with t <= cutoff, or the oldest point
// when every retained point is newer (young history: burn-since-oldest).
// ok is false only when the ring is empty.
func before(r *telemetry.Ring[point], cutoff time.Time) (point, bool) {
	if r.Len() == 0 {
		return point{}, false
	}
	// Points are appended in time order; scan back from the newest.
	for i := r.Len() - 1; i >= 0; i-- {
		if p := r.At(i); !p.t.After(cutoff) {
			return p, true
		}
	}
	return r.At(0), true
}

// ruleState tracks one (objective, rule) alert's evaluation results.
type ruleState struct {
	burnLong  float64
	burnShort float64
	firing    bool
}

// objectiveState is one objective's live evaluation record.
type objectiveState struct {
	obj       Objective
	hist      *telemetry.Ring[point]
	rules     []ruleState
	good      float64 // cumulative at last eval
	total     float64
	sli       float64 // over the longest rule window
	remaining float64 // error budget remaining over the longest window
	sliGauge  *obs.Gauge
	remGauge  *obs.Gauge
	burnG     []*obs.Gauge // per rule, long-window burn
}

// Evaluator periodically snapshots the source registry, reduces each
// objective to cumulative (good, total) counts, derives windowed burn
// rates by differencing the history ring, and drives the alert manager.
// Construct with New, start the loop with Start, stop with Close; Tick
// runs one evaluation synchronously (tests, benchmarks).
type Evaluator struct {
	cfg Config
	now func() time.Time

	mu   sync.Mutex
	objs []*objectiveState
	last time.Time

	stop     chan struct{}
	done     chan struct{}
	startMu  sync.Mutex
	started  bool
	evaluate *obs.Counter
}

// New validates cfg and builds an Evaluator (not yet running).
func New(cfg Config) (*Evaluator, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: Config.Objectives is empty")
	}
	seen := map[string]bool{}
	for i := range cfg.Objectives {
		o := &cfg.Objectives[i]
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
	}
	if len(cfg.Rules) == 0 {
		cfg.Rules = DefaultRules(0)
	}
	var longest time.Duration
	ruleNames := map[string]bool{}
	for i := range cfg.Rules {
		r := &cfg.Rules[i]
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if ruleNames[r.Name] {
			return nil, fmt.Errorf("slo: duplicate burn rule %q", r.Name)
		}
		ruleNames[r.Name] = true
		if r.Long > longest {
			longest = r.Long
		}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = int(longest/cfg.Interval) + 2
		if cfg.MaxPoints > 32768 {
			cfg.MaxPoints = 32768
		}
		if cfg.MaxPoints < 64 {
			cfg.MaxPoints = 64
		}
	}
	if cfg.Source == nil {
		cfg.Source = obs.Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = cfg.Source
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_slo_sli", "Achieved service level over the longest rule window, by objective.")
	reg.Help("tte_slo_burn_rate", "Long-window error-budget burn rate, by objective and rule.")
	reg.Help("tte_slo_error_budget_remaining", "Fraction of the error budget left over the longest rule window.")
	reg.Help("tte_slo_evaluations_total", "SLO evaluator ticks.")
	e := &Evaluator{
		cfg:      cfg,
		now:      cfg.Now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		evaluate: reg.Counter("tte_slo_evaluations_total"),
	}
	for i := range cfg.Objectives {
		o := cfg.Objectives[i]
		st := &objectiveState{
			obj:       o,
			hist:      telemetry.NewRing[point](cfg.MaxPoints),
			rules:     make([]ruleState, len(cfg.Rules)),
			sli:       math.NaN(),
			remaining: math.NaN(),
			sliGauge:  reg.Gauge("tte_slo_sli", "slo", o.Name),
			remGauge:  reg.Gauge("tte_slo_error_budget_remaining", "slo", o.Name),
		}
		for _, r := range cfg.Rules {
			st.burnG = append(st.burnG, reg.Gauge("tte_slo_burn_rate", "slo", o.Name, "rule", r.Name))
		}
		e.objs = append(e.objs, st)
	}
	return e, nil
}

// Start launches the evaluation loop. Safe to call once; Close stops it.
func (e *Evaluator) Start() {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.started {
		return
	}
	e.started = true
	if e.cfg.Logger != nil {
		e.cfg.Logger.Info("slo evaluator running",
			"objectives", len(e.objs), "rules", len(e.cfg.Rules), "interval", e.cfg.Interval)
	}
	go func() {
		defer close(e.done)
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		e.Tick() // an immediate baseline point, so the first window has an anchor
		for {
			select {
			case <-tick.C:
				e.Tick()
			case <-e.stop:
				return
			}
		}
	}()
}

// Close stops the loop (idempotent). Objectives remain readable.
func (e *Evaluator) Close() {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if !e.started {
		return
	}
	e.started = false
	close(e.stop)
	<-e.done
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
}

// alertKey names the (objective, rule) alert: "slo:<objective>:<rule>".
func alertKey(obj, rule string) string { return "slo:" + obj + ":" + rule }

// Tick runs one evaluation: snapshot, measure, append, derive burns,
// drive the manager. It is the unit the background loop repeats and is
// exported so tests and benchmarks can evaluate deterministically.
func (e *Evaluator) Tick() {
	now := e.now()
	samples := e.cfg.Source.Snapshot()
	e.evaluate.Inc()

	// Manager calls happen outside e.mu: the manager notifies subscribers
	// and logs, and nothing it does may re-enter the evaluator.
	type setCall struct {
		a      Alert
		firing bool
	}
	var sets []setCall

	e.mu.Lock()
	e.last = now
	for _, st := range e.objs {
		st.good, st.total = st.obj.measure(samples)
		st.hist.Push(point{t: now, good: st.good, total: st.total})

		budget := 1 - st.obj.Target
		var longest time.Duration
		for ri := range e.cfg.Rules {
			r := &e.cfg.Rules[ri]
			rs := &st.rules[ri]
			rs.burnLong = e.burnOver(st, now, r.Long, budget)
			rs.burnShort = e.burnOver(st, now, r.Short, budget)
			firing := rs.burnLong >= r.Burn && rs.burnShort >= r.Burn
			changed := firing != rs.firing
			rs.firing = firing
			st.burnG[ri].Set(rs.burnLong)
			if e.cfg.Manager != nil && (firing || changed) {
				labels := map[string]string{"slo": st.obj.Name, "rule": r.Name}
				for k, v := range st.obj.Labels {
					labels[k] = v
				}
				sets = append(sets, setCall{
					a: Alert{
						Name:     alertKey(st.obj.Name, r.Name),
						Severity: r.Severity,
						Labels:   labels,
						Annotations: map[string]any{
							"burn_long":  round3(rs.burnLong),
							"burn_short": round3(rs.burnShort),
							"threshold":  r.Burn,
							"target":     st.obj.Target,
							"long":       r.Long.String(),
							"short":      r.Short.String(),
						},
						Value: rs.burnLong,
					},
					firing: firing,
				})
			}
			if r.Long > longest {
				longest = r.Long
			}
		}

		// SLI and budget over the longest window.
		st.sli, st.remaining = math.NaN(), math.NaN()
		if p, ok := before(st.hist, now.Add(-longest)); ok {
			dTotal := st.total - p.total
			if dTotal > 0 {
				st.sli = (st.good - p.good) / dTotal
				st.remaining = 1 - (1-st.sli)/budget
			}
		}
		if !math.IsNaN(st.sli) {
			st.sliGauge.Set(st.sli)
			st.remGauge.Set(st.remaining)
		}
	}
	e.mu.Unlock()

	for _, s := range sets {
		e.cfg.Manager.Set(s.a, s.firing)
	}
}

// burnOver derives the error-budget burn rate over the window ending now:
// the window's bad fraction divided by the budget. No traffic in the
// window burns nothing — idle services do not page.
func (e *Evaluator) burnOver(st *objectiveState, now time.Time, window time.Duration, budget float64) float64 {
	p, ok := before(st.hist, now.Add(-window))
	if !ok {
		return 0
	}
	dTotal := st.total - p.total
	if dTotal <= 0 {
		return 0
	}
	badFrac := 1 - (st.good-p.good)/dTotal
	if badFrac < 0 {
		badFrac = 0
	}
	return badFrac / budget
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// RuleStatus is one (objective, rule) row of /debug/slo.
type RuleStatus struct {
	Rule      string    `json:"rule"`
	Severity  string    `json:"severity"`
	LongSec   float64   `json:"long_sec"`
	ShortSec  float64   `json:"short_sec"`
	Threshold float64   `json:"threshold"`
	BurnLong  jsonFloat `json:"burn_long"`
	BurnShort jsonFloat `json:"burn_short"`
	Firing    bool      `json:"firing"`
}

// ObjectiveStatus is one objective's row of /debug/slo.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Target float64 `json:"target"`
	// Good and Total are the cumulative event counts at the last tick.
	Good  float64 `json:"good"`
	Total float64 `json:"total"`
	// SLI and BudgetRemaining cover the longest rule window; null before
	// the first in-window traffic.
	SLI             jsonFloat    `json:"sli"`
	BudgetRemaining jsonFloat    `json:"error_budget_remaining"`
	Rules           []RuleStatus `json:"rules"`
}

// Status is the GET /debug/slo payload.
type Status struct {
	IntervalSeconds float64           `json:"interval_seconds"`
	LastEval        time.Time         `json:"last_eval"`
	Objectives      []ObjectiveStatus `json:"objectives"`
}

// Status snapshots the evaluator's per-objective state.
func (e *Evaluator) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Status{IntervalSeconds: e.cfg.Interval.Seconds(), LastEval: e.last}
	for _, st := range e.objs {
		os := ObjectiveStatus{
			Name:            st.obj.Name,
			Kind:            st.obj.kind(),
			Target:          st.obj.Target,
			Good:            st.good,
			Total:           st.total,
			SLI:             jsonFloat(st.sli),
			BudgetRemaining: jsonFloat(st.remaining),
		}
		for ri := range e.cfg.Rules {
			r := &e.cfg.Rules[ri]
			rs := st.rules[ri]
			os.Rules = append(os.Rules, RuleStatus{
				Rule:      r.Name,
				Severity:  r.Severity,
				LongSec:   r.Long.Seconds(),
				ShortSec:  r.Short.Seconds(),
				Threshold: r.Burn,
				BurnLong:  jsonFloat(rs.burnLong),
				BurnShort: jsonFloat(rs.burnShort),
				Firing:    rs.firing,
			})
		}
		out.Objectives = append(out.Objectives, os)
	}
	return out
}

// Handler serves GET /debug/slo: objective status as JSON. Raw like
// /metrics — reading SLO state must not move it.
func (e *Evaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Status())
	})
}
