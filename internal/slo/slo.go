// Package slo is the judgment layer on top of the observability substrate:
// declarative service-level objectives evaluated from periodic snapshots of
// the obs registry, multi-window multi-burn-rate alert rules in the Google
// SRE Workbook style, and an alert manager with a firing/resolved state
// machine that every alert source in the process (SLO burn, quality drift,
// shed rate) routes through.
//
// The pieces:
//
//   - Objective: one SLO — "99.9% of /estimate under 5 ms" (latency SLI
//     over a histogram) or "99% non-5xx" (ratio SLI over counters). SLIs
//     are selected out of the registry by metric family name plus label
//     equality, so anything already on /metrics can carry an SLO.
//   - BurnRule: an alert rule over two windows. The burn rate is how fast
//     the error budget (1 − target) is being spent, as a multiple of the
//     sustainable rate; a rule fires when BOTH its long and short windows
//     exceed the threshold — the long window gives significance, the short
//     window confirms the problem is still happening (and resets fast).
//   - Evaluator: snapshots the registry every Interval, appends cumulative
//     (good, total) points to a bounded per-objective history ring, derives
//     windowed burn rates by differencing, and drives the Manager.
//   - Manager (alert.go): deduplicating firing/resolved state machine with
//     slog notifications, a bounded event history, subscriber hooks (the
//     anomaly-triggered profiler subscribes) and tte_alert_* metrics.
//
// Exported metric families:
//
//	tte_slo_sli{slo}                     gauge, SLI over the longest rule window
//	tte_slo_burn_rate{slo,rule}          gauge, long-window burn rate per rule
//	tte_slo_error_budget_remaining{slo}  gauge, 1 − spent/budget over the longest window
//	tte_slo_evaluations_total            counter, evaluator ticks
//	tte_alerts_firing                    gauge, currently firing alerts
//	tte_alert_transitions_total{state}   counter {state=firing|resolved}
//
// GET /debug/slo (Evaluator.Handler) serves objective status; GET
// /debug/alerts (Manager.Handler) serves firing alerts plus history.
package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"deepod/internal/obs"
)

// Selector picks metric children out of a registry snapshot: every sample
// of family Metric whose labels include all Match pairs. An empty Match
// sums across all children of the family (e.g. both shed reasons).
type Selector struct {
	Metric string            `json:"metric"`
	Match  map[string]string `json:"match,omitempty"`
}

func (s Selector) matches(sm obs.Sample) bool {
	if sm.Name != s.Metric {
		return false
	}
	for k, v := range s.Match {
		if sm.Label(k) != v {
			return false
		}
	}
	return true
}

// RatioSLI is a good/total SLI over counters: Total selects the event
// counter, Bad the failure counter (a subset of Total's events, e.g.
// code="5xx" within tte_http_requests_total{route="/estimate"}).
type RatioSLI struct {
	Bad   Selector `json:"bad"`
	Total Selector `json:"total"`
}

// LatencySLI is a threshold SLI over a histogram: an event is good when it
// landed in a bucket whose upper bound is <= ThresholdSeconds. Pick a
// threshold equal to one of the histogram's bucket bounds (obs.DefBuckets
// includes 5ms, 10ms, ...); a threshold between bounds undercounts good
// events and over-alerts, never the reverse.
type LatencySLI struct {
	Histogram        Selector `json:"histogram"`
	ThresholdSeconds float64  `json:"threshold_sec"`
}

// Objective is one declarative SLO. Exactly one of Ratio or Latency must
// be set.
type Objective struct {
	// Name identifies the SLO in metrics, alerts and /debug/slo.
	Name string `json:"name"`
	// Target is the objective fraction in (0, 1), e.g. 0.999. The error
	// budget is 1 − Target.
	Target  float64     `json:"target"`
	Ratio   *RatioSLI   `json:"ratio,omitempty"`
	Latency *LatencySLI `json:"latency,omitempty"`
	// Labels are attached to every alert the objective raises — the hook
	// for per-shard / per-generation SLOs later.
	Labels map[string]string `json:"labels,omitempty"`
}

// Validate rejects malformed objectives at construction, not mid-flight.
func (o *Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective needs a name")
	}
	if !(o.Target > 0 && o.Target < 1) {
		return fmt.Errorf("slo: objective %q: target %v outside (0, 1)", o.Name, o.Target)
	}
	switch {
	case o.Ratio == nil && o.Latency == nil:
		return fmt.Errorf("slo: objective %q: needs a ratio or latency SLI", o.Name)
	case o.Ratio != nil && o.Latency != nil:
		return fmt.Errorf("slo: objective %q: ratio and latency SLIs are mutually exclusive", o.Name)
	case o.Ratio != nil && (o.Ratio.Bad.Metric == "" || o.Ratio.Total.Metric == ""):
		return fmt.Errorf("slo: objective %q: ratio SLI needs bad and total metric names", o.Name)
	case o.Latency != nil && o.Latency.Histogram.Metric == "":
		return fmt.Errorf("slo: objective %q: latency SLI needs a histogram metric name", o.Name)
	case o.Latency != nil && !(o.Latency.ThresholdSeconds > 0):
		return fmt.Errorf("slo: objective %q: latency threshold %v must be positive", o.Name, o.Latency.ThresholdSeconds)
	}
	return nil
}

// kind names the SLI flavor for /debug/slo.
func (o *Objective) kind() string {
	if o.Latency != nil {
		return "latency"
	}
	return "availability"
}

// measure reduces one registry snapshot to the objective's cumulative
// (good, total) event counts.
func (o *Objective) measure(samples []obs.Sample) (good, total float64) {
	if o.Ratio != nil {
		var bad float64
		for _, s := range samples {
			if s.Kind != "counter" {
				continue
			}
			if o.Ratio.Total.matches(s) {
				total += s.Value
			}
			if o.Ratio.Bad.matches(s) {
				bad += s.Value
			}
		}
		good = total - bad
		if good < 0 {
			good = 0
		}
		return good, total
	}
	// Latency: good = observations in buckets with upper <= threshold.
	// The tiny relative epsilon forgives float formatting of bounds; it is
	// far below any bucket spacing in practice.
	thr := o.Latency.ThresholdSeconds * (1 + 1e-9)
	for _, s := range samples {
		if s.Kind != "histogram" || !o.Latency.Histogram.matches(s) {
			continue
		}
		total += float64(s.Count)
		for i, upper := range s.BucketUppers {
			if upper > thr {
				break
			}
			good += float64(s.BucketCounts[i])
		}
	}
	return good, total
}

// BurnRule is one multi-window burn-rate alert rule. It fires when the
// burn rate over BOTH Long and Short exceeds Burn. With a 30-day budget
// the SRE Workbook's canonical pairs are 1h/5m at 14.4× (page: 2% of the
// budget in an hour) and 3d/6h at 1× (ticket: on pace to exhaust it).
type BurnRule struct {
	// Name distinguishes the rule in alert names and metrics ("fast",
	// "slow").
	Name string `json:"name"`
	// Severity is attached to the alerts the rule raises ("page",
	// "ticket") and picks the notification log level.
	Severity string `json:"severity"`
	// Long is the significance window; Short the confirmation window.
	Long  time.Duration `json:"-"`
	Short time.Duration `json:"-"`
	// Burn is the firing threshold in error-budget multiples.
	Burn float64 `json:"burn"`
}

// Validate rejects malformed rules.
func (r *BurnRule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo: burn rule needs a name")
	}
	if r.Long <= 0 || r.Short <= 0 || r.Short > r.Long {
		return fmt.Errorf("slo: burn rule %q: want 0 < short <= long, got short=%v long=%v", r.Name, r.Short, r.Long)
	}
	if !(r.Burn > 0) {
		return fmt.Errorf("slo: burn rule %q: burn threshold %v must be positive", r.Name, r.Burn)
	}
	return nil
}

// DefaultRules returns the Workbook-style rule pair: a fast page on a
// 1h/5m window at fastBurn (14.4 when <= 0) and a slow ticket on a 3d/6h
// window at 1×.
func DefaultRules(fastBurn float64) []BurnRule {
	if fastBurn <= 0 {
		fastBurn = 14.4
	}
	return []BurnRule{
		{Name: "fast", Severity: "page", Long: time.Hour, Short: 5 * time.Minute, Burn: fastBurn},
		{Name: "slow", Severity: "ticket", Long: 72 * time.Hour, Short: 6 * time.Hour, Burn: 1},
	}
}

// DefaultObjectives returns the serving tier's built-in SLOs, over metric
// families internal/serve and internal/infer already export:
//
//   - estimate-availability: 99% of /estimate requests non-5xx.
//   - estimate-latency: 99.9% of /estimate requests under 5 ms.
//   - estimate-shed: 99% of engine admissions not shed (queue full or
//     queue timeout) — internal/infer's shed rate, routed through the
//     same manager instead of living only as a counter.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:   "estimate-availability",
			Target: 0.99,
			Ratio: &RatioSLI{
				Bad:   Selector{Metric: "tte_http_requests_total", Match: map[string]string{"route": "/estimate", "code": "5xx"}},
				Total: Selector{Metric: "tte_http_requests_total", Match: map[string]string{"route": "/estimate"}},
			},
		},
		{
			Name:   "estimate-latency",
			Target: 0.999,
			Latency: &LatencySLI{
				Histogram:        Selector{Metric: "tte_http_request_seconds", Match: map[string]string{"route": "/estimate"}},
				ThresholdSeconds: 0.005,
			},
		},
		{
			Name:   "estimate-shed",
			Target: 0.99,
			Ratio: &RatioSLI{
				Bad:   Selector{Metric: "tte_infer_shed_total"},
				Total: Selector{Metric: "tte_infer_requests_total"},
			},
		},
	}
}

// fileConfig is the -slo-config JSON shape: objectives as above, rules
// with windows in seconds.
type fileConfig struct {
	IntervalSec float64     `json:"interval_sec,omitempty"`
	Objectives  []Objective `json:"objectives"`
	Rules       []struct {
		Name     string  `json:"name"`
		Severity string  `json:"severity"`
		ShortSec float64 `json:"short_sec"`
		LongSec  float64 `json:"long_sec"`
		Burn     float64 `json:"burn"`
	} `json:"rules"`
}

// LoadConfig reads objectives, rules and an optional evaluation interval
// from a JSON file (see fileConfig for the shape). Missing rules fall back
// to DefaultRules; missing objectives are an error — an empty SLO file is
// a misconfiguration, not a degenerate success.
func LoadConfig(path string) (objectives []Objective, rules []BurnRule, interval time.Duration, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("slo: reading config: %w", err)
	}
	var fc fileConfig
	if err := json.Unmarshal(b, &fc); err != nil {
		return nil, nil, 0, fmt.Errorf("slo: parsing %s: %w", path, err)
	}
	if len(fc.Objectives) == 0 {
		return nil, nil, 0, fmt.Errorf("slo: %s defines no objectives", path)
	}
	for i := range fc.Objectives {
		if err := fc.Objectives[i].Validate(); err != nil {
			return nil, nil, 0, err
		}
	}
	for _, r := range fc.Rules {
		rules = append(rules, BurnRule{
			Name:     r.Name,
			Severity: r.Severity,
			Short:    time.Duration(r.ShortSec * float64(time.Second)),
			Long:     time.Duration(r.LongSec * float64(time.Second)),
			Burn:     r.Burn,
		})
	}
	if len(rules) == 0 {
		rules = DefaultRules(0)
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, nil, 0, err
		}
	}
	if fc.IntervalSec > 0 {
		interval = time.Duration(fc.IntervalSec * float64(time.Second))
	}
	return fc.Objectives, rules, interval, nil
}

// jsonFloat marshals NaN/±Inf as null, like quality.JSONFloat — burn rates
// and SLIs are NaN before any traffic arrives.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}
