package slo

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"deepod/internal/obs"
)

// manualClock is a mutex-guarded test clock.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestObjectiveValidate(t *testing.T) {
	ratio := &RatioSLI{
		Bad:   Selector{Metric: "bad_total"},
		Total: Selector{Metric: "all_total"},
	}
	latency := &LatencySLI{Histogram: Selector{Metric: "lat_seconds"}, ThresholdSeconds: 0.005}
	cases := []struct {
		name string
		obj  Objective
		ok   bool
	}{
		{"ratio ok", Objective{Name: "a", Target: 0.99, Ratio: ratio}, true},
		{"latency ok", Objective{Name: "b", Target: 0.999, Latency: latency}, true},
		{"no name", Objective{Target: 0.99, Ratio: ratio}, false},
		{"target zero", Objective{Name: "c", Target: 0, Ratio: ratio}, false},
		{"target one", Objective{Name: "d", Target: 1, Ratio: ratio}, false},
		{"no sli", Objective{Name: "e", Target: 0.99}, false},
		{"both slis", Objective{Name: "f", Target: 0.99, Ratio: ratio, Latency: latency}, false},
		{"ratio missing total", Objective{Name: "g", Target: 0.99, Ratio: &RatioSLI{Bad: Selector{Metric: "x"}}}, false},
		{"latency zero threshold", Objective{Name: "h", Target: 0.99, Latency: &LatencySLI{Histogram: Selector{Metric: "x"}}}, false},
	}
	for _, tc := range cases {
		err := tc.obj.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestBurnRuleValidate(t *testing.T) {
	good := BurnRule{Name: "fast", Severity: "page", Long: time.Hour, Short: 5 * time.Minute, Burn: 14.4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	bad := []BurnRule{
		{Name: "", Long: time.Hour, Short: time.Minute, Burn: 1},
		{Name: "x", Long: 0, Short: time.Minute, Burn: 1},
		{Name: "x", Long: time.Minute, Short: time.Hour, Burn: 1}, // short > long
		{Name: "x", Long: time.Hour, Short: time.Minute, Burn: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
}

func TestRatioMeasure(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rq_total", "route", "/estimate", "code", "2xx").Add(90)
	reg.Counter("rq_total", "route", "/estimate", "code", "5xx").Add(10)
	reg.Counter("rq_total", "route", "/other", "code", "5xx").Add(7) // different route: excluded
	obj := Objective{
		Name: "avail", Target: 0.99,
		Ratio: &RatioSLI{
			Bad:   Selector{Metric: "rq_total", Match: map[string]string{"route": "/estimate", "code": "5xx"}},
			Total: Selector{Metric: "rq_total", Match: map[string]string{"route": "/estimate"}},
		},
	}
	good, total := obj.measure(reg.Snapshot())
	if total != 100 || good != 90 {
		t.Fatalf("got good=%v total=%v, want 90/100", good, total)
	}
}

func TestLatencyMeasure(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.001, 0.005, 0.01}, "route", "/estimate")
	for i := 0; i < 7; i++ {
		h.Observe(0.0005) // <= 1ms bucket
	}
	h.Observe(0.003) // <= 5ms bucket
	h.Observe(0.008) // <= 10ms bucket: bad at 5ms threshold
	h.Observe(2.0)   // overflow: bad
	obj := Objective{
		Name: "lat", Target: 0.999,
		Latency: &LatencySLI{
			Histogram:        Selector{Metric: "lat_seconds", Match: map[string]string{"route": "/estimate"}},
			ThresholdSeconds: 0.005,
		},
	}
	good, total := obj.measure(reg.Snapshot())
	if total != 10 || good != 8 {
		t.Fatalf("got good=%v total=%v, want 8/10", good, total)
	}
}

// evalFixture wires a registry, manager and evaluator around a manual
// clock with a single availability objective and a single fast rule.
type evalFixture struct {
	clock *manualClock
	reg   *obs.Registry
	mgr   *Manager
	ev    *Evaluator
	good  *obs.Counter
	bad   *obs.Counter
}

func newEvalFixture(t *testing.T, target float64, rules []BurnRule) *evalFixture {
	t.Helper()
	clock := newManualClock()
	reg := obs.NewRegistry()
	f := &evalFixture{
		clock: clock,
		reg:   reg,
		good:  reg.Counter("rq_total", "code", "2xx"),
		bad:   reg.Counter("rq_total", "code", "5xx"),
	}
	f.mgr = NewManager(ManagerConfig{Registry: reg, Now: clock.now})
	ev, err := New(Config{
		Objectives: []Objective{{
			Name: "avail", Target: target,
			Ratio: &RatioSLI{
				Bad:   Selector{Metric: "rq_total", Match: map[string]string{"code": "5xx"}},
				Total: Selector{Metric: "rq_total"},
			},
		}},
		Rules:    rules,
		Interval: time.Second,
		Source:   reg,
		Manager:  f.mgr,
		Now:      clock.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.ev = ev
	return f
}

func TestBurnRateFiringAndResolution(t *testing.T) {
	rules := []BurnRule{{Name: "fast", Severity: "page", Long: time.Minute, Short: 10 * time.Second, Burn: 10}}
	f := newEvalFixture(t, 0.99, rules) // budget 1%: 10x burn needs >= 10% bad

	// Healthy baseline.
	f.good.Add(100)
	f.ev.Tick()
	if n := len(f.mgr.Active()); n != 0 {
		t.Fatalf("healthy tick: %d alerts firing", n)
	}

	// Spike: every request bad -> burn = 1.0/0.01 = 100x over both windows.
	f.clock.advance(15 * time.Second)
	f.bad.Add(50)
	f.ev.Tick()
	active := f.mgr.Active()
	if len(active) != 1 {
		t.Fatalf("spike tick: got %d firing alerts, want 1", len(active))
	}
	if want := "slo:avail:fast"; active[0].Name != want {
		t.Fatalf("alert name %q, want %q", active[0].Name, want)
	}
	if active[0].Severity != "page" {
		t.Fatalf("alert severity %q, want page", active[0].Severity)
	}
	if active[0].Value < 10 {
		t.Fatalf("burn value %v, want >= threshold 10", active[0].Value)
	}

	// Re-confirmation dedups: still one alert, evidence refreshed.
	f.clock.advance(5 * time.Second)
	f.bad.Add(50)
	f.ev.Tick()
	active = f.mgr.Active()
	if len(active) != 1 || active[0].Sets < 2 {
		t.Fatalf("dedup: got %d alerts, sets=%d", len(active), active[0].Sets)
	}

	// Recovery: short window (10s) goes clean while the long window still
	// remembers the spike — the multi-window rule resolves on the short.
	f.clock.advance(12 * time.Second)
	f.good.Add(1000)
	f.ev.Tick()
	f.clock.advance(11 * time.Second)
	f.good.Add(1000)
	f.ev.Tick()
	if n := len(f.mgr.Active()); n != 0 {
		t.Fatalf("recovery: %d alerts still firing", n)
	}
	hist := f.mgr.History()
	if len(hist) != 2 || hist[0].State != StateResolved || hist[1].State != StateFiring {
		t.Fatalf("history = %+v, want [resolved, firing]", hist)
	}
}

func TestNoTrafficNoBurn(t *testing.T) {
	rules := []BurnRule{{Name: "fast", Severity: "page", Long: time.Minute, Short: 10 * time.Second, Burn: 1}}
	f := newEvalFixture(t, 0.99, rules)
	for i := 0; i < 5; i++ {
		f.ev.Tick()
		f.clock.advance(time.Second)
	}
	if n := len(f.mgr.Active()); n != 0 {
		t.Fatalf("idle service fired %d alerts", n)
	}
	st := f.ev.Status()
	if !math.IsNaN(float64(st.Objectives[0].SLI)) {
		t.Fatalf("idle SLI = %v, want NaN", st.Objectives[0].SLI)
	}
}

func TestEvaluatorStatusAndHandler(t *testing.T) {
	rules := []BurnRule{{Name: "fast", Severity: "page", Long: time.Minute, Short: 10 * time.Second, Burn: 10}}
	f := newEvalFixture(t, 0.99, rules)
	f.ev.Tick() // zero baseline point
	f.clock.advance(30 * time.Second)
	f.good.Add(199)
	f.bad.Add(1)
	f.ev.Tick()

	st := f.ev.Status()
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %d", len(st.Objectives))
	}
	o := st.Objectives[0]
	if o.Name != "avail" || o.Kind != "availability" || o.Total != 200 {
		t.Fatalf("status = %+v", o)
	}
	// Window covers both ticks: 199 good of 200.
	if got := float64(o.SLI); math.Abs(got-0.995) > 1e-9 {
		t.Fatalf("SLI = %v, want 0.995", got)
	}
	// Budget 1%, spent 0.5% -> half remaining.
	if got := float64(o.BudgetRemaining); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("budget remaining = %v, want 0.5", got)
	}

	rr := httptest.NewRecorder()
	f.ev.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /debug/slo = %d", rr.Code)
	}
	var body Status
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(body.Objectives) != 1 || body.Objectives[0].Name != "avail" {
		t.Fatalf("handler body = %+v", body)
	}
	rr = httptest.NewRecorder()
	f.ev.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/debug/slo", nil))
	if rr.Code != 405 {
		t.Fatalf("POST /debug/slo = %d, want 405", rr.Code)
	}
}

func TestEvaluatorStartClose(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rq_total").Add(1)
	ev, err := New(Config{
		Objectives: []Objective{{
			Name: "avail", Target: 0.99,
			Ratio: &RatioSLI{
				Bad:   Selector{Metric: "rq_bad_total"},
				Total: Selector{Metric: "rq_total"},
			},
		}},
		Interval: time.Millisecond,
		Source:   reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ev.Start()
	ev.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for ev.Status().LastEval.IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("evaluator never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	ev.Close()
	ev.Close() // idempotent
}

func TestNewRejectsBadConfig(t *testing.T) {
	obj := Objective{Name: "a", Target: 0.99, Ratio: &RatioSLI{Bad: Selector{Metric: "b"}, Total: Selector{Metric: "t"}}}
	if _, err := New(Config{}); err == nil {
		t.Error("empty objectives accepted")
	}
	if _, err := New(Config{Objectives: []Objective{obj, obj}}); err == nil {
		t.Error("duplicate objective names accepted")
	}
	if _, err := New(Config{Objectives: []Objective{obj}, Rules: []BurnRule{{Name: "x", Long: time.Hour, Short: time.Minute, Burn: 1}, {Name: "x", Long: time.Hour, Short: time.Minute, Burn: 2}}}); err == nil {
		t.Error("duplicate rule names accepted")
	}
}

func TestManagerDedupAndSubscribe(t *testing.T) {
	clock := newManualClock()
	m := NewManager(ManagerConfig{Registry: obs.NewRegistry(), Now: clock.now})
	var events []Event
	m.Subscribe(func(ev Event) { events = append(events, ev) })

	a := Alert{Name: "x", Severity: "page", Value: 1}
	m.Set(a, false) // clear on unknown: no-op
	if len(events) != 0 {
		t.Fatalf("clear on unknown produced %d events", len(events))
	}
	m.Set(a, true)
	m.Set(a, true) // dedup
	m.Set(a, true)
	if len(events) != 1 || events[0].State != StateFiring {
		t.Fatalf("events after 3 firing sets = %+v, want one firing", events)
	}
	act := m.Active()
	if len(act) != 1 || act[0].Sets != 3 {
		t.Fatalf("active = %+v, want sets=3", act)
	}
	m.Set(a, false)
	if len(events) != 2 || events[1].State != StateResolved {
		t.Fatalf("events after clear = %+v", events)
	}
	if len(m.Active()) != 0 {
		t.Fatal("alert still active after clear")
	}
}

func TestManagerHistoryRing(t *testing.T) {
	clock := newManualClock()
	m := NewManager(ManagerConfig{HistorySize: 4, Registry: obs.NewRegistry(), Now: clock.now})
	for i := 0; i < 3; i++ { // 6 transitions through a 4-slot ring
		m.Set(Alert{Name: "x"}, true)
		m.Set(Alert{Name: "x"}, false)
	}
	hist := m.History()
	if len(hist) != 4 {
		t.Fatalf("history length %d, want 4", len(hist))
	}
	if hist[0].State != StateResolved || hist[3].State != StateFiring {
		t.Fatalf("history order wrong: %+v", hist)
	}

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /debug/alerts = %d", rr.Code)
	}
	var body struct {
		Firing      []ActiveAlert `json:"firing"`
		History     []Event       `json:"history"`
		Transitions int           `json:"transitions"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Transitions != 6 || len(body.History) != 4 || len(body.Firing) != 0 {
		t.Fatalf("payload = %+v", body)
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	cfg := `{
		"interval_sec": 5,
		"objectives": [
			{"name": "avail", "target": 0.99,
			 "ratio": {"bad": {"metric": "b"}, "total": {"metric": "t"}}}
		],
		"rules": [
			{"name": "fast", "severity": "page", "short_sec": 300, "long_sec": 3600, "burn": 14.4}
		]
	}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	objs, rules, interval, err := LoadConfig(path)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	if len(objs) != 1 || objs[0].Name != "avail" {
		t.Fatalf("objectives = %+v", objs)
	}
	if len(rules) != 1 || rules[0].Short != 5*time.Minute || rules[0].Long != time.Hour {
		t.Fatalf("rules = %+v", rules)
	}
	if interval != 5*time.Second {
		t.Fatalf("interval = %v", interval)
	}

	// Rules omitted: defaults.
	noRules := `{"objectives": [{"name": "a", "target": 0.9,
		"ratio": {"bad": {"metric": "b"}, "total": {"metric": "t"}}}]}`
	if err := os.WriteFile(path, []byte(noRules), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rules, _, err = LoadConfig(path)
	if err != nil {
		t.Fatalf("LoadConfig without rules: %v", err)
	}
	if len(rules) != 2 || rules[0].Name != "fast" || rules[1].Name != "slow" {
		t.Fatalf("default rules = %+v", rules)
	}

	// Error shapes.
	for name, content := range map[string]string{
		"empty objectives": `{"objectives": []}`,
		"bad json":         `{`,
		"invalid objective": `{"objectives": [{"name": "", "target": 0.9,
			"ratio": {"bad": {"metric": "b"}, "total": {"metric": "t"}}}]}`,
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, _, _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDefaultObjectivesValid(t *testing.T) {
	for _, o := range DefaultObjectives() {
		if err := o.Validate(); err != nil {
			t.Errorf("default objective %q invalid: %v", o.Name, err)
		}
	}
	for _, r := range DefaultRules(0) {
		if err := r.Validate(); err != nil {
			t.Errorf("default rule %q invalid: %v", r.Name, err)
		}
	}
	if DefaultRules(0)[0].Burn != 14.4 {
		t.Error("default fast burn is not 14.4")
	}
	if DefaultRules(6)[0].Burn != 6 {
		t.Error("fast burn override ignored")
	}
}

func TestJSONFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{1.5, "1.5"},
		{math.NaN(), "null"},
		{math.Inf(1), "null"},
	} {
		b, err := json.Marshal(jsonFloat(tc.v))
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(string(b)) != tc.want {
			t.Errorf("jsonFloat(%v) = %s, want %s", tc.v, b, tc.want)
		}
	}
}

func BenchmarkEvaluatorTick(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter("rq_total", "code", "2xx").Add(1000)
	reg.Counter("rq_total", "code", "5xx").Add(10)
	h := reg.Histogram("lat_seconds", obs.DefBuckets, "route", "/estimate")
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}
	ev, err := New(Config{
		Objectives: DefaultObjectives(),
		Interval:   time.Second,
		Source:     reg,
		Manager:    NewManager(ManagerConfig{Registry: reg}),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Tick()
	}
}

func BenchmarkManagerSet(b *testing.B) {
	m := NewManager(ManagerConfig{Registry: obs.NewRegistry()})
	a := Alert{Name: "x", Severity: "page", Value: 1}
	m.Set(a, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(a, true) // steady-state dedup path
	}
}
