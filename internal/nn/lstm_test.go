package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepod/internal/tensor"
)

// TestLSTMMatchesHandRolledFormulas recomputes Formulas 12–16 with plain
// loops and checks the layer agrees step by step.
func TestLSTMMatchesHandRolledFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := NewParamSet()
	const in, hidden = 3, 4
	l := NewLSTM(ps, rng, "l", in, hidden)
	xs := [][]float64{
		{0.5, -1, 0.25},
		{1, 0.1, -0.4},
	}

	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	gate := func(w *Param, b *Param, xh []float64) []float64 {
		out := make([]float64, hidden)
		for i := 0; i < hidden; i++ {
			s := b.Value.Data[i]
			for j, v := range xh {
				s += w.Value.At(i, j) * v
			}
			out[i] = s
		}
		return out
	}
	h := make([]float64, hidden)
	c := make([]float64, hidden)
	for _, x := range xs {
		xh := append(append([]float64{}, x...), h...)
		f := gate(l.Wf, l.Bf, xh)
		i := gate(l.Wi, l.Bi, xh)
		o := gate(l.Wo, l.Bo, xh)
		g := gate(l.Wc, l.Bc, xh)
		for k := 0; k < hidden; k++ {
			c[k] = sigmoid(f[k])*c[k] + sigmoid(i[k])*math.Tanh(g[k]) // Formula 15
			h[k] = sigmoid(o[k]) * math.Tanh(c[k])                    // Formula 16
		}
	}

	tp := NewEvalTape()
	seq := make([]*Node, len(xs))
	for i, x := range xs {
		seq[i] = tp.Const(tensor.Vector(x...))
	}
	got := l.Forward(tp, seq)
	for k := 0; k < hidden; k++ {
		if math.Abs(got.Value.Data[k]-h[k]) > 1e-12 {
			t.Fatalf("h[%d] = %v, hand-rolled %v", k, got.Value.Data[k], h[k])
		}
	}
}

// TestLSTMRejectsBadInput covers the defensive panics.
func TestLSTMRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ps := NewParamSet()
	l := NewLSTM(ps, rng, "l", 3, 4)
	tp := NewTape()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty sequence accepted")
			}
		}()
		l.Forward(tp, nil)
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size accepted")
		}
	}()
	l.Forward(tp, []*Node{tp.Const(tensor.Vector(1, 2))})
}

// TestAdamStepMatchesReference checks one Adam update against the published
// update rule.
func TestAdamStepMatchesReference(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", 1)
	p.Value.Data[0] = 0.5
	p.Grad.Data[0] = 0.2

	a := NewAdam(0.1)
	a.Step(ps)

	// t=1: m = 0.1*0.2*... with β1=0.9: m = 0.02, v = 0.001*0.04 → 4e-5
	m := (1 - 0.9) * 0.2
	v := (1 - 0.999) * 0.2 * 0.2
	mHat := m / (1 - 0.9)
	vHat := v / (1 - 0.999)
	want := 0.5 - 0.1*mHat/(math.Sqrt(vHat)+1e-8)
	if math.Abs(p.Value.Data[0]-want) > 1e-12 {
		t.Fatalf("Adam step = %v, want %v", p.Value.Data[0], want)
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Adam did not clear gradients")
	}
}

// TestAdamWeightDecayShrinks checks decoupled decay.
func TestAdamWeightDecayShrinks(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", 1)
	p.Value.Data[0] = 1
	a := NewAdam(0.1)
	a.WeightDecay = 0.5
	a.Step(ps) // zero gradient: only decay applies
	want := 1 * (1 - 0.1*0.5)
	if math.Abs(p.Value.Data[0]-want) > 1e-12 {
		t.Fatalf("decayed value %v, want %v", p.Value.Data[0], want)
	}
}
