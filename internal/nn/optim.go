package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, 2014), the optimizer the
// paper uses for all deep models (Algorithm 1, line 13).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	// WeightDecay applies decoupled L2 shrinkage when non-zero.
	WeightDecay float64

	t int // step counter for bias correction
}

// NewAdam returns an Adam optimizer with the usual defaults and the given
// learning rate (the paper starts at 0.01).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to every parameter from its accumulated gradient,
// then clears the gradients.
func (a *Adam) Step(ps *ParamSet) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range ps.All() {
		for i, g := range p.Grad.Data {
			if a.WeightDecay != 0 {
				p.Value.Data[i] *= 1 - a.LR*a.WeightDecay
			}
			p.m.Data[i] = a.Beta1*p.m.Data[i] + (1-a.Beta1)*g
			p.v.Data[i] = a.Beta2*p.v.Data[i] + (1-a.Beta2)*g*g
			mHat := p.m.Data[i] / bc1
			vHat := p.v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
		p.Grad.Zero()
	}
}

// Steps returns the number of optimizer steps taken so far.
func (a *Adam) Steps() int { return a.t }

// SGD is a plain stochastic-gradient-descent optimizer, used by the
// skip-gram graph-embedding pre-training and as a baseline optimizer.
type SGD struct {
	LR float64
}

// Step applies one SGD update and clears the gradients.
func (s *SGD) Step(ps *ParamSet) {
	for _, p := range ps.All() {
		for i, g := range p.Grad.Data {
			p.Value.Data[i] -= s.LR * g
		}
		p.Grad.Zero()
	}
}

// StepDecaySchedule reproduces the paper's learning-rate schedule: the
// initial rate is multiplied by Factor every Every epochs ("reduced by 1/5
// every 2 epochs", §6.1).
type StepDecaySchedule struct {
	Initial float64
	Factor  float64
	Every   int
}

// PaperSchedule returns the schedule used in the paper's experiments.
func PaperSchedule() StepDecaySchedule {
	return StepDecaySchedule{Initial: 0.01, Factor: 0.2, Every: 2}
}

// At returns the learning rate for a zero-based epoch index.
func (s StepDecaySchedule) At(epoch int) float64 {
	if s.Every <= 0 {
		return s.Initial
	}
	return s.Initial * math.Pow(s.Factor, float64(epoch/s.Every))
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm; returns the pre-clip norm. A guard against exploding LSTM
// gradients on long spatio-temporal paths.
func ClipGradNorm(ps *ParamSet, maxNorm float64) float64 {
	norm := ps.GradNorm()
	if norm > maxNorm && norm > 0 {
		ps.ScaleGrads(maxNorm / norm)
	}
	return norm
}
