package nn

import (
	"fmt"
	"math"

	"deepod/internal/tensor"
)

// The ops below allocate their outputs and gradients from the tape's arena
// and accumulate backward contributions in place. Where an output element
// receives several backward contributions (convolutions, channel norm),
// the per-call contribution is still summed locally before the single
// accumulation into the dependency's gradient, preserving the historical
// floating-point ordering — the bit-reproducibility contract of
// internal/core's training loop depends on it.

// MatVec returns W·x for a matrix node W of shape [m, n] and a vector node x
// of size n. The result is a vector node of size m.
func (tp *Tape) MatVec(w, x *Node) *Node {
	out := tp.arena.New(w.Value.Shape[0])
	tensor.MatVecInto(out, w.Value, x.Value)
	return tp.node(out, func(n *Node) {
		if w.requiresGrad && w.Grad != nil {
			tensor.AddOuterInPlace(w.Grad, n.Grad, x.Value)
		}
		if x.requiresGrad && x.Grad != nil {
			tensor.AddMatVecTInPlace(x.Grad, w.Value, n.Grad)
		}
	}, w, x)
}

// Affine returns W·x + b in one fused node — the hot path of every linear
// layer and LSTM gate. One kernel pass, one output tensor, and a backward
// that writes straight into the three gradients; numerically identical to
// the MatVec-then-Add composition it replaces.
func (tp *Tape) Affine(w, b, x *Node) *Node {
	out := tp.arena.New(w.Value.Shape[0])
	tensor.MatVecAddInto(out, w.Value, x.Value, b.Value)
	return tp.node(out, func(n *Node) {
		accumulate(b, n.Grad)
		if w.requiresGrad && w.Grad != nil {
			tensor.AddOuterInPlace(w.Grad, n.Grad, x.Value)
		}
		if x.requiresGrad && x.Grad != nil {
			tensor.AddMatVecTInPlace(x.Grad, w.Value, n.Grad)
		}
	}, w, b, x)
}

// Add returns a + b element-wise (same shape).
func (tp *Tape) Add(a, b *Node) *Node {
	av, bv := a.Value, b.Value
	if !av.SameShape(bv) {
		panic(fmt.Sprintf("nn: Add shape mismatch %v vs %v", av.Shape, bv.Shape))
	}
	out := tp.arena.New(av.Shape...)
	for i := range out.Data {
		out.Data[i] = av.Data[i] + bv.Data[i]
	}
	return tp.node(out, func(n *Node) {
		accumulate(a, n.Grad)
		accumulate(b, n.Grad)
	}, a, b)
}

// Sub returns a - b element-wise.
func (tp *Tape) Sub(a, b *Node) *Node {
	av, bv := a.Value, b.Value
	if !av.SameShape(bv) {
		panic(fmt.Sprintf("nn: Sub shape mismatch %v vs %v", av.Shape, bv.Shape))
	}
	out := tp.arena.New(av.Shape...)
	for i := range out.Data {
		out.Data[i] = av.Data[i] - bv.Data[i]
	}
	return tp.node(out, func(n *Node) {
		accumulate(a, n.Grad)
		accumulateScaled(b, n.Grad, -1)
	}, a, b)
}

// Mul returns the element-wise product a ⊗ b (paper's gate products).
func (tp *Tape) Mul(a, b *Node) *Node {
	av, bv := a.Value, b.Value
	if !av.SameShape(bv) {
		panic(fmt.Sprintf("nn: Mul shape mismatch %v vs %v", av.Shape, bv.Shape))
	}
	out := tp.arena.New(av.Shape...)
	for i := range out.Data {
		out.Data[i] = av.Data[i] * bv.Data[i]
	}
	return tp.node(out, func(n *Node) {
		accumulateMul(a, n.Grad, b.Value)
		accumulateMul(b, n.Grad, a.Value)
	}, a, b)
}

// Scale returns s·a for a constant s.
func (tp *Tape) Scale(a *Node, s float64) *Node {
	out := tp.arena.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		out.Data[i] = s * v
	}
	return tp.node(out, func(n *Node) {
		accumulateScaled(a, n.Grad, s)
	}, a)
}

// unary applies f element-wise; df receives (x, f(x)) and returns df/dx.
func (tp *Tape) unary(a *Node, f func(float64) float64, df func(x, y float64) float64) *Node {
	out := tp.arena.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		out.Data[i] = f(v)
	}
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad || a.Grad == nil {
			return
		}
		for i := range n.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i] * df(a.Value.Data[i], out.Data[i])
		}
	}, a)
}

// ReLU applies max(0, x) element-wise (Formula 9).
func (tp *Tape) ReLU(a *Node) *Node {
	return tp.unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Sigmoid applies σ(x) = 1/(1+e⁻ˣ) element-wise.
func (tp *Tape) Sigmoid(a *Node) *Node {
	return tp.unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// Tanh applies the hyperbolic tangent element-wise.
func (tp *Tape) Tanh(a *Node) *Node {
	return tp.unary(a, math.Tanh,
		func(_, y float64) float64 { return 1 - y*y })
}

// Abs applies |x| element-wise; the subgradient at 0 is 0.
func (tp *Tape) Abs(a *Node) *Node {
	return tp.unary(a, math.Abs,
		func(x, _ float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			}
			return 0
		})
}

// Square applies x² element-wise.
func (tp *Tape) Square(a *Node) *Node {
	return tp.unary(a,
		func(x float64) float64 { return x * x },
		func(x, _ float64) float64 { return 2 * x })
}

// Sum reduces all elements to a scalar node.
func (tp *Tape) Sum(a *Node) *Node {
	out := tp.arena.New(1)
	out.Data[0] = a.Value.Sum()
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad || a.Grad == nil {
			return
		}
		g := n.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	}, a)
}

// Mean reduces all elements to their arithmetic mean.
func (tp *Tape) Mean(a *Node) *Node {
	return tp.Scale(tp.Sum(a), 1/float64(a.Value.Size()))
}

// Sqrt applies √x to a scalar node; the gradient is clamped near zero to
// keep the auxiliary Euclidean loss (Algorithm 1, line 10) stable when the
// two codes coincide.
func (tp *Tape) Sqrt(a *Node) *Node {
	return tp.unary(a, math.Sqrt,
		func(_, y float64) float64 {
			if y < 1e-8 {
				y = 1e-8
			}
			return 0.5 / y
		})
}

// Concat concatenates vector nodes into one vector node. It implements the
// paper's concat(·) used throughout Section 4.
func (tp *Tape) Concat(parts ...*Node) *Node {
	n := 0
	for _, p := range parts {
		n += p.Value.Size()
	}
	out := tp.arena.New(n)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Value.Data)
		off += p.Value.Size()
	}
	return tp.node(out, func(n *Node) {
		off := 0
		for _, p := range parts {
			sz := p.Value.Size()
			if p.requiresGrad && p.Grad != nil {
				seg := n.Grad.Data[off : off+sz]
				for i, g := range seg {
					p.Grad.Data[i] += g
				}
			}
			off += sz
		}
	}, parts...)
}

// StackRows builds an [n, d] matrix node from n vector nodes of size d
// (the paper's stacking of dense time-slot vectors into Dt).
func (tp *Tape) StackRows(rows ...*Node) *Node {
	if len(rows) == 0 {
		panic("nn: StackRows needs at least one row")
	}
	d := rows[0].Value.Size()
	out := tp.arena.New(len(rows), d)
	for i, r := range rows {
		if r.Value.Size() != d {
			panic(fmt.Sprintf("nn: StackRows ragged input: row 0 has %d, row %d has %d", d, i, r.Value.Size()))
		}
		copy(out.Data[i*d:(i+1)*d], r.Value.Data)
	}
	return tp.node(out, func(n *Node) {
		for i, r := range rows {
			if !r.requiresGrad || r.Grad == nil {
				continue
			}
			seg := n.Grad.Data[i*d : (i+1)*d]
			for j, g := range seg {
				r.Grad.Data[j] += g
			}
		}
	}, rows...)
}

// Reshape returns a node viewing a's value with a new shape.
func (tp *Tape) Reshape(a *Node, shape ...int) *Node {
	out := a.Value.Reshape(shape...)
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad || a.Grad == nil {
			return
		}
		// Same element layout, different shape header: accumulate flat.
		for i, g := range n.Grad.Data {
			a.Grad.Data[i] += g
		}
	}, a)
}

// MeanCols averages an [r, c] matrix node over rows into a length-c vector
// node. This is the average pooling of Formula 10.
func (tp *Tape) MeanCols(a *Node) *Node {
	av := a.Value
	if av.Dims() != 2 {
		panic(fmt.Sprintf("nn: MeanCols wants a matrix, got %v", av.Shape))
	}
	r, c := av.Shape[0], av.Shape[1]
	out := tp.arena.New(c)
	for i := 0; i < r; i++ {
		row := av.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(r)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad || a.Grad == nil {
			return
		}
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Grad.Data[i*c+j] += n.Grad.Data[j] * inv
			}
		}
	}, a)
}

// Row extracts row i of a matrix node W as a vector node, with a sparse
// scatter gradient into row i. This is the embedding lookup Dᵢ = Wᵀ Oᵢ of
// Formulas 1 and the time-slot embedding of Section 4.2: multiplying the
// transposed embedding matrix by a one-hot vector selects a row.
func (tp *Tape) Row(w *Node, i int) *Node {
	if w.Value.Dims() != 2 {
		panic(fmt.Sprintf("nn: Row wants a matrix, got %v", w.Value.Shape))
	}
	c := w.Value.Shape[1]
	out := tp.arena.New(c)
	copy(out.Data, w.Value.Data[i*c:(i+1)*c])
	return tp.node(out, func(n *Node) {
		if !w.requiresGrad || w.Grad == nil {
			return
		}
		seg := w.Grad.Data[i*c : (i+1)*c]
		for j, g := range n.Grad.Data {
			seg[j] += g
		}
	}, w)
}

// Conv2D cross-correlates input x [C,H,W] with kernel k [OC,C,KH,KW].
func (tp *Tape) Conv2D(x, k *Node, padH, padW, strideH, strideW int) *Node {
	out := tensor.Conv2DInto(&tp.arena, x.Value, k.Value, padH, padW, strideH, strideW)
	return tp.node(out, func(n *Node) {
		// The scatter pattern gives each input/kernel element several
		// contributions; sum them in scratch first (historical FP order),
		// then fold the scratch into the gradients once.
		gx, gk := tensor.Conv2DBackwardInto(&tp.arena, x.Value, k.Value, n.Grad, padH, padW, strideH, strideW)
		accumulate(x, gx)
		accumulate(k, gk)
	}, x, k)
}

// ChannelNorm normalizes a [C,H,W] node per channel over its spatial
// extent, then applies learnable per-channel scale gamma and shift beta.
//
// It plays the role of the paper's BatchNorm layers (Formulas 5–6 and the
// traffic CNN of §4.5). Because this engine processes one sample at a time
// (gradient accumulation instead of padded batches — see DESIGN.md §4.1),
// the normalization statistics are computed over the sample's spatial
// positions rather than over a batch; at evaluation time the same statistics
// are used, so train and eval behaviour agree.
func (tp *Tape) ChannelNorm(x, gamma, beta *Node, eps float64) *Node {
	c, h, w := x.Value.Shape[0], x.Value.Shape[1], x.Value.Shape[2]
	m := h * w
	out := tp.arena.New(c, h, w)
	invStd := tp.arena.New(c)
	xhat := tp.arena.New(c, h, w)
	for ci := 0; ci < c; ci++ {
		seg := x.Value.Data[ci*m : (ci+1)*m]
		var s float64
		for _, v := range seg {
			s += v
		}
		mean := s / float64(m)
		var vs float64
		for _, v := range seg {
			d := v - mean
			vs += d * d
		}
		variance := vs / float64(m)
		is := 1 / math.Sqrt(variance+eps)
		invStd.Data[ci] = is
		for i, v := range seg {
			xh := (v - mean) * is
			xhat.Data[ci*m+i] = xh
			out.Data[ci*m+i] = gamma.Value.Data[ci]*xh + beta.Value.Data[ci]
		}
	}
	return tp.node(out, func(n *Node) {
		gGrad := gamma.requiresGrad && gamma.Grad != nil
		bGrad := beta.requiresGrad && beta.Grad != nil
		xGrad := x.requiresGrad && x.Grad != nil
		for ci := 0; ci < c; ci++ {
			gOut := n.Grad.Data[ci*m : (ci+1)*m]
			xh := xhat.Data[ci*m : (ci+1)*m]
			var sumG, sumGX float64
			for i := range gOut {
				sumG += gOut[i]
				sumGX += gOut[i] * xh[i]
			}
			if gGrad {
				gamma.Grad.Data[ci] += sumGX
			}
			if bGrad {
				beta.Grad.Data[ci] += sumG
			}
			if xGrad {
				// Standard batch-norm input gradient, per channel:
				// dx = gamma*invStd/m * (m*g - sum(g) - xhat*sum(g*xhat))
				coef := gamma.Value.Data[ci] * invStd.Data[ci] / float64(m)
				gx := x.Grad.Data[ci*m : (ci+1)*m]
				for i := range gOut {
					gx[i] += coef * (float64(m)*gOut[i] - sumG - xh[i]*sumGX)
				}
			}
		}
	}, x, gamma, beta)
}

// GlobalAvgPool reduces a [C,H,W] node to a length-C vector node by
// averaging each channel (the traffic CNN's final pooling layer).
func (tp *Tape) GlobalAvgPool(x *Node) *Node {
	c, h, w := x.Value.Shape[0], x.Value.Shape[1], x.Value.Shape[2]
	m := h * w
	out := tp.arena.New(c)
	for ci := 0; ci < c; ci++ {
		var s float64
		for _, v := range x.Value.Data[ci*m : (ci+1)*m] {
			s += v
		}
		out.Data[ci] = s / float64(m)
	}
	return tp.node(out, func(n *Node) {
		if !x.requiresGrad || x.Grad == nil {
			return
		}
		inv := 1.0 / float64(m)
		for ci := 0; ci < c; ci++ {
			gv := n.Grad.Data[ci] * inv
			seg := x.Grad.Data[ci*m : (ci+1)*m]
			for i := range seg {
				seg[i] += gv
			}
		}
	}, x)
}

// L2Distance returns the scalar Euclidean distance ‖a−b‖₂, the paper's
// auxiliaryloss between code and stcode (Algorithm 1, line 10).
func (tp *Tape) L2Distance(a, b *Node) *Node {
	return tp.Sqrt(tp.Sum(tp.Square(tp.Sub(a, b))))
}

// AbsError returns |a−b| summed to a scalar; for scalar predictions this is
// the per-sample MAE term (Algorithm 1, line 11).
func (tp *Tape) AbsError(a, b *Node) *Node {
	return tp.Sum(tp.Abs(tp.Sub(a, b)))
}
