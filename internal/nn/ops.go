package nn

import (
	"fmt"
	"math"

	"deepod/internal/tensor"
)

// MatVec returns W·x for a matrix node W of shape [m, n] and a vector node x
// of size n. The result is a vector node of size m.
func (tp *Tape) MatVec(w, x *Node) *Node {
	out := tensor.MatVec(w.Value, x.Value)
	return tp.node(out, func(n *Node) {
		if w.requiresGrad && w.Grad != nil {
			tensor.AddOuterInPlace(w.Grad, n.Grad, x.Value)
		}
		if x.requiresGrad && x.Grad != nil {
			tensor.AddMatVecTInPlace(x.Grad, w.Value, n.Grad)
		}
	}, w, x)
}

// Add returns a + b element-wise (same shape).
func (tp *Tape) Add(a, b *Node) *Node {
	out := tensor.Add(a.Value, b.Value)
	return tp.node(out, func(n *Node) {
		accumulate(a, n.Grad)
		accumulate(b, n.Grad)
	}, a, b)
}

// Sub returns a - b element-wise.
func (tp *Tape) Sub(a, b *Node) *Node {
	out := tensor.Sub(a.Value, b.Value)
	return tp.node(out, func(n *Node) {
		accumulate(a, n.Grad)
		accumulate(b, tensor.Scale(n.Grad, -1))
	}, a, b)
}

// Mul returns the element-wise product a ⊗ b (paper's gate products).
func (tp *Tape) Mul(a, b *Node) *Node {
	out := tensor.Mul(a.Value, b.Value)
	return tp.node(out, func(n *Node) {
		accumulate(a, tensor.Mul(n.Grad, b.Value))
		accumulate(b, tensor.Mul(n.Grad, a.Value))
	}, a, b)
}

// Scale returns s·a for a constant s.
func (tp *Tape) Scale(a *Node, s float64) *Node {
	out := tensor.Scale(a.Value, s)
	return tp.node(out, func(n *Node) {
		accumulate(a, tensor.Scale(n.Grad, s))
	}, a)
}

// unary applies f element-wise; df receives (x, f(x)) and returns df/dx.
func (tp *Tape) unary(a *Node, f func(float64) float64, df func(x, y float64) float64) *Node {
	out := tensor.Map(a.Value, f)
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad {
			return
		}
		g := tensor.New(a.Value.Shape...)
		for i := range g.Data {
			g.Data[i] = n.Grad.Data[i] * df(a.Value.Data[i], out.Data[i])
		}
		accumulate(a, g)
	}, a)
}

// ReLU applies max(0, x) element-wise (Formula 9).
func (tp *Tape) ReLU(a *Node) *Node {
	return tp.unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Sigmoid applies σ(x) = 1/(1+e⁻ˣ) element-wise.
func (tp *Tape) Sigmoid(a *Node) *Node {
	return tp.unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// Tanh applies the hyperbolic tangent element-wise.
func (tp *Tape) Tanh(a *Node) *Node {
	return tp.unary(a, math.Tanh,
		func(_, y float64) float64 { return 1 - y*y })
}

// Abs applies |x| element-wise; the subgradient at 0 is 0.
func (tp *Tape) Abs(a *Node) *Node {
	return tp.unary(a, math.Abs,
		func(x, _ float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			}
			return 0
		})
}

// Square applies x² element-wise.
func (tp *Tape) Square(a *Node) *Node {
	return tp.unary(a,
		func(x float64) float64 { return x * x },
		func(x, _ float64) float64 { return 2 * x })
}

// Sum reduces all elements to a scalar node.
func (tp *Tape) Sum(a *Node) *Node {
	out := tensor.Scalar(a.Value.Sum())
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad {
			return
		}
		g := tensor.New(a.Value.Shape...)
		g.Fill(n.Grad.Data[0])
		accumulate(a, g)
	}, a)
}

// Mean reduces all elements to their arithmetic mean.
func (tp *Tape) Mean(a *Node) *Node {
	return tp.Scale(tp.Sum(a), 1/float64(a.Value.Size()))
}

// Sqrt applies √x to a scalar node; the gradient is clamped near zero to
// keep the auxiliary Euclidean loss (Algorithm 1, line 10) stable when the
// two codes coincide.
func (tp *Tape) Sqrt(a *Node) *Node {
	return tp.unary(a, math.Sqrt,
		func(_, y float64) float64 {
			if y < 1e-8 {
				y = 1e-8
			}
			return 0.5 / y
		})
}

// Concat concatenates vector nodes into one vector node. It implements the
// paper's concat(·) used throughout Section 4.
func (tp *Tape) Concat(parts ...*Node) *Node {
	vals := make([]*tensor.Tensor, len(parts))
	for i, p := range parts {
		vals[i] = p.Value
	}
	out := tensor.Concat(vals...)
	return tp.node(out, func(n *Node) {
		off := 0
		for _, p := range parts {
			sz := p.Value.Size()
			if p.requiresGrad {
				g := tensor.New(sz)
				copy(g.Data, n.Grad.Data[off:off+sz])
				accumulate(p, g)
			}
			off += sz
		}
	}, parts...)
}

// StackRows builds an [n, d] matrix node from n vector nodes of size d
// (the paper's stacking of dense time-slot vectors into Dt).
func (tp *Tape) StackRows(rows ...*Node) *Node {
	if len(rows) == 0 {
		panic("nn: StackRows needs at least one row")
	}
	d := rows[0].Value.Size()
	out := tensor.New(len(rows), d)
	for i, r := range rows {
		if r.Value.Size() != d {
			panic(fmt.Sprintf("nn: StackRows ragged input: row 0 has %d, row %d has %d", d, i, r.Value.Size()))
		}
		copy(out.Data[i*d:(i+1)*d], r.Value.Data)
	}
	return tp.node(out, func(n *Node) {
		for i, r := range rows {
			if !r.requiresGrad {
				continue
			}
			g := tensor.New(d)
			copy(g.Data, n.Grad.Data[i*d:(i+1)*d])
			accumulate(r, g)
		}
	}, rows...)
}

// Reshape returns a node viewing a's value with a new shape.
func (tp *Tape) Reshape(a *Node, shape ...int) *Node {
	out := a.Value.Reshape(shape...)
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad {
			return
		}
		accumulate(a, n.Grad.Reshape(a.Value.Shape...))
	}, a)
}

// MeanCols averages an [r, c] matrix node over rows into a length-c vector
// node. This is the average pooling of Formula 10.
func (tp *Tape) MeanCols(a *Node) *Node {
	out := tensor.MeanCols(a.Value)
	return tp.node(out, func(n *Node) {
		if !a.requiresGrad {
			return
		}
		r, c := a.Value.Shape[0], a.Value.Shape[1]
		g := tensor.New(r, c)
		inv := 1.0 / float64(r)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				g.Data[i*c+j] = n.Grad.Data[j] * inv
			}
		}
		accumulate(a, g)
	}, a)
}

// Row extracts row i of a matrix node W as a vector node, with a sparse
// scatter gradient into row i. This is the embedding lookup Dᵢ = Wᵀ Oᵢ of
// Formulas 1 and the time-slot embedding of Section 4.2: multiplying the
// transposed embedding matrix by a one-hot vector selects a row.
func (tp *Tape) Row(w *Node, i int) *Node {
	out := w.Value.Row(i)
	return tp.node(out, func(n *Node) {
		if !w.requiresGrad {
			return
		}
		c := w.Value.Shape[1]
		g := tensor.New(w.Value.Shape...)
		copy(g.Data[i*c:(i+1)*c], n.Grad.Data)
		accumulate(w, g)
	}, w)
}

// Conv2D cross-correlates input x [C,H,W] with kernel k [OC,C,KH,KW].
func (tp *Tape) Conv2D(x, k *Node, padH, padW, strideH, strideW int) *Node {
	out := tensor.Conv2D(x.Value, k.Value, padH, padW, strideH, strideW)
	return tp.node(out, func(n *Node) {
		gx, gk := tensor.Conv2DBackward(x.Value, k.Value, n.Grad, padH, padW, strideH, strideW)
		accumulate(x, gx)
		accumulate(k, gk)
	}, x, k)
}

// ChannelNorm normalizes a [C,H,W] node per channel over its spatial
// extent, then applies learnable per-channel scale gamma and shift beta.
//
// It plays the role of the paper's BatchNorm layers (Formulas 5–6 and the
// traffic CNN of §4.5). Because this engine processes one sample at a time
// (gradient accumulation instead of padded batches — see DESIGN.md §4.1),
// the normalization statistics are computed over the sample's spatial
// positions rather than over a batch; at evaluation time the same statistics
// are used, so train and eval behaviour agree.
func (tp *Tape) ChannelNorm(x, gamma, beta *Node, eps float64) *Node {
	c, h, w := x.Value.Shape[0], x.Value.Shape[1], x.Value.Shape[2]
	m := h * w
	out := tensor.New(c, h, w)
	mu := make([]float64, c)
	invStd := make([]float64, c)
	xhat := tensor.New(c, h, w)
	for ci := 0; ci < c; ci++ {
		seg := x.Value.Data[ci*m : (ci+1)*m]
		var s float64
		for _, v := range seg {
			s += v
		}
		mean := s / float64(m)
		var vs float64
		for _, v := range seg {
			d := v - mean
			vs += d * d
		}
		variance := vs / float64(m)
		is := 1 / math.Sqrt(variance+eps)
		mu[ci], invStd[ci] = mean, is
		for i, v := range seg {
			xh := (v - mean) * is
			xhat.Data[ci*m+i] = xh
			out.Data[ci*m+i] = gamma.Value.Data[ci]*xh + beta.Value.Data[ci]
		}
	}
	return tp.node(out, func(n *Node) {
		gGamma := tensor.New(c)
		gBeta := tensor.New(c)
		gx := tensor.New(c, h, w)
		for ci := 0; ci < c; ci++ {
			gOut := n.Grad.Data[ci*m : (ci+1)*m]
			xh := xhat.Data[ci*m : (ci+1)*m]
			var sumG, sumGX float64
			for i := range gOut {
				gGamma.Data[ci] += gOut[i] * xh[i]
				gBeta.Data[ci] += gOut[i]
				sumG += gOut[i]
				sumGX += gOut[i] * xh[i]
			}
			// Standard batch-norm input gradient, per channel:
			// dx = gamma*invStd/m * (m*g - sum(g) - xhat*sum(g*xhat))
			coef := gamma.Value.Data[ci] * invStd[ci] / float64(m)
			for i := range gOut {
				gx.Data[ci*m+i] = coef * (float64(m)*gOut[i] - sumG - xh[i]*sumGX)
			}
		}
		accumulate(gamma, gGamma)
		accumulate(beta, gBeta)
		accumulate(x, gx)
	}, x, gamma, beta)
}

// GlobalAvgPool reduces a [C,H,W] node to a length-C vector node by
// averaging each channel (the traffic CNN's final pooling layer).
func (tp *Tape) GlobalAvgPool(x *Node) *Node {
	c, h, w := x.Value.Shape[0], x.Value.Shape[1], x.Value.Shape[2]
	m := h * w
	out := tensor.New(c)
	for ci := 0; ci < c; ci++ {
		var s float64
		for _, v := range x.Value.Data[ci*m : (ci+1)*m] {
			s += v
		}
		out.Data[ci] = s / float64(m)
	}
	return tp.node(out, func(n *Node) {
		if !x.requiresGrad {
			return
		}
		g := tensor.New(c, h, w)
		inv := 1.0 / float64(m)
		for ci := 0; ci < c; ci++ {
			gv := n.Grad.Data[ci] * inv
			for i := 0; i < m; i++ {
				g.Data[ci*m+i] = gv
			}
		}
		accumulate(x, g)
	}, x)
}

// L2Distance returns the scalar Euclidean distance ‖a−b‖₂, the paper's
// auxiliaryloss between code and stcode (Algorithm 1, line 10).
func (tp *Tape) L2Distance(a, b *Node) *Node {
	return tp.Sqrt(tp.Sum(tp.Square(tp.Sub(a, b))))
}

// AbsError returns |a−b| summed to a scalar; for scalar predictions this is
// the per-sample MAE term (Algorithm 1, line 11).
func (tp *Tape) AbsError(a, b *Node) *Node {
	return tp.Sum(tp.Abs(tp.Sub(a, b)))
}
