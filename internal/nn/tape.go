// Package nn is a minimal reverse-mode automatic-differentiation engine and
// neural-network toolkit built on internal/tensor. It provides exactly the
// building blocks the DeepOD model (SIGMOD 2020) is assembled from:
// linear layers and two-layer MLPs, an LSTM, 2-D convolutions with
// batch-normalization, embedding matrices with sparse gradients, and the
// Adam optimizer with the paper's step-decay learning-rate schedule.
//
// Computation is recorded on a Tape: every operation appends a Node holding
// its output value and a backward closure. Calling Tape.Backward on a scalar
// node propagates gradients in reverse recording order. Model parameters are
// Param values whose gradient tensors are shared with their leaf nodes, so
// gradients accumulate across samples (mini-batch gradient accumulation)
// until an optimizer step consumes and clears them.
package nn

import (
	"fmt"

	"deepod/internal/tensor"
)

// Node is one vertex of the recorded computation graph.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	backward     func()
}

// RequiresGrad reports whether gradients flow through this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Tape records operations for reverse-mode differentiation.
//
// A Tape is intended to live for one forward/backward pass over one sample;
// allocate with NewTape, run the model, call Backward, then discard (or
// Reset to reuse the backing slice).
type Tape struct {
	nodes []*Node
	// Eval disables gradient recording: ops still compute values but
	// backward closures are dropped. Used for inference and validation.
	Eval bool
}

// NewTape returns an empty tape in training mode.
func NewTape() *Tape { return &Tape{} }

// NewEvalTape returns a tape that records no gradients.
func NewEvalTape() *Tape { return &Tape{Eval: true} }

// Reset clears the tape for reuse.
func (tp *Tape) Reset() { tp.nodes = tp.nodes[:0] }

// Len returns the number of recorded nodes (0 in eval mode).
func (tp *Tape) Len() int { return len(tp.nodes) }

// Const wraps a tensor as a leaf with no gradient.
func (tp *Tape) Const(t *tensor.Tensor) *Node {
	return &Node{Value: t}
}

// Leaf wraps a parameter's value as a differentiable leaf whose gradient
// tensor is the parameter's accumulator, so backward passes add into it.
func (tp *Tape) Leaf(p *Param) *Node {
	if tp.Eval {
		return &Node{Value: p.Value}
	}
	return &Node{Value: p.Value, Grad: p.Grad, requiresGrad: true}
}

// node constructs an interior node. deps that require grad make the result
// require grad; the backward closure is recorded only in training mode.
func (tp *Tape) node(val *tensor.Tensor, back func(n *Node), deps ...*Node) *Node {
	n := &Node{Value: val}
	if tp.Eval {
		return n
	}
	for _, d := range deps {
		if d.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	if !n.requiresGrad {
		return n
	}
	n.Grad = tensor.New(val.Shape...)
	n.backward = func() { back(n) }
	tp.nodes = append(tp.nodes, n)
	return n
}

// accumulate adds g into dep's gradient if dep participates in backprop.
func accumulate(dep *Node, g *tensor.Tensor) {
	if dep == nil || !dep.requiresGrad || dep.Grad == nil {
		return
	}
	dep.Grad.AddInPlace(g)
}

// Backward seeds the gradient of root (which must be a scalar node) with 1
// and propagates gradients through the tape in reverse order.
func (tp *Tape) Backward(root *Node) {
	if tp.Eval {
		panic("nn: Backward called on an eval tape")
	}
	if root.Value.Size() != 1 {
		panic(fmt.Sprintf("nn: Backward root must be scalar, got shape %v", root.Value.Shape))
	}
	if !root.requiresGrad {
		return // loss does not depend on any parameter
	}
	root.Grad.Data[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.backward != nil {
			n.backward()
		}
	}
}
