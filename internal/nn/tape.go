// Package nn is a minimal reverse-mode automatic-differentiation engine and
// neural-network toolkit built on internal/tensor. It provides exactly the
// building blocks the DeepOD model (SIGMOD 2020) is assembled from:
// linear layers and two-layer MLPs, an LSTM, 2-D convolutions with
// batch-normalization, embedding matrices with sparse gradients, and the
// Adam optimizer with the paper's step-decay learning-rate schedule.
//
// Computation is recorded on a Tape: every operation appends a Node holding
// its output value and a backward closure. Calling Tape.Backward on a scalar
// node propagates gradients in reverse recording order. Model parameters are
// Param values whose gradient tensors are shared with their leaf nodes, so
// gradients accumulate across samples (mini-batch gradient accumulation)
// until an optimizer step consumes and clears them. When a Tape's Grads
// buffer is set, leaf gradients are routed into that private GradBuffer
// instead — the data-parallel training mode, where each worker accumulates
// locally and the buffers are reduced in fixed order afterwards.
//
// Node structs, interior values and gradients are carved out of per-tape
// arenas; Reset reclaims everything at once, so a reused tape performs
// O(nodes) small closure allocations per pass instead of O(elements) tensor
// allocations.
package nn

import (
	"fmt"

	"deepod/internal/tensor"
)

// Node is one vertex of the recorded computation graph.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	back         func(n *Node)
}

// RequiresGrad reports whether gradients flow through this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// nodeChunk is the number of Node structs per arena chunk. Chunks are
// never resized, so *Node pointers stay valid as the tape grows.
const nodeChunk = 256

// Tape records operations for reverse-mode differentiation.
//
// A Tape lives for one forward/backward pass over one sample; allocate with
// NewTape, run the model, call Backward, then Reset to reuse the backing
// arenas for the next sample (or discard the tape). Values and gradients
// handed out by a tape are invalidated by Reset.
type Tape struct {
	nodes []*Node
	// Eval disables gradient recording: ops still compute values but
	// backward closures are dropped. Used for inference and validation.
	Eval bool
	// Grads, when non-nil, routes parameter-leaf gradients into a private
	// buffer instead of the shared Param.Grad accumulators. Data-parallel
	// training workers each set their own buffer.
	Grads *GradBuffer

	arena     tensor.Arena
	chunks    [][]Node
	chunkIdx  int
	chunkOff  int
	liveNodes int
}

// NewTape returns an empty tape in training mode.
func NewTape() *Tape { return &Tape{} }

// NewEvalTape returns a tape that records no gradients.
func NewEvalTape() *Tape { return &Tape{Eval: true} }

// Reset clears the tape for reuse, reclaiming every node, value and
// gradient carved from its arenas since the previous Reset.
func (tp *Tape) Reset() {
	tp.nodes = tp.nodes[:0]
	tp.chunkIdx, tp.chunkOff = 0, 0
	tp.liveNodes = 0
	tp.arena.Reset()
}

// Len returns the number of recorded nodes (0 in eval mode).
func (tp *Tape) Len() int { return len(tp.nodes) }

// Alloc carves a zeroed tensor out of the tape's arena. The tensor is
// valid until the next Reset; use it for per-sample inputs (one-hot
// vectors, normalized grids) that previously heap-allocated per call.
func (tp *Tape) Alloc(shape ...int) *tensor.Tensor { return tp.arena.New(shape...) }

// newNode hands out a Node from the chunked arena with all fields set.
func (tp *Tape) newNode(val, grad *tensor.Tensor, requiresGrad bool, back func(*Node)) *Node {
	for {
		if tp.chunkIdx < len(tp.chunks) {
			chunk := tp.chunks[tp.chunkIdx]
			if tp.chunkOff < len(chunk) {
				n := &chunk[tp.chunkOff]
				tp.chunkOff++
				tp.liveNodes++
				n.Value, n.Grad, n.requiresGrad, n.back = val, grad, requiresGrad, back
				return n
			}
			tp.chunkIdx++
			tp.chunkOff = 0
			continue
		}
		tp.chunks = append(tp.chunks, make([]Node, nodeChunk))
	}
}

// Const wraps a tensor as a leaf with no gradient.
func (tp *Tape) Const(t *tensor.Tensor) *Node {
	return tp.newNode(t, nil, false, nil)
}

// ConstVec is Const over a freshly arena-allocated vector — the common
// "a few floats as input" case of the encoders.
func (tp *Tape) ConstVec(vals ...float64) *Node {
	return tp.Const(tp.arena.Vector(vals...))
}

// Leaf wraps a parameter's value as a differentiable leaf whose gradient
// tensor is the parameter's accumulator (or the tape's GradBuffer slot
// when Grads is set), so backward passes add into it.
func (tp *Tape) Leaf(p *Param) *Node {
	if tp.Eval {
		return tp.newNode(p.Value, nil, false, nil)
	}
	g := p.Grad
	if tp.Grads != nil {
		g = tp.Grads.Grad(p)
	}
	return tp.newNode(p.Value, g, true, nil)
}

// node constructs an interior node. deps that require grad make the result
// require grad; the backward closure is recorded only in training mode.
func (tp *Tape) node(val *tensor.Tensor, back func(n *Node), deps ...*Node) *Node {
	if tp.Eval {
		return tp.newNode(val, nil, false, nil)
	}
	req := false
	for _, d := range deps {
		if d.requiresGrad {
			req = true
			break
		}
	}
	if !req {
		return tp.newNode(val, nil, false, nil)
	}
	n := tp.newNode(val, tp.arena.New(val.Shape...), true, back)
	tp.nodes = append(tp.nodes, n)
	return n
}

// accumulate adds g into dep's gradient if dep participates in backprop.
func accumulate(dep *Node, g *tensor.Tensor) {
	if dep == nil || !dep.requiresGrad || dep.Grad == nil {
		return
	}
	dep.Grad.AddInPlace(g)
}

// accumulateScaled adds s·g into dep's gradient without a temporary.
func accumulateScaled(dep *Node, g *tensor.Tensor, s float64) {
	if dep == nil || !dep.requiresGrad || dep.Grad == nil {
		return
	}
	dep.Grad.AddScaledInPlace(g, s)
}

// accumulateMul adds g ⊗ v into dep's gradient without a temporary.
func accumulateMul(dep *Node, g, v *tensor.Tensor) {
	if dep == nil || !dep.requiresGrad || dep.Grad == nil {
		return
	}
	dep.Grad.AddMulInPlace(g, v)
}

// Backward seeds the gradient of root (which must be a scalar node) with 1
// and propagates gradients through the tape in reverse order.
func (tp *Tape) Backward(root *Node) {
	if tp.Eval {
		panic("nn: Backward called on an eval tape")
	}
	if root.Value.Size() != 1 {
		panic(fmt.Sprintf("nn: Backward root must be scalar, got shape %v", root.Value.Shape))
	}
	if !root.requiresGrad {
		return // loss does not depend on any parameter
	}
	root.Grad.Data[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil {
			n.back(n)
		}
	}
}
