package nn

import (
	"fmt"
	"math/rand"

	"deepod/internal/tensor"
)

// Linear is a fully connected layer y = W x + b with W ∈ R^{out×in}.
type Linear struct {
	W, B *Param
	In   int
	Out  int
}

// NewLinear registers a Xavier-initialized linear layer under prefix.
func NewLinear(ps *ParamSet, rng *rand.Rand, prefix string, in, out int) *Linear {
	return &Linear{
		W:   ps.NewXavier(prefix+".W", rng, out, in),
		B:   ps.New(prefix+".b", out),
		In:  in,
		Out: out,
	}
}

// Forward applies the layer to vector node x.
func (l *Linear) Forward(tp *Tape, x *Node) *Node {
	if x.Value.Size() != l.In {
		panic(fmt.Sprintf("nn: Linear %q expects input size %d, got %d", l.W.Name, l.In, x.Value.Size()))
	}
	return tp.Affine(tp.Leaf(l.W), tp.Leaf(l.B), x)
}

// MLP2 is the paper's two-layer Multilayer Perceptron
// y = W² ReLU(W¹ x + b¹) + b², the building block behind Formulas 11, 17,
// 18, 19 and 20.
type MLP2 struct {
	L1, L2 *Linear
}

// NewMLP2 registers a two-layer MLP mapping in → hidden → out.
func NewMLP2(ps *ParamSet, rng *rand.Rand, prefix string, in, hidden, out int) *MLP2 {
	return &MLP2{
		L1: NewLinear(ps, rng, prefix+".l1", in, hidden),
		L2: NewLinear(ps, rng, prefix+".l2", hidden, out),
	}
}

// Forward applies both layers with a ReLU in between.
func (m *MLP2) Forward(tp *Tape, x *Node) *Node {
	return m.L2.Forward(tp, tp.ReLU(m.L1.Forward(tp, x)))
}

// ForwardBatch applies the MLP to a [B, in] matrix of raw values using the
// batched serving kernels, carving both activations out of ar. No tape, no
// gradients — inference only. Row r of the result is bit-identical to
// Forward on row r alone: AffineBatchInto reduces like MatVecAddInto and
// ReLUInPlace matches the tape ReLU exactly.
func (m *MLP2) ForwardBatch(ar *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 || x.Shape[1] != m.L1.In {
		panic(fmt.Sprintf("nn: MLP %q ForwardBatch expects [B, %d], got %v", m.L1.W.Name, m.L1.In, x.Shape))
	}
	h := ar.New(x.Shape[0], m.L1.Out)
	tensor.AffineBatchInto(h, x, m.L1.W.Value, m.L1.B.Value)
	tensor.ReLUInPlace(h)
	y := ar.New(x.Shape[0], m.L2.Out)
	tensor.AffineBatchInto(y, h, m.L2.W.Value, m.L2.B.Value)
	return y
}

// Embedding is a learnable lookup table W ∈ R^{V×d} (Formula 1: one-hot
// codes times the embedding matrix select rows). The matrix can be
// initialized from a pre-trained graph embedding (node2vec over the road
// line graph or the temporal graph) and is fine-tuned by backpropagation.
type Embedding struct {
	W   *Param
	V   int
	Dim int
}

// NewEmbedding registers an embedding table initialized from N(0, 0.1²).
func NewEmbedding(ps *ParamSet, rng *rand.Rand, name string, vocab, dim int) *Embedding {
	return &Embedding{W: ps.NewNormal(name, rng, 0.1, vocab, dim), V: vocab, Dim: dim}
}

// Init overwrites the table with pre-trained vectors (Algorithm 1, lines
// 1–4). vectors must have shape [V, dim].
func (e *Embedding) Init(vectors *tensor.Tensor) error {
	if !vectors.SameShape(e.W.Value) {
		return fmt.Errorf("nn: embedding init shape %v != table shape %v", vectors.Shape, e.W.Value.Shape)
	}
	copy(e.W.Value.Data, vectors.Data)
	return nil
}

// Lookup returns the embedding row for id as a differentiable node.
func (e *Embedding) Lookup(tp *Tape, id int) *Node {
	if id < 0 || id >= e.V {
		panic(fmt.Sprintf("nn: embedding %q id %d out of range [0,%d)", e.W.Name, id, e.V))
	}
	return tp.Row(tp.Leaf(e.W), id)
}

// LSTM is a single-layer LSTM over a sequence of input vectors, following
// Formulas 12–16: shared gate weights W_f, W_i, W_o, W_c ∈ R^{dh×(in+dh)}
// acting on the concatenation [x_j, h_{j-1}], with c₀ = h₀ = 0.
type LSTM struct {
	Wf, Wi, Wo, Wc *Param
	Bf, Bi, Bo, Bc *Param
	In, Hidden     int
}

// NewLSTM registers an LSTM with input size in and state size hidden. The
// forget-gate bias starts at 1 (standard practice for gradient flow).
func NewLSTM(ps *ParamSet, rng *rand.Rand, prefix string, in, hidden int) *LSTM {
	l := &LSTM{
		Wf: ps.NewXavier(prefix+".Wf", rng, hidden, in+hidden),
		Wi: ps.NewXavier(prefix+".Wi", rng, hidden, in+hidden),
		Wo: ps.NewXavier(prefix+".Wo", rng, hidden, in+hidden),
		Wc: ps.NewXavier(prefix+".Wc", rng, hidden, in+hidden),
		Bf: ps.New(prefix+".bf", hidden),
		Bi: ps.New(prefix+".bi", hidden),
		Bo: ps.New(prefix+".bo", hidden),
		Bc: ps.New(prefix+".bc", hidden),
		In: in, Hidden: hidden,
	}
	l.Bf.Value.Fill(1)
	return l
}

// Forward consumes the sequence and returns the final hidden state h_n.
func (l *LSTM) Forward(tp *Tape, xs []*Node) *Node {
	if len(xs) == 0 {
		panic("nn: LSTM got an empty sequence")
	}
	h := tp.Const(tp.Alloc(l.Hidden))
	c := tp.Const(tp.Alloc(l.Hidden))
	for _, x := range xs {
		if x.Value.Size() != l.In {
			panic(fmt.Sprintf("nn: LSTM %q expects inputs of size %d, got %d", l.Wf.Name, l.In, x.Value.Size()))
		}
		xh := tp.Concat(x, h)
		f := tp.Sigmoid(tp.Affine(tp.Leaf(l.Wf), tp.Leaf(l.Bf), xh)) // Formula 12
		i := tp.Sigmoid(tp.Affine(tp.Leaf(l.Wi), tp.Leaf(l.Bi), xh)) // Formula 13
		o := tp.Sigmoid(tp.Affine(tp.Leaf(l.Wo), tp.Leaf(l.Bo), xh)) // Formula 14
		g := tp.Tanh(tp.Affine(tp.Leaf(l.Wc), tp.Leaf(l.Bc), xh))
		c = tp.Add(tp.Mul(f, c), tp.Mul(i, g)) // Formula 15
		h = tp.Mul(o, tp.Tanh(c))              // Formula 16
	}
	return h
}

// Conv2DLayer is a convolution with an optional channel-norm + ReLU block,
// i.e. the Conv2d → BatchNorm2d → ReLU unit of the paper's CNN models.
type Conv2DLayer struct {
	K           *Param
	Gamma, Beta *Param // nil when Norm is false
	Norm, Act   bool
	PadH, PadW  int
	StrH, StrW  int
	OutC, InC   int
	KH, KW      int
}

// NewConv2DLayer registers a conv layer. norm adds channel normalization
// (the per-sample stand-in for BatchNorm, see Tape.ChannelNorm); act adds a
// trailing ReLU.
func NewConv2DLayer(ps *ParamSet, rng *rand.Rand, prefix string, inC, outC, kh, kw, padH, padW, strH, strW int, norm, act bool) *Conv2DLayer {
	l := &Conv2DLayer{
		K:    ps.NewXavier(prefix+".K", rng, outC, inC, kh, kw),
		Norm: norm, Act: act,
		PadH: padH, PadW: padW, StrH: strH, StrW: strW,
		OutC: outC, InC: inC, KH: kh, KW: kw,
	}
	if norm {
		l.Gamma = ps.New(prefix+".gamma", outC)
		l.Gamma.Value.Fill(1)
		l.Beta = ps.New(prefix+".beta", outC)
	}
	return l
}

// Forward applies conv (+ norm + ReLU) to a [C,H,W] node.
func (l *Conv2DLayer) Forward(tp *Tape, x *Node) *Node {
	y := tp.Conv2D(x, tp.Leaf(l.K), l.PadH, l.PadW, l.StrH, l.StrW)
	if l.Norm {
		y = tp.ChannelNorm(y, tp.Leaf(l.Gamma), tp.Leaf(l.Beta), 1e-5)
	}
	if l.Act {
		y = tp.ReLU(y)
	}
	return y
}
