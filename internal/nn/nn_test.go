package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepod/internal/tensor"
)

// gradCheck runs the scalar-valued model f twice per weight of every
// parameter in ps and compares the analytic gradient (one backward pass)
// against a central finite difference.
func gradCheck(t *testing.T, ps *ParamSet, f func(tp *Tape) *Node, tol float64) {
	t.Helper()
	ps.ZeroGrad()
	tp := NewTape()
	loss := f(tp)
	tp.Backward(loss)

	const h = 1e-6
	for _, p := range ps.All() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			plus := f(NewEvalTape()).Value.Data[0]
			p.Value.Data[i] = orig - h
			minus := f(NewEvalTape()).Value.Data[0]
			p.Value.Data[i] = orig
			fd := (plus - minus) / (2 * h)
			if math.Abs(fd-p.Grad.Data[i]) > tol {
				t.Fatalf("param %q[%d]: analytic %v vs finite-diff %v", p.Name, i, p.Grad.Data[i], fd)
			}
		}
	}
}

func randVec(rng *rand.Rand, n int) *tensor.Tensor {
	v := tensor.New(n)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	return v
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	lin := NewLinear(ps, rng, "lin", 4, 3)
	x := randVec(rng, 4)
	target := randVec(rng, 3)
	gradCheck(t, ps, func(tp *Tape) *Node {
		y := lin.Forward(tp, tp.Const(x))
		return tp.Sum(tp.Square(tp.Sub(y, tp.Const(target))))
	}, 1e-4)
}

func TestMLP2Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := NewParamSet()
	mlp := NewMLP2(ps, rng, "mlp", 3, 5, 2)
	x := randVec(rng, 3)
	gradCheck(t, ps, func(tp *Tape) *Node {
		return tp.Sum(tp.Square(mlp.Forward(tp, tp.Const(x))))
	}, 1e-4)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	p := ps.NewNormal("x", rng, 1, 6)
	// Shift values away from ReLU/Abs kinks so finite differences are valid.
	for i := range p.Value.Data {
		if math.Abs(p.Value.Data[i]) < 0.05 {
			p.Value.Data[i] = 0.1
		}
	}
	for name, act := range map[string]func(tp *Tape, n *Node) *Node{
		"relu":    func(tp *Tape, n *Node) *Node { return tp.ReLU(n) },
		"sigmoid": func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) },
		"tanh":    func(tp *Tape, n *Node) *Node { return tp.Tanh(n) },
		"abs":     func(tp *Tape, n *Node) *Node { return tp.Abs(n) },
		"square":  func(tp *Tape, n *Node) *Node { return tp.Square(n) },
	} {
		act := act
		t.Run(name, func(t *testing.T) {
			gradCheck(t, ps, func(tp *Tape) *Node {
				return tp.Sum(act(tp, tp.Leaf(p)))
			}, 1e-4)
		})
	}
}

func TestConcatAndStackGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := NewParamSet()
	a := ps.NewNormal("a", rng, 1, 3)
	b := ps.NewNormal("b", rng, 1, 2)
	gradCheck(t, ps, func(tp *Tape) *Node {
		cat := tp.Concat(tp.Leaf(a), tp.Leaf(b))
		return tp.Sum(tp.Square(cat))
	}, 1e-4)

	ps2 := NewParamSet()
	r1 := ps2.NewNormal("r1", rng, 1, 4)
	r2 := ps2.NewNormal("r2", rng, 1, 4)
	gradCheck(t, ps2, func(tp *Tape) *Node {
		m := tp.StackRows(tp.Leaf(r1), tp.Leaf(r2))
		return tp.Sum(tp.Square(tp.MeanCols(m)))
	}, 1e-4)
}

func TestEmbeddingLookupGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := NewParamSet()
	emb := NewEmbedding(ps, rng, "emb", 5, 3)
	gradCheck(t, ps, func(tp *Tape) *Node {
		v := emb.Lookup(tp, 2)
		w := emb.Lookup(tp, 4)
		return tp.Sum(tp.Square(tp.Add(v, w)))
	}, 1e-4)
	// Rows not looked up must have zero gradient.
	ps.ZeroGrad()
	tp := NewTape()
	loss := tp.Sum(tp.Square(emb.Lookup(tp, 1)))
	tp.Backward(loss)
	for r := 0; r < 5; r++ {
		rowNorm := 0.0
		for j := 0; j < 3; j++ {
			rowNorm += math.Abs(emb.W.Grad.At(r, j))
		}
		if r == 1 && rowNorm == 0 {
			t.Fatal("looked-up row has zero gradient")
		}
		if r != 1 && rowNorm != 0 {
			t.Fatalf("row %d has gradient %v without being looked up", r, rowNorm)
		}
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := NewParamSet()
	lstm := NewLSTM(ps, rng, "lstm", 3, 4)
	xs := []*tensor.Tensor{randVec(rng, 3), randVec(rng, 3), randVec(rng, 3)}
	gradCheck(t, ps, func(tp *Tape) *Node {
		seq := make([]*Node, len(xs))
		for i, x := range xs {
			seq[i] = tp.Const(x)
		}
		h := lstm.Forward(tp, seq)
		return tp.Sum(tp.Square(h))
	}, 1e-4)
}

func TestConvLayerGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	conv := NewConv2DLayer(ps, rng, "c", 1, 2, 3, 1, 1, 0, 1, 1, false, false)
	x := tensor.New(1, 4, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	gradCheck(t, ps, func(tp *Tape) *Node {
		y := conv.Forward(tp, tp.Const(x))
		return tp.Sum(tp.Square(y))
	}, 1e-4)
}

func TestChannelNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := NewParamSet()
	x := ps.NewNormal("x", rng, 1, 2, 3, 2)
	gamma := ps.New("gamma", 2)
	gamma.Value.Fill(1.3)
	beta := ps.NewNormal("beta", rng, 0.2, 2)
	gradCheck(t, ps, func(tp *Tape) *Node {
		y := tp.ChannelNorm(tp.Leaf(x), tp.Leaf(gamma), tp.Leaf(beta), 1e-5)
		// weight the output so per-channel gradients differ
		w := tensor.New(2, 3, 2)
		for i := range w.Data {
			w.Data[i] = float64(i%5) - 2
		}
		return tp.Sum(tp.Mul(y, tp.Const(w)))
	}, 1e-3)
}

func TestChannelNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	gamma := ps.New("g", 3)
	gamma.Value.Fill(1)
	beta := ps.New("b", 3)
	tp := NewEvalTape()
	x := tensor.New(3, 4, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()*5 + 10
	}
	y := tp.ChannelNorm(tp.Const(x), tp.Leaf(gamma), tp.Leaf(beta), 1e-8)
	for c := 0; c < 3; c++ {
		seg := y.Value.Data[c*16 : (c+1)*16]
		var mean, vr float64
		for _, v := range seg {
			mean += v
		}
		mean /= 16
		for _, v := range seg {
			vr += (v - mean) * (v - mean)
		}
		vr /= 16
		if math.Abs(mean) > 1e-9 || math.Abs(vr-1) > 1e-6 {
			t.Fatalf("channel %d not normalized: mean %v var %v", c, mean, vr)
		}
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := NewParamSet()
	x := ps.NewNormal("x", rng, 1, 2, 3, 3)
	gradCheck(t, ps, func(tp *Tape) *Node {
		return tp.Sum(tp.Square(tp.GlobalAvgPool(tp.Leaf(x))))
	}, 1e-4)
}

func TestL2DistanceAndAbsError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := NewParamSet()
	a := ps.NewNormal("a", rng, 1, 4)
	b := tensor.Vector(0.5, -1, 2, 0.25)
	gradCheck(t, ps, func(tp *Tape) *Node {
		return tp.L2Distance(tp.Leaf(a), tp.Const(b))
	}, 1e-4)

	tp := NewEvalTape()
	d := tp.L2Distance(tp.Const(tensor.Vector(3, 0)), tp.Const(tensor.Vector(0, 4)))
	if math.Abs(d.Value.Data[0]-5) > 1e-12 {
		t.Fatalf("L2Distance = %v, want 5", d.Value.Data[0])
	}
	e := tp.AbsError(tp.Const(tensor.Scalar(3)), tp.Const(tensor.Scalar(7.5)))
	if math.Abs(e.Value.Data[0]-4.5) > 1e-12 {
		t.Fatalf("AbsError = %v, want 4.5", e.Value.Data[0])
	}
}

func TestReshapeGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ps := NewParamSet()
	x := ps.NewNormal("x", rng, 1, 6)
	gradCheck(t, ps, func(tp *Tape) *Node {
		m := tp.Reshape(tp.Leaf(x), 1, 2, 3)
		return tp.Sum(tp.Square(m))
	}, 1e-4)
}

func TestEvalTapeRecordsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ps := NewParamSet()
	mlp := NewMLP2(ps, rng, "mlp", 3, 4, 2)
	tp := NewEvalTape()
	y := mlp.Forward(tp, tp.Const(randVec(rng, 3)))
	if tp.Len() != 0 {
		t.Fatalf("eval tape recorded %d nodes", tp.Len())
	}
	if y.RequiresGrad() {
		t.Fatal("eval output requires grad")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on eval tape did not panic")
		}
	}()
	tp.Backward(tp.Sum(y))
}

func TestBackwardRequiresScalar(t *testing.T) {
	ps := NewParamSet()
	rng := rand.New(rand.NewSource(14))
	p := ps.NewNormal("p", rng, 1, 3)
	tp := NewTape()
	y := tp.Square(tp.Leaf(p))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar did not panic")
		}
	}()
	tp.Backward(y)
}

func TestGradientAccumulationAcrossSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ps := NewParamSet()
	lin := NewLinear(ps, rng, "l", 2, 1)
	x1, x2 := tensor.Vector(1, 0), tensor.Vector(0, 1)
	run := func(x *tensor.Tensor) {
		tp := NewTape()
		tp.Backward(tp.Sum(lin.Forward(tp, tp.Const(x))))
	}
	run(x1)
	g1 := append([]float64(nil), lin.W.Grad.Data...)
	run(x2)
	// After two samples the gradient should be the sum of both.
	if lin.W.Grad.Data[0] != g1[0]+0 || lin.W.Grad.Data[1] != g1[1]+1 {
		t.Fatalf("gradients did not accumulate: first %v then %v", g1, lin.W.Grad.Data)
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ps := NewParamSet()
	mlp := NewMLP2(ps, rng, "m", 1, 8, 1)
	opt := NewAdam(0.01)
	// Fit y = 2x + 1 on a few points.
	xs := []float64{-1, -0.5, 0, 0.5, 1}
	loss := func(record bool) float64 {
		var total float64
		for _, xv := range xs {
			var tp *Tape
			if record {
				tp = NewTape()
			} else {
				tp = NewEvalTape()
			}
			y := mlp.Forward(tp, tp.Const(tensor.Scalar(xv)))
			l := tp.Sum(tp.Square(tp.Sub(y, tp.Const(tensor.Scalar(2*xv+1)))))
			if record {
				tp.Backward(l)
			}
			total += l.Value.Data[0]
		}
		return total / float64(len(xs))
	}
	before := loss(false)
	for i := 0; i < 200; i++ {
		ps.ZeroGrad()
		loss(true)
		ps.ScaleGrads(1 / float64(len(xs)))
		opt.Step(ps)
	}
	after := loss(false)
	if after > before/10 {
		t.Fatalf("Adam failed to fit: before %v after %v", before, after)
	}
	if opt.Steps() != 200 {
		t.Fatalf("Steps() = %d", opt.Steps())
	}
}

func TestSGDStep(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", 1)
	p.Value.Data[0] = 1
	p.Grad.Data[0] = 0.5
	(&SGD{LR: 0.1}).Step(ps)
	if math.Abs(p.Value.Data[0]-0.95) > 1e-12 {
		t.Fatalf("SGD step got %v", p.Value.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("SGD did not clear gradient")
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := PaperSchedule()
	if s.At(0) != 0.01 || s.At(1) != 0.01 {
		t.Fatalf("epochs 0-1 should use initial rate, got %v %v", s.At(0), s.At(1))
	}
	if math.Abs(s.At(2)-0.002) > 1e-12 {
		t.Fatalf("epoch 2 rate = %v, want 0.002", s.At(2))
	}
	if math.Abs(s.At(5)-0.01*0.2*0.2) > 1e-15 {
		t.Fatalf("epoch 5 rate = %v", s.At(5))
	}
}

func TestClipGradNorm(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("p", 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4
	norm := ClipGradNorm(ps, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if math.Abs(ps.GradNorm()-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", ps.GradNorm())
	}
}

func TestSnapshotSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ps := NewParamSet()
	mlp := NewMLP2(ps, rng, "m", 2, 3, 1)
	snap := ps.Save()

	ps2 := NewParamSet()
	mlp2 := NewMLP2(ps2, rand.New(rand.NewSource(99)), "m", 2, 3, 1)
	if err := ps2.Load(snap); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector(0.3, -0.7)
	tp := NewEvalTape()
	y1 := mlp.Forward(tp, tp.Const(x)).Value.Data[0]
	y2 := mlp2.Forward(tp, tp.Const(x)).Value.Data[0]
	if y1 != y2 {
		t.Fatalf("loaded model differs: %v vs %v", y1, y2)
	}

	// Missing parameter must error.
	ps3 := NewParamSet()
	ps3.New("other", 2)
	if err := ps3.Load(snap); err == nil {
		t.Fatal("Load with missing param should error")
	}
	// Wrong size must error.
	bad := Snapshot{}
	for k, v := range snap {
		bad[k] = v
	}
	bad["m.l1.W"] = []float64{1}
	if err := ps2.Load(bad); err == nil {
		t.Fatal("Load with wrong size should error")
	}
}

func TestParamSetBookkeeping(t *testing.T) {
	ps := NewParamSet()
	a := ps.New("a", 2, 3)
	ps.New("b", 4)
	if ps.NumWeights() != 10 {
		t.Fatalf("NumWeights = %d", ps.NumWeights())
	}
	if ps.SizeBytes() != 80 {
		t.Fatalf("SizeBytes = %d", ps.SizeBytes())
	}
	if ps.Get("a") != a || ps.Get("zz") != nil {
		t.Fatal("Get misbehaves")
	}
	names := ps.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	ps.New("a", 1)
}
