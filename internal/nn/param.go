package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deepod/internal/tensor"
)

// Param is a trainable tensor with an accumulated gradient and Adam moment
// state. Params are created through a ParamSet so they can be enumerated by
// optimizers and serialized deterministically.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	m, v *tensor.Tensor // Adam first/second moment estimates
	idx  int            // registration index; GradBuffer slots key on it
}

// Size returns the number of scalar weights.
func (p *Param) Size() int { return p.Value.Size() }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ParamSet owns all parameters of a model. Registration order is the
// optimizer's iteration order.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// New registers a zero-initialized parameter of the given shape.
func (ps *ParamSet) New(name string, shape ...int) *Param {
	if _, dup := ps.byName[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter name %q", name))
	}
	p := &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
		m:     tensor.New(shape...),
		v:     tensor.New(shape...),
		idx:   len(ps.params),
	}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// NewNormal registers a parameter initialized from N(0, std²) — the paper
// initializes all non-embedding parameters from a normal distribution
// (Algorithm 1, line 5).
func (ps *ParamSet) NewNormal(name string, rng *rand.Rand, std float64, shape ...int) *Param {
	p := ps.New(name, shape...)
	for i := range p.Value.Data {
		p.Value.Data[i] = rng.NormFloat64() * std
	}
	return p
}

// NewXavier registers a matrix parameter with Glorot-uniform initialization
// scaled by its fan-in/fan-out; used for weight matrices of linear layers
// and LSTM gates.
func (ps *ParamSet) NewXavier(name string, rng *rand.Rand, shape ...int) *Param {
	p := ps.New(name, shape...)
	fanIn, fanOut := shape[len(shape)-1], shape[0]
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.Value.Data {
		p.Value.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return p
}

// Get returns the parameter registered under name, or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// All returns the parameters in registration order.
func (ps *ParamSet) All() []*Param { return ps.params }

// ZeroGrad clears all gradients.
func (ps *ParamSet) ZeroGrad() {
	for _, p := range ps.params {
		p.ZeroGrad()
	}
}

// GradBuffer is a private set of gradient accumulators parallel to a
// ParamSet — the per-worker half of data-parallel training. Each worker
// records backward passes into its own buffer (Tape.Grads), and the
// coordinator folds the buffers into the shared parameter gradients in
// fixed worker-index order, so a given seed + worker count always reduces
// in the same floating-point order (see internal/core's deterministic-
// training contract).
type GradBuffer struct {
	ps    *ParamSet
	grads []*tensor.Tensor
}

// NewGradBuffer returns a zeroed gradient buffer shaped like ps. The
// buffer is bound to ps's registration order; registering more parameters
// afterwards invalidates it.
func (ps *ParamSet) NewGradBuffer() *GradBuffer {
	gb := &GradBuffer{ps: ps, grads: make([]*tensor.Tensor, len(ps.params))}
	for i, p := range ps.params {
		gb.grads[i] = tensor.New(p.Value.Shape...)
	}
	return gb
}

// Grad returns the buffer's accumulator for p.
func (gb *GradBuffer) Grad(p *Param) *tensor.Tensor { return gb.grads[p.idx] }

// Zero clears every accumulator.
func (gb *GradBuffer) Zero() {
	for _, g := range gb.grads {
		g.Zero()
	}
}

// AccumulateInto adds the buffered gradients into ps's parameter gradients
// (the reduction step). Element order within each parameter is preserved,
// so reducing a single buffer is bit-identical to having accumulated
// directly into the parameter gradients.
func (gb *GradBuffer) AccumulateInto(ps *ParamSet) {
	if ps != gb.ps {
		panic("nn: GradBuffer.AccumulateInto called with a different ParamSet")
	}
	for i, p := range ps.params {
		p.Grad.AddInPlace(gb.grads[i])
	}
}

// ScaleGrads multiplies all gradients by s (used to average accumulated
// per-sample gradients over a mini-batch).
func (ps *ParamSet) ScaleGrads(s float64) {
	for _, p := range ps.params {
		p.Grad.ScaleInPlace(s)
	}
}

// NumWeights returns the total number of scalar weights.
func (ps *ParamSet) NumWeights() int {
	n := 0
	for _, p := range ps.params {
		n += p.Size()
	}
	return n
}

// SizeBytes returns the serialized model size in bytes (8 bytes per weight),
// the quantity reported in the paper's Table 5.
func (ps *ParamSet) SizeBytes() int { return ps.NumWeights() * 8 }

// GradNorm returns the Euclidean norm of the concatenated gradient; useful
// for tests and for diagnosing divergence.
func (ps *ParamSet) GradNorm() float64 {
	var s float64
	for _, p := range ps.params {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Snapshot is a serializable copy of all parameter values, keyed by name.
// It is the on-disk model format used by cmd/ttetrain (via encoding/gob).
type Snapshot map[string][]float64

// Save copies all parameter values into a Snapshot.
func (ps *ParamSet) Save() Snapshot {
	s := make(Snapshot, len(ps.params))
	for _, p := range ps.params {
		s[p.Name] = append([]float64(nil), p.Value.Data...)
	}
	return s
}

// Load restores parameter values from a Snapshot. Every registered
// parameter must be present with a matching size.
func (ps *ParamSet) Load(s Snapshot) error {
	for _, p := range ps.params {
		vals, ok := s[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot is missing parameter %q", p.Name)
		}
		if len(vals) != p.Size() {
			return fmt.Errorf("nn: snapshot parameter %q has %d weights, model wants %d",
				p.Name, len(vals), p.Size())
		}
		copy(p.Value.Data, vals)
	}
	return nil
}

// Names returns the sorted parameter names (for stable debugging output).
func (ps *ParamSet) Names() []string {
	names := make([]string, 0, len(ps.params))
	for _, p := range ps.params {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}
