package nn

import (
	"math/rand"
	"testing"

	"deepod/internal/tensor"
)

// TestAffineMatchesComposition pins the fused affine op to the MatVec+Add
// composition it replaced: identical forward values and identical parameter
// gradients, bit for bit. The data-parallel determinism contract depends on
// fused kernels never reordering floating-point accumulation.
func TestAffineMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := NewParamSet()
	w := ps.NewXavier("w", rng, 5, 7)
	b := ps.NewNormal("b", rng, 0.1, 5)
	x := randVec(rng, 7)

	ps.ZeroGrad()
	tp := NewTape()
	yFused := tp.Affine(tp.Leaf(w), tp.Leaf(b), tp.Const(x))
	tp.Backward(tp.Sum(yFused))
	fusedW := append([]float64(nil), w.Grad.Data...)
	fusedB := append([]float64(nil), b.Grad.Data...)

	ps.ZeroGrad()
	tp2 := NewTape()
	yComp := tp2.Add(tp2.MatVec(tp2.Leaf(w), tp2.Const(x)), tp2.Leaf(b))
	tp2.Backward(tp2.Sum(yComp))

	for i := range yComp.Value.Data {
		if yFused.Value.Data[i] != yComp.Value.Data[i] {
			t.Fatalf("forward[%d]: fused %v != composed %v", i, yFused.Value.Data[i], yComp.Value.Data[i])
		}
	}
	for i := range fusedW {
		if fusedW[i] != w.Grad.Data[i] {
			t.Fatalf("dW[%d]: fused %v != composed %v", i, fusedW[i], w.Grad.Data[i])
		}
	}
	for i := range fusedB {
		if fusedB[i] != b.Grad.Data[i] {
			t.Fatalf("db[%d]: fused %v != composed %v", i, fusedB[i], b.Grad.Data[i])
		}
	}
}

// TestGradBufferRoutesAndReduces checks the two halves of the data-parallel
// gradient path: a tape with Grads set must leave the shared Param.Grad
// untouched, and reducing the buffer afterwards must reproduce the direct
// accumulation bit for bit.
func TestGradBufferRoutesAndReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ps := NewParamSet()
	lin := NewLinear(ps, rng, "lin", 6, 4)
	x := randVec(rng, 6)

	// Reference: direct accumulation into Param.Grad.
	ps.ZeroGrad()
	tp := NewTape()
	tp.Backward(tp.Sum(tp.Square(lin.Forward(tp, tp.Const(x)))))
	wantW := append([]float64(nil), lin.W.Grad.Data...)
	wantB := append([]float64(nil), lin.B.Grad.Data...)

	// Buffered: gradients land in the private buffer only.
	ps.ZeroGrad()
	gb := ps.NewGradBuffer()
	tpb := NewTape()
	tpb.Grads = gb
	tpb.Backward(tpb.Sum(tpb.Square(lin.Forward(tpb, tpb.Const(x)))))
	for _, p := range ps.All() {
		for i, g := range p.Grad.Data {
			if g != 0 {
				t.Fatalf("param %q grad[%d] = %v; buffered tape must not touch shared grads", p.Name, i, g)
			}
		}
	}

	gb.AccumulateInto(ps)
	for i := range wantW {
		if lin.W.Grad.Data[i] != wantW[i] {
			t.Fatalf("reduced dW[%d] = %v, want %v", i, lin.W.Grad.Data[i], wantW[i])
		}
	}
	for i := range wantB {
		if lin.B.Grad.Data[i] != wantB[i] {
			t.Fatalf("reduced db[%d] = %v, want %v", i, lin.B.Grad.Data[i], wantB[i])
		}
	}

	gb.Zero()
	for _, g := range gb.grads {
		for i, v := range g.Data {
			if v != 0 {
				t.Fatalf("Zero left grads[%d] = %v", i, v)
			}
		}
	}
}

// TestTapeReuseMatchesFresh runs the same model on one tape reused via Reset
// and on fresh tapes, checking losses and gradients agree exactly. This is
// the training loop's allocation-saving pattern.
func TestTapeReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ps := NewParamSet()
	mlp := NewMLP2(ps, rng, "mlp", 5, 8, 1)
	inputs := make([]*tensor.Tensor, 4)
	for i := range inputs {
		inputs[i] = randVec(rng, 5)
	}

	run := func(tp *Tape, x *tensor.Tensor) float64 {
		loss := tp.Sum(tp.Square(mlp.Forward(tp, tp.Const(x))))
		tp.Backward(loss)
		return loss.Value.Data[0]
	}

	reused := NewTape()
	var lossesReused []float64
	var gradsReused [][]float64
	for _, x := range inputs {
		ps.ZeroGrad()
		reused.Reset()
		lossesReused = append(lossesReused, run(reused, x))
		for _, p := range ps.All() {
			gradsReused = append(gradsReused, append([]float64(nil), p.Grad.Data...))
		}
	}

	gi := 0
	for si, x := range inputs {
		ps.ZeroGrad()
		loss := run(NewTape(), x)
		if loss != lossesReused[si] {
			t.Fatalf("sample %d: reused-tape loss %v != fresh-tape loss %v", si, lossesReused[si], loss)
		}
		for _, p := range ps.All() {
			for i, g := range p.Grad.Data {
				if gradsReused[gi][i] != g {
					t.Fatalf("sample %d param %q grad[%d]: reused %v != fresh %v", si, p.Name, i, gradsReused[gi][i], g)
				}
			}
			gi++
		}
	}
}

// TestTapeAllocAndConstVec covers the arena-backed input helpers.
func TestTapeAllocAndConstVec(t *testing.T) {
	tp := NewTape()
	v := tp.Alloc(3, 2)
	for i, x := range v.Data {
		if x != 0 {
			t.Fatalf("Alloc[%d] = %v, want 0", i, x)
		}
	}
	n := tp.ConstVec(1.5, -2, 0.25)
	if n.RequiresGrad() {
		t.Fatal("ConstVec node must not require grad")
	}
	for i, want := range []float64{1.5, -2, 0.25} {
		if n.Value.Data[i] != want {
			t.Fatalf("ConstVec[%d] = %v, want %v", i, n.Value.Data[i], want)
		}
	}
	if tp.Len() != 0 {
		t.Fatalf("const-only tape recorded %d nodes, want 0", tp.Len())
	}
}
