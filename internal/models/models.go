// Package models implements the five baselines the paper compares DeepOD
// against (§6.1):
//
//   - TEMP  — temporally weighted nearest neighbors (Wang et al., 2016)
//   - LR    — linear regression
//   - GBM   — gradient-boosted regression trees (the XGBoost baseline)
//   - STNN  — the deep model of Jindal et al. (distance-then-time)
//   - MURAT — the multi-task representation-learning model of Li et al.
//
// All models implement Estimator so the experiment harness can treat them
// and DeepOD uniformly.
package models

import (
	"math"
	"time"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// Estimator is a trained OD travel-time predictor.
type Estimator interface {
	// Name identifies the method in reports ("TEMP", "LR", ...).
	Name() string
	// Estimate predicts the travel time in seconds for a matched OD input.
	Estimate(od *traj.MatchedOD) float64
}

// Trainable is an Estimator that learns from historical trip records.
type Trainable interface {
	Estimator
	// Train fits the model. valid may be used for early stopping /
	// monitoring and may be empty for models that ignore it.
	Train(train, valid []traj.TripRecord) error
	// SizeBytes reports the memory footprint of the trained model
	// (Table 5's "model size").
	SizeBytes() int
	// TrainTime reports how long the last Train call took.
	TrainTime() time.Duration
}

// Featurizer extracts the hand-crafted OD feature vector used by LR, GBM
// and (in part) the deep baselines. Features are unit-scale:
//
//	0: origin x (normalized)   1: origin y
//	2: dest x                  3: dest y
//	4: Euclidean distance (km) 5: Manhattan distance (km)
//	6: sin(hour angle)         7: cos(hour angle)
//	8: day of week / 7         9: weekend flag
//	10: departure position ratio r[1]
//	11: destination position ratio r[-1]
//	12: mean grid speed (m/s / 16), 0 when unavailable
type Featurizer struct {
	g      *roadnet.Graph
	bounds geo.Rect
}

// NumFeatures is the length of the vector Features returns.
const NumFeatures = 13

// NewFeaturizer builds a featurizer over a road network.
func NewFeaturizer(g *roadnet.Graph) *Featurizer {
	return &Featurizer{g: g, bounds: g.Bounds()}
}

// Features extracts the feature vector for a matched OD input.
func (f *Featurizer) Features(od *traj.MatchedOD) []float64 {
	o := f.g.PointAlongEdge(od.OriginEdge, od.RStart)
	d := f.g.PointAlongEdge(od.DestEdge, 1-od.REnd)
	w, h := f.bounds.Width(), f.bounds.Height()
	nx := func(p geo.Point) (float64, float64) {
		return (p.X - f.bounds.Min.X) / w, (p.Y - f.bounds.Min.Y) / h
	}
	ox, oy := nx(o)
	dx, dy := nx(d)

	secOfDay := math.Mod(od.DepartSec, 86400)
	hourAngle := 2 * math.Pi * secOfDay / 86400
	day := int(od.DepartSec/86400) % 7
	weekend := 0.0
	if day >= 5 {
		weekend = 1
	}
	var gridSpeed float64
	if od.External != nil && len(od.External.SpeedGrid) > 0 {
		var s float64
		var n int
		for _, v := range od.External.SpeedGrid {
			if v > 0 {
				s += v
				n++
			}
		}
		if n > 0 {
			gridSpeed = s / float64(n) / 16.0
		}
	}
	return []float64{
		ox, oy, dx, dy,
		geo.Dist(o, d) / 1000,
		(math.Abs(o.X-d.X) + math.Abs(o.Y-d.Y)) / 1000,
		math.Sin(hourAngle), math.Cos(hourAngle),
		float64(day) / 7, weekend,
		od.RStart, od.REnd,
		gridSpeed,
	}
}

// ODPoints returns the origin and destination positions of a matched OD.
func (f *Featurizer) ODPoints(od *traj.MatchedOD) (origin, dest geo.Point) {
	return f.g.PointAlongEdge(od.OriginEdge, od.RStart),
		f.g.PointAlongEdge(od.DestEdge, 1-od.REnd)
}

// NumBasicFeatures is the length of BasicFeatures' result.
const NumBasicFeatures = 8

// BasicFeatures extracts the "basic" feature vector (raw coordinates and
// time features, no engineered distances) used by the LR baseline — the
// paper describes LR as a basic learning method, and it is the engineered
// distance features that would otherwise make a linear model unrealistically
// strong on grid cities:
//
//	0-3: origin x/y, dest x/y (normalized)
//	4-5: sin/cos hour angle
//	6: day of week / 7   7: weekend flag
func (f *Featurizer) BasicFeatures(od *traj.MatchedOD) []float64 {
	fs := f.Features(od)
	return []float64{fs[0], fs[1], fs[2], fs[3], fs[6], fs[7], fs[8], fs[9]}
}
