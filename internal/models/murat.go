package models

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepod/internal/embed"
	"deepod/internal/nn"
	"deepod/internal/roadnet"
	"deepod/internal/tensor"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// MURAT is the multi-task representation-learning baseline (Li et al.,
// KDD 2018): road-segment embeddings for the matched origin/destination
// segments and a time-slot embedding feed a residual MLP trunk with two
// heads predicting travel time and travel distance jointly.
//
// Faithful to the paper's critique of MURAT, this implementation (a) embeds
// the road network as an *unweighted* graph (no trajectory co-occurrence
// weights), (b) uses a single-day undirected-style temporal graph (daily
// periodicity only), and (c) never sees trajectories — the three gaps
// DeepOD closes.
type MURAT struct {
	g *roadnet.Graph

	Ds, Dt      int
	Hidden      int
	ResBlocks   int
	SlotMinutes int
	BatchSize   int
	Epochs      int
	LREvery     int
	EvalEvery   int
	ValSample   int
	EmbedWalks  int
	Seed        int64

	ps       *nn.ParamSet
	roadEmb  *nn.Embedding
	slotEmb  *nn.Embedding
	inProj   *nn.Linear
	resA     []*nn.Linear
	resB     []*nn.Linear
	timeHead *nn.Linear
	distHead *nn.Linear

	slotter   *timeslot.Slotter
	feat      *Featurizer
	timeScale float64
	distScale float64
	stats     *DeepStats
	trainTime time.Duration
}

// NewMURAT builds an untrained MURAT baseline with paper-suggested
// proportions at small scale.
func NewMURAT(g *roadnet.Graph) *MURAT {
	return &MURAT{
		g: g, feat: NewFeaturizer(g),
		Ds: 16, Dt: 16, Hidden: 32, ResBlocks: 2, SlotMinutes: 15,
		BatchSize: 64, Epochs: 4, EmbedWalks: 4, Seed: 13,
	}
}

// Name implements Estimator.
func (m *MURAT) Name() string { return "MURAT" }

func (m *MURAT) build() error {
	slotter, err := timeslot.New(time.Duration(m.SlotMinutes) * time.Minute)
	if err != nil {
		return err
	}
	m.slotter = slotter
	rng := rand.New(rand.NewSource(m.Seed))
	m.ps = nn.NewParamSet()
	m.roadEmb = nn.NewEmbedding(m.ps, rng, "murat.Ws", m.g.NumEdges(), m.Ds)
	m.slotEmb = nn.NewEmbedding(m.ps, rng, "murat.Wt", slotter.SlotsPerDay, m.Dt)
	in := 2*m.Ds + m.Dt + 4 // embeddings + r1, r2, hourSin, hourCos
	m.inProj = nn.NewLinear(m.ps, rng, "murat.in", in, m.Hidden)
	m.resA = m.resA[:0]
	m.resB = m.resB[:0]
	for i := 0; i < m.ResBlocks; i++ {
		m.resA = append(m.resA, nn.NewLinear(m.ps, rng, fmt.Sprintf("murat.res%d.a", i), m.Hidden, m.Hidden))
		m.resB = append(m.resB, nn.NewLinear(m.ps, rng, fmt.Sprintf("murat.res%d.b", i), m.Hidden, m.Hidden))
	}
	m.timeHead = nn.NewLinear(m.ps, rng, "murat.time", m.Hidden, 1)
	m.distHead = nn.NewLinear(m.ps, rng, "murat.dist", m.Hidden, 1)
	return nil
}

// pretrain initializes both embeddings with DeepWalk over unweighted
// graphs (MURAT's recipe; contrast with DeepOD's trajectory-weighted,
// directed constructions).
func (m *MURAT) pretrain() error {
	rng := rand.New(rand.NewSource(m.Seed + 1))
	lg, err := roadnet.BuildLineGraph(m.g, nil, 1) // unweighted: base weight only
	if err != nil {
		return err
	}
	wcfg := embed.DefaultWalkConfig()
	wcfg.P, wcfg.Q = 1, 1 // DeepWalk
	wcfg.WalksPerNode = m.EmbedWalks
	walks, err := embed.GenerateWalks(embed.FromLineGraph(lg), wcfg, rng)
	if err != nil {
		return err
	}
	vecs, err := embed.TrainSkipGram(lg.NumNodes, walks, embed.DefaultSkipGramConfig(m.Ds), rng)
	if err != nil {
		return err
	}
	if err := m.roadEmb.Init(vecs); err != nil {
		return err
	}

	tg, err := embed.BuildDayTemporalGraph(m.slotter, 1)
	if err != nil {
		return err
	}
	walks, err = embed.GenerateWalks(tg, wcfg, rng)
	if err != nil {
		return err
	}
	tvecs, err := embed.TrainSkipGram(tg.Slots, walks, embed.DefaultSkipGramConfig(m.Dt), rng)
	if err != nil {
		return err
	}
	return m.slotEmb.Init(tvecs)
}

// forward returns (timeNode, distNode) in normalized units.
func (m *MURAT) forward(tp *nn.Tape, od *traj.MatchedOD) (*nn.Node, *nn.Node) {
	fs := m.feat.Features(od)
	slot := m.slotter.SlotOfDay(m.slotter.WeekSlot(m.slotter.Slot(od.DepartSec)))
	x := tp.Concat(
		m.roadEmb.Lookup(tp, int(od.OriginEdge)),
		m.roadEmb.Lookup(tp, int(od.DestEdge)),
		m.slotEmb.Lookup(tp, slot),
		tp.Const(tensor.Vector(od.RStart, od.REnd, fs[6], fs[7])),
	)
	h := tp.ReLU(m.inProj.Forward(tp, x))
	for i := range m.resA {
		r := m.resB[i].Forward(tp, tp.ReLU(m.resA[i].Forward(tp, h)))
		h = tp.ReLU(tp.Add(h, r))
	}
	return m.timeHead.Forward(tp, h), m.distHead.Forward(tp, h)
}

// Train fits the multi-task objective MAE(time) + 0.5·MAE(distance).
func (m *MURAT) Train(train, valid []traj.TripRecord) error {
	if len(train) == 0 {
		return fmt.Errorf("models: MURAT needs training records")
	}
	start := time.Now()
	if err := m.build(); err != nil {
		return err
	}
	if err := m.pretrain(); err != nil {
		return err
	}
	m.timeScale = meanTravel(train)
	var meanDist float64
	for i := range train {
		meanDist += train[i].Trajectory.Length(m.g)
	}
	m.distScale = math.Max(1, meanDist/float64(len(train)))

	stats, err := deepTrain(m.ps, train, valid, deepTrainOpts{
		batchSize: m.BatchSize, epochs: m.Epochs,
		schedule: nn.StepDecaySchedule{Initial: 0.01, Factor: 0.2, Every: m.lrEvery()},
		clipNorm: 5, evalEvery: m.EvalEvery, valSample: m.ValSample, seed: m.Seed + 2,
	}, func(tp *nn.Tape, rec *traj.TripRecord) *nn.Node {
		t, d := m.forward(tp, &rec.Matched)
		timeTgt := tp.Const(tensor.Scalar(rec.TravelSec / m.timeScale))
		distTgt := tp.Const(tensor.Scalar(rec.Trajectory.Length(m.g) / m.distScale))
		return tp.Add(tp.AbsError(t, timeTgt), tp.Scale(tp.AbsError(d, distTgt), 0.5))
	}, m.Estimate)
	if err != nil {
		return err
	}
	m.stats = stats
	m.trainTime = time.Since(start)
	return nil
}

// Estimate implements Estimator.
func (m *MURAT) Estimate(od *traj.MatchedOD) float64 {
	if m.ps == nil {
		panic("models: MURAT used before Train")
	}
	tp := nn.NewEvalTape()
	t, _ := m.forward(tp, od)
	return math.Max(0, t.Value.Data[0]*m.timeScale)
}

// Stats returns the training curve (nil before Train).
func (m *MURAT) Stats() *DeepStats { return m.stats }

// SizeBytes implements Trainable.
func (m *MURAT) SizeBytes() int {
	if m.ps == nil {
		return 0
	}
	return m.ps.SizeBytes()
}

// TrainTime implements Trainable.
func (m *MURAT) TrainTime() time.Duration { return m.trainTime }

// lrEvery returns the LR-decay period in epochs (default 2).
func (m *MURAT) lrEvery() int { return lrEveryOr(m.LREvery) }
