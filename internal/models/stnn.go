package models

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepod/internal/nn"
	"deepod/internal/roadnet"
	"deepod/internal/tensor"
	"deepod/internal/traj"
)

// STNN is the Spatial Temporal deep Neural Network baseline (Jindal et al.):
// a first MLP predicts the travel distance from the raw origin/destination
// coordinates; a second MLP combines the predicted distance with the
// departure-time features to predict the travel time. It deliberately
// ignores the road network (the paper's explanation for STNN's weakness).
type STNN struct {
	feat *Featurizer

	Hidden    int
	BatchSize int
	Epochs    int
	LREvery   int
	EvalEvery int
	ValSample int
	Seed      int64

	ps        *nn.ParamSet
	distMLP   *nn.MLP2
	timeMLP   *nn.MLP2
	distScale float64
	timeScale float64
	stats     *DeepStats
	trainTime time.Duration
	g         *roadnet.Graph
}

// NewSTNN builds an untrained STNN baseline.
func NewSTNN(g *roadnet.Graph) *STNN {
	return &STNN{
		feat: NewFeaturizer(g), g: g,
		Hidden: 32, BatchSize: 64, Epochs: 4, EvalEvery: 0, Seed: 7,
	}
}

// Name implements Estimator.
func (s *STNN) Name() string { return "STNN" }

// build constructs the two MLPs.
func (s *STNN) build() {
	rng := rand.New(rand.NewSource(s.Seed))
	s.ps = nn.NewParamSet()
	// distance head: [ox, oy, dx, dy] -> distance
	s.distMLP = nn.NewMLP2(s.ps, rng, "stnn.dist", 4, s.Hidden, 1)
	// time head: [predicted distance, hourSin, hourCos, day, weekend] -> time
	s.timeMLP = nn.NewMLP2(s.ps, rng, "stnn.time", 5, s.Hidden, 1)
}

// forward runs both heads; returns (distNode, timeNode) in normalized units.
func (s *STNN) forward(tp *nn.Tape, od *traj.MatchedOD) (*nn.Node, *nn.Node) {
	fs := s.feat.Features(od)
	coords := tp.Const(tensor.Vector(fs[0], fs[1], fs[2], fs[3]))
	dist := s.distMLP.Forward(tp, coords)
	timeIn := tp.Concat(dist, tp.Const(tensor.Vector(fs[6], fs[7], fs[8], fs[9])))
	t := s.timeMLP.Forward(tp, timeIn)
	return dist, t
}

// Train fits both heads jointly: loss = MAE(time) + 0.5·MAE(distance), the
// multi-objective of the original STNN.
func (s *STNN) Train(train, valid []traj.TripRecord) error {
	if len(train) == 0 {
		return fmt.Errorf("models: STNN needs training records")
	}
	start := time.Now()
	s.build()
	s.timeScale = meanTravel(train)
	var meanDist float64
	for i := range train {
		meanDist += train[i].Trajectory.Length(s.g)
	}
	s.distScale = math.Max(1, meanDist/float64(len(train)))

	stats, err := deepTrain(s.ps, train, valid, deepTrainOpts{
		batchSize: s.BatchSize, epochs: s.Epochs,
		schedule: nn.StepDecaySchedule{Initial: 0.01, Factor: 0.2, Every: s.lrEvery()},
		clipNorm: 5, evalEvery: s.EvalEvery, valSample: s.ValSample, seed: s.Seed + 1,
	}, func(tp *nn.Tape, rec *traj.TripRecord) *nn.Node {
		dist, t := s.forward(tp, &rec.Matched)
		distTgt := tp.Const(tensor.Scalar(rec.Trajectory.Length(s.g) / s.distScale))
		timeTgt := tp.Const(tensor.Scalar(rec.TravelSec / s.timeScale))
		return tp.Add(tp.AbsError(t, timeTgt), tp.Scale(tp.AbsError(dist, distTgt), 0.5))
	}, s.Estimate)
	if err != nil {
		return err
	}
	s.stats = stats
	s.trainTime = time.Since(start)
	return nil
}

// Estimate implements Estimator.
func (s *STNN) Estimate(od *traj.MatchedOD) float64 {
	if s.ps == nil {
		panic("models: STNN used before Train")
	}
	tp := nn.NewEvalTape()
	_, t := s.forward(tp, od)
	return math.Max(0, t.Value.Data[0]*s.timeScale)
}

// Stats returns the training curve (nil before Train).
func (s *STNN) Stats() *DeepStats { return s.stats }

// SizeBytes implements Trainable.
func (s *STNN) SizeBytes() int {
	if s.ps == nil {
		return 0
	}
	return s.ps.SizeBytes()
}

// TrainTime implements Trainable.
func (s *STNN) TrainTime() time.Duration { return s.trainTime }

// lrEvery returns the LR-decay period in epochs (default 2).
func (s *STNN) lrEvery() int { return lrEveryOr(s.LREvery) }
