package models

import (
	"fmt"
	"math"
	"time"

	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// RouteETA is a route-based estimator from the *path* travel-time
// estimation family the paper's related work (§7.1) contrasts DeepOD with
// (floating-car-data approaches such as Wang et al. [42]): it learns
// per-segment, per-time-bin average speeds from the training trajectories,
// then answers an OD query by (a) predicting the route with time-dependent
// Dijkstra under those historical speeds and (b) integrating the travel
// time along it.
//
// It is not one of the paper's Table 4 baselines — it is the natural upper
// bound on what trajectory data can do when the route must be *predicted*
// rather than observed, and the extension experiment `ext-route` compares
// it against DeepOD.
type RouteETA struct {
	g *roadnet.Graph

	// BinHours is the width of a time-of-week bin (default 2 h → 84 bins).
	BinHours int

	// speeds[e][b] is the harmonic-mean observed speed of edge e in bin b;
	// 0 where unobserved.
	speeds    [][]float64
	edgeMean  []float64 // per-edge fallback
	classMean [2]float64
	trainTime time.Duration
	matched   int
}

// NewRouteETA builds an untrained route-based estimator.
func NewRouteETA(g *roadnet.Graph) *RouteETA {
	return &RouteETA{g: g, BinHours: 2}
}

// Name implements Estimator.
func (r *RouteETA) Name() string { return "RouteETA" }

// bins returns the number of time-of-week bins.
func (r *RouteETA) bins() int { return 7 * 24 / r.BinHours }

func (r *RouteETA) binOf(sec float64) int {
	week := math.Mod(sec, 7*24*3600)
	return int(week / float64(r.BinHours*3600))
}

// Train accumulates per-edge per-bin speed observations from the training
// trajectories' spatio-temporal paths.
func (r *RouteETA) Train(train, _ []traj.TripRecord) error {
	if len(train) == 0 {
		return fmt.Errorf("models: RouteETA needs training trajectories")
	}
	if r.BinHours <= 0 || 24%r.BinHours != 0 {
		return fmt.Errorf("models: BinHours must divide 24, got %d", r.BinHours)
	}
	start := time.Now()
	nb := r.bins()
	ne := r.g.NumEdges()
	sumT := make([][]float64, ne) // accumulated seconds per (edge, bin)
	sumL := make([][]float64, ne) // accumulated meters
	for e := 0; e < ne; e++ {
		sumT[e] = make([]float64, nb)
		sumL[e] = make([]float64, nb)
	}
	var classT, classL [2]float64
	edgeT := make([]float64, ne)
	edgeL := make([]float64, ne)

	for i := range train {
		tr := &train[i].Trajectory
		for si, s := range tr.Path {
			dur := s.Exit - s.Enter
			if dur <= 0 {
				continue
			}
			frac := 1.0
			if si == 0 {
				frac = 1 - tr.RStart
			}
			if si == len(tr.Path)-1 {
				frac = 1 - tr.REnd
				if len(tr.Path) == 1 {
					frac = (1 - tr.REnd) - tr.RStart
				}
			}
			if frac <= 0 {
				continue
			}
			length := r.g.Edges[s.Edge].Length * frac
			b := r.binOf(s.Enter)
			sumT[s.Edge][b] += dur
			sumL[s.Edge][b] += length
			edgeT[s.Edge] += dur
			edgeL[s.Edge] += length
			cls := r.g.Edges[s.Edge].Class
			classT[cls] += dur
			classL[cls] += length
		}
	}

	r.speeds = make([][]float64, ne)
	r.edgeMean = make([]float64, ne)
	r.matched = 0
	for e := 0; e < ne; e++ {
		r.speeds[e] = make([]float64, nb)
		for b := 0; b < nb; b++ {
			if sumT[e][b] > 0 {
				r.speeds[e][b] = sumL[e][b] / sumT[e][b]
				r.matched++
			}
		}
		if edgeT[e] > 0 {
			r.edgeMean[e] = edgeL[e] / edgeT[e]
		}
	}
	for c := 0; c < 2; c++ {
		if classT[c] > 0 {
			r.classMean[c] = classL[c] / classT[c]
		} else {
			r.classMean[c] = 5 // last-resort walking-pace floor, m/s
		}
	}
	r.trainTime = time.Since(start)
	return nil
}

// speedAt returns the historical speed of edge e at time sec, falling back
// bin → edge mean → class mean.
func (r *RouteETA) speedAt(e roadnet.EdgeID, sec float64) float64 {
	if v := r.speeds[e][r.binOf(sec)]; v > 0 {
		return v
	}
	if v := r.edgeMean[e]; v > 0 {
		return v
	}
	return r.classMean[r.g.Edges[e].Class]
}

// Estimate implements Estimator: route with time-dependent Dijkstra under
// historical speeds, then report the route's arrival time.
func (r *RouteETA) Estimate(od *traj.MatchedOD) float64 {
	if r.speeds == nil {
		panic("models: RouteETA used before Train")
	}
	cost := func(e roadnet.EdgeID, enter float64) float64 {
		return r.g.Edges[e].Length / r.speedAt(e, enter)
	}
	oe, de := r.g.Edges[od.OriginEdge], r.g.Edges[od.DestEdge]

	// Partial first segment.
	now := od.DepartSec
	now += (1 - od.RStart) * oe.Length / r.speedAt(od.OriginEdge, now)
	if od.OriginEdge == od.DestEdge && 1-od.REnd >= od.RStart {
		return ((1 - od.REnd) - od.RStart) * oe.Length / r.speedAt(od.OriginEdge, od.DepartSec)
	}
	p, err := roadnet.ShortestPath(r.g, oe.To, de.From, now, cost)
	if err != nil {
		// Disconnected under the directed graph: fall back to the class-
		// mean speed over the straight-line distance.
		a := r.g.PointAlongEdge(od.OriginEdge, od.RStart)
		b := r.g.PointAlongEdge(od.DestEdge, 1-od.REnd)
		dx, dy := a.X-b.X, a.Y-b.Y
		return math.Hypot(dx, dy) / r.classMean[roadnet.Local]
	}
	now += p.Cost
	// Partial last segment.
	now += (1 - od.REnd) * de.Length / r.speedAt(od.DestEdge, now)
	return now - od.DepartSec
}

// SizeBytes implements Trainable: the speed profile table.
func (r *RouteETA) SizeBytes() int {
	if r.speeds == nil {
		return 0
	}
	return (len(r.speeds)*r.bins() + len(r.edgeMean)) * 8
}

// TrainTime implements Trainable.
func (r *RouteETA) TrainTime() time.Duration { return r.trainTime }

// Coverage returns the fraction of (edge, bin) cells with direct
// observations — a diagnostic for the sparsity problem the paper's §7.1
// attributes to this method family ("historical data ... may not always be
// available in each road segment").
func (r *RouteETA) Coverage() float64 {
	if r.speeds == nil {
		return 0
	}
	return float64(r.matched) / float64(len(r.speeds)*r.bins())
}
