package models

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepod/internal/dataset"
	"deepod/internal/metrics"
	"deepod/internal/nn"
	"deepod/internal/traj"
)

// StepPoint is one validation measurement during deep-baseline training.
type StepPoint struct {
	Step   int
	ValMAE float64
}

// DeepStats summarizes a deep baseline's training run (Table 3 and
// Figure 10 report these for STNN and MURAT alongside DeepOD).
type DeepStats struct {
	Curve         []StepPoint
	Steps         int
	Elapsed       time.Duration
	ConvergedStep int
	ConvergedAt   time.Duration
	FinalValMAE   float64
}

// deepTrainOpts configures the shared mini-batch trainer.
type deepTrainOpts struct {
	batchSize int
	epochs    int
	schedule  nn.StepDecaySchedule
	clipNorm  float64
	evalEvery int
	valSample int
	seed      int64
}

// deepTrain runs mini-batch gradient-accumulation training of an arbitrary
// per-sample loss, mirroring the paper's training protocol (Adam, step
// decay). sampleLoss must build the loss for record rec on tape tp;
// estimate must predict seconds for validation measurement.
func deepTrain(ps *nn.ParamSet, train, valid []traj.TripRecord, opts deepTrainOpts,
	sampleLoss func(tp *nn.Tape, rec *traj.TripRecord) *nn.Node,
	estimate func(od *traj.MatchedOD) float64) (*DeepStats, error) {

	if len(train) == 0 {
		return nil, fmt.Errorf("models: no training records")
	}
	stats := &DeepStats{}
	start := time.Now()
	opt := nn.NewAdam(opts.schedule.Initial)
	rng := rand.New(rand.NewSource(opts.seed))

	evaluate := func() float64 {
		if len(valid) == 0 {
			return math.NaN()
		}
		n := len(valid)
		if opts.valSample > 0 && opts.valSample < n {
			n = opts.valSample
		}
		actual := make([]float64, n)
		pred := make([]float64, n)
		for i := 0; i < n; i++ {
			actual[i] = valid[i].TravelSec
			pred[i] = estimate(&valid[i].Matched)
		}
		return metrics.MAE(actual, pred)
	}

	step := 0
	for epoch := 0; epoch < opts.epochs; epoch++ {
		opt.LR = opts.schedule.At(epoch)
		err := dataset.Batches(len(train), opts.batchSize, rng, true, func(batch []int) error {
			ps.ZeroGrad()
			for _, bi := range batch {
				tp := nn.NewTape()
				loss := sampleLoss(tp, &train[bi])
				tp.Backward(loss)
			}
			ps.ScaleGrads(1 / float64(len(batch)))
			if opts.clipNorm > 0 {
				nn.ClipGradNorm(ps, opts.clipNorm)
			}
			opt.Step(ps)
			step++
			if opts.evalEvery > 0 && step%opts.evalEvery == 0 {
				stats.Curve = append(stats.Curve, StepPoint{Step: step, ValMAE: evaluate()})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		stats.Curve = append(stats.Curve, StepPoint{Step: step, ValMAE: evaluate()})
	}
	stats.Steps = step
	stats.Elapsed = time.Since(start)
	if len(stats.Curve) > 0 {
		stats.FinalValMAE = stats.Curve[len(stats.Curve)-1].ValMAE
		best := math.Inf(1)
		for _, p := range stats.Curve {
			if p.ValMAE < best {
				best = p.ValMAE
			}
		}
		for _, p := range stats.Curve {
			if p.ValMAE <= best*1.02 {
				stats.ConvergedStep = p.Step
				break
			}
		}
		if stats.Steps > 0 {
			stats.ConvergedAt = time.Duration(float64(stats.ConvergedStep) / float64(stats.Steps) * float64(stats.Elapsed))
		}
	}
	return stats, nil
}

// meanTravel returns the mean travel time of records (target scaling).
func meanTravel(records []traj.TripRecord) float64 {
	var s float64
	for i := range records {
		s += records[i].TravelSec
	}
	return s / float64(len(records))
}

// lrEveryOr returns every when positive, else the paper default of 2.
func lrEveryOr(every int) int {
	if every > 0 {
		return every
	}
	return 2
}
