package models

import (
	"fmt"
	"math"
	"sort"
	"time"

	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// GBM is the gradient-boosted regression-tree baseline (the role XGBoost
// plays in the paper): an ensemble of shallow CART regression trees fit to
// squared-loss residuals with shrinkage, exact greedy splits, and minimum
// leaf sizes. Like the paper's baselines it works from the basic OD features
// (raw coordinates + departure-time features); its edge over LR comes from
// nonlinearity, not feature engineering.
type GBM struct {
	feat *Featurizer

	// NumTrees, MaxDepth, MinLeaf and Shrinkage are the usual boosting
	// hyper-parameters.
	NumTrees  int
	MaxDepth  int
	MinLeaf   int
	Shrinkage float64

	base      float64
	trees     []*gbmTree
	trainTime time.Duration
}

// NewGBM builds an untrained boosted-tree baseline with defaults that fit
// the synthetic datasets.
func NewGBM(g *roadnet.Graph) *GBM {
	return &GBM{
		feat:     NewFeaturizer(g),
		NumTrees: 60, MaxDepth: 4, MinLeaf: 8, Shrinkage: 0.15,
	}
}

// Name implements Estimator.
func (m *GBM) Name() string { return "GBM" }

type gbmNode struct {
	feature int
	thresh  float64
	left    int32 // child indices; -1 for leaf
	right   int32
	value   float64
}

type gbmTree struct {
	nodes []gbmNode
}

func (t *gbmTree) predict(fs []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.left < 0 {
			return n.value
		}
		if fs[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Train fits the ensemble to the training records.
func (m *GBM) Train(train, _ []traj.TripRecord) error {
	if len(train) < 2*m.MinLeaf {
		return fmt.Errorf("models: GBM needs at least %d records, got %d", 2*m.MinLeaf, len(train))
	}
	start := time.Now()
	n := len(train)
	feats := make([][]float64, n)
	var mean float64
	for i := range train {
		feats[i] = m.feat.BasicFeatures(&train[i].Matched)
		mean += train[i].TravelSec
	}
	m.base = mean / float64(n)

	residual := make([]float64, n)
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	m.trees = m.trees[:0]
	idx := make([]int, n)
	for t := 0; t < m.NumTrees; t++ {
		for i := range residual {
			residual[i] = train[i].TravelSec - pred[i]
			idx[i] = i
		}
		tree := &gbmTree{}
		m.grow(tree, feats, residual, idx, 0)
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += m.Shrinkage * tree.predict(feats[i])
		}
	}
	m.trainTime = time.Since(start)
	return nil
}

// grow recursively builds a tree node over samples idx; returns its index.
func (m *GBM) grow(t *gbmTree, feats [][]float64, target []float64, idx []int, depth int) int32 {
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, gbmNode{left: -1, right: -1})

	var sum float64
	for _, i := range idx {
		sum += target[i]
	}
	meanVal := sum / float64(len(idx))
	t.nodes[node].value = meanVal

	if depth >= m.MaxDepth || len(idx) < 2*m.MinLeaf {
		return node
	}
	bestGain := 0.0
	bestFeat, bestPos := -1, -1
	var order []int
	for f := 0; f < NumBasicFeatures; f++ {
		sorted := append([]int(nil), idx...)
		sort.Slice(sorted, func(a, b int) bool { return feats[sorted[a]][f] < feats[sorted[b]][f] })
		// prefix sums of targets in sorted order
		var leftSum float64
		total := sum
		nTot := float64(len(sorted))
		for pos := 0; pos < len(sorted)-1; pos++ {
			leftSum += target[sorted[pos]]
			nl := float64(pos + 1)
			if int(nl) < m.MinLeaf || len(sorted)-int(nl) < m.MinLeaf {
				continue
			}
			// skip ties: can't split between equal feature values
			if feats[sorted[pos]][f] == feats[sorted[pos+1]][f] {
				continue
			}
			rightSum := total - leftSum
			nr := nTot - nl
			gain := leftSum*leftSum/nl + rightSum*rightSum/nr - total*total/nTot
			if gain > bestGain+1e-12 {
				bestGain, bestFeat, bestPos = gain, f, pos
				order = sorted
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	thresh := (feats[order[bestPos]][bestFeat] + feats[order[bestPos+1]][bestFeat]) / 2
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if feats[i][bestFeat] <= thresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	t.nodes[node].feature = bestFeat
	t.nodes[node].thresh = thresh
	l := m.grow(t, feats, target, leftIdx, depth+1)
	r := m.grow(t, feats, target, rightIdx, depth+1)
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

// Estimate implements Estimator.
func (m *GBM) Estimate(od *traj.MatchedOD) float64 {
	if len(m.trees) == 0 {
		panic("models: GBM used before Train")
	}
	fs := m.feat.BasicFeatures(od)
	y := m.base
	for _, t := range m.trees {
		y += m.Shrinkage * t.predict(fs)
	}
	return math.Max(0, y)
}

// SizeBytes implements Trainable (each node stores ~4 scalars).
func (m *GBM) SizeBytes() int {
	n := 0
	for _, t := range m.trees {
		n += len(t.nodes)
	}
	return n*4*8 + 8
}

// TrainTime implements Trainable.
func (m *GBM) TrainTime() time.Duration { return m.trainTime }
