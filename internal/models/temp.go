package models

import (
	"fmt"
	"math"
	"time"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// TEMP is the temporally weighted neighbors baseline of Wang et al. (2016):
// the travel time of an OD query is the average travel time of historical
// trips whose origin and destination both lie within a radius of the
// query's endpoints and whose departure falls in the same time-of-week
// slot. If no neighbors are found the radius and the slot tolerance widen
// until some are (the paper notes TEMP suffers exactly when this search is
// forced to generalize — the sparsity failure mode of Table 4 point 4).
type TEMP struct {
	g    *roadnet.Graph
	feat *Featurizer

	// RadiusMeters is the initial neighbor radius; SlotMinutes the
	// time-of-week slot width.
	RadiusMeters float64
	SlotMinutes  float64

	trips     []tempTrip
	trainTime time.Duration
}

type tempTrip struct {
	origin, dest geo.Point
	weekSec      float64
	travel       float64
}

// NewTEMP builds an untrained TEMP baseline.
func NewTEMP(g *roadnet.Graph) *TEMP {
	return &TEMP{g: g, feat: NewFeaturizer(g), RadiusMeters: 300, SlotMinutes: 30}
}

// Name implements Estimator.
func (t *TEMP) Name() string { return "TEMP" }

// Train memorizes the training trips (TEMP is non-learning; Table 5 counts
// its model size as the stored trip data).
func (t *TEMP) Train(train, _ []traj.TripRecord) error {
	if len(train) == 0 {
		return fmt.Errorf("models: TEMP needs at least one training trip")
	}
	start := time.Now()
	t.trips = make([]tempTrip, len(train))
	for i := range train {
		o, d := t.feat.ODPoints(&train[i].Matched)
		t.trips[i] = tempTrip{
			origin:  o,
			dest:    d,
			weekSec: math.Mod(train[i].Matched.DepartSec, 7*86400),
			travel:  train[i].TravelSec,
		}
	}
	t.trainTime = time.Since(start)
	return nil
}

// Estimate implements Estimator, widening the search until neighbors exist.
func (t *TEMP) Estimate(od *traj.MatchedOD) float64 {
	o, d := t.feat.ODPoints(od)
	weekSec := math.Mod(od.DepartSec, 7*86400)
	radius := t.RadiusMeters
	slot := t.SlotMinutes * 60
	for widen := 0; widen < 8; widen++ {
		var sum float64
		var n int
		for i := range t.trips {
			tr := &t.trips[i]
			if geo.Dist(tr.origin, o) > radius || geo.Dist(tr.dest, d) > radius {
				continue
			}
			dt := math.Abs(tr.weekSec - weekSec)
			if dt > 7*86400-dt {
				dt = 7*86400 - dt
			}
			if dt > slot {
				continue
			}
			sum += tr.travel
			n++
		}
		if n > 0 {
			return sum / float64(n)
		}
		radius *= 2
		slot *= 2
	}
	// Ultimate fallback: the global mean.
	var sum float64
	for i := range t.trips {
		sum += t.trips[i].travel
	}
	return sum / float64(len(t.trips))
}

// SizeBytes reports the stored-trip footprint (5 float64 per trip).
func (t *TEMP) SizeBytes() int { return len(t.trips) * 5 * 8 }

// TrainTime implements Trainable.
func (t *TEMP) TrainTime() time.Duration { return t.trainTime }
