package models

import (
	"fmt"
	"math"
	"time"

	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// LinReg is the LR baseline: ordinary least squares (with a small ridge
// term for conditioning) over the basic OD features (raw coordinates and
// time features — the paper's LR is a basic learning method), fit in closed
// form by solving the normal equations.
type LinReg struct {
	feat *Featurizer
	// Lambda is the ridge regularizer.
	Lambda float64

	weights   []float64 // NumFeatures + 1 (intercept first)
	trainTime time.Duration
}

// NewLinReg builds an untrained linear-regression baseline.
func NewLinReg(g *roadnet.Graph) *LinReg {
	return &LinReg{feat: NewFeaturizer(g), Lambda: 1e-6}
}

// Name implements Estimator.
func (l *LinReg) Name() string { return "LR" }

// Train solves (XᵀX + λI) w = Xᵀy.
func (l *LinReg) Train(train, _ []traj.TripRecord) error {
	if len(train) < NumBasicFeatures+1 {
		return fmt.Errorf("models: LR needs at least %d records, got %d", NumBasicFeatures+1, len(train))
	}
	start := time.Now()
	p := NumBasicFeatures + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	for i := range train {
		fs := l.feat.BasicFeatures(&train[i].Matched)
		row[0] = 1
		copy(row[1:], fs)
		y := train[i].TravelSec
		for a := 0; a < p; a++ {
			xty[a] += row[a] * y
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		xtx[a][a] += l.Lambda
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	w, err := solveSPD(xtx, xty)
	if err != nil {
		return fmt.Errorf("models: LR normal equations: %w", err)
	}
	l.weights = w
	l.trainTime = time.Since(start)
	return nil
}

// Estimate implements Estimator.
func (l *LinReg) Estimate(od *traj.MatchedOD) float64 {
	if l.weights == nil {
		panic("models: LR used before Train")
	}
	fs := l.feat.BasicFeatures(od)
	y := l.weights[0]
	for i, v := range fs {
		y += l.weights[i+1] * v
	}
	if y < 0 {
		y = 0
	}
	return y
}

// SizeBytes implements Trainable.
func (l *LinReg) SizeBytes() int { return len(l.weights) * 8 }

// TrainTime implements Trainable.
func (l *LinReg) TrainTime() time.Duration { return l.trainTime }

// solveSPD solves A x = b by Gaussian elimination with partial pivoting.
// A is destroyed.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// pivot
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= a[col][c] * x[c]
		}
		x[col] = s / a[col][col]
	}
	return x, nil
}
