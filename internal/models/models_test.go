package models

import (
	"math"
	"testing"

	"deepod/internal/citysim"
	"deepod/internal/dataset"
	"deepod/internal/metrics"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// world builds a deterministic city + split shared by the baseline tests.
func world(t testing.TB, orders int) (*roadnet.Graph, dataset.Split) {
	t.Helper()
	cfg := roadnet.SmallCity("mdl", 6)
	g, err := roadnet.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := citysim.NewTraffic(g, 14*timeslot.SecondsPerDay, 6)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := citysim.NewSpeedGridder(tf, 300, 1800)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := citysim.NewGenerator(tf, grid, citysim.DefaultOrderConfig(orders, 6))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	split, err := dataset.PaperSplit(recs)
	if err != nil {
		t.Fatal(err)
	}
	return g, split
}

// constMAE returns the mean-predictor MAE on test, the bar every baseline
// must clear.
func constMAE(train, test []traj.TripRecord) float64 {
	var mean float64
	for i := range train {
		mean += train[i].TravelSec
	}
	mean /= float64(len(train))
	actual := make([]float64, len(test))
	pred := make([]float64, len(test))
	for i := range test {
		actual[i] = test[i].TravelSec
		pred[i] = mean
	}
	return metrics.MAE(actual, pred)
}

func evalMAE(est Estimator, test []traj.TripRecord) float64 {
	actual := make([]float64, len(test))
	pred := make([]float64, len(test))
	for i := range test {
		actual[i] = test[i].TravelSec
		pred[i] = est.Estimate(&test[i].Matched)
	}
	return metrics.MAE(actual, pred)
}

func TestAllBaselinesBeatMeanPredictor(t *testing.T) {
	g, split := world(t, 700)
	bar := constMAE(split.Train, split.Test)
	builders := map[string]func() Trainable{
		"TEMP": func() Trainable { return NewTEMP(g) },
		"LR":   func() Trainable { return NewLinReg(g) },
		"GBM":  func() Trainable { return NewGBM(g) },
		"STNN": func() Trainable {
			m := NewSTNN(g)
			m.Epochs = 8
			m.BatchSize = 16
			m.LREvery = 4
			return m
		},
		"MURAT": func() Trainable {
			m := NewMURAT(g)
			m.Epochs = 8
			m.BatchSize = 16
			m.LREvery = 4
			m.EmbedWalks = 4
			return m
		},
	}
	for name, build := range builders {
		build := build
		t.Run(name, func(t *testing.T) {
			m := build()
			if m.Name() != name {
				t.Fatalf("Name() = %q, want %q", m.Name(), name)
			}
			if err := m.Train(split.Train, split.Valid); err != nil {
				t.Fatal(err)
			}
			mae := evalMAE(m, split.Test)
			if mae >= bar {
				t.Errorf("%s MAE %.1f does not beat mean predictor %.1f", name, mae, bar)
			}
			if m.SizeBytes() <= 0 {
				t.Errorf("%s reports zero size", name)
			}
			if m.TrainTime() < 0 {
				t.Errorf("%s reports negative training time", name)
			}
			// Every prediction must be finite and non-negative.
			for i := range split.Test {
				y := m.Estimate(&split.Test[i].Matched)
				if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
					t.Fatalf("%s produced invalid estimate %v", name, y)
				}
			}
		})
	}
}

func TestTEMPWidensSearch(t *testing.T) {
	g, split := world(t, 120)
	m := NewTEMP(g)
	m.RadiusMeters = 1 // absurdly tight: forces widening
	if err := m.Train(split.Train, nil); err != nil {
		t.Fatal(err)
	}
	y := m.Estimate(&split.Test[0].Matched)
	if y <= 0 {
		t.Fatalf("TEMP fallback produced %v", y)
	}
}

func TestTEMPSizeProportionalToData(t *testing.T) {
	g, split := world(t, 200)
	small := NewTEMP(g)
	if err := small.Train(split.Train[:50], nil); err != nil {
		t.Fatal(err)
	}
	big := NewTEMP(g)
	if err := big.Train(split.Train, nil); err != nil {
		t.Fatal(err)
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("TEMP size should grow with stored trips")
	}
}

func TestLinRegErrors(t *testing.T) {
	g, split := world(t, 120)
	m := NewLinReg(g)
	if err := m.Train(split.Train[:3], nil); err == nil {
		t.Fatal("LR trained on 3 records")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("untrained LR did not panic on Estimate")
		}
	}()
	NewLinReg(g).Estimate(&split.Test[0].Matched)
}

func TestLinRegRecoversLinearFunction(t *testing.T) {
	// On synthetic records whose travel time is exactly linear in the basic
	// features, LR must fit near-perfectly.
	g, split := world(t, 260)
	feat := NewFeaturizer(g)
	recs := append([]traj.TripRecord(nil), split.Train...)
	target := func(r *traj.TripRecord) float64 {
		fs := feat.BasicFeatures(&r.Matched)
		return 100 + 400*fs[0] + 250*fs[3] + 60*fs[4]
	}
	for i := range recs {
		recs[i].TravelSec = target(&recs[i])
	}
	m := NewLinReg(g)
	if err := m.Train(recs, nil); err != nil {
		t.Fatal(err)
	}
	for i := range recs[:40] {
		want := target(&recs[i])
		got := m.Estimate(&recs[i].Matched)
		if math.Abs(got-want) > 1 {
			t.Fatalf("LR misfits a linear target: got %v want %v", got, want)
		}
	}
}

func TestGBMImprovesWithTrees(t *testing.T) {
	g, split := world(t, 400)
	few := NewGBM(g)
	few.NumTrees = 2
	if err := few.Train(split.Train, nil); err != nil {
		t.Fatal(err)
	}
	many := NewGBM(g)
	many.NumTrees = 60
	if err := many.Train(split.Train, nil); err != nil {
		t.Fatal(err)
	}
	// On TRAINING data more trees always fit better (boosting monotonicity).
	fewMAE := evalMAE(few, split.Train)
	manyMAE := evalMAE(many, split.Train)
	if manyMAE >= fewMAE {
		t.Fatalf("more trees did not reduce training error: %v vs %v", manyMAE, fewMAE)
	}
}

func TestGBMValidation(t *testing.T) {
	g, split := world(t, 120)
	m := NewGBM(g)
	if err := m.Train(split.Train[:5], nil); err == nil {
		t.Fatal("GBM trained on 5 records")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("untrained GBM did not panic")
		}
	}()
	NewGBM(g).Estimate(&split.Test[0].Matched)
}

func TestDeepBaselineStats(t *testing.T) {
	g, split := world(t, 300)
	s := NewSTNN(g)
	s.Epochs = 2
	s.EvalEvery = 2
	if err := s.Train(split.Train, split.Valid); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st == nil || st.Steps == 0 || len(st.Curve) == 0 {
		t.Fatalf("STNN stats missing: %+v", st)
	}
	if st.ConvergedStep > st.Steps {
		t.Fatal("converged after end")
	}

	mu := NewMURAT(g)
	mu.Epochs = 2
	mu.EmbedWalks = 2
	if err := mu.Train(split.Train, split.Valid); err != nil {
		t.Fatal(err)
	}
	if mu.Stats() == nil {
		t.Fatal("MURAT stats missing")
	}
}

func TestFeaturizer(t *testing.T) {
	g, split := world(t, 60)
	f := NewFeaturizer(g)
	od := &split.Test[0].Matched
	fs := f.Features(od)
	if len(fs) != NumFeatures {
		t.Fatalf("Features length %d, want %d", len(fs), NumFeatures)
	}
	bs := f.BasicFeatures(od)
	if len(bs) != NumBasicFeatures {
		t.Fatalf("BasicFeatures length %d, want %d", len(bs), NumBasicFeatures)
	}
	// Coordinates normalized, sin/cos bounded.
	for i := 0; i < 4; i++ {
		if fs[i] < -0.1 || fs[i] > 1.1 {
			t.Fatalf("coordinate feature %d = %v out of [0,1]", i, fs[i])
		}
	}
	if fs[6] < -1 || fs[6] > 1 || fs[7] < -1 || fs[7] > 1 {
		t.Fatalf("hour features out of range: %v %v", fs[6], fs[7])
	}
	// Distances non-negative, Manhattan ≥ Euclidean.
	if fs[4] < 0 || fs[5] < fs[4]-1e-9 {
		t.Fatalf("distance features inconsistent: euclid %v manhattan %v", fs[4], fs[5])
	}
	o, d := f.ODPoints(od)
	if o == d {
		t.Fatal("ODPoints returned identical points for a real trip")
	}
}

func TestRouteETA(t *testing.T) {
	g, split := world(t, 500)
	r := NewRouteETA(g)
	if err := r.Train(split.Train, nil); err != nil {
		t.Fatal(err)
	}
	if r.Name() != "RouteETA" {
		t.Fatalf("Name = %q", r.Name())
	}
	if r.Coverage() <= 0 || r.Coverage() > 1 {
		t.Fatalf("Coverage = %v", r.Coverage())
	}
	if r.SizeBytes() <= 0 {
		t.Fatal("zero size")
	}
	bar := constMAE(split.Train, split.Test)
	mae := evalMAE(r, split.Test)
	if mae >= bar {
		t.Errorf("RouteETA MAE %.1f does not beat mean predictor %.1f", mae, bar)
	}
	for i := range split.Test {
		y := r.Estimate(&split.Test[i].Matched)
		if y <= 0 || math.IsNaN(y) {
			t.Fatalf("invalid estimate %v", y)
		}
	}
}

func TestRouteETAValidation(t *testing.T) {
	g, split := world(t, 120)
	r := NewRouteETA(g)
	if err := r.Train(nil, nil); err == nil {
		t.Fatal("empty training accepted")
	}
	r.BinHours = 5 // does not divide 24
	if err := r.Train(split.Train, nil); err == nil {
		t.Fatal("BinHours=5 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("untrained RouteETA did not panic")
		}
	}()
	NewRouteETA(g).Estimate(&split.Test[0].Matched)
}
