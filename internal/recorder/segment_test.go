package recorder

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"deepod/internal/infer"
	"deepod/internal/obs"
)

// TestSegmentRoundTrip: events captured with a directory configured come
// back from disk byte-identical (same JSON shape), with the header naming
// the serving context.
func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := newTest(t, Config{
		SampleRate: 1,
		Dir:        dir,
		Meta:       map[string]string{"city": "chengdu-s", "model": "m1"},
	})
	const n = 25
	for i := 0; i < n; i++ {
		r.RecordServe(context.Background(), servedEvent(float64(i)))
	}
	r.RecordServe(context.Background(), errEvent(infer.ErrOverloaded))
	r.Close()

	headers, events, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 1 || headers[0].Format != segmentFormat || headers[0].Meta["city"] != "chengdu-s" {
		t.Fatalf("headers = %+v", headers)
	}
	if len(events) != n+1 {
		t.Fatalf("read %d events, want %d", len(events), n+1)
	}
	for i, e := range events[:n] {
		if e.Seq != uint64(i+1) || e.EstimateSec != float64(i) || e.Snapshot != "m1" {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	last := events[n]
	if last.Err != "overloaded" || !last.Shed {
		t.Fatalf("error event = %+v", last)
	}
}

// TestSegmentRotationAndRetention: the writer rotates after SegmentEvents
// events and deletes the oldest file once MaxSegments is reached — the same
// bounded-retention contract as the profiler's capture ring, but for files
// of events.
func TestSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	r := newTest(t, Config{
		SampleRate:    1,
		Dir:           dir,
		SegmentEvents: 10,
		MaxSegments:   3,
	})
	// 60 events = 6 segments opened; only the newest 3 may survive.
	for i := 0; i < 60; i++ {
		r.RecordServe(context.Background(), servedEvent(float64(i)))
	}
	r.Close()

	segs := listSegments(dir)
	if len(segs) != 3 {
		names := make([]string, len(segs))
		for i, s := range segs {
			names[i] = s.Name
		}
		t.Fatalf("retention kept %d segments %v, want 3", len(segs), names)
	}
	if segs[0].Name != "seg-000003.jsonl" || segs[2].Name != "seg-000005.jsonl" {
		t.Fatalf("surviving segments = %v, want 000003..000005", segs)
	}
	_, events, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 30 {
		t.Fatalf("surviving events = %d, want the newest 30", len(events))
	}
	if events[0].Seq != 31 || events[29].Seq != 60 {
		t.Fatalf("surviving seq range = %d..%d, want 31..60", events[0].Seq, events[29].Seq)
	}
}

// TestSegmentNumberingSurvivesRestart: a new recorder over a directory with
// leftover segments continues numbering instead of overwriting them.
func TestSegmentNumberingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	r1 := newTest(t, Config{SampleRate: 1, Dir: dir})
	r1.RecordServe(context.Background(), servedEvent(1))
	r1.Close()

	r2 := newTest(t, Config{SampleRate: 1, Dir: dir})
	r2.RecordServe(context.Background(), servedEvent(2))
	r2.Close()

	segs := listSegments(dir)
	if len(segs) != 2 || segs[0].Name != "seg-000000.jsonl" || segs[1].Name != "seg-000001.jsonl" {
		t.Fatalf("segments after restart = %+v", segs)
	}
	_, events, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events after restart = %d, want both sessions'", len(events))
	}
}

// TestSegmentTornTailTolerated: a half-written final line (crashed writer)
// loses that event only; the rest of the segment still loads.
func TestSegmentTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	r := newTest(t, Config{SampleRate: 1, Dir: dir})
	r.RecordServe(context.Background(), servedEvent(1))
	r.RecordServe(context.Background(), servedEvent(2))
	r.Close()

	path := filepath.Join(dir, "seg-000000.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, events, err := ReadSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("torn segment yielded %d events, want the 2 intact ones", len(events))
	}
}

// TestSegmentUnknownFormatRefused: a reader must refuse a future format
// version rather than misparse it.
func TestSegmentUnknownFormatRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000000.jsonl")
	if err := os.WriteFile(path, []byte(`{"format":"tte-flight/99"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSegment(path); err == nil {
		t.Fatal("unknown segment format accepted")
	}
}

// TestSegmentDirCreateFails: a hostile directory path fails at New, not at
// first capture.
func TestSegmentDirCreateFails(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Dir: filepath.Join(file, "sub"), Registry: obs.NewRegistry()})
	if err == nil {
		t.Fatal("New accepted an uncreatable segment directory")
	}
}
