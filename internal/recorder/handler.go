package recorder

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// payload is the /debug/recorder envelope: the policy counters first, so
// "how much did we drop" is answered before anyone reads an event list.
type payload struct {
	Stats    Stats         `json:"stats"`
	Count    int           `json:"count"`
	Events   []Event       `json:"events"`
	Segments []SegmentInfo `json:"segments,omitempty"`
}

// Handler serves the flight recorder for debugging:
//
//	GET <mount>                     ring events newest-first, filterable by
//	                                generation, epoch, errors, minDur, limit
//	GET <mount>/segments            on-disk segment list
//	GET <mount>/segments/<name>     raw JSONL segment download
//
// Filters arrive as query parameters; limit defaults to 256 so a browser
// hit stays readable.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/recorder"), "/")
		switch {
		case rest == "":
			r.serveEvents(w, req)
		case rest == "segments":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Segments []SegmentInfo `json:"segments"`
			}{r.Segments()})
		case strings.HasPrefix(rest, "segments/"):
			r.serveSegment(w, req, strings.TrimPrefix(rest, "segments/"))
		default:
			http.Error(w, "want /debug/recorder, /debug/recorder/segments or /debug/recorder/segments/<name>", http.StatusNotFound)
		}
	})
}

func (r *Recorder) serveEvents(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	f := Filter{Limit: 256}
	if v := q.Get("generation"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad generation", http.StatusBadRequest)
			return
		}
		f.Generation = n
	}
	if v := q.Get("epoch"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad epoch", http.StatusBadRequest)
			return
		}
		f.Epoch, f.HasEpoch = n, true
	}
	if v := q.Get("errors"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "bad errors", http.StatusBadRequest)
			return
		}
		f.ErrorsOnly = b
	}
	if v := q.Get("minDur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "bad minDur (want a Go duration, e.g. 50ms)", http.StatusBadRequest)
			return
		}
		f.MinDur = d
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	events := r.Events(f)
	if events == nil {
		events = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload{
		Stats:    r.Stats(),
		Count:    len(events),
		Events:   events,
		Segments: r.Segments(),
	})
}

// serveSegment streams one segment file. The name is validated against the
// writer's own listing — never joined into the path from raw user input —
// so traversal is structurally impossible.
func (r *Recorder) serveSegment(w http.ResponseWriter, req *http.Request, name string) {
	if r.disk == nil {
		http.Error(w, "no segment directory configured", http.StatusNotFound)
		return
	}
	found := false
	for _, si := range r.Segments() {
		if si.Name == name {
			found = true
			break
		}
	}
	if !found {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	// Flush the live buffer so a download of the current segment carries
	// every event captured so far.
	r.Sync()
	f, err := os.Open(filepath.Join(r.cfg.Dir, name))
	if err != nil {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition", "attachment; filename="+name)
	http.ServeContent(w, req, name, time.Time{}, f)
}
