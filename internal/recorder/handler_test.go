package recorder

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepod/internal/infer"
)

func handlerFixture(t *testing.T) *Recorder {
	t.Helper()
	r := newTest(t, Config{SampleRate: 1, Dir: t.TempDir()})
	for i := 0; i < 5; i++ {
		ev := servedEvent(float64(i))
		ev.Generation = uint64(1 + i%2)
		ev.Latency = time.Duration(i+1) * 10 * time.Millisecond
		r.RecordServe(context.Background(), ev)
	}
	r.RecordServe(context.Background(), errEvent(infer.ErrOverloaded))
	r.Sync()
	return r
}

func getJSON(t *testing.T, r *Recorder, url string) payload {
	t.Helper()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
	}
	var p payload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return p
}

func TestHandlerListsAndFilters(t *testing.T) {
	r := handlerFixture(t)

	p := getJSON(t, r, "/debug/recorder")
	if p.Count != 6 || len(p.Events) != 6 {
		t.Fatalf("unfiltered count = %d", p.Count)
	}
	if p.Stats.Seen != 6 || p.Stats.Captured() != 6 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	if len(p.Segments) == 0 {
		t.Fatal("segment list missing from envelope")
	}
	// Newest-first.
	if p.Events[0].Seq != 6 {
		t.Fatalf("head seq = %d, want 6", p.Events[0].Seq)
	}

	if p := getJSON(t, r, "/debug/recorder?errors=true"); p.Count != 1 || p.Events[0].Err != "overloaded" {
		t.Fatalf("errors filter: %+v", p.Events)
	}
	if p := getJSON(t, r, "/debug/recorder?generation=2"); p.Count != 2 {
		t.Fatalf("generation filter count = %d", p.Count)
	}
	if p := getJSON(t, r, "/debug/recorder?minDur=45ms"); p.Count != 1 {
		t.Fatalf("minDur filter count = %d", p.Count)
	}
	if p := getJSON(t, r, "/debug/recorder?limit=2"); p.Count != 2 {
		t.Fatalf("limit count = %d", p.Count)
	}
	if p := getJSON(t, r, "/debug/recorder?epoch=0"); p.Count != 6 {
		t.Fatalf("epoch=0 count = %d", p.Count)
	}

	for _, bad := range []string{
		"/debug/recorder?generation=x",
		"/debug/recorder?epoch=-1",
		"/debug/recorder?minDur=fast",
		"/debug/recorder?limit=-2",
		"/debug/recorder?errors=maybe",
	} {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Fatalf("GET %s = %d, want 400", bad, rec.Code)
		}
	}
}

func TestHandlerSegmentDownload(t *testing.T) {
	r := handlerFixture(t)
	segs := r.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/recorder/segments", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), segs[0].Name) {
		t.Fatalf("segment list = %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/recorder/segments/"+segs[0].Name, nil))
	if rec.Code != 200 {
		t.Fatalf("download = %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 7 { // header + 6 events
		t.Fatalf("downloaded %d lines, want 7", len(lines))
	}
	var hdr Header
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Format != segmentFormat {
		t.Fatalf("downloaded header = %q (%v)", lines[0], err)
	}

	// Traversal and unknown names must 404, not read outside the directory.
	for _, bad := range []string{
		"/debug/recorder/segments/nope.jsonl",
		"/debug/recorder/segments/..%2fseg-000000.jsonl",
	} {
		rec = httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 404 {
			t.Fatalf("GET %s = %d, want 404", bad, rec.Code)
		}
	}
}

func TestHandlerMethodGuard(t *testing.T) {
	r := newTest(t, Config{SampleRate: 1})
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/recorder", nil))
	if rec.Code != 405 {
		t.Fatalf("POST = %d, want 405", rec.Code)
	}
}
