package recorder

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepod/internal/obs"
)

// segmentFormat versions the on-disk shape; a reader refuses segments it
// does not understand instead of silently misparsing them.
const segmentFormat = "tte-flight/1"

// Header is the first line of every segment file: the format version, when
// the segment opened, and the serving context it was recorded under.
type Header struct {
	Format    string            `json:"format"`
	StartedNs int64             `json:"started_unix_ns"`
	Meta      map[string]string `json:"meta,omitempty"`
}

// SegmentInfo describes one on-disk segment file.
type SegmentInfo struct {
	Name      string `json:"name"`
	Bytes     int64  `json:"bytes"`
	ModUnixNs int64  `json:"mod_unix_ns"`
}

// segmentWriter appends captured events to JSONL segment files off the
// serve path: RecordServe hands events to a bounded channel and a single
// writer goroutine does the file I/O, rotating after perSegment events and
// deleting the oldest files beyond maxSegments. A full channel sheds the
// event (counted) rather than ever blocking a request.
type segmentWriter struct {
	dir         string
	perSegment  int
	maxSegments int
	meta        map[string]string
	now         func() time.Time

	ch       chan Event
	accepted atomic.Uint64
	done     chan struct{}
	finished chan struct{}
	once     sync.Once

	// mu guards the open file against concurrent sync()/close flushes;
	// only the writer goroutine rotates.
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	inSeg   int
	nextIdx int

	written *obs.Counter
	dropped *obs.Counter
	rotated *obs.Counter
}

func newSegmentWriter(dir string, perSegment, maxSegments int, meta map[string]string, reg *obs.Registry, now func() time.Time) (*segmentWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recorder: segment dir: %w", err)
	}
	reg.Help("tte_recorder_disk_written_total", "Wide events appended to segment files.")
	reg.Help("tte_recorder_disk_dropped_total", "Captured events shed because the segment writer's queue was full or a write failed.")
	reg.Help("tte_recorder_segments_total", "Segment files opened since start.")
	w := &segmentWriter{
		dir:         dir,
		perSegment:  perSegment,
		maxSegments: maxSegments,
		meta:        meta,
		now:         now,
		ch:          make(chan Event, 1024),
		done:        make(chan struct{}),
		finished:    make(chan struct{}),
		written:     reg.Counter("tte_recorder_disk_written_total"),
		dropped:     reg.Counter("tte_recorder_disk_dropped_total"),
		rotated:     reg.Counter("tte_recorder_segments_total"),
	}
	// Continue numbering after whatever a previous process left behind, so
	// a restart never overwrites surviving segments.
	for _, si := range w.list() {
		var idx int
		if _, err := fmt.Sscanf(si.Name, "seg-%06d.jsonl", &idx); err == nil && idx >= w.nextIdx {
			w.nextIdx = idx + 1
		}
	}
	go w.run()
	return w, nil
}

// offer hands an event to the writer goroutine without ever blocking the
// serve path: a full queue sheds the event and counts the loss.
func (w *segmentWriter) offer(e Event) {
	select {
	case w.ch <- e:
		w.accepted.Add(1)
	default:
		w.dropped.Inc()
	}
}

func (w *segmentWriter) run() {
	for {
		select {
		case e := <-w.ch:
			w.write(e)
			if len(w.ch) == 0 {
				// Queue drained: flush so tailing readers see the events
				// without waiting for rotation.
				w.flush()
			}
		case <-w.done:
			for {
				select {
				case e := <-w.ch:
					w.write(e)
				default:
					w.mu.Lock()
					if w.bw != nil {
						_ = w.bw.Flush()
						_ = w.f.Close()
						w.bw, w.f = nil, nil
					}
					w.mu.Unlock()
					close(w.finished)
					return
				}
			}
		}
	}
}

func (w *segmentWriter) write(e Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil || w.inSeg >= w.perSegment {
		if err := w.rotateLocked(); err != nil {
			w.dropped.Inc()
			return
		}
	}
	b, err := json.Marshal(e)
	if err != nil {
		w.dropped.Inc()
		return
	}
	b = append(b, '\n')
	if _, err := w.bw.Write(b); err != nil {
		w.dropped.Inc()
		return
	}
	w.inSeg++
	w.written.Inc()
}

// rotateLocked closes the live segment, enforces retention, and opens the
// next one with its header line.
func (w *segmentWriter) rotateLocked() error {
	if w.bw != nil {
		_ = w.bw.Flush()
		_ = w.f.Close()
		w.bw, w.f = nil, nil
	}
	// Retention: the new segment must fit inside the budget, so delete
	// oldest files until maxSegments-1 remain.
	segs := w.list()
	for len(segs) >= w.maxSegments && len(segs) > 0 {
		_ = os.Remove(filepath.Join(w.dir, segs[0].Name))
		segs = segs[1:]
	}
	name := fmt.Sprintf("seg-%06d.jsonl", w.nextIdx)
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.nextIdx++
	w.f = f
	w.bw = bufio.NewWriter(f)
	hdr, err := json.Marshal(Header{
		Format:    segmentFormat,
		StartedNs: w.now().UnixNano(),
		Meta:      w.meta,
	})
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	w.inSeg = 0
	w.rotated.Inc()
	return nil
}

func (w *segmentWriter) flush() {
	w.mu.Lock()
	if w.bw != nil {
		_ = w.bw.Flush()
	}
	w.mu.Unlock()
}

// sync waits (bounded) for every accepted event to be written, then
// flushes, so a reader opening the files sees all captures offered before
// the call.
func (w *segmentWriter) sync() {
	deadline := time.Now().Add(2 * time.Second)
	for w.written.Value()+w.dropped.Value() < w.accepted.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	w.flush()
}

func (w *segmentWriter) close() {
	w.once.Do(func() { close(w.done) })
	<-w.finished
}

// list returns the directory's segment files sorted by name (oldest
// first — names are zero-padded indices, so lexical order is creation
// order).
func (w *segmentWriter) list() []SegmentInfo {
	return listSegments(w.dir)
}

func listSegments(dir string) []SegmentInfo {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []SegmentInfo
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, SegmentInfo{Name: name, Bytes: info.Size(), ModUnixNs: info.ModTime().UnixNano()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReadSegment parses one segment file: the header line, then one event
// per line. Blank trailing lines are tolerated; an unknown format is an
// error, a torn final line (crashed writer) is tolerated and dropped.
func ReadSegment(path string) (Header, []Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		return Header{}, nil, fmt.Errorf("recorder: %s: empty segment", filepath.Base(path))
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Header{}, nil, fmt.Errorf("recorder: %s: header: %w", filepath.Base(path), err)
	}
	if hdr.Format != segmentFormat {
		return Header{}, nil, fmt.Errorf("recorder: %s: format %q, want %q", filepath.Base(path), hdr.Format, segmentFormat)
	}
	var events []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn tail from a crashed writer loses that one event, not
			// the segment.
			break
		}
		events = append(events, e)
	}
	return hdr, events, sc.Err()
}

// ReadDir loads every segment in a directory oldest-first and concatenates
// their events in capture order.
func ReadDir(dir string) ([]Header, []Event, error) {
	segs := listSegments(dir)
	if len(segs) == 0 {
		return nil, nil, fmt.Errorf("recorder: no segments in %s", dir)
	}
	var headers []Header
	var events []Event
	for _, si := range segs {
		hdr, evs, err := ReadSegment(filepath.Join(dir, si.Name))
		if err != nil {
			return nil, nil, err
		}
		headers = append(headers, hdr)
		events = append(events, evs...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return headers, events, nil
}
