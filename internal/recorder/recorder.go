// Package recorder is the serving tier's flight recorder: one structured
// "wide event" per served estimate, carrying every input that determined
// the answer — OD coordinates and their grid cells, time slot, model
// snapshot and generation, traffic epoch and live/fallback flag, cache
// hit, queue wait, latency, estimate and error class — so a bad answer
// observed in production can be reproduced and re-scored offline.
//
// The paper's core claim makes this necessary: historical trajectories
// make estimates data-dependent, so the same OD query yields different
// answers as the model generation, time slot and live-traffic epoch
// change. A metric tells you the error rate moved; a wide event tells you
// exactly which (input, model, regime) tuple produced the bad answer, and
// the replay harness (internal/replay, cmd/ttereplay) re-executes it.
//
// Capture is policy-driven, mirroring the trace store's tail sampling:
//
//   - 100% of errors and shed requests (the events an investigation needs),
//   - the slowest-N requests per rotating window (the tail-latency set),
//   - a deterministic hash sample of the rest.
//
// Captured events land in a sharded, lock-striped, bounded in-memory ring
// (served at GET /debug/recorder) and, when a directory is configured, in
// append-only JSONL segment files with rotation and bounded retention so
// captures survive restarts. The engine-side hook is a single nil check
// when disabled (infer's TestFlightDisabledOverhead).
//
// Metrics:
//
//	tte_recorder_events_seen_total    every Do outcome offered for capture
//	tte_recorder_captured_total       captures, by reason (error|slow|sample)
//	tte_recorder_overwritten_total    ring slots overwritten before being read
//	tte_recorder_disk_dropped_total   captured events the segment writer shed
//	tte_recorder_segments_total       segment files opened since start
//	tte_recorder_events               live ring occupancy
package recorder

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepod/internal/geo"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
)

// Event is one wide record: a served estimate with every input that
// determined it. Events are immutable once captured; the JSON shape is the
// segment-file format and the /debug/recorder payload.
type Event struct {
	// Seq orders events process-wide (monotonic, starts at 1).
	Seq uint64 `json:"seq"`
	// TraceID joins the event to its /debug/traces record and log lines.
	TraceID string `json:"trace_id,omitempty"`
	// AtUnixNs is the capture wall-clock time.
	AtUnixNs int64 `json:"at_unix_ns"`

	// The request: raw coordinates plus the same quantizations the model
	// and estimate cache use (-1 when unquantizable: non-finite input or
	// no quantizer configured).
	Origin     geo.Point `json:"origin"`
	Dest       geo.Point `json:"dest"`
	DepartSec  float64   `json:"depart_sec"`
	OriginCell int       `json:"origin_cell"`
	DestCell   int       `json:"dest_cell"`
	Slot       int       `json:"slot"`

	// The model: which checkpoint answered, under which generation.
	Snapshot   string `json:"snapshot,omitempty"`
	Generation uint64 `json:"generation"`

	// The traffic regime: the epoch the answer was computed under and
	// whether live speeds were actually merged (false = prior fallback or
	// cache hit).
	TrafficEpoch uint64 `json:"traffic_epoch"`
	TrafficLive  bool   `json:"traffic_live,omitempty"`

	// The serving path.
	Cached      bool    `json:"cached,omitempty"`
	QueueWaitNs int64   `json:"queue_wait_ns,omitempty"`
	LatencyNs   int64   `json:"latency_ns"`
	EstimateSec float64 `json:"estimate_sec"`
	// Err is the error class ("" = served): invalid_input, overloaded,
	// queue_timeout, match, canceled, closed, or error.
	Err string `json:"err,omitempty"`
	// Shed marks admission-control rejections (overloaded, queue_timeout).
	Shed bool `json:"shed,omitempty"`
	// Reason is why the event was captured: error, slow or sample.
	Reason string `json:"reason"`
}

// Quantizer maps a point onto the stable coarse spatial cell recorded with
// each event. Implemented by roadnet.EdgeIndex — the same quantizer the
// estimate cache and quality monitor use, so recorded cells join against
// their keys.
type Quantizer interface {
	CellIndex(p geo.Point) int
}

// Config assembles a Recorder; every field defaults.
type Config struct {
	// Capacity is the total in-memory ring size in events, split across
	// shards (default 4096). Negative keeps no events in memory — segment
	// files, when configured, still capture.
	Capacity int
	// Shards is the lock-stripe count (default 8, rounded up to a power
	// of two).
	Shards int
	// SlowestN requests per Window are always captured regardless of the
	// sample rate (default 16; negative disables slow retention).
	SlowestN int
	// Window is the rotation period for the slowest-N set (default 10s).
	Window time.Duration
	// SampleRate is the probability a normal (non-error, non-slow) event
	// is captured. Taken literally: 0 keeps none, 1 keeps all. Sampling is
	// a deterministic hash of the event sequence number, so a given
	// request stream captures the same events on every run.
	SampleRate float64

	// Cells quantizes origin/destination for the recorded grid cells
	// (optional; cells are -1 without it).
	Cells Quantizer
	// Slotter quantizes departure times for the recorded slot (optional;
	// slot is -1 without it).
	Slotter *timeslot.Slotter

	// Dir, when set, mirrors captured events to append-only JSONL segment
	// files <Dir>/seg-NNNNNN.jsonl with rotation and retention.
	Dir string
	// SegmentEvents rotates the live segment after this many events
	// (default 4096).
	SegmentEvents int
	// MaxSegments bounds retention: opening a segment beyond this count
	// deletes the oldest file (default 8).
	MaxSegments int
	// Meta is stamped into every segment header (city, model path, ...),
	// so a segment names the serving context it was recorded under.
	Meta map[string]string

	// Registry receives tte_recorder_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// shard is one lock stripe of the ring. Shards are chosen by sequence
// number, so concurrent captures contend on different locks.
type shard struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total int
}

// Recorder captures wide events under the tail-sampling policy. Construct
// with New; it implements infer.FlightRecorder. Close flushes and closes
// the segment writer; the in-memory ring stays readable.
type Recorder struct {
	cfg    Config
	now    func() time.Time
	seq    atomic.Uint64
	shards []*shard
	mask   uint64
	disk   *segmentWriter // nil without Config.Dir

	// Slow-window tracker, shared across shards like the trace store's:
	// "slowest this window" must mean slowest among all traffic.
	slowMu   sync.Mutex
	winStart time.Time
	winSlow  []time.Duration

	seen        *obs.Counter
	keptError   *obs.Counter
	keptSlow    *obs.Counter
	keptSample  *obs.Counter
	overwritten *obs.Counter
	entries     *obs.Gauge
}

// New validates cfg and builds the recorder, opening the segment directory
// eagerly when configured so a bad path fails at startup.
func New(cfg Config) (*Recorder, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = 4096
	}
	if cfg.Capacity < 0 {
		cfg.Capacity = 0
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	if cfg.SlowestN == 0 {
		cfg.SlowestN = 16
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	if cfg.SegmentEvents <= 0 {
		cfg.SegmentEvents = 4096
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_recorder_events_seen_total", "Serve outcomes offered to the flight recorder.")
	reg.Help("tte_recorder_captured_total", "Wide events captured, by reason.")
	reg.Help("tte_recorder_overwritten_total", "Ring slots overwritten by newer captures.")
	reg.Help("tte_recorder_events", "Wide events live in the in-memory ring.")
	r := &Recorder{
		cfg:         cfg,
		now:         cfg.Now,
		mask:        uint64(shards - 1),
		seen:        reg.Counter("tte_recorder_events_seen_total"),
		keptError:   reg.Counter("tte_recorder_captured_total", "reason", "error"),
		keptSlow:    reg.Counter("tte_recorder_captured_total", "reason", "slow"),
		keptSample:  reg.Counter("tte_recorder_captured_total", "reason", "sample"),
		overwritten: reg.Counter("tte_recorder_overwritten_total"),
		entries:     reg.Gauge("tte_recorder_events"),
	}
	per := cfg.Capacity / shards
	if cfg.Capacity > 0 && per == 0 {
		per = 1
	}
	r.shards = make([]*shard, shards)
	for i := range r.shards {
		r.shards[i] = &shard{ring: make([]Event, per)}
	}
	if cfg.Dir != "" {
		w, err := newSegmentWriter(cfg.Dir, cfg.SegmentEvents, cfg.MaxSegments, cfg.Meta, reg, cfg.Now)
		if err != nil {
			return nil, err
		}
		r.disk = w
	}
	return r, nil
}

// ClassifyError maps an engine error onto the wide-event error class
// ("" for nil). Shared with the replay harness so a re-executed request's
// outcome is classified exactly the way the recording classified it.
func ClassifyError(err error) (class string, shed bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, infer.ErrOverloaded):
		return "overloaded", true
	case errors.Is(err, infer.ErrQueueTimeout):
		return "queue_timeout", true
	case errors.Is(err, infer.ErrInvalidInput):
		return "invalid_input", false
	case errors.Is(err, infer.ErrClosed):
		return "closed", false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled", false
	default:
		var matchErr *infer.MatchError
		if errors.As(err, &matchErr) {
			return "match", false
		}
		return "error", false
	}
}

// splitmix64 is the deterministic sampling hash: cheap, stateless, and
// uniform over sequence numbers, so "sample 1%" keeps a stable pseudo-
// random 1% of the stream on every identical run.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampleThreshold converts a rate in [0,1] to a uint64 comparison bound.
func sampleThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return math.MaxUint64
	}
	return uint64(rate * float64(math.MaxUint64))
}

// RecordServe captures one finished request under the policy. It is the
// infer.FlightRecorder implementation and must stay cheap: a policy
// decision for every event, quantization and storage only for kept ones.
func (r *Recorder) RecordServe(ctx context.Context, ev infer.ServeEvent) {
	r.seen.Inc()
	seq := r.seq.Add(1)
	class, shed := ClassifyError(ev.Err)

	var reason string
	switch {
	case class != "":
		// Every error and shed request is captured: these are exactly the
		// events an incident investigation replays.
		reason = "error"
		r.keptError.Inc()
	case r.slow(ev.Latency):
		reason = "slow"
		r.keptSlow.Inc()
	case sampleThreshold(r.cfg.SampleRate) != 0 && splitmix64(seq) <= sampleThreshold(r.cfg.SampleRate):
		reason = "sample"
		r.keptSample.Inc()
	default:
		return
	}

	e := Event{
		Seq:          seq,
		TraceID:      string(obs.TraceIDFrom(ctx)),
		AtUnixNs:     r.now().UnixNano(),
		Origin:       ev.OD.Origin,
		Dest:         ev.OD.Dest,
		DepartSec:    ev.OD.DepartSec,
		OriginCell:   r.cell(ev.OD.Origin),
		DestCell:     r.cell(ev.OD.Dest),
		Slot:         r.slot(ev.OD.DepartSec),
		Snapshot:     ev.SnapshotID,
		Generation:   ev.Generation,
		TrafficEpoch: ev.TrafficEpoch,
		TrafficLive:  ev.TrafficLive,
		Cached:       ev.Cached,
		QueueWaitNs:  ev.QueueWait.Nanoseconds(),
		LatencyNs:    ev.Latency.Nanoseconds(),
		EstimateSec:  ev.Seconds,
		Err:          class,
		Shed:         shed,
		Reason:       reason,
	}

	sh := r.shards[seq&r.mask]
	sh.mu.Lock()
	if len(sh.ring) > 0 {
		if sh.total >= len(sh.ring) {
			r.overwritten.Inc()
		} else {
			r.entries.Add(1)
		}
		sh.ring[sh.next] = e
		sh.next = (sh.next + 1) % len(sh.ring)
		sh.total++
	}
	sh.mu.Unlock()

	if r.disk != nil {
		r.disk.offer(e)
	}
}

// slow reports whether d ranks among the slowest-N latencies in the
// current window, rotating the window as needed (same policy as
// obs.TraceStore.slowLocked).
func (r *Recorder) slow(d time.Duration) bool {
	if r.cfg.SlowestN <= 0 {
		return false
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	now := r.now()
	if r.winStart.IsZero() || now.Sub(r.winStart) >= r.cfg.Window {
		r.winStart = now
		r.winSlow = r.winSlow[:0]
	}
	i := sort.Search(len(r.winSlow), func(i int) bool { return r.winSlow[i] >= d })
	if len(r.winSlow) < r.cfg.SlowestN {
		r.winSlow = append(r.winSlow, 0)
		copy(r.winSlow[i+1:], r.winSlow[i:])
		r.winSlow[i] = d
		return true
	}
	if i == 0 {
		return false
	}
	copy(r.winSlow[:i-1], r.winSlow[1:i])
	r.winSlow[i-1] = d
	return true
}

func (r *Recorder) cell(p geo.Point) int {
	if r.cfg.Cells == nil ||
		math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return -1
	}
	return r.cfg.Cells.CellIndex(p)
}

func (r *Recorder) slot(departSec float64) int {
	if r.cfg.Slotter == nil || math.IsNaN(departSec) || math.IsInf(departSec, 0) || departSec < 0 {
		return -1
	}
	return r.cfg.Slotter.Slot(departSec)
}

// Filter selects ring events; zero values mean "no constraint". Epoch uses
// a presence flag because 0 is a real epoch (no live traffic).
type Filter struct {
	Generation uint64
	Epoch      uint64
	HasEpoch   bool
	ErrorsOnly bool
	MinDur     time.Duration
	Limit      int
}

func (f Filter) match(e *Event) bool {
	if f.Generation != 0 && e.Generation != f.Generation {
		return false
	}
	if f.HasEpoch && e.TrafficEpoch != f.Epoch {
		return false
	}
	if f.ErrorsOnly && e.Err == "" {
		return false
	}
	if f.MinDur > 0 && e.LatencyNs < f.MinDur.Nanoseconds() {
		return false
	}
	return true
}

// Events returns captured events newest-first (by sequence), filtered.
func (r *Recorder) Events(f Filter) []Event {
	var out []Event
	for _, sh := range r.shards {
		sh.mu.Lock()
		n := sh.total
		if n > len(sh.ring) {
			n = len(sh.ring)
		}
		for k := 0; k < n; k++ {
			e := sh.ring[((sh.next-1-k)%len(sh.ring)+len(sh.ring))%len(sh.ring)]
			if f.match(&e) {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Seen           uint64 `json:"seen"`
	CapturedError  uint64 `json:"captured_error"`
	CapturedSlow   uint64 `json:"captured_slow"`
	CapturedSample uint64 `json:"captured_sample"`
	Overwritten    uint64 `json:"overwritten"`
	RingEvents     int    `json:"ring_events"`
	DiskDropped    uint64 `json:"disk_dropped"`
	DiskWritten    uint64 `json:"disk_written"`
}

// Captured is the total events kept by the policy.
func (s Stats) Captured() uint64 { return s.CapturedError + s.CapturedSlow + s.CapturedSample }

// Stats reads the recorder's counters.
func (r *Recorder) Stats() Stats {
	s := Stats{
		Seen:           r.seen.Value(),
		CapturedError:  r.keptError.Value(),
		CapturedSlow:   r.keptSlow.Value(),
		CapturedSample: r.keptSample.Value(),
		Overwritten:    r.overwritten.Value(),
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		n := sh.total
		if n > len(sh.ring) {
			n = len(sh.ring)
		}
		s.RingEvents += n
		sh.mu.Unlock()
	}
	if r.disk != nil {
		s.DiskDropped = r.disk.dropped.Value()
		s.DiskWritten = r.disk.written.Value()
	}
	return s
}

// Segments lists the on-disk segment files, oldest first (nil without a
// configured directory).
func (r *Recorder) Segments() []SegmentInfo {
	if r.disk == nil {
		return nil
	}
	return r.disk.list()
}

// Sync flushes the live segment's buffer to disk so readers (downloads,
// replay) see every captured event written so far.
func (r *Recorder) Sync() {
	if r.disk != nil {
		r.disk.sync()
	}
}

// Close stops the segment writer, flushing and closing the live segment.
// The in-memory ring stays readable; further RecordServe calls keep
// feeding the ring but no longer reach disk.
func (r *Recorder) Close() {
	if r.disk != nil {
		r.disk.close()
	}
}
