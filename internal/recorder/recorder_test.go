package recorder

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"deepod/internal/geo"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// newTest builds a recorder over a fresh registry so metric assertions
// never see another test's counts.
func newTest(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func servedEvent(sec float64) infer.ServeEvent {
	return infer.ServeEvent{
		OD: traj.ODInput{
			Origin:    geo.Point{X: 100, Y: 100},
			Dest:      geo.Point{X: 900, Y: 900},
			DepartSec: 600,
		},
		Seconds:    sec,
		SnapshotID: "m1",
		Generation: 1,
		Latency:    2 * time.Millisecond,
	}
}

func errEvent(err error) infer.ServeEvent {
	ev := servedEvent(0)
	ev.Seconds = 0
	ev.Err = err
	return ev
}

// TestPolicyErrorsAlwaysCaptured: every error and shed outcome must land in
// the ring even at sample rate 0 — those are the events an investigation
// replays, and losing any of them defeats the recorder.
func TestPolicyErrorsAlwaysCaptured(t *testing.T) {
	r := newTest(t, Config{SampleRate: 0, SlowestN: -1})
	cases := []struct {
		err   error
		class string
		shed  bool
	}{
		{infer.ErrOverloaded, "overloaded", true},
		{infer.ErrQueueTimeout, "queue_timeout", true},
		{infer.ErrInvalidInput, "invalid_input", false},
		{infer.ErrClosed, "closed", false},
		{context.Canceled, "canceled", false},
		{&infer.MatchError{Err: errors.New("no edge")}, "match", false},
		{errors.New("surprise"), "error", false},
	}
	for _, c := range cases {
		r.RecordServe(context.Background(), errEvent(c.err))
	}
	// A clean request at sample rate 0 with slow retention off: dropped.
	r.RecordServe(context.Background(), servedEvent(42))

	evs := r.Events(Filter{})
	if len(evs) != len(cases) {
		t.Fatalf("captured %d events, want the %d errors", len(evs), len(cases))
	}
	// Events come newest-first; walk the cases in reverse.
	for i, c := range cases {
		e := evs[len(evs)-1-i]
		if e.Err != c.class || e.Shed != c.shed || e.Reason != "error" {
			t.Fatalf("%v captured as %+v, want class %q shed %v", c.err, e, c.class, c.shed)
		}
	}
	if s := r.Stats(); s.CapturedError != uint64(len(cases)) || s.CapturedSample != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestPolicySampleRateZeroAndOne: the probabilistic tier taken literally at
// its extremes — rate 0 keeps no clean events, rate 1 keeps every one.
func TestPolicySampleRateZeroAndOne(t *testing.T) {
	r0 := newTest(t, Config{SampleRate: 0, SlowestN: -1})
	r1 := newTest(t, Config{SampleRate: 1, SlowestN: -1})
	const n = 200
	for i := 0; i < n; i++ {
		r0.RecordServe(context.Background(), servedEvent(float64(i)))
		r1.RecordServe(context.Background(), servedEvent(float64(i)))
	}
	if got := len(r0.Events(Filter{})); got != 0 {
		t.Fatalf("sample rate 0 captured %d events, want 0", got)
	}
	if got := len(r1.Events(Filter{})); got != n {
		t.Fatalf("sample rate 1 captured %d events, want all %d", got, n)
	}
	if s := r1.Stats(); s.CapturedSample != n || s.Seen != n {
		t.Fatalf("rate-1 stats = %+v", s)
	}
}

// TestPolicySampleDeterministic: sampling hashes the sequence number, so
// two recorders fed the same stream capture the same subset.
func TestPolicySampleDeterministic(t *testing.T) {
	a := newTest(t, Config{SampleRate: 0.25, SlowestN: -1})
	b := newTest(t, Config{SampleRate: 0.25, SlowestN: -1})
	const n = 400
	for i := 0; i < n; i++ {
		a.RecordServe(context.Background(), servedEvent(float64(i)))
		b.RecordServe(context.Background(), servedEvent(float64(i)))
	}
	ae, be := a.Events(Filter{}), b.Events(Filter{})
	if len(ae) == 0 || len(ae) == n {
		t.Fatalf("rate 0.25 captured %d of %d — policy not sampling", len(ae), n)
	}
	if len(ae) != len(be) {
		t.Fatalf("identical streams captured %d vs %d events", len(ae), len(be))
	}
	for i := range ae {
		if ae[i].Seq != be[i].Seq {
			t.Fatalf("capture #%d: seq %d vs %d — sampling not deterministic", i, ae[i].Seq, be[i].Seq)
		}
	}
}

// TestPolicySlowestAlwaysCaptured: the tail-latency tier keeps the window's
// slowest requests even when the sample tier would drop them.
func TestPolicySlowestAlwaysCaptured(t *testing.T) {
	r := newTest(t, Config{SampleRate: 0, SlowestN: 2, Window: time.Hour})
	lat := []time.Duration{ // ms
		10 * time.Millisecond, // fills slot 1
		20 * time.Millisecond, // fills slot 2
		1 * time.Millisecond,  // below both: dropped
		30 * time.Millisecond, // evicts 10ms
	}
	for i, d := range lat {
		ev := servedEvent(float64(i))
		ev.Latency = d
		r.RecordServe(context.Background(), ev)
	}
	evs := r.Events(Filter{})
	if len(evs) != 3 {
		t.Fatalf("captured %d events, want 3 (two window fills + one eviction)", len(evs))
	}
	for _, e := range evs {
		if e.Reason != "slow" {
			t.Fatalf("event %+v captured as %q, want slow", e, e.Reason)
		}
	}
	if len(r.Events(Filter{MinDur: 25 * time.Millisecond})) != 1 {
		t.Fatal("minDur filter did not isolate the slowest event")
	}
}

// TestZeroCapacityRing: a negative capacity keeps nothing in memory but
// the policy counters (and disk mirroring, when configured) still run —
// the recorder must not panic or divide by zero.
func TestZeroCapacityRing(t *testing.T) {
	r := newTest(t, Config{Capacity: -1, SampleRate: 1})
	for i := 0; i < 50; i++ {
		r.RecordServe(context.Background(), servedEvent(float64(i)))
	}
	r.RecordServe(context.Background(), errEvent(infer.ErrOverloaded))
	if evs := r.Events(Filter{}); len(evs) != 0 {
		t.Fatalf("zero-capacity ring holds %d events", len(evs))
	}
	s := r.Stats()
	if s.Seen != 51 || s.Captured() != 51 || s.RingEvents != 0 {
		t.Fatalf("stats = %+v, want 51 seen and captured, 0 in ring", s)
	}
}

// TestRingBoundedOverwrite: the ring never grows past capacity; old events
// are overwritten (and counted) rather than accumulated.
func TestRingBoundedOverwrite(t *testing.T) {
	r := newTest(t, Config{Capacity: 8, Shards: 2, SampleRate: 1, SlowestN: -1})
	const n = 100
	for i := 0; i < n; i++ {
		r.RecordServe(context.Background(), servedEvent(float64(i)))
	}
	evs := r.Events(Filter{})
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want capacity 8", len(evs))
	}
	// Newest-first: the head must be the last capture.
	if evs[0].Seq != n {
		t.Fatalf("head seq = %d, want %d", evs[0].Seq, n)
	}
	s := r.Stats()
	if s.Overwritten != n-8 || s.RingEvents != 8 {
		t.Fatalf("stats = %+v, want %d overwritten", s, n-8)
	}
}

// TestErrorsCapturedUnderConcurrentLoad hammers the recorder from many
// goroutines mixing errors into sampled traffic and asserts not one error
// was lost. Run with -race this also proves the lock striping is sound.
func TestErrorsCapturedUnderConcurrentLoad(t *testing.T) {
	r := newTest(t, Config{Capacity: 4096, SampleRate: 0.1, SlowestN: 4, Window: 50 * time.Millisecond})
	const (
		workers = 8
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if i%5 == 0 {
					r.RecordServe(context.Background(), errEvent(infer.ErrOverloaded))
				} else {
					r.RecordServe(context.Background(), servedEvent(float64(i)))
				}
			}
		}(w)
	}
	wg.Wait()
	wantErrs := workers * perW / 5
	var gotErrs int
	for _, e := range r.Events(Filter{ErrorsOnly: true}) {
		if e.Err == "overloaded" {
			gotErrs++
		}
	}
	if gotErrs != wantErrs {
		t.Fatalf("ring holds %d error events, want all %d", gotErrs, wantErrs)
	}
	s := r.Stats()
	if s.Seen != workers*perW || s.CapturedError != uint64(wantErrs) {
		t.Fatalf("stats = %+v", s)
	}
}

// TestEventQuantization: captured events carry the cache's grid cells and
// time slot; non-finite or negative inputs quantize to -1, never panic.
func TestEventQuantization(t *testing.T) {
	r := newTest(t, Config{SampleRate: 1, Cells: cellsStub{}, Slotter: slotterForTest()})
	ev := servedEvent(7)
	r.RecordServe(context.Background(), ev)
	bad := errEvent(infer.ErrInvalidInput)
	bad.OD.Origin.X = nan()
	bad.OD.DepartSec = -5
	r.RecordServe(context.Background(), bad)

	evs := r.Events(Filter{})
	good, broken := evs[1], evs[0]
	if good.OriginCell != 1 || good.DestCell != 1 || good.Slot != 2 {
		t.Fatalf("quantized event = %+v, want cells 1/1 slot 2", good)
	}
	if broken.OriginCell != -1 || broken.Slot != -1 {
		t.Fatalf("unquantizable event = %+v, want -1 cells and slot", broken)
	}
	if broken.DestCell != 1 {
		t.Fatalf("finite dest must still quantize: %+v", broken)
	}
}

// TestEventsFilters: generation, epoch (including epoch 0), and limit.
func TestEventsFilters(t *testing.T) {
	r := newTest(t, Config{SampleRate: 1})
	for i := 0; i < 6; i++ {
		ev := servedEvent(float64(i))
		ev.Generation = uint64(1 + i%2)
		if i%3 == 0 {
			ev.TrafficEpoch = 9
		}
		r.RecordServe(context.Background(), ev)
	}
	if got := len(r.Events(Filter{Generation: 2})); got != 3 {
		t.Fatalf("generation filter kept %d, want 3", got)
	}
	if got := len(r.Events(Filter{Epoch: 9, HasEpoch: true})); got != 2 {
		t.Fatalf("epoch=9 filter kept %d, want 2", got)
	}
	if got := len(r.Events(Filter{Epoch: 0, HasEpoch: true})); got != 4 {
		t.Fatalf("epoch=0 filter kept %d, want 4", got)
	}
	if got := len(r.Events(Filter{Limit: 2})); got != 2 {
		t.Fatal("limit filter ignored")
	}
}

// cellsStub quantizes every finite point to cell 1.
type cellsStub struct{}

func (cellsStub) CellIndex(geo.Point) int { return 1 }

func nan() float64 {
	var zero float64
	return zero / zero
}

// slotterForTest slots at 5-minute granularity, so DepartSec 600 → slot 2.
func slotterForTest() *timeslot.Slotter { return timeslot.MustNew(5 * time.Minute) }
