package experiments

import (
	"fmt"
	"strings"

	"deepod/internal/core"
	"deepod/internal/metrics"
)

// EmbedStudyResult is the §5 embedding-method comparison: the paper tried
// DeepWalk, LINE and node2vec to initialize its embedding matrices and kept
// node2vec. This experiment trains DeepOD once per method and reports the
// resulting test errors.
type EmbedStudyResult struct {
	Scale   string
	City    string
	Methods []string
	MAPE    map[string]float64
	MAE     map[string]float64
}

// RunEmbedStudy evaluates each pre-training method on the scale's first
// city.
func RunEmbedStudy(sc Scale) (*EmbedStudyResult, error) {
	w, err := BuildWorld(sc.CityList()[0], sc)
	if err != nil {
		return nil, err
	}
	res := &EmbedStudyResult{
		Scale: sc.Name, City: w.City,
		Methods: []string{"node2vec", "deepwalk", "line"},
		MAPE:    map[string]float64{}, MAE: map[string]float64{},
	}
	for _, method := range res.Methods {
		cfg := sc.Cfg
		cfg.EmbedMethod = method
		m, err := core.New(cfg, w.Graph)
		if err != nil {
			return nil, err
		}
		if _, err := m.Train(w.Split.Train, w.Split.Valid, core.TrainOptions{}); err != nil {
			return nil, fmt.Errorf("experiments: embed study %s: %w", method, err)
		}
		actual := make([]float64, len(w.Split.Test))
		pred := make([]float64, len(w.Split.Test))
		for i := range w.Split.Test {
			actual[i] = w.Split.Test[i].TravelSec
			pred[i] = m.Estimate(&w.Split.Test[i].Matched)
		}
		res.MAPE[method] = metrics.MAPE(actual, pred)
		res.MAE[method] = metrics.MAE(actual, pred)
	}
	return res, nil
}

// String prints the comparison.
func (r *EmbedStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Embedding-method study (§5; %s, scale=%s)\n", r.City, r.Scale)
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "  %-10s MAE=%.2fs MAPE=%.2f%%\n", m, r.MAE[m], r.MAPE[m]*100)
	}
	return b.String()
}
