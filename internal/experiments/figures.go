package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"deepod/internal/core"
	"deepod/internal/metrics"
	"deepod/internal/plot"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/tsne"
)

// Figure5aResult shows the weekly periodicity of simulated traffic flow on
// a few roads (a sanity check that the simulator exhibits the structure
// Figure 5a documents for real Chengdu roads).
type Figure5aResult struct {
	City  string
	Roads []roadnet.EdgeID
	// Flow[r][d] is a congestion-derived flow proxy of road r on day d.
	Flow [][]float64
	Days int
}

// RunFigure5a samples four roads' average congestion per day.
func RunFigure5a(sc Scale) (*Figure5aResult, error) {
	w, err := BuildWorld(sc.CityList()[0], sc)
	if err != nil {
		return nil, err
	}
	res := &Figure5aResult{City: w.City, Days: sc.HorizonDays}
	g := w.Graph
	step := g.NumEdges() / 4
	for i := 0; i < 4; i++ {
		res.Roads = append(res.Roads, roadnet.EdgeID(i*step))
	}
	for _, e := range res.Roads {
		days := make([]float64, sc.HorizonDays)
		for d := 0; d < sc.HorizonDays; d++ {
			// Flow proxy: mean congestion drop over the day (higher drop =
			// more traffic).
			var s float64
			const samples = 24
			for h := 0; h < samples; h++ {
				sec := float64(d)*timeslot.SecondsPerDay + float64(h)*3600
				s += 1 - w.Traffic.Congestion(e, sec)
			}
			days[d] = s / samples
		}
		res.Flow = append(res.Flow, days)
	}
	return res, nil
}

// String prints per-road daily series.
func (r *Figure5aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5a: Weekly periodicity of traffic flow proxy (%s)\n", r.City)
	for i, e := range r.Roads {
		fmt.Fprintf(&b, "  road%d (edge %d):", i+1, e)
		for _, v := range r.Flow[i] {
			fmt.Fprintf(&b, " %.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure8Result reproduces Figure 8: validation MAPE and MARE for each
// hyper-parameter swept over a size grid.
type Figure8Result struct {
	Scale string
	City  string
	// Sizes is the sweep grid (the paper uses 32..256; scaled runs use a
	// proportional grid).
	Sizes []int
	// MAPE/MARE[param][i] is the validation error with param set to
	// Sizes[i].
	Params []string
	MAPE   map[string][]float64
	MARE   map[string][]float64
}

// Figure8Params lists the hyper-parameters the paper sweeps.
var Figure8Params = []string{"ds", "dt", "d1m", "d2m", "d3m", "d4m_d8m", "d5m", "d6m", "d7m", "d9m", "dh", "dtraf"}

// RunFigure8 sweeps each hyper-parameter independently (others fixed at the
// scale's defaults) and records validation errors on the first city.
func RunFigure8(sc Scale, sizes []int) (*Figure8Result, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32}
	}
	w, err := BuildWorld(sc.CityList()[0], sc)
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{
		Scale: sc.Name, City: w.City, Sizes: sizes, Params: Figure8Params,
		MAPE: map[string][]float64{}, MARE: map[string][]float64{},
	}
	apply := func(cfg *core.Config, param string, v int) {
		switch param {
		case "ds":
			cfg.Ds = v
		case "dt":
			cfg.Dt = v
		case "d1m":
			cfg.D1m = v
		case "d2m":
			cfg.D2m = v
		case "d3m":
			cfg.D3m = v
		case "d4m_d8m":
			cfg.D4m = v
		case "d5m":
			cfg.D5m = v
		case "d6m":
			cfg.D6m = v
		case "d7m":
			cfg.D7m = v
		case "d9m":
			cfg.D9m = v
		case "dh":
			cfg.Dh = v
		case "dtraf":
			cfg.Dtraf = v
		default:
			panic("experiments: unknown Figure 8 parameter " + param)
		}
	}
	for _, param := range Figure8Params {
		for _, v := range sizes {
			cfg := sc.Cfg
			apply(&cfg, param, v)
			m, err := core.New(cfg, w.Graph)
			if err != nil {
				return nil, err
			}
			if _, err := m.Train(w.Split.Train, w.Split.Valid, core.TrainOptions{}); err != nil {
				return nil, err
			}
			actual := make([]float64, len(w.Split.Valid))
			pred := make([]float64, len(w.Split.Valid))
			for i := range w.Split.Valid {
				actual[i] = w.Split.Valid[i].TravelSec
				pred[i] = m.Estimate(&w.Split.Valid[i].Matched)
			}
			res.MAPE[param] = append(res.MAPE[param], metrics.MAPE(actual, pred))
			res.MARE[param] = append(res.MARE[param], metrics.MARE(actual, pred))
		}
	}
	return res, nil
}

// String prints one panel per parameter.
func (r *Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Validation MAPE & MARE vs hyper-parameters (%s, scale=%s)\n", r.City, r.Scale)
	for _, p := range r.Params {
		fmt.Fprintf(&b, "  %-8s", p)
		for i, sz := range r.Sizes {
			fmt.Fprintf(&b, "  [%d] MAPE=%.2f%% MARE=%.2f%%", sz, r.MAPE[p][i]*100, r.MARE[p][i]*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure9Result reproduces Figure 9: per-batch validation MAPE box plots as
// the auxiliary-loss weight w varies.
type Figure9Result struct {
	Scale   string
	City    string
	Weights []float64
	Boxes   []metrics.BoxStats
}

// RunFigure9 trains DeepOD per weight and box-plots per-batch MAPE on the
// validation set.
func RunFigure9(sc Scale, city string, weights []float64) (*Figure9Result, error) {
	if len(weights) == 0 {
		weights = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	w, err := BuildWorld(city, sc)
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{Scale: sc.Name, City: city, Weights: weights}
	const miniBatch = 32
	for _, wt := range weights {
		cfg := sc.Cfg
		cfg.AuxWeight = wt
		m, err := core.New(cfg, w.Graph)
		if err != nil {
			return nil, err
		}
		if _, err := m.Train(w.Split.Train, w.Split.Valid, core.TrainOptions{}); err != nil {
			return nil, err
		}
		// Per-mini-batch MAPE over the validation set.
		var batchMAPEs []float64
		for lo := 0; lo+1 < len(w.Split.Valid); lo += miniBatch {
			hi := lo + miniBatch
			if hi > len(w.Split.Valid) {
				hi = len(w.Split.Valid)
			}
			actual := make([]float64, hi-lo)
			pred := make([]float64, hi-lo)
			for i := lo; i < hi; i++ {
				actual[i-lo] = w.Split.Valid[i].TravelSec
				pred[i-lo] = m.Estimate(&w.Split.Valid[i].Matched)
			}
			batchMAPEs = append(batchMAPEs, metrics.MAPE(actual, pred))
		}
		res.Boxes = append(res.Boxes, metrics.Box(batchMAPEs))
	}
	return res, nil
}

// BestWeight returns the weight with the lowest mean MAPE.
func (r *Figure9Result) BestWeight() float64 {
	best, bw := r.Boxes[0].Mean, r.Weights[0]
	for i := 1; i < len(r.Weights); i++ {
		if r.Boxes[i].Mean < best {
			best, bw = r.Boxes[i].Mean, r.Weights[i]
		}
	}
	return bw
}

// String prints the per-weight box statistics.
func (r *Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: MAPE vs loss weight w (%s, scale=%s)\n", r.City, r.Scale)
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %8s %8s\n", "w", "min", "q1", "median", "q3", "max", "mean")
	for i, wt := range r.Weights {
		bx := r.Boxes[i]
		fmt.Fprintf(&b, "%-6.1f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			wt, bx.Min*100, bx.Q1*100, bx.Median*100, bx.Q3*100, bx.Max*100, bx.Mean*100)
	}
	fmt.Fprintf(&b, "best w = %.1f\n", r.BestWeight())
	return b.String()
}

// Figure11Result reproduces Figure 11: the probability density of
// per-sample test MAPE for every method.
type Figure11Result struct {
	Scale string
	City  string
	Grid  []float64
	// Density[method] aligns with Grid; Mean/Variance summarize each
	// method's APE distribution.
	Density  map[string][]float64
	Mean     map[string]float64
	Variance map[string]float64
}

// Figure11Methods is the plotted method set.
var Figure11Methods = []string{"TEMP", "LR", "GBM", "STNN", "MURAT", "DeepOD"}

// RunFigure11 computes each method's test APE distribution on a city.
func RunFigure11(s *Suite, city string) (*Figure11Result, error) {
	res := &Figure11Result{
		Scale: s.Scale.Name, City: city,
		Density: map[string][]float64{}, Mean: map[string]float64{}, Variance: map[string]float64{},
	}
	for _, method := range Figure11Methods {
		actual, pred, err := s.TestErrors(city, method)
		if err != nil {
			return nil, err
		}
		apes := metrics.PerSampleAPE(actual, pred)
		grid, dens := metrics.KDE(apes, 0, 1.5, 60)
		res.Grid = grid
		res.Density[method] = dens
		res.Mean[method], res.Variance[method] = metrics.Moments(apes)
	}
	return res, nil
}

// String prints distribution summaries (mean/variance) and coarse curves.
func (r *Figure11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: MAPE distribution on test data (%s, scale=%s)\n", r.City, r.Scale)
	for _, m := range Figure11Methods {
		fmt.Fprintf(&b, "  %-8s mean=%.3f var=%.4f  pdf: %s\n",
			m, r.Mean[m], r.Variance[m], plot.Sparkline(r.Density[m]))
	}
	return b.String()
}

// ScatterPoint is one (actual, estimated) pair of Figures 12–13.
type ScatterPoint struct {
	Actual, Estimated float64
}

// Figure12Result reproduces Figure 12: 50 random test trips per city, with
// every method's estimate.
type Figure12Result struct {
	Scale  string
	City   string
	Points map[string][]ScatterPoint
}

// RunFigure12 samples up to n random test trips (travel time < 1 h, per the
// paper) and records every method's estimates.
func RunFigure12(s *Suite, city string, n int) (*Figure12Result, error) {
	w, err := s.World(city)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = 50
	}
	rng := rand.New(rand.NewSource(42))
	var idxs []int
	for i := range w.Split.Test {
		if w.Split.Test[i].TravelSec < 3600 {
			idxs = append(idxs, i)
		}
	}
	rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
	if len(idxs) > n {
		idxs = idxs[:n]
	}
	res := &Figure12Result{Scale: s.Scale.Name, City: city, Points: map[string][]ScatterPoint{}}
	for _, method := range Figure11Methods {
		m, err := s.Model(city, method)
		if err != nil {
			return nil, err
		}
		for _, i := range idxs {
			rec := &w.Split.Test[i]
			res.Points[method] = append(res.Points[method], ScatterPoint{
				Actual:    rec.TravelSec,
				Estimated: m.Estimate(&rec.Matched),
			})
		}
	}
	return res, nil
}

// String prints the scatter pairs.
func (r *Figure12Result) String() string {
	return scatterString("Figure 12: Estimated vs actual time", r.City, r.Scale, r.Points)
}

// Figure13Result reproduces Figure 13: each method's worst cases by MAPE.
type Figure13Result struct {
	Scale  string
	City   string
	Points map[string][]ScatterPoint
}

// RunFigure13 selects each method's k worst test cases by APE.
func RunFigure13(s *Suite, city string, k int) (*Figure13Result, error) {
	if k <= 0 {
		k = 50
	}
	res := &Figure13Result{Scale: s.Scale.Name, City: city, Points: map[string][]ScatterPoint{}}
	for _, method := range Figure11Methods {
		actual, pred, err := s.TestErrors(city, method)
		if err != nil {
			return nil, err
		}
		apes := metrics.PerSampleAPE(actual, pred)
		for _, i := range metrics.WorstK(apes, k) {
			res.Points[method] = append(res.Points[method], ScatterPoint{Actual: actual[i], Estimated: pred[i]})
		}
	}
	return res, nil
}

// String prints the worst-case pairs.
func (r *Figure13Result) String() string {
	return scatterString("Figure 13: Worst cases (estimated vs actual)", r.City, r.Scale, r.Points)
}

func scatterString(title, city, scale string, points map[string][]ScatterPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, scale=%s)\n", title, city, scale)
	for _, m := range Figure11Methods {
		fmt.Fprintf(&b, "  %-8s", m)
		for _, p := range points[m] {
			fmt.Fprintf(&b, " (%.0f,%.0f)", p.Actual, p.Estimated)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure14aResult reproduces Figure 14a: test MAPE vs the time-slot size.
type Figure14aResult struct {
	Scale        string
	City         string
	SlotMinutes  []int
	MAPE         []float64
	BestSlotMins int
}

// RunFigure14a sweeps Δt.
func RunFigure14a(sc Scale, city string, slotMinutes []int) (*Figure14aResult, error) {
	if len(slotMinutes) == 0 {
		slotMinutes = []int{5, 15, 30, 60, 120}
	}
	w, err := BuildWorld(city, sc)
	if err != nil {
		return nil, err
	}
	res := &Figure14aResult{Scale: sc.Name, City: city, SlotMinutes: slotMinutes}
	best := -1
	for _, mins := range slotMinutes {
		cfg := sc.Cfg
		cfg.SlotDelta = time.Duration(mins) * time.Minute
		m, err := core.New(cfg, w.Graph)
		if err != nil {
			return nil, err
		}
		if _, err := m.Train(w.Split.Train, w.Split.Valid, core.TrainOptions{}); err != nil {
			return nil, err
		}
		actual := make([]float64, len(w.Split.Test))
		pred := make([]float64, len(w.Split.Test))
		for i := range w.Split.Test {
			actual[i] = w.Split.Test[i].TravelSec
			pred[i] = m.Estimate(&w.Split.Test[i].Matched)
		}
		mape := metrics.MAPE(actual, pred)
		res.MAPE = append(res.MAPE, mape)
		if best < 0 || mape < res.MAPE[best] {
			best = len(res.MAPE) - 1
		}
	}
	res.BestSlotMins = res.SlotMinutes[best]
	return res, nil
}

// String prints the sweep.
func (r *Figure14aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14a: MAPE vs time slot size (%s, scale=%s)\n", r.City, r.Scale)
	for i, mins := range r.SlotMinutes {
		fmt.Fprintf(&b, "  Δt=%3d min  MAPE=%.2f%%\n", mins, r.MAPE[i]*100)
	}
	fmt.Fprintf(&b, "best Δt = %d min\n", r.BestSlotMins)
	return b.String()
}

// Figure14bResult reproduces Figure 14b: a day×hour heatmap of the learned
// time-slot embeddings projected to 1-D with t-SNE.
type Figure14bResult struct {
	Scale string
	City  string
	// Heat[d][h] is the averaged 1-D projection of day d, hour h.
	Heat [7][24]float64
}

// RunFigure14b trains DeepOD, projects Wt to 1-D and averages each hour.
func RunFigure14b(s *Suite, city string) (*Figure14bResult, error) {
	w, err := s.World(city)
	if err != nil {
		return nil, err
	}
	dm, err := s.Model(city, "DeepOD")
	if err != nil {
		return nil, err
	}
	d, ok := dm.(*DeepODEstimator)
	if !ok {
		return nil, fmt.Errorf("experiments: DeepOD model has unexpected type %T", dm)
	}
	emb := d.Model().SlotEmbeddingTable()
	if emb == nil {
		return nil, fmt.Errorf("experiments: model has no slot embedding table")
	}
	slots := emb.V
	vecs := make([][]float64, slots)
	for i := 0; i < slots; i++ {
		row := emb.W.Value.Row(i)
		vecs[i] = row.Data
	}
	cfg := tsne.DefaultConfig(1)
	cfg.Iters = 150
	proj, err := tsne.Embed(vecs, cfg)
	if err != nil {
		return nil, err
	}
	slotter := d.Model().Slotter()
	res := &Figure14bResult{Scale: s.Scale.Name, City: w.City}
	var counts [7][24]int
	perHour := slotter.SlotsPerDay / 24
	if perHour < 1 {
		perHour = 1
	}
	for i := 0; i < slots; i++ {
		day := slotter.DayOfWeek(i) % 7
		hour := slotter.SlotOfDay(i) / perHour
		if hour > 23 {
			hour = 23
		}
		res.Heat[day][hour] += proj[i][0]
		counts[day][hour]++
	}
	for dd := 0; dd < 7; dd++ {
		for h := 0; h < 24; h++ {
			if counts[dd][h] > 0 {
				res.Heat[dd][h] /= float64(counts[dd][h])
			}
		}
	}
	return res, nil
}

// String prints the heatmap, both numerically (every other hour) and as a
// shaded ASCII map.
func (r *Figure14bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14b: Heatmap of 1-D t-SNE of time-slot embeddings (%s, scale=%s)\n", r.City, r.Scale)
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	fmt.Fprintf(&b, "%-5s", "")
	for h := 0; h < 24; h += 2 {
		fmt.Fprintf(&b, "%7dh", h)
	}
	b.WriteByte('\n')
	rows := make([][]float64, 7)
	for d := 0; d < 7; d++ {
		fmt.Fprintf(&b, "%-5s", days[d])
		rows[d] = make([]float64, 24)
		copy(rows[d], r.Heat[d][:])
		for h := 0; h < 24; h += 2 {
			fmt.Fprintf(&b, "%8.2f", r.Heat[d][h])
		}
		b.WriteByte('\n')
	}
	b.WriteString("shaded (cols = hours 0..23):\n")
	b.WriteString(plot.Heatmap(rows, days))
	return b.String()
}
