package experiments

import (
	"strings"
	"testing"
)

// shared runs the plumbing tests; it checks that every experiment produces
// structurally valid output quickly. Learning-quality (shape) assertions
// live in shape_test.go at the larger ShapeScale.
var shared = NewSuite(TinyScale())

func TestRunTable2(t *testing.T) {
	res, err := RunTable2(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cities) != 3 || len(res.Stats) != 3 {
		t.Fatalf("want 3 cities, got %d", len(res.Cities))
	}
	for i, st := range res.Stats {
		if st.NumOrders == 0 || st.AvgTravelSec <= 0 || st.AvgSegments < 1 || st.AvgLengthM <= 0 {
			t.Fatalf("city %s has degenerate stats: %+v", res.Cities[i], st)
		}
		if st.AvgGPSPoints < 2 {
			t.Fatalf("city %s has too few GPS points per trip: %+v", res.Cities[i], st)
		}
	}
	// beijing-s must be the largest dataset (mirrors BRN ≫ CRN/XRN).
	if res.Stats[2].NumOrders <= res.Stats[0].NumOrders {
		t.Fatalf("beijing-s should have the most orders: %+v", res.Stats)
	}
	out := res.String()
	for _, want := range []string{"Table 2", "# of orders", "Avg travel time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable4Plumbing(t *testing.T) {
	res, err := RunTable4(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(AllTable4Methods) {
		t.Fatalf("want %d rows, got %d", len(AllTable4Methods), len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, city := range res.Cities {
			if r.MAPE[city] <= 0 || r.MAPE[city] > 5 {
				t.Fatalf("%s on %s has implausible MAPE %v", r.Method, city, r.MAPE[city])
			}
			if r.MAE[city] <= 0 {
				t.Fatalf("%s on %s has non-positive MAE", r.Method, city)
			}
		}
	}
	if !strings.Contains(res.String(), "DeepOD") {
		t.Fatal("Table 4 output missing DeepOD row")
	}
}

func TestRunTable5Plumbing(t *testing.T) {
	t5, err := RunTable5(shared)
	if err != nil {
		t.Fatal(err)
	}
	var tempRow, lrRow, deepRow EfficiencyRow
	for _, row := range t5.Rows {
		for _, city := range t5.Cities {
			if row.SizeBytes[city] <= 0 {
				t.Fatalf("%s has zero model size on %s", row.Method, city)
			}
			if row.EstimatePerK[city] <= 0 {
				t.Fatalf("%s has zero estimation time on %s", row.Method, city)
			}
		}
		switch row.Method {
		case "TEMP":
			tempRow = row
		case "LR":
			lrRow = row
		case "DeepOD":
			deepRow = row
		}
	}
	// Table 5 findings: TEMP's memory grows with data; deep estimation
	// costs more than LR's.
	if tempRow.SizeBytes["beijing-s"] <= tempRow.SizeBytes["xian-s"] {
		t.Error("TEMP model size should grow with dataset size")
	}
	if deepRow.EstimatePerK["chengdu-s"] <= lrRow.EstimatePerK["chengdu-s"] {
		t.Error("DeepOD estimation should cost more than LR")
	}
}

func TestRunTable3Figure10(t *testing.T) {
	res, err := RunTable3Figure10(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cities) != 2 {
		t.Fatalf("Table 3 should cover 2 cities, got %d", len(res.Cities))
	}
	for _, city := range res.Cities {
		if len(res.Rows[city]) != 3 {
			t.Fatalf("Table 3 should have 3 methods on %s", city)
		}
		for _, row := range res.Rows[city] {
			if row.Steps == 0 || len(row.Curve) == 0 {
				t.Fatalf("%s on %s has empty curve", row.Method, city)
			}
			if row.ConvergedStep > row.Steps {
				t.Fatalf("%s converged after the run ended?", row.Method)
			}
			if row.ConvergedAt > row.Elapsed {
				t.Fatalf("%s convergence time exceeds total time", row.Method)
			}
		}
	}
	out := res.String()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "Table 3") {
		t.Fatal("Table 3 output incomplete")
	}
}

func TestRunTable6Plumbing(t *testing.T) {
	res, err := RunTable6(shared)
	if err != nil {
		t.Fatal(err)
	}
	if res.City != "beijing-s" {
		t.Fatalf("Table 6 should use the largest city, got %s", res.City)
	}
	for _, m := range Table6Methods {
		if len(res.MAPE[m]) != len(res.Fractions) {
			t.Fatalf("%s has %d points, want %d", m, len(res.MAPE[m]), len(res.Fractions))
		}
		for i, v := range res.MAPE[m] {
			if v <= 0 || v > 5 {
				t.Fatalf("%s fraction %.0f%% has implausible MAPE %v", m, res.Fractions[i]*100, v)
			}
		}
	}
}

func TestRunTable7Plumbing(t *testing.T) {
	res, err := RunTable7(shared)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range EmbeddingVariants {
		for _, city := range res.Cities {
			if res.Variant[v][city] <= 0 {
				t.Fatalf("variant %s has zero MAPE on %s", v, city)
			}
		}
	}
	if !strings.Contains(res.String(), "T-stamp") {
		t.Fatal("Table 7 output incomplete")
	}
}

func TestFiguresPlumbing(t *testing.T) {
	f11, err := RunFigure11(shared, "chengdu-s")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Figure11Methods {
		if len(f11.Density[m]) != len(f11.Grid) {
			t.Fatalf("KDE for %s has wrong length", m)
		}
		if f11.Mean[m] <= 0 {
			t.Fatalf("%s has non-positive APE mean", m)
		}
	}

	f12, err := RunFigure12(shared, "chengdu-s", 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Figure11Methods {
		if len(f12.Points[m]) == 0 {
			t.Fatalf("Figure 12 has no points for %s", m)
		}
		for _, p := range f12.Points[m] {
			if p.Actual <= 0 || p.Actual >= 3600 {
				t.Fatalf("Figure 12 sampled a trip outside (0, 1h): %+v", p)
			}
		}
	}

	f13, err := RunFigure13(shared, "chengdu-s", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Figure11Methods {
		if len(f13.Points[m]) != 10 {
			t.Fatalf("Figure 13 wants 10 worst cases for %s, got %d", m, len(f13.Points[m]))
		}
		// Worst cases must be sorted by APE descending.
		prev := 2.0e18
		for _, p := range f13.Points[m] {
			ape := abs(p.Actual-p.Estimated) / p.Actual
			if ape > prev+1e-9 {
				t.Fatalf("Figure 13 worst cases for %s not sorted", m)
			}
			prev = ape
		}
	}

	f14b, err := RunFigure14b(shared, "chengdu-s")
	if err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			if f14b.Heat[d][h] != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("Figure 14b heatmap is all zeros")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRunFigure5a(t *testing.T) {
	res, err := RunFigure5a(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roads) != 4 {
		t.Fatalf("want 4 roads, got %d", len(res.Roads))
	}
	for i := range res.Flow {
		if len(res.Flow[i]) != res.Days {
			t.Fatalf("road %d has %d days, want %d", i, len(res.Flow[i]), res.Days)
		}
	}
	// Weekday flow should exceed weekend flow on average (commute pattern).
	f := res.Flow[0]
	weekday := (f[1] + f[2] + f[3]) / 3
	weekend := (f[5] + f[6]) / 2
	if weekday <= weekend {
		t.Errorf("weekday congestion %.4f should exceed weekend %.4f", weekday, weekend)
	}
}

func TestRunFigure9Small(t *testing.T) {
	res, err := RunFigure9(TinyScale(), "chengdu-s", []float64{0.1, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boxes) != 2 {
		t.Fatalf("want 2 boxes, got %d", len(res.Boxes))
	}
	for _, bx := range res.Boxes {
		if !(bx.Min <= bx.Q1 && bx.Q1 <= bx.Median && bx.Median <= bx.Q3 && bx.Q3 <= bx.Max) {
			t.Fatalf("box stats out of order: %+v", bx)
		}
	}
	if w := res.BestWeight(); w != 0.1 && w != 0.7 {
		t.Fatalf("BestWeight returned %v, not one of the swept values", w)
	}
}

func TestRunFigure14a(t *testing.T) {
	res, err := RunFigure14a(TinyScale(), "chengdu-s", []int{30, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MAPE) != 2 {
		t.Fatalf("want 2 MAPE points, got %d", len(res.MAPE))
	}
	if res.BestSlotMins != 30 && res.BestSlotMins != 120 {
		t.Fatalf("BestSlotMins = %d", res.BestSlotMins)
	}
}

func TestRunFigure8OneParam(t *testing.T) {
	res, err := RunFigure8(TinyScale(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Figure8Params {
		if len(res.MAPE[p]) != 1 || res.MAPE[p][0] <= 0 {
			t.Fatalf("param %s has bad sweep result: %+v", p, res.MAPE[p])
		}
	}
}

func TestRunEmbedStudy(t *testing.T) {
	res, err := RunEmbedStudy(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 3 {
		t.Fatalf("methods = %v", res.Methods)
	}
	for _, m := range res.Methods {
		if res.MAPE[m] <= 0 || res.MAE[m] <= 0 {
			t.Fatalf("method %s has degenerate errors", m)
		}
	}
	if !strings.Contains(res.String(), "node2vec") {
		t.Fatal("embed study output incomplete")
	}
}

func TestRunExtRoute(t *testing.T) {
	res, err := RunExtRoute(shared)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Methods {
		if res.MAE[m] <= 0 || res.MAPE[m] <= 0 {
			t.Fatalf("%s has degenerate errors", m)
		}
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Fatalf("coverage %v out of range", res.Coverage)
	}
	if !strings.Contains(res.String(), "RouteETA") {
		t.Fatal("extension output incomplete")
	}
}
