package experiments

import (
	"fmt"
	"strings"

	"deepod/internal/metrics"
	"deepod/internal/models"
)

// ExtRouteResult is the repository's extension experiment: DeepOD (an
// OD-based estimator) against RouteETA (a route-based estimator from the
// path-estimation family of the paper's §7.1) on the same city. It
// quantifies the trade the paper's problem statement describes — the route
// is unknown at query time, so route-based methods must predict it and pay
// for per-segment data sparsity, while DeepOD amortizes trajectories into
// its representation.
type ExtRouteResult struct {
	Scale    string
	City     string
	Methods  []string
	MAE      map[string]float64
	MAPE     map[string]float64
	Coverage float64 // RouteETA's (edge, bin) observation coverage
}

// RunExtRoute evaluates DeepOD, N-st and RouteETA on one city.
func RunExtRoute(s *Suite) (*ExtRouteResult, error) {
	city := s.Scale.CityList()[0]
	w, err := s.World(city)
	if err != nil {
		return nil, err
	}
	res := &ExtRouteResult{
		Scale: s.Scale.Name, City: city,
		Methods: []string{"RouteETA", "N-st", "DeepOD"},
		MAE:     map[string]float64{}, MAPE: map[string]float64{},
	}
	route := models.NewRouteETA(w.Graph)
	if err := route.Train(w.Split.Train, w.Split.Valid); err != nil {
		return nil, err
	}
	res.Coverage = route.Coverage()
	evalInto := func(name string, est models.Estimator) {
		actual := make([]float64, len(w.Split.Test))
		pred := make([]float64, len(w.Split.Test))
		for i := range w.Split.Test {
			actual[i] = w.Split.Test[i].TravelSec
			pred[i] = est.Estimate(&w.Split.Test[i].Matched)
		}
		res.MAE[name] = metrics.MAE(actual, pred)
		res.MAPE[name] = metrics.MAPE(actual, pred)
	}
	evalInto("RouteETA", route)
	for _, m := range []string{"N-st", "DeepOD"} {
		est, err := s.Model(city, m)
		if err != nil {
			return nil, err
		}
		evalInto(m, est)
	}
	return res, nil
}

// String prints the comparison.
func (r *ExtRouteResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: OD-based vs route-based estimation (%s, scale=%s)\n", r.City, r.Scale)
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "  %-10s MAE=%.2fs MAPE=%.2f%%\n", m, r.MAE[m], r.MAPE[m]*100)
	}
	fmt.Fprintf(&b, "  RouteETA observed %.1f%% of (segment, time-bin) cells\n", r.Coverage*100)
	return b.String()
}
