package experiments

import (
	"fmt"
	"strings"
	"time"

	"deepod/internal/dataset"
	"deepod/internal/metrics"
	"deepod/internal/models"
	"deepod/internal/plot"
	"deepod/internal/traj"
)

// Table2Result reproduces Table 2 (taxi order dataset statistics).
type Table2Result struct {
	Scale  string
	Cities []string
	Stats  []dataset.Stats
}

// RunTable2 generates every city at the given scale and summarizes its
// orders the way Table 2 does.
func RunTable2(sc Scale) (*Table2Result, error) {
	res := &Table2Result{Scale: sc.Name}
	for _, city := range sc.CityList() {
		w, err := BuildWorld(city, sc)
		if err != nil {
			return nil, err
		}
		g := w.Graph
		st := dataset.Summarize(w.Records, func(r *traj.TripRecord) float64 {
			return r.Trajectory.Length(g)
		})
		res.Cities = append(res.Cities, city)
		res.Stats = append(res.Stats, st)
	}
	return res, nil
}

// String prints the Table 2 layout.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Taxi Order Datasets (scale=%s)\n", r.Scale)
	fmt.Fprintf(&b, "%-24s", "")
	for _, c := range r.Cities {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	row := func(label string, f func(dataset.Stats) string) {
		fmt.Fprintf(&b, "%-24s", label)
		for _, s := range r.Stats {
			fmt.Fprintf(&b, "%14s", f(s))
		}
		b.WriteByte('\n')
	}
	row("# of orders", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.NumOrders) })
	row("Avg # of points", func(s dataset.Stats) string { return fmt.Sprintf("%.0f", s.AvgGPSPoints) })
	row("Avg travel time(s)", func(s dataset.Stats) string { return fmt.Sprintf("%.2f", s.AvgTravelSec) })
	row("Avg # of road segments", func(s dataset.Stats) string { return fmt.Sprintf("%.0f", s.AvgSegments) })
	row("Avg length(meter)", func(s dataset.Stats) string { return fmt.Sprintf("%.2f", s.AvgLengthM) })
	return b.String()
}

// ConvergenceRow is one method's convergence record (Table 3).
type ConvergenceRow struct {
	Method        string
	Steps         int
	ConvergedStep int
	Elapsed       time.Duration
	ConvergedAt   time.Duration
	Curve         []models.StepPoint // Figure 10 series
}

// Table3Result reproduces Table 3 (convergence steps and time) and carries
// the Figure 10 validation-error curves.
type Table3Result struct {
	Scale  string
	Cities []string
	// Rows[city][i] is the i-th method's convergence record.
	Rows map[string][]ConvergenceRow
}

// curveSource is implemented by STNN, MURAT and the DeepOD adapter.
type curveSource interface {
	Stats() *models.DeepStats
}

// RunTable3Figure10 trains the three deep models on the first two cities
// (the paper uses Chengdu and Xi'an) recording validation error per
// evaluation step.
func RunTable3Figure10(s *Suite) (*Table3Result, error) {
	res := &Table3Result{Scale: s.Scale.Name, Rows: map[string][]ConvergenceRow{}}
	deepMethods := []string{"STNN", "MURAT", "DeepOD"}
	cities := s.Scale.CityList()
	if len(cities) > 2 {
		cities = cities[:2]
	}
	for _, city := range cities {
		for _, method := range deepMethods {
			m, err := s.Model(city, method)
			if err != nil {
				return nil, err
			}
			cs, ok := m.(curveSource)
			if !ok {
				return nil, fmt.Errorf("experiments: %s does not expose a training curve", method)
			}
			st := cs.Stats()
			if st == nil {
				return nil, fmt.Errorf("experiments: %s has no stats after training", method)
			}
			res.Rows[city] = append(res.Rows[city], ConvergenceRow{
				Method:        method,
				Steps:         st.Steps,
				ConvergedStep: st.ConvergedStep,
				Elapsed:       st.Elapsed,
				ConvergedAt:   st.ConvergedAt,
				Curve:         st.Curve,
			})
		}
		res.Cities = append(res.Cities, city)
	}
	return res, nil
}

// String prints the Table 3 layout plus a compact Figure 10 curve dump.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Convergence Steps and Convergence Time (scale=%s)\n", r.Scale)
	fmt.Fprintf(&b, "%-12s %-10s %14s %16s\n", "city", "method", "steps(conv)", "time(conv)")
	for _, city := range r.Cities {
		for _, row := range r.Rows[city] {
			fmt.Fprintf(&b, "%-12s %-10s %7d/%6d %9s/%6s\n",
				city, row.Method, row.ConvergedStep, row.Steps,
				row.ConvergedAt.Round(time.Millisecond), row.Elapsed.Round(time.Millisecond))
		}
	}
	b.WriteString("Figure 10: validation MAE vs training steps\n")
	for _, city := range r.Cities {
		var series []plot.Series
		for _, row := range r.Rows[city] {
			fmt.Fprintf(&b, "  %s/%s:", city, row.Method)
			s := plot.Series{Name: row.Method}
			for _, p := range row.Curve {
				fmt.Fprintf(&b, " (%d, %.1f)", p.Step, p.ValMAE)
				s.Xs = append(s.Xs, float64(p.Step))
				s.Ys = append(s.Ys, p.ValMAE)
			}
			series = append(series, s)
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s\n", plot.Lines(series, 64, 12))
	}
	return b.String()
}

// ErrorRow is one method's test errors on every city (Table 4).
type ErrorRow struct {
	Method string
	MAE    map[string]float64 // seconds, per city
	MAPE   map[string]float64 // fraction
	MARE   map[string]float64 // fraction
}

// Table4Result reproduces Table 4 (test errors of all methods and the four
// DeepOD ablations on all cities).
type Table4Result struct {
	Scale  string
	Cities []string
	Rows   []ErrorRow
}

// RunTable4 trains and evaluates every Table 4 method on every city.
func RunTable4(s *Suite) (*Table4Result, error) {
	res := &Table4Result{Scale: s.Scale.Name, Cities: s.Scale.CityList()}
	for _, method := range AllTable4Methods {
		row := ErrorRow{
			Method: method,
			MAE:    map[string]float64{}, MAPE: map[string]float64{}, MARE: map[string]float64{},
		}
		for _, city := range res.Cities {
			actual, pred, err := s.TestErrors(city, method)
			if err != nil {
				return nil, err
			}
			row.MAE[city] = metrics.MAE(actual, pred)
			row.MAPE[city] = metrics.MAPE(actual, pred)
			row.MARE[city] = metrics.MARE(actual, pred)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the Table 4 layout (method × metric, slash-separated
// per-city values like the paper).
func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Experimental Results on Test Errors (scale=%s, cities=%s)\n",
		r.Scale, strings.Join(r.Cities, "/"))
	fmt.Fprintf(&b, "%-10s %-30s %-26s %-26s\n", "Method", "MAE(second)", "MAPE(%)", "MARE(%)")
	for _, row := range r.Rows {
		mae := make([]string, len(r.Cities))
		mape := make([]string, len(r.Cities))
		mare := make([]string, len(r.Cities))
		for i, c := range r.Cities {
			mae[i] = fmt.Sprintf("%.2f", row.MAE[c])
			mape[i] = fmt.Sprintf("%.2f", row.MAPE[c]*100)
			mare[i] = fmt.Sprintf("%.2f", row.MARE[c]*100)
		}
		fmt.Fprintf(&b, "%-10s %-30s %-26s %-26s\n", row.Method,
			strings.Join(mae, "/"), strings.Join(mape, "/"), strings.Join(mare, "/"))
	}
	return b.String()
}

// EfficiencyRow is one method's Table 5 record.
type EfficiencyRow struct {
	Method string
	// SizeBytes, TrainTime and EstimatePerK (time to estimate 1000 OD
	// inputs) per city.
	SizeBytes    map[string]int
	TrainTime    map[string]time.Duration
	EstimatePerK map[string]time.Duration
}

// Table5Result reproduces Table 5 (model size, training time, estimation
// time).
type Table5Result struct {
	Scale  string
	Cities []string
	Rows   []EfficiencyRow
}

// Table5Methods is the Table 5 row order.
var Table5Methods = []string{"TEMP", "LR", "GBM", "STNN", "MURAT", "DeepOD"}

// RunTable5 measures efficiency of every method on every city. Estimation
// time is measured over min(1000, 4×test) queries, cycling the test set.
func RunTable5(s *Suite) (*Table5Result, error) {
	res := &Table5Result{Scale: s.Scale.Name, Cities: s.Scale.CityList()}
	for _, method := range Table5Methods {
		row := EfficiencyRow{
			Method:       method,
			SizeBytes:    map[string]int{},
			TrainTime:    map[string]time.Duration{},
			EstimatePerK: map[string]time.Duration{},
		}
		for _, city := range res.Cities {
			w, err := s.World(city)
			if err != nil {
				return nil, err
			}
			m, err := s.Model(city, method)
			if err != nil {
				return nil, err
			}
			row.SizeBytes[city] = m.SizeBytes()
			row.TrainTime[city] = m.TrainTime()

			n := 1000
			start := time.Now()
			for i := 0; i < n; i++ {
				rec := &w.Split.Test[i%len(w.Split.Test)]
				m.Estimate(&rec.Matched)
			}
			row.EstimatePerK[city] = time.Since(start)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the Table 5 layout.
func (r *Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Efficiency of Test Result (scale=%s, cities=%s)\n",
		r.Scale, strings.Join(r.Cities, "/"))
	fmt.Fprintf(&b, "%-10s %-30s %-36s %-30s\n", "Method", "model size(Byte)", "training time", "estimation time(per 1K)")
	for _, row := range r.Rows {
		size := make([]string, len(r.Cities))
		tt := make([]string, len(r.Cities))
		et := make([]string, len(r.Cities))
		for i, c := range r.Cities {
			size[i] = humanBytes(row.SizeBytes[c])
			tt[i] = row.TrainTime[c].Round(time.Millisecond).String()
			et[i] = row.EstimatePerK[c].Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-10s %-30s %-36s %-30s\n", row.Method,
			strings.Join(size, "/"), strings.Join(tt, "/"), strings.Join(et, "/"))
	}
	return b.String()
}

func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fK", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Table6Result reproduces Table 6 (scalability: test MAPE vs training-data
// fraction on the largest city).
type Table6Result struct {
	Scale     string
	City      string
	Fractions []float64
	// MAPE[method][i] corresponds to Fractions[i].
	MAPE map[string][]float64
}

// Table6Methods is the Table 6 column order.
var Table6Methods = []string{"TEMP", "LR", "GBM", "STNN", "MURAT", "DeepOD"}

// RunTable6 trains every method on growing fractions of the largest city's
// training data (fresh models per fraction; the full-data models come from
// the suite cache).
func RunTable6(s *Suite) (*Table6Result, error) {
	cities := s.Scale.CityList()
	city := cities[len(cities)-1] // the largest preset in report order
	w, err := s.World(city)
	if err != nil {
		return nil, err
	}
	res := &Table6Result{
		Scale:     s.Scale.Name,
		City:      city,
		Fractions: []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		MAPE:      map[string][]float64{},
	}
	for _, method := range Table6Methods {
		for _, frac := range res.Fractions {
			var m models.Trainable
			if frac == 1.0 {
				m, err = s.Model(city, method)
				if err != nil {
					return nil, err
				}
			} else {
				sub, serr := dataset.Subsample(w.Split.Train, frac)
				if serr != nil {
					return nil, serr
				}
				m, err = s.newUntrained(method, w)
				if err != nil {
					return nil, err
				}
				if err = m.Train(sub, w.Split.Valid); err != nil {
					return nil, fmt.Errorf("experiments: %s at %.0f%%: %w", method, frac*100, err)
				}
			}
			actual := make([]float64, len(w.Split.Test))
			pred := make([]float64, len(w.Split.Test))
			for i := range w.Split.Test {
				actual[i] = w.Split.Test[i].TravelSec
				pred[i] = m.Estimate(&w.Split.Test[i].Matched)
			}
			res.MAPE[method] = append(res.MAPE[method], metrics.MAPE(actual, pred))
		}
	}
	return res, nil
}

// String prints the Table 6 layout.
func (r *Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Scalability of Test Result (%s, scale=%s) — MAPE(%%)\n", r.City, r.Scale)
	fmt.Fprintf(&b, "%-8s", "frac")
	for _, m := range Table6Methods {
		fmt.Fprintf(&b, "%10s", m)
	}
	b.WriteByte('\n')
	for i, f := range r.Fractions {
		fmt.Fprintf(&b, "%-8s", fmt.Sprintf("%.0f%%", f*100))
		for _, m := range Table6Methods {
			fmt.Fprintf(&b, "%10.2f", r.MAPE[m][i]*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table7Result reproduces Table 7 (embedding-initialization variants).
type Table7Result struct {
	Scale  string
	Cities []string
	// Base[city] is DeepOD's MAPE; Variant[name][city] the variant's.
	Base    map[string]float64
	Variant map[string]map[string]float64
}

// RunTable7 evaluates the four embedding variants against DeepOD.
func RunTable7(s *Suite) (*Table7Result, error) {
	res := &Table7Result{
		Scale:   s.Scale.Name,
		Cities:  s.Scale.CityList(),
		Base:    map[string]float64{},
		Variant: map[string]map[string]float64{},
	}
	for _, city := range res.Cities {
		actual, pred, err := s.TestErrors(city, "DeepOD")
		if err != nil {
			return nil, err
		}
		res.Base[city] = metrics.MAPE(actual, pred)
	}
	for _, v := range EmbeddingVariants {
		res.Variant[v] = map[string]float64{}
		for _, city := range res.Cities {
			actual, pred, err := s.TestErrors(city, v)
			if err != nil {
				return nil, err
			}
			res.Variant[v][city] = metrics.MAPE(actual, pred)
		}
	}
	return res, nil
}

// String prints the Table 7 layout (variant MAPE with Δ% vs DeepOD).
func (r *Table7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: MAPE Errors(%%) of Embeddings in DeepOD (scale=%s)\n", r.Scale)
	fmt.Fprintf(&b, "%-12s", "City")
	for _, v := range EmbeddingVariants {
		fmt.Fprintf(&b, "%20s", v)
	}
	fmt.Fprintf(&b, "%12s\n", "DeepOD")
	for _, city := range r.Cities {
		fmt.Fprintf(&b, "%-12s", city)
		base := r.Base[city]
		for _, v := range EmbeddingVariants {
			m := r.Variant[v][city]
			delta := (m - base) / base * 100
			fmt.Fprintf(&b, "%20s", fmt.Sprintf("%.2f(%+.1f%%)", m*100, delta))
		}
		fmt.Fprintf(&b, "%12.2f\n", base*100)
	}
	return b.String()
}
