// Package experiments regenerates every table and figure of the paper's
// evaluation section (§6) on the synthetic cities. Each RunXxx function
// returns a structured result whose String method prints the same rows or
// series the paper reports; cmd/ttebench drives them, and bench_test.go
// wraps each in a testing.B benchmark.
//
// Absolute numbers differ from the paper (simulated city, CPU, reduced
// scale); the comparisons the paper draws — which method wins, the ablation
// ordering, the scalability and slot-size trends — are the reproduction
// target (see DESIGN.md §3).
package experiments

import (
	"time"

	"deepod/internal/core"
)

// Scale bundles the dataset and model sizes an experiment run uses. Tests
// and benchmarks use TinyScale; the ttebench CLI defaults to SmallScale.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// Orders per city preset.
	Orders map[string]int
	// HorizonDays is the simulated time span (the paper uses 61 days).
	HorizonDays int
	// Cfg is the DeepOD configuration template (per-experiment runs clone
	// and adjust it).
	Cfg core.Config
	// GridCellMeters / GridPeriod configure the traffic-condition grids.
	GridCellMeters float64
	GridPeriodSec  float64
	// EvalEvery is the validation cadence (steps) for convergence curves.
	EvalEvery int
	// Seed drives the world generation.
	Seed int64
	// CitySubset restricts experiments to these cities (nil = all three).
	CitySubset []string
}

// Cities returns the full preset list in report order.
func Cities() []string { return []string{"chengdu-s", "xian-s", "beijing-s"} }

// CityList returns the cities this scale covers (all presets when unset).
func (s Scale) CityList() []string {
	if len(s.CitySubset) > 0 {
		return s.CitySubset
	}
	return Cities()
}

// TinyScale runs every experiment in seconds. It checks plumbing, not
// learning quality: the datasets are far too small for the deep models to
// separate from the baselines (see ShapeScale for that).
func TinyScale() Scale {
	cfg := core.SmallConfig()
	cfg.Ds, cfg.Dt = 8, 8
	cfg.D1m, cfg.D2m, cfg.D3m, cfg.D4m = 16, 8, 16, 8
	cfg.D5m, cfg.D6m, cfg.D7m, cfg.D9m = 16, 8, 16, 16
	cfg.Dh, cfg.Dtraf = 16, 8
	cfg.SlotDelta = 30 * time.Minute
	cfg.BatchSize = 16
	cfg.Epochs = 2
	cfg.LREvery = 3
	cfg.EmbedWalks, cfg.EmbedEpochs = 2, 1
	return Scale{
		Name: "tiny",
		Orders: map[string]int{
			"chengdu-s": 300, "xian-s": 240, "beijing-s": 420,
		},
		HorizonDays:    14,
		Cfg:            cfg,
		GridCellMeters: 400,
		GridPeriodSec:  1800,
		EvalEvery:      8,
		Seed:           1,
	}
}

// ShapeScale is large enough for the deep models to beat the baselines on
// one city (chengdu-s): the scale the shape-assertion tests use.
func ShapeScale() Scale {
	cfg := core.SmallConfig()
	cfg.Ds, cfg.Dt = 8, 8
	cfg.D1m, cfg.D2m, cfg.D3m, cfg.D4m = 16, 8, 16, 8
	cfg.D5m, cfg.D6m, cfg.D7m, cfg.D9m = 16, 8, 16, 16
	cfg.Dh, cfg.Dtraf = 16, 8
	cfg.SlotDelta = 30 * time.Minute
	cfg.BatchSize = 32
	cfg.Epochs = 8
	cfg.LREvery = 4
	cfg.EmbedWalks, cfg.EmbedEpochs = 10, 5
	return Scale{
		Name: "shape",
		Orders: map[string]int{
			"chengdu-s": 3600,
		},
		HorizonDays:    35,
		Cfg:            cfg,
		GridCellMeters: 400,
		GridPeriodSec:  1800,
		EvalEvery:      16,
		Seed:           1,
		CitySubset:     []string{"chengdu-s"},
	}
}

// SmallScale is the default CLI scale: tens of minutes of total compute on
// one core, with the clearest separations between methods.
func SmallScale() Scale {
	cfg := core.SmallConfig()
	cfg.Epochs = 8
	cfg.LREvery = 4
	cfg.BatchSize = 64
	cfg.EmbedWalks, cfg.EmbedEpochs = 10, 5
	return Scale{
		Name: "small",
		Orders: map[string]int{
			"chengdu-s": 4500, "xian-s": 3500, "beijing-s": 6500,
		},
		HorizonDays:    42,
		Cfg:            cfg,
		GridCellMeters: 250,
		GridPeriodSec:  900,
		EvalEvery:      20,
		Seed:           1,
	}
}
