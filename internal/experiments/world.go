package experiments

import (
	"fmt"

	"deepod/internal/citysim"
	"deepod/internal/dataset"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// World is one synthetic city with its traffic field, speed grids, taxi
// orders and chronological splits — everything an experiment needs.
type World struct {
	City    string
	Graph   *roadnet.Graph
	Traffic *citysim.Traffic
	Grid    *citysim.SpeedGridder
	Records []traj.TripRecord
	Split   dataset.Split
}

// BuildWorld generates the world for a city preset at the given scale.
func BuildWorld(city string, sc Scale) (*World, error) {
	ccfg, err := roadnet.CityPreset(city)
	if err != nil {
		return nil, err
	}
	ccfg.Seed += sc.Seed
	g, err := roadnet.GenerateCity(ccfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", city, err)
	}
	horizon := float64(sc.HorizonDays) * timeslot.SecondsPerDay
	tf, err := citysim.NewTraffic(g, horizon, sc.Seed+int64(len(city)))
	if err != nil {
		return nil, err
	}
	grid, err := citysim.NewSpeedGridder(tf, sc.GridCellMeters, sc.GridPeriodSec)
	if err != nil {
		return nil, err
	}
	orders, ok := sc.Orders[city]
	if !ok {
		return nil, fmt.Errorf("experiments: scale %q has no order count for city %q", sc.Name, city)
	}
	ocfg := citysim.DefaultOrderConfig(orders, sc.Seed+int64(2*len(city)))
	gen, err := citysim.NewGenerator(tf, grid, ocfg)
	if err != nil {
		return nil, err
	}
	records, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	split, err := dataset.PaperSplit(records)
	if err != nil {
		return nil, err
	}
	return &World{
		City:    city,
		Graph:   g,
		Traffic: tf,
		Grid:    grid,
		Records: records,
		Split:   split,
	}, nil
}
