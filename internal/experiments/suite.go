package experiments

import (
	"fmt"
	"time"

	"deepod/internal/core"
	"deepod/internal/models"
	"deepod/internal/traj"
)

// Method names used across all experiments, in the paper's report order.
var (
	// BaselineMethods are the five comparison methods of §6.1.
	BaselineMethods = []string{"TEMP", "LR", "GBM", "STNN", "MURAT"}
	// AblationMethods are the DeepOD ablations of Table 4.
	AblationMethods = []string{"N-st", "N-sp", "N-tp", "N-other"}
	// AllTable4Methods is the row order of Table 4.
	AllTable4Methods = []string{"TEMP", "LR", "GBM", "STNN", "MURAT", "N-st", "N-sp", "N-tp", "N-other", "DeepOD"}
	// EmbeddingVariants are the Table 7 variants.
	EmbeddingVariants = []string{"T-one", "T-day", "T-stamp", "R-one"}
)

// DeepODEstimator adapts core.Model to the models.Trainable interface so
// the harness treats DeepOD and the baselines uniformly.
type DeepODEstimator struct {
	// Label is the reported name ("DeepOD" or an ablation/variant name).
	Label string
	// Cfg is the configuration the model is built from on Train.
	Cfg core.Config
	// EvalEvery/ValSample forward to core.TrainOptions.
	EvalEvery, ValSample int

	model     *core.Model
	stats     *core.TrainStats
	trainTime time.Duration
}

// Name implements models.Estimator.
func (d *DeepODEstimator) Name() string { return d.Label }

// Model returns the trained core model (nil before Train).
func (d *DeepODEstimator) Model() *core.Model { return d.model }

// CoreStats returns the core training statistics (nil before Train).
func (d *DeepODEstimator) CoreStats() *core.TrainStats { return d.stats }

// Train implements models.Trainable. The model needs the road network; the
// Suite sets it via the graph captured in Cfg construction — so Train here
// requires that d.model was pre-built by NewDeepODEstimator.
func (d *DeepODEstimator) Train(train, valid []traj.TripRecord) error {
	if d.model == nil {
		return fmt.Errorf("experiments: DeepODEstimator %q not built", d.Label)
	}
	start := time.Now()
	stats, err := d.model.Train(train, valid, core.TrainOptions{
		EvalEvery: d.EvalEvery,
		ValSample: d.ValSample,
	})
	if err != nil {
		return err
	}
	d.stats = stats
	d.trainTime = time.Since(start)
	return nil
}

// Estimate implements models.Estimator.
func (d *DeepODEstimator) Estimate(od *traj.MatchedOD) float64 {
	return d.model.Estimate(od)
}

// SizeBytes implements models.Trainable.
func (d *DeepODEstimator) SizeBytes() int { return d.model.Params().SizeBytes() }

// TrainTime implements models.Trainable.
func (d *DeepODEstimator) TrainTime() time.Duration { return d.trainTime }

// Stats converts the core curve into the shared models.DeepStats form.
func (d *DeepODEstimator) Stats() *models.DeepStats {
	if d.stats == nil {
		return nil
	}
	ds := &models.DeepStats{
		Steps:         d.stats.Steps,
		Elapsed:       d.stats.Elapsed,
		ConvergedStep: d.stats.ConvergedStep,
		ConvergedAt:   d.stats.ConvergedAt,
		FinalValMAE:   d.stats.FinalValMAE,
	}
	for _, p := range d.stats.Curve {
		ds.Curve = append(ds.Curve, models.StepPoint{Step: p.Step, ValMAE: p.ValMAE})
	}
	return ds
}

// NewDeepODEstimator builds a DeepOD adapter over a world with the scale's
// base config, applying mod (which may be nil) for ablations and variants.
func NewDeepODEstimator(label string, w *World, sc Scale, mod func(*core.Config)) (*DeepODEstimator, error) {
	cfg := sc.Cfg
	if mod != nil {
		mod(&cfg)
	}
	m, err := core.New(cfg, w.Graph)
	if err != nil {
		return nil, err
	}
	return &DeepODEstimator{Label: label, Cfg: cfg, model: m, EvalEvery: sc.EvalEvery}, nil
}

// variantMod returns the config modifier for a named method ("DeepOD",
// ablations, embedding variants), or an error for unknown names.
func variantMod(name string) (func(*core.Config), error) {
	switch name {
	case "DeepOD":
		return nil, nil
	case "N-st":
		return func(c *core.Config) { c.NoTrajectory = true }, nil
	case "N-sp":
		return func(c *core.Config) { c.NoSpatial = true }, nil
	case "N-tp":
		return func(c *core.Config) { c.NoTemporal = true }, nil
	case "N-other":
		return func(c *core.Config) { c.NoExternal = true }, nil
	case "T-one":
		return func(c *core.Config) { c.TimeInit = core.TimeOneHot }, nil
	case "T-day":
		return func(c *core.Config) { c.TimeInit = core.TimeDayGraph }, nil
	case "T-stamp":
		return func(c *core.Config) { c.TimeInit = core.TimeStamp }, nil
	case "R-one":
		return func(c *core.Config) { c.RoadInit = core.RoadOneHot }, nil
	}
	return nil, fmt.Errorf("experiments: unknown DeepOD variant %q", name)
}

// Suite caches built worlds and trained models so experiments that share a
// (city, method) pair — Tables 4 and 5, Figures 11–13 — train only once.
type Suite struct {
	Scale  Scale
	worlds map[string]*World
	models map[string]models.Trainable // key: city + "/" + method
}

// NewSuite creates an empty suite at the given scale.
func NewSuite(sc Scale) *Suite {
	return &Suite{
		Scale:  sc,
		worlds: make(map[string]*World),
		models: make(map[string]models.Trainable),
	}
}

// World returns (building and caching) the world for a city.
func (s *Suite) World(city string) (*World, error) {
	if w, ok := s.worlds[city]; ok {
		return w, nil
	}
	w, err := BuildWorld(city, s.Scale)
	if err != nil {
		return nil, err
	}
	s.worlds[city] = w
	return w, nil
}

// newUntrained constructs an untrained model for a method name.
func (s *Suite) newUntrained(method string, w *World) (models.Trainable, error) {
	switch method {
	case "TEMP":
		return models.NewTEMP(w.Graph), nil
	case "LR":
		return models.NewLinReg(w.Graph), nil
	case "GBM":
		return models.NewGBM(w.Graph), nil
	case "STNN":
		m := models.NewSTNN(w.Graph)
		m.Hidden = s.Scale.Cfg.Dh
		m.LREvery = s.Scale.Cfg.LREvery
		m.Epochs = s.Scale.Cfg.Epochs
		m.BatchSize = s.Scale.Cfg.BatchSize
		m.EvalEvery = s.Scale.EvalEvery
		return m, nil
	case "MURAT":
		m := models.NewMURAT(w.Graph)
		m.Ds, m.Dt = s.Scale.Cfg.Ds, s.Scale.Cfg.Dt
		m.Hidden = s.Scale.Cfg.Dh
		m.LREvery = s.Scale.Cfg.LREvery
		m.Epochs = s.Scale.Cfg.Epochs
		m.BatchSize = s.Scale.Cfg.BatchSize
		m.EvalEvery = s.Scale.EvalEvery
		m.EmbedWalks = s.Scale.Cfg.EmbedWalks
		return m, nil
	}
	mod, err := variantMod(method)
	if err != nil {
		return nil, err
	}
	return NewDeepODEstimator(method, w, s.Scale, mod)
}

// Model returns (training and caching) the model for (city, method) fitted
// on the city's full training split.
func (s *Suite) Model(city, method string) (models.Trainable, error) {
	key := city + "/" + method
	if m, ok := s.models[key]; ok {
		return m, nil
	}
	w, err := s.World(city)
	if err != nil {
		return nil, err
	}
	m, err := s.newUntrained(method, w)
	if err != nil {
		return nil, err
	}
	if err := m.Train(w.Split.Train, w.Split.Valid); err != nil {
		return nil, fmt.Errorf("experiments: training %s on %s: %w", method, city, err)
	}
	s.models[key] = m
	return m, nil
}

// TestErrors evaluates a trained model on a city's test split, returning
// (actual, predicted) in seconds.
func (s *Suite) TestErrors(city, method string) (actual, predicted []float64, err error) {
	w, err := s.World(city)
	if err != nil {
		return nil, nil, err
	}
	m, err := s.Model(city, method)
	if err != nil {
		return nil, nil, err
	}
	actual = make([]float64, len(w.Split.Test))
	predicted = make([]float64, len(w.Split.Test))
	for i := range w.Split.Test {
		actual[i] = w.Split.Test[i].TravelSec
		predicted[i] = m.Estimate(&w.Split.Test[i].Matched)
	}
	return actual, predicted, nil
}
