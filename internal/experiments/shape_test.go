package experiments

import (
	"math"
	"testing"

	"deepod/internal/metrics"
)

// TestReproductionShape asserts the comparison shape that survives the
// reduction from the paper's data scale (millions of trips, GPU-days) to
// laptop scale (thousands of trips, seconds per model):
//
//   - the network-aware deep models (DeepOD and its N-st ablation) sit on
//     the accuracy frontier — within 10% of the best method overall;
//   - DeepOD clearly beats the weak baselines (LR, TEMP);
//   - every nonlinear method beats LR (the paper's finding 1 for Table 4);
//   - MURAT (network embeddings) beats LR and TEMP.
//
// Orderings *among* the strong methods (DeepOD vs GBM vs STNN vs MURAT) are
// within single-seed noise at this scale and are reported, not asserted;
// EXPERIMENTS.md discusses which of the paper's fine-grained orderings
// reproduce. The run takes ~1 minute on one core; skip with -short.
func TestReproductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	s := NewSuite(ShapeScale())
	city := "chengdu-s"

	methods := []string{"TEMP", "LR", "GBM", "STNN", "MURAT", "DeepOD", "N-st"}
	mape := map[string]float64{}
	best := math.Inf(1)
	for _, method := range methods {
		actual, pred, err := s.TestErrors(city, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		mape[method] = metrics.MAPE(actual, pred)
		if mape[method] < best {
			best = mape[method]
		}
		t.Logf("%-8s MAPE = %.2f%%", method, mape[method]*100)
	}

	mustBeat := func(winner, loser string, margin float64) {
		t.Helper()
		if mape[winner] >= mape[loser]*(1-margin) {
			t.Errorf("%s (%.2f%%) should beat %s (%.2f%%) by >%.0f%%",
				winner, mape[winner]*100, loser, mape[loser]*100, margin*100)
		}
	}
	// Robust orderings from the paper's Table 4.
	mustBeat("DeepOD", "LR", 0.25)
	mustBeat("DeepOD", "TEMP", 0.10)
	mustBeat("GBM", "LR", 0.20)
	mustBeat("STNN", "LR", 0.20)
	mustBeat("MURAT", "LR", 0.20)
	mustBeat("MURAT", "TEMP", 0.0)

	// DeepOD must sit on the accuracy frontier.
	if mape["DeepOD"] > best*1.10 {
		t.Errorf("DeepOD (%.2f%%) is more than 10%% behind the best method (%.2f%%)",
			mape["DeepOD"]*100, best*100)
	}
	// The trajectory machinery must not derail the model: full DeepOD stays
	// within noise of its own N-st ablation (the binding's net benefit
	// needs paper-scale data — DESIGN.md §4, EXPERIMENTS.md).
	if mape["DeepOD"] > mape["N-st"]*1.10 {
		t.Errorf("DeepOD (%.2f%%) is far behind its own ablation N-st (%.2f%%)",
			mape["DeepOD"]*100, mape["N-st"]*100)
	}
}
