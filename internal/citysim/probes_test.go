package citysim

import (
	"math"
	"testing"

	"deepod/internal/roadnet"
)

func probeFixture(t *testing.T) *Traffic {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.SmallCity("probes", 8))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraffic(g, 2*86400, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestProbeStreamWindow(t *testing.T) {
	tr := probeFixture(t)
	ps, err := NewProbeStream(tr, ProbeConfig{Vehicles: 10, PeriodSec: 5, NoiseMeters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probes := ps.Window(1000, 1300)
	if len(probes) == 0 {
		t.Fatal("empty window")
	}
	// Roughly vehicles × window/period reports; allow slack for trip churn.
	want := 10 * 300 / 5
	if len(probes) < want/2 || len(probes) > want*2 {
		t.Fatalf("window yielded %d probes, expected around %d", len(probes), want)
	}
	seen := map[string]int{}
	for i, p := range probes {
		if p.T < 1000 || p.T >= 1300 {
			t.Fatalf("probe at %v outside window", p.T)
		}
		if i > 0 && p.T < probes[i-1].T {
			t.Fatal("window not sorted by time")
		}
		b := tr.Graph().Bounds()
		if p.Pos.X < b.Min.X-100 || p.Pos.X > b.Max.X+100 {
			t.Fatalf("probe far off the map: %+v", p.Pos)
		}
		seen[p.Vehicle]++
	}
	if len(seen) != 10 {
		t.Fatalf("%d vehicles reported, want all 10", len(seen))
	}
}

func TestProbeStreamContinuity(t *testing.T) {
	tr := probeFixture(t)
	ps, err := NewProbeStream(tr, ProbeConfig{Vehicles: 4, PeriodSec: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w1 := ps.Window(0, 100)
	w2 := ps.Window(100, 200)
	if len(w1) == 0 || len(w2) == 0 {
		t.Fatal("empty windows")
	}
	// Per vehicle, timestamps must keep increasing across the boundary and
	// positions must not teleport (continuous cruising).
	lastT := map[string]float64{}
	lastPos := map[string]struct{ x, y float64 }{}
	for _, w := range [][]VehicleProbe{w1, w2} {
		for _, p := range w {
			if prev, ok := lastT[p.Vehicle]; ok {
				if p.T <= prev {
					t.Fatalf("vehicle %s time went %v -> %v", p.Vehicle, prev, p.T)
				}
				lp := lastPos[p.Vehicle]
				d := math.Hypot(p.Pos.X-lp.x, p.Pos.Y-lp.y)
				// 30 m/s hard ceiling plus noise slack.
				if d > 30*(p.T-prev)+100 {
					t.Fatalf("vehicle %s jumped %.0f m in %.0f s", p.Vehicle, d, p.T-prev)
				}
			}
			lastT[p.Vehicle] = p.T
			lastPos[p.Vehicle] = struct{ x, y float64 }{p.Pos.X, p.Pos.Y}
		}
	}
}

func TestProbeStreamDeterministic(t *testing.T) {
	tr := probeFixture(t)
	mk := func() []VehicleProbe {
		ps, err := NewProbeStream(tr, ProbeConfig{Vehicles: 3, PeriodSec: 5, NoiseMeters: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return ps.Window(500, 700)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d differs across identical seeds", i)
		}
	}
}
