package citysim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// OrderConfig parameterizes taxi-order synthesis.
type OrderConfig struct {
	// NumOrders is the number of trips to generate.
	NumOrders int
	// Hotspots is the number of demand hotspots (origins/destinations
	// cluster around them, like railway stations or malls).
	Hotspots int
	// GPSPeriodSec is the sampling period of the synthetic GPS trace
	// (3 s for Chengdu/Xi'an, 60 s for Beijing in the paper).
	GPSPeriodSec float64
	// GPSNoiseMeters perturbs each GPS sample.
	GPSNoiseMeters float64
	// RouteTemp > 0 randomizes route choice: drivers pick approximately
	// shortest time-dependent routes, with per-driver perceived edge costs
	// multiplied by exp(RouteTemp·N(0,1)). Different drivers on the same OD
	// thus take different routes — the multi-route property of Example 1.
	RouteTemp float64
	// MinTripMeters rejects trivially short OD pairs.
	MinTripMeters float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOrderConfig returns settings producing Chengdu-like trips on the
// small synthetic cities.
func DefaultOrderConfig(n int, seed int64) OrderConfig {
	return OrderConfig{
		NumOrders:      n,
		Hotspots:       5,
		GPSPeriodSec:   15,
		GPSNoiseMeters: 8,
		RouteTemp:      0.25,
		MinTripMeters:  600,
		Seed:           seed,
	}
}

// Generator synthesizes taxi orders over a traffic field.
type Generator struct {
	traffic *Traffic
	grid    *SpeedGridder
	cfg     OrderConfig
	rng     *rand.Rand
	spots   []geo.Point
}

// NewGenerator builds an order generator. grid may be nil to skip external
// features.
func NewGenerator(t *Traffic, grid *SpeedGridder, cfg OrderConfig) (*Generator, error) {
	if cfg.NumOrders <= 0 {
		return nil, fmt.Errorf("citysim: NumOrders must be positive, got %d", cfg.NumOrders)
	}
	if cfg.GPSPeriodSec <= 0 {
		return nil, fmt.Errorf("citysim: GPSPeriodSec must be positive, got %v", cfg.GPSPeriodSec)
	}
	gen := &Generator{traffic: t, grid: grid, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	b := t.Graph().Bounds()
	for i := 0; i < cfg.Hotspots; i++ {
		gen.spots = append(gen.spots, geo.Point{
			X: b.Min.X + gen.rng.Float64()*b.Width(),
			Y: b.Min.Y + gen.rng.Float64()*b.Height(),
		})
	}
	return gen, nil
}

// sampleEndpoint picks a position on the network: with probability 0.6 near
// a hotspot, otherwise uniform; the point is then snapped to a random
// nearby edge at a random fraction.
func (gen *Generator) sampleEndpoint() (roadnet.EdgeID, float64) {
	g := gen.traffic.Graph()
	b := g.Bounds()
	var p geo.Point
	if len(gen.spots) > 0 && gen.rng.Float64() < 0.6 {
		s := gen.spots[gen.rng.Intn(len(gen.spots))]
		p = geo.Point{
			X: s.X + gen.rng.NormFloat64()*b.Width()/10,
			Y: s.Y + gen.rng.NormFloat64()*b.Height()/10,
		}
	} else {
		p = geo.Point{X: b.Min.X + gen.rng.Float64()*b.Width(), Y: b.Min.Y + gen.rng.Float64()*b.Height()}
	}
	// Snap: pick the nearest edge by scanning a random sample of edges —
	// cheap and sufficient for synthesis (map matching uses a real index).
	best, bestD := roadnet.EdgeID(0), math.Inf(1)
	bestFrac := 0.5
	for trial := 0; trial < 64; trial++ {
		e := roadnet.EdgeID(gen.rng.Intn(g.NumEdges()))
		a, bb := g.EdgePoints(e)
		_, frac, d := geo.ProjectOnSegment(p, a, bb)
		if d < bestD {
			best, bestD, bestFrac = e, d, frac
		}
	}
	// Keep fractions interior so position ratios are informative.
	bestFrac = 0.1 + 0.8*bestFrac
	return best, bestFrac
}

// sampleDeparture draws a departure time from a demand curve over the
// horizon: weekday rush hours are the most popular departure times.
func (gen *Generator) sampleDeparture() float64 {
	for {
		t := gen.rng.Float64() * gen.traffic.Horizon()
		day := int(t / timeslot.SecondsPerDay)
		secOfDay := t - float64(day)*timeslot.SecondsPerDay
		demand := 0.15 + dayProfile(secOfDay, day%7 >= 5)
		if gen.rng.Float64() < demand {
			return t
		}
	}
}

// Generate synthesizes cfg.NumOrders trip records, sorted by departure
// time. Each record carries the OD input, the matched OD representation,
// the ground-truth trajectory driven through the congestion field, and the
// resulting travel time.
func (gen *Generator) Generate() ([]traj.TripRecord, error) {
	g := gen.traffic.Graph()
	records := make([]traj.TripRecord, 0, gen.cfg.NumOrders)
	for len(records) < gen.cfg.NumOrders {
		oe, of := gen.sampleEndpoint()
		de, df := gen.sampleEndpoint()
		if oe == de {
			continue
		}
		depart := gen.sampleDeparture()

		// Per-driver perceived cost: time-dependent cost with a lognormal
		// per-edge bias, yielding diverse route choices.
		bias := make(map[roadnet.EdgeID]float64)
		cost := gen.traffic.TravelCost()
		perceived := func(e roadnet.EdgeID, at float64) float64 {
			b, ok := bias[e]
			if !ok {
				b = math.Exp(gen.cfg.RouteTemp * gen.rng.NormFloat64())
				bias[e] = b
			}
			return cost(e, at) * b
		}
		path, err := roadnet.ShortestPath(g, g.Edges[oe].To, g.Edges[de].From, depart, perceived)
		if err != nil {
			continue // disconnected pair; resample
		}
		edges := make([]roadnet.EdgeID, 0, len(path.Edges)+2)
		edges = append(edges, oe)
		edges = append(edges, path.Edges...)
		edges = append(edges, de)

		rec, ok := gen.drive(edges, of, df, depart)
		if !ok {
			continue
		}
		if rec.Trajectory.Length(g) < gen.cfg.MinTripMeters {
			continue
		}
		if gen.grid != nil {
			ext := gen.grid.External(depart)
			rec.OD.External = ext
			rec.Matched.External = ext
		}
		records = append(records, rec)
	}
	sortByDeparture(records)
	return records, nil
}

// drive walks the edge sequence through the congestion field, producing the
// ground-truth spatio-temporal path, the travel time, and a noisy GPS trace.
func (gen *Generator) drive(edges []roadnet.EdgeID, originFrac, destFrac, depart float64) (traj.TripRecord, bool) {
	g := gen.traffic.Graph()
	now := depart
	steps := make([]traj.Step, 0, len(edges))
	for i, e := range edges {
		from, to := 0.0, 1.0
		if i == 0 {
			from = originFrac
		}
		if i == len(edges)-1 {
			to = destFrac
		}
		if to <= from { // single-edge trip with dest before origin, or zero span
			if len(edges) == 1 {
				return traj.TripRecord{}, false
			}
			to = from // zero-length crossing; keep interval degenerate
		}
		enter := now
		if i > 0 {
			// Intersection wait before entering the segment.
			now += gen.traffic.EntryWait(e, now)
		}
		dt := gen.traffic.TraverseTime(e, from, to, now)
		steps = append(steps, traj.Step{Edge: e, Enter: enter, Exit: now + dt})
		now += dt
	}
	travel := now - depart
	if travel <= 0 || travel > 3*3600 {
		return traj.TripRecord{}, false
	}

	tr := traj.Trajectory{Path: steps, RStart: originFrac, REnd: 1 - destFrac}
	if err := tr.Validate(g); err != nil {
		return traj.TripRecord{}, false
	}

	origin := g.PointAlongEdge(edges[0], originFrac)
	dest := g.PointAlongEdge(edges[len(edges)-1], destFrac)

	raw := gen.trace(tr)
	return traj.TripRecord{
		OD: traj.ODInput{Origin: origin, Dest: dest, DepartSec: depart},
		Matched: traj.MatchedOD{
			OriginEdge: edges[0], DestEdge: edges[len(edges)-1],
			RStart: originFrac, REnd: 1 - destFrac, DepartSec: depart,
		},
		Trajectory: tr,
		TravelSec:  travel,
		RawPoints:  len(raw.Points),
	}, true
}

// trace samples a noisy GPS trace along the trajectory every GPSPeriodSec.
func (gen *Generator) trace(tr traj.Trajectory) traj.Raw {
	g := gen.traffic.Graph()
	var pts []traj.GPSPoint
	noise := func(p geo.Point) geo.Point {
		return geo.Point{
			X: p.X + gen.rng.NormFloat64()*gen.cfg.GPSNoiseMeters,
			Y: p.Y + gen.rng.NormFloat64()*gen.cfg.GPSNoiseMeters,
		}
	}
	start, end := tr.DepartureTime(), tr.Path[len(tr.Path)-1].Exit
	for t := start; t < end; t += gen.cfg.GPSPeriodSec {
		pts = append(pts, traj.GPSPoint{Pos: noise(tr.PosAt(g, t)), T: t})
	}
	pts = append(pts, traj.GPSPoint{Pos: noise(tr.PosAt(g, end)), T: end})
	return traj.Raw{Points: pts}
}

func sortByDeparture(rs []traj.TripRecord) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].OD.DepartSec < rs[j].OD.DepartSec })
}
