// Package citysim synthesizes the data the paper obtained from ride-hailing
// platforms: a city's time-varying traffic, weather, grid speed matrices,
// and taxi orders (OD input + affiliated GPS trajectory + ground-truth
// travel time). See DESIGN.md §1 for the substitution argument.
//
// The congestion model is multiplicative: the effective speed of edge e at
// time t is FreeSpeed(e) · congestion(e, t), where congestion combines
//   - a smooth time-of-day profile with morning and evening rush hours,
//   - a weekday/weekend distinction (weekly periodicity, Figure 5a),
//   - a per-edge sensitivity (arterials congest more than side streets),
//   - a spatial center-of-town factor (downtown congests more),
//   - a weather slowdown, and
//   - smooth per-edge pseudo-random ripple so distinct edges decorrelate.
//
// All components are deterministic functions of (edge, time, seed), so the
// simulator is reproducible and the FIFO property required by
// time-dependent Dijkstra holds to a good approximation.
package citysim

import (
	"fmt"
	"math"
	"math/rand"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
)

// WeatherTypes is N_wea, the number of weather categories (paper §6.1).
const WeatherTypes = 16

// Traffic is the deterministic congestion + weather field of one city.
type Traffic struct {
	g    *roadnet.Graph
	seed int64

	center     geo.Point
	halfSpan   float64
	edgePhase  []float64 // per-edge ripple phase
	edgeSens   []float64 // per-edge congestion sensitivity
	edgeFactor []float64 // per-edge idiosyncratic speed factor
	entryWait  []float64 // per-edge base intersection wait (seconds)
	weatherSeq []int     // weather type per hour
	horizonSec float64
}

// NewTraffic builds the traffic field for g covering horizon seconds from
// the base timestamp.
func NewTraffic(g *roadnet.Graph, horizon float64, seed int64) (*Traffic, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("citysim: horizon must be positive, got %v", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	b := g.Bounds()
	t := &Traffic{
		g:          g,
		seed:       seed,
		center:     geo.Point{X: (b.Min.X + b.Max.X) / 2, Y: (b.Min.Y + b.Max.Y) / 2},
		halfSpan:   math.Max(b.Width(), b.Height()) / 2,
		edgePhase:  make([]float64, g.NumEdges()),
		edgeSens:   make([]float64, g.NumEdges()),
		horizonSec: horizon,
	}
	t.edgeFactor = make([]float64, g.NumEdges())
	t.entryWait = make([]float64, g.NumEdges())
	for i := range t.edgePhase {
		t.edgePhase[i] = rng.Float64() * 2 * math.Pi
		sens := 0.5 + 0.3*rng.Float64()
		if g.Edges[i].Class == roadnet.Arterial {
			sens += 0.25 // arterials feel rush hour more
		}
		t.edgeSens[i] = sens
		// Idiosyncratic per-segment speed: real road networks have
		// heterogeneous effective speeds (lanes, surface, signals) that
		// Euclidean-distance features cannot see but per-segment
		// representations can. Lognormal, clamped to [0.45, 1.8].
		f := math.Exp(rng.NormFloat64() * 0.35)
		if f < 0.45 {
			f = 0.45
		} else if f > 1.8 {
			f = 1.8
		}
		t.edgeFactor[i] = f
		// Base intersection wait when turning onto this segment: crossing
		// onto an arterial takes longer (signals), and every intersection
		// has its own character.
		wait := 1 + 5*rng.Float64()
		if g.Edges[i].Class == roadnet.Arterial {
			wait += 3
		}
		t.entryWait[i] = wait
	}
	// Weather: a sticky Markov chain over WeatherTypes states sampled per
	// hour. Types 0..7 are "good" (no slowdown), 8..15 increasingly bad.
	hours := int(math.Ceil(horizon/3600)) + 1
	t.weatherSeq = make([]int, hours)
	cur := rng.Intn(8)
	for h := 0; h < hours; h++ {
		if rng.Float64() < 0.15 { // change weather
			if rng.Float64() < 0.7 {
				cur = rng.Intn(8) // good
			} else {
				cur = 8 + rng.Intn(8) // bad
			}
		}
		t.weatherSeq[h] = cur
	}
	return t, nil
}

// Graph returns the underlying road network.
func (t *Traffic) Graph() *roadnet.Graph { return t.g }

// Horizon returns the simulated span in seconds.
func (t *Traffic) Horizon() float64 { return t.horizonSec }

// Weather returns the weather type (0..WeatherTypes-1) at time sec.
func (t *Traffic) Weather(sec float64) int {
	h := int(sec / 3600)
	if h < 0 {
		h = 0
	}
	if h >= len(t.weatherSeq) {
		h = len(t.weatherSeq) - 1
	}
	return t.weatherSeq[h]
}

// weatherSlowdown maps a weather type to a speed multiplier ≤ 1.
func weatherSlowdown(w int) float64 {
	if w < 8 {
		return 1
	}
	return 1 - 0.04*float64(w-7) // up to 32% slowdown in the worst weather
}

// dayProfile is the time-of-day congestion intensity in [0, 1]: two rush
// peaks on weekdays, one flat midday bump on weekends.
func dayProfile(secOfDay float64, weekend bool) float64 {
	h := secOfDay / 3600
	gauss := func(mu, sigma float64) float64 {
		d := (h - mu) / sigma
		return math.Exp(-0.5 * d * d)
	}
	if weekend {
		return 0.45 * gauss(14, 4)
	}
	return 0.9*gauss(8.5, 1.4) + 0.8*gauss(18, 1.7) + 0.25*gauss(13, 3)
}

// Congestion returns the speed multiplier of edge e at time sec, in
// (0.15, 1].
func (t *Traffic) Congestion(e roadnet.EdgeID, sec float64) float64 {
	day := int(sec / timeslot.SecondsPerDay)
	secOfDay := sec - float64(day)*timeslot.SecondsPerDay
	weekend := day%7 >= 5

	intensity := dayProfile(secOfDay, weekend)

	// Downtown factor: edges near the center congest harder.
	a, b := t.g.EdgePoints(e)
	mid := geo.Lerp(a, b, 0.5)
	rel := 1 - math.Min(1, geo.Dist(mid, t.center)/t.halfSpan)
	spatial := 0.6 + 0.4*rel

	// Smooth per-edge ripple, period ~40 min, amplitude 0.1.
	ripple := 0.1 * math.Sin(2*math.Pi*sec/2400+t.edgePhase[e])

	drop := (intensity*t.edgeSens[int(e)]*spatial + ripple) // fraction of speed lost
	if drop < 0 {
		drop = 0
	}
	if drop > 0.85 {
		drop = 0.85
	}
	return (1 - drop) * weatherSlowdown(t.Weather(sec))
}

// Speed returns the effective speed of edge e at time sec in m/s,
// including the edge's idiosyncratic factor.
func (t *Traffic) Speed(e roadnet.EdgeID, sec float64) float64 {
	return t.g.Edges[e].FreeSpeed * t.edgeFactor[e] * t.Congestion(e, sec)
}

// EntryWait returns the intersection wait (seconds) paid when turning onto
// edge e at time sec: the edge's base wait scaled by the time-of-day
// congestion intensity. Waits grow during rush hour — a route crossing many
// signalled intersections degrades more than its length suggests, which is
// route-shape structure only network-aware models can capture.
func (t *Traffic) EntryWait(e roadnet.EdgeID, sec float64) float64 {
	day := int(sec / timeslot.SecondsPerDay)
	secOfDay := sec - float64(day)*timeslot.SecondsPerDay
	intensity := dayProfile(secOfDay, day%7 >= 5)
	return t.entryWait[e] * (0.4 + 1.6*intensity) * weatherSlowdownInv(t.Weather(sec))
}

// weatherSlowdownInv lengthens waits in bad weather.
func weatherSlowdownInv(w int) float64 {
	return 1 / weatherSlowdown(w)
}

// TravelCost returns an EdgeCostFunc backed by this traffic field: the
// intersection entry wait plus the traversal time at entry-time speed.
func (t *Traffic) TravelCost() roadnet.EdgeCostFunc {
	return func(e roadnet.EdgeID, enterSec float64) float64 {
		return t.EntryWait(e, enterSec) + t.g.Edges[e].Length/t.Speed(e, enterSec)
	}
}

// TraverseTime integrates the traversal time of a fraction span
// [fromFrac, toFrac] of edge e entered at enterSec, stepping the congestion
// field every stepSec seconds for accuracy on long segments.
func (t *Traffic) TraverseTime(e roadnet.EdgeID, fromFrac, toFrac, enterSec float64) float64 {
	if toFrac < fromFrac {
		panic(fmt.Sprintf("citysim: TraverseTime spans backwards (%v > %v)", fromFrac, toFrac))
	}
	length := t.g.Edges[e].Length * (toFrac - fromFrac)
	remaining := length
	now := enterSec
	const stepSec = 30.0
	for remaining > 1e-9 {
		v := t.Speed(e, now)
		d := v * stepSec
		if d >= remaining {
			return now + remaining/v - enterSec
		}
		remaining -= d
		now += stepSec
	}
	return now - enterSec
}
