package citysim

import (
	"fmt"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// SpeedGridder computes the paper's traffic-condition feature (§4.5): the
// city area is split into equal square cells and, every Δt, the average
// speed observed in each cell forms a speed matrix; the matrix nearest
// before a departure time is the "current traffic condition".
//
// The paper averages probe speeds from the taxi fleet; our deterministic
// stand-in averages the simulator's effective speed of the edges crossing
// each cell, which is the quantity those probes estimate.
type SpeedGridder struct {
	traffic *Traffic
	grid    *geo.Grid
	// cellEdges[i] lists the edges overlapping cell i.
	cellEdges [][]roadnet.EdgeID
	// PeriodSec is how often a new matrix is produced (the paper's Δt).
	PeriodSec float64

	cache map[int][]float64
}

// NewSpeedGridder builds a gridder with the given cell size (the paper uses
// 200 m) and refresh period in seconds (the paper uses 5 min).
func NewSpeedGridder(t *Traffic, cellMeters, periodSec float64) (*SpeedGridder, error) {
	if periodSec <= 0 {
		return nil, fmt.Errorf("citysim: grid period must be positive, got %v", periodSec)
	}
	g := t.Graph()
	grid, err := geo.NewGrid(g.Bounds(), cellMeters)
	if err != nil {
		return nil, fmt.Errorf("citysim: speed grid: %w", err)
	}
	sg := &SpeedGridder{
		traffic:   t,
		grid:      grid,
		cellEdges: make([][]roadnet.EdgeID, grid.NumCells()),
		PeriodSec: periodSec,
		cache:     make(map[int][]float64),
	}
	for eid := range g.Edges {
		a, b := g.EdgePoints(roadnet.EdgeID(eid))
		steps := int(geo.Dist(a, b)/cellMeters) + 1
		seen := map[int]bool{}
		for s := 0; s <= steps; s++ {
			ci := grid.CellIndex(geo.Lerp(a, b, float64(s)/float64(steps)))
			if !seen[ci] {
				seen[ci] = true
				sg.cellEdges[ci] = append(sg.cellEdges[ci], roadnet.EdgeID(eid))
			}
		}
	}
	return sg, nil
}

// Rows and Cols return the grid dimensions.
func (sg *SpeedGridder) Rows() int { return sg.grid.Rows }
func (sg *SpeedGridder) Cols() int { return sg.grid.Cols }

// MatrixAt returns the speed matrix (row-major Rows×Cols, m/s, 0 for empty
// cells) nearest before time sec. Matrices are cached per period index.
func (sg *SpeedGridder) MatrixAt(sec float64) []float64 {
	period := int(sec / sg.PeriodSec)
	if m, ok := sg.cache[period]; ok {
		return m
	}
	at := float64(period) * sg.PeriodSec
	m := make([]float64, sg.grid.NumCells())
	for ci, edges := range sg.cellEdges {
		if len(edges) == 0 {
			continue
		}
		var s float64
		for _, e := range edges {
			s += sg.traffic.Speed(e, at)
		}
		m[ci] = s / float64(len(edges))
	}
	sg.cache[period] = m
	return m
}

// External builds the full external-feature bundle (weather + traffic
// condition) for a departure time.
func (sg *SpeedGridder) External(sec float64) *traj.ExternalFeatures {
	return &traj.ExternalFeatures{
		Weather:   sg.traffic.Weather(sec),
		SpeedGrid: sg.MatrixAt(sec),
		GridRows:  sg.grid.Rows,
		GridCols:  sg.grid.Cols,
	}
}
