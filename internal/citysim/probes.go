package citysim

import (
	"fmt"
	"math/rand"
	"sort"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// ProbeConfig parameterizes the GPS probe firehose simulator: a fleet of
// vehicles cruising the city through the congestion field, each reporting a
// noisy position every PeriodSec. It feeds `ttebench -ingestbench` and the
// traffic end-to-end tests with the same workload shape a real probe feed
// would have.
type ProbeConfig struct {
	// Vehicles is the fleet size.
	Vehicles int
	// PeriodSec is each vehicle's reporting period (default 5).
	PeriodSec float64
	// NoiseMeters perturbs each report (default 8, like order traces).
	NoiseMeters float64
	// Seed drives all randomness.
	Seed int64
}

// VehicleProbe is one simulated GPS report.
type VehicleProbe struct {
	Vehicle string
	Pos     geo.Point
	T       float64
}

// vehicleState is one cruising vehicle: its current trip and sample cursor.
type vehicleState struct {
	id     string
	at     roadnet.VertexID // position when between trips
	trip   traj.Trajectory
	onTrip bool
	nextT  float64 // next report time
}

// ProbeStream simulates the fleet. Vehicles persist across Window calls, so
// consecutive windows form continuous per-vehicle traces (sessions survive);
// jumping far ahead in time simply starts fresh trips.
type ProbeStream struct {
	traffic  *Traffic
	cfg      ProbeConfig
	rng      *rand.Rand
	vehicles []vehicleState
}

// NewProbeStream builds a fleet over the traffic field's network.
func NewProbeStream(t *Traffic, cfg ProbeConfig) (*ProbeStream, error) {
	if cfg.Vehicles <= 0 {
		return nil, fmt.Errorf("citysim: probe fleet needs at least one vehicle, got %d", cfg.Vehicles)
	}
	if cfg.PeriodSec <= 0 {
		cfg.PeriodSec = 5
	}
	if cfg.NoiseMeters < 0 {
		cfg.NoiseMeters = 0
	}
	ps := &ProbeStream{
		traffic: t,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	g := t.Graph()
	for i := 0; i < cfg.Vehicles; i++ {
		ps.vehicles = append(ps.vehicles, vehicleState{
			id: fmt.Sprintf("veh-%05d", i),
			at: roadnet.VertexID(ps.rng.Intn(g.NumVertices())),
		})
	}
	return ps, nil
}

// Window returns every probe with T in [fromSec, toSec), sorted by T.
// Vehicles idle before fromSec fast-forward to it (a fresh trip begins
// there); vehicles mid-trip continue where the last window left them.
func (ps *ProbeStream) Window(fromSec, toSec float64) []VehicleProbe {
	g := ps.traffic.Graph()
	var out []VehicleProbe
	for vi := range ps.vehicles {
		v := &ps.vehicles[vi]
		if v.nextT < fromSec {
			// Idle gap (first window, or the caller skipped ahead): restart
			// the vehicle's clock at the window, staggered so the fleet
			// doesn't report in lockstep.
			v.onTrip = false
			v.nextT = fromSec + ps.rng.Float64()*ps.cfg.PeriodSec
		}
		for v.nextT < toSec {
			if !v.onTrip {
				if !ps.startTrip(v, v.nextT) {
					// Stuck vertex (shouldn't happen on generated cities):
					// teleport and retry next window.
					v.at = roadnet.VertexID(ps.rng.Intn(g.NumVertices()))
					v.nextT += ps.cfg.PeriodSec
					continue
				}
			}
			tripEnd := v.trip.Path[len(v.trip.Path)-1].Exit
			if v.nextT > tripEnd {
				// Trip finished between samples; begin the next one from the
				// arrival vertex.
				v.onTrip = false
				v.at = g.Edges[v.trip.Path[len(v.trip.Path)-1].Edge].To
				continue
			}
			p := v.trip.PosAt(g, v.nextT)
			out = append(out, VehicleProbe{
				Vehicle: v.id,
				Pos: geo.Point{
					X: p.X + ps.rng.NormFloat64()*ps.cfg.NoiseMeters,
					Y: p.Y + ps.rng.NormFloat64()*ps.cfg.NoiseMeters,
				},
				T: v.nextT,
			})
			v.nextT += ps.cfg.PeriodSec
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// startTrip routes the vehicle from its current vertex to a random target
// and drives the route through the congestion field starting at depart.
func (ps *ProbeStream) startTrip(v *vehicleState, depart float64) bool {
	g := ps.traffic.Graph()
	cost := ps.traffic.TravelCost()
	for attempt := 0; attempt < 8; attempt++ {
		target := roadnet.VertexID(ps.rng.Intn(g.NumVertices()))
		if target == v.at {
			continue
		}
		path, err := roadnet.ShortestPath(g, v.at, target, depart, cost)
		if err != nil || len(path.Edges) == 0 {
			continue
		}
		now := depart
		steps := make([]traj.Step, 0, len(path.Edges))
		for i, e := range path.Edges {
			enter := now
			if i > 0 {
				now += ps.traffic.EntryWait(e, now)
			}
			dt := ps.traffic.TraverseTime(e, 0, 1, now)
			steps = append(steps, traj.Step{Edge: e, Enter: enter, Exit: now + dt})
			now += dt
		}
		v.trip = traj.Trajectory{Path: steps}
		v.onTrip = true
		return true
	}
	return false
}
