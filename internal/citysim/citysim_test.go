package citysim

import (
	"math"
	"testing"

	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
)

func testCity(t testing.TB) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.SmallCity("sim", 2))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testTraffic(t testing.TB) *Traffic {
	t.Helper()
	tf, err := NewTraffic(testCity(t), 14*timeslot.SecondsPerDay, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tf
}

func TestTrafficValidation(t *testing.T) {
	if _, err := NewTraffic(testCity(t), 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestCongestionBounds(t *testing.T) {
	tf := testTraffic(t)
	g := tf.Graph()
	for e := 0; e < g.NumEdges(); e += 7 {
		for h := 0.0; h < 48; h += 1.5 {
			c := tf.Congestion(roadnet.EdgeID(e), h*3600)
			if c <= 0 || c > 1 {
				t.Fatalf("congestion out of (0,1]: %v at edge %d hour %.1f", c, e, h)
			}
		}
	}
}

func TestRushHourSlowsTraffic(t *testing.T) {
	tf := testTraffic(t)
	g := tf.Graph()
	// Average across edges: 8:30 weekday must be slower than 3:00.
	var rush, night float64
	for e := 0; e < g.NumEdges(); e++ {
		rush += tf.Speed(roadnet.EdgeID(e), 8.5*3600)
		night += tf.Speed(roadnet.EdgeID(e), 3*3600)
	}
	if rush >= night {
		t.Fatalf("rush-hour speed %.1f not below night speed %.1f", rush, night)
	}
}

func TestWeeklyPeriodicity(t *testing.T) {
	tf := testTraffic(t)
	e := roadnet.EdgeID(3)
	// Tuesday 8:30 of week 1 vs week 2 should be similar (same weekday
	// profile, modulo weather and ripple); Tuesday vs Sunday must differ
	// more on average over edges.
	var sameDiff, crossDiff float64
	g := tf.Graph()
	for id := 0; id < g.NumEdges(); id += 3 {
		e = roadnet.EdgeID(id)
		tue1 := tf.Congestion(e, (1*24+8.5)*3600)
		tue2 := tf.Congestion(e, ((7+1)*24+8.5)*3600)
		sun1 := tf.Congestion(e, (6*24+8.5)*3600)
		sameDiff += math.Abs(tue1 - tue2)
		crossDiff += math.Abs(tue1 - sun1)
	}
	if sameDiff >= crossDiff {
		t.Fatalf("weekly periodicity absent: same-day diff %.3f >= cross-day diff %.3f", sameDiff, crossDiff)
	}
}

func TestWeatherDeterministicAndBounded(t *testing.T) {
	tf := testTraffic(t)
	for h := 0; h < 14*24; h += 5 {
		w := tf.Weather(float64(h) * 3600)
		if w < 0 || w >= WeatherTypes {
			t.Fatalf("weather %d out of range", w)
		}
		if w2 := tf.Weather(float64(h) * 3600); w2 != w {
			t.Fatal("weather not deterministic")
		}
	}
}

func TestEntryWaitPositiveAndRushSensitive(t *testing.T) {
	tf := testTraffic(t)
	e := roadnet.EdgeID(5)
	night := tf.EntryWait(e, 3*3600)
	rush := tf.EntryWait(e, 8.5*3600)
	if night <= 0 {
		t.Fatalf("night entry wait %v", night)
	}
	if rush <= night {
		t.Fatalf("rush wait %v not above night wait %v", rush, night)
	}
}

func TestTraverseTimeMatchesSpeed(t *testing.T) {
	tf := testTraffic(t)
	g := tf.Graph()
	e := roadnet.EdgeID(0)
	// At constant conditions (short traversal) time ≈ length/speed.
	at := 3 * 3600.0
	got := tf.TraverseTime(e, 0, 1, at)
	want := g.Edges[e].Length / tf.Speed(e, at)
	if math.Abs(got-want) > want*0.2 {
		t.Fatalf("TraverseTime %v, naive %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards span accepted")
		}
	}()
	tf.TraverseTime(e, 0.8, 0.2, at)
}

func TestSpeedGridder(t *testing.T) {
	tf := testTraffic(t)
	sg, err := NewSpeedGridder(tf, 300, 900)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Rows() <= 0 || sg.Cols() <= 0 {
		t.Fatal("degenerate grid")
	}
	m := sg.MatrixAt(10 * 3600)
	if len(m) != sg.Rows()*sg.Cols() {
		t.Fatalf("matrix size %d, want %d", len(m), sg.Rows()*sg.Cols())
	}
	var positive int
	for _, v := range m {
		if v < 0 {
			t.Fatalf("negative speed %v", v)
		}
		if v > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("speed matrix is all zeros")
	}
	// Same period → cached, identical slice.
	m2 := sg.MatrixAt(10*3600 + 100)
	if &m[0] != &m2[0] {
		t.Fatal("matrix not cached within a period")
	}
	ext := sg.External(10 * 3600)
	if ext.GridRows != sg.Rows() || ext.GridCols != sg.Cols() || len(ext.SpeedGrid) != len(m) {
		t.Fatalf("external features inconsistent: %+v", ext)
	}
	if _, err := NewSpeedGridder(tf, 300, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestGenerateOrders(t *testing.T) {
	tf := testTraffic(t)
	sg, err := NewSpeedGridder(tf, 300, 900)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(tf, sg, DefaultOrderConfig(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 60 {
		t.Fatalf("generated %d records, want 60", len(recs))
	}
	g := tf.Graph()
	for i := range recs {
		r := &recs[i]
		if err := r.Trajectory.Validate(g); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.TravelSec <= 0 || r.TravelSec > 3*3600 {
			t.Fatalf("record %d travel time %v", i, r.TravelSec)
		}
		if math.Abs(r.Trajectory.TravelTime()-r.TravelSec) > 1e-6 {
			t.Fatalf("record %d: trajectory duration %v != travel time %v",
				i, r.Trajectory.TravelTime(), r.TravelSec)
		}
		if r.Matched.OriginEdge != r.Trajectory.Path[0].Edge {
			t.Fatalf("record %d: matched origin edge mismatch", i)
		}
		if r.OD.External == nil || len(r.OD.External.SpeedGrid) == 0 {
			t.Fatalf("record %d missing external features", i)
		}
		if r.RawPoints < 2 {
			t.Fatalf("record %d has %d GPS points", i, r.RawPoints)
		}
		if i > 0 && recs[i].OD.DepartSec < recs[i-1].OD.DepartSec {
			t.Fatal("records not sorted by departure")
		}
		if r.Trajectory.Length(g) < gen.cfg.MinTripMeters {
			t.Fatalf("record %d shorter than MinTripMeters", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tf := testTraffic(t)
	gen1, err := NewGenerator(tf, nil, DefaultOrderConfig(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := gen1.Generate()
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := NewGenerator(tf, nil, DefaultOrderConfig(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := gen2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].TravelSec != r2[i].TravelSec || r1[i].OD.DepartSec != r2[i].OD.DepartSec {
			t.Fatalf("generation not deterministic at record %d", i)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	tf := testTraffic(t)
	bad := DefaultOrderConfig(0, 1)
	if _, err := NewGenerator(tf, nil, bad); err == nil {
		t.Fatal("zero orders accepted")
	}
	bad = DefaultOrderConfig(5, 1)
	bad.GPSPeriodSec = 0
	if _, err := NewGenerator(tf, nil, bad); err == nil {
		t.Fatal("zero GPS period accepted")
	}
}
