package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deepod/internal/obs"
)

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if got := r.Slice(); got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("slice = %v, want [3 4 5]", got)
	}
	if r.At(0) != 3 || r.At(2) != 5 {
		t.Fatalf("At order wrong: %d %d", r.At(0), r.At(2))
	}
}

// fakeClock steps a deterministic clock by the history interval per call
// site that wants a new tick time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestHistory(t *testing.T, reg *obs.Registry, cfg Config) (*History, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.Source = reg
	cfg.Registry = obs.NewRegistry() // keep self-metrics out of the sampled registry
	cfg.Now = clk.now
	h, err := NewHistory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, clk
}

func TestHistoryCounterRateAndDelta(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("tte_test_requests_total", "route", "/estimate")
	h, clk := newTestHistory(t, reg, Config{Interval: 10 * time.Second})

	for i := 0; i < 4; i++ {
		c.Add(20) // +20 per 10s tick → rate 2/s
		h.Tick()
		clk.advance(10 * time.Second)
	}

	res := h.Query("tte_test_requests_total", 0, 0, "rate")
	if len(res.Series) != 1 {
		t.Fatalf("series = %d, want 1: %+v", len(res.Series), res.Series)
	}
	s := res.Series[0]
	if s.Kind != "counter" || s.Agg != "rate" {
		t.Fatalf("kind=%s agg=%s", s.Kind, s.Agg)
	}
	if len(s.Points) != 3 {
		t.Fatalf("rate points = %d, want 3", len(s.Points))
	}
	for _, p := range s.Points {
		if p.V != 2 {
			t.Fatalf("rate = %v, want 2/s (points %+v)", p.V, s.Points)
		}
	}

	del := h.Query(`tte_test_requests_total{route="/estimate"}`, 0, 0, "delta")
	if len(del.Series) != 1 || len(del.Series[0].Points) != 3 || del.Series[0].Points[0].V != 20 {
		t.Fatalf("delta query = %+v", del.Series)
	}
	raw := h.Query("tte_test_requests_total", 0, 0, "value")
	if got := raw.Series[0].Points; len(got) != 4 || got[3].V != 80 {
		t.Fatalf("value query = %+v", got)
	}
}

func TestHistoryGaugeAndHistogramDerived(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("tte_test_depth")
	hist := reg.Histogram("tte_test_seconds", []float64{0.1, 1, 10})
	h, clk := newTestHistory(t, reg, Config{Interval: 10 * time.Second})

	for i := 1; i <= 3; i++ {
		g.Set(float64(i))
		hist.Observe(0.05)
		hist.Observe(0.5)
		h.Tick()
		clk.advance(10 * time.Second)
	}

	gauge := h.Query("tte_test_depth", 0, 0, "")
	if len(gauge.Series) != 1 || gauge.Series[0].Agg != "value" {
		t.Fatalf("gauge query = %+v", gauge.Series)
	}
	if pts := gauge.Series[0].Points; len(pts) != 3 || pts[2].V != 3 {
		t.Fatalf("gauge points = %+v", pts)
	}

	// Bare family name matches all derived lines.
	fam := h.Query("tte_test_seconds", 0, 0, "")
	names := map[string]bool{}
	for _, s := range fam.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"tte_test_seconds:count", "tte_test_seconds:sum", "tte_test_seconds:p50", "tte_test_seconds:p99"} {
		if !names[want] {
			t.Fatalf("derived series %s missing (got %v)", want, names)
		}
	}

	p99 := h.Query("tte_test_seconds:p99", 0, 0, "")
	if len(p99.Series) != 1 || len(p99.Series[0].Points) != 3 {
		t.Fatalf("p99 query = %+v", p99.Series)
	}
	if v := p99.Series[0].Points[0].V; v <= 0.1 || v > 1 {
		t.Fatalf("p99 = %v, want in (0.1, 1]", v)
	}
}

func TestHistoryCoarseTier(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("tte_test_total")
	g := reg.Gauge("tte_test_gauge")
	h, clk := newTestHistory(t, reg, Config{
		Interval: 10 * time.Second, RawPoints: 6, CoarseEvery: 3, CoarsePoints: 10,
	})

	for i := 1; i <= 9; i++ {
		c.Add(1)
		g.Set(float64(i))
		h.Tick()
		clk.advance(10 * time.Second)
	}

	// Range past the raw span (6×10s) selects the coarse tier.
	res := h.Query("tte_test_total", time.Hour, 0, "value")
	if res.Tier != "coarse" {
		t.Fatalf("tier = %s, want coarse", res.Tier)
	}
	pts := res.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("coarse points = %d, want 3 (9 ticks / fold 3)", len(pts))
	}
	// Counters keep the window-end cumulative value: 3, 6, 9.
	if pts[0].V != 3 || pts[2].V != 9 {
		t.Fatalf("coarse counter points = %+v", pts)
	}
	// Gauges average the window: (1+2+3)/3 = 2, then 5, 8.
	gres := h.Query("tte_test_gauge", time.Hour, 0, "")
	gp := gres.Series[0].Points
	if len(gp) != 3 || gp[0].V != 2 || gp[2].V != 8 {
		t.Fatalf("coarse gauge points = %+v", gp)
	}
}

func TestHistoryCardinalityGuard(t *testing.T) {
	reg := obs.NewRegistry()
	h, clk := newTestHistory(t, reg, Config{Interval: 10 * time.Second, MaxSeriesPerFamily: 2})

	for i := 0; i < 5; i++ {
		reg.Counter("tte_burst_total", "user", fmt.Sprint(i)).Add(10)
	}
	h.Tick()
	clk.advance(10 * time.Second)
	for i := 0; i < 5; i++ {
		reg.Counter("tte_burst_total", "user", fmt.Sprint(i)).Add(10)
	}
	h.Tick()

	res := h.Query("tte_burst_total", 0, 0, "value")
	var overflow *QuerySeries
	tracked := 0
	for i := range res.Series {
		s := &res.Series[i]
		if s.ID == `tte_burst_total{overflow="true"}` {
			overflow = s
		} else {
			tracked++
		}
	}
	if tracked != 2 {
		t.Fatalf("tracked label sets = %d, want 2 (cap)", tracked)
	}
	if overflow == nil {
		t.Fatal("no overflow series")
	}
	// 3 capped children × cumulative 10 then 20.
	if pts := overflow.Points; len(pts) != 2 || pts[0].V != 30 || pts[1].V != 60 {
		t.Fatalf("overflow points = %+v", overflow.Points)
	}
	if got := h.HistoryStats().DroppedSeries; got != 3 {
		t.Fatalf("dropped series = %d, want 3", got)
	}
}

func TestHistoryExemplarHarvest(t *testing.T) {
	obs.SetExemplars(true)
	defer obs.SetExemplars(false)

	reg := obs.NewRegistry()
	hist := reg.Histogram("tte_test_seconds", []float64{1}, "route", "/x")
	h, clk := newTestHistory(t, reg, Config{Interval: 10 * time.Second, ExemplarsPerSeries: 4})

	hist.ObserveExemplar(0.5, "0123456789abcdef")
	h.Tick()
	clk.advance(10 * time.Second)
	hist.ObserveExemplar(0.6, "fedcba9876543210")
	h.Tick()

	res := h.Query("tte_test_seconds:p99", 0, 0, "")
	if len(res.Series) != 1 {
		t.Fatalf("series = %+v", res.Series)
	}
	ex := res.Series[0].Exemplars
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2", ex)
	}
	if ex[0].TraceID != "0123456789abcdef" || ex[1].TraceID != "fedcba9876543210" {
		t.Fatalf("exemplar trace ids = %+v", ex)
	}

	// Re-ticking without new observations must not duplicate them.
	clk.advance(10 * time.Second)
	h.Tick()
	res = h.Query("tte_test_seconds:p99", 0, 0, "")
	if got := len(res.Series[0].Exemplars); got != 2 {
		t.Fatalf("exemplars after idle tick = %d, want 2", got)
	}
}

func TestHistoryHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("tte_test_total").Add(5)
	h, clk := newTestHistory(t, reg, Config{Interval: 10 * time.Second})
	h.Tick()
	clk.advance(10 * time.Second)
	reg.Counter("tte_test_total").Add(5)
	h.Tick()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	rec := get("/debug/metrics/history?series=tte_test_total&agg=delta")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var res QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 || res.Series[0].Points[0].V != 5 {
		t.Fatalf("handler result = %+v", res)
	}

	// Catalog without ?series=.
	var cat struct {
		SeriesIDs []string `json:"series_ids"`
	}
	if err := json.Unmarshal(get("/debug/metrics/history").Body.Bytes(), &cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.SeriesIDs) == 0 || cat.SeriesIDs[0] != "tte_test_total" {
		t.Fatalf("catalog = %+v", cat.SeriesIDs)
	}

	if rec := get("/debug/metrics/history?series=x&range=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad range status = %d", rec.Code)
	}
	if rec := get("/debug/metrics/history?series=x&agg=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad agg status = %d", rec.Code)
	}
}

func TestHistoryStartClose(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("tte_test_total").Add(1)
	h, err := NewHistory(Config{
		Interval: time.Millisecond, Source: reg, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	h.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for h.HistoryStats().Series == 0 {
		select {
		case <-deadline:
			t.Fatal("sampler never ticked")
		case <-time.After(5 * time.Millisecond):
		}
	}
	h.Close()
	h.Close() // idempotent
}
