package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deepod/internal/obs"
)

// ExportConfig assembles an Exporter.
type ExportConfig struct {
	// Endpoint is the collector URL batches are POSTed to. Required.
	Endpoint string
	// Interval is the collection period (default 15s).
	Interval time.Duration
	// Timeout bounds each POST (default 5s).
	Timeout time.Duration
	// QueueBatches bounds the send queue (default 8). When the sink is
	// slower than collection the OLDEST queued batch is shed — fresh
	// telemetry beats stale telemetry — and the shed is counted in
	// tte_telemetry_export_batches_total{result="dropped"}.
	QueueBatches int
	// MaxAttempts bounds tries per batch including the first (default 5);
	// a batch exhausting them is counted failed and dropped.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential retry backoff
	// (defaults 250ms and 10s); each sleep is jittered ±50%.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Service names the process in the OTLP resource (default "tteserve").
	Service string
	// Instance distinguishes processes (optional; e.g. host:port).
	Instance string
	// History is the sampler batches are drained from. Required.
	History *History
	// Registry receives tte_telemetry_export_* self-metrics (default the
	// History's registry).
	Registry *obs.Registry
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Logger receives lifecycle lines (nil logs nowhere).
	Logger *slog.Logger
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Exporter ships history deltas to a collector: a collect goroutine drains
// CollectSince on an interval into a bounded queue, and a sender goroutine
// POSTs OTLP-shaped JSON with exponential backoff + jitter. Both shed
// rather than block — a down collector costs dropped batches (counted),
// never memory growth or a stuck serve path.
type Exporter struct {
	cfg ExportConfig
	now func() time.Time

	queue chan exportBatch

	stop    chan struct{}
	done    chan struct{}
	startMu sync.Mutex
	started bool

	mu      sync.Mutex
	cursor  int64
	lastErr string

	batchesOK   *obs.Counter
	batchesFail *obs.Counter
	batchesDrop *obs.Counter
	points      *obs.Counter
	retries     *obs.Counter
	queueDepth  *obs.Gauge
	lastOK      *obs.Gauge
}

type exportBatch struct {
	body   []byte
	points int
}

// NewExporter validates cfg and builds an Exporter (not yet running).
func NewExporter(cfg ExportConfig) (*Exporter, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("telemetry: ExportConfig.Endpoint is empty")
	}
	if cfg.History == nil {
		return nil, fmt.Errorf("telemetry: ExportConfig.History is nil")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.QueueBatches <= 0 {
		cfg.QueueBatches = 8
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.Service == "" {
		cfg.Service = "tteserve"
	}
	if cfg.Registry == nil {
		cfg.Registry = cfg.History.cfg.Registry
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_telemetry_export_batches_total", "Export batches by result (ok, failed, dropped).")
	reg.Help("tte_telemetry_export_points_total", "History points delivered to the collector.")
	reg.Help("tte_telemetry_export_retries_total", "Export POST retries.")
	reg.Help("tte_telemetry_export_queue", "Export batches waiting to be sent.")
	reg.Help("tte_telemetry_export_last_success_unix", "Wall time of the last accepted batch.")
	return &Exporter{
		cfg:         cfg,
		now:         cfg.Now,
		queue:       make(chan exportBatch, cfg.QueueBatches),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		batchesOK:   reg.Counter("tte_telemetry_export_batches_total", "result", "ok"),
		batchesFail: reg.Counter("tte_telemetry_export_batches_total", "result", "failed"),
		batchesDrop: reg.Counter("tte_telemetry_export_batches_total", "result", "dropped"),
		points:      reg.Counter("tte_telemetry_export_points_total"),
		retries:     reg.Counter("tte_telemetry_export_retries_total"),
		queueDepth:  reg.Gauge("tte_telemetry_export_queue"),
		lastOK:      reg.Gauge("tte_telemetry_export_last_success_unix"),
	}, nil
}

// Start launches the collect and send loops. Safe to call once.
func (x *Exporter) Start() {
	x.startMu.Lock()
	defer x.startMu.Unlock()
	if x.started {
		return
	}
	x.started = true
	if x.cfg.Logger != nil {
		x.cfg.Logger.Info("telemetry exporter running",
			"endpoint", x.cfg.Endpoint, "interval", x.cfg.Interval,
			"queue", x.cfg.QueueBatches)
	}
	senderDone := make(chan struct{})
	go func() { // sender
		defer close(senderDone)
		for {
			select {
			case <-x.stop:
				return
			case b := <-x.queue:
				x.queueDepth.Set(float64(len(x.queue)))
				x.send(b)
			}
		}
	}()
	go func() { // collector
		defer close(x.done)
		defer func() { <-senderDone }()
		tick := time.NewTicker(x.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				x.Collect()
			case <-x.stop:
				return
			}
		}
	}()
}

// Close stops both loops and returns once they have exited (idempotent).
// Queued batches are abandoned — shutdown never blocks on a dead sink.
func (x *Exporter) Close() {
	x.startMu.Lock()
	defer x.startMu.Unlock()
	if !x.started {
		return
	}
	x.started = false
	close(x.stop)
	<-x.done
	x.stop = make(chan struct{})
	x.done = make(chan struct{})
}

// Collect drains history points past the cursor and enqueues one batch,
// shedding the oldest queued batch when the queue is full. Exposed for
// tests and the serving benchmark; the collect loop calls it on Interval.
func (x *Exporter) Collect() {
	x.mu.Lock()
	deltas, next := x.cfg.History.CollectSince(x.cursor)
	x.cursor = next
	x.mu.Unlock()
	if len(deltas) == 0 {
		return
	}
	body, n := x.encode(deltas)
	b := exportBatch{body: body, points: n}
	for {
		select {
		case x.queue <- b:
			x.queueDepth.Set(float64(len(x.queue)))
			return
		default:
		}
		select {
		case <-x.queue:
			// Shed the oldest batch to make room for the fresh one.
			x.batchesDrop.Inc()
		default:
		}
	}
}

// send POSTs one batch with bounded retries and jittered exponential
// backoff, abandoning it (counted failed) after MaxAttempts or on Close.
func (x *Exporter) send(b exportBatch) {
	backoff := x.cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		err := x.post(b.body)
		if err == nil {
			x.batchesOK.Inc()
			x.points.Add(uint64(b.points))
			x.lastOK.Set(float64(x.now().Unix()))
			x.mu.Lock()
			x.lastErr = ""
			x.mu.Unlock()
			return
		}
		x.mu.Lock()
		x.lastErr = err.Error()
		x.mu.Unlock()
		if attempt >= x.cfg.MaxAttempts {
			x.batchesFail.Inc()
			if x.cfg.Logger != nil {
				x.cfg.Logger.Warn("telemetry export batch abandoned",
					"attempts", attempt, "err", err)
			}
			return
		}
		x.retries.Inc()
		sleep := time.Duration(float64(backoff) * (0.5 + rand.Float64()))
		if backoff *= 2; backoff > x.cfg.BackoffMax {
			backoff = x.cfg.BackoffMax
		}
		t := time.NewTimer(sleep)
		select {
		case <-x.stop:
			t.Stop()
			x.batchesFail.Inc()
			return
		case <-t.C:
		}
	}
}

func (x *Exporter) post(body []byte) error {
	req, err := http.NewRequest(http.MethodPost, x.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := x.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("collector returned %s", resp.Status)
	}
	return nil
}

// encode renders deltas as one OTLP-shaped JSON document (resourceMetrics
// → scopeMetrics → metrics, sums for counters and gauges for gauges, with
// label attributes and nanosecond timestamps) and returns it with the
// point count.
func (x *Exporter) encode(deltas []SeriesDelta) ([]byte, int) {
	attr := func(k, v string) map[string]any {
		return map[string]any{"key": k, "value": map[string]any{"stringValue": v}}
	}
	resource := []map[string]any{attr("service.name", x.cfg.Service)}
	if x.cfg.Instance != "" {
		resource = append(resource, attr("service.instance.id", x.cfg.Instance))
	}

	// Group series by metric name, preserving first-seen order.
	var names []string
	byName := map[string][]SeriesDelta{}
	for _, d := range deltas {
		if _, ok := byName[d.Name]; !ok {
			names = append(names, d.Name)
		}
		byName[d.Name] = append(byName[d.Name], d)
	}

	var metrics []map[string]any
	points := 0
	for _, name := range names {
		group := byName[name]
		var dps []map[string]any
		for _, d := range group {
			var attrs []map[string]any
			for i := 0; i+1 < len(d.Labels); i += 2 {
				attrs = append(attrs, attr(d.Labels[i], d.Labels[i+1]))
			}
			for _, p := range d.Points {
				dp := map[string]any{
					"timeUnixNano": strconv.FormatInt(p.T*int64(time.Second), 10),
					"asDouble":     p.V,
				}
				if len(attrs) > 0 {
					dp["attributes"] = attrs
				}
				dps = append(dps, dp)
				points++
			}
		}
		m := map[string]any{"name": name}
		if group[0].Kind == "counter" {
			m["sum"] = map[string]any{
				"isMonotonic": true,
				// 2 = cumulative: points carry since-start totals.
				"aggregationTemporality": 2,
				"dataPoints":             dps,
			}
		} else {
			m["gauge"] = map[string]any{"dataPoints": dps}
		}
		metrics = append(metrics, m)
	}

	doc := map[string]any{
		"resourceMetrics": []map[string]any{{
			"resource": map[string]any{"attributes": resource},
			"scopeMetrics": []map[string]any{{
				"scope":   map[string]any{"name": "deepod/internal/telemetry"},
				"metrics": metrics,
			}},
		}},
	}
	body, _ := json.Marshal(doc)
	return body, points
}

// ExportStats summarizes the exporter for the ops dashboard.
type ExportStats struct {
	Endpoint        string  `json:"endpoint"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCap        int     `json:"queue_cap"`
	BatchesOK       uint64  `json:"batches_ok"`
	BatchesFailed   uint64  `json:"batches_failed"`
	BatchesDropped  uint64  `json:"batches_dropped"`
	PointsExported  uint64  `json:"points_exported"`
	Retries         uint64  `json:"retries"`
	LastSuccessUnix float64 `json:"last_success_unix"`
	LastError       string  `json:"last_error,omitempty"`
}

// Stats snapshots the exporter's counters.
func (x *Exporter) Stats() ExportStats {
	x.mu.Lock()
	lastErr := x.lastErr
	x.mu.Unlock()
	return ExportStats{
		Endpoint:        x.cfg.Endpoint,
		QueueDepth:      len(x.queue),
		QueueCap:        cap(x.queue),
		BatchesOK:       x.batchesOK.Value(),
		BatchesFailed:   x.batchesFail.Value(),
		BatchesDropped:  x.batchesDrop.Value(),
		PointsExported:  x.points.Value(),
		Retries:         x.retries.Value(),
		LastSuccessUnix: x.lastOK.Value(),
		LastError:       lastErr,
	}
}
