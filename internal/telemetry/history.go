package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"deepod/internal/obs"
)

// Config assembles a History sampler.
type Config struct {
	// Interval is the sampling period (default 10s). Sampling happens on a
	// background goroutine; nothing runs on request paths.
	Interval time.Duration
	// RawPoints bounds the fine tier per series (default 360 — one hour at
	// the default interval).
	RawPoints int
	// CoarseEvery folds this many raw intervals into one coarse point
	// (default 12 — two minutes at the default interval). Counters keep
	// the last cumulative value of the window; gauges average over it.
	CoarseEvery int
	// CoarsePoints bounds the coarse tier per series (default 720 — one
	// day at the default interval and fold).
	CoarsePoints int
	// MaxSeriesPerFamily caps tracked label sets per metric family
	// (default 64). Overflowing label sets fold into a synthetic
	// {overflow="true"} series and each newly dropped set increments
	// tte_telemetry_dropped_series_total — history stays bounded even when
	// a label explodes.
	MaxSeriesPerFamily int
	// ExemplarsPerSeries bounds the recent-exemplar ring kept per
	// histogram child (default 8).
	ExemplarsPerSeries int
	// Source is the registry sampled (default obs.Default()).
	Source *obs.Registry
	// Registry receives tte_telemetry_* self-metrics (default Source).
	Registry *obs.Registry
	// Logger receives lifecycle lines (nil logs nowhere).
	Logger *slog.Logger
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Point is one (unix-seconds, value) history sample.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// series is one tracked history line: a family child for counters and
// gauges, or one derived line (:count, :sum, :p50, :p99) of a histogram
// child.
type series struct {
	id     string   // name plus rendered labels — the query identity
	name   string   // family or derived name (tte_http_request_seconds:p99)
	family string   // owning obs family (tte_http_request_seconds)
	kind   string   // "counter" | "gauge"
	labels []string // alternating sorted pairs

	raw    *Ring[Point]
	coarse *Ring[Point]
	// Coarse-tier accumulation across CoarseEvery raw pushes.
	accN    int
	accSum  float64
	accLast Point
}

// exRing keeps a histogram child's most recent exemplars plus the newest
// timestamp already harvested, so each tick only appends new ones.
type exRing struct {
	ring *Ring[obs.Exemplar]
	seen float64
}

// History ticks an obs registry into bounded per-series rings: a raw tier
// at Interval and a coarse tier downsampled by CoarseEvery, both queryable
// through Query / the /debug/metrics/history handler and drainable by the
// push exporter via CollectSince. Construct with NewHistory, start the
// loop with Start, stop with Close; Tick runs one sample synchronously.
type History struct {
	cfg Config
	now func() time.Time

	mu       sync.Mutex
	series   map[string]*series
	order    []string                   // series ids in creation order
	famSets  map[string]map[string]bool // family -> tracked label identities
	famDrops map[string]map[string]bool // family -> dropped label identities
	exes     map[string]*exRing         // histogram child id -> recent exemplars
	lastTick time.Time

	stop    chan struct{}
	done    chan struct{}
	startMu sync.Mutex
	started bool

	ticks   *obs.Counter
	dropped *obs.Counter
	seriesG *obs.Gauge
	tickDur *obs.Histogram
}

// NewHistory validates cfg and builds a History (not yet running).
func NewHistory(cfg Config) (*History, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.RawPoints <= 0 {
		cfg.RawPoints = 360
	}
	if cfg.CoarseEvery <= 0 {
		cfg.CoarseEvery = 12
	}
	if cfg.CoarsePoints <= 0 {
		cfg.CoarsePoints = 720
	}
	if cfg.MaxSeriesPerFamily <= 0 {
		cfg.MaxSeriesPerFamily = 64
	}
	if cfg.ExemplarsPerSeries <= 0 {
		cfg.ExemplarsPerSeries = 8
	}
	if cfg.Source == nil {
		cfg.Source = obs.Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = cfg.Source
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_telemetry_ticks_total", "History sampler ticks.")
	reg.Help("tte_telemetry_series", "History series currently tracked.")
	reg.Help("tte_telemetry_dropped_series_total", "Label sets folded into the overflow series by the cardinality guard.")
	reg.Help("tte_telemetry_tick_seconds", "History sampler tick duration.")
	h := &History{
		cfg:      cfg,
		now:      cfg.Now,
		series:   make(map[string]*series),
		famSets:  make(map[string]map[string]bool),
		famDrops: make(map[string]map[string]bool),
		exes:     make(map[string]*exRing),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		ticks:    reg.Counter("tte_telemetry_ticks_total"),
		dropped:  reg.Counter("tte_telemetry_dropped_series_total"),
		seriesG:  reg.Gauge("tte_telemetry_series"),
		tickDur:  reg.Histogram("tte_telemetry_tick_seconds", []float64{0.0001, 0.001, 0.01, 0.1, 1}),
	}
	return h, nil
}

// Interval returns the sampling period.
func (h *History) Interval() time.Duration { return h.cfg.Interval }

// Start launches the sampling loop. Safe to call once; Close stops it.
func (h *History) Start() {
	h.startMu.Lock()
	defer h.startMu.Unlock()
	if h.started {
		return
	}
	h.started = true
	if h.cfg.Logger != nil {
		h.cfg.Logger.Info("telemetry history running",
			"interval", h.cfg.Interval, "raw_points", h.cfg.RawPoints,
			"coarse_points", h.cfg.CoarsePoints)
	}
	go func() {
		defer close(h.done)
		tick := time.NewTicker(h.cfg.Interval)
		defer tick.Stop()
		h.Tick() // immediate baseline so the first delta has an anchor
		for {
			select {
			case <-tick.C:
				h.Tick()
			case <-h.stop:
				return
			}
		}
	}()
}

// Close stops the loop (idempotent). History remains queryable.
func (h *History) Close() {
	h.startMu.Lock()
	defer h.startMu.Unlock()
	if !h.started {
		return
	}
	h.started = false
	close(h.stop)
	<-h.done
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
}

// seriesID renders name{k="v",...} from sorted pairs — the identity series
// are stored and queried under.
func seriesID(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// labelIdentity is the label set's map key (values joined; names are
// already sorted by Snapshot).
func labelIdentity(labels []string) string { return strings.Join(labels, "\x00") }

// Tick samples the source registry once: every counter and gauge child
// becomes a cumulative/value point, every histogram child four derived
// points (:count, :sum cumulative; :p50, :p99 instant), and histogram
// exemplars newer than the last harvest join the child's exemplar ring.
func (h *History) Tick() {
	start := h.now()
	samples := h.cfg.Source.Snapshot()
	ts := start.Unix()

	// Per-derived-name overflow accumulation for label sets past the cap.
	over := map[string]*overflowAcc{}

	h.mu.Lock()
	h.lastTick = start
	for _, s := range samples {
		switch s.Kind {
		case "counter":
			h.record(s.Name, s.Name, "counter", s.Labels, s.Value, ts, over)
		case "gauge":
			h.record(s.Name, s.Name, "gauge", s.Labels, s.Value, ts, over)
		case "histogram":
			h.record(s.Name, s.Name+":count", "counter", s.Labels, float64(s.Count), ts, over)
			h.record(s.Name, s.Name+":sum", "counter", s.Labels, s.Sum, ts, over)
			// Quantiles are instant per-child lines; there is no meaningful
			// overflow aggregation, so capped label sets just skip them.
			if p50 := s.Quantile(0.5); !math.IsNaN(p50) {
				h.record(s.Name, s.Name+":p50", "gauge", s.Labels, p50, ts, nil)
			}
			if p99 := s.Quantile(0.99); !math.IsNaN(p99) {
				h.record(s.Name, s.Name+":p99", "gauge", s.Labels, p99, ts, nil)
			}
			h.harvestExemplars(s)
		}
	}
	for name, o := range over {
		h.recordTracked(o.family, name, o.kind, []string{"overflow", "true"}, o.v, ts)
	}
	h.seriesG.Set(float64(len(h.series)))
	h.mu.Unlock()

	h.ticks.Inc()
	h.tickDur.Observe(h.now().Sub(start).Seconds())
}

// overflowAcc sums one derived name's capped-label-set observations within
// a tick; cumulative counters sum to a valid cumulative counter, gauges to
// a fleet total.
type overflowAcc struct {
	family string
	kind   string
	v      float64
}

// record routes one observation either into its tracked series or — when
// the family's label-set cap is hit — into the per-name overflow
// accumulator. A nil over map drops capped observations outright
// (quantile lines).
func (h *History) record(family, name, kind string, labels []string, v float64, ts int64, over map[string]*overflowAcc) {
	ident := labelIdentity(labels)
	set := h.famSets[family]
	if set == nil {
		set = make(map[string]bool)
		h.famSets[family] = set
	}
	if !set[ident] {
		if len(set) >= h.cfg.MaxSeriesPerFamily {
			drops := h.famDrops[family]
			if drops == nil {
				drops = make(map[string]bool)
				h.famDrops[family] = drops
			}
			if !drops[ident] {
				drops[ident] = true
				h.dropped.Inc()
				if h.cfg.Logger != nil {
					h.cfg.Logger.Warn("telemetry cardinality guard tripped",
						"family", family, "dropped_sets", len(drops))
				}
			}
			if over != nil {
				o := over[name]
				if o == nil {
					o = &overflowAcc{family: family, kind: kind}
					over[name] = o
				}
				o.v += v
			}
			return
		}
		set[ident] = true
	}
	h.recordTracked(family, name, kind, labels, v, ts)
}

// recordTracked appends one point to a tracked series, creating it on
// first use (overflow series land here directly, exempt from the cap).
func (h *History) recordTracked(family, name, kind string, labels []string, v float64, ts int64) {
	id := seriesID(name, labels)
	sr := h.series[id]
	if sr == nil {
		sr = &series{
			id:     id,
			name:   name,
			family: family,
			kind:   kind,
			labels: append([]string(nil), labels...),
			raw:    NewRing[Point](h.cfg.RawPoints),
			coarse: NewRing[Point](h.cfg.CoarsePoints),
		}
		h.series[id] = sr
		h.order = append(h.order, id)
	}
	p := Point{T: ts, V: v}
	sr.raw.Push(p)
	sr.accN++
	sr.accSum += v
	sr.accLast = p
	if sr.accN >= h.cfg.CoarseEvery {
		cp := sr.accLast // counters: cumulative value at window end
		if sr.kind == "gauge" {
			cp.V = sr.accSum / float64(sr.accN)
		}
		sr.coarse.Push(cp)
		sr.accN, sr.accSum = 0, 0
	}
}

// harvestExemplars appends a histogram child's exemplars newer than the
// previous harvest to its bounded ring.
func (h *History) harvestExemplars(s obs.Sample) {
	if len(s.Exemplars) == 0 {
		return
	}
	id := seriesID(s.Name, s.Labels)
	er := h.exes[id]
	if er == nil {
		er = &exRing{ring: NewRing[obs.Exemplar](h.cfg.ExemplarsPerSeries)}
		h.exes[id] = er
	}
	fresh := make([]obs.Exemplar, 0, 4)
	for _, e := range s.Exemplars {
		if e != nil && e.Unix > er.seen {
			fresh = append(fresh, *e)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Unix < fresh[j].Unix })
	for _, e := range fresh {
		er.ring.Push(e)
		er.seen = e.Unix
	}
}

// QuerySeries is one series' slice of a Query response.
type QuerySeries struct {
	ID     string  `json:"id"`
	Name   string  `json:"name"`
	Kind   string  `json:"kind"` // "counter" | "gauge"
	Agg    string  `json:"agg"`  // "rate" | "delta" | "value"
	Points []Point `json:"points"`
	// Exemplars are recent traced observations of the owning histogram
	// child — their trace IDs resolve in /debug/traces.
	Exemplars []obs.Exemplar `json:"exemplars,omitempty"`
}

// QueryResult is the GET /debug/metrics/history payload.
type QueryResult struct {
	IntervalSeconds float64       `json:"interval_seconds"`
	Tier            string        `json:"tier"` // "raw" | "coarse"
	Series          []QuerySeries `json:"series"`
}

// Query returns history for every series matching name: an exact series id
// (with labels), a family or derived name (all children), or a bare
// histogram family (all derived lines). rng selects the window ending now
// (0 = the raw tier's full span; longer ranges switch to the coarse tier),
// step thins points to at least that spacing, and agg picks the counter
// reduction — "rate" (default, per-second), "delta", or "value"
// (cumulative). Gauges always return values.
func (h *History) Query(name string, rng, step time.Duration, agg string) QueryResult {
	if agg == "" {
		agg = "rate"
	}
	rawSpan := time.Duration(h.cfg.RawPoints) * h.cfg.Interval
	if rng <= 0 {
		rng = rawSpan
	}
	tier := "raw"
	if rng > rawSpan {
		tier = "coarse"
	}
	now := h.now()
	cutoff := now.Add(-rng).Unix()

	h.mu.Lock()
	defer h.mu.Unlock()
	res := QueryResult{IntervalSeconds: h.cfg.Interval.Seconds(), Tier: tier}
	for _, id := range h.order {
		sr := h.series[id]
		if !matchSeries(sr, name) {
			continue
		}
		r := sr.raw
		if tier == "coarse" {
			r = sr.coarse
		}
		pts := make([]Point, 0, r.Len())
		for i := 0; i < r.Len(); i++ {
			if p := r.At(i); p.T >= cutoff {
				pts = append(pts, p)
			}
		}
		qs := QuerySeries{ID: sr.id, Name: sr.name, Kind: sr.kind, Agg: "value"}
		if sr.kind == "counter" && (agg == "rate" || agg == "delta") {
			qs.Agg = agg
			pts = reduceCounter(pts, agg)
		}
		qs.Points = thin(pts, step)
		if er := h.exes[seriesID(sr.family, sr.labels)]; er != nil {
			qs.Exemplars = er.ring.Slice()
		}
		res.Series = append(res.Series, qs)
	}
	return res
}

// matchSeries reports whether sr answers a query for name.
func matchSeries(sr *series, name string) bool {
	return sr.id == name || sr.name == name || sr.family == name ||
		strings.HasPrefix(sr.id, name+"{")
}

// reduceCounter turns cumulative points into deltas or per-second rates
// between consecutive points, clamping negatives (counter resets) to zero.
func reduceCounter(pts []Point, agg string) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d < 0 {
			d = 0
		}
		if agg == "rate" {
			if dt := pts[i].T - pts[i-1].T; dt > 0 {
				d /= float64(dt)
			}
		}
		out = append(out, Point{T: pts[i].T, V: d})
	}
	return out
}

// thin drops points closer than step to the previously kept one.
func thin(pts []Point, step time.Duration) []Point {
	sec := int64(step / time.Second)
	if sec <= 1 || len(pts) == 0 {
		return pts
	}
	out := pts[:0:0]
	var last int64 = math.MinInt64
	for _, p := range pts {
		if p.T >= last+sec {
			out = append(out, p)
			last = p.T
		}
	}
	return out
}

// SeriesIDs lists every tracked series id, sorted — the catalog the
// history endpoint serves when no series is named.
func (h *History) SeriesIDs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]string(nil), h.order...)
	sort.Strings(out)
	return out
}

// SeriesDelta is one series' raw-tier points newer than an export cursor.
type SeriesDelta struct {
	ID     string
	Name   string
	Kind   string
	Labels []string
	Points []Point
}

// CollectSince drains raw-tier points with T > since for every series and
// returns them with the next cursor (the newest timestamp seen, or since
// when nothing is newer). The exporter calls this on its own interval.
func (h *History) CollectSince(since int64) ([]SeriesDelta, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	next := since
	var out []SeriesDelta
	for _, id := range h.order {
		sr := h.series[id]
		var pts []Point
		for i := 0; i < sr.raw.Len(); i++ {
			if p := sr.raw.At(i); p.T > since {
				pts = append(pts, p)
				if p.T > next {
					next = p.T
				}
			}
		}
		if len(pts) > 0 {
			out = append(out, SeriesDelta{
				ID: sr.id, Name: sr.name, Kind: sr.kind,
				Labels: sr.labels, Points: pts,
			})
		}
	}
	return out, next
}

// Stats summarizes the sampler for the ops dashboard.
type Stats struct {
	IntervalSeconds float64   `json:"interval_seconds"`
	Series          int       `json:"series"`
	RawPoints       int       `json:"raw_points"`
	CoarsePoints    int       `json:"coarse_points"`
	LastTick        time.Time `json:"last_tick"`
	DroppedSeries   uint64    `json:"dropped_series"`
}

// HistoryStats snapshots the sampler's shape and health.
func (h *History) HistoryStats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		IntervalSeconds: h.cfg.Interval.Seconds(),
		Series:          len(h.series),
		RawPoints:       h.cfg.RawPoints,
		CoarsePoints:    h.cfg.CoarsePoints,
		LastTick:        h.lastTick,
		DroppedSeries:   h.dropped.Value(),
	}
}

// Handler serves GET /debug/metrics/history. ?series= selects by id,
// family or derived name; ?range= and ?step= are Go durations; ?agg= is
// rate|delta|value. Without ?series= the response is the series catalog.
func (h *History) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		q := r.URL.Query()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		name := q.Get("series")
		if name == "" {
			_ = enc.Encode(map[string]any{"series_ids": h.SeriesIDs(), "stats": h.HistoryStats()})
			return
		}
		var rng, step time.Duration
		if s := q.Get("range"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad range: %v", err), http.StatusBadRequest)
				return
			}
			rng = d
		}
		if s := q.Get("step"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad step: %v", err), http.StatusBadRequest)
				return
			}
			step = d
		}
		agg := q.Get("agg")
		switch agg {
		case "", "rate", "delta", "value":
		default:
			http.Error(w, "bad agg: want rate, delta or value", http.StatusBadRequest)
			return
		}
		_ = enc.Encode(h.Query(name, rng, step, agg))
	})
}
