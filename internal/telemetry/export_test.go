package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/obs"
)

// sink is an in-process collector recording every accepted batch. fail,
// while set, rejects POSTs with 503 — the flapping-collector lever.
type sink struct {
	mu       sync.Mutex
	bodies   [][]byte
	fail     atomic.Bool
	hits     atomic.Int64
	failures atomic.Int64
}

func (s *sink) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		if s.fail.Load() {
			s.failures.Add(1)
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		s.mu.Lock()
		s.bodies = append(s.bodies, body)
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (s *sink) batches() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.bodies...)
}

// metricNames flattens an OTLP-shaped batch into its metric names.
func metricNames(t *testing.T, body []byte) map[string]bool {
	t.Helper()
	var doc struct {
		ResourceMetrics []struct {
			ScopeMetrics []struct {
				Metrics []struct {
					Name  string          `json:"name"`
					Sum   json.RawMessage `json:"sum"`
					Gauge json.RawMessage `json:"gauge"`
				} `json:"metrics"`
			} `json:"scopeMetrics"`
		} `json:"resourceMetrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("batch is not OTLP-shaped JSON: %v\n%s", err, body)
	}
	names := map[string]bool{}
	for _, rm := range doc.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				if m.Sum == nil && m.Gauge == nil {
					t.Fatalf("metric %s has neither sum nor gauge", m.Name)
				}
				names[m.Name] = true
			}
		}
	}
	return names
}

func newTestExporter(t *testing.T, h *History, endpoint string, cfg ExportConfig) *Exporter {
	t.Helper()
	cfg.Endpoint = endpoint
	cfg.History = h
	cfg.Registry = obs.NewRegistry()
	x, err := NewExporter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestExporterRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("tte_rt_requests_total", "route", "/estimate").Add(7)
	reg.Gauge("tte_rt_depth").Set(3)
	reg.Histogram("tte_rt_seconds", []float64{1}).Observe(0.5)

	h, clk := newTestHistory(t, reg, Config{Interval: 10 * time.Second})
	h.Tick()
	clk.advance(10 * time.Second)
	reg.Counter("tte_rt_requests_total", "route", "/estimate").Add(7)
	h.Tick()

	sk := &sink{}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	x := newTestExporter(t, h, srv.URL, ExportConfig{Interval: time.Hour})
	x.Start()
	x.Collect() // drain both ticks now rather than waiting for the interval
	deadline := time.After(5 * time.Second)
	for x.Stats().BatchesOK == 0 {
		select {
		case <-deadline:
			t.Fatalf("batch never delivered: %+v", x.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	x.Close()

	got := sk.batches()
	if len(got) == 0 {
		t.Fatal("sink saw no batches")
	}
	names := metricNames(t, got[0])
	for _, want := range []string{
		"tte_rt_requests_total", "tte_rt_depth",
		"tte_rt_seconds:count", "tte_rt_seconds:p50",
	} {
		if !names[want] {
			t.Fatalf("batch missing series %s (got %v)", want, names)
		}
	}
	st := x.Stats()
	if st.PointsExported == 0 || st.BatchesFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Cursor advanced: nothing new → no new batch.
	x.Collect()
	if got := x.Stats().QueueDepth; got != 0 {
		t.Fatalf("queue depth after no-op collect = %d", got)
	}
}

// TestExporterFlappingSink drives the exporter against a collector that
// alternates between down and up while collection keeps producing batches
// faster than a down sink can absorb: retries and backoff kick in, the
// bounded queue sheds oldest-first with drops counted, delivery resumes
// when the sink heals, and Close joins both goroutines (run under -race;
// a leak would keep the race build's goroutine checker busy forever).
func TestExporterFlappingSink(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("tte_flap_total")
	h, clk := newTestHistory(t, reg, Config{Interval: time.Second})

	sk := &sink{}
	srv := httptest.NewServer(sk.handler())
	defer srv.Close()

	x := newTestExporter(t, h, srv.URL, ExportConfig{
		Interval:     time.Hour, // ticked by hand below
		QueueBatches: 2,
		MaxAttempts:  2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   4 * time.Millisecond,
	})
	x.Start()

	sk.fail.Store(true)
	for i := 0; i < 12; i++ {
		c.Add(1)
		h.Tick()
		clk.advance(time.Second)
		x.Collect()
	}
	// Sink down: retries happened, batches failed or were shed, nothing
	// delivered, queue stayed within its bound.
	deadline := time.After(5 * time.Second)
	for x.Stats().BatchesFailed == 0 {
		select {
		case <-deadline:
			t.Fatalf("no failed batches against a down sink: %+v", x.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	st := x.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	if st.QueueDepth > st.QueueCap {
		t.Fatalf("queue overflowed its bound: %+v", st)
	}
	if st.BatchesOK != 0 {
		t.Fatalf("down sink accepted batches: %+v", st)
	}
	if st.LastError == "" {
		t.Fatalf("no last error recorded: %+v", st)
	}

	// Sink heals: delivery resumes.
	sk.fail.Store(false)
	c.Add(1)
	h.Tick()
	clk.advance(time.Second)
	x.Collect()
	deadline = time.After(5 * time.Second)
	for x.Stats().BatchesOK == 0 {
		select {
		case <-deadline:
			t.Fatalf("delivery never resumed: %+v", x.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	x.Close()
	x.Close() // idempotent

	final := x.Stats()
	if final.BatchesDropped == 0 && final.BatchesFailed == 0 {
		t.Fatalf("flap left no drop/fail evidence: %+v", final)
	}
	if sk.failures.Load() == 0 {
		t.Fatal("sink never rejected a POST")
	}
}

func TestExporterConfigValidation(t *testing.T) {
	h, _ := newTestHistory(t, obs.NewRegistry(), Config{})
	if _, err := NewExporter(ExportConfig{History: h}); err == nil {
		t.Fatal("empty endpoint accepted")
	}
	if _, err := NewExporter(ExportConfig{Endpoint: "http://x"}); err == nil {
		t.Fatal("nil history accepted")
	}
}
