// Package telemetry turns the point-in-time observability surfaces
// (internal/obs metrics, the trace store) into an operable history: a
// sampler that ticks the registry into per-series bounded rings with a raw
// and a downsampled tier, a query endpoint for dashboards, and a push
// exporter that ships history deltas to a central collector. Everything is
// stdlib-only and bounded — a process retains a fixed memory budget of
// history no matter how long it runs or how hot it is scraped.
package telemetry

// Ring is a bounded circular buffer, oldest first. It replaces the private
// point rings that grew independently inside the SLO evaluator — every
// bounded history in the repo (SLO burn windows, metric history tiers,
// exemplar rings) shares this one implementation. Not safe for concurrent
// use; callers guard it with their own lock.
type Ring[T any] struct {
	buf  []T
	head int // index of oldest
	n    int
}

// NewRing returns a ring holding at most capacity elements (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest element when full.
func (r *Ring[T]) Push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// Len returns the number of retained elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// At returns the i-th retained element, oldest first. i must be in
// [0, Len()).
func (r *Ring[T]) At(i int) T { return r.buf[(r.head+i)%len(r.buf)] }

// Slice returns the retained elements oldest first, as a fresh slice.
func (r *Ring[T]) Slice() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}
