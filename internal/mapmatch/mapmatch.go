// Package mapmatch aligns raw GPS trajectories to a road network.
//
// The paper delegates this step to existing map-matching tools (Valhalla);
// here we implement a compact HMM matcher in the style of Newson & Krumm:
// each GPS point emits candidate road segments weighted by a Gaussian of
// the projection distance, transitions are weighted by how well the
// on-network route length agrees with the great-circle distance between
// consecutive points, and the Viterbi algorithm selects the most likely
// segment sequence. Gaps between matched segments are filled with shortest
// paths, and per-segment time intervals are recovered by linear
// interpolation — exactly the construction of the paper's Section 2
// (spatio-temporal paths ⟨eᵢ, [tᵢ[1], tᵢ[−1]]⟩ and position ratios).
package mapmatch

import (
	"context"
	"fmt"
	"math"

	"deepod/internal/geo"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// Config tunes the HMM matcher.
type Config struct {
	// SigmaMeters is the GPS noise standard deviation (emission model).
	SigmaMeters float64
	// BetaMeters scales the transition penalty on route-vs-line mismatch.
	BetaMeters float64
	// MaxCandidates bounds the candidate segments per point.
	MaxCandidates int
	// IndexCellMeters is the spatial index cell size.
	IndexCellMeters float64
}

// DefaultConfig returns parameters that work well for the synthetic cities
// (GPS noise ~10 m, 250 m blocks).
func DefaultConfig() Config {
	return Config{SigmaMeters: 15, BetaMeters: 30, MaxCandidates: 6, IndexCellMeters: 150}
}

// Matcher matches raw trajectories and standalone points to a road network.
type Matcher struct {
	g   *roadnet.Graph
	idx *roadnet.EdgeIndex
	cfg Config
}

// New builds a matcher over g.
func New(g *roadnet.Graph, cfg Config) (*Matcher, error) {
	if cfg.SigmaMeters <= 0 || cfg.BetaMeters <= 0 {
		return nil, fmt.Errorf("mapmatch: sigma and beta must be positive")
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 6
	}
	if cfg.IndexCellMeters <= 0 {
		cfg.IndexCellMeters = 150
	}
	idx, err := roadnet.NewEdgeIndex(g, cfg.IndexCellMeters)
	if err != nil {
		return nil, err
	}
	return &Matcher{g: g, idx: idx, cfg: cfg}, nil
}

// MatchPoint snaps a single point (an OD endpoint) to its best road
// segment, returning the segment and the fraction along it.
func (m *Matcher) MatchPoint(p geo.Point) (roadnet.EdgeID, float64, error) {
	return m.MatchPointCtx(context.Background(), p)
}

// MatchPointCtx is MatchPoint with trace context, so the mapmatch.point
// span keeps its parent link inside a traced request.
func (m *Matcher) MatchPointCtx(ctx context.Context, p geo.Point) (roadnet.EdgeID, float64, error) {
	defer obs.TimeCtx(ctx, "mapmatch.point")()
	c, err := m.idx.NearestEdge(p)
	if err != nil {
		return 0, 0, err
	}
	return c.Edge, c.Frac, nil
}

// Match aligns a raw trajectory to the network and returns the paper's
// trajectory representation (spatio-temporal path + position ratios).
func (m *Matcher) Match(raw *traj.Raw) (traj.Trajectory, error) {
	return m.MatchCtx(context.Background(), raw)
}

// MatchCtx is Match with trace context: the mapmatch.match span and its
// viterbi/assemble children join the caller's trace.
func (m *Matcher) MatchCtx(ctx context.Context, raw *traj.Raw) (traj.Trajectory, error) {
	mctx, span := obs.StartSpan(ctx, "mapmatch.match")
	defer span.End()
	if err := raw.Validate(); err != nil {
		return traj.Trajectory{}, err
	}
	states, err := m.viterbi(mctx, raw.Points)
	if err != nil {
		return traj.Trajectory{}, err
	}
	return m.assemble(mctx, raw.Points, states)
}

type candState struct {
	cand roadnet.Candidate
	// viterbi bookkeeping
	logp float64
	prev int
	// route from the previous chosen candidate (edge ids, excluding the
	// previous candidate's own edge, including this one's).
	route []roadnet.EdgeID
}

// viterbi returns one candidate per GPS point.
func (m *Matcher) viterbi(ctx context.Context, pts []traj.GPSPoint) ([]roadnet.Candidate, error) {
	defer obs.TimeCtx(ctx, "mapmatch.viterbi")()
	sigma2 := 2 * m.cfg.SigmaMeters * m.cfg.SigmaMeters
	prevStates := []candState{}
	allStates := make([][]candState, len(pts))

	for i, pt := range pts {
		cands := m.idx.Nearest(pt.Pos, m.cfg.MaxCandidates)
		if len(cands) == 0 {
			return nil, fmt.Errorf("mapmatch: no candidate segments near point %d", i)
		}
		cur := make([]candState, len(cands))
		for j, c := range cands {
			emit := -c.Dist * c.Dist / sigma2
			if i == 0 {
				cur[j] = candState{cand: c, logp: emit, prev: -1}
				continue
			}
			best := math.Inf(-1)
			bestPrev := -1
			var bestRoute []roadnet.EdgeID
			straight := geo.Dist(pts[i-1].Pos, pt.Pos)
			for pj, ps := range prevStates {
				route, routeLen, ok := m.routeBetween(ps.cand, c)
				if !ok {
					continue
				}
				trans := -math.Abs(routeLen-straight) / m.cfg.BetaMeters
				score := ps.logp + trans + emit
				if score > best {
					best, bestPrev, bestRoute = score, pj, route
				}
			}
			if bestPrev == -1 {
				// No reachable previous candidate; fall back to teleporting
				// with a heavy penalty so matching still completes on
				// degenerate inputs.
				for pj, ps := range prevStates {
					score := ps.logp + emit - 50
					if score > best {
						best, bestPrev, bestRoute = score, pj, []roadnet.EdgeID{c.Edge}
					}
				}
			}
			cur[j] = candState{cand: c, logp: best, prev: bestPrev, route: bestRoute}
		}
		allStates[i] = cur
		prevStates = cur
	}

	// Backtrack.
	last := allStates[len(pts)-1]
	bi, best := 0, math.Inf(-1)
	for j, s := range last {
		if s.logp > best {
			best, bi = s.logp, j
		}
	}
	chosen := make([]roadnet.Candidate, len(pts))
	for i := len(pts) - 1; i >= 0; i-- {
		s := allStates[i][bi]
		chosen[i] = s.cand
		bi = s.prev
	}
	return chosen, nil
}

// routeBetween returns the edge sequence from candidate a to candidate b
// (starting after a's edge unless b is on the same edge), its on-network
// length between the two projected points, and whether a route exists.
func (m *Matcher) routeBetween(a, b roadnet.Candidate) ([]roadnet.EdgeID, float64, bool) {
	ea, eb := m.g.Edges[a.Edge], m.g.Edges[b.Edge]
	if a.Edge == b.Edge {
		if b.Frac >= a.Frac {
			return nil, (b.Frac - a.Frac) * ea.Length, true
		}
		// Moving backwards along a directed edge is impossible; treat as a
		// loop via the network below.
	}
	// Shortest path from the head of a's edge to the tail of b's edge.
	p, err := roadnet.ShortestPath(m.g, ea.To, eb.From, 0, func(e roadnet.EdgeID, _ float64) float64 {
		return m.g.Edges[e].Length // distance-based matching
	})
	if err != nil {
		return nil, 0, false
	}
	length := (1-a.Frac)*ea.Length + p.Cost + b.Frac*eb.Length
	route := append(append([]roadnet.EdgeID(nil), p.Edges...), b.Edge)
	return route, length, true
}

// assemble stitches the chosen candidates into a connected edge sequence
// with linearly interpolated per-segment time intervals.
func (m *Matcher) assemble(ctx context.Context, pts []traj.GPSPoint, chosen []roadnet.Candidate) (traj.Trajectory, error) {
	defer obs.TimeCtx(ctx, "mapmatch.assemble")()
	// Build the full edge sequence with, for each edge, the (time, frac)
	// anchor points we know from GPS samples.
	type anchor struct {
		t    float64
		frac float64
	}
	var edges []roadnet.EdgeID
	anchorsOf := map[int][]anchor{} // index into edges -> anchors

	push := func(e roadnet.EdgeID) int {
		if len(edges) == 0 || edges[len(edges)-1] != e {
			edges = append(edges, e)
		}
		return len(edges) - 1
	}
	idx0 := push(chosen[0].Edge)
	anchorsOf[idx0] = append(anchorsOf[idx0], anchor{t: pts[0].T, frac: chosen[0].Frac})
	for i := 1; i < len(pts); i++ {
		route, _, ok := m.routeBetween(chosen[i-1], chosen[i])
		if !ok {
			route = []roadnet.EdgeID{chosen[i].Edge}
		}
		var li int
		if len(route) == 0 {
			li = push(chosen[i].Edge) // same edge as before
		} else {
			for _, e := range route {
				li = push(e)
			}
		}
		anchorsOf[li] = append(anchorsOf[li], anchor{t: pts[i].T, frac: chosen[i].Frac})
	}

	// Distance from the trajectory start (measured along the edge sequence)
	// of each edge's tail, used to interpolate times for edges without
	// anchors.
	cum := make([]float64, len(edges)+1)
	for i, e := range edges {
		cum[i+1] = cum[i] + m.g.Edges[e].Length
	}
	// Known (distance, time) control points.
	type ctrl struct{ d, t float64 }
	var ctrls []ctrl
	for i := range edges {
		for _, a := range anchorsOf[i] {
			ctrls = append(ctrls, ctrl{d: cum[i] + a.frac*m.g.Edges[edges[i]].Length, t: a.t})
		}
	}
	if len(ctrls) < 2 {
		return traj.Trajectory{}, fmt.Errorf("mapmatch: too few control points to interpolate")
	}
	// Ensure monotone distances (GPS jitter can slightly reorder them).
	for i := 1; i < len(ctrls); i++ {
		if ctrls[i].d < ctrls[i-1].d {
			ctrls[i].d = ctrls[i-1].d
		}
		if ctrls[i].t < ctrls[i-1].t {
			ctrls[i].t = ctrls[i-1].t
		}
	}
	timeAt := func(d float64) float64 {
		if d <= ctrls[0].d {
			return ctrls[0].t
		}
		for i := 1; i < len(ctrls); i++ {
			if d <= ctrls[i].d {
				span := ctrls[i].d - ctrls[i-1].d
				if span <= 0 {
					return ctrls[i].t
				}
				f := (d - ctrls[i-1].d) / span
				return ctrls[i-1].t + f*(ctrls[i].t-ctrls[i-1].t)
			}
		}
		return ctrls[len(ctrls)-1].t
	}

	rStart := chosen[0].Frac
	rEnd := 1 - chosen[len(chosen)-1].Frac
	startD := cum[0] + rStart*m.g.Edges[edges[0]].Length
	endD := cum[len(edges)-1] + chosen[len(chosen)-1].Frac*m.g.Edges[edges[len(edges)-1]].Length

	steps := make([]traj.Step, len(edges))
	for i, e := range edges {
		enterD, exitD := cum[i], cum[i+1]
		if i == 0 {
			enterD = startD
		}
		if i == len(edges)-1 {
			exitD = endD
		}
		steps[i] = traj.Step{Edge: e, Enter: timeAt(enterD), Exit: timeAt(exitD)}
	}
	t := traj.Trajectory{Path: steps, RStart: rStart, REnd: rEnd}
	if err := t.Validate(m.g); err != nil {
		return traj.Trajectory{}, fmt.Errorf("mapmatch: assembled trajectory invalid: %w", err)
	}
	return t, nil
}
