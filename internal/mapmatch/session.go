package mapmatch

// Streaming (sessionized) map matching. The batch matcher (Match) runs full
// Viterbi over a complete trace and pays a Dijkstra per candidate transition
// — fine for offline training data, impossible for a live GPS probe
// firehose. A Session instead decodes one point at a time over a bounded
// candidate frontier with hop-limited local route search: probes arrive
// every few seconds, so consecutive points are on the same or a nearby
// segment and a full shortest-path search buys nothing. Each accepted point
// emits per-segment speed observations (SegObs) — the per-link aggregation
// feeding the traffic store.
//
// A Tracker owns the sessions of many vehicles (keyed by vehicle ID) with
// TTL and capacity eviction. Neither Session nor Tracker is safe for
// concurrent use: the ingest layer routes each vehicle to a fixed worker by
// hash, so all state stays goroutine-confined and lock-free.

import (
	"errors"
	"math"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// Sentinel errors for probe points a session drops without corrupting its
// state. Callers count them; the session remains usable.
var (
	// ErrOutOfOrder means the point's timestamp precedes the session's last
	// accepted point.
	ErrOutOfOrder = errors.New("mapmatch: probe timestamp out of order")
	// ErrDuplicate means the point carries the same timestamp as the last
	// accepted point (retransmitted or duplicated upstream).
	ErrDuplicate = errors.New("mapmatch: duplicate probe timestamp")
)

// SegObs is one per-segment observation emitted by a session: the vehicle
// covered Meters on Edge during [EnterSec, ExitSec]. Meters may be zero
// (a vehicle stopped in traffic is a real 0 m/s observation).
type SegObs struct {
	Edge     roadnet.EdgeID
	EnterSec float64
	ExitSec  float64
	Meters   float64
}

// SpeedMPS returns the observation's mean speed, 0 for degenerate spans.
func (o SegObs) SpeedMPS() float64 {
	if dt := o.ExitSec - o.EnterSec; dt > 0 {
		return o.Meters / dt
	}
	return 0
}

// SessionConfig tunes the incremental decoder. The zero value takes every
// default from the owning Matcher's Config.
type SessionConfig struct {
	// MaxCandidates bounds the decoder frontier per point (default 4; the
	// batch matcher's 6 buys little on streaming data and costs k² route
	// searches per probe).
	MaxCandidates int
	// MaxHops bounds the local route search between consecutive points
	// (default 4 edges). Probes further apart than MaxHops segments
	// re-anchor the session instead of searching the whole network.
	MaxHops int
	// MaxSpeedMPS discards transitions implying impossible speeds
	// (default 50 m/s ≈ 180 km/h): GPS glitches must not poison the
	// per-edge speed statistics.
	MaxSpeedMPS float64
	// MaxExpansions caps route-search work per transition (default 64).
	MaxExpansions int
}

func (c *SessionConfig) fill() {
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 4
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 4
	}
	if c.MaxSpeedMPS <= 0 {
		c.MaxSpeedMPS = 50
	}
	if c.MaxExpansions <= 0 {
		c.MaxExpansions = 64
	}
}

// SessionScratch holds the reusable buffers shared by every session of one
// goroutine (one Tracker). Confined to that goroutine.
type SessionScratch struct {
	near   *roadnet.NearestScratch
	search localSearch
}

// NewSessionScratch builds scratch buffers for sessions of this matcher.
func (m *Matcher) NewSessionScratch() *SessionScratch {
	return &SessionScratch{near: m.idx.NewScratch()}
}

// streamState is one frontier entry: a candidate segment position with its
// cumulative log-probability and the frontier index it chained from.
type streamState struct {
	cand roadnet.Candidate
	logp float64
	prev int // index into the previous frontier; -1 = re-anchored
}

// Session is the incremental matcher state of one vehicle.
type Session struct {
	m       *Matcher
	cfg     SessionConfig
	scr     *SessionScratch
	front   []streamState
	spare   []streamState
	obsBuf  []SegObs
	lastT   float64
	lastPos geo.Point
	started bool
}

// NewSession builds a standalone session with its own scratch buffers. Use
// NewTracker when managing many vehicles: its sessions share one scratch.
func (m *Matcher) NewSession(cfg SessionConfig) *Session {
	return m.newSession(cfg, m.NewSessionScratch())
}

func (m *Matcher) newSession(cfg SessionConfig, scr *SessionScratch) *Session {
	cfg.fill()
	return &Session{m: m, cfg: cfg, scr: scr}
}

// LastSec returns the timestamp of the last accepted point (0 before any).
func (s *Session) LastSec() float64 { return s.lastT }

// Advance feeds the next GPS point of this vehicle and returns the
// per-segment observations implied by the movement since the previous
// point. The returned slice aliases session buffers and is valid only until
// the next Advance. The first point anchors the session and emits nothing;
// points failing validation return ErrOutOfOrder / ErrDuplicate and are
// dropped without touching decoder state.
func (s *Session) Advance(pt traj.GPSPoint) ([]SegObs, error) {
	if s.started {
		if pt.T < s.lastT {
			return nil, ErrOutOfOrder
		}
		if pt.T == s.lastT {
			return nil, ErrDuplicate
		}
	}
	cands := s.m.idx.NearestInto(pt.Pos, s.cfg.MaxCandidates, s.scr.near)
	if len(cands) == 0 {
		// Off-grid point (shouldn't happen inside padded bounds): re-anchor
		// on the next point.
		s.started = false
		return nil, nil
	}
	if !s.started {
		s.anchor(pt, cands)
		return nil, nil
	}

	dt := pt.T - s.lastT
	straight := geo.Dist(s.lastPos, pt.Pos)
	sigma2 := 2 * s.m.cfg.SigmaMeters * s.m.cfg.SigmaMeters

	next := s.spare[:0]
	anyLinked := false
	for _, c := range cands {
		emit := -c.Dist * c.Dist / sigma2
		best := math.Inf(-1)
		bestPrev := -1
		for pj := range s.front {
			ps := &s.front[pj]
			meters, ok := s.routeLen(ps.cand, c)
			if !ok || meters/dt > s.cfg.MaxSpeedMPS {
				continue
			}
			trans := -math.Abs(meters-straight) / s.m.cfg.BetaMeters
			if score := ps.logp + trans + emit; score > best {
				best, bestPrev = score, pj
			}
		}
		if bestPrev == -1 {
			// Unreachable from the whole frontier within MaxHops: keep the
			// candidate alive with a heavy penalty so one glitchy point
			// doesn't kill the session, but emit nothing through it.
			best = s.maxLogp() + emit - 50
		} else {
			anyLinked = true
		}
		next = append(next, streamState{cand: c, logp: best, prev: bestPrev})
	}

	// Decode: emit the winning candidate's transition before the frontier
	// swap invalidates its back pointer.
	obs := s.obsBuf[:0]
	wi := 0
	for i := range next {
		if next[i].logp > next[wi].logp {
			wi = i
		}
	}
	if w := &next[wi]; anyLinked && w.prev >= 0 {
		obs = s.emit(obs, s.front[w.prev].cand, w.cand, s.lastT, pt.T)
	}

	// Renormalize so log-probabilities never drift toward -inf, then swap
	// the double buffer.
	maxL := next[0].logp
	for i := range next {
		if next[i].logp > maxL {
			maxL = next[i].logp
		}
	}
	for i := range next {
		next[i].logp -= maxL
		next[i].prev = -1 // consumed; next step links against this frontier
	}
	s.spare, s.front = s.front, next
	s.lastT, s.lastPos, s.obsBuf = pt.T, pt.Pos, obs
	if !anyLinked {
		// Every candidate teleported: the vehicle jumped (tunnel, outage).
		// The penalized frontier re-anchors matching at the new position.
		s.started = true
	}
	return obs, nil
}

// anchor initializes the frontier from the first (or re-anchoring) point.
func (s *Session) anchor(pt traj.GPSPoint, cands []roadnet.Candidate) {
	sigma2 := 2 * s.m.cfg.SigmaMeters * s.m.cfg.SigmaMeters
	s.front = s.front[:0]
	for _, c := range cands {
		s.front = append(s.front, streamState{cand: c, logp: -c.Dist * c.Dist / sigma2, prev: -1})
	}
	s.lastT, s.lastPos, s.started = pt.T, pt.Pos, true
}

func (s *Session) maxLogp() float64 {
	best := math.Inf(-1)
	for i := range s.front {
		if s.front[i].logp > best {
			best = s.front[i].logp
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// emit appends the per-segment observations of the transition a→b over
// [t0, t1]: a's partial remainder, the intermediate segments of the local
// route, and b's partial prefix, with the time span split proportionally to
// the meters covered on each segment.
func (s *Session) emit(obs []SegObs, a, b roadnet.Candidate, t0, t1 float64) []SegObs {
	g := s.m.g
	type share struct {
		edge   roadnet.EdgeID
		meters float64
	}
	var shares [2 + maxSessionHops]share
	n := 0
	total := 0.0
	push := func(e roadnet.EdgeID, m float64) {
		if n == len(shares) {
			return
		}
		shares[n] = share{e, m}
		n++
		total += m
	}
	if a.Edge == b.Edge && b.Frac >= a.Frac {
		push(a.Edge, (b.Frac-a.Frac)*g.Edges[a.Edge].Length)
	} else {
		route, ok := s.scr.search.route(g, a, b, s.cfg.MaxHops, s.cfg.MaxExpansions)
		if !ok {
			return obs
		}
		push(a.Edge, (1-a.Frac)*g.Edges[a.Edge].Length)
		for _, e := range route {
			push(e, g.Edges[e].Length)
		}
		push(b.Edge, b.Frac*g.Edges[b.Edge].Length)
	}
	dt := t1 - t0
	if total <= 0 {
		// Stationary across an edge boundary artifact: attribute the whole
		// interval to the destination segment as a 0 m/s observation.
		return append(obs, SegObs{Edge: b.Edge, EnterSec: t0, ExitSec: t1})
	}
	now := t0
	for i := 0; i < n; i++ {
		span := dt * shares[i].meters / total
		obs = append(obs, SegObs{Edge: shares[i].edge, EnterSec: now, ExitSec: now + span, Meters: shares[i].meters})
		now += span
	}
	return obs
}

// routeLen returns the on-network meters from candidate a to candidate b
// within the session's hop bound, or ok=false when unreachable.
func (s *Session) routeLen(a, b roadnet.Candidate) (float64, bool) {
	g := s.m.g
	ea := &g.Edges[a.Edge]
	if a.Edge == b.Edge && b.Frac >= a.Frac {
		return (b.Frac - a.Frac) * ea.Length, true
	}
	eb := &g.Edges[b.Edge]
	base := (1-a.Frac)*ea.Length + b.Frac*eb.Length
	if ea.To == eb.From {
		return base, true
	}
	mid, ok := s.scr.search.length(g, ea.To, eb.From, s.cfg.MaxHops, s.cfg.MaxExpansions)
	if !ok {
		return 0, false
	}
	return base + mid, true
}

// maxSessionHops bounds the emit share buffer; MaxHops beyond it would only
// drop intermediate segments from emission, never break matching.
const maxSessionHops = 8

// localSearch is a hop-limited Dijkstra-lite over out-edges with a flat
// expansion list instead of a heap: expansion counts are tiny (≤ tens) and
// linear scans beat allocation. Reused across calls; zero-alloc after warmup.
type localSearch struct {
	nodes []expNode
	out   []roadnet.EdgeID
}

type expNode struct {
	v      roadnet.VertexID
	dist   float64
	parent int32
	via    roadnet.EdgeID
	depth  int8
	done   bool
}

// length returns the shortest on-network meters from vertex `from` to
// vertex `to` within maxHops edges.
func (ls *localSearch) length(g *roadnet.Graph, from, to roadnet.VertexID, maxHops, maxExp int) (float64, bool) {
	i, ok := ls.run(g, from, to, maxHops, maxExp)
	if !ok {
		return 0, false
	}
	return ls.nodes[i].dist, true
}

// route returns the intermediate edge sequence from candidate a's head to
// candidate b's tail (excluding both endpoint edges). The slice aliases the
// scratch and is valid until the next search.
func (ls *localSearch) route(g *roadnet.Graph, a, b roadnet.Candidate, maxHops, maxExp int) ([]roadnet.EdgeID, bool) {
	i, ok := ls.run(g, g.Edges[a.Edge].To, g.Edges[b.Edge].From, maxHops, maxExp)
	if !ok {
		return nil, false
	}
	ls.out = ls.out[:0]
	for j := int32(i); j > 0; j = ls.nodes[j].parent {
		ls.out = append(ls.out, ls.nodes[j].via)
	}
	// Reverse in place: collected tail-first.
	for l, r := 0, len(ls.out)-1; l < r; l, r = l+1, r-1 {
		ls.out[l], ls.out[r] = ls.out[r], ls.out[l]
	}
	return ls.out, true
}

// run expands from `from` until `to` is settled or bounds are hit, returning
// the index of the settled target node.
func (ls *localSearch) run(g *roadnet.Graph, from, to roadnet.VertexID, maxHops, maxExp int) (int, bool) {
	if from == to {
		// Zero-length connection (candidate heads meet); no intermediates.
		ls.nodes = append(ls.nodes[:0], expNode{v: from})
		return 0, true
	}
	ls.nodes = append(ls.nodes[:0], expNode{v: from, parent: -1})
	for {
		// Pick the unsettled node with the smallest distance (linear scan —
		// the list stays tiny under the expansion cap).
		best := -1
		for i := range ls.nodes {
			if !ls.nodes[i].done && (best == -1 || ls.nodes[i].dist < ls.nodes[best].dist) {
				best = i
			}
		}
		if best == -1 {
			return 0, false
		}
		n := &ls.nodes[best]
		n.done = true
		if n.v == to {
			return best, true
		}
		if int(n.depth) >= maxHops || len(ls.nodes) >= maxExp {
			continue
		}
		for _, e := range g.Out(n.v) {
			edge := &g.Edges[e]
			nd := n.dist + edge.Length
			// Dedup by target vertex: keep only the cheaper occurrence.
			seen := false
			for i := range ls.nodes {
				if ls.nodes[i].v == edge.To {
					seen = true
					if !ls.nodes[i].done && nd < ls.nodes[i].dist {
						ls.nodes[i].dist = nd
						ls.nodes[i].parent = int32(best)
						ls.nodes[i].via = e
						ls.nodes[i].depth = n.depth + 1
					}
					break
				}
			}
			if !seen && len(ls.nodes) < maxExp {
				ls.nodes = append(ls.nodes, expNode{
					v: edge.To, dist: nd, parent: int32(best), via: e, depth: n.depth + 1,
				})
				n = &ls.nodes[best] // append may have moved the backing array
			}
		}
	}
}
