package mapmatch

// Tracker multiplexes incremental matching sessions over many vehicles.
// One Tracker is owned by exactly one goroutine (the ingest layer routes
// each vehicle ID to a fixed worker by hash), so sessions share a single
// scratch and nothing locks.

import "deepod/internal/traj"

// TrackerConfig tunes per-vehicle session management.
type TrackerConfig struct {
	// Session configures each vehicle's decoder.
	Session SessionConfig
	// SessionTTLSec evicts a vehicle whose last probe is older than this
	// many sim-seconds at Sweep time (default 300).
	SessionTTLSec float64
	// MaxSessions caps live vehicles; inserting past the cap evicts the
	// vehicle with the oldest last-probe time (default 4096).
	MaxSessions int
}

func (c *TrackerConfig) fill() {
	c.Session.fill()
	if c.SessionTTLSec <= 0 {
		c.SessionTTLSec = 300
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
}

type trackedSession struct {
	s        *Session
	lastSeen float64
}

// Tracker holds the active sessions of one ingest worker.
type Tracker struct {
	m        *Matcher
	cfg      TrackerConfig
	scr      *SessionScratch
	sessions map[string]*trackedSession
	free     []*Session // evicted sessions recycled to keep steady state alloc-free
	evicted  uint64
}

// NewTracker builds a tracker over this matcher's network.
func (m *Matcher) NewTracker(cfg TrackerConfig) *Tracker {
	cfg.fill()
	return &Tracker{
		m:        m,
		cfg:      cfg,
		scr:      m.NewSessionScratch(),
		sessions: make(map[string]*trackedSession),
	}
}

// Advance feeds one probe of the named vehicle, creating its session on
// first sight. Returned observations alias tracker buffers and are valid
// until the vehicle's next Advance.
func (t *Tracker) Advance(vehicle string, pt traj.GPSPoint) ([]SegObs, error) {
	ts, ok := t.sessions[vehicle]
	if !ok {
		if len(t.sessions) >= t.cfg.MaxSessions {
			t.evictOldest()
		}
		var s *Session
		if n := len(t.free); n > 0 {
			s = t.free[n-1]
			t.free = t.free[:n-1]
			s.started = false
		} else {
			s = t.m.newSession(t.cfg.Session, t.scr)
		}
		ts = &trackedSession{s: s}
		t.sessions[vehicle] = ts
	}
	obs, err := ts.s.Advance(pt)
	if err == nil {
		ts.lastSeen = pt.T
	}
	return obs, err
}

// Sweep evicts every session idle longer than the TTL relative to nowSec
// (sim time) and returns how many were dropped.
func (t *Tracker) Sweep(nowSec float64) int {
	n := 0
	for v, ts := range t.sessions {
		if nowSec-ts.lastSeen > t.cfg.SessionTTLSec {
			t.release(v, ts)
			n++
		}
	}
	return n
}

// Sessions returns the number of live vehicle sessions.
func (t *Tracker) Sessions() int { return len(t.sessions) }

// Evicted returns the total sessions dropped by TTL sweeps and cap evictions.
func (t *Tracker) Evicted() uint64 { return t.evicted }

func (t *Tracker) evictOldest() {
	var (
		victim   string
		victimTS *trackedSession
	)
	for v, ts := range t.sessions {
		if victimTS == nil || ts.lastSeen < victimTS.lastSeen {
			victim, victimTS = v, ts
		}
	}
	if victimTS != nil {
		t.release(victim, victimTS)
	}
}

func (t *Tracker) release(vehicle string, ts *trackedSession) {
	delete(t.sessions, vehicle)
	t.evicted++
	if len(t.free) < 64 {
		t.free = append(t.free, ts.s)
	}
}
