package mapmatch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

func TestSessionTracksDrivenRoute(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	p, err := roadnet.ShortestPath(g, 0, roadnet.VertexID(g.NumVertices()-1), 0, roadnet.FreeFlowCost(g))
	if err != nil {
		t.Fatal(err)
	}
	raw := driveRoute(g, p.Edges, 5, rng)

	s := m.NewSession(SessionConfig{})
	driven := map[roadnet.EdgeID]bool{}
	for _, e := range p.Edges {
		driven[e] = true
	}
	var totalMeters, onRoute float64
	for _, pt := range raw.Points {
		obs, err := s.Advance(pt)
		if err != nil {
			t.Fatalf("advance at t=%v: %v", pt.T, err)
		}
		for _, o := range obs {
			if o.ExitSec < o.EnterSec {
				t.Fatalf("observation time-reversed: %+v", o)
			}
			if sp := o.SpeedMPS(); sp > 50 {
				t.Fatalf("implausible speed %v m/s in %+v", sp, o)
			}
			totalMeters += o.Meters
			if driven[o.Edge] {
				onRoute += o.Meters
			}
		}
	}
	var want float64
	for _, e := range p.Edges {
		want += g.Edges[e].Length
	}
	if totalMeters < 0.6*want || totalMeters > 1.4*want {
		t.Fatalf("emitted %.0f m for a %.0f m route", totalMeters, want)
	}
	if frac := onRoute / totalMeters; frac < 0.7 {
		t.Fatalf("only %.0f%% of emitted meters lie on the driven route", frac*100)
	}
}

func TestSessionSpeedsMatchDriving(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	p, err := roadnet.ShortestPath(g, 1, roadnet.VertexID(g.NumVertices()-2), 0, roadnet.FreeFlowCost(g))
	if err != nil {
		t.Fatal(err)
	}
	raw := driveRoute(g, p.Edges, 3, rng) // drives at a constant 10 m/s

	s := m.NewSession(SessionConfig{})
	var meters, secs float64
	for _, pt := range raw.Points {
		obs, err := s.Advance(pt)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			meters += o.Meters
			secs += o.ExitSec - o.EnterSec
		}
	}
	if secs == 0 {
		t.Fatal("no observations emitted")
	}
	if mean := meters / secs; math.Abs(mean-10) > 3 {
		t.Fatalf("mean observed speed %.1f m/s, drove at 10 m/s", mean)
	}
}

func TestSessionRejectsOutOfOrderAndDuplicates(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := roadnet.EdgeID(3)
	at := func(f float64) geo.Point { return g.PointAlongEdge(e, f) }

	s := m.NewSession(SessionConfig{})
	if _, err := s.Advance(traj.GPSPoint{Pos: at(0.1), T: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Advance(traj.GPSPoint{Pos: at(0.3), T: 105}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Advance(traj.GPSPoint{Pos: at(0.2), T: 101}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order point: got %v, want ErrOutOfOrder", err)
	}
	if _, err := s.Advance(traj.GPSPoint{Pos: at(0.3), T: 105}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate point: got %v, want ErrDuplicate", err)
	}
	// The session must survive the bad points and keep matching.
	obs, err := s.Advance(traj.GPSPoint{Pos: at(0.5), T: 110})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Fatal("no observations after recovering from bad points")
	}
	if s.LastSec() != 110 {
		t.Fatalf("LastSec = %v, want 110", s.LastSec())
	}
}

func TestSessionSameEdgeObservation(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := roadnet.EdgeID(10)
	s := m.NewSession(SessionConfig{})
	if _, err := s.Advance(traj.GPSPoint{Pos: g.PointAlongEdge(e, 0.2), T: 0}); err != nil {
		t.Fatal(err)
	}
	obs, err := s.Advance(traj.GPSPoint{Pos: g.PointAlongEdge(e, 0.8), T: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("same-edge movement emitted %d observations, want 1: %+v", len(obs), obs)
	}
	o := obs[0]
	want := 0.6 * g.Edges[e].Length
	// The matched edge may be the twin of e; only the magnitude matters.
	if math.Abs(o.Meters-want) > 0.2*want+2 {
		t.Fatalf("observed %.1f m, drove %.1f m", o.Meters, want)
	}
	if o.EnterSec != 0 || o.ExitSec != 10 {
		t.Fatalf("observation span [%v, %v], want [0, 10]", o.EnterSec, o.ExitSec)
	}
}

func TestSessionStationaryVehicle(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := g.PointAlongEdge(7, 0.5)
	s := m.NewSession(SessionConfig{})
	if _, err := s.Advance(traj.GPSPoint{Pos: p, T: 0}); err != nil {
		t.Fatal(err)
	}
	obs, err := s.Advance(traj.GPSPoint{Pos: p, T: 30})
	if err != nil {
		t.Fatal(err)
	}
	// A stopped vehicle is a real congestion signal: 0 m/s, full interval.
	var meters, secs float64
	for _, o := range obs {
		meters += o.Meters
		secs += o.ExitSec - o.EnterSec
	}
	if secs < 29.9 {
		t.Fatalf("stationary interval covers %.1f s, want 30", secs)
	}
	if meters > 1 {
		t.Fatalf("stationary vehicle moved %.1f m", meters)
	}
}

func TestTrackerTTLEviction(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := m.NewTracker(TrackerConfig{SessionTTLSec: 60})
	p := g.PointAlongEdge(0, 0.5)
	if _, err := tr.Advance("veh-a", traj.GPSPoint{Pos: p, T: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advance("veh-b", traj.GPSPoint{Pos: p, T: 50}); err != nil {
		t.Fatal(err)
	}
	if tr.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", tr.Sessions())
	}
	if n := tr.Sweep(100); n != 1 {
		t.Fatalf("sweep at t=100 evicted %d sessions, want 1 (veh-a idle 100s)", n)
	}
	if tr.Sessions() != 1 || tr.Evicted() != 1 {
		t.Fatalf("sessions = %d evicted = %d after sweep", tr.Sessions(), tr.Evicted())
	}
	// veh-a comes back: a fresh session, first point anchors without error.
	if _, err := tr.Advance("veh-a", traj.GPSPoint{Pos: p, T: 120}); err != nil {
		t.Fatal(err)
	}
	if tr.Sessions() != 2 {
		t.Fatalf("sessions = %d after re-appearance, want 2", tr.Sessions())
	}
}

func TestTrackerCapEviction(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := m.NewTracker(TrackerConfig{MaxSessions: 3})
	p := g.PointAlongEdge(0, 0.5)
	for i := 0; i < 5; i++ {
		v := fmt.Sprintf("veh-%d", i)
		if _, err := tr.Advance(v, traj.GPSPoint{Pos: p, T: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Sessions() != 3 {
		t.Fatalf("sessions = %d, want cap of 3", tr.Sessions())
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	// The survivors must be the most recent vehicles.
	for _, v := range []string{"veh-2", "veh-3", "veh-4"} {
		if _, ok := tr.sessions[v]; !ok {
			t.Fatalf("recent vehicle %s was evicted", v)
		}
	}
}

func TestTrackerOutOfOrderDoesNotAdvanceClock(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := m.NewTracker(TrackerConfig{})
	p := g.PointAlongEdge(0, 0.5)
	if _, err := tr.Advance("v", traj.GPSPoint{Pos: p, T: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advance("v", traj.GPSPoint{Pos: p, T: 40}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("got %v, want ErrOutOfOrder", err)
	}
	if ts := tr.sessions["v"]; ts.lastSeen != 100 {
		t.Fatalf("rejected point moved lastSeen to %v", ts.lastSeen)
	}
}

func BenchmarkSessionAdvance(b *testing.B) {
	g := testGraph(b)
	m, err := New(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	p, err := roadnet.ShortestPath(g, 0, roadnet.VertexID(g.NumVertices()-1), 0, roadnet.FreeFlowCost(g))
	if err != nil {
		b.Fatal(err)
	}
	raw := driveRoute(g, p.Edges, 5, rng)
	s := m.NewSession(SessionConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := raw.Points[i%len(raw.Points)]
		pt.T = float64(i) * 3 // keep timestamps monotone across replays
		if _, err := s.Advance(pt); err != nil {
			b.Fatal(err)
		}
	}
}
