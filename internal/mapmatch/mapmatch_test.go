package mapmatch

import (
	"math"
	"math/rand"
	"testing"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.SmallCity("mm", 9)
	cfg.OneWayFrac = 0 // keep every street two-way for route checks
	g, err := roadnet.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := testGraph(t)
	bad := DefaultConfig()
	bad.SigmaMeters = 0
	if _, err := New(g, bad); err == nil {
		t.Fatal("zero sigma accepted")
	}
	if _, err := New(g, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestMatchPoint(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A point exactly on an edge must match that edge (or its twin) with
	// the right fraction.
	target := roadnet.EdgeID(5)
	p := g.PointAlongEdge(target, 0.3)
	e, frac, err := m.MatchPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.EdgePoints(e)
	_, _, d := geo.ProjectOnSegment(p, a, b)
	if d > 1 {
		t.Fatalf("matched edge %d is %v m from the query point", e, d)
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("fraction out of range: %v", frac)
	}
}

// driveRoute simulates a vehicle driving a given edge sequence at constant
// speed, emitting noisy GPS samples.
func driveRoute(g *roadnet.Graph, edges []roadnet.EdgeID, noise float64, rng *rand.Rand) traj.Raw {
	const speed = 10.0 // m/s
	var pts []traj.GPSPoint
	now := 0.0
	for _, e := range edges {
		a, b := g.EdgePoints(e)
		length := geo.Dist(a, b)
		steps := int(length/(speed*3)) + 1 // sample every ~3 s
		for s := 0; s < steps; s++ {
			f := float64(s) / float64(steps)
			p := geo.Lerp(a, b, f)
			pts = append(pts, traj.GPSPoint{
				Pos: geo.Point{X: p.X + rng.NormFloat64()*noise, Y: p.Y + rng.NormFloat64()*noise},
				T:   now + f*length/speed,
			})
		}
		now += length / speed
	}
	last := g.Edges[edges[len(edges)-1]]
	end := g.Vertices[last.To].Pos
	pts = append(pts, traj.GPSPoint{Pos: end, T: now})
	return traj.Raw{Points: pts}
}

func TestMatchRecoversDrivenRoute(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Drive a shortest path between two far corners.
	p, err := roadnet.ShortestPath(g, 0, roadnet.VertexID(g.NumVertices()-1), 0, roadnet.FreeFlowCost(g))
	if err != nil {
		t.Fatal(err)
	}
	raw := driveRoute(g, p.Edges, 6, rng)
	got, err := m.Match(&raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(g); err != nil {
		t.Fatalf("matched trajectory invalid: %v", err)
	}
	// The matched edge set must substantially overlap the driven route.
	driven := map[roadnet.EdgeID]bool{}
	for _, e := range p.Edges {
		driven[e] = true
	}
	overlap := 0
	for _, s := range got.Path {
		if driven[s.Edge] {
			overlap++
		}
	}
	if frac := float64(overlap) / float64(len(p.Edges)); frac < 0.7 {
		t.Fatalf("matched route overlaps only %.0f%% of the driven route", frac*100)
	}
	// Timing: total matched duration within 20%% of the driven duration.
	gotDur := got.TravelTime()
	wantDur := raw.Duration()
	if math.Abs(gotDur-wantDur) > 0.2*wantDur+5 {
		t.Fatalf("matched duration %v vs driven %v", gotDur, wantDur)
	}
}

func TestMatchTimeIntervalsMonotone(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	p, err := roadnet.ShortestPath(g, 3, roadnet.VertexID(g.NumVertices()-4), 0, roadnet.FreeFlowCost(g))
	if err != nil {
		t.Fatal(err)
	}
	raw := driveRoute(g, p.Edges, 4, rng)
	got, err := m.Match(&raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got.Path); i++ {
		if got.Path[i].Enter+1e-9 < got.Path[i-1].Exit {
			t.Fatalf("intervals overlap at step %d", i)
		}
	}
	if got.RStart < 0 || got.RStart > 1 || got.REnd < 0 || got.REnd > 1 {
		t.Fatalf("position ratios out of range: %v %v", got.RStart, got.REnd)
	}
}

func TestMatchRejectsBadInput(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match(&traj.Raw{Points: []traj.GPSPoint{{T: 0}}}); err == nil {
		t.Fatal("single-point trajectory accepted")
	}
	if _, err := m.Match(&traj.Raw{Points: []traj.GPSPoint{{T: 5}, {T: 0}}}); err == nil {
		t.Fatal("time-reversed trajectory accepted")
	}
}
