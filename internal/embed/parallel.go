package embed

import (
	"math/rand"
	"sync"

	"deepod/internal/tensor"
)

// GenerateWalksParallel is GenerateWalks sharded across workers goroutines.
//
// With workers <= 1 it calls GenerateWalks directly, consuming rng exactly
// as the serial path does. With more workers, each worker draws a private
// seed from rng (sequentially, so a given base seed + worker count is
// deterministic) and generates the walks whose flat index i (walk w of
// start node s ⇒ i = w·NumNodes + s) satisfies i mod workers == worker.
// Walks are assembled in flat-index order, so the corpus ordering is
// independent of goroutine scheduling.
func GenerateWalksParallel(g Graph, cfg WalkConfig, rng *rand.Rand, workers int) ([][]int, error) {
	if workers <= 1 {
		return GenerateWalks(g, cfg, rng)
	}
	if err := checkWalkConfig(cfg); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	total := cfg.WalksPerNode * n
	if workers > total {
		workers = total
	}
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = rng.Int63()
	}
	slots := make([][]int, total)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seeds[w]))
			for i := w; i < total; i += workers {
				slots[i] = biasedWalk(g, i%n, cfg, wrng)
			}
		}(w)
	}
	wg.Wait()
	walks := make([][]int, 0, total)
	for _, walk := range slots {
		if len(walk) >= 2 {
			walks = append(walks, walk)
		}
	}
	return walks, nil
}

// TrainSkipGramParallel is TrainSkipGram sharded across workers goroutines.
//
// With workers <= 1 it calls TrainSkipGram directly (bit-identical to the
// serial path). With more workers, each epoch snapshots the embedding
// matrices, lets every worker train a private copy on its walk shard
// (walk i on worker i mod workers, with a per-worker rng seeded
// sequentially from the base rng), and averages the copies in fixed
// worker-index order — synchronous model averaging, deterministic for a
// given seed + worker count and race-free under the race detector.
func TrainSkipGramParallel(numNodes int, walks [][]int, cfg SkipGramConfig, rng *rand.Rand, workers int) (*tensor.Tensor, error) {
	if workers <= 1 {
		return TrainSkipGram(numNodes, walks, cfg, rng)
	}
	if err := checkSkipGramConfig(numNodes, cfg); err != nil {
		return nil, err
	}
	cum, err := negTable(numNodes, walks)
	if err != nil {
		return nil, err
	}
	if workers > len(walks) && len(walks) > 0 {
		workers = len(walks)
	}

	in := tensor.New(numNodes, cfg.Dim)
	out := tensor.New(numNodes, cfg.Dim)
	for i := range in.Data {
		in.Data[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
	}

	ins := make([]*tensor.Tensor, workers)
	outs := make([]*tensor.Tensor, workers)
	for w := 0; w < workers; w++ {
		ins[w] = tensor.New(numNodes, cfg.Dim)
		outs[w] = tensor.New(numNodes, cfg.Dim)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * (1 - float64(epoch)/float64(cfg.Epochs)*0.9)
		seeds := make([]int64, workers)
		for w := range seeds {
			seeds[w] = rng.Int63()
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				copy(ins[w].Data, in.Data)
				copy(outs[w].Data, out.Data)
				wrng := rand.New(rand.NewSource(seeds[w]))
				shard := func(i int) bool { return i%workers == w }
				trainSkipGramEpoch(ins[w], outs[w], walks, cfg, cum, lr, wrng, shard)
			}(w)
		}
		wg.Wait()
		// Average in fixed worker order: sum sequentially, then scale.
		averageInto(in, ins)
		averageInto(out, outs)
	}
	return in, nil
}

// averageInto overwrites dst with the element-wise mean of srcs, summing in
// slice order so the result is independent of goroutine scheduling.
func averageInto(dst *tensor.Tensor, srcs []*tensor.Tensor) {
	copy(dst.Data, srcs[0].Data)
	for _, s := range srcs[1:] {
		dst.AddInPlace(s)
	}
	dst.ScaleInPlace(1 / float64(len(srcs)))
}
