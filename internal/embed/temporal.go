package embed

import (
	"fmt"

	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
)

// TemporalGraph is the directed graph of Figure 5b: one node per time slot
// of a week, with two kinds of edges —
//
//  1. neighboring-slot edges (slot i → slot i+1, wrapping at the week
//     boundary), expressing that adjacent slots should have smooth
//     representations; and
//  2. neighboring-day edges (slot i → the same slot-of-day on the next
//     day, wrapping Sunday → Monday), expressing daily periodicity.
//
// Unlike the undirected single-day construction the paper criticizes in
// prior work, this graph is directed and spans the full week, so both the
// sequential order of slots and the day-to-day repetition are captured.
type TemporalGraph struct {
	Slots int
	adj   [][]roadnet.WeightedLink
}

// BuildTemporalGraph constructs the week-wide temporal graph for a slotter.
// slotWeight and dayWeight set the relative strengths of the two edge
// groups (the random walk follows heavier links proportionally more often).
func BuildTemporalGraph(s *timeslot.Slotter, slotWeight, dayWeight float64) (*TemporalGraph, error) {
	if slotWeight <= 0 || dayWeight < 0 {
		return nil, fmt.Errorf("embed: temporal graph weights must be positive/non-negative, got %v, %v", slotWeight, dayWeight)
	}
	n := s.SlotsPerWeek
	tg := &TemporalGraph{Slots: n, adj: make([][]roadnet.WeightedLink, n)}
	perDay := s.SlotsPerDay
	for i := 0; i < n; i++ {
		// Neighboring slot (red edges in Figure 5b), wrapping the week.
		tg.adj[i] = append(tg.adj[i], roadnet.WeightedLink{To: (i + 1) % n, Weight: slotWeight})
		if dayWeight > 0 {
			// Same slot of the next day (black edges), wrapping the week.
			tg.adj[i] = append(tg.adj[i], roadnet.WeightedLink{To: (i + perDay) % n, Weight: dayWeight})
		}
	}
	return tg, nil
}

// BuildDayTemporalGraph is the T-day ablation of Table 7: a temporal graph
// over a single day's slots (daily periodicity only, no weekly structure).
func BuildDayTemporalGraph(s *timeslot.Slotter, slotWeight float64) (*TemporalGraph, error) {
	if slotWeight <= 0 {
		return nil, fmt.Errorf("embed: slot weight must be positive, got %v", slotWeight)
	}
	n := s.SlotsPerDay
	tg := &TemporalGraph{Slots: n, adj: make([][]roadnet.WeightedLink, n)}
	for i := 0; i < n; i++ {
		tg.adj[i] = append(tg.adj[i], roadnet.WeightedLink{To: (i + 1) % n, Weight: slotWeight})
	}
	return tg, nil
}

// NumNodes implements Graph.
func (tg *TemporalGraph) NumNodes() int { return tg.Slots }

// Links implements Graph.
func (tg *TemporalGraph) Links(u int) []roadnet.WeightedLink { return tg.adj[u] }
