package embed

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
)

// ringGraph builds a weighted directed ring of n nodes.
type ringGraph struct {
	n   int
	adj [][]roadnet.WeightedLink
}

func newRing(n int) *ringGraph {
	g := &ringGraph{n: n, adj: make([][]roadnet.WeightedLink, n)}
	for i := 0; i < n; i++ {
		g.adj[i] = []roadnet.WeightedLink{{To: (i + 1) % n, Weight: 1}}
	}
	return g
}

func (g *ringGraph) NumNodes() int                      { return g.n }
func (g *ringGraph) Links(u int) []roadnet.WeightedLink { return g.adj[u] }

func TestGenerateWalks(t *testing.T) {
	g := newRing(10)
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultWalkConfig()
	cfg.WalksPerNode, cfg.WalkLength = 3, 8
	walks, err := GenerateWalks(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != 30 {
		t.Fatalf("walks = %d, want 30", len(walks))
	}
	for _, w := range walks {
		if len(w) != 8 {
			t.Fatalf("walk length %d, want 8", len(w))
		}
		for i := 1; i < len(w); i++ {
			if w[i] != (w[i-1]+1)%10 {
				t.Fatalf("ring walk broke adjacency: %v", w)
			}
		}
	}
	// Validation errors.
	badCfg := cfg
	badCfg.WalkLength = 1
	if _, err := GenerateWalks(g, badCfg, rng); err == nil {
		t.Fatal("walk length 1 accepted")
	}
	badCfg = cfg
	badCfg.P = 0
	if _, err := GenerateWalks(g, badCfg, rng); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestWalksRespectWeights(t *testing.T) {
	// Node 0 has a heavy link to 1 and a light link to 2; walks must favor 1.
	g := &ringGraph{n: 3, adj: [][]roadnet.WeightedLink{
		{{To: 1, Weight: 10}, {To: 2, Weight: 0.1}},
		{{To: 0, Weight: 1}},
		{{To: 0, Weight: 1}},
	}}
	rng := rand.New(rand.NewSource(2))
	cfg := WalkConfig{WalksPerNode: 200, WalkLength: 2, P: 1, Q: 1}
	walks, err := GenerateWalks(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	to1, to2 := 0, 0
	for _, w := range walks {
		if w[0] != 0 {
			continue
		}
		switch w[1] {
		case 1:
			to1++
		case 2:
			to2++
		}
	}
	if to1 <= to2*5 {
		t.Fatalf("weights ignored: %d walks to heavy node, %d to light", to1, to2)
	}
}

func TestSkipGramNeighborsCloser(t *testing.T) {
	// On a ring, adjacent nodes must embed closer than antipodal nodes.
	g := newRing(20)
	rng := rand.New(rand.NewSource(3))
	vecs, err := Embed(g, DeepWalk, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b int) float64 {
		var s float64
		for k := 0; k < 8; k++ {
			d := vecs.At(a, k) - vecs.At(b, k)
			s += d * d
		}
		return math.Sqrt(s)
	}
	var near, far float64
	for i := 0; i < 20; i++ {
		near += dist(i, (i+1)%20)
		far += dist(i, (i+10)%20)
	}
	if near >= far {
		t.Fatalf("ring structure not captured: near=%.3f far=%.3f", near, far)
	}
}

func TestEmbedMethods(t *testing.T) {
	g := newRing(12)
	for _, m := range []Method{Node2Vec, DeepWalk, LINE} {
		rng := rand.New(rand.NewSource(4))
		vecs, err := Embed(g, m, 6, rng)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if vecs.Shape[0] != 12 || vecs.Shape[1] != 6 {
			t.Fatalf("%s: shape %v", m, vecs.Shape)
		}
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := Embed(g, Method("magic"), 6, rng); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestTrainSkipGramValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := TrainSkipGram(0, nil, DefaultSkipGramConfig(4), rng); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := TrainSkipGram(3, [][]int{{0, 7}}, DefaultSkipGramConfig(4), rng); err == nil {
		t.Fatal("out-of-range walk node accepted")
	}
	bad := DefaultSkipGramConfig(4)
	bad.Epochs = 0
	if _, err := TrainSkipGram(3, [][]int{{0, 1}}, bad, rng); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestTemporalGraphStructure(t *testing.T) {
	s := timeslot.MustNew(time.Hour) // 24 slots/day, 168/week
	tg, err := BuildTemporalGraph(s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumNodes() != 168 {
		t.Fatalf("temporal graph nodes = %d, want 168", tg.NumNodes())
	}
	// Every node: one neighbor-slot edge and one neighbor-day edge.
	for i := 0; i < 168; i++ {
		links := tg.Links(i)
		if len(links) != 2 {
			t.Fatalf("node %d has %d links", i, len(links))
		}
		if links[0].To != (i+1)%168 || links[0].Weight != 1 {
			t.Fatalf("node %d neighbor-slot link %+v", i, links[0])
		}
		if links[1].To != (i+24)%168 || links[1].Weight != 2 {
			t.Fatalf("node %d neighbor-day link %+v", i, links[1])
		}
	}
	// Week wrap: Sunday's last slot points to Monday's first.
	last := tg.Links(167)
	if last[0].To != 0 {
		t.Fatal("week wrap broken for neighbor-slot edge")
	}
	if _, err := BuildTemporalGraph(s, 0, 1); err == nil {
		t.Fatal("zero slot weight accepted")
	}
}

func TestDayTemporalGraph(t *testing.T) {
	s := timeslot.MustNew(time.Hour)
	tg, err := BuildDayTemporalGraph(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumNodes() != 24 {
		t.Fatalf("day graph nodes = %d, want 24", tg.NumNodes())
	}
	if tg.Links(23)[0].To != 0 {
		t.Fatal("day wrap broken")
	}
	if _, err := BuildDayTemporalGraph(s, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestTemporalEmbeddingPeriodicity(t *testing.T) {
	// Embedding the weekly graph: the same hour on adjacent days should be
	// closer than random hours, thanks to the neighbor-day edges.
	s := timeslot.MustNew(2 * time.Hour) // 12 slots/day, 84/week
	tg, err := BuildTemporalGraph(s, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	vecs, err := Embed(tg, Node2Vec, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b int) float64 {
		var d float64
		for k := 0; k < 8; k++ {
			x := vecs.At(a, k) - vecs.At(b, k)
			d += x * x
		}
		return math.Sqrt(d)
	}
	var sameHour, offset float64
	for day := 0; day < 6; day++ {
		slot := day*12 + 6
		sameHour += dist(slot, slot+12)   // same hour next day
		offset += dist(slot, (slot+5)%84) // 10 hours away
	}
	if sameHour >= offset {
		t.Logf("warning: daily periodicity weak in embedding (same=%.3f offset=%.3f)", sameHour, offset)
	}
}
