package embed

import (
	"math"
	"math/rand"
	"testing"
)

func TestParallelWalksMatchSerialAtOneWorker(t *testing.T) {
	g := newRing(12)
	cfg := DefaultWalkConfig()
	serial, err := GenerateWalks(g, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	one, err := GenerateWalksParallel(g, cfg, rand.New(rand.NewSource(5)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(one) {
		t.Fatalf("corpus size differs: %d vs %d", len(serial), len(one))
	}
	for i := range serial {
		if len(serial[i]) != len(one[i]) {
			t.Fatalf("walk %d length differs", i)
		}
		for j := range serial[i] {
			if serial[i][j] != one[i][j] {
				t.Fatalf("walk %d node %d differs: %d vs %d", i, j, serial[i][j], one[i][j])
			}
		}
	}
}

func TestParallelWalksDeterministic(t *testing.T) {
	g := newRing(12)
	cfg := DefaultWalkConfig()
	a, err := GenerateWalksParallel(g, cfg, rand.New(rand.NewSource(9)), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWalksParallel(g, cfg, rand.New(rand.NewSource(9)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("walk %d node %d differs across identical runs", i, j)
			}
		}
	}
}

func TestParallelSkipGramMatchesSerialAtOneWorker(t *testing.T) {
	g := newRing(10)
	walks, err := GenerateWalks(g, DefaultWalkConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSkipGramConfig(8)
	serial, err := TrainSkipGram(g.NumNodes(), walks, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	one, err := TrainSkipGramParallel(g.NumNodes(), walks, cfg, rand.New(rand.NewSource(3)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Data {
		if math.Float64bits(serial.Data[i]) != math.Float64bits(one.Data[i]) {
			t.Fatalf("vector element %d differs: %v vs %v", i, serial.Data[i], one.Data[i])
		}
	}
}

func TestParallelSkipGramDeterministicAndSane(t *testing.T) {
	g := newRing(10)
	walks, err := GenerateWalks(g, DefaultWalkConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSkipGramConfig(8)
	a, err := TrainSkipGramParallel(g.NumNodes(), walks, cfg, rand.New(rand.NewSource(4)), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSkipGramParallel(g.NumNodes(), walks, cfg, rand.New(rand.NewSource(4)), 3)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("element %d differs across identical parallel runs", i)
		}
		if math.IsNaN(a.Data[i]) || math.IsInf(a.Data[i], 0) {
			t.Fatalf("element %d is %v", i, a.Data[i])
		}
		norm += a.Data[i] * a.Data[i]
	}
	if norm == 0 {
		t.Fatal("parallel skip-gram produced the zero matrix")
	}
}
