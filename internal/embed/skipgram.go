package embed

import (
	"fmt"
	"math"
	"math/rand"

	"deepod/internal/tensor"
)

// SkipGramConfig tunes skip-gram-with-negative-sampling training.
type SkipGramConfig struct {
	Dim       int
	Window    int
	Negatives int
	Epochs    int
	LR        float64
}

// DefaultSkipGramConfig returns settings suitable for the small graphs in
// this repository.
func DefaultSkipGramConfig(dim int) SkipGramConfig {
	return SkipGramConfig{Dim: dim, Window: 4, Negatives: 4, Epochs: 3, LR: 0.025}
}

func checkSkipGramConfig(numNodes int, cfg SkipGramConfig) error {
	if numNodes <= 0 {
		return fmt.Errorf("embed: numNodes must be positive, got %d", numNodes)
	}
	if cfg.Dim <= 0 || cfg.Window <= 0 || cfg.Negatives < 0 || cfg.Epochs <= 0 {
		return fmt.Errorf("embed: invalid skip-gram config %+v", cfg)
	}
	return nil
}

// negTable builds the cumulative unigram^(3/4) negative-sampling table.
func negTable(numNodes int, walks [][]int) ([]float64, error) {
	counts := make([]float64, numNodes)
	for _, w := range walks {
		for _, n := range w {
			if n < 0 || n >= numNodes {
				return nil, fmt.Errorf("embed: walk references node %d outside [0,%d)", n, numNodes)
			}
			counts[n]++
		}
	}
	var total float64
	for i := range counts {
		counts[i] = math.Pow(counts[i]+1, 0.75)
		total += counts[i]
	}
	cum := make([]float64, numNodes)
	run := 0.0
	for i, c := range counts {
		run += c / total
		cum[i] = run
	}
	return cum, nil
}

// sampleNegFrom draws a node from the cumulative table by binary search.
func sampleNegFrom(cum []float64, rng *rand.Rand) int {
	r := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TrainSkipGram learns node embeddings from a walk corpus using skip-gram
// with negative sampling (the objective behind node2vec and DeepWalk).
// It returns a [numNodes, Dim] matrix of input-side vectors.
func TrainSkipGram(numNodes int, walks [][]int, cfg SkipGramConfig, rng *rand.Rand) (*tensor.Tensor, error) {
	if err := checkSkipGramConfig(numNodes, cfg); err != nil {
		return nil, err
	}
	cum, err := negTable(numNodes, walks)
	if err != nil {
		return nil, err
	}
	in := tensor.New(numNodes, cfg.Dim)
	out := tensor.New(numNodes, cfg.Dim)
	for i := range in.Data {
		in.Data[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * (1 - float64(epoch)/float64(cfg.Epochs)*0.9)
		trainSkipGramEpoch(in, out, walks, cfg, cum, lr, rng, nil)
	}
	return in, nil
}

// trainSkipGramEpoch runs one skip-gram epoch over walks, updating in/out
// in place. When shard is non-nil, only walks whose index satisfies shard
// are consumed (the data-parallel walk partition).
func trainSkipGramEpoch(in, out *tensor.Tensor, walks [][]int, cfg SkipGramConfig, cum []float64, lr float64, rng *rand.Rand, shard func(walkIdx int) bool) {
	dim := cfg.Dim
	gradIn := make([]float64, dim)

	trainPair := func(center, context int) {
		vi := in.Data[center*dim : (center+1)*dim]
		for i := range gradIn {
			gradIn[i] = 0
		}
		// One positive + Negatives negative targets.
		for s := 0; s <= cfg.Negatives; s++ {
			target, label := context, 1.0
			if s > 0 {
				target = sampleNegFrom(cum, rng)
				if target == context {
					continue
				}
				label = 0
			}
			vo := out.Data[target*dim : (target+1)*dim]
			var dot float64
			for i := 0; i < dim; i++ {
				dot += vi[i] * vo[i]
			}
			g := (sigmoidApprox(dot) - label) * lr
			for i := 0; i < dim; i++ {
				gradIn[i] += g * vo[i]
				vo[i] -= g * vi[i]
			}
		}
		for i := 0; i < dim; i++ {
			vi[i] -= gradIn[i]
		}
	}

	for wi, walk := range walks {
		if shard != nil && !shard(wi) {
			continue
		}
		for ci, center := range walk {
			lo := ci - cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := ci + cfg.Window
			if hi >= len(walk) {
				hi = len(walk) - 1
			}
			for x := lo; x <= hi; x++ {
				if x == ci {
					continue
				}
				trainPair(center, walk[x])
			}
		}
	}
}

// sigmoidApprox is the shared σ(x) table; built once at package init.
var sigmoidApprox = sigmoidTable()

// sigmoidTable returns a σ(x) approximation backed by a precomputed table
// over [-6, 6] (the standard word2vec trick — exp dominates skip-gram
// training otherwise; gradients are noisy anyway, so table resolution is
// ample).
func sigmoidTable() func(float64) float64 {
	const (
		bound = 6.0
		bins  = 1024
	)
	table := make([]float64, bins+1)
	for i := range table {
		x := -bound + 2*bound*float64(i)/bins
		table[i] = 1 / (1 + math.Exp(-x))
	}
	return func(x float64) float64 {
		if x >= bound {
			return 1
		}
		if x <= -bound {
			return 0
		}
		return table[int((x+bound)/(2*bound)*bins)]
	}
}

// Method selects which embedding algorithm initializes a matrix.
type Method string

// The three methods the paper evaluated; node2vec won (§5).
const (
	Node2Vec Method = "node2vec"
	DeepWalk Method = "deepwalk"
	LINE     Method = "line"
)

// Embed runs the chosen method over g and returns [numNodes, dim] vectors.
//
//   - node2vec: biased walks (p=1, q=0.5) + skip-gram.
//   - deepwalk: uniform weighted walks (p=q=1) + skip-gram.
//   - line: first-order proximity — skip-gram over direct links only
//     (window 1 over length-2 walks), matching LINE's edge-sampling spirit.
func Embed(g Graph, method Method, dim int, rng *rand.Rand) (*tensor.Tensor, error) {
	wcfg := DefaultWalkConfig()
	scfg := DefaultSkipGramConfig(dim)
	switch method {
	case Node2Vec:
	case DeepWalk:
		wcfg.P, wcfg.Q = 1, 1
	case LINE:
		wcfg.P, wcfg.Q = 1, 1
		wcfg.WalkLength = 2
		wcfg.WalksPerNode *= 4
		scfg.Window = 1
	default:
		return nil, fmt.Errorf("embed: unknown method %q", method)
	}
	walks, err := GenerateWalks(g, wcfg, rng)
	if err != nil {
		return nil, err
	}
	return TrainSkipGram(g.NumNodes(), walks, scfg, rng)
}
