// Package embed implements the unsupervised graph-embedding pre-training
// the paper uses to initialize its two embedding matrices (Algorithm 1,
// lines 1–4): node2vec (biased second-order random walks + skip-gram with
// negative sampling), plus the DeepWalk and LINE variants the authors also
// tried, and the temporal-graph construction of Figure 5b.
package embed

import (
	"fmt"
	"math/rand"

	"deepod/internal/roadnet"
)

// Graph is the weighted directed graph interface the walkers consume; both
// the road-segment line graph (Figure 4) and the temporal graph (Figure 5b)
// satisfy it via adapters below.
type Graph interface {
	NumNodes() int
	// Links returns the weighted out-links of node u.
	Links(u int) []roadnet.WeightedLink
}

// lineGraphAdapter adapts roadnet.LineGraph.
type lineGraphAdapter struct{ lg *roadnet.LineGraph }

func (a lineGraphAdapter) NumNodes() int                      { return a.lg.NumNodes }
func (a lineGraphAdapter) Links(u int) []roadnet.WeightedLink { return a.lg.Adj[u] }

// FromLineGraph wraps a road-segment line graph for embedding.
func FromLineGraph(lg *roadnet.LineGraph) Graph { return lineGraphAdapter{lg} }

// WalkConfig tunes random-walk corpus generation.
type WalkConfig struct {
	// WalksPerNode and WalkLength size the corpus.
	WalksPerNode int
	WalkLength   int
	// P and Q are node2vec's return and in-out parameters; P=Q=1 recovers
	// DeepWalk's uniform (weighted) walks.
	P, Q float64
}

// DefaultWalkConfig mirrors common node2vec settings scaled for small
// graphs.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerNode: 8, WalkLength: 20, P: 1, Q: 0.5}
}

func checkWalkConfig(cfg WalkConfig) error {
	if cfg.WalksPerNode <= 0 || cfg.WalkLength < 2 {
		return fmt.Errorf("embed: walk config needs WalksPerNode>0 and WalkLength>=2, got %+v", cfg)
	}
	if cfg.P <= 0 || cfg.Q <= 0 {
		return fmt.Errorf("embed: node2vec p and q must be positive, got p=%v q=%v", cfg.P, cfg.Q)
	}
	return nil
}

// GenerateWalks produces a corpus of random walks over g.
func GenerateWalks(g Graph, cfg WalkConfig, rng *rand.Rand) ([][]int, error) {
	if err := checkWalkConfig(cfg); err != nil {
		return nil, err
	}
	walks := make([][]int, 0, g.NumNodes()*cfg.WalksPerNode)
	for w := 0; w < cfg.WalksPerNode; w++ {
		for start := 0; start < g.NumNodes(); start++ {
			walk := biasedWalk(g, start, cfg, rng)
			if len(walk) >= 2 {
				walks = append(walks, walk)
			}
		}
	}
	return walks, nil
}

// biasedWalk performs one node2vec second-order walk from start.
func biasedWalk(g Graph, start int, cfg WalkConfig, rng *rand.Rand) []int {
	walk := make([]int, 0, cfg.WalkLength)
	walk = append(walk, start)
	prev := -1
	cur := start
	for len(walk) < cfg.WalkLength {
		links := g.Links(cur)
		if len(links) == 0 {
			break
		}
		next := sampleNext(g, prev, cur, links, cfg, rng)
		walk = append(walk, next)
		prev, cur = cur, next
	}
	return walk
}

// sampleNext draws the next node with node2vec bias: weight/p to return to
// prev, weight to move to a neighbor of prev, weight/q otherwise.
func sampleNext(g Graph, prev, cur int, links []roadnet.WeightedLink, cfg WalkConfig, rng *rand.Rand) int {
	var prevNbrs map[int]bool
	if prev >= 0 && (cfg.P != 1 || cfg.Q != 1) {
		prevNbrs = make(map[int]bool)
		for _, l := range g.Links(prev) {
			prevNbrs[l.To] = true
		}
	}
	total := 0.0
	weights := make([]float64, len(links))
	for i, l := range links {
		w := l.Weight
		if w <= 0 {
			w = 1e-6
		}
		if prev >= 0 {
			switch {
			case l.To == prev:
				w /= cfg.P
			case prevNbrs != nil && prevNbrs[l.To]:
				// distance 1 from prev: unbiased
			default:
				w /= cfg.Q
			}
		}
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return links[i].To
		}
	}
	return links[len(links)-1].To
}
