package roadnet

import "fmt"

// LineGraph is the edge-to-node conversion of Figure 4: each node of the
// line graph is a road segment of the original network, and there is a
// directed link ⟨v_ik, v_kj⟩ whenever segment ⟨v_i, v_k⟩ is followed by
// segment ⟨v_k, v_j⟩. Link weights count how often the two segments are
// co-passed by the same historical trajectory, so that the random-walk
// transition probabilities used by the graph-embedding pre-training reflect
// real traffic flow.
type LineGraph struct {
	// NumNodes equals the number of road segments |E|.
	NumNodes int
	// Adj[a] lists weighted links a → b.
	Adj [][]WeightedLink
}

// WeightedLink is a weighted directed link in an embedding graph.
type WeightedLink struct {
	To     int
	Weight float64
}

// BuildLineGraph converts the road network into its line graph. trajEdges
// supplies historical trajectories as sequences of edge IDs; each
// consecutive pair contributes 1 to the corresponding link weight. Links
// that exist topologically but were never traversed receive smoothing
// weight base (the paper sets weights from co-occurrence counts; smoothing
// keeps never-traversed turns reachable by the random walk).
func BuildLineGraph(g *Graph, trajEdges [][]EdgeID, base float64) (*LineGraph, error) {
	if base < 0 {
		return nil, fmt.Errorf("roadnet: smoothing base must be non-negative, got %v", base)
	}
	lg := &LineGraph{NumNodes: g.NumEdges(), Adj: make([][]WeightedLink, g.NumEdges())}

	// Topological links with smoothing weight.
	index := make([]map[int]int, g.NumEdges()) // from -> (to -> position in Adj[from])
	for eid := range g.Edges {
		head := g.Edges[eid].To
		index[eid] = make(map[int]int)
		for _, next := range g.Out(head) {
			if int(next) == eid {
				continue // ignore immediate self loop back onto the same segment id
			}
			// Skip trivial U-turns (back along the reverse twin): they are
			// legal in principle but pollute the walk distribution.
			if g.Edges[next].To == g.Edges[eid].From && g.Edges[next].From == g.Edges[eid].From {
				continue
			}
			index[eid][int(next)] = len(lg.Adj[eid])
			lg.Adj[eid] = append(lg.Adj[eid], WeightedLink{To: int(next), Weight: base})
		}
	}

	// Co-occurrence counts from trajectories (Figure 4's link weights).
	for _, tr := range trajEdges {
		for i := 1; i < len(tr); i++ {
			a, b := int(tr[i-1]), int(tr[i])
			if a < 0 || a >= lg.NumNodes || b < 0 || b >= lg.NumNodes {
				return nil, fmt.Errorf("roadnet: trajectory references unknown edge (%d or %d)", a, b)
			}
			pos, ok := index[a][b]
			if !ok {
				// A trajectory may contain a turn the topological pass
				// skipped (e.g. a U-turn); add the link on demand.
				index[a][b] = len(lg.Adj[a])
				lg.Adj[a] = append(lg.Adj[a], WeightedLink{To: b, Weight: base})
				pos = index[a][b]
			}
			lg.Adj[a][pos].Weight++
		}
	}
	return lg, nil
}

// NumLinks returns the total number of directed links.
func (lg *LineGraph) NumLinks() int {
	n := 0
	for _, a := range lg.Adj {
		n += len(a)
	}
	return n
}
