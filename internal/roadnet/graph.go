// Package roadnet models directed, weighted road networks (Section 2 of the
// paper): vertices are road-segment endpoints, edges are road segments with
// lengths and class-dependent free-flow speeds.
//
// The package also provides the substrates the DeepOD pipeline needs around
// the graph itself: a synthetic city generator (the stand-in for the
// OpenStreetMap extracts used in the paper — see DESIGN.md §1), Dijkstra and
// time-dependent shortest paths for route synthesis, a uniform-grid spatial
// index over edges for map matching, and the edge-to-node "line graph"
// conversion of Figure 4 with trajectory co-occurrence link weights that
// feeds the road-segment embedding initialization.
package roadnet

import (
	"fmt"

	"deepod/internal/geo"
)

// VertexID identifies a vertex (road-segment endpoint).
type VertexID int

// EdgeID identifies a directed road segment.
type EdgeID int

// RoadClass distinguishes arterial from local roads; it determines free-flow
// speed and how strongly congestion affects the segment.
type RoadClass uint8

const (
	// Arterial roads are fast multi-lane roads forming the city's main grid.
	Arterial RoadClass = iota
	// Local roads are slower neighborhood streets.
	Local
)

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	switch c {
	case Arterial:
		return "arterial"
	case Local:
		return "local"
	}
	return fmt.Sprintf("RoadClass(%d)", uint8(c))
}

// Vertex is a road-segment endpoint with a planar position.
type Vertex struct {
	ID  VertexID
	Pos geo.Point
}

// Edge is a directed road segment ⟨v¹ → v⁻¹, w⟩ (paper §2). Length is the
// weight w in meters; FreeSpeed is the uncongested speed in m/s.
type Edge struct {
	ID        EdgeID
	From, To  VertexID
	Length    float64
	FreeSpeed float64
	Class     RoadClass
}

// Graph is a directed weighted road network.
type Graph struct {
	Vertices []Vertex
	Edges    []Edge

	out [][]EdgeID // outgoing edges per vertex
	in  [][]EdgeID // incoming edges per vertex
}

// NewGraph builds a graph from vertices and edges, validating references.
func NewGraph(vertices []Vertex, edges []Edge) (*Graph, error) {
	g := &Graph{Vertices: vertices, Edges: edges}
	g.out = make([][]EdgeID, len(vertices))
	g.in = make([][]EdgeID, len(vertices))
	for i := range vertices {
		if vertices[i].ID != VertexID(i) {
			return nil, fmt.Errorf("roadnet: vertex %d has ID %d; IDs must be dense", i, vertices[i].ID)
		}
	}
	for i := range edges {
		e := &edges[i]
		if e.ID != EdgeID(i) {
			return nil, fmt.Errorf("roadnet: edge %d has ID %d; IDs must be dense", i, e.ID)
		}
		if int(e.From) >= len(vertices) || int(e.To) >= len(vertices) || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("roadnet: edge %d references unknown vertex (%d→%d)", i, e.From, e.To)
		}
		if e.Length <= 0 {
			return nil, fmt.Errorf("roadnet: edge %d has non-positive length %v", i, e.Length)
		}
		if e.FreeSpeed <= 0 {
			return nil, fmt.Errorf("roadnet: edge %d has non-positive speed %v", i, e.FreeSpeed)
		}
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
	}
	return g, nil
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Out returns the outgoing edge IDs of v.
func (g *Graph) Out(v VertexID) []EdgeID { return g.out[v] }

// In returns the incoming edge IDs of v.
func (g *Graph) In(v VertexID) []EdgeID { return g.in[v] }

// EdgePoints returns the endpoint positions of edge e.
func (g *Graph) EdgePoints(e EdgeID) (from, to geo.Point) {
	ed := g.Edges[e]
	return g.Vertices[ed.From].Pos, g.Vertices[ed.To].Pos
}

// PointAlongEdge returns the position at fraction t ∈ [0,1] along edge e.
func (g *Graph) PointAlongEdge(e EdgeID, t float64) geo.Point {
	a, b := g.EdgePoints(e)
	return geo.Lerp(a, b, t)
}

// Bounds returns the bounding box of all vertices.
func (g *Graph) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for i := range g.Vertices {
		r.Expand(g.Vertices[i].Pos)
	}
	return r
}

// TotalLength returns the summed length of all edges in meters.
func (g *Graph) TotalLength() float64 {
	var s float64
	for i := range g.Edges {
		s += g.Edges[i].Length
	}
	return s
}
