package roadnet

import (
	"fmt"
	"math"
	"sort"

	"deepod/internal/geo"
)

// EdgeIndex is a uniform-grid spatial index over road segments, used by the
// map matcher to find candidate segments near a GPS point.
type EdgeIndex struct {
	g     *Graph
	grid  *geo.Grid
	cells [][]EdgeID
}

// NewEdgeIndex builds an index with the given cell size in meters.
func NewEdgeIndex(g *Graph, cellSize float64) (*EdgeIndex, error) {
	bounds := g.Bounds()
	// Pad the bounds slightly so points just outside the network still land
	// in a valid cell.
	pad := cellSize
	bounds.Min.X -= pad
	bounds.Min.Y -= pad
	bounds.Max.X += pad
	bounds.Max.Y += pad
	grid, err := geo.NewGrid(bounds, cellSize)
	if err != nil {
		return nil, fmt.Errorf("roadnet: building edge index: %w", err)
	}
	idx := &EdgeIndex{g: g, grid: grid, cells: make([][]EdgeID, grid.NumCells())}
	for eid := range g.Edges {
		a, b := g.EdgePoints(EdgeID(eid))
		// Register the edge in every cell its sampled points fall into.
		steps := int(math.Ceil(geo.Dist(a, b)/cellSize)) + 1
		seen := make(map[int]bool, 4)
		for s := 0; s <= steps; s++ {
			p := geo.Lerp(a, b, float64(s)/float64(steps))
			ci := grid.CellIndex(p)
			if !seen[ci] {
				seen[ci] = true
				idx.cells[ci] = append(idx.cells[ci], EdgeID(eid))
			}
		}
	}
	return idx, nil
}

// CellIndex returns the flattened grid cell containing p (points outside
// the padded bounds clamp to border cells). It exposes the index's spatial
// quantization to callers that need a stable coarse location key — the
// inference engine's estimate cache uses it for the (origin cell, dest
// cell) components of its key.
func (idx *EdgeIndex) CellIndex(p geo.Point) int { return idx.grid.CellIndex(p) }

// NumCells returns the number of grid cells in the index.
func (idx *EdgeIndex) NumCells() int { return idx.grid.NumCells() }

// Candidate is a road segment near a query point.
type Candidate struct {
	Edge EdgeID
	// Frac is the fraction along the segment of the projected point.
	Frac float64
	// Dist is the distance from the query point to the projection, meters.
	Dist float64
	// Proj is the projected point on the segment.
	Proj geo.Point
}

// Nearest returns up to k candidate segments ordered by distance, searching
// outward ring by ring until candidates are found (or the grid is
// exhausted).
func (idx *EdgeIndex) Nearest(p geo.Point, k int) []Candidate {
	if k <= 0 {
		k = 1
	}
	maxRadius := idx.grid.Rows
	if idx.grid.Cols > maxRadius {
		maxRadius = idx.grid.Cols
	}
	seen := make(map[EdgeID]bool)
	var cands []Candidate
	for radius := 1; radius <= maxRadius; radius++ {
		idx.grid.NeighborCells(p, radius, func(r, c int) {
			for _, eid := range idx.cells[r*idx.grid.Cols+c] {
				if seen[eid] {
					continue
				}
				seen[eid] = true
				a, b := idx.g.EdgePoints(eid)
				proj, t, d := geo.ProjectOnSegment(p, a, b)
				cands = append(cands, Candidate{Edge: eid, Frac: t, Dist: d, Proj: proj})
			}
		})
		if len(cands) >= k {
			break
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Dist < cands[j].Dist })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// NearestScratch holds the reusable buffers of repeated candidate queries.
// The streaming map matcher issues one query per GPS probe at firehose
// rates; the map-based dedup and result slice of Nearest would make the
// allocator the bottleneck there. A scratch is owned by one goroutine and
// must not be shared.
type NearestScratch struct {
	// stamp[e] == cur marks edge e as already considered in this query;
	// bumping cur resets the whole array in O(1).
	stamp []uint32
	cur   uint32
	cands []Candidate
}

// NewScratch returns a scratch sized for this index's graph.
func (idx *EdgeIndex) NewScratch() *NearestScratch {
	return &NearestScratch{stamp: make([]uint32, len(idx.g.Edges))}
}

// NearestInto is Nearest with caller-owned scratch: after the first call it
// performs no allocations. The returned slice aliases the scratch and is
// valid only until the next NearestInto call with the same scratch.
func (idx *EdgeIndex) NearestInto(p geo.Point, k int, s *NearestScratch) []Candidate {
	if k <= 0 {
		k = 1
	}
	s.cur++
	if s.cur == 0 { // wrapped: every stamp value is stale, clear explicitly
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 1
	}
	s.cands = s.cands[:0]
	maxRadius := idx.grid.Rows
	if idx.grid.Cols > maxRadius {
		maxRadius = idx.grid.Cols
	}
	for radius := 1; radius <= maxRadius; radius++ {
		idx.grid.NeighborCells(p, radius, func(r, c int) {
			for _, eid := range idx.cells[r*idx.grid.Cols+c] {
				if s.stamp[eid] == s.cur {
					continue
				}
				s.stamp[eid] = s.cur
				a, b := idx.g.EdgePoints(eid)
				proj, t, d := geo.ProjectOnSegment(p, a, b)
				s.cands = append(s.cands, Candidate{Edge: eid, Frac: t, Dist: d, Proj: proj})
			}
		})
		if len(s.cands) >= k {
			break
		}
	}
	// Insertion sort: candidate counts are tiny and sort.Slice would allocate
	// its closure on every probe.
	for i := 1; i < len(s.cands); i++ {
		for j := i; j > 0 && s.cands[j].Dist < s.cands[j-1].Dist; j-- {
			s.cands[j], s.cands[j-1] = s.cands[j-1], s.cands[j]
		}
	}
	if len(s.cands) > k {
		s.cands = s.cands[:k]
	}
	return s.cands
}

// NearestEdge returns the closest segment to p.
func (idx *EdgeIndex) NearestEdge(p geo.Point) (Candidate, error) {
	c := idx.Nearest(p, 1)
	if len(c) == 0 {
		return Candidate{}, fmt.Errorf("roadnet: no edge found near point %+v", p)
	}
	return c[0], nil
}
