package roadnet

import (
	"encoding/json"
	"fmt"
	"io"

	"deepod/internal/geo"
)

// graphJSON is the on-disk JSON schema for road networks: a direct encoding
// of the paper's §2 model (vertices with positions, directed weighted
// edges). Real-world users can export OSM extracts into this format.
type graphJSON struct {
	Vertices []vertexJSON `json:"vertices"`
	Edges    []edgeJSON   `json:"edges"`
}

type vertexJSON struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type edgeJSON struct {
	ID        int     `json:"id"`
	From      int     `json:"from"`
	To        int     `json:"to"`
	Length    float64 `json:"length_m"`
	FreeSpeed float64 `json:"free_speed_mps"`
	Class     string  `json:"class"`
}

// WriteJSON serializes the graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := graphJSON{
		Vertices: make([]vertexJSON, len(g.Vertices)),
		Edges:    make([]edgeJSON, len(g.Edges)),
	}
	for i, v := range g.Vertices {
		out.Vertices[i] = vertexJSON{ID: int(v.ID), X: v.Pos.X, Y: v.Pos.Y}
	}
	for i, e := range g.Edges {
		out.Edges[i] = edgeJSON{
			ID: int(e.ID), From: int(e.From), To: int(e.To),
			Length: e.Length, FreeSpeed: e.FreeSpeed, Class: e.Class.String(),
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("roadnet: encoding graph: %w", err)
	}
	return nil
}

// ReadJSON deserializes a graph written by WriteJSON (or hand-authored in
// the same schema), validating structure through NewGraph.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in graphJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("roadnet: decoding graph: %w", err)
	}
	vertices := make([]Vertex, len(in.Vertices))
	for i, v := range in.Vertices {
		vertices[i] = Vertex{ID: VertexID(v.ID), Pos: geo.Point{X: v.X, Y: v.Y}}
	}
	edges := make([]Edge, len(in.Edges))
	for i, e := range in.Edges {
		var class RoadClass
		switch e.Class {
		case "arterial":
			class = Arterial
		case "local", "":
			class = Local
		default:
			return nil, fmt.Errorf("roadnet: edge %d has unknown class %q", e.ID, e.Class)
		}
		edges[i] = Edge{
			ID: EdgeID(e.ID), From: VertexID(e.From), To: VertexID(e.To),
			Length: e.Length, FreeSpeed: e.FreeSpeed, Class: class,
		}
	}
	return NewGraph(vertices, edges)
}
