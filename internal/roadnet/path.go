package roadnet

import (
	"container/heap"
	"fmt"
	"math"
)

// EdgeCostFunc returns the traversal cost (seconds) of edge e when entered
// at time enterSec (seconds since the dataset's base time). Time-dependent
// costs let route synthesis react to simulated congestion; a nil-time cost
// (constant) yields classic Dijkstra.
type EdgeCostFunc func(e EdgeID, enterSec float64) float64

// FreeFlowCost returns an EdgeCostFunc using each edge's free-flow speed.
func FreeFlowCost(g *Graph) EdgeCostFunc {
	return func(e EdgeID, _ float64) float64 {
		ed := g.Edges[e]
		return ed.Length / ed.FreeSpeed
	}
}

// Path is a sequence of edge IDs plus the total cost in seconds.
type Path struct {
	Edges []EdgeID
	Cost  float64
}

type pqItem struct {
	vertex VertexID
	dist   float64
	index  int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int           { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i]; pq[i].index = i; pq[j].index = j }
func (pq *priorityQueue) Push(x interface{}) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// ShortestPath runs time-dependent Dijkstra from src to dst, departing at
// departSec. Costs are evaluated at the arrival time of each edge's tail,
// which keeps the label-setting property as long as cost never makes an
// earlier departure arrive later (our congestion fields satisfy this FIFO
// property by construction).
func ShortestPath(g *Graph, src, dst VertexID, departSec float64, cost EdgeCostFunc) (Path, error) {
	if int(src) >= g.NumVertices() || int(dst) >= g.NumVertices() || src < 0 || dst < 0 {
		return Path{}, fmt.Errorf("roadnet: shortest path endpoints out of range (%d, %d)", src, dst)
	}
	n := g.NumVertices()
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0

	pq := priorityQueue{{vertex: src, dist: 0}}
	heap.Init(&pq)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(*pqItem)
		u := it.vertex
		if visited[u] {
			continue
		}
		visited[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.Out(u) {
			e := g.Edges[eid]
			c := cost(eid, departSec+dist[u])
			if c < 0 || math.IsNaN(c) {
				return Path{}, fmt.Errorf("roadnet: cost function returned invalid cost %v for edge %d", c, eid)
			}
			nd := dist[u] + c
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(&pq, &pqItem{vertex: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("roadnet: no path from %d to %d", src, dst)
	}
	// Reconstruct.
	var rev []EdgeID
	for v := dst; v != src; {
		eid := prevEdge[v]
		rev = append(rev, eid)
		v = g.Edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return Path{Edges: edges, Cost: dist[dst]}, nil
}

// PathLength returns the total length in meters of a path's edges.
func PathLength(g *Graph, edges []EdgeID) float64 {
	var s float64
	for _, e := range edges {
		s += g.Edges[e].Length
	}
	return s
}

// ValidatePath checks edge connectivity (each edge's head is the next
// edge's tail).
func ValidatePath(g *Graph, edges []EdgeID) error {
	for i := 1; i < len(edges); i++ {
		if g.Edges[edges[i-1]].To != g.Edges[edges[i]].From {
			return fmt.Errorf("roadnet: path broken between positions %d and %d", i-1, i)
		}
	}
	return nil
}
