package roadnet

import (
	"fmt"
	"math/rand"

	"deepod/internal/geo"
)

// CityConfig parameterizes the synthetic city generator. The generator
// produces a perturbed grid of two-way local streets overlaid with a sparser
// set of faster arterials, plus a fraction of one-way streets — enough
// structural richness that many OD pairs admit multiple routes with
// different travel times (the property Example 1 of the paper hinges on).
type CityConfig struct {
	// Name labels the city in reports (e.g. "chengdu-s").
	Name string
	// RowsxCols intersections.
	Rows, Cols int
	// BlockMeters is the nominal spacing between intersections.
	BlockMeters float64
	// Jitter displaces intersections by up to this fraction of a block.
	Jitter float64
	// ArterialEvery marks every k-th row/column as arterial (0 disables).
	ArterialEvery int
	// OneWayFrac removes the reverse direction of this fraction of local
	// street pairs.
	OneWayFrac float64
	// LocalSpeed and ArterialSpeed are free-flow speeds in m/s.
	LocalSpeed, ArterialSpeed float64
	// RiverAfterRow, when ≥ 0, removes every vertical street between row
	// RiverAfterRow and RiverAfterRow+1 except RiverBridges evenly spaced
	// bridges — a horizontal barrier (river/railway) that decouples network
	// distance from Euclidean distance, as in real cities.
	RiverAfterRow int
	RiverBridges  int
	// RailAfterCol does the same vertically (e.g. a railway corridor).
	RailAfterCol  int
	RailCrossings int
	// Seed drives all randomness; same config + seed = same city.
	Seed int64
}

// Validate checks the configuration for obvious mistakes.
func (c CityConfig) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("roadnet: city needs at least a 2x2 grid, got %dx%d", c.Rows, c.Cols)
	}
	if c.BlockMeters <= 0 {
		return fmt.Errorf("roadnet: block size must be positive, got %v", c.BlockMeters)
	}
	if c.Jitter < 0 || c.Jitter >= 0.5 {
		return fmt.Errorf("roadnet: jitter must be in [0, 0.5), got %v", c.Jitter)
	}
	if c.OneWayFrac < 0 || c.OneWayFrac > 0.9 {
		return fmt.Errorf("roadnet: one-way fraction must be in [0, 0.9], got %v", c.OneWayFrac)
	}
	if c.LocalSpeed <= 0 || c.ArterialSpeed <= 0 {
		return fmt.Errorf("roadnet: speeds must be positive")
	}
	return nil
}

// SmallCity returns a compact default config suitable for tests.
func SmallCity(name string, seed int64) CityConfig {
	return CityConfig{
		Name: name, Rows: 8, Cols: 8, BlockMeters: 250,
		Jitter: 0.15, ArterialEvery: 3, OneWayFrac: 0.1,
		LocalSpeed: 8.3, ArterialSpeed: 13.9, // 30 km/h and 50 km/h
		RiverAfterRow: -1, RailAfterCol: -1,
		Seed: seed,
	}
}

// CityPreset returns one of the three named presets mirroring the relative
// sizes of the paper's road networks (CRN < XRN ≪ BRN).
func CityPreset(name string) (CityConfig, error) {
	switch name {
	case "chengdu-s":
		c := SmallCity(name, 11)
		c.Rows, c.Cols = 10, 10
		c.RiverAfterRow, c.RiverBridges = 4, 2
		return c, nil
	case "xian-s":
		c := SmallCity(name, 23)
		c.Rows, c.Cols = 12, 11
		c.RiverAfterRow, c.RiverBridges = 5, 2
		return c, nil
	case "beijing-s":
		c := SmallCity(name, 37)
		c.Rows, c.Cols = 18, 16
		c.RiverAfterRow, c.RiverBridges = 8, 3
		c.RailAfterCol, c.RailCrossings = 7, 3
		return c, nil
	}
	return CityConfig{}, fmt.Errorf("roadnet: unknown city preset %q (want chengdu-s, xian-s or beijing-s)", name)
}

// GenerateCity builds a synthetic road network from cfg.
func GenerateCity(cfg CityConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	vertices := make([]Vertex, 0, cfg.Rows*cfg.Cols)
	vid := func(r, c int) VertexID { return VertexID(r*cfg.Cols + c) }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.BlockMeters
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.BlockMeters
			vertices = append(vertices, Vertex{
				ID: vid(r, c),
				Pos: geo.Point{
					X: float64(c)*cfg.BlockMeters + jx,
					Y: float64(r)*cfg.BlockMeters + jy,
				},
			})
		}
	}

	isArterialLine := func(i int) bool {
		return cfg.ArterialEvery > 0 && i%cfg.ArterialEvery == 0
	}

	var edges []Edge
	addPair := func(a, b VertexID, class RoadClass) {
		length := geo.Dist(vertices[a].Pos, vertices[b].Pos)
		speed := cfg.LocalSpeed
		if class == Arterial {
			speed = cfg.ArterialSpeed
		}
		oneWay := class == Local && rng.Float64() < cfg.OneWayFrac
		edges = append(edges, Edge{ID: EdgeID(len(edges)), From: a, To: b, Length: length, FreeSpeed: speed, Class: class})
		if !oneWay {
			edges = append(edges, Edge{ID: EdgeID(len(edges)), From: b, To: a, Length: length, FreeSpeed: speed, Class: class})
		}
	}
	// Barrier crossings: evenly spaced bridge columns / crossing rows.
	spaced := func(n, total int) map[int]bool {
		keep := map[int]bool{}
		if n <= 0 {
			return keep
		}
		for i := 0; i < n; i++ {
			keep[(2*i+1)*total/(2*n)] = true
		}
		return keep
	}
	bridgeCols := spaced(cfg.RiverBridges, cfg.Cols)
	crossRows := spaced(cfg.RailCrossings, cfg.Rows)

	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols { // horizontal street along row r
				if cfg.RailAfterCol >= 0 && c == cfg.RailAfterCol && !crossRows[r] {
					// severed by the rail corridor
				} else {
					class := Local
					if isArterialLine(r) {
						class = Arterial
					}
					// Rail crossings are two-way arterials so neither side
					// can become unreachable.
					if cfg.RailAfterCol >= 0 && c == cfg.RailAfterCol {
						class = Arterial
					}
					addPair(vid(r, c), vid(r, c+1), class)
				}
			}
			if r+1 < cfg.Rows { // vertical street along column c
				if cfg.RiverAfterRow >= 0 && r == cfg.RiverAfterRow && !bridgeCols[c] {
					// severed by the river
					continue
				}
				class := Local
				if isArterialLine(c) {
					class = Arterial
				}
				// Bridges are fast arterials.
				if cfg.RiverAfterRow >= 0 && r == cfg.RiverAfterRow {
					class = Arterial
				}
				addPair(vid(r, c), vid(r+1, c), class)
			}
		}
	}
	return NewGraph(vertices, edges)
}
