package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deepod/internal/geo"
)

func testCity(t testing.TB) *Graph {
	t.Helper()
	g, err := GenerateCity(SmallCity("t", 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateCityStructure(t *testing.T) {
	cfg := SmallCity("t", 3)
	g, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != cfg.Rows*cfg.Cols {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), cfg.Rows*cfg.Cols)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
	// Every edge length must roughly match a block.
	for _, e := range g.Edges {
		if e.Length < cfg.BlockMeters*0.3 || e.Length > cfg.BlockMeters*2 {
			t.Fatalf("edge %d has implausible length %v", e.ID, e.Length)
		}
	}
	// Determinism.
	g2, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("same config produced different cities")
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatal("edge mismatch between identical generations")
		}
	}
}

func TestGenerateCityValidation(t *testing.T) {
	bad := SmallCity("t", 1)
	bad.Rows = 1
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("1-row city accepted")
	}
	bad = SmallCity("t", 1)
	bad.Jitter = 0.9
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("jitter 0.9 accepted")
	}
	bad = SmallCity("t", 1)
	bad.OneWayFrac = 1
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("one-way fraction 1 accepted")
	}
}

func TestCityPresets(t *testing.T) {
	sizes := map[string]int{}
	for _, name := range []string{"chengdu-s", "xian-s", "beijing-s"} {
		cfg, err := CityPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GenerateCity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sizes[name] = g.NumEdges()
	}
	if !(sizes["chengdu-s"] < sizes["beijing-s"] && sizes["xian-s"] < sizes["beijing-s"]) {
		t.Fatalf("beijing-s should be the largest network: %v", sizes)
	}
	if _, err := CityPreset("atlantis"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRiverSeversVerticalStreets(t *testing.T) {
	cfg := SmallCity("t", 3)
	cfg.RiverAfterRow, cfg.RiverBridges = 3, 2
	g, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count vertical edges crossing between rows 3 and 4: only bridge
	// columns should survive (2 bridges × 2 directions).
	crossing := 0
	for _, e := range g.Edges {
		fr, to := int(e.From)/cfg.Cols, int(e.To)/cfg.Cols
		if (fr == 3 && to == 4) || (fr == 4 && to == 3) {
			crossing++
		}
	}
	if crossing != 4 {
		t.Fatalf("river crossing edges = %d, want 4 (2 bridges, both directions)", crossing)
	}
	// Both sides must stay mutually reachable via the bridges.
	if _, err := ShortestPath(g, 0, VertexID(g.NumVertices()-1), 0, FreeFlowCost(g)); err != nil {
		t.Fatalf("river disconnected the city: %v", err)
	}
	if _, err := ShortestPath(g, VertexID(g.NumVertices()-1), 0, 0, FreeFlowCost(g)); err != nil {
		t.Fatalf("river disconnected the reverse direction: %v", err)
	}
}

func TestShortestPathProperties(t *testing.T) {
	g := testCity(t)
	cost := FreeFlowCost(g)
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := VertexID(rng.Intn(g.NumVertices()))
		dst := VertexID(rng.Intn(g.NumVertices()))
		p, err := ShortestPath(g, src, dst, 0, cost)
		if err != nil {
			return true // disconnected pair is legal with one-way streets
		}
		if src == dst {
			return len(p.Edges) == 0 && p.Cost == 0
		}
		if err := ValidatePath(g, p.Edges); err != nil {
			t.Logf("invalid path: %v", err)
			return false
		}
		if len(p.Edges) > 0 {
			if g.Edges[p.Edges[0]].From != src || g.Edges[p.Edges[len(p.Edges)-1]].To != dst {
				return false
			}
		}
		// Cost equals the sum of edge costs.
		var s float64
		for _, e := range p.Edges {
			s += cost(e, 0)
		}
		return math.Abs(s-p.Cost) < 1e-9
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := testCity(t)
	if _, err := ShortestPath(g, -1, 0, 0, FreeFlowCost(g)); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := ShortestPath(g, 0, 1, 0, func(EdgeID, float64) float64 { return math.NaN() }); err == nil {
		t.Fatal("NaN cost accepted")
	}
}

func TestPathLength(t *testing.T) {
	g := testCity(t)
	p, err := ShortestPath(g, 0, VertexID(g.NumVertices()-1), 0, FreeFlowCost(g))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, e := range p.Edges {
		want += g.Edges[e].Length
	}
	if got := PathLength(g, p.Edges); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PathLength = %v, want %v", got, want)
	}
}

func TestNewGraphValidation(t *testing.T) {
	v := []Vertex{{ID: 0}, {ID: 1}}
	if _, err := NewGraph(v, []Edge{{ID: 0, From: 0, To: 5, Length: 1, FreeSpeed: 1}}); err == nil {
		t.Fatal("dangling edge accepted")
	}
	if _, err := NewGraph(v, []Edge{{ID: 0, From: 0, To: 1, Length: 0, FreeSpeed: 1}}); err == nil {
		t.Fatal("zero-length edge accepted")
	}
	if _, err := NewGraph(v, []Edge{{ID: 0, From: 0, To: 1, Length: 1, FreeSpeed: -2}}); err == nil {
		t.Fatal("negative speed accepted")
	}
	if _, err := NewGraph(v, []Edge{{ID: 7, From: 0, To: 1, Length: 1, FreeSpeed: 1}}); err == nil {
		t.Fatal("non-dense edge ID accepted")
	}
}

func TestAdjacency(t *testing.T) {
	g := testCity(t)
	for vid := 0; vid < g.NumVertices(); vid++ {
		for _, e := range g.Out(VertexID(vid)) {
			if g.Edges[e].From != VertexID(vid) {
				t.Fatalf("Out(%d) lists edge %d with From %d", vid, e, g.Edges[e].From)
			}
		}
		for _, e := range g.In(VertexID(vid)) {
			if g.Edges[e].To != VertexID(vid) {
				t.Fatalf("In(%d) lists edge %d with To %d", vid, e, g.Edges[e].To)
			}
		}
	}
}

func TestLineGraph(t *testing.T) {
	g := testCity(t)
	// Two synthetic trajectories sharing a turn.
	var turnA, turnB EdgeID = -1, -1
	for _, e := range g.Edges {
		for _, next := range g.Out(e.To) {
			if g.Edges[next].To != e.From { // not a U-turn
				turnA, turnB = e.ID, next
				break
			}
		}
		if turnA >= 0 {
			break
		}
	}
	if turnA < 0 {
		t.Fatal("no turn found in city")
	}
	lg, err := BuildLineGraph(g, [][]EdgeID{{turnA, turnB}, {turnA, turnB}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumNodes != g.NumEdges() {
		t.Fatalf("line graph nodes = %d, want %d", lg.NumNodes, g.NumEdges())
	}
	// The co-passed link must weigh base + 2.
	found := false
	for _, l := range lg.Adj[turnA] {
		if l.To == int(turnB) {
			found = true
			if l.Weight != 2.5 {
				t.Fatalf("co-occurrence weight = %v, want 2.5", l.Weight)
			}
		} else if l.Weight != 0.5 {
			t.Fatalf("untraversed link weight = %v, want base 0.5", l.Weight)
		}
	}
	if !found {
		t.Fatal("line graph missing the traversed link")
	}
	if lg.NumLinks() == 0 {
		t.Fatal("line graph has no links")
	}
	if _, err := BuildLineGraph(g, nil, -1); err == nil {
		t.Fatal("negative base accepted")
	}
	if _, err := BuildLineGraph(g, [][]EdgeID{{0, EdgeID(g.NumEdges() + 5)}}, 0); err == nil {
		t.Fatal("out-of-range trajectory edge accepted")
	}
}

func TestEdgeIndexNearest(t *testing.T) {
	g := testCity(t)
	idx, err := NewEdgeIndex(g, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Query exactly on an edge midpoint: that edge (or its reverse twin)
	// must be the nearest.
	for trial := 0; trial < 20; trial++ {
		e := EdgeID(trial * 7 % g.NumEdges())
		mid := g.PointAlongEdge(e, 0.5)
		c, err := idx.NearestEdge(mid)
		if err != nil {
			t.Fatal(err)
		}
		if c.Dist > 1 {
			t.Fatalf("nearest edge to a midpoint is %v m away", c.Dist)
		}
	}
	// k-nearest is ordered.
	cands := idx.Nearest(geo.Point{X: 500, Y: 500}, 5)
	for i := 1; i < len(cands); i++ {
		if cands[i].Dist < cands[i-1].Dist {
			t.Fatal("Nearest results not ordered by distance")
		}
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := testCity(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d changed in round trip", i)
		}
	}
	for i := range g.Vertices {
		if g.Vertices[i] != g2.Vertices[i] {
			t.Fatalf("vertex %d changed in round trip", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Unknown class.
	bad := `{"vertices":[{"id":0,"x":0,"y":0},{"id":1,"x":1,"y":0}],
	         "edges":[{"id":0,"from":0,"to":1,"length_m":1,"free_speed_mps":1,"class":"hyperloop"}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown class accepted")
	}
	// Dangling edge caught by NewGraph.
	bad2 := `{"vertices":[{"id":0,"x":0,"y":0}],
	          "edges":[{"id":0,"from":0,"to":9,"length_m":1,"free_speed_mps":1,"class":"local"}]}`
	if _, err := ReadJSON(strings.NewReader(bad2)); err == nil {
		t.Fatal("dangling edge accepted")
	}
}
