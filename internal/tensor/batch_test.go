package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestAffineBatchMatchesMatVecAdd pins the batched bit-exactness contract:
// every row of AffineBatchInto must equal MatVecAddInto on that row alone,
// compared by Float64bits. core.EstimateBatchFused's bitwise equality with
// the per-sample path — and therefore flight-recorder replay — depends on
// exactly this property.
func TestAffineBatchMatchesMatVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		bsz, in, out := 1+rng.Intn(70), 1+rng.Intn(90), 1+rng.Intn(90)
		x := randTensor(rng, bsz, in)
		w := randTensor(rng, out, in)
		bias := randTensor(rng, out)
		dst := New(bsz, out)
		AffineBatchInto(dst, x, w, bias)
		ref := New(out)
		for r := 0; r < bsz; r++ {
			xr := FromSlice(x.Data[r*in:(r+1)*in], in)
			MatVecAddInto(ref, w, xr, bias)
			for i := 0; i < out; i++ {
				got, want := dst.Data[r*out+i], ref.Data[i]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("trial %d [B=%d in=%d out=%d] row %d elem %d: batched %v != per-sample %v",
						trial, bsz, in, out, r, i, got, want)
				}
			}
		}
	}
}

// TestMatMulIntoMatchesMatMul covers the *Into variant on non-square shapes
// crossing block boundaries, with and without a caller-provided scratch.
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var scratch []float64
	for _, dims := range [][3]int{{1, 1, 1}, {2, 7, 3}, {64, 64, 64}, {65, 33, 70}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := MatMul(a, b)
		dst := New(m, n)
		MatMulInto(dst, a, b, nil)
		for i := range want.Data {
			if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("%v nil-scratch elem %d: %v != %v", dims, i, dst.Data[i], want.Data[i])
			}
		}
		// Reused (and growing) caller scratch must give identical results.
		if len(scratch) < k*n {
			scratch = make([]float64, k*n)
		}
		dst.Fill(math.NaN())
		MatMulInto(dst, a, b, scratch)
		for i := range want.Data {
			if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("%v reused-scratch elem %d: %v != %v", dims, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// TestBatchKernelEdgeCases covers the degenerate shapes the admission batcher
// can produce: an empty batch (no drained jobs), a single 1×1 sample, and
// shape mismatches that must panic rather than write out of bounds.
func TestBatchKernelEdgeCases(t *testing.T) {
	t.Run("EmptyBatch", func(t *testing.T) {
		// New rejects zero dims, so build the 0-row views by hand — the
		// kernels must treat them as no-ops, not index past nil Data.
		x := &Tensor{Shape: []int{0, 3}}
		dst := &Tensor{Shape: []int{0, 2}}
		AffineBatchInto(dst, x, New(2, 3), New(2))
		MatMulInto(&Tensor{Shape: []int{0, 4}}, &Tensor{Shape: []int{0, 3}}, New(3, 4), nil)
	})
	t.Run("OneByOne", func(t *testing.T) {
		x := FromSlice([]float64{3}, 1, 1)
		w := FromSlice([]float64{-2}, 1, 1)
		bias := Vector(10)
		dst := New(1, 1)
		AffineBatchInto(dst, x, w, bias)
		if dst.Data[0] != 4 {
			t.Fatalf("1x1 affine = %v, want 4", dst.Data[0])
		}
		MatMulInto(dst, x, w, nil)
		if dst.Data[0] != -6 {
			t.Fatalf("1x1 matmul = %v, want -6", dst.Data[0])
		}
	})
	for name, f := range map[string]func(){
		"AffineBatchVectorX":   func() { AffineBatchInto(New(2, 2), New(4), New(2, 2), New(2)) },
		"AffineBatchInnerDim":  func() { AffineBatchInto(New(2, 3), New(2, 5), New(3, 4), New(3)) },
		"AffineBatchBiasSize":  func() { AffineBatchInto(New(2, 3), New(2, 4), New(3, 4), New(2)) },
		"AffineBatchDstShape":  func() { AffineBatchInto(New(3, 3), New(2, 4), New(3, 4), New(3)) },
		"MatMulIntoInnerDim":   func() { MatMulInto(New(2, 2), New(2, 3), New(4, 2), nil) },
		"MatMulIntoDstShape":   func() { MatMulInto(New(3, 2), New(2, 3), New(3, 2), nil) },
		"MatMulIntoShortScrap": func() { MatMulInto(New(2, 2), New(2, 3), New(3, 2), make([]float64, 5)) },
	} {
		f := f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

// TestReLUInPlaceMatchesTapeReLU checks the batched activation against
// math.Max(0, x) element-wise — the exact function the per-sample tape ReLU
// applies — including the NaN and signed-zero corners.
func TestReLUInPlaceMatchesTapeReLU(t *testing.T) {
	in := []float64{-1.5, 0, math.Copysign(0, -1), 2.25, math.NaN(), math.Inf(-1), math.Inf(1)}
	got := FromSlice(append([]float64(nil), in...), len(in))
	ReLUInPlace(got)
	for i, v := range in {
		want := math.Max(0, v)
		if math.Float64bits(got.Data[i]) != math.Float64bits(want) {
			t.Fatalf("elem %d (%v): ReLUInPlace %v (bits %x), want %v (bits %x)",
				i, v, got.Data[i], math.Float64bits(got.Data[i]), want, math.Float64bits(want))
		}
	}
}

// TestArenaFromSliceViews exercises arena-header row views across Reset
// cycles: views must alias the caller's data (zero copy), survive slab
// growth within a cycle, and the arena must hand out fresh headers after
// Reset without disturbing the underlying batch matrix.
func TestArenaFromSliceViews(t *testing.T) {
	var a Arena
	batch := New(4, 3)
	for i := range batch.Data {
		batch.Data[i] = float64(i)
	}
	for cycle := 0; cycle < 3; cycle++ {
		views := make([]*Tensor, 4)
		for r := 0; r < 4; r++ {
			views[r] = a.FromSlice(batch.Data[r*3:(r+1)*3], 3)
			// Interleave regular arena allocations so header slabs advance.
			a.New(16, 16)
		}
		for r, v := range views {
			if &v.Data[0] != &batch.Data[r*3] {
				t.Fatalf("cycle %d row %d: view copied instead of aliasing", cycle, r)
			}
			v.Data[0] = -1 // must write through to the batch matrix
			if batch.Data[r*3] != -1 {
				t.Fatalf("cycle %d row %d: write did not alias", cycle, r)
			}
			batch.Data[r*3] = float64(r * 3)
		}
		a.Reset()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	a.FromSlice(batch.Data, 5, 3)
}

// TestAffineBatchF32MatchesReference checks the float32 serving kernel
// against a naive float32 dot product (same sequential order, float32
// accumulation throughout) and the NaN clamp of its activation.
func TestAffineBatchF32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		bsz, in, out := 1+rng.Intn(50), 1+rng.Intn(70), 1+rng.Intn(70)
		x := make([]float32, bsz*in)
		w := make([]float32, out*in)
		bias := make([]float32, out)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		dst := make([]float32, bsz*out)
		AffineBatchF32Into(dst, x, w, bias, bsz, in, out)
		for r := 0; r < bsz; r++ {
			for i := 0; i < out; i++ {
				var s float32
				for j := 0; j < in; j++ {
					s += w[i*in+j] * x[r*in+j]
				}
				want := s + bias[i]
				if got := dst[r*out+i]; math.Float32bits(got) != math.Float32bits(want) {
					t.Fatalf("trial %d [B=%d in=%d out=%d] row %d elem %d: %v != %v",
						trial, bsz, in, out, r, i, got, want)
				}
			}
		}
	}
	v := []float32{-2, 0, 3, float32(math.NaN())}
	ReLUInPlaceF32(v)
	for i, want := range []float32{0, 0, 3, 0} {
		if v[i] != want {
			t.Fatalf("ReLUInPlaceF32[%d] = %v, want %v", i, v[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undersized f32 dst did not panic")
		}
	}()
	AffineBatchF32Into(make([]float32, 3), make([]float32, 4), make([]float32, 4), make([]float32, 2), 2, 2, 2)
}

// TestF32FromF64 pins the quantization helper: plain float32 rounding.
func TestF32FromF64(t *testing.T) {
	src := []float64{0, 1.0 / 3.0, -1e40, 1e-60, math.Inf(1)}
	got := F32FromF64(src)
	for i, v := range src {
		if want := float32(v); math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("elem %d: %v, want %v", i, got[i], want)
		}
	}
}

func fusedBatchShapes() [][3]int {
	return [][3]int{{4, 67, 32}, {16, 67, 32}, {64, 67, 32}}
}

func BenchmarkAffineBatchInto(b *testing.B) {
	for _, dims := range fusedBatchShapes() {
		bsz, in, out := dims[0], dims[1], dims[2]
		b.Run(fmt.Sprintf("B%d_%dx%d", bsz, in, out), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randTensor(rng, bsz, in)
			w := randTensor(rng, out, in)
			bias := randTensor(rng, out)
			dst := New(bsz, out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AffineBatchInto(dst, x, w, bias)
			}
		})
	}
}

// BenchmarkAffineMatVecLoop is the per-sample baseline for the same shapes
// as BenchmarkAffineBatchInto: B independent MatVecAddInto calls.
func BenchmarkAffineMatVecLoop(b *testing.B) {
	for _, dims := range fusedBatchShapes() {
		bsz, in, out := dims[0], dims[1], dims[2]
		b.Run(fmt.Sprintf("B%d_%dx%d", bsz, in, out), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randTensor(rng, bsz, in)
			w := randTensor(rng, out, in)
			bias := randTensor(rng, out)
			dst := New(out)
			rows := make([]*Tensor, bsz)
			for r := 0; r < bsz; r++ {
				rows[r] = FromSlice(x.Data[r*in:(r+1)*in], in)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < bsz; r++ {
					MatVecAddInto(dst, w, rows[r], bias)
				}
			}
		})
	}
}

func BenchmarkAffineBatchF32Into(b *testing.B) {
	for _, dims := range fusedBatchShapes() {
		bsz, in, out := dims[0], dims[1], dims[2]
		b.Run(fmt.Sprintf("B%d_%dx%d", bsz, in, out), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := make([]float32, bsz*in)
			w := make([]float32, out*in)
			bias := make([]float32, out)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			for i := range w {
				w[i] = float32(rng.NormFloat64())
			}
			dst := make([]float32, bsz*out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AffineBatchF32Into(dst, x, w, bias, bsz, in, out)
			}
		})
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randTensor(rng, n, n)
			y := randTensor(rng, n, n)
			dst := New(n, n)
			scratch := make([]float64, n*n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, x, y, scratch)
			}
		})
	}
}
