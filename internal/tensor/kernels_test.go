package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatVecAddMatchesUnfused pins the bit-exactness contract: the fused
// affine kernel must equal MatVec followed by Add exactly, not just within
// tolerance, because the deterministic-training guarantee of internal/core
// rides on it.
func TestMatVecAddMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		w := randTensor(rng, m, n)
		x := randTensor(rng, n)
		b := randTensor(rng, m)
		got := MatVecAdd(w, x, b)
		want := Add(MatVec(w, x), b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d elem %d: fused %v != unfused %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulMatchesReference checks the blocked transposed-B kernel against
// a naive triple loop on asymmetric shapes crossing block boundaries.
func TestMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {63, 64, 65}, {70, 130, 33}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		got := MatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for p := 0; p < k; p++ {
					want += a.Data[i*k+p] * b.Data[p*n+j]
				}
				if math.Abs(got.Data[i*n+j]-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("%v: out[%d,%d] = %v, want %v", dims, i, j, got.Data[i*n+j], want)
				}
			}
		}
	}
}

func TestAddScaledAndAddMulInPlace(t *testing.T) {
	dst := Vector(1, 2, 3)
	dst.AddScaledInPlace(Vector(10, 20, 30), -0.5)
	for i, want := range []float64{-4, -8, -12} {
		if dst.Data[i] != want {
			t.Fatalf("AddScaledInPlace[%d] = %v, want %v", i, dst.Data[i], want)
		}
	}
	dst = Vector(1, 1, 1)
	dst.AddMulInPlace(Vector(2, 3, 4), Vector(5, 6, 7))
	for i, want := range []float64{11, 19, 29} {
		if dst.Data[i] != want {
			t.Fatalf("AddMulInPlace[%d] = %v, want %v", i, dst.Data[i], want)
		}
	}
}
