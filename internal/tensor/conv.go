package tensor

import "fmt"

// Conv2D computes a stride-configurable 2-D cross-correlation of x by k.
//
// x has shape [C, H, W]; k has shape [OC, C, KH, KW]. The input is
// zero-padded by padH rows on top/bottom and padW columns on left/right.
// The output has shape [OC, H', W'] with H' = (H+2*padH-KH)/strideH + 1 and
// W' = (W+2*padW-KW)/strideW + 1.
//
// The DeepOD time-interval encoder uses 3×1 kernels with padH=1 (Formulas
// 5–7 of the paper); the traffic-condition CNN uses 3×3 kernels with
// stride 2.
func Conv2D(x, k *Tensor, padH, padW, strideH, strideW int) *Tensor {
	oc, oh, ow := conv2DOutShape(x, k, padH, padW, strideH, strideW)
	out := New(oc, oh, ow)
	conv2DForward(out, x, k, padH, padW, strideH, strideW)
	return out
}

// Conv2DInto is Conv2D with the output carved from an arena instead of the
// heap, for allocation-free training steps.
func Conv2DInto(a *Arena, x, k *Tensor, padH, padW, strideH, strideW int) *Tensor {
	oc, oh, ow := conv2DOutShape(x, k, padH, padW, strideH, strideW)
	out := a.New(oc, oh, ow)
	conv2DForward(out, x, k, padH, padW, strideH, strideW)
	return out
}

func conv2DOutShape(x, k *Tensor, padH, padW, strideH, strideW int) (oc, oh, ow int) {
	_, h, w := convCheck(x, k)
	kh, kw := k.Shape[2], k.Shape[3]
	oc = k.Shape[0]
	oh = (h+2*padH-kh)/strideH + 1
	ow = (w+2*padW-kw)/strideW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D output would be empty (x %v, k %v, pad %d,%d stride %d,%d)",
			x.Shape, k.Shape, padH, padW, strideH, strideW))
	}
	return oc, oh, ow
}

func conv2DForward(out, x, k *Tensor, padH, padW, strideH, strideW int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*strideH + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*strideW + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							s += x.Data[(ci*h+iy)*w+ix] * k.Data[((o*c+ci)*kh+ky)*kw+kx]
						}
					}
				}
				out.Data[(o*oh+oy)*ow+ox] = s
			}
		}
	}
}

// Conv2DBackward returns the gradients of a Conv2D call with respect to its
// input and kernel, given the gradient of the loss with respect to the
// output. Shapes must match the corresponding forward call.
func Conv2DBackward(x, k, gradOut *Tensor, padH, padW, strideH, strideW int) (gradX, gradK *Tensor) {
	c, h, w := convCheck(x, k)
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	gradX = New(c, h, w)
	gradK = New(oc, c, kh, kw)
	conv2DBackward(gradX, gradK, x, k, gradOut, padH, padW, strideH, strideW)
	return gradX, gradK
}

// Conv2DBackwardInto is Conv2DBackward with the gradient scratch carved from
// an arena; the returned tensors are valid until the arena is reset.
func Conv2DBackwardInto(a *Arena, x, k, gradOut *Tensor, padH, padW, strideH, strideW int) (gradX, gradK *Tensor) {
	c, h, w := convCheck(x, k)
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	gradX = a.New(c, h, w)
	gradK = a.New(oc, c, kh, kw)
	conv2DBackward(gradX, gradK, x, k, gradOut, padH, padW, strideH, strideW)
	return gradX, gradK
}

func conv2DBackward(gradX, gradK, x, k, gradOut *Tensor, padH, padW, strideH, strideW int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	oh, ow := gradOut.Shape[1], gradOut.Shape[2]
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gradOut.Data[(o*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*strideH + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*strideW + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							gradX.Data[(ci*h+iy)*w+ix] += g * k.Data[((o*c+ci)*kh+ky)*kw+kx]
							gradK.Data[((o*c+ci)*kh+ky)*kw+kx] += g * x.Data[(ci*h+iy)*w+ix]
						}
					}
				}
			}
		}
	}
}

func convCheck(x, k *Tensor) (c, h, w int) {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Conv2D input must be [C,H,W], got %v", x.Shape))
	}
	if k.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D kernel must be [OC,C,KH,KW], got %v", k.Shape))
	}
	if k.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: input %v kernel %v", x.Shape, k.Shape))
	}
	return x.Shape[0], x.Shape[1], x.Shape[2]
}
