package tensor

import "fmt"

// Conv2D computes a stride-configurable 2-D cross-correlation of x by k.
//
// x has shape [C, H, W]; k has shape [OC, C, KH, KW]. The input is
// zero-padded by padH rows on top/bottom and padW columns on left/right.
// The output has shape [OC, H', W'] with H' = (H+2*padH-KH)/strideH + 1 and
// W' = (W+2*padW-KW)/strideW + 1.
//
// The DeepOD time-interval encoder uses 3×1 kernels with padH=1 (Formulas
// 5–7 of the paper); the traffic-condition CNN uses 3×3 kernels with
// stride 2.
func Conv2D(x, k *Tensor, padH, padW, strideH, strideW int) *Tensor {
	oc, oh, ow := conv2DOutShape(x, k, padH, padW, strideH, strideW)
	out := New(oc, oh, ow)
	conv2DForward(out, x, k, padH, padW, strideH, strideW)
	return out
}

// Conv2DInto is Conv2D with the output carved from an arena instead of the
// heap, for allocation-free training steps.
func Conv2DInto(a *Arena, x, k *Tensor, padH, padW, strideH, strideW int) *Tensor {
	oc, oh, ow := conv2DOutShape(x, k, padH, padW, strideH, strideW)
	out := a.New(oc, oh, ow)
	conv2DForward(out, x, k, padH, padW, strideH, strideW)
	return out
}

func conv2DOutShape(x, k *Tensor, padH, padW, strideH, strideW int) (oc, oh, ow int) {
	_, h, w := convCheck(x, k)
	kh, kw := k.Shape[2], k.Shape[3]
	oc = k.Shape[0]
	oh = (h+2*padH-kh)/strideH + 1
	ow = (w+2*padW-kw)/strideW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D output would be empty (x %v, k %v, pad %d,%d stride %d,%d)",
			x.Shape, k.Shape, padH, padW, strideH, strideW))
	}
	return oc, oh, ow
}

// conv2DForward accumulates each output element over (ci, ky, kx) in
// ascending order, visiting only in-bounds taps. The valid kernel ranges are
// computed per output row/column instead of branch-testing every tap, and the
// innermost loop runs over two pre-sliced rows — the sum order (and therefore
// every output bit) is identical to the naive bounds-checked tap loop this
// replaces, which matters for checkpoint replay.
func conv2DForward(out, x, k *Tensor, padH, padW, strideH, strideW int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	for o := 0; o < oc; o++ {
		kbase := o * c * kh * kw
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*strideH - padH
			kyLo, kyHi := 0, kh
			if iy0 < 0 {
				kyLo = -iy0
			}
			if iy0+kyHi > h {
				kyHi = h - iy0
			}
			outRow := out.Data[(o*oh+oy)*ow : (o*oh+oy+1)*ow]
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*strideW - padW
				kxLo, kxHi := 0, kw
				if ix0 < 0 {
					kxLo = -ix0
				}
				if ix0+kxHi > w {
					kxHi = w - ix0
				}
				if kyLo >= kyHi || kxLo >= kxHi {
					outRow[ox] = 0
					continue
				}
				var s float64
				for ci := 0; ci < c; ci++ {
					xch := x.Data[ci*h*w : (ci+1)*h*w]
					kch := k.Data[kbase+ci*kh*kw : kbase+(ci+1)*kh*kw]
					for ky := kyLo; ky < kyHi; ky++ {
						xoff := (iy0+ky)*w + ix0
						xrow := xch[xoff+kxLo : xoff+kxHi]
						krow := kch[ky*kw+kxLo : ky*kw+kxHi]
						for j, kv := range krow {
							s += xrow[j] * kv
						}
					}
				}
				outRow[ox] = s
			}
		}
	}
}

// Conv2DBackward returns the gradients of a Conv2D call with respect to its
// input and kernel, given the gradient of the loss with respect to the
// output. Shapes must match the corresponding forward call.
func Conv2DBackward(x, k, gradOut *Tensor, padH, padW, strideH, strideW int) (gradX, gradK *Tensor) {
	c, h, w := convCheck(x, k)
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	gradX = New(c, h, w)
	gradK = New(oc, c, kh, kw)
	conv2DBackward(gradX, gradK, x, k, gradOut, padH, padW, strideH, strideW)
	return gradX, gradK
}

// Conv2DBackwardInto is Conv2DBackward with the gradient scratch carved from
// an arena; the returned tensors are valid until the arena is reset.
func Conv2DBackwardInto(a *Arena, x, k, gradOut *Tensor, padH, padW, strideH, strideW int) (gradX, gradK *Tensor) {
	c, h, w := convCheck(x, k)
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	gradX = a.New(c, h, w)
	gradK = a.New(oc, c, kh, kw)
	conv2DBackward(gradX, gradK, x, k, gradOut, padH, padW, strideH, strideW)
	return gradX, gradK
}

// conv2DBackward mirrors conv2DForward's hoisted-range structure: the same
// in-bounds taps are visited in the same (o, oy, ox, ci, ky, kx) order as the
// naive loop, so both gradients accumulate bit-identically.
func conv2DBackward(gradX, gradK, x, k, gradOut *Tensor, padH, padW, strideH, strideW int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	oh, ow := gradOut.Shape[1], gradOut.Shape[2]
	for o := 0; o < oc; o++ {
		kbase := o * c * kh * kw
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*strideH - padH
			kyLo, kyHi := 0, kh
			if iy0 < 0 {
				kyLo = -iy0
			}
			if iy0+kyHi > h {
				kyHi = h - iy0
			}
			gRow := gradOut.Data[(o*oh+oy)*ow : (o*oh+oy+1)*ow]
			for ox := 0; ox < ow; ox++ {
				g := gRow[ox]
				if g == 0 {
					continue
				}
				ix0 := ox*strideW - padW
				kxLo, kxHi := 0, kw
				if ix0 < 0 {
					kxLo = -ix0
				}
				if ix0+kxHi > w {
					kxHi = w - ix0
				}
				if kyLo >= kyHi || kxLo >= kxHi {
					continue
				}
				for ci := 0; ci < c; ci++ {
					xch := x.Data[ci*h*w : (ci+1)*h*w]
					gxch := gradX.Data[ci*h*w : (ci+1)*h*w]
					kch := k.Data[kbase+ci*kh*kw : kbase+(ci+1)*kh*kw]
					gkch := gradK.Data[kbase+ci*kh*kw : kbase+(ci+1)*kh*kw]
					for ky := kyLo; ky < kyHi; ky++ {
						xoff := (iy0+ky)*w + ix0
						xrow := xch[xoff+kxLo : xoff+kxHi]
						gxrow := gxch[xoff+kxLo : xoff+kxHi]
						krow := kch[ky*kw+kxLo : ky*kw+kxHi]
						gkrow := gkch[ky*kw+kxLo : ky*kw+kxHi]
						for j := range krow {
							gxrow[j] += g * krow[j]
							gkrow[j] += g * xrow[j]
						}
					}
				}
			}
		}
	}
}

func convCheck(x, k *Tensor) (c, h, w int) {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Conv2D input must be [C,H,W], got %v", x.Shape))
	}
	if k.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D kernel must be [OC,C,KH,KW], got %v", k.Shape))
	}
	if k.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: input %v kernel %v", x.Shape, k.Shape))
	}
	return x.Shape[0], x.Shape[1], x.Shape[2]
}
