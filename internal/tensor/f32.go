package tensor

import "fmt"

// Float32 serving kernels. Training stays float64 throughout; a serving
// snapshot may optionally quantize its estimator-head weights to float32
// (half the memory traffic, twice the values per cache line) and run the
// fused batched forward on these kernels instead. The quantized path is
// never bit-identical to float64 — it is admitted only behind the accuracy
// gate in internal/core (MAE delta vs the float64 path on a calibration
// set), and refused otherwise.

// F32FromF64 returns src rounded to float32.
func F32FromF64(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// AffineBatchF32Into computes X·Wᵀ + b into dst over flat float32 storage:
// X is [bsz, in], W is [out, in], b is [out], dst is [bsz, out], all
// row-major. The accumulator is float32 as well — the point of the f32 path
// is bandwidth, and the accuracy gate judges the end-to-end error.
func AffineBatchF32Into(dst, x, w, b []float32, bsz, in, out int) {
	if len(x) < bsz*in || len(w) < out*in || len(b) < out || len(dst) < bsz*out {
		panic(fmt.Sprintf("tensor: AffineBatchF32 size mismatch: x %d w %d b %d dst %d for [%d %d %d]",
			len(x), len(w), len(b), len(dst), bsz, in, out))
	}
	for rr := 0; rr < bsz; rr += affineBlock {
		rEnd := min(rr+affineBlock, bsz)
		for ii := 0; ii < out; ii += affineBlock {
			iEnd := min(ii+affineBlock, out)
			for r := rr; r < rEnd; r++ {
				xr := x[r*in : (r+1)*in : (r+1)*in]
				orow := dst[r*out : (r+1)*out : (r+1)*out]
				for i := ii; i < iEnd; i++ {
					wrow := w[i*in : (i+1)*in : (i+1)*in]
					var s float32
					for j, v := range wrow {
						s += v * xr[j]
					}
					orow[i] = s + b[i]
				}
			}
		}
	}
}

// ReLUInPlaceF32 applies max(0, x) element-wise in place.
func ReLUInPlaceF32(v []float32) {
	for i, x := range v {
		if x < 0 || x != x { // negatives and NaN clamp to 0, like math.Max(0, x)
			v[i] = 0
		}
	}
}
