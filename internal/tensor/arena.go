package tensor

import "fmt"

// Arena is a bump allocator for short-lived tensors. A computation tape
// owns one arena, carves every interior value and gradient out of it, and
// calls Reset between samples; after the first pass over the largest sample
// the slabs are warm and a forward/backward step performs O(1) heap
// allocations instead of O(nodes).
//
// An Arena is not safe for concurrent use — each training worker and each
// pooled eval tape owns its own.
type Arena struct {
	data    [][]float64 // float slabs; data[dataIdx][dataOff:] is free
	dataIdx int
	dataOff int

	hdrs    [][]Tensor // Tensor-header slabs
	hdrIdx  int
	hdrOff  int
	ints    [][]int // shape-backing slabs
	intsIdx int
	intsOff int
}

const (
	arenaDataSlab = 16 * 1024 // floats per slab (128 KiB)
	arenaHdrSlab  = 512       // Tensor headers per slab
	arenaIntSlab  = 2048      // shape ints per slab
)

// Reset reclaims every tensor handed out since the last Reset. The slabs
// are kept, so a steady-state tape stops allocating entirely. Tensors
// obtained before Reset must no longer be used.
func (a *Arena) Reset() {
	a.dataIdx, a.dataOff = 0, 0
	a.hdrIdx, a.hdrOff = 0, 0
	a.intsIdx, a.intsOff = 0, 0
}

// New carves a zeroed tensor of the given shape out of the arena.
func (a *Arena) New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: arena New with non-positive dimension")
		}
		n *= d
	}
	t := a.hdr()
	t.Shape = a.shape(shape)
	t.Data = a.floats(n)
	return t
}

// FromSlice wraps data (not copied) in an arena-backed header of the given
// shape. The fused batched forward uses this for zero-copy row views into a
// [B×d] activation matrix: the header and shape live in the arena slabs, so
// carving B views per batch costs no heap allocations in steady state. The
// data slice itself is the caller's — it is not reclaimed by Reset, but the
// header must not be used after Reset like any other arena tensor.
func (a *Arena) FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: arena FromSlice with non-positive dimension")
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: arena FromSlice shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	t := a.hdr()
	t.Shape = a.shape(shape)
	t.Data = data
	return t
}

// Vector carves a 1-D tensor copying vals out of the arena.
func (a *Arena) Vector(vals ...float64) *Tensor {
	t := a.New(len(vals))
	copy(t.Data, vals)
	return t
}

// hdr returns a fresh Tensor header. Headers live in fixed-size slabs so
// previously returned pointers stay valid as the arena grows.
func (a *Arena) hdr() *Tensor {
	for {
		if a.hdrIdx < len(a.hdrs) {
			slab := a.hdrs[a.hdrIdx]
			if a.hdrOff < len(slab) {
				t := &slab[a.hdrOff]
				a.hdrOff++
				return t
			}
			a.hdrIdx++
			a.hdrOff = 0
			continue
		}
		a.hdrs = append(a.hdrs, make([]Tensor, arenaHdrSlab))
	}
}

// shape copies dims into the int slab (shapes are tiny; a dedicated slab
// keeps them off the heap).
func (a *Arena) shape(dims []int) []int {
	n := len(dims)
	for {
		if a.intsIdx < len(a.ints) {
			slab := a.ints[a.intsIdx]
			if a.intsOff+n <= len(slab) {
				s := slab[a.intsOff : a.intsOff+n : a.intsOff+n]
				a.intsOff += n
				copy(s, dims)
				return s
			}
			a.intsIdx++
			a.intsOff = 0
			continue
		}
		size := arenaIntSlab
		if n > size {
			size = n
		}
		a.ints = append(a.ints, make([]int, size))
	}
}

// floats returns a zeroed slice of n floats from the data slabs. Requests
// larger than a slab get a dedicated slab of exactly that size, which is
// reused on later passes because tape allocation sequences repeat.
func (a *Arena) floats(n int) []float64 {
	for {
		if a.dataIdx < len(a.data) {
			slab := a.data[a.dataIdx]
			if a.dataOff+n <= len(slab) {
				s := slab[a.dataOff : a.dataOff+n : a.dataOff+n]
				a.dataOff += n
				for i := range s {
					s[i] = 0
				}
				return s
			}
			a.dataIdx++
			a.dataOff = 0
			continue
		}
		size := arenaDataSlab
		if n > size {
			size = n
		}
		a.data = append(a.data, make([]float64, size))
	}
}
