package tensor

import (
	"fmt"
	"math"
)

// Batched serving kernels: matrix-matrix products over [B×d] activation
// matrices, so a micro-batch of B requests runs one GEMM per layer instead
// of B MatVec passes. Every kernel keeps the per-output-element summation
// strictly sequential over the reduction axis, so row r of a batched result
// is bit-identical to the per-sample kernel applied to row r alone — the
// contract behind core.EstimateBatchFused's bitwise equality with the
// per-sample path (and therefore behind flight-recorder replay).

// MatMulInto computes A·B into dst for A [m, k], B [k, n] and dst [m, n]
// without allocating beyond the Bᵀ scratch handed in by the caller via bt
// (len ≥ k·n; pass nil to allocate one). Blocked like MatMul; the inner
// reduction over k is strictly sequential, so each dst element equals the
// plain dot product bit for bit.
func MatMulInto(dst, a, b *Tensor, bt []float64) {
	if a.Dims() != 2 || b.Dims() != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if dst.Dims() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst %v, want [%d %d]", dst.Shape, m, n))
	}
	if bt == nil {
		bt = make([]float64, k*n)
	} else if len(bt) < k*n {
		panic(fmt.Sprintf("tensor: MatMulInto scratch has %d floats, want >= %d", len(bt), k*n))
	}
	bt = bt[:k*n]
	transposeInto(bt, b.Data, k, n)
	for ii := 0; ii < m; ii += matMulBlock {
		iEnd := min(ii+matMulBlock, m)
		for jj := 0; jj < n; jj += matMulBlock {
			jEnd := min(jj+matMulBlock, n)
			for i := ii; i < iEnd; i++ {
				arow := a.Data[i*k : (i+1)*k : (i+1)*k]
				orow := dst.Data[i*n : (i+1)*n : (i+1)*n]
				for j := jj; j < jEnd; j++ {
					bcol := bt[j*k : (j+1)*k : (j+1)*k]
					var s float64
					for p, av := range arow {
						s += av * bcol[p]
					}
					orow[j] = s
				}
			}
		}
	}
}

// affineBlock tiles AffineBatchInto: a tile of W rows stays cache-resident
// while a tile of batch rows streams against it.
const affineBlock = 32

// AffineBatchInto computes X·Wᵀ + b into dst for X [B, in], W [out, in] and
// b [out], broadcasting the bias over the batch — the batched form of
// MatVecAddInto behind every fused linear layer. Row r of dst is bit-
// identical to MatVecAddInto(dst_r, W, X_r, b): the reduction over the in
// axis is strictly sequential per output element.
func AffineBatchInto(dst, x, w, b *Tensor) {
	if x.Dims() != 2 || w.Dims() != 2 {
		panic(fmt.Sprintf("tensor: AffineBatch wants matrices, got x %v w %v", x.Shape, w.Shape))
	}
	bsz, in := x.Shape[0], x.Shape[1]
	out := w.Shape[0]
	if w.Shape[1] != in || b.Size() != out {
		panic(fmt.Sprintf("tensor: AffineBatch size mismatch: X is %v, W is %v, b has %d", x.Shape, w.Shape, b.Size()))
	}
	if dst.Dims() != 2 || dst.Shape[0] != bsz || dst.Shape[1] != out {
		panic(fmt.Sprintf("tensor: AffineBatchInto dst %v, want [%d %d]", dst.Shape, bsz, out))
	}
	bd := b.Data[:out]
	for rr := 0; rr < bsz; rr += affineBlock {
		rEnd := min(rr+affineBlock, bsz)
		for ii := 0; ii < out; ii += affineBlock {
			iEnd := min(ii+affineBlock, out)
			for r := rr; r < rEnd; r++ {
				xr := x.Data[r*in : (r+1)*in : (r+1)*in]
				orow := dst.Data[r*out : (r+1)*out : (r+1)*out]
				for i := ii; i < iEnd; i++ {
					wrow := w.Data[i*in : (i+1)*in : (i+1)*in]
					var s float64
					for j, v := range wrow {
						s += v * xr[j]
					}
					orow[i] = s + bd[i]
				}
			}
		}
	}
}

// ReLUInPlace applies max(0, x) element-wise in place — the batched
// activation between fused affine layers. math.Max matches the per-sample
// tape ReLU exactly (including its NaN and signed-zero behaviour).
func ReLUInPlace(t *Tensor) {
	for i, v := range t.Data {
		t.Data[i] = math.Max(0, v)
	}
}
