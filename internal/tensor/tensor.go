// Package tensor implements dense float64 tensors and the linear-algebra
// kernels the neural-network substrate is built on. Tensors are row-major;
// a matrix of shape [r, c] stores element (i, j) at Data[i*c+j].
//
// The package is deliberately small: it contains exactly the operations the
// DeepOD model (SIGMOD 2020) needs — matrix products, broadcast adds,
// element-wise maps, reductions, concatenation, and the 2-D convolution
// kernels used by the time-interval ResNet encoder and the traffic-condition
// CNN. Shape errors are programming errors and panic with explicit messages.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, t.Size(), len(data)))
	}
	return t
}

// Vector returns a 1-D tensor copying vals.
func Vector(vals ...float64) *Tensor {
	return FromSlice(append([]float64(nil), vals...), len(vals))
}

// Scalar returns a 1-element tensor holding v.
func Scalar(v float64) *Tensor { return FromSlice([]float64{v}, 1) }

// Size returns the number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dims returns the number of axes.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return v
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace accumulates o into t element-wise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AddScaledInPlace accumulates s·o into t element-wise without allocating
// (the backward fast path of Sub/Scale nodes).
func (t *Tensor) AddScaledInPlace(o *Tensor, s float64) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddScaledInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
}

// AddMulInPlace accumulates a ⊗ b into t element-wise without allocating
// (the backward fast path of Hadamard-product nodes).
func (t *Tensor) AddMulInPlace(a, b *Tensor) {
	if !t.SameShape(a) || !t.SameShape(b) {
		panic(fmt.Sprintf("tensor: AddMulInPlace shape mismatch %v vs %v vs %v", t.Shape, a.Shape, b.Shape))
	}
	for i := range t.Data {
		t.Data[i] += a.Data[i] * b.Data[i]
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Add returns t + o element-wise.
func Add(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// Map applies f element-wise and returns a new tensor.
func Map(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// MatVec returns the matrix-vector product W x for W of shape [m, n] and x
// of shape [n] (or [n, 1]); the result has shape [m].
func MatVec(w, x *Tensor) *Tensor {
	m := w.Shape[0]
	out := New(m)
	MatVecInto(out, w, x)
	return out
}

// MatVecInto computes W x into dst without allocating. The summation order
// per output element is strictly sequential over columns, so results are
// bit-identical to the historical per-element loop (the deterministic-
// training contract of internal/core depends on this).
func MatVecInto(dst, w, x *Tensor) {
	if w.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVec wants a matrix, got shape %v", w.Shape))
	}
	m, n := w.Shape[0], w.Shape[1]
	if x.Size() != n {
		panic(fmt.Sprintf("tensor: MatVec size mismatch: W is %v, x has %d elements", w.Shape, x.Size()))
	}
	if dst.Size() != m {
		panic(fmt.Sprintf("tensor: MatVecInto dst has %d elements, want %d", dst.Size(), m))
	}
	xd := x.Data[:n]
	for i := 0; i < m; i++ {
		row := w.Data[i*n : (i+1)*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * xd[j]
		}
		dst.Data[i] = s
	}
}

// MatVecAdd returns W x + b — the fused affine kernel behind every linear
// layer and LSTM gate (one pass, one output, no intermediate W x tensor).
func MatVecAdd(w, x, b *Tensor) *Tensor {
	m := w.Shape[0]
	out := New(m)
	MatVecAddInto(out, w, x, b)
	return out
}

// MatVecAddInto computes W x + b into dst without allocating. Each output
// element is the sequential column sum plus b[i], exactly matching the
// unfused MatVec-then-Add composition bit for bit.
func MatVecAddInto(dst, w, x, b *Tensor) {
	if w.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVecAdd wants a matrix, got shape %v", w.Shape))
	}
	m, n := w.Shape[0], w.Shape[1]
	if x.Size() != n || b.Size() != m {
		panic(fmt.Sprintf("tensor: MatVecAdd size mismatch: W is %v, x has %d, b has %d", w.Shape, x.Size(), b.Size()))
	}
	if dst.Size() != m {
		panic(fmt.Sprintf("tensor: MatVecAddInto dst has %d elements, want %d", dst.Size(), m))
	}
	xd := x.Data[:n]
	for i := 0; i < m; i++ {
		row := w.Data[i*n : (i+1)*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * xd[j]
		}
		dst.Data[i] = s + b.Data[i]
	}
}

// MatVecT returns Wᵀ y for W of shape [m, n] and y of size m; result [n].
func MatVecT(w, y *Tensor) *Tensor {
	if w.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVecT wants a matrix, got shape %v", w.Shape))
	}
	m, n := w.Shape[0], w.Shape[1]
	if y.Size() != m {
		panic(fmt.Sprintf("tensor: MatVecT size mismatch: W is %v, y has %d elements", w.Shape, y.Size()))
	}
	out := New(n)
	for i := 0; i < m; i++ {
		row := w.Data[i*n : (i+1)*n]
		yi := y.Data[i]
		if yi == 0 {
			continue
		}
		for j, v := range row {
			out.Data[j] += v * yi
		}
	}
	return out
}

// AddOuterInPlace accumulates the outer product y xᵀ into dst (shape
// [len(y), len(x)]) without allocating — the gradient-accumulation fast
// path of the MatVec backward.
func AddOuterInPlace(dst, y, x *Tensor) {
	m, n := y.Size(), x.Size()
	if dst.Dims() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: AddOuterInPlace shape mismatch dst %v y %d x %d", dst.Shape, m, n))
	}
	for i := 0; i < m; i++ {
		yi := y.Data[i]
		if yi == 0 {
			continue
		}
		row := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += yi * x.Data[j]
		}
	}
}

// AddMatVecTInPlace accumulates Wᵀ y into dst (length = W columns) without
// allocating.
func AddMatVecTInPlace(dst, w, y *Tensor) {
	m, n := w.Shape[0], w.Shape[1]
	if dst.Size() != n || y.Size() != m {
		panic(fmt.Sprintf("tensor: AddMatVecTInPlace size mismatch dst %d W %v y %d", dst.Size(), w.Shape, y.Size()))
	}
	for i := 0; i < m; i++ {
		yi := y.Data[i]
		if yi == 0 {
			continue
		}
		row := w.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			dst.Data[j] += yi * row[j]
		}
	}
}

// Outer returns the outer product y xᵀ with shape [len(y), len(x)].
func Outer(y, x *Tensor) *Tensor {
	m, n := y.Size(), x.Size()
	out := New(m, n)
	for i := 0; i < m; i++ {
		yi := y.Data[i]
		row := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = yi * x.Data[j]
		}
	}
	return out
}

// matMulBlock is the cache-blocking tile edge of MatMul (in elements). 64
// keeps one A tile + one Bᵀ tile comfortably inside L1 for float64.
const matMulBlock = 64

// MatMul returns A B for A [m, k] and B [k, n].
//
// The kernel transposes B once into a scratch buffer and then runs blocked
// dot products, so both operands stream sequentially through cache. Unlike
// the historical kernel there is no per-element zero-skip branch: the branch
// paid on every dense element to help only pathologically sparse inputs.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b, nil)
	return out
}

// Transpose returns the matrix transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose wants a matrix, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	transposeInto(out.Data, a.Data, m, n)
	return out
}

// transposeInto writes the [m, n] row-major matrix src into dst as [n, m],
// tiled so both sides stay cache-resident on large matrices.
func transposeInto(dst, src []float64, m, n int) {
	const tile = 32
	for ii := 0; ii < m; ii += tile {
		iEnd := min(ii+tile, m)
		for jj := 0; jj < n; jj += tile {
			jEnd := min(jj+tile, n)
			for i := ii; i < iEnd; i++ {
				row := src[i*n : (i+1)*n]
				for j := jj; j < jEnd; j++ {
					dst[j*m+i] = row[j]
				}
			}
		}
	}
}

// Concat concatenates 1-D tensors into one vector.
func Concat(parts ...*Tensor) *Tensor {
	n := 0
	for _, p := range parts {
		n += p.Size()
	}
	out := New(n)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += p.Size()
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(t.Size()) }

// Dot returns the inner product of two equal-size tensors.
func Dot(a, b *Tensor) float64 {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", a.Size(), b.Size()))
	}
	var s float64
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (t *Tensor) Norm2() float64 { return math.Sqrt(Dot(t, t)) }

// MeanCols averages a [r, c] matrix over rows, returning a length-c vector.
// This is the paper's average-pooling step (Formula 10).
func MeanCols(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MeanCols wants a matrix, got %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := New(c)
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(r)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}

// Row returns row i of a matrix as a copied vector.
func (t *Tensor) Row(i int) *Tensor {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Row wants a matrix, got %v", t.Shape))
	}
	c := t.Shape[1]
	out := New(c)
	copy(out.Data, t.Data[i*c:(i+1)*c])
	return out
}

// SetRow copies v into row i of a matrix.
func (t *Tensor) SetRow(i int, v *Tensor) {
	if t.Dims() != 2 || v.Size() != t.Shape[1] {
		panic(fmt.Sprintf("tensor: SetRow shape mismatch %v row %v", t.Shape, v.Shape))
	}
	copy(t.Data[i*t.Shape[1]:(i+1)*t.Shape[1]], v.Data)
}

// ArgMax returns the index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if t.Size() <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.Shape, t.Size())
}
