package tensor

// Kernel microbenchmarks with allocation reporting, so regressions in the
// hot linear-algebra paths (and any reintroduced per-call allocation) are
// visible in plain `go test -bench`.

import (
	"fmt"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randTensor(rng, n, n)
			y := randTensor(rng, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

func BenchmarkMatVec(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			w := randTensor(rng, n, n)
			x := randTensor(rng, n)
			dst := New(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatVecInto(dst, w, x)
			}
		})
	}
}

func BenchmarkMatVecAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := randTensor(rng, 64, 64)
	x := randTensor(rng, 64)
	bias := randTensor(rng, 64)
	dst := New(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecAddInto(dst, w, x, bias)
	}
}

func BenchmarkTranspose(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := randTensor(rng, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Transpose(x)
			}
		})
	}
}

func BenchmarkAddOuterInPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dst := New(64, 64)
	y := randTensor(rng, 64)
	x := randTensor(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddOuterInPlace(dst, y, x)
	}
}

func BenchmarkArenaNewReset(b *testing.B) {
	var a Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			a.New(64)
		}
		a.Reset()
	}
}
