package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	tt := New(2, 3, 4)
	if got := tt.Size(); got != 24 {
		t.Fatalf("Size() = %d, want 24", got)
	}
	if tt.Dims() != 3 {
		t.Fatalf("Dims() = %d, want 3", tt.Dims())
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatalf("New tensor not zeroed: %v", tt.Data)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 0) did not panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(3, 4)
	m.Set(7.5, 1, 2)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.Data[1*4+2]; got != 7.5 {
		t.Fatalf("row-major layout violated: Data[6] = %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := Vector(1, 2, 3)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := Vector(1, 2, 3, 4, 5, 6)
	m := a.Reshape(2, 3)
	m.Set(42, 1, 2)
	if a.Data[5] != 42 {
		t.Fatal("Reshape should share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to wrong size did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestMatVec(t *testing.T) {
	w := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := Vector(1, 0, -1)
	y := MatVec(w, x)
	want := []float64{1 - 3, 4 - 6}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("MatVec[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestMatVecTMatchesTransposeTimesVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := New(4, 3)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	y := Vector(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	got := MatVecT(w, y)
	want := MatVec(Transpose(w), y)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatVecT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	id := New(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(1, i, i)
	}
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, 3)
	got := MatMul(a, id)
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("A·I != A at %d", i)
		}
	}
}

func TestMatMulAgainstManual(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got.Data[i], want[i])
		}
	}
}

func TestOuterShapeAndValues(t *testing.T) {
	o := Outer(Vector(1, 2), Vector(3, 4, 5))
	if o.Shape[0] != 2 || o.Shape[1] != 3 {
		t.Fatalf("Outer shape %v", o.Shape)
	}
	want := []float64{3, 4, 5, 6, 8, 10}
	for i := range want {
		if o.Data[i] != want[i] {
			t.Fatalf("Outer[%d] = %v, want %v", i, o.Data[i], want[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		a := New(r, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := Transpose(Transpose(a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	c := Concat(Vector(1, 2), Vector(3), Vector(4, 5, 6))
	want := []float64{1, 2, 3, 4, 5, 6}
	if c.Size() != 6 {
		t.Fatalf("Concat size %d", c.Size())
	}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Concat[%d] = %v", i, c.Data[i])
		}
	}
}

func TestMeanCols(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 5}, 2, 2)
	mc := MeanCols(m)
	if !almostEqual(mc.Data[0], 2, 1e-12) || !almostEqual(mc.Data[1], 3.5, 1e-12) {
		t.Fatalf("MeanCols = %v", mc.Data)
	}
}

func TestSumMeanDotNorm(t *testing.T) {
	v := Vector(3, 4)
	if v.Sum() != 7 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	if v.Mean() != 3.5 {
		t.Fatalf("Mean = %v", v.Mean())
	}
	if Dot(v, v) != 25 {
		t.Fatalf("Dot = %v", Dot(v, v))
	}
	if !almostEqual(v.Norm2(), 5, 1e-12) {
		t.Fatalf("Norm2 = %v", v.Norm2())
	}
}

func TestRowSetRow(t *testing.T) {
	m := New(3, 2)
	m.SetRow(1, Vector(9, 8))
	r := m.Row(1)
	if r.Data[0] != 9 || r.Data[1] != 8 {
		t.Fatalf("Row(1) = %v", r.Data)
	}
	r.Data[0] = 0 // Row copies
	if m.At(1, 0) != 9 {
		t.Fatal("Row should copy, not alias")
	}
}

func TestArgMax(t *testing.T) {
	if got := Vector(1, 5, 3).ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
}

func TestMapAndScaleAndArith(t *testing.T) {
	a := Vector(1, -2, 3)
	sq := Map(a, func(x float64) float64 { return x * x })
	if sq.Data[1] != 4 {
		t.Fatalf("Map square = %v", sq.Data)
	}
	s := Scale(a, 2)
	if s.Data[2] != 6 {
		t.Fatalf("Scale = %v", s.Data)
	}
	sum := Add(a, a)
	if sum.Data[0] != 2 {
		t.Fatalf("Add = %v", sum.Data)
	}
	diff := Sub(a, a)
	if diff.Sum() != 0 {
		t.Fatalf("Sub = %v", diff.Data)
	}
	prod := Mul(a, a)
	if prod.Data[1] != 4 {
		t.Fatalf("Mul = %v", prod.Data)
	}
}

// Property: (A B) x == A (B x) for random matrices — ties MatMul and MatVec
// together.
func TestMatMulMatVecAssociativity(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a, b, x := New(m, k), New(k, n), New(n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		lhs := MatVec(MatMul(a, b), x)
		rhs := MatVec(a, MatVec(b, x))
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicBranches(t *testing.T) {
	for name, f := range map[string]func(){
		"Add shape":        func() { Add(Vector(1), Vector(1, 2)) },
		"Sub shape":        func() { Sub(Vector(1), Vector(1, 2)) },
		"Mul shape":        func() { Mul(Vector(1), Vector(1, 2)) },
		"AddInPlace shape": func() { Vector(1).AddInPlace(Vector(1, 2)) },
		"Dot size":         func() { Dot(Vector(1), Vector(1, 2)) },
		"MatVec non-mat":   func() { MatVec(Vector(1), Vector(1)) },
		"MatVec size":      func() { MatVec(New(2, 3), Vector(1)) },
		"MatVecT non-mat":  func() { MatVecT(Vector(1), Vector(1)) },
		"MatVecT size":     func() { MatVecT(New(2, 3), Vector(1)) },
		"MatMul shape":     func() { MatMul(New(2, 3), New(2, 3)) },
		"Transpose rank":   func() { Transpose(Vector(1)) },
		"MeanCols rank":    func() { MeanCols(Vector(1)) },
		"Row rank":         func() { Vector(1, 2).Row(0) },
		"SetRow shape":     func() { New(2, 2).SetRow(0, Vector(1)) },
		"Set rank":         func() { New(2, 2).Set(1, 0) },
		"AddOuter shape":   func() { AddOuterInPlace(New(2, 2), Vector(1, 2, 3), Vector(1, 2)) },
		"AddMatVecT size":  func() { AddMatVecTInPlace(Vector(1), New(2, 3), Vector(1, 2, 3)) },
	} {
		f := f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestScaleInPlaceAndZeroAndString(t *testing.T) {
	v := Vector(1, 2)
	v.ScaleInPlace(3)
	if v.Data[1] != 6 {
		t.Fatalf("ScaleInPlace = %v", v.Data)
	}
	v.Zero()
	if v.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	if s := Vector(1, 2).String(); s == "" {
		t.Fatal("String empty for small tensor")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Fatal("String empty for large tensor")
	}
	sc := Scalar(4.5)
	if sc.Size() != 1 || sc.Data[0] != 4.5 {
		t.Fatalf("Scalar = %+v", sc)
	}
}

func TestAddHelpersMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := New(3, 4)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	y := Vector(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	x := Vector(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())

	dst := New(3, 4)
	AddOuterInPlace(dst, y, x)
	want := Outer(y, x)
	for i := range want.Data {
		if !almostEqual(dst.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("AddOuterInPlace[%d] = %v, want %v", i, dst.Data[i], want.Data[i])
		}
	}

	dst2 := New(4)
	AddMatVecTInPlace(dst2, w, y)
	want2 := MatVecT(w, y)
	for i := range want2.Data {
		if !almostEqual(dst2.Data[i], want2.Data[i], 1e-12) {
			t.Fatalf("AddMatVecTInPlace[%d] = %v, want %v", i, dst2.Data[i], want2.Data[i])
		}
	}
}
