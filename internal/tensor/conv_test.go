package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv2DIdentityKernel(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 1, 2, 3)
	k := FromSlice([]float64{1}, 1, 1, 1, 1) // 1x1 identity
	y := Conv2D(x, k, 0, 0, 1, 1)
	if !y.SameShape(x) {
		t.Fatalf("identity conv changed shape: %v", y.Shape)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv changed value at %d", i)
		}
	}
}

func TestConv2DSamePadding3x1(t *testing.T) {
	// The DeepOD time-interval encoder uses 3x1 kernels with padH=1 so the
	// Δd dimension is preserved (Formulas 5-6).
	x := New(1, 5, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	k := New(4, 1, 3, 1)
	for i := range k.Data {
		k.Data[i] = 0.5
	}
	y := Conv2D(x, k, 1, 0, 1, 1)
	if y.Shape[0] != 4 || y.Shape[1] != 5 || y.Shape[2] != 4 {
		t.Fatalf("same-pad conv shape %v, want [4 5 4]", y.Shape)
	}
	// Interior element (1, 2, 1): sum of x[0,1,1], x[0,2,1], x[0,3,1] times 0.5.
	want := (x.At(0, 1, 1) + x.At(0, 2, 1) + x.At(0, 3, 1)) * 0.5
	if got := y.At(1, 2, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("conv value %v, want %v", got, want)
	}
	// Top edge (any oc, 0, 1): padding row contributes zero.
	wantEdge := (x.At(0, 0, 1) + x.At(0, 1, 1)) * 0.5
	if got := y.At(0, 0, 1); math.Abs(got-wantEdge) > 1e-12 {
		t.Fatalf("edge conv value %v, want %v", got, wantEdge)
	}
}

func TestConv2DStride(t *testing.T) {
	x := New(1, 8, 8)
	k := New(2, 1, 3, 3)
	y := Conv2D(x, k, 1, 1, 2, 2)
	if y.Shape[0] != 2 || y.Shape[1] != 4 || y.Shape[2] != 4 {
		t.Fatalf("strided conv shape %v, want [2 4 4]", y.Shape)
	}
}

func TestConv2DPanicsOnChannelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	Conv2D(New(2, 3, 3), New(1, 3, 1, 1), 0, 0, 1, 1)
}

// TestConv2DBackwardFiniteDiff checks both returned gradients against
// central finite differences of a random scalar objective.
func TestConv2DBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(2, 4, 3)
	k := New(3, 2, 3, 1)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range k.Data {
		k.Data[i] = rng.NormFloat64()
	}
	padH, padW, sH, sW := 1, 0, 1, 1
	// objective: weighted sum of the conv output
	w := Conv2D(x, k, padH, padW, sH, sW)
	weights := New(w.Shape...)
	for i := range weights.Data {
		weights.Data[i] = rng.NormFloat64()
	}
	obj := func() float64 {
		y := Conv2D(x, k, padH, padW, sH, sW)
		return Dot(y, weights)
	}
	gx, gk := Conv2DBackward(x, k, weights, padH, padW, sH, sW)

	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		plus := obj()
		x.Data[i] = orig - h
		minus := obj()
		x.Data[i] = orig
		fd := (plus - minus) / (2 * h)
		if math.Abs(fd-gx.Data[i]) > 1e-5 {
			t.Fatalf("gradX[%d] = %v, finite diff %v", i, gx.Data[i], fd)
		}
	}
	for i := range k.Data {
		orig := k.Data[i]
		k.Data[i] = orig + h
		plus := obj()
		k.Data[i] = orig - h
		minus := obj()
		k.Data[i] = orig
		fd := (plus - minus) / (2 * h)
		if math.Abs(fd-gk.Data[i]) > 1e-5 {
			t.Fatalf("gradK[%d] = %v, finite diff %v", i, gk.Data[i], fd)
		}
	}
}

// naiveConv2D is the original bounds-checked tap loop, kept as the bit-level
// reference for the hoisted-range kernels: conv2DForward and conv2DBackward
// must visit the same taps in the same order, so every output and gradient
// bit must match — checkpoint replay depends on it.
func naiveConv2D(x, k *Tensor, padH, padW, strideH, strideW int) *Tensor {
	oc, oh, ow := conv2DOutShape(x, k, padH, padW, strideH, strideW)
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	kh, kw := k.Shape[2], k.Shape[3]
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*strideH + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*strideW + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							s += x.Data[(ci*h+iy)*w+ix] * k.Data[((o*c+ci)*kh+ky)*kw+kx]
						}
					}
				}
				out.Data[(o*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

func naiveConv2DBackward(x, k, gradOut *Tensor, padH, padW, strideH, strideW int) (gradX, gradK *Tensor) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oc, kh, kw := k.Shape[0], k.Shape[2], k.Shape[3]
	oh, ow := gradOut.Shape[1], gradOut.Shape[2]
	gradX = New(c, h, w)
	gradK = New(oc, c, kh, kw)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gradOut.Data[(o*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*strideH + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*strideW + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							gradX.Data[(ci*h+iy)*w+ix] += g * k.Data[((o*c+ci)*kh+ky)*kw+kx]
							gradK.Data[((o*c+ci)*kh+ky)*kw+kx] += g * x.Data[(ci*h+iy)*w+ix]
						}
					}
				}
			}
		}
	}
	return gradX, gradK
}

// TestConv2DMatchesNaiveBitExact sweeps shapes, paddings and strides —
// including the model's 3×3/stride-2 traffic CNN and 3×1/pad-1 time-interval
// encoder shapes, heavy padding and kernels larger than the padded overhang —
// and requires bitwise equality between the hoisted kernels and the naive
// reference for both the forward output and both gradients.
func TestConv2DMatchesNaiveBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		c, h, w, oc, kh, kw    int
		padH, padW, strH, strW int
	}{
		{1, 24, 24, 4, 3, 3, 1, 1, 2, 2}, // ext.conv1 shape
		{4, 12, 12, 8, 3, 3, 1, 1, 2, 2}, // ext.conv2 shape
		{8, 6, 6, 8, 3, 3, 1, 1, 2, 2},   // ext.conv3 shape
		{1, 5, 1, 4, 3, 1, 1, 0, 1, 1},   // tie.conv 3×1 same-pad
		{4, 5, 1, 8, 3, 1, 1, 0, 1, 1},
		{8, 5, 1, 1, 1, 1, 0, 0, 1, 1}, // 1×1 projection
		{2, 4, 4, 3, 3, 3, 2, 2, 1, 1}, // padding wider than needed
		{1, 1, 1, 2, 3, 3, 1, 1, 1, 1}, // single-pixel input
		{3, 7, 5, 2, 5, 5, 2, 2, 2, 3}, // large kernel, mixed strides
		{2, 3, 3, 2, 3, 3, 3, 3, 1, 1}, // rows/cols fully in padding
	}
	for _, tc := range cases {
		x := New(tc.c, tc.h, tc.w)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		k := New(tc.oc, tc.c, tc.kh, tc.kw)
		for i := range k.Data {
			k.Data[i] = rng.NormFloat64()
		}
		want := naiveConv2D(x, k, tc.padH, tc.padW, tc.strH, tc.strW)
		got := Conv2D(x, k, tc.padH, tc.padW, tc.strH, tc.strW)
		if !got.SameShape(want) {
			t.Fatalf("%+v: shape %v, want %v", tc, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("%+v: forward bit mismatch at %d: %v vs %v", tc, i, got.Data[i], want.Data[i])
			}
		}
		gradOut := New(want.Shape...)
		for i := range gradOut.Data {
			gradOut.Data[i] = rng.NormFloat64()
		}
		gradOut.Data[0] = 0 // exercise the g==0 skip
		wantGX, wantGK := naiveConv2DBackward(x, k, gradOut, tc.padH, tc.padW, tc.strH, tc.strW)
		gotGX, gotGK := Conv2DBackward(x, k, gradOut, tc.padH, tc.padW, tc.strH, tc.strW)
		for i := range wantGX.Data {
			if math.Float64bits(gotGX.Data[i]) != math.Float64bits(wantGX.Data[i]) {
				t.Fatalf("%+v: gradX bit mismatch at %d", tc, i)
			}
		}
		for i := range wantGK.Data {
			if math.Float64bits(gotGK.Data[i]) != math.Float64bits(wantGK.Data[i]) {
				t.Fatalf("%+v: gradK bit mismatch at %d", tc, i)
			}
		}
	}
}

// BenchmarkConv2DInto runs the traffic CNN's three layer shapes — the
// per-sample cost the fused serving path cannot batch away, and the dominant
// term of an external-features estimate.
func BenchmarkConv2DInto(b *testing.B) {
	shapes := []struct {
		name                   string
		c, h, w, oc, kh, kw    int
		padH, padW, strH, strW int
	}{
		{"ext1_1x10x10", 1, 10, 10, 4, 3, 3, 1, 1, 2, 2},
		{"ext2_4x5x5", 4, 5, 5, 8, 3, 3, 1, 1, 2, 2},
		{"ext3_8x3x3", 8, 3, 3, 8, 3, 3, 1, 1, 2, 2},
	}
	for _, s := range shapes {
		x := New(s.c, s.h, s.w)
		for i := range x.Data {
			x.Data[i] = float64(i%7) * 0.25
		}
		k := New(s.oc, s.c, s.kh, s.kw)
		for i := range k.Data {
			k.Data[i] = float64(i%5) * 0.125
		}
		var a Arena
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Reset()
				Conv2DInto(&a, x, k, s.padH, s.padW, s.strH, s.strW)
			}
		})
	}
}
