package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv2DIdentityKernel(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 1, 2, 3)
	k := FromSlice([]float64{1}, 1, 1, 1, 1) // 1x1 identity
	y := Conv2D(x, k, 0, 0, 1, 1)
	if !y.SameShape(x) {
		t.Fatalf("identity conv changed shape: %v", y.Shape)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv changed value at %d", i)
		}
	}
}

func TestConv2DSamePadding3x1(t *testing.T) {
	// The DeepOD time-interval encoder uses 3x1 kernels with padH=1 so the
	// Δd dimension is preserved (Formulas 5-6).
	x := New(1, 5, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	k := New(4, 1, 3, 1)
	for i := range k.Data {
		k.Data[i] = 0.5
	}
	y := Conv2D(x, k, 1, 0, 1, 1)
	if y.Shape[0] != 4 || y.Shape[1] != 5 || y.Shape[2] != 4 {
		t.Fatalf("same-pad conv shape %v, want [4 5 4]", y.Shape)
	}
	// Interior element (1, 2, 1): sum of x[0,1,1], x[0,2,1], x[0,3,1] times 0.5.
	want := (x.At(0, 1, 1) + x.At(0, 2, 1) + x.At(0, 3, 1)) * 0.5
	if got := y.At(1, 2, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("conv value %v, want %v", got, want)
	}
	// Top edge (any oc, 0, 1): padding row contributes zero.
	wantEdge := (x.At(0, 0, 1) + x.At(0, 1, 1)) * 0.5
	if got := y.At(0, 0, 1); math.Abs(got-wantEdge) > 1e-12 {
		t.Fatalf("edge conv value %v, want %v", got, wantEdge)
	}
}

func TestConv2DStride(t *testing.T) {
	x := New(1, 8, 8)
	k := New(2, 1, 3, 3)
	y := Conv2D(x, k, 1, 1, 2, 2)
	if y.Shape[0] != 2 || y.Shape[1] != 4 || y.Shape[2] != 4 {
		t.Fatalf("strided conv shape %v, want [2 4 4]", y.Shape)
	}
}

func TestConv2DPanicsOnChannelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	Conv2D(New(2, 3, 3), New(1, 3, 1, 1), 0, 0, 1, 1)
}

// TestConv2DBackwardFiniteDiff checks both returned gradients against
// central finite differences of a random scalar objective.
func TestConv2DBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(2, 4, 3)
	k := New(3, 2, 3, 1)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range k.Data {
		k.Data[i] = rng.NormFloat64()
	}
	padH, padW, sH, sW := 1, 0, 1, 1
	// objective: weighted sum of the conv output
	w := Conv2D(x, k, padH, padW, sH, sW)
	weights := New(w.Shape...)
	for i := range weights.Data {
		weights.Data[i] = rng.NormFloat64()
	}
	obj := func() float64 {
		y := Conv2D(x, k, padH, padW, sH, sW)
		return Dot(y, weights)
	}
	gx, gk := Conv2DBackward(x, k, weights, padH, padW, sH, sW)

	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		plus := obj()
		x.Data[i] = orig - h
		minus := obj()
		x.Data[i] = orig
		fd := (plus - minus) / (2 * h)
		if math.Abs(fd-gx.Data[i]) > 1e-5 {
			t.Fatalf("gradX[%d] = %v, finite diff %v", i, gx.Data[i], fd)
		}
	}
	for i := range k.Data {
		orig := k.Data[i]
		k.Data[i] = orig + h
		plus := obj()
		k.Data[i] = orig - h
		minus := obj()
		k.Data[i] = orig
		fd := (plus - minus) / (2 * h)
		if math.Abs(fd-gk.Data[i]) > 1e-5 {
			t.Fatalf("gradK[%d] = %v, finite diff %v", i, gk.Data[i], fd)
		}
	}
}
