package tensor

import "testing"

func TestArenaNewZeroedAndShaped(t *testing.T) {
	var a Arena
	x := a.New(3, 4)
	if x.Size() != 12 || x.Dims() != 2 || x.Shape[0] != 3 || x.Shape[1] != 4 {
		t.Fatalf("bad shape: %v", x.Shape)
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d not zeroed: %v", i, v)
		}
	}
	v := a.Vector(1, 2, 3)
	if v.Size() != 3 || v.Data[0] != 1 || v.Data[2] != 3 {
		t.Fatalf("bad vector: %v", v.Data)
	}
}

func TestArenaResetReusesAndZeroes(t *testing.T) {
	var a Arena
	x := a.New(8)
	for i := range x.Data {
		x.Data[i] = 7
	}
	a.Reset()
	y := a.New(8)
	if &x.Data[0] != &y.Data[0] {
		t.Fatal("Reset did not reuse the slab")
	}
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("reused element %d not re-zeroed: %v", i, v)
		}
	}
}

func TestArenaTensorsAreDisjoint(t *testing.T) {
	var a Arena
	x := a.New(4)
	y := a.New(4)
	x.Fill(1)
	y.Fill(2)
	for _, v := range x.Data {
		if v != 1 {
			t.Fatalf("x overwritten: %v", x.Data)
		}
	}
}

func TestArenaLargeRequestAndHeaderStability(t *testing.T) {
	var a Arena
	small := a.New(2)
	big := a.New(arenaDataSlab + 100) // dedicated slab
	if big.Size() != arenaDataSlab+100 {
		t.Fatalf("big size %d", big.Size())
	}
	// Allocate enough headers to force new header slabs; earlier pointers
	// must stay valid (chunked slabs never move).
	for i := 0; i < 3*arenaHdrSlab; i++ {
		a.New(1)
	}
	if small.Size() != 2 || small.Data[0] != 0 {
		t.Fatal("early tensor corrupted by arena growth")
	}
	a.Reset()
	again := a.New(2)
	if again.Size() != 2 {
		t.Fatal("reuse after growth failed")
	}
}

func TestArenaManyShapes(t *testing.T) {
	var a Arena
	for round := 0; round < 3; round++ {
		for i := 1; i < 40; i++ {
			x := a.New(i, 3)
			if x.Size() != i*3 {
				t.Fatalf("round %d: size %d != %d", round, x.Size(), i*3)
			}
		}
		a.Reset()
	}
}
