package metrics

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func TestRefDistBinning(t *testing.T) {
	d := NewRefDist([]float64{10, 20, 30})
	for _, tc := range []struct {
		v   float64
		bin int
	}{
		{-5, 0}, {0, 0}, {10, 0}, {10.001, 1}, {20, 1}, {25, 2}, {30, 2}, {31, 3}, {1e9, 3},
	} {
		if got := d.Bin(tc.v); got != tc.bin {
			t.Fatalf("Bin(%v) = %d, want %d", tc.v, got, tc.bin)
		}
	}
	for _, v := range []float64{1, 11, 12, 25, 100} {
		d.Observe(v)
	}
	if d.Total() != 5 {
		t.Fatalf("Total = %d, want 5", d.Total())
	}
	want := []uint64{1, 2, 1, 1}
	for i, c := range d.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", d.Counts, want)
		}
	}
	probs := d.Probs()
	if math.Abs(probs[1]-0.4) > 1e-12 {
		t.Fatalf("Probs = %v, want bin 1 = 0.4", probs)
	}
}

func TestRefDistValidate(t *testing.T) {
	good := RefDistOf([]float64{1, 2, 3}, nil)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dist rejected: %v", err)
	}
	bad := []*RefDist{
		{},
		{Uppers: []float64{2, 1}, Counts: make([]uint64, 3)},
		{Uppers: []float64{1, 2}, Counts: make([]uint64, 2)},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad dist %d accepted", i)
		}
	}
}

// The checkpoint round-trip: RefDist travels through encoding/gob intact
// (it is embedded in core's saved model).
func TestRefDistGobRoundTrip(t *testing.T) {
	d := RefDistOf([]float64{3, 7, 15, 40, 400}, []float64{5, 10, 50})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatal(err)
	}
	var back RefDist
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back.Uppers) != 3 || back.Total() != 5 {
		t.Fatalf("round-trip = %+v, want the original 3-bound, 5-sample dist", back)
	}
	for i := range d.Counts {
		if d.Counts[i] != back.Counts[i] {
			t.Fatalf("counts diverged: %v vs %v", d.Counts, back.Counts)
		}
	}
}

func TestPSI(t *testing.T) {
	ref := []float64{0.25, 0.25, 0.25, 0.25}
	if got := PSI(ref, ref); got > 1e-12 {
		t.Fatalf("PSI(ref, ref) = %v, want ~0", got)
	}
	// A mild shift stays under the conventional 0.1 "stable" bound; a
	// hard swap of the mass blows far past 0.25.
	mild := []float64{0.28, 0.24, 0.24, 0.24}
	if got := PSI(ref, mild); got <= 0 || got >= 0.1 {
		t.Fatalf("mild-shift PSI = %v, want (0, 0.1)", got)
	}
	hard := []float64{0.01, 0.01, 0.01, 0.97}
	if got := PSI(ref, hard); got < 0.25 {
		t.Fatalf("hard-shift PSI = %v, want >= 0.25", got)
	}
	// Unnormalized inputs (raw counts) are normalized internally.
	if got := PSI([]float64{25, 25, 25, 25}, []float64{28, 24, 24, 24}); got <= 0 || got >= 0.1 {
		t.Fatalf("raw-count PSI = %v, want (0, 0.1)", got)
	}
	// Empty bins are smoothed, not ±Inf.
	if got := PSI(ref, []float64{0, 0, 0, 1}); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("empty-bin PSI = %v, want finite", got)
	}
	// No samples at all: nothing to compare.
	if got := PSI(ref, []float64{0, 0, 0, 0}); !math.IsNaN(got) {
		t.Fatalf("zero-mass PSI = %v, want NaN", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bin PSI did not panic")
		}
	}()
	PSI([]float64{1}, []float64{1, 2})
}
