package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DefaultAbsErrorUppers are the default bin upper bounds (seconds) for
// absolute travel-time errors. They span the error range the simulated
// cities produce — a few seconds for cache-warm short trips up to several
// minutes for the worst rush-hour cases — with an implicit +Inf bin above.
var DefaultAbsErrorUppers = []float64{5, 10, 20, 30, 45, 60, 90, 120, 180, 300, 600}

// RefDist is a binned distribution of a scalar quantity — in this
// repository, the per-sample absolute estimation error |yᵢ − ŷᵢ| on the
// held-out test split at training time. ttetrain stores it in the model
// checkpoint so the online quality monitor (internal/quality) can compare
// the live error distribution against the one the model shipped with and
// raise a drift signal when they diverge (PSI).
//
// Bins are (−inf, Uppers[0]], (Uppers[0], Uppers[1]], ..., (Uppers[n−1],
// +inf): len(Counts) == len(Uppers)+1. Fields are exported for
// encoding/gob (the checkpoint format).
type RefDist struct {
	// Uppers are the ascending finite bin upper bounds.
	Uppers []float64
	// Counts holds one count per bin, the +Inf bin last.
	Counts []uint64
}

// NewRefDist returns an empty distribution over the given bin bounds
// (ascending; nil uses DefaultAbsErrorUppers).
func NewRefDist(uppers []float64) *RefDist {
	if uppers == nil {
		uppers = DefaultAbsErrorUppers
	}
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("metrics: RefDist bounds not ascending: %v", uppers))
		}
	}
	return &RefDist{
		Uppers: append([]float64(nil), uppers...),
		Counts: make([]uint64, len(uppers)+1),
	}
}

// RefDistOf bins xs into a fresh distribution (nil uppers uses the
// defaults).
func RefDistOf(xs []float64, uppers []float64) *RefDist {
	d := NewRefDist(uppers)
	for _, v := range xs {
		d.Observe(v)
	}
	return d
}

// Validate checks a distribution read from an untrusted source (a
// checkpoint file): ascending bounds and a count per bin.
func (d *RefDist) Validate() error {
	if len(d.Uppers) == 0 {
		return fmt.Errorf("metrics: RefDist has no bins")
	}
	for i := 1; i < len(d.Uppers); i++ {
		if d.Uppers[i] <= d.Uppers[i-1] {
			return fmt.Errorf("metrics: RefDist bounds not ascending: %v", d.Uppers)
		}
	}
	if len(d.Counts) != len(d.Uppers)+1 {
		return fmt.Errorf("metrics: RefDist has %d counts for %d bounds", len(d.Counts), len(d.Uppers))
	}
	return nil
}

// Bin returns the index of the bin containing v.
func (d *RefDist) Bin(v float64) int {
	return sort.SearchFloat64s(d.Uppers, v)
}

// Observe adds one sample.
func (d *RefDist) Observe(v float64) { d.Counts[d.Bin(v)]++ }

// Total returns the number of observed samples.
func (d *RefDist) Total() uint64 {
	var t uint64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// Probs returns the per-bin proportions (all zero for an empty
// distribution).
func (d *RefDist) Probs() []float64 {
	p := make([]float64, len(d.Counts))
	t := float64(d.Total())
	if t == 0 {
		return p
	}
	for i, c := range d.Counts {
		p[i] = float64(c) / t
	}
	return p
}

// psiEps floors bin proportions so empty bins do not blow the logarithm up
// to ±inf; the standard smoothing used with PSI in practice.
const psiEps = 1e-4

// PSI is the Population Stability Index between two probability vectors
// over the same bins: Σ (curᵢ − refᵢ)·ln(curᵢ/refᵢ). Conventional reading:
// < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 significant shift. Both
// vectors must have the same length; proportions are floored at a small
// epsilon so empty bins stay finite. PSI panics on mismatched lengths (a
// programmer error) and returns NaN if either vector sums to zero (no
// samples — nothing to compare).
func PSI(ref, cur []float64) float64 {
	if len(ref) != len(cur) {
		panic(fmt.Sprintf("metrics: PSI over mismatched bins: %d vs %d", len(ref), len(cur)))
	}
	var sumRef, sumCur float64
	for i := range ref {
		sumRef += ref[i]
		sumCur += cur[i]
	}
	if sumRef == 0 || sumCur == 0 {
		return math.NaN()
	}
	var psi float64
	for i := range ref {
		r := math.Max(ref[i]/sumRef, psiEps)
		c := math.Max(cur[i]/sumCur, psiEps)
		psi += (c - r) * math.Log(c/r)
	}
	return psi
}
