// Package metrics implements the paper's evaluation metrics (§6.1) — MAE,
// MAPE and MARE — plus the statistical summaries its figures are built
// from: box-plot statistics (Figure 9), Gaussian kernel density estimates
// of error distributions (Figure 11), and scatter samples (Figures 12–13).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MAE is the Mean Absolute Error (1/N) Σ |yᵢ − ŷᵢ| in the same unit as y.
// Like MAPE and MARE it returns NaN on empty input — the mean of nothing is
// undefined, and callers aggregating windows of live traffic (for example
// internal/quality) must be able to ask about an empty window without
// crashing.
func MAE(actual, predicted []float64) float64 {
	mustSameLen(actual, predicted)
	if len(actual) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range actual {
		s += math.Abs(actual[i] - predicted[i])
	}
	return s / float64(len(actual))
}

// MAPE is the Mean Absolute Percent Error (1/N) Σ |yᵢ − ŷᵢ| / yᵢ, returned
// as a fraction (multiply by 100 for percent). Samples with a zero actual
// value — a degenerate simulated trip — are skipped rather than killing
// the run; MAPE returns NaN when every sample is skipped (which includes
// empty input). Use MAPESkip to also learn how many samples were dropped.
func MAPE(actual, predicted []float64) float64 {
	v, _ := MAPESkip(actual, predicted)
	return v
}

// MAPESkip is MAPE plus the count of zero-actual samples it skipped.
func MAPESkip(actual, predicted []float64) (mape float64, skipped int) {
	mustSameLen(actual, predicted)
	var s float64
	for i := range actual {
		if actual[i] == 0 {
			skipped++
			continue
		}
		s += math.Abs(actual[i]-predicted[i]) / math.Abs(actual[i])
	}
	n := len(actual) - skipped
	if n == 0 {
		return math.NaN(), skipped
	}
	return s / float64(n), skipped
}

// MARE is the Mean Absolute Relative Error Σ|yᵢ − ŷᵢ| / Σ|yᵢ|, as a
// fraction. It returns NaN when all actual values are zero (the ratio is
// undefined, and an empty input is a special case of it) instead of
// panicking.
func MARE(actual, predicted []float64) float64 {
	mustSameLen(actual, predicted)
	var num, den float64
	for i := range actual {
		num += math.Abs(actual[i] - predicted[i])
		den += math.Abs(actual[i])
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// PerSampleAPE returns |yᵢ − ŷᵢ|/yᵢ per sample (the values behind the
// distribution plots of Figure 11 and the worst-case study of Figure 13).
func PerSampleAPE(actual, predicted []float64) []float64 {
	mustSameLen(actual, predicted)
	out := make([]float64, len(actual))
	for i := range actual {
		out[i] = math.Abs(actual[i]-predicted[i]) / math.Abs(actual[i])
	}
	return out
}

// mustSameLen panics on mismatched slice lengths — always a programmer
// error. Empty input is deliberately NOT a panic: MAE/MAPE/MARE answer NaN
// for it, so online aggregators can query windows that happened to receive
// no samples.
func mustSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(a), len(b)))
	}
}

// BoxStats are the five-number summary + mean used for the Figure 9
// box plots of per-batch MAPE.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
}

// Box computes box-plot statistics of xs.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		panic("metrics: Box on empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(s) {
			return s[len(s)-1]
		}
		f := pos - float64(lo)
		return s[lo]*(1-f) + s[hi]*f
	}
	var mean float64
	for _, v := range s {
		mean += v
	}
	return BoxStats{
		Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1],
		Mean: mean / float64(len(s)),
	}
}

// KDE evaluates a Gaussian kernel density estimate of xs on a uniform grid
// of n points spanning [lo, hi], using Silverman's rule of thumb for the
// bandwidth. It returns the grid and the densities (Figure 11's PDF
// curves).
func KDE(xs []float64, lo, hi float64, n int) (grid, density []float64) {
	if len(xs) == 0 || n <= 1 || hi <= lo {
		panic(fmt.Sprintf("metrics: invalid KDE input (n=%d, range [%v,%v], %d samples)", n, lo, hi, len(xs)))
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var variance float64
	for _, v := range xs {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(xs))
	std := math.Sqrt(variance)
	if std == 0 {
		std = 1e-6
	}
	h := 1.06 * std * math.Pow(float64(len(xs)), -0.2)

	grid = make([]float64, n)
	density = make([]float64, n)
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		grid[i] = x
		var d float64
		for _, v := range xs {
			z := (x - v) / h
			d += math.Exp(-0.5 * z * z)
		}
		density[i] = d * norm
	}
	return grid, density
}

// Moments returns the mean and variance of xs.
func Moments(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		panic("metrics: Moments on empty slice")
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

// WorstK returns the indices of the k largest values in xs, descending
// (Figure 13 selects each method's 50 worst-MAPE cases).
func WorstK(xs []float64, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
