package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicMetrics(t *testing.T) {
	actual := []float64{100, 200, 400}
	pred := []float64{110, 180, 400}
	if got := MAE(actual, pred); math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAE = %v, want 10", got)
	}
	wantMAPE := (10.0/100 + 20.0/200 + 0) / 3
	if got := MAPE(actual, pred); math.Abs(got-wantMAPE) > 1e-12 {
		t.Fatalf("MAPE = %v, want %v", got, wantMAPE)
	}
	wantMARE := 30.0 / 700
	if got := MARE(actual, pred); math.Abs(got-wantMARE) > 1e-12 {
		t.Fatalf("MARE = %v, want %v", got, wantMARE)
	}
}

func TestMetricsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MAE len mismatch":  func() { MAE([]float64{1}, []float64{1, 2}) },
		"MAPE len mismatch": func() { MAPE([]float64{1}, []float64{1, 2}) },
		"MARE len mismatch": func() { MARE([]float64{1, 2}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Empty input is not a programmer error for the headline metrics: an
// online quality window may simply have received no feedback yet. All
// three answer NaN (the mean of nothing), on both nil and zero-length
// slices.
func TestEmptyInputIsNaN(t *testing.T) {
	for name, got := range map[string]float64{
		"MAE nil":    MAE(nil, nil),
		"MAE empty":  MAE([]float64{}, []float64{}),
		"MAPE nil":   MAPE(nil, nil),
		"MAPE empty": MAPE([]float64{}, []float64{}),
		"MARE nil":   MARE(nil, nil),
		"MARE empty": MARE([]float64{}, []float64{}),
	} {
		if !math.IsNaN(got) {
			t.Fatalf("%s = %v, want NaN", name, got)
		}
	}
	mape, skipped := MAPESkip(nil, nil)
	if !math.IsNaN(mape) || skipped != 0 {
		t.Fatalf("MAPESkip(nil) = %v, %d, want NaN, 0", mape, skipped)
	}
	// The all-skipped path: every sample has a zero actual, so the empty
	// and fully-degenerate cases answer identically.
	mape, skipped = MAPESkip([]float64{0, 0, 0}, []float64{1, 2, 3})
	if !math.IsNaN(mape) || skipped != 3 {
		t.Fatalf("all-skipped MAPESkip = %v, %d, want NaN, 3", mape, skipped)
	}
	if out := PerSampleAPE(nil, nil); len(out) != 0 {
		t.Fatalf("PerSampleAPE(nil) = %v, want empty", out)
	}
}

// A single degenerate trip (zero actual travel time) must not kill a
// benchmark run: MAPE skips it, MARE only degrades to NaN when every
// actual is zero.
func TestZeroActualSkipped(t *testing.T) {
	mape, skipped := MAPESkip([]float64{0, 100, 200}, []float64{5, 110, 180})
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	want := (10.0/100 + 20.0/200) / 2
	if math.Abs(mape-want) > 1e-12 {
		t.Fatalf("MAPE = %v, want %v", mape, want)
	}
	if got := MAPE([]float64{0, 100, 200}, []float64{5, 110, 180}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MAPE wrapper = %v, want %v", got, want)
	}
	if got := MAPE([]float64{0, 0}, []float64{1, 2}); !math.IsNaN(got) {
		t.Fatalf("all-skipped MAPE = %v, want NaN", got)
	}
	if got := MARE([]float64{0, 0}, []float64{0, 0}); !math.IsNaN(got) {
		t.Fatalf("all-zero MARE = %v, want NaN", got)
	}
	if got := MARE([]float64{0, 100}, []float64{10, 110}); math.Abs(got-20.0/100) > 1e-12 {
		t.Fatalf("MARE with one zero actual = %v, want 0.2", got)
	}
}

func TestPerfectPredictionZeroError(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		y := make([]float64, n)
		for i := range y {
			y[i] = 1 + rng.Float64()*1000
		}
		return MAE(y, y) == 0 && MAPE(y, y) == 0 && MARE(y, y) == 0
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: MAPE ≥ MARE iff shorter trips carry bigger relative errors —
// both are always non-negative, and scaling all values leaves them fixed.
func TestMetricsScaleInvariance(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		y := make([]float64, n)
		p := make([]float64, n)
		for i := range y {
			y[i] = 10 + rng.Float64()*1000
			p[i] = 10 + rng.Float64()*1000
		}
		k := 1 + rng.Float64()*10
		ys := make([]float64, n)
		ps := make([]float64, n)
		for i := range y {
			ys[i], ps[i] = y[i]*k, p[i]*k
		}
		return math.Abs(MAPE(y, p)-MAPE(ys, ps)) < 1e-9 &&
			math.Abs(MARE(y, p)-MARE(ys, ps)) < 1e-9 &&
			math.Abs(MAE(ys, ps)-k*MAE(y, p)) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerSampleAPE(t *testing.T) {
	apes := PerSampleAPE([]float64{100, 200}, []float64{150, 100})
	if apes[0] != 0.5 || apes[1] != 0.5 {
		t.Fatalf("APEs = %v", apes)
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Mean != 3 {
		t.Fatalf("Box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v %v", b.Q1, b.Q3)
	}
	// Single value.
	one := Box([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Fatalf("Box singleton = %+v", one)
	}
	// Must not reorder the input.
	xs := []float64{3, 1, 2}
	Box(xs)
	if xs[0] != 3 {
		t.Fatal("Box mutated its input")
	}
}

func TestKDE(t *testing.T) {
	xs := []float64{0.2, 0.21, 0.19, 0.2, 0.5}
	grid, dens := KDE(xs, 0, 1, 50)
	if len(grid) != 50 || len(dens) != 50 {
		t.Fatalf("KDE sizes %d/%d", len(grid), len(dens))
	}
	// Density must peak nearer 0.2 than 0.9.
	at := func(x float64) float64 {
		best, bd := 0, math.Inf(1)
		for i, g := range grid {
			if d := math.Abs(g - x); d < bd {
				best, bd = i, d
			}
		}
		return dens[best]
	}
	if at(0.2) <= at(0.9) {
		t.Fatal("KDE peak misplaced")
	}
	for _, d := range dens {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("invalid density %v", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad KDE input accepted")
		}
	}()
	KDE(nil, 0, 1, 10)
}

func TestMoments(t *testing.T) {
	mean, variance := Moments([]float64{2, 4, 6})
	if mean != 4 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-8.0/3) > 1e-12 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestWorstK(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.5, 0.7}
	idx := WorstK(xs, 2)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("WorstK = %v", idx)
	}
	all := WorstK(xs, 10)
	if len(all) != 4 {
		t.Fatalf("WorstK clamped = %v", all)
	}
}
