package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deepod/internal/traj"
)

func sortedRecords(n int) []traj.TripRecord {
	recs := make([]traj.TripRecord, n)
	for i := range recs {
		recs[i].OD.DepartSec = float64(i * 10)
		recs[i].TravelSec = 100 + float64(i%7)*30
		recs[i].RawPoints = 5 + i%3
	}
	return recs
}

func TestChronoSplitRatios(t *testing.T) {
	recs := sortedRecords(610)
	s, err := ChronoSplit(recs, 42, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train)+len(s.Valid)+len(s.Test) != 610 {
		t.Fatal("split loses records")
	}
	// 42/61 of 610 = 420, 49/61 = 490.
	if len(s.Train) != 420 || len(s.Valid) != 70 || len(s.Test) != 120 {
		t.Fatalf("split sizes %d/%d/%d", len(s.Train), len(s.Valid), len(s.Test))
	}
	// Chronology: max(train) < min(valid) < min(test).
	if s.Train[len(s.Train)-1].OD.DepartSec >= s.Valid[0].OD.DepartSec {
		t.Fatal("train leaks into validation time range")
	}
	if s.Valid[len(s.Valid)-1].OD.DepartSec >= s.Test[0].OD.DepartSec {
		t.Fatal("validation leaks into test time range")
	}
}

func TestChronoSplitErrors(t *testing.T) {
	if _, err := ChronoSplit(sortedRecords(10), 0, 1, 1); err == nil {
		t.Fatal("zero ratio accepted")
	}
	if _, err := ChronoSplit(sortedRecords(2), 1, 1, 1); err == nil {
		t.Fatal("2 records accepted")
	}
	unsorted := sortedRecords(10)
	unsorted[3].OD.DepartSec = 1e9
	if _, err := ChronoSplit(unsorted, 1, 1, 1); err == nil {
		t.Fatal("unsorted records accepted")
	}
}

func TestPaperSplit(t *testing.T) {
	s, err := PaperSplit(sortedRecords(61))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train) != 42 || len(s.Valid) != 7 || len(s.Test) != 12 {
		t.Fatalf("paper split sizes %d/%d/%d", len(s.Train), len(s.Valid), len(s.Test))
	}
}

func TestSubsample(t *testing.T) {
	recs := sortedRecords(100)
	sub, err := Subsample(recs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 20 {
		t.Fatalf("Subsample(0.2) = %d records", len(sub))
	}
	// Prefix property: earliest trips only.
	if sub[len(sub)-1].OD.DepartSec != recs[19].OD.DepartSec {
		t.Fatal("Subsample is not a chronological prefix")
	}
	if _, err := Subsample(recs, 0); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := Subsample(recs, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	one, err := Subsample(recs, 1e-9)
	if err != nil || len(one) != 1 {
		t.Fatalf("tiny fraction should keep one record, got %d (%v)", len(one), err)
	}
}

func TestBatchesCoverEveryIndexOnce(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		bs := 1 + rng.Intn(16)
		seen := make([]int, n)
		err := Batches(n, bs, rng, true, func(batch []int) error {
			for _, i := range batch {
				seen[i]++
			}
			return nil
		})
		if err != nil {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBatchesDropTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	total := 0
	if err := Batches(10, 4, rng, false, func(batch []int) error {
		if len(batch) != 4 {
			t.Fatalf("batch size %d", len(batch))
		}
		total += len(batch)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Fatalf("covered %d indices, want 8 (tail dropped)", total)
	}
	if err := Batches(10, 0, rng, false, func([]int) error { return nil }); err == nil {
		t.Fatal("zero batch size accepted")
	}
}

func TestSummarize(t *testing.T) {
	recs := sortedRecords(10)
	st := Summarize(recs, func(*traj.TripRecord) float64 { return 1000 })
	if st.NumOrders != 10 || st.AvgLengthM != 1000 {
		t.Fatalf("stats %+v", st)
	}
	if st.MinTravelSec > st.AvgTravelSec || st.AvgTravelSec > st.MaxTravelSec {
		t.Fatalf("travel bounds inconsistent: %+v", st)
	}
	empty := Summarize(nil, nil)
	if empty.NumOrders != 0 {
		t.Fatal("empty summarize should be zero")
	}
}
