// Package dataset handles trip-record plumbing: chronological train /
// validation / test splits (the paper splits two months of orders 42:7:12
// by date, §6.1), shuffled mini-batching for training, and sub-sampling for
// the scalability study (Table 6).
package dataset

import (
	"fmt"
	"math/rand"

	"deepod/internal/traj"
)

// Split is a chronological partition of trip records.
type Split struct {
	Train []traj.TripRecord
	Valid []traj.TripRecord
	Test  []traj.TripRecord
}

// ChronoSplit partitions records (which must be sorted by departure time)
// by the ratio a:b:c, mirroring the paper's date-based 42:7:12 split: the
// earliest trips train, the middle trips validate, the latest trips test.
func ChronoSplit(records []traj.TripRecord, a, b, c int) (Split, error) {
	if a <= 0 || b <= 0 || c <= 0 {
		return Split{}, fmt.Errorf("dataset: split ratios must be positive, got %d:%d:%d", a, b, c)
	}
	if len(records) < 3 {
		return Split{}, fmt.Errorf("dataset: need at least 3 records to split, got %d", len(records))
	}
	for i := 1; i < len(records); i++ {
		if records[i].OD.DepartSec < records[i-1].OD.DepartSec {
			return Split{}, fmt.Errorf("dataset: records not sorted by departure at index %d", i)
		}
	}
	total := a + b + c
	n := len(records)
	trainEnd := n * a / total
	validEnd := n * (a + b) / total
	if trainEnd == 0 || validEnd == trainEnd || validEnd == n {
		return Split{}, fmt.Errorf("dataset: split %d:%d:%d degenerate for %d records", a, b, c, n)
	}
	return Split{
		Train: records[:trainEnd],
		Valid: records[trainEnd:validEnd],
		Test:  records[validEnd:],
	}, nil
}

// PaperSplit applies the paper's 42:7:12 ratio.
func PaperSplit(records []traj.TripRecord) (Split, error) {
	return ChronoSplit(records, 42, 7, 12)
}

// Subsample returns the first frac of the training data (the paper's
// Table 6 samples 20%..100% of training data; taking a chronological prefix
// keeps the no-future-leakage property).
func Subsample(train []traj.TripRecord, frac float64) ([]traj.TripRecord, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("dataset: fraction must be in (0,1], got %v", frac)
	}
	n := int(float64(len(train)) * frac)
	if n < 1 {
		n = 1
	}
	return train[:n], nil
}

// Batches yields shuffled mini-batches of indices into records, calling f
// once per batch (Algorithm 1's ModelTrain: shuffle, then iterate ⌊|X|/bs⌋
// batches). A trailing partial batch is delivered too when keepTail is set.
func Batches(n, batchSize int, rng *rand.Rand, keepTail bool, f func(batch []int) error) error {
	if batchSize <= 0 {
		return fmt.Errorf("dataset: batch size must be positive, got %d", batchSize)
	}
	perm := rng.Perm(n)
	full := n / batchSize
	for b := 0; b < full; b++ {
		if err := f(perm[b*batchSize : (b+1)*batchSize]); err != nil {
			return err
		}
	}
	if keepTail && n%batchSize != 0 {
		if err := f(perm[full*batchSize:]); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a record set the way the paper's Table 2 does.
type Stats struct {
	NumOrders    int
	AvgGPSPoints float64
	AvgTravelSec float64
	AvgSegments  float64
	AvgLengthM   float64
	MinTravelSec float64
	MaxTravelSec float64
}

// Summarize computes Table 2 statistics. lengthOf maps a record to its
// trajectory length in meters (injected so this package does not depend on
// the road network).
func Summarize(records []traj.TripRecord, lengthOf func(*traj.TripRecord) float64) Stats {
	if len(records) == 0 {
		return Stats{}
	}
	s := Stats{NumOrders: len(records), MinTravelSec: records[0].TravelSec, MaxTravelSec: records[0].TravelSec}
	for i := range records {
		r := &records[i]
		s.AvgGPSPoints += float64(r.RawPoints)
		s.AvgTravelSec += r.TravelSec
		s.AvgSegments += float64(len(r.Trajectory.Path))
		s.AvgLengthM += lengthOf(r)
		if r.TravelSec < s.MinTravelSec {
			s.MinTravelSec = r.TravelSec
		}
		if r.TravelSec > s.MaxTravelSec {
			s.MaxTravelSec = r.TravelSec
		}
	}
	n := float64(len(records))
	s.AvgGPSPoints /= n
	s.AvgTravelSec /= n
	s.AvgSegments /= n
	s.AvgLengthM /= n
	return s
}
