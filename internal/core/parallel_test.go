package core

import (
	"math"
	"testing"
	"time"

	"deepod/internal/dataset"
)

// paramsBitIdentical compares every parameter of two models bit for bit.
func paramsBitIdentical(t *testing.T, a, b *Model) {
	t.Helper()
	as, bs := a.Params().Save(), b.Params().Save()
	if len(as) != len(bs) {
		t.Fatalf("parameter count differs: %d vs %d", len(as), len(bs))
	}
	for name, av := range as {
		bv, ok := bs[name]
		if !ok {
			t.Fatalf("parameter %q missing from second model", name)
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				t.Fatalf("parameter %q[%d] differs: %v vs %v", name, i, av[i], bv[i])
			}
		}
	}
}

// TestParallelWorkersOneMatchesSerial pins the core acceptance criterion:
// one data-parallel worker reproduces the serial path (TrainWorkers=0) bit
// for bit — identical parameters, time scale and validation trace.
func TestParallelWorkersOneMatchesSerial(t *testing.T) {
	g, recs := testWorld(t, 70)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*Model, *TrainStats) {
		cfg := tinyConfig()
		cfg.Epochs = 1
		cfg.TrainWorkers = workers
		m, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 4, EvalEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		return m, stats
	}
	mSerial, sSerial := run(0)
	mOne, sOne := run(1)
	paramsBitIdentical(t, mSerial, mOne)
	if mSerial.TimeScale() != mOne.TimeScale() {
		t.Fatalf("time scale differs: %v vs %v", mSerial.TimeScale(), mOne.TimeScale())
	}
	if sSerial.FinalValMAE != sOne.FinalValMAE {
		t.Fatalf("FinalValMAE differs: %v vs %v", sSerial.FinalValMAE, sOne.FinalValMAE)
	}
	for i := range sSerial.Curve {
		if sSerial.Curve[i].ValMAE != sOne.Curve[i].ValMAE {
			t.Fatalf("curve point %d differs: %v vs %v", i, sSerial.Curve[i].ValMAE, sOne.Curve[i].ValMAE)
		}
	}
}

// TestParallelTrainingDeterministic checks that a given seed + worker count
// is bit-reproducible: two runs with 2 workers produce identical parameters
// and identical validation MAE.
func TestParallelTrainingDeterministic(t *testing.T) {
	g, recs := testWorld(t, 70)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Model, *TrainStats) {
		cfg := tinyConfig()
		cfg.Epochs = 1
		cfg.TrainWorkers = 2
		m, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 4, EvalEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		return m, stats
	}
	mA, sA := run()
	mB, sB := run()
	paramsBitIdentical(t, mA, mB)
	if sA.FinalValMAE != sB.FinalValMAE {
		t.Fatalf("same seed + workers produced different FinalValMAE: %v vs %v", sA.FinalValMAE, sB.FinalValMAE)
	}
	if sA.SamplesSeen != sB.SamplesSeen || sA.SamplesSeen == 0 {
		t.Fatalf("SamplesSeen mismatch or zero: %d vs %d", sA.SamplesSeen, sB.SamplesSeen)
	}
}

// TestParallelWorkerCountsAgree checks 1 vs 4 workers: gradients are summed
// in a different order (and node2vec shards differently), so results are not
// bit-identical, but on the same data the final validation MAE must land in
// the same neighborhood.
func TestParallelWorkerCountsAgree(t *testing.T) {
	g, recs := testWorld(t, 70)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *TrainStats {
		cfg := tinyConfig()
		cfg.Epochs = 1
		cfg.TrainWorkers = workers
		m, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 6})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	s1 := run(1)
	s4 := run(4)
	if s1.Workers != 1 || s4.Workers != 4 {
		t.Fatalf("stats workers = %d, %d; want 1, 4", s1.Workers, s4.Workers)
	}
	a, b := s1.FinalValMAE, s4.FinalValMAE
	if math.IsNaN(a) || math.IsNaN(b) || a <= 0 || b <= 0 {
		t.Fatalf("invalid MAEs: %v, %v", a, b)
	}
	rel := math.Abs(a-b) / math.Max(a, b)
	if rel > 0.5 {
		t.Fatalf("1-worker and 4-worker MAE diverge: %v vs %v (rel %v)", a, b, rel)
	}
}

// TestParallelStepPointTimes checks the measured-convergence satellite:
// every StepPoint carries a positive monotone wall-clock time and
// ConvergedAt is the recorded time of the converged step, not a
// back-computed fraction of Elapsed.
func TestParallelStepPointTimes(t *testing.T) {
	g, recs := testWorld(t, 70)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 4, EvalEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Curve) == 0 {
		t.Fatal("no curve points")
	}
	prev := time.Duration(0)
	for i, p := range stats.Curve {
		if p.At <= 0 {
			t.Fatalf("curve[%d].At = %v, want > 0", i, p.At)
		}
		if p.At < prev {
			t.Fatalf("curve[%d].At = %v went backwards from %v", i, p.At, prev)
		}
		prev = p.At
	}
	found := false
	for _, p := range stats.Curve {
		if p.Step == stats.ConvergedStep {
			if stats.ConvergedAt != p.At {
				t.Fatalf("ConvergedAt = %v, want measured %v", stats.ConvergedAt, p.At)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ConvergedStep %d not on the curve", stats.ConvergedStep)
	}
	if stats.ConvergedAt > stats.Elapsed {
		t.Fatalf("ConvergedAt %v exceeds Elapsed %v", stats.ConvergedAt, stats.Elapsed)
	}
}
