package core

import (
	"sync"

	"deepod/internal/nn"
)

// trainPool is a persistent set of data-parallel training workers. Each
// worker owns a reusable tape whose leaf gradients are routed into a private
// GradBuffer; after a batch, reduce folds the buffers into the shared
// parameter gradients in fixed worker-index order. That fixed order is the
// determinism contract: a given seed + worker count always sums per-sample
// gradients in the same floating-point order, and one worker reproduces the
// historical serial loop bit for bit (a zeroed buffer accumulated in sample
// order and then added once to the zeroed shared gradient performs the
// exact same additions the serial path did).
type trainPool struct {
	ps    *nn.ParamSet
	n     int
	tapes []*nn.Tape
	bufs  []*nn.GradBuffer
	jobs  []chan func(w int, tp *nn.Tape)
	wg    sync.WaitGroup
}

// newTrainPool starts n persistent workers over ps (n < 1 is clamped to 1).
func newTrainPool(ps *nn.ParamSet, n int) *trainPool {
	if n < 1 {
		n = 1
	}
	p := &trainPool{ps: ps, n: n}
	for w := 0; w < n; w++ {
		tp := nn.NewTape()
		gb := ps.NewGradBuffer()
		tp.Grads = gb
		p.tapes = append(p.tapes, tp)
		p.bufs = append(p.bufs, gb)
		ch := make(chan func(w int, tp *nn.Tape))
		p.jobs = append(p.jobs, ch)
		go func(w int, tp *nn.Tape, ch chan func(int, *nn.Tape)) {
			for f := range ch {
				f(w, tp)
				p.wg.Done()
			}
		}(w, tp, ch)
	}
	return p
}

// run invokes f once on every worker concurrently and waits for all of them.
// Workers shard the batch themselves (sample i belongs to worker i mod n).
func (p *trainPool) run(f func(w int, tp *nn.Tape)) {
	p.wg.Add(p.n)
	for _, ch := range p.jobs {
		ch <- f
	}
	p.wg.Wait()
}

// reduce folds the per-worker gradient buffers into the shared parameter
// gradients in worker-index order and clears the buffers for the next batch.
func (p *trainPool) reduce() {
	for _, gb := range p.bufs {
		gb.AccumulateInto(p.ps)
		gb.Zero()
	}
}

// close shuts the workers down; the pool must not be used afterwards.
func (p *trainPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// shardLoop runs body(i) for every i in [0, n) sharded across workers
// goroutines (sample i on worker i mod workers), waiting for completion.
// With workers <= 1 it runs inline. Writes from body must go to
// index-disjoint locations; results are then independent of scheduling.
func shardLoop(n, workers int, body func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				body(i)
			}
		}(w)
	}
	wg.Wait()
}
