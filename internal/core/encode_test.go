package core

import (
	"math"
	"testing"

	"deepod/internal/dataset"
	"deepod/internal/nn"
)

// TestTrainEvalForwardConsistency: the training tape (recording gradients)
// and the eval tape must compute identical forward values for M_O, M_E and
// M_T — a guard against eval-mode shortcuts diverging from training math.
func TestTrainEvalForwardConsistency(t *testing.T) {
	g, recs := testWorld(t, 100)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained weights suffice: consistency is a structural property.
	m.SetTimeScale(300)
	for i := range split.Test {
		rec := &split.Test[i]
		trainTape := nn.NewTape()
		evalTape := nn.NewEvalTape()
		codeT := m.encodeOD(trainTape, &rec.Matched)
		codeE := m.encodeOD(evalTape, &rec.Matched)
		for k := range codeT.Value.Data {
			if codeT.Value.Data[k] != codeE.Value.Data[k] {
				t.Fatalf("record %d: code differs between train and eval tapes at %d", i, k)
			}
		}
		stT := m.encodeTrajectory(trainTape, &rec.Trajectory)
		stE := m.encodeTrajectory(evalTape, &rec.Trajectory)
		for k := range stT.Value.Data {
			if stT.Value.Data[k] != stE.Value.Data[k] {
				t.Fatalf("record %d: stcode differs between tapes at %d", i, k)
			}
		}
	}
}

// TestCodeDimensionsTied: code and stcode must share a latent space
// (d8m == d4m, §4.6), verified on the actual encoder outputs.
func TestCodeDimensionsTied(t *testing.T) {
	g, recs := testWorld(t, 60)
	split, err := dataset.ChronoSplit(recs, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	tp := nn.NewEvalTape()
	rec := &split.Train[0]
	code := m.encodeOD(tp, &rec.Matched)
	stcode := m.encodeTrajectory(tp, &rec.Trajectory)
	if code.Value.Size() != stcode.Value.Size() {
		t.Fatalf("code size %d != stcode size %d", code.Value.Size(), stcode.Value.Size())
	}
	if code.Value.Size() != m.cfg.D8m() {
		t.Fatalf("code size %d != D8m %d", code.Value.Size(), m.cfg.D8m())
	}
}

// TestTimeIntervalEncoderSpans: Δd follows Formula 4 and long intervals are
// clamped without panicking.
func TestTimeIntervalEncoderSpans(t *testing.T) {
	g, _ := testWorld(t, 5)
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	tp := nn.NewEvalTape()
	// Within one slot.
	v1 := m.encodeTimeInterval(tp, 60, 120)
	// Across many slots (clamped).
	v2 := m.encodeTimeInterval(tp, 0, 10*3600)
	if v1.Value.Size() != m.cfg.D2m || v2.Value.Size() != m.cfg.D2m {
		t.Fatalf("tcode sizes %d/%d, want %d", v1.Value.Size(), v2.Value.Size(), m.cfg.D2m)
	}
	for _, v := range append(v1.Value.Data, v2.Value.Data...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("tcode contains invalid values")
		}
	}
}

// TestEmbedMethodVariantsTrain exercises the §5 embedding-method knob.
func TestEmbedMethodVariantsTrain(t *testing.T) {
	g, recs := testWorld(t, 90)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"node2vec", "deepwalk", "line"} {
		cfg := tinyConfig()
		cfg.Epochs = 1
		cfg.EmbedMethod = method
		m, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 2}); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
	}
	bad := tinyConfig()
	bad.EmbedMethod = "gnn"
	if _, err := New(bad, g); err == nil {
		t.Fatal("unknown embed method accepted")
	}
}

// TestAuxOneWayTrains exercises the one-way binding option.
func TestAuxOneWayTrains(t *testing.T) {
	g, recs := testWorld(t, 90)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	cfg.AuxWeight = 0.3
	cfg.AuxOneWay = true
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 3}); err != nil {
		t.Fatal(err)
	}
	if y := m.Estimate(&split.Test[0].Matched); math.IsNaN(y) || y < 0 {
		t.Fatalf("one-way model produced %v", y)
	}
}
