package core

import (
	"deepod/internal/obs"
)

// Training metrics (see the obs package doc for the full naming scheme).
// Resolved once at init so the hot loops touch only atomics: Train
// observes per-step phase durations. The online encode/estimate stages
// are obs spans (EstimateCtx), so they both feed tte_span_seconds and
// join request traces.
var (
	embedPhaseHist    = obs.Default().Histogram("tte_train_phase_seconds", obs.DefBuckets, "phase", "embed_pretrain")
	forwardPhaseHist  = obs.Default().Histogram("tte_train_phase_seconds", obs.DefBuckets, "phase", "forward")
	backwardPhaseHist = obs.Default().Histogram("tte_train_phase_seconds", obs.DefBuckets, "phase", "backward")
	evalPhaseHist     = obs.Default().Histogram("tte_train_phase_seconds", obs.DefBuckets, "phase", "eval")
	trainEpochGauge   = obs.Default().Gauge("tte_train_epoch")
	trainSamplesTotal = obs.Default().Counter("tte_train_samples_total")
)

func init() {
	r := obs.Default()
	r.Help("tte_train_phase_seconds", "Offline training phase durations: embed_pretrain (once), forward/backward (per optimizer step), eval (per validation pass).")
	r.Help("tte_train_epoch", "Current training epoch (last value wins across runs).")
	r.Help("tte_train_samples_total", "Cumulative training samples consumed by optimizer steps.")
	r.Help(obs.SpanFamily, "Pipeline stage durations: decode, match, encode, estimate and mapmatch.* sub-stages.")
}
