package core

import (
	"context"
	"fmt"
	"sync"

	"deepod/internal/citysim"
	"deepod/internal/nn"
	"deepod/internal/obs"
	"deepod/internal/tensor"
	"deepod/internal/traj"
)

// The fused batched inference path: an admission batch of B matched ODs is
// encoded as one [B×odDim] feature matrix and pushed through the OD encoder
// MLP and the estimator head as matrix-matrix products, instead of B
// independent tape walks. Per-sample work that has no batched kernel (the
// external-features conv stack) still runs on an eval tape, but every MLP —
// extMLP, odMLP, estMLP — runs through tensor.AffineBatchInto, which keeps
// reductions sequential per output element, so the fused result is
// Float64bits-identical to EstimateBatch. Flight-recorder replay
// (internal/replay, which pins MaxBatch=1) therefore reproduces fused-engine
// recordings with zero unexplained diffs.

// fusedScratch is the reusable state of one fused forward: an eval tape for
// the per-sample conv encoder and an arena for the [B×d] activation
// matrices. Pooled like evalTapes so steady-state batches allocate only
// their output slice.
type fusedScratch struct {
	tp    *nn.Tape
	arena tensor.Arena
}

var fusedScratches = sync.Pool{New: func() any { return &fusedScratch{tp: nn.NewEvalTape()} }}

// EstimateBatchFused estimates many OD inputs through the fused [B×d] path.
// Results are bit-identical to EstimateBatch for every batch size.
func (m *Model) EstimateBatchFused(ods []traj.MatchedOD) []float64 {
	return m.EstimateBatchFusedCtx(context.Background(), ods)
}

// EstimateBatchFusedCtx is EstimateBatchFused with trace context: the batch
// is one "estimate_batch" span (count and fused attributes) whose children
// are a single batched encode stage and a single batched estimate stage.
// Batches of one fall back to the per-sample path — there is nothing to
// fuse and the tape path avoids the matrix bookkeeping. Safe for concurrent
// use.
func (m *Model) EstimateBatchFusedCtx(ctx context.Context, ods []traj.MatchedOD) []float64 {
	if len(ods) <= 1 {
		return m.EstimateBatchCtx(ctx, ods)
	}
	bctx, span := obs.StartSpan(ctx, "estimate_batch")
	span.SetInt("count", len(ods))
	span.SetInt("fused", 1)
	defer span.End()

	sc := fusedScratches.Get().(*fusedScratch)
	defer fusedScratches.Put(sc)
	ar := &sc.arena
	ar.Reset()

	_, encSpan := obs.StartSpan(bctx, "encode")
	z9 := m.odFeatureMatrix(sc, ods)
	code := m.odMLP.ForwardBatch(ar, z9)
	encSpan.End()

	_, estSpan := obs.StartSpan(bctx, "estimate")
	y := m.estMLP.ForwardBatch(ar, code)
	estSpan.End()

	out := make([]float64, len(ods))
	for i := range out {
		sec := y.Data[i] * m.timeScale
		if sec < 0 {
			sec = 0
		}
		out[i] = sec
	}
	return out
}

// odFeatureMatrix assembles the Z⁹ feature matrix for a batch: one row per
// OD, laid out exactly as encodeOD concatenates its parts. The external code
// rows are produced by extMLP.ForwardBatch over a [B×z8] matrix; everything
// else is a pure copy of embedding rows and scalar features, so every value
// equals the per-sample tape path bit for bit.
func (m *Model) odFeatureMatrix(sc *fusedScratch, ods []traj.MatchedOD) *tensor.Tensor {
	ar := &sc.arena
	b := len(ods)
	var ocode *tensor.Tensor // [B, D6m], nil under N-ex
	if !m.cfg.NoExternal {
		z8w := citysim.WeatherTypes + m.cfg.Dtraf
		z8 := ar.New(b, z8w)
		for i := range ods {
			m.externalZ8Row(sc.tp, ods[i].External, z8.Data[i*z8w:(i+1)*z8w])
		}
		ocode = m.extMLP.ForwardBatch(ar, z8)
	}
	z9 := ar.New(b, m.odDim)
	for i := range ods {
		od := &ods[i]
		row := z9.Data[i*m.odDim : (i+1)*m.odDim]
		off := 0
		if m.cfg.NoSpatial {
			row[0], row[1] = m.edgeFracNorm(od.OriginEdge, od.RStart)
			row[2], row[3] = m.edgeFracNorm(od.DestEdge, 1-od.REnd)
			off = 4
		} else {
			off += m.embedRow(m.roadEmb, int(od.OriginEdge), row[off:])
			off += m.embedRow(m.roadEmb, int(od.DestEdge), row[off:])
		}
		if m.cfg.TimeInit == TimeStamp {
			row[off] = od.DepartSec
			off++
		} else {
			off += m.embedRow(m.slotEmb, m.weekSlotIndex(od.DepartSec), row[off:])
			row[off] = m.slotter.NormalizedRemainder(od.DepartSec)
			off++
		}
		if ocode != nil {
			d6 := m.cfg.D6m
			copy(row[off:off+d6], ocode.Data[i*d6:(i+1)*d6])
			off += d6
		}
		row[off] = od.RStart
		row[off+1] = od.REnd
		off += 2
		if off != m.odDim {
			panic(fmt.Sprintf("core: fused Z9 row size %d != expected %d", off, m.odDim))
		}
	}
	return z9
}

// embedRow copies embedding row id into dst, with the same range check as
// Embedding.Lookup, returning the embedding width.
func (m *Model) embedRow(e *nn.Embedding, id int, dst []float64) int {
	if id < 0 || id >= e.V {
		panic(fmt.Sprintf("nn: embedding %q id %d out of range [0,%d)", e.W.Name, id, e.V))
	}
	copy(dst[:e.Dim], e.W.Value.Data[id*e.Dim:(id+1)*e.Dim])
	return e.Dim
}

// externalZ8Row fills one Z⁸ row — [WeatherTypes one-hot | Dtraf traffic
// code] — mirroring encodeExternal value for value. row arrives zeroed (an
// arena allocation), which is exactly the nil-External encoding. The conv
// stack has no batched kernel, so it runs per sample on the scratch tape.
func (m *Model) externalZ8Row(tp *nn.Tape, ext *traj.ExternalFeatures, row []float64) {
	if ext == nil {
		return
	}
	if ext.Weather < 0 || ext.Weather >= citysim.WeatherTypes {
		panic(fmt.Sprintf("core: weather type %d out of range", ext.Weather))
	}
	row[ext.Weather] = 1
	tp.Reset()
	grid := tp.Alloc(1, ext.GridRows, ext.GridCols)
	for i, v := range ext.SpeedGrid {
		grid.Data[i] = v / maxSpeedNorm
	}
	c1 := m.extConv1.Forward(tp, tp.Const(grid))
	c2 := m.extConv2.Forward(tp, c1)
	c3 := m.extConv3.Forward(tp, c2)
	pooled := tp.GlobalAvgPool(c3)
	dtraf := tp.ReLU(m.extProj.Forward(tp, pooled))
	copy(row[citysim.WeatherTypes:], dtraf.Value.Data)
}
