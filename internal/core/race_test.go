package core

import (
	"fmt"
	"sync"
	"testing"

	"deepod/internal/dataset"
	"deepod/internal/traj"
)

func concurrencyMismatch(i int, got, want float64) error {
	return fmt.Errorf("trip %d: concurrent estimate %v != serial %v", i, got, want)
}

// TestEstimateConcurrentSafe asserts the inference path is goroutine-safe:
// many goroutines calling Estimate / EstimateBatch on one shared model must
// produce exactly the serial results, with no data races (run under -race;
// internal/infer's worker pool depends on this). Safety rests on Estimate
// building a private eval tape per call and treating parameters as
// read-only — this test pins that contract.
func TestEstimateConcurrentSafe(t *testing.T) {
	g, recs := testWorld(t, 80)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{}); err != nil {
		t.Fatal(err)
	}

	// Query set: every test trip, including ones carrying External features
	// (the generator attaches them), so the external encoder runs too.
	n := len(split.Test)
	if n == 0 {
		t.Fatal("no test trips")
	}
	want := make([]float64, n)
	for i := range split.Test {
		want[i] = m.Estimate(&split.Test[i].Matched)
	}

	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each worker starts at a different offset so goroutines
				// overlap on different trips at any instant.
				for off := 0; off < n; off++ {
					i := (off + w*7) % n
					if got := m.Estimate(&split.Test[i].Matched); got != want[i] {
						select {
						case errCh <- concurrencyMismatch(i, got, want[i]):
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestEstimateBatchConcurrentSafe covers the batched entry point the same
// way: concurrent EstimateBatch calls over shared inputs must equal the
// serial per-trip results.
func TestEstimateBatchConcurrentSafe(t *testing.T) {
	g, recs := testWorld(t, 60)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{}); err != nil {
		t.Fatal(err)
	}

	ods := make([]traj.MatchedOD, len(split.Test))
	for i := range split.Test {
		ods[i] = split.Test[i].Matched
	}
	want := m.EstimateBatch(ods)

	const workers = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				got := m.EstimateBatch(ods)
				for i := range got {
					if got[i] != want[i] {
						select {
						case errCh <- concurrencyMismatch(i, got[i], want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
