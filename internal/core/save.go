package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"deepod/internal/metrics"
	"deepod/internal/nn"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// savedModel is the on-disk format: the configuration, the target scale and
// every parameter tensor by name (encoding/gob).
type savedModel struct {
	Config    Config
	TimeScale float64
	NumEdges  int
	Params    nn.Snapshot
	// RefDist is the test-split absolute-error distribution recorded at
	// training time (drift reference for internal/quality). gob tolerates
	// its absence, so checkpoints written before this field load fine and
	// leave it nil.
	RefDist *metrics.RefDist
	// Calib is the calibration OD set for the float32 admission gate
	// (SetCalibration). Absent in older checkpoints, like RefDist.
	Calib []traj.MatchedOD
}

// Save serializes the trained model to w. The road network itself is not
// stored — Load requires a structurally identical graph (same edge count),
// which in this repository is reproducible from the city preset and seed.
func (m *Model) Save(w io.Writer) error {
	s := savedModel{
		Config:    m.cfg,
		TimeScale: m.timeScale,
		NumEdges:  m.g.NumEdges(),
		Params:    m.ps.Save(),
		RefDist:   m.refDist,
		Calib:     m.calib,
	}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// Load deserializes a model saved with Save, rebuilding it over g.
func Load(r io.Reader, g *roadnet.Graph) (*Model, error) {
	var s savedModel
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if s.NumEdges != g.NumEdges() {
		return nil, fmt.Errorf("core: model was trained on a network with %d edges, graph has %d",
			s.NumEdges, g.NumEdges())
	}
	m, err := New(s.Config, g)
	if err != nil {
		return nil, err
	}
	if err := m.ps.Load(s.Params); err != nil {
		return nil, err
	}
	m.SetTimeScale(s.TimeScale)
	m.SetRefDist(s.RefDist)
	if len(s.Calib) > 0 {
		m.SetCalibration(s.Calib)
	}
	return m, nil
}
