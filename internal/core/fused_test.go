package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"deepod/internal/dataset"
	"deepod/internal/traj"
)

// fusedBitExact asserts EstimateBatchFused == EstimateBatch by Float64bits
// for every batch size in sizes, slicing ods from the front.
func fusedBitExact(t *testing.T, m *Model, ods []traj.MatchedOD, sizes []int) {
	t.Helper()
	for _, n := range sizes {
		if n > len(ods) {
			continue
		}
		batch := ods[:n]
		want := m.EstimateBatch(batch)
		got := m.EstimateBatchFused(batch)
		if len(got) != len(want) {
			t.Fatalf("B=%d: fused returned %d estimates, want %d", n, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("B=%d trip %d: fused %v (bits %x) != per-sample %v (bits %x)",
					n, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
	}
}

var fusedSizes = []int{0, 1, 2, 3, 5, 16, 33}

// TestEstimateBatchFusedBitExact pins the tentpole contract on a trained
// model: the fused [B×d] path must reproduce the per-sample path bit for
// bit at every batch size — including trips that carry External features,
// so the batched extMLP is exercised against the tape extMLP. Replay's
// zero-unexplained guarantee over fused-engine recordings rides on this.
func TestEstimateBatchFusedBitExact(t *testing.T) {
	g, recs := testWorld(t, 60)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	ods := make([]traj.MatchedOD, 0, len(recs))
	withExt := 0
	for i := range recs {
		ods = append(ods, recs[i].Matched)
		if recs[i].Matched.External != nil {
			withExt++
		}
	}
	if withExt == 0 {
		t.Fatal("no test trips carry External features; batched extMLP untested")
	}
	fusedBitExact(t, m, ods, fusedSizes)
}

// TestEstimateBatchFusedVariants covers the ablation configurations, which
// change the Z9 row layout: N-sp (coordinates instead of road embeddings),
// N-ex (no external code), and T-stamp (raw timestamp instead of slot
// embedding + remainder). Untrained weights suffice — bit-exactness is a
// property of the kernels, not the parameter values.
func TestEstimateBatchFusedVariants(t *testing.T) {
	g, recs := testWorld(t, 40)
	ods := make([]traj.MatchedOD, len(recs))
	for i := range recs {
		ods[i] = recs[i].Matched
	}
	for name, mut := range map[string]func(*Config){
		"NoSpatial":  func(c *Config) { c.NoSpatial = true },
		"NoExternal": func(c *Config) { c.NoExternal = true },
		"TimeStamp":  func(c *Config) { c.TimeInit = TimeStamp },
	} {
		mut := mut
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig()
			mut(&cfg)
			m, err := New(cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			fusedBitExact(t, m, ods, fusedSizes)
		})
	}
}

// TestF32GateAdmitsAndRejects covers the quantized head end-to-end: on a
// trained model with a stored calibration set, the default 0.1% gate must
// admit the head and the f32 estimates must stay within the gate's bound of
// the float64 path; an absurdly tight threshold must reject the head with a
// clear error and leave the model serving float64.
func TestF32GateAdmitsAndRejects(t *testing.T) {
	g, recs := testWorld(t, 60)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	calib := make([]traj.MatchedOD, len(split.Test))
	for i := range split.Test {
		calib[i] = split.Test[i].Matched
	}
	m.SetCalibration(calib)

	// Calibration must survive a checkpoint round trip (gob field added
	// after the format shipped, so absence must also load — covered by the
	// admit path below running on the loaded model).
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(loaded.Calibration()); got != len(calib) {
		t.Fatalf("loaded %d calibration ODs, want %d", got, len(calib))
	}

	if err := loaded.EnableF32(1e-12); err == nil {
		t.Fatal("1e-12 threshold admitted the f32 head; expected rejection")
	}
	if loaded.F32Enabled() {
		t.Fatal("rejected head left installed")
	}

	if err := loaded.EnableF32(0); err != nil {
		t.Fatalf("default gate rejected the f32 head: %v", err)
	}
	if !loaded.F32Enabled() || loaded.F32MAEDelta() <= 0 || loaded.F32MAEDelta() > DefaultF32Threshold {
		t.Fatalf("f32 head state: enabled=%v delta=%v", loaded.F32Enabled(), loaded.F32MAEDelta())
	}

	// Served f32 estimates track float64 within the gate's own bound, and
	// a batch of one answers identically to the same OD inside a batch —
	// under quantization the batch size must never change the answer.
	ods := calib[:min(len(calib), 16)]
	ref := loaded.EstimateBatchFused(ods)
	got := loaded.EstimateBatchF32Ctx(context.Background(), ods)
	var sumAbs, sumRef float64
	for i := range ref {
		sumAbs += math.Abs(got[i] - ref[i])
		sumRef += math.Abs(ref[i])
	}
	if sumRef > 0 && sumAbs/sumRef > 10*DefaultF32Threshold {
		t.Fatalf("f32 serve drifted %.3g relative MAE from float64", sumAbs/sumRef)
	}
	single := loaded.EstimateF32Ctx(context.Background(), &ods[3])
	if math.Float64bits(single) != math.Float64bits(got[3]) {
		t.Fatalf("f32 single-request %v != same OD batched %v", single, got[3])
	}
}
