package core

import (
	"fmt"

	"deepod/internal/nn"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// maxSpeedNorm normalizes speed-grid cells (m/s) to roughly [0, 1].
const maxSpeedNorm = 16.0

// encodeTimeInterval implements the Time Interval Encoder of Figure 6 /
// Formulas 4–11: the slots covered by [enter, exit] are embedded, stacked
// into Dt ∈ R^{Δd×dt}, passed through the ResNet block (three convs with
// channel sizes 4, 8, 1; identity shortcut), average-pooled per column, and
// merged with the two remainders by a two-layer MLP into tcode.
func (m *Model) encodeTimeInterval(tp *nn.Tape, enter, exit float64) *nn.Node {
	if m.cfg.TimeInit == TimeStamp {
		// T-stamp variant: raw timestamps straight into an MLP.
		raw := tp.ConstVec(enter, exit)
		return m.tieStampMLP.Forward(tp, raw)
	}
	s1, r1 := m.slotter.Split(enter)
	s2, r2 := m.slotter.Split(exit)
	span := s2 - s1 + 1 // Δd (Formula 4)
	if span < 1 {
		panic(fmt.Sprintf("core: negative interval [%v, %v]", enter, exit))
	}
	// Clamp pathological spans (a trajectory stuck on one segment for
	// hours) to bound the conv cost.
	const maxSpan = 16
	if span > maxSpan {
		span = maxSpan
	}
	rows := make([]*nn.Node, span)
	for i := 0; i < span; i++ {
		abs := s1 + i
		idx := m.weekSlotIndexOfSlot(abs)
		rows[i] = m.slotEmb.Lookup(tp, idx)
	}
	dt := m.cfg.Dt
	dmat := tp.StackRows(rows...)                // Dt ∈ R^{Δd×dt}
	x := tp.Reshape(dmat, 1, span, dt)           // 1×Δd×dt tensor
	z1 := m.tieConv1.Forward(tp, x)              // Formula 5
	z2 := m.tieConv2.Forward(tp, z1)             // Formula 6
	z3 := m.tieConv3.Forward(tp, z2)             // Formula 7
	z4 := tp.Add(dmat, tp.Reshape(z3, span, dt)) // Formula 8: Dt ⊕ Z³
	z5 := tp.MeanCols(z4)                        // Formula 10: average pooling
	z6 := tp.Concat(z5, tp.ConstVec(r1/m.slotter.Delta, r2/m.slotter.Delta))
	return m.tieMLP.Forward(tp, z6) // Formula 11
}

// weekSlotIndexOfSlot maps an absolute slot number onto the embedding row.
func (m *Model) weekSlotIndexOfSlot(slot int) int {
	ws := m.slotter.WeekSlot(slot)
	if m.cfg.TimeInit == TimeDayGraph {
		return m.slotter.SlotOfDay(ws)
	}
	return ws
}

// encodeTrajectory implements the Trajectory Encoder of Figure 7 /
// Formulas 12–17: each step's time-interval code and road-segment embedding
// are concatenated into D^st and consumed by the LSTM; the final hidden
// state is merged with the position ratios by a two-layer MLP into stcode.
func (m *Model) encodeTrajectory(tp *nn.Tape, t *traj.Trajectory) *nn.Node {
	if m.cfg.NoTrajectory {
		panic("core: encodeTrajectory called with NoTrajectory set")
	}
	steps := make([]*nn.Node, len(t.Path))
	for i, s := range t.Path {
		var parts []*nn.Node
		if !m.cfg.NoTemporal {
			parts = append(parts, m.encodeTimeInterval(tp, s.Enter, s.Exit))
		}
		if m.cfg.NoSpatial {
			x, y := m.edgeMidNorm(s.Edge)
			parts = append(parts, tp.ConstVec(x, y))
		} else {
			parts = append(parts, m.roadEmb.Lookup(tp, int(s.Edge)))
		}
		steps[i] = tp.Concat(parts...)
	}
	h := m.lstm.Forward(tp, steps)
	z7 := tp.Concat(h, tp.ConstVec(t.RStart, t.REnd))
	return m.trajMLP.Forward(tp, z7) // Formula 17
}

// encodeExternal implements the External Features Encoder (§4.5 /
// Formula 18): a one-hot weather vector and a CNN-compressed speed matrix
// are concatenated and passed through a two-layer MLP into ocode.
func (m *Model) encodeExternal(tp *nn.Tape, ext *traj.ExternalFeatures) *nn.Node {
	wea := tp.Alloc(16)
	var dtraf *nn.Node
	if ext == nil {
		// External features unavailable for this record: zero one-hot,
		// zero traffic code. Keeps the model usable on partial data.
		dtraf = tp.Const(tp.Alloc(m.cfg.Dtraf))
	} else {
		if ext.Weather < 0 || ext.Weather >= 16 {
			panic(fmt.Sprintf("core: weather type %d out of range", ext.Weather))
		}
		wea.Data[ext.Weather] = 1
		grid := tp.Alloc(1, ext.GridRows, ext.GridCols)
		for i, v := range ext.SpeedGrid {
			grid.Data[i] = v / maxSpeedNorm
		}
		c1 := m.extConv1.Forward(tp, tp.Const(grid))
		c2 := m.extConv2.Forward(tp, c1)
		c3 := m.extConv3.Forward(tp, c2)
		pooled := tp.GlobalAvgPool(c3)
		dtraf = tp.ReLU(m.extProj.Forward(tp, pooled))
	}
	z8 := tp.Concat(tp.Const(wea), dtraf)
	return m.extMLP.Forward(tp, z8) // Formula 18
}

// encodeOD implements M_O (§4.6 / Formula 19): the embeddings of the
// matched origin/destination segments, the departure slot embedding, the
// external code and the float features (r[1], r[-1], tr) are concatenated
// into Z⁹ and transformed by MLP1 into code.
func (m *Model) encodeOD(tp *nn.Tape, od *traj.MatchedOD) *nn.Node {
	var parts []*nn.Node
	if m.cfg.NoSpatial {
		x1, y1 := m.edgeFracNorm(od.OriginEdge, od.RStart)
		x2, y2 := m.edgeFracNorm(od.DestEdge, 1-od.REnd)
		parts = append(parts, tp.ConstVec(x1, y1, x2, y2))
	} else {
		parts = append(parts,
			m.roadEmb.Lookup(tp, int(od.OriginEdge)),
			m.roadEmb.Lookup(tp, int(od.DestEdge)))
	}
	if m.cfg.TimeInit == TimeStamp {
		// Raw seconds, deliberately unscaled: T-stamp reproduces the
		// paper's finding that huge magnitudes swamp the other features.
		parts = append(parts, tp.ConstVec(od.DepartSec))
	} else {
		idx := m.weekSlotIndex(od.DepartSec)
		parts = append(parts, m.slotEmb.Lookup(tp, idx))
		parts = append(parts, tp.ConstVec(m.slotter.NormalizedRemainder(od.DepartSec)))
	}
	if !m.cfg.NoExternal {
		parts = append(parts, m.encodeExternal(tp, od.External))
	}
	parts = append(parts, tp.ConstVec(od.RStart, od.REnd))
	z9 := tp.Concat(parts...)
	if z9.Value.Size() != m.odDim {
		panic(fmt.Sprintf("core: Z9 size %d != expected %d", z9.Value.Size(), m.odDim))
	}
	return m.odMLP.Forward(tp, z9) // Formula 19
}

// edgeFracNorm returns the normalized coordinates of the point at fraction
// frac along edge e.
func (m *Model) edgeFracNorm(e roadnet.EdgeID, frac float64) (float64, float64) {
	return m.normPoint(m.g.PointAlongEdge(e, frac))
}
