package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"deepod/internal/dataset"
	"deepod/internal/embed"
	"deepod/internal/metrics"
	"deepod/internal/nn"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/tensor"
	"deepod/internal/traj"
)

// StepPoint is one validation measurement during training (the series
// behind Figure 10 and the convergence numbers of Table 3).
type StepPoint struct {
	Step   int
	ValMAE float64 // seconds
	// At is the measured wall-clock time from the start of Train to this
	// measurement (embedding pre-training included).
	At time.Duration
}

// TrainStats reports what happened during Train.
type TrainStats struct {
	// Curve is the validation-MAE trace sampled every EvalEvery steps.
	Curve []StepPoint
	// ConvergedStep is the first step whose validation MAE came within 2%
	// of the best MAE seen; ConvergedAt is the measured wall-clock time of
	// that step's StepPoint.
	ConvergedStep int
	ConvergedAt   time.Duration
	// Steps and Elapsed cover the whole run; SamplesSeen counts per-sample
	// forward/backward passes across all optimizer steps.
	Steps       int
	SamplesSeen int
	Elapsed     time.Duration
	// EmbedElapsed is the node2vec pre-training time (part of offline
	// training in Table 5).
	EmbedElapsed time.Duration
	// FinalValMAE is the last validation MAE in seconds.
	FinalValMAE float64
	// Workers is the number of data-parallel training workers used.
	Workers int
}

// TrainOptions tunes the training loop around the model.
type TrainOptions struct {
	// EvalEvery measures validation MAE every this many optimizer steps
	// (0 = only at epoch boundaries).
	EvalEvery int
	// MaxSteps stops early after this many optimizer steps (0 = no cap);
	// used by the hyper-parameter sweeps to bound cost.
	MaxSteps int
	// ValSample caps how many validation records each measurement uses
	// (0 = all).
	ValSample int
	// Quiet suppresses the progress callback.
	Progress func(epoch, step int, valMAE float64)
}

// Train runs Algorithm 1's offline training: embedding pre-training
// (lines 1–5) followed by epochs of mini-batch optimization of
// loss = w·auxiliaryloss + (1−w)·mainloss (lines 6–7).
//
// With Config.TrainWorkers > 1 each mini-batch is sharded across a
// persistent worker pool; per-worker gradient buffers are reduced in fixed
// worker-index order, so results are bit-reproducible for a given seed and
// worker count, and one worker reproduces the serial results exactly.
func (m *Model) Train(train, valid []traj.TripRecord, opts TrainOptions) (*TrainStats, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("core: no training records")
	}
	if len(valid) == 0 {
		return nil, fmt.Errorf("core: no validation records")
	}
	workers := m.cfg.TrainWorkers
	if workers < 1 {
		workers = 1
	}
	stats := &TrainStats{Workers: workers}
	start := time.Now()

	// Target normalization: mean training travel time.
	var mean float64
	for i := range train {
		mean += train[i].TravelSec
	}
	m.timeScale = mean / float64(len(train))

	// Lines 1–4: initialize embedding matrices with node2vec.
	embStart := time.Now()
	if err := m.pretrainEmbeddings(train); err != nil {
		return nil, err
	}
	stats.EmbedElapsed = time.Since(embStart)
	embedPhaseHist.Observe(stats.EmbedElapsed.Seconds())

	opt := nn.NewAdam(m.cfg.LRInitial)
	schedule := nn.StepDecaySchedule{Initial: m.cfg.LRInitial, Factor: m.cfg.LRFactor, Every: m.cfg.LREvery}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1000))

	useAux := !m.cfg.NoTrajectory && m.cfg.AuxWeight > 0
	w := m.cfg.AuxWeight

	evaluate := func() float64 {
		evalStart := time.Now()
		n := len(valid)
		if opts.ValSample > 0 && opts.ValSample < n {
			n = opts.ValSample
		}
		actual := make([]float64, n)
		pred := make([]float64, n)
		shardLoop(n, workers, func(i int) {
			actual[i] = valid[i].TravelSec
			pred[i] = m.Estimate(&valid[i].Matched)
		})
		evalPhaseHist.Observe(time.Since(evalStart).Seconds())
		return metrics.MAE(actual, pred)
	}
	record := func(epoch, step int) {
		mae := evaluate()
		stats.Curve = append(stats.Curve, StepPoint{Step: step, ValMAE: mae, At: time.Since(start)})
		if opts.Progress != nil {
			opts.Progress(epoch, step, mae)
		}
	}

	pool := newTrainPool(m.ps, workers)
	defer pool.close()
	var timingMu sync.Mutex

	step := 0
	done := false
	for epoch := 0; epoch < m.cfg.Epochs && !done; epoch++ {
		opt.LR = schedule.At(epoch)
		trainEpochGauge.Set(float64(epoch))
		err := dataset.Batches(len(train), m.cfg.BatchSize, rng, true, func(batch []int) error {
			if done {
				return nil
			}
			m.ps.ZeroGrad()
			var fwd, bwd time.Duration
			pool.run(func(wk int, tp *nn.Tape) {
				var wf, wb time.Duration
				for i := wk; i < len(batch); i += pool.n {
					rec := &train[batch[i]]
					phaseStart := time.Now()
					tp.Reset()
					loss := m.sampleLoss(tp, rec, useAux, w)
					backStart := time.Now()
					tp.Backward(loss)
					wf += backStart.Sub(phaseStart)
					wb += time.Since(backStart)
				}
				timingMu.Lock()
				fwd += wf
				bwd += wb
				timingMu.Unlock()
			})
			pool.reduce()
			// One observation per optimizer step: the batch's total forward
			// (tape build + loss) and backward (gradient) time, summed over
			// workers.
			forwardPhaseHist.Observe(fwd.Seconds())
			backwardPhaseHist.Observe(bwd.Seconds())
			trainSamplesTotal.Add(uint64(len(batch)))
			stats.SamplesSeen += len(batch)
			m.ps.ScaleGrads(1 / float64(len(batch)))
			if m.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(m.ps, m.cfg.ClipNorm)
			}
			opt.Step(m.ps)
			step++
			if opts.EvalEvery > 0 && step%opts.EvalEvery == 0 {
				record(epoch, step)
			}
			if opts.MaxSteps > 0 && step >= opts.MaxSteps {
				done = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		record(epoch, step)
	}

	stats.Steps = step
	stats.Elapsed = time.Since(start)
	if len(stats.Curve) > 0 {
		stats.FinalValMAE = stats.Curve[len(stats.Curve)-1].ValMAE
		best := math.Inf(1)
		for _, p := range stats.Curve {
			if p.ValMAE < best {
				best = p.ValMAE
			}
		}
		for _, p := range stats.Curve {
			if p.ValMAE <= best*1.02 {
				stats.ConvergedStep = p.Step
				stats.ConvergedAt = p.At
				break
			}
		}
	}
	return stats, nil
}

// sampleLoss builds one sample's loss graph on tp: the main |ŷ−y| term
// plus, when useAux is set, the auxiliary trajectory-binding terms of
// Algorithm 1 lines 10–12 weighted by w.
func (m *Model) sampleLoss(tp *nn.Tape, rec *traj.TripRecord, useAux bool, w float64) *nn.Node {
	code := m.encodeOD(tp, &rec.Matched)
	yhat := m.estMLP.Forward(tp, code) // Formula 20
	target := tp.ConstVec(rec.TravelSec / m.timeScale)
	main := tp.AbsError(yhat, target)
	if !useAux {
		return main
	}
	stcode := m.encodeTrajectory(tp, &rec.Trajectory)
	// Anchor M_T: the estimator must decode the travel time
	// from stcode too. The spatio-temporal path contains its
	// own timing, so this trains the trajectory encoder to
	// organize its representation by travel time; binding
	// code to stcode then distills that structure into the
	// OD encoder (see DESIGN.md §4 on this deviation).
	privileged := tp.AbsError(m.estMLP.Forward(tp, stcode), target)
	bindTarget := stcode
	if m.cfg.AuxOneWay {
		// Detach: the OD code chases the trajectory code,
		// never the reverse.
		bindTarget = tp.Const(stcode.Value)
	}
	aux := tp.Add(tp.L2Distance(code, bindTarget), privileged)
	// Algorithm 1, line 12: loss = w·auxiliaryloss + (1−w)·mainloss.
	return tp.Add(tp.Scale(aux, w), tp.Scale(main, 1-w))
}

// pretrainEmbeddings performs Algorithm 1 lines 1–4: node2vec over the
// trajectory-weighted road line graph initializes Ws, node2vec over the
// temporal graph initializes Wt. Variant configs swap or skip the
// pre-training per Table 7.
func (m *Model) pretrainEmbeddings(train []traj.TripRecord) error {
	rng := rand.New(rand.NewSource(m.cfg.Seed + 2000))

	if m.roadEmb != nil && m.cfg.RoadInit == RoadGraph {
		trajEdges := make([][]roadnet.EdgeID, len(train))
		for i := range train {
			trajEdges[i] = train[i].Trajectory.Edges()
		}
		lg, err := roadnet.BuildLineGraph(m.g, trajEdges, 0.25)
		if err != nil {
			return fmt.Errorf("core: building line graph: %w", err)
		}
		vecs, err := m.runEmbed(embed.FromLineGraph(lg), m.cfg.Ds, rng)
		if err != nil {
			return fmt.Errorf("core: road embedding: %w", err)
		}
		if err := m.roadEmb.Init(vecs); err != nil {
			return err
		}
	}

	if m.slotEmb != nil {
		var tg *embed.TemporalGraph
		var err error
		switch m.cfg.TimeInit {
		case TimeWeekGraph:
			tg, err = embed.BuildTemporalGraph(m.slotter, 1, 1)
		case TimeDayGraph:
			tg, err = embed.BuildDayTemporalGraph(m.slotter, 1)
		case TimeOneHot:
			return nil // keep random init
		}
		if err != nil {
			return fmt.Errorf("core: temporal graph: %w", err)
		}
		vecs, err := m.runEmbed(tg, m.cfg.Dt, rng)
		if err != nil {
			return fmt.Errorf("core: slot embedding: %w", err)
		}
		if err := m.slotEmb.Init(vecs); err != nil {
			return err
		}
	}
	return nil
}

func (m *Model) runEmbed(g embed.Graph, dim int, rng *rand.Rand) (*tensor.Tensor, error) {
	wcfg := embed.DefaultWalkConfig()
	wcfg.WalksPerNode = m.cfg.EmbedWalks
	scfg := embed.DefaultSkipGramConfig(dim)
	scfg.Epochs = m.cfg.EmbedEpochs
	switch embed.Method(m.cfg.EmbedMethod) {
	case embed.DeepWalk:
		wcfg.P, wcfg.Q = 1, 1
	case embed.LINE:
		wcfg.P, wcfg.Q = 1, 1
		wcfg.WalkLength = 2
		wcfg.WalksPerNode *= 4
		scfg.Window = 1
	}
	walks, err := embed.GenerateWalksParallel(g, wcfg, rng, m.cfg.TrainWorkers)
	if err != nil {
		return nil, err
	}
	return embed.TrainSkipGramParallel(g.NumNodes(), walks, scfg, rng, m.cfg.TrainWorkers)
}

// evalTapes recycles eval tapes (and their arenas) across EstimateCtx calls,
// so a single estimate does a handful of allocations instead of one per
// intermediate tensor. Tapes are model-independent; sharing the pool across
// models is safe because a tape carries no parameter state.
var evalTapes = sync.Pool{New: func() any { return nn.NewEvalTape() }}

// Estimate runs the online estimation of Algorithm 1: encode the OD input
// with M_O and decode the travel time with M_E. The result is in seconds.
// The two stages record into tte_span_seconds{span="encode"|"estimate"}.
// Safe for concurrent use.
func (m *Model) Estimate(od *traj.MatchedOD) float64 {
	return m.EstimateCtx(context.Background(), od)
}

// EstimateCtx is Estimate with trace context: when ctx carries a trace
// (a request through internal/serve and internal/infer), the encode and
// estimate stages appear as sibling child spans in the request's tree.
// The aggregate histograms are recorded either way.
func (m *Model) EstimateCtx(ctx context.Context, od *traj.MatchedOD) float64 {
	tp := evalTapes.Get().(*nn.Tape)
	tp.Reset()
	_, encSpan := obs.StartSpan(ctx, "encode")
	code := m.encodeOD(tp, od)
	encSpan.End()
	_, estSpan := obs.StartSpan(ctx, "estimate")
	y := m.estMLP.Forward(tp, code)
	estSpan.End()
	sec := y.Value.Data[0] * m.timeScale
	evalTapes.Put(tp)
	if sec < 0 {
		sec = 0
	}
	return sec
}

// EstimateBatch estimates many OD inputs (Table 5 times 1000 of these).
func (m *Model) EstimateBatch(ods []traj.MatchedOD) []float64 {
	return m.EstimateBatchCtx(context.Background(), ods)
}

// EstimateBatchCtx is EstimateBatch with trace context: the batch becomes
// an "estimate_batch" span (with a count attribute) whose children are the
// per-trip encode/estimate stages.
func (m *Model) EstimateBatchCtx(ctx context.Context, ods []traj.MatchedOD) []float64 {
	bctx, span := obs.StartSpan(ctx, "estimate_batch")
	span.SetInt("count", len(ods))
	defer span.End()
	out := make([]float64, len(ods))
	for i := range ods {
		out[i] = m.EstimateCtx(bctx, &ods[i])
	}
	return out
}
