package core

import (
	"context"
	"fmt"
	"math"

	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/tensor"
	"deepod/internal/traj"
)

// Optional float32 serving head. Training is float64 everywhere; EnableF32
// quantizes the estimator head — MLP1 (odMLP) and MLP2 (estMLP), the two
// dense stacks every request passes through — to float32 and serves batches
// through the f32 kernels in internal/tensor. Feature assembly and the
// external conv encoder stay float64, so the quantized surface is exactly
// the pair of MLPs the calibration gate exercises.
//
// Quantization is lossy by construction, so the head is admitted only if
// the relative MAE delta against the float64 path on a calibration set
// stays under the caller's threshold; otherwise EnableF32 returns an error
// and the model keeps serving float64.

// DefaultF32Threshold is the default admission gate for the float32 head:
// the relative MAE delta vs the float64 path must stay under 0.1%.
const DefaultF32Threshold = 1e-3

// maxCalibration caps how many calibration ODs a checkpoint carries.
const maxCalibration = 256

// f32Head holds the quantized estimator-head weights (odMLP then estMLP,
// each W1/b1/W2/b2) plus the dimensions needed to drive the flat kernels.
type f32Head struct {
	odW1, odB1, odW2, odB2     []float32
	estW1, estB1, estW2, estB2 []float32
	in, hid, mid, ehid         int // odDim, D7m, D8m, D9m

	maeDelta float64 // measured at EnableF32 time, for /version reporting
}

func (m *Model) buildF32Head() *f32Head {
	return &f32Head{
		odW1:  tensor.F32FromF64(m.odMLP.L1.W.Value.Data),
		odB1:  tensor.F32FromF64(m.odMLP.L1.B.Value.Data),
		odW2:  tensor.F32FromF64(m.odMLP.L2.W.Value.Data),
		odB2:  tensor.F32FromF64(m.odMLP.L2.B.Value.Data),
		estW1: tensor.F32FromF64(m.estMLP.L1.W.Value.Data),
		estB1: tensor.F32FromF64(m.estMLP.L1.B.Value.Data),
		estW2: tensor.F32FromF64(m.estMLP.L2.W.Value.Data),
		estB2: tensor.F32FromF64(m.estMLP.L2.B.Value.Data),
		in:    m.odDim,
		hid:   m.odMLP.L1.Out,
		mid:   m.odMLP.L2.Out,
		ehid:  m.estMLP.L1.Out,
	}
}

// forward runs the quantized head over a float64 [B×in] feature matrix,
// returning one travel time per row (already scaled and clamped).
func (h *f32Head) forward(z9 *tensor.Tensor, timeScale float64) []float64 {
	b := z9.Shape[0]
	x := tensor.F32FromF64(z9.Data)
	h1 := make([]float32, b*h.hid)
	tensor.AffineBatchF32Into(h1, x, h.odW1, h.odB1, b, h.in, h.hid)
	tensor.ReLUInPlaceF32(h1)
	code := make([]float32, b*h.mid)
	tensor.AffineBatchF32Into(code, h1, h.odW2, h.odB2, b, h.hid, h.mid)
	e1 := make([]float32, b*h.ehid)
	tensor.AffineBatchF32Into(e1, code, h.estW1, h.estB1, b, h.mid, h.ehid)
	tensor.ReLUInPlaceF32(e1)
	y := make([]float32, b)
	tensor.AffineBatchF32Into(y, e1, h.estW2, h.estB2, b, h.ehid, 1)
	out := make([]float64, b)
	for i, v := range y {
		sec := float64(v) * timeScale
		if sec < 0 {
			sec = 0
		}
		out[i] = sec
	}
	return out
}

// SetCalibration records up to maxCalibration matched ODs to be persisted
// with the checkpoint as the float32 admission gate's test set. External
// features are dropped — the quantized surface sits after the external
// encoder, and the checkpoint should not carry speed grids.
func (m *Model) SetCalibration(ods []traj.MatchedOD) {
	n := len(ods)
	if n > maxCalibration {
		n = maxCalibration
	}
	m.calib = make([]traj.MatchedOD, n)
	copy(m.calib, ods[:n])
	for i := range m.calib {
		m.calib[i].External = nil
	}
}

// Calibration returns the stored calibration set (nil for checkpoints that
// predate it).
func (m *Model) Calibration() []traj.MatchedOD { return m.calib }

// synthCalibration derives a deterministic calibration set from the road
// network for checkpoints that carry none: edge pairs spread over the whole
// edge-ID range, departures spread over a week. It exercises every input
// dimension of the quantized head (both embeddings vary, the remainder and
// position ratios vary), which is what the gate needs.
func (m *Model) synthCalibration(n int) []traj.MatchedOD {
	ne := m.g.NumEdges()
	ods := make([]traj.MatchedOD, n)
	for i := range ods {
		ods[i] = traj.MatchedOD{
			OriginEdge: roadnet.EdgeID((i*7919 + 1) % ne),
			DestEdge:   roadnet.EdgeID((i*104729 + 13) % ne),
			RStart:     float64(i%10) / 10,
			REnd:       1 - float64(i%7)/10,
			DepartSec:  float64(i) * 7777.7,
		}
	}
	return ods
}

// EstimateBatchF32Ctx serves a batch through the quantized head when one is
// installed, falling back to the fused float64 path otherwise. Unlike the
// float64 fused path there is no per-sample fallback at B==1: under f32 the
// same request must get the same answer regardless of how it was batched,
// or cache hits and flight-recorder replays would disagree with live serves.
func (m *Model) EstimateBatchF32Ctx(ctx context.Context, ods []traj.MatchedOD) []float64 {
	if m.f32 == nil {
		return m.EstimateBatchFusedCtx(ctx, ods)
	}
	if len(ods) == 0 {
		return m.EstimateBatchCtx(ctx, ods)
	}
	bctx, span := obs.StartSpan(ctx, "estimate_batch")
	span.SetInt("count", len(ods))
	span.SetInt("fused", 1)
	span.SetInt("f32", 1)
	defer span.End()

	sc := fusedScratches.Get().(*fusedScratch)
	defer fusedScratches.Put(sc)
	sc.arena.Reset()

	_, encSpan := obs.StartSpan(bctx, "encode")
	z9 := m.odFeatureMatrix(sc, ods)
	encSpan.End()
	_, estSpan := obs.StartSpan(bctx, "estimate")
	out := m.f32.forward(z9, m.timeScale)
	estSpan.End()
	return out
}

// EstimateF32Ctx is the per-request f32 entry (the Snapshot.Estimate hook
// when the quantized head is installed): a batch of one through the head.
func (m *Model) EstimateF32Ctx(ctx context.Context, od *traj.MatchedOD) float64 {
	if m.f32 == nil {
		return m.EstimateCtx(ctx, od)
	}
	return m.EstimateBatchF32Ctx(ctx, []traj.MatchedOD{*od})[0]
}

// EnableF32 quantizes the estimator head to float32 and admits it only if
// the relative MAE delta vs the float64 path on the calibration set stays
// under threshold (<= 0 means DefaultF32Threshold). On failure the model is
// left unchanged (float64 serving) and the error says by how much the gate
// was missed. Call before serving — not safe concurrently with Estimate.
func (m *Model) EnableF32(threshold float64) error {
	if threshold <= 0 {
		threshold = DefaultF32Threshold
	}
	calib := m.calib
	if len(calib) == 0 {
		calib = m.synthCalibration(64)
	}
	head := m.buildF32Head()
	ref := m.EstimateBatchFused(calib)
	sc := fusedScratches.Get().(*fusedScratch)
	sc.arena.Reset()
	got := head.forward(m.odFeatureMatrix(sc, calib), m.timeScale)
	fusedScratches.Put(sc)
	var sumAbs, sumRef float64
	for i := range ref {
		sumAbs += math.Abs(got[i] - ref[i])
		sumRef += math.Abs(ref[i])
	}
	if sumRef == 0 {
		// Degenerate reference (all-zero estimates): gate on the absolute
		// MAE in seconds instead of a 0/0 ratio.
		sumRef = float64(len(ref))
	}
	head.maeDelta = sumAbs / sumRef
	if head.maeDelta > threshold {
		return fmt.Errorf("core: float32 head rejected: relative MAE delta %.3g exceeds threshold %.3g over %d calibration points",
			head.maeDelta, threshold, len(calib))
	}
	m.f32 = head
	return nil
}

// F32Enabled reports whether the quantized serving head passed its gate and
// is installed.
func (m *Model) F32Enabled() bool { return m.f32 != nil }

// F32MAEDelta returns the relative MAE delta measured when the head was
// admitted (0 when disabled).
func (m *Model) F32MAEDelta() float64 {
	if m.f32 == nil {
		return 0
	}
	return m.f32.maeDelta
}
