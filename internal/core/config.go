// Package core implements DeepOD, the paper's travel-time estimation model:
// an OD encoder M_O, a trajectory encoder M_T, and an estimator M_E, trained
// jointly so the hidden OD representation (code) is pulled toward the
// spatio-temporal representation of the trip's historical trajectory
// (stcode) by an auxiliary Euclidean loss (Section 3, Algorithm 1). At
// prediction time only M_O and M_E run.
package core

import (
	"fmt"
	"time"
)

// TimeInit selects how the time-slot embedding is initialized / represented
// (the Table 7 variants).
type TimeInit string

// Time-slot embedding variants of Table 7.
const (
	// TimeWeekGraph is DeepOD's default: node2vec over the directed weekly
	// temporal graph of Figure 5b.
	TimeWeekGraph TimeInit = "week-graph"
	// TimeOneHot (T-one) keeps the embedding table but skips graph
	// pre-training (random init).
	TimeOneHot TimeInit = "one-hot"
	// TimeDayGraph (T-day) pre-trains over a single-day temporal graph:
	// daily periodicity only.
	TimeDayGraph TimeInit = "day-graph"
	// TimeStamp (T-stamp) drops slots entirely and feeds raw timestamps —
	// the paper shows this is disastrous because the large magnitudes
	// dominate every other feature.
	TimeStamp TimeInit = "stamp"
)

// RoadInit selects how the road-segment embedding is initialized.
type RoadInit string

// Road-segment embedding variants of Table 7.
const (
	// RoadGraph is the default: node2vec over the trajectory-weighted line
	// graph of Figure 4.
	RoadGraph RoadInit = "line-graph"
	// RoadOneHot (R-one) skips pre-training (random init).
	RoadOneHot RoadInit = "one-hot"
)

// Config holds every hyper-parameter of DeepOD. Field names follow the
// paper's notation (Table 1 and §6.2).
type Config struct {
	// Ds and Dt are the road-segment and time-slot embedding sizes.
	Ds, Dt int
	// D1m..D9m are the layer sizes of the MLPs (Formulas 11 and 17–20);
	// D8m is forced equal to D4m so code and stcode share a latent space.
	D1m, D2m, D3m, D4m, D5m, D6m, D7m, D9m int
	// Dh is the LSTM state size; Dtraf the traffic-CNN output size.
	Dh, Dtraf int

	// SlotDelta is Δt, the time-slot size (paper default: 5 minutes).
	SlotDelta time.Duration

	// AuxWeight is w, the auxiliary-loss weight (Figure 9; 0 disables the
	// trajectory binding entirely).
	AuxWeight float64
	// AuxOneWay makes the auxiliary loss pull only the OD code toward the
	// trajectory code (the trajectory encoder receives no gradient from the
	// auxiliary loss). The paper trains both encoders jointly, which works
	// at its data scale (millions of trips); at laptop scale the symmetric
	// pull lets the trajectory encoder collapse onto the OD code and the
	// binding degenerates. One-way binding keeps the trajectory
	// representation anchored to the actual route and timing, preserving
	// the paper's mechanism (OD code learns to predict the affiliated
	// trajectory's representation). See DESIGN.md §4.
	AuxOneWay bool

	// Ablation switches (Table 4): each removes one encoding.
	NoTrajectory bool // N-st: drop M_T and the auxiliary loss
	NoSpatial    bool // N-sp: drop road-segment embeddings (raw coords instead)
	NoTemporal   bool // N-tp: drop the time-interval encoding in M_T
	NoExternal   bool // N-other: drop the external-features encoder

	// Embedding initialization variants (Table 7).
	TimeInit TimeInit
	RoadInit RoadInit
	// EmbedMethod selects the unsupervised graph-embedding algorithm used
	// to pre-train both matrices ("node2vec", "deepwalk" or "line"). The
	// paper tried all three and kept node2vec (§5).
	EmbedMethod string

	// Training hyper-parameters.
	BatchSize int
	Epochs    int
	LRInitial float64
	LRFactor  float64 // multiplied in every LREvery epochs
	LREvery   int
	ClipNorm  float64 // 0 disables gradient clipping

	// EmbedWalks / EmbedEpochs scale the node2vec pre-training effort.
	EmbedWalks, EmbedEpochs int

	// TrainWorkers shards each mini-batch (and validation sweeps, and the
	// node2vec pre-training) across this many workers. Each worker owns a
	// reusable tape and a private gradient buffer; buffers are reduced in
	// fixed worker-index order, so a given seed + worker count is
	// bit-reproducible. 0 or 1 means serial, which reproduces the
	// historical single-goroutine results exactly. See DESIGN.md
	// "Training performance".
	TrainWorkers int

	// Seed drives parameter init and batch shuffling.
	Seed int64
}

// PaperConfig returns the hyper-parameters the paper selected in §6.2
// (Figure 8): d_s=64, d_t=64, d¹m=128, d²m=64, d_h=128, d³m=128,
// d⁴m=d⁸m=64, d⁵m=128, d⁶m=64, d⁷m=128, d⁹m=128, d_traf=128, Δt=5 min,
// batch 1024, initial LR 0.01 decayed ×0.2 every 2 epochs.
func PaperConfig() Config {
	return Config{
		Ds: 64, Dt: 64,
		D1m: 128, D2m: 64, D3m: 128, D4m: 64, D5m: 128, D6m: 64, D7m: 128, D9m: 128,
		Dh: 128, Dtraf: 128,
		SlotDelta:   5 * time.Minute,
		AuxWeight:   0.7,
		TimeInit:    TimeWeekGraph,
		RoadInit:    RoadGraph,
		EmbedMethod: "node2vec",
		BatchSize:   1024, Epochs: 10,
		LRInitial: 0.01, LRFactor: 0.2, LREvery: 2,
		ClipNorm:    5,
		EmbedWalks:  8,
		EmbedEpochs: 3,
		Seed:        1,
	}
}

// SmallConfig returns a scaled-down configuration that trains in seconds on
// one CPU core while preserving the architecture; the experiment suite uses
// it by default (DESIGN.md §4.4).
func SmallConfig() Config {
	c := PaperConfig()
	c.Ds, c.Dt = 16, 16
	c.D1m, c.D2m, c.D3m, c.D4m = 32, 16, 32, 16
	c.D5m, c.D6m, c.D7m, c.D9m = 32, 16, 32, 32
	c.Dh, c.Dtraf = 32, 16
	c.SlotDelta = 15 * time.Minute
	// The auxiliary weight is tuned by validation per dataset (§6.3); at
	// laptop scale the Figure 9 sweep lands on small w (the L2 binding
	// needs the paper's data volume to pay for itself — see DESIGN.md §4).
	c.AuxWeight = 0.1
	c.BatchSize = 32
	c.Epochs = 6
	c.LREvery = 3
	c.EmbedWalks, c.EmbedEpochs = 8, 4
	return c
}

// D8m returns the (tied) output size of MLP1, equal to D4m (§4.6:
// "the dimensions of code and stcode should be equal").
func (c Config) D8m() int { return c.D4m }

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	pos := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("core: %s must be positive, got %d", name, v)
		}
		return nil
	}
	for _, check := range []struct {
		name string
		v    int
	}{
		{"Ds", c.Ds}, {"Dt", c.Dt}, {"D1m", c.D1m}, {"D2m", c.D2m},
		{"D3m", c.D3m}, {"D4m", c.D4m}, {"D5m", c.D5m}, {"D6m", c.D6m},
		{"D7m", c.D7m}, {"D9m", c.D9m}, {"Dh", c.Dh}, {"Dtraf", c.Dtraf},
		{"BatchSize", c.BatchSize}, {"Epochs", c.Epochs},
	} {
		if err := pos(check.name, check.v); err != nil {
			return err
		}
	}
	if c.SlotDelta <= 0 {
		return fmt.Errorf("core: SlotDelta must be positive, got %v", c.SlotDelta)
	}
	if c.AuxWeight < 0 || c.AuxWeight > 1 {
		return fmt.Errorf("core: AuxWeight must be in [0,1], got %v", c.AuxWeight)
	}
	if c.LRInitial <= 0 {
		return fmt.Errorf("core: LRInitial must be positive, got %v", c.LRInitial)
	}
	if c.TrainWorkers < 0 {
		return fmt.Errorf("core: TrainWorkers must be non-negative, got %d", c.TrainWorkers)
	}
	switch c.TimeInit {
	case TimeWeekGraph, TimeOneHot, TimeDayGraph, TimeStamp:
	default:
		return fmt.Errorf("core: unknown TimeInit %q", c.TimeInit)
	}
	switch c.RoadInit {
	case RoadGraph, RoadOneHot:
	default:
		return fmt.Errorf("core: unknown RoadInit %q", c.RoadInit)
	}
	switch c.EmbedMethod {
	case "node2vec", "deepwalk", "line":
	default:
		return fmt.Errorf("core: unknown EmbedMethod %q (want node2vec, deepwalk or line)", c.EmbedMethod)
	}
	return nil
}
