package core

import (
	"bytes"
	"testing"

	"deepod/internal/dataset"
	"deepod/internal/metrics"
	"deepod/internal/roadnet"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g, recs := testWorld(t, 120)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 3}); err != nil {
		t.Fatal(err)
	}
	ref := metrics.RefDistOf([]float64{5, 12, 40, 200}, nil)
	m.SetRefDist(ref)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range split.Test {
		od := &split.Test[i].Matched
		if a, b := m.Estimate(od), loaded.Estimate(od); a != b {
			t.Fatalf("loaded model diverges on record %d: %v vs %v", i, a, b)
		}
	}
	if loaded.TimeScale() != m.TimeScale() {
		t.Fatal("time scale not restored")
	}
	got := loaded.RefDist()
	if got == nil || got.Total() != ref.Total() || len(got.Uppers) != len(ref.Uppers) {
		t.Fatalf("reference error distribution not restored: %+v", got)
	}
}

// Checkpoints written before the RefDist field existed must still load —
// gob ignores absent fields — and report a nil reference.
func TestLoadWithoutRefDist(t *testing.T) {
	g, recs := testWorld(t, 120)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil { // refDist never set → nil on disk
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RefDist() != nil {
		t.Fatal("nil reference distribution round-tripped as non-nil")
	}
	// SetRefDist guards the checkpoint against invalid distributions.
	loaded.SetRefDist(&metrics.RefDist{Uppers: []float64{2, 1}, Counts: make([]uint64, 3)})
	if loaded.RefDist() != nil {
		t.Fatal("invalid reference distribution accepted")
	}
}

func TestLoadRejectsWrongNetwork(t *testing.T) {
	g, recs := testWorld(t, 120)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	otherCfg := roadnet.SmallCity("other", 99)
	otherCfg.Rows, otherCfg.Cols = 4, 4
	other, err := roadnet.GenerateCity(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, other); err == nil {
		t.Fatal("loading onto a mismatched network accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	g, _ := testWorld(t, 5)
	if _, err := Load(bytes.NewReader([]byte("not a model")), g); err == nil {
		t.Fatal("garbage accepted")
	}
}
