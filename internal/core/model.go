package core

import (
	"fmt"
	"math/rand"

	"deepod/internal/citysim"
	"deepod/internal/geo"
	"deepod/internal/metrics"
	"deepod/internal/nn"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// Model is the DeepOD network of Figure 3: the three modules M_O (OD
// encoder), M_T (trajectory encoder) and M_E (estimator), sharing the
// road-segment and time-slot embedding matrices Ws and Wt.
type Model struct {
	cfg Config
	g   *roadnet.Graph
	ps  *nn.ParamSet
	rng *rand.Rand

	slotter *timeslot.Slotter
	// slotVocab is SlotsPerWeek normally, SlotsPerDay for TimeDayGraph.
	slotVocab int

	// Embedding matrices Ws (Formula 1) and Wt (§4.2).
	roadEmb *nn.Embedding
	slotEmb *nn.Embedding

	// Time Interval Encoder (Figure 6): the ResNet block's three convs
	// (Formulas 5–7) and the MLP of Formula 11.
	tieConv1, tieConv2, tieConv3 *nn.Conv2DLayer
	tieMLP                       *nn.MLP2
	// tieStampMLP replaces the encoder under the T-stamp variant.
	tieStampMLP *nn.MLP2

	// Trajectory Encoder (Figure 7): the LSTM (Formulas 12–16) and the MLP
	// of Formula 17.
	lstm    *nn.LSTM
	trajMLP *nn.MLP2

	// External Features Encoder (§4.5): traffic CNN + MLP of Formula 18.
	extConv1, extConv2, extConv3 *nn.Conv2DLayer
	extProj                      *nn.Linear
	extMLP                       *nn.MLP2

	// MLP1 (Formula 19) and MLP2 (Formula 20).
	odMLP  *nn.MLP2
	estMLP *nn.MLP2

	// Normalization constants.
	bounds    geo.Rect
	timeScale float64 // mean training travel time, seconds
	horizon   float64 // dataset horizon, for T-stamp scaling sanity

	// refDist is the test-split absolute-error distribution recorded at
	// training time — the drift reference for internal/quality. Nil for
	// models trained before it existed or never evaluated.
	refDist *metrics.RefDist

	// calib is the calibration OD set persisted with the checkpoint — the
	// test set of the float32 admission gate (see EnableF32). Nil for
	// checkpoints that predate it; the gate then synthesizes probes.
	calib []traj.MatchedOD

	// f32 is the quantized serving head, installed by EnableF32 only after
	// it passes the accuracy gate. Nil means float64 serving.
	f32 *f32Head

	// stepDim is the per-step input size of the LSTM.
	stepDim int
	// odDim is the input size of MLP1 (Z9).
	odDim int
}

// New constructs an untrained DeepOD model over a road network.
func New(cfg Config, g *roadnet.Graph) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NoSpatial && cfg.NoTemporal && !cfg.NoTrajectory {
		return nil, fmt.Errorf("core: N-sp and N-tp together leave the trajectory encoder without inputs; also set NoTrajectory")
	}
	slotter, err := timeslot.New(cfg.SlotDelta)
	if err != nil {
		return nil, err
	}
	m := &Model{
		cfg:       cfg,
		g:         g,
		ps:        nn.NewParamSet(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		slotter:   slotter,
		bounds:    g.Bounds(),
		timeScale: 600, // replaced by the training-set mean in Train
	}
	m.slotVocab = slotter.SlotsPerWeek
	if cfg.TimeInit == TimeDayGraph {
		m.slotVocab = slotter.SlotsPerDay
	}

	rng := m.rng
	ps := m.ps

	if !cfg.NoSpatial {
		m.roadEmb = nn.NewEmbedding(ps, rng, "Ws", g.NumEdges(), cfg.Ds)
	}
	if cfg.TimeInit != TimeStamp {
		m.slotEmb = nn.NewEmbedding(ps, rng, "Wt", m.slotVocab, cfg.Dt)
	}

	// Time Interval Encoder.
	if !cfg.NoTemporal && !cfg.NoTrajectory {
		if cfg.TimeInit == TimeStamp {
			m.tieStampMLP = nn.NewMLP2(ps, rng, "tie.stamp", 2, cfg.D1m, cfg.D2m)
		} else {
			m.tieConv1 = nn.NewConv2DLayer(ps, rng, "tie.conv1", 1, 4, 3, 1, 1, 0, 1, 1, true, true)
			m.tieConv2 = nn.NewConv2DLayer(ps, rng, "tie.conv2", 4, 8, 3, 1, 1, 0, 1, 1, true, true)
			m.tieConv3 = nn.NewConv2DLayer(ps, rng, "tie.conv3", 8, 1, 1, 1, 0, 0, 1, 1, false, false)
			m.tieMLP = nn.NewMLP2(ps, rng, "tie.mlp", cfg.Dt+2, cfg.D1m, cfg.D2m)
		}
	}

	// Trajectory Encoder.
	if !cfg.NoTrajectory {
		m.stepDim = 0
		if !cfg.NoTemporal {
			m.stepDim += cfg.D2m
		}
		if cfg.NoSpatial {
			m.stepDim += 2 // normalized segment-midpoint coordinates
		} else {
			m.stepDim += cfg.Ds
		}
		m.lstm = nn.NewLSTM(ps, rng, "traj.lstm", m.stepDim, cfg.Dh)
		m.trajMLP = nn.NewMLP2(ps, rng, "traj.mlp", cfg.Dh+2, cfg.D3m, cfg.D4m)
	}

	// External Features Encoder.
	if !cfg.NoExternal {
		m.extConv1 = nn.NewConv2DLayer(ps, rng, "ext.conv1", 1, 4, 3, 3, 1, 1, 2, 2, true, true)
		m.extConv2 = nn.NewConv2DLayer(ps, rng, "ext.conv2", 4, 8, 3, 3, 1, 1, 2, 2, true, true)
		m.extConv3 = nn.NewConv2DLayer(ps, rng, "ext.conv3", 8, 8, 3, 3, 1, 1, 2, 2, true, true)
		m.extProj = nn.NewLinear(ps, rng, "ext.proj", 8, cfg.Dtraf)
		m.extMLP = nn.NewMLP2(ps, rng, "ext.mlp", citysim.WeatherTypes+cfg.Dtraf, cfg.D5m, cfg.D6m)
	}

	// MLP1 input Z9 (Formula 19): spatial + temporal + ocode + floats.
	m.odDim = 0
	if cfg.NoSpatial {
		m.odDim += 4 // origin/dest normalized coordinates
	} else {
		m.odDim += 2 * cfg.Ds
	}
	if cfg.TimeInit == TimeStamp {
		m.odDim++ // raw departure timestamp
	} else {
		m.odDim += cfg.Dt + 1 // slot embedding + remainder
	}
	if !cfg.NoExternal {
		m.odDim += cfg.D6m
	}
	m.odDim += 2 // r[1], r[-1]
	m.odMLP = nn.NewMLP2(ps, rng, "mlp1", m.odDim, cfg.D7m, cfg.D8m())
	m.estMLP = nn.NewMLP2(ps, rng, "mlp2", cfg.D8m(), cfg.D9m, 1)

	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Graph returns the road network the model was built over.
func (m *Model) Graph() *roadnet.Graph { return m.g }

// Params exposes the parameter set (model size reporting, serialization).
func (m *Model) Params() *nn.ParamSet { return m.ps }

// Slotter returns the time discretizer.
func (m *Model) Slotter() *timeslot.Slotter { return m.slotter }

// TimeScale returns the target normalization constant in seconds.
func (m *Model) TimeScale() float64 { return m.timeScale }

// SetTimeScale overrides the target normalization (set from training data
// by Train; exposed for model loading).
func (m *Model) SetTimeScale(s float64) {
	if s <= 0 {
		panic(fmt.Sprintf("core: time scale must be positive, got %v", s))
	}
	m.timeScale = s
}

// RefDist returns the training-time reference error distribution, or nil
// when the checkpoint predates it or training skipped evaluation.
func (m *Model) RefDist() *metrics.RefDist { return m.refDist }

// SetRefDist records the reference error distribution to be persisted by
// Save. An invalid distribution is rejected (kept nil) rather than poisoning
// the checkpoint.
func (m *Model) SetRefDist(d *metrics.RefDist) {
	if d != nil && d.Validate() != nil {
		d = nil
	}
	m.refDist = d
}

// SlotEmbeddingTable returns the raw Wt values (used by the Figure 14b
// t-SNE heatmap); nil under T-stamp.
func (m *Model) SlotEmbeddingTable() *nn.Embedding { return m.slotEmb }

// RoadEmbeddingTable returns the raw Ws values (road-segment embeddings);
// nil under the N-sp ablation.
func (m *Model) RoadEmbeddingTable() *nn.Embedding { return m.roadEmb }

// weekSlotIndex maps an absolute timestamp to the embedding row index.
func (m *Model) weekSlotIndex(sec float64) int {
	slot := m.slotter.Slot(sec)
	ws := m.slotter.WeekSlot(slot)
	if m.cfg.TimeInit == TimeDayGraph {
		return m.slotter.SlotOfDay(ws)
	}
	return ws
}

// normPoint scales a position to [0,1]² using the network bounds.
func (m *Model) normPoint(p geo.Point) (x, y float64) {
	w, h := m.bounds.Width(), m.bounds.Height()
	if w <= 0 || h <= 0 {
		return 0, 0
	}
	return (p.X - m.bounds.Min.X) / w, (p.Y - m.bounds.Min.Y) / h
}

// edgeMidNorm returns the normalized midpoint of an edge (the N-sp
// replacement for segment embeddings).
func (m *Model) edgeMidNorm(e roadnet.EdgeID) (x, y float64) {
	a, b := m.g.EdgePoints(e)
	return m.normPoint(geo.Lerp(a, b, 0.5))
}

// NumWeights returns the number of scalar parameters (Table 5's model
// size is NumWeights × 8 bytes).
func (m *Model) NumWeights() int { return m.ps.NumWeights() }

// ExternalAvailable reports whether the model consumes external features.
func (m *Model) ExternalAvailable() bool { return !m.cfg.NoExternal }
