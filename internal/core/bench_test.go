package core

import (
	"fmt"
	"testing"

	"deepod/internal/traj"
)

// Inference benchmarks: the fused [B×d] batch path against B per-sample
// tape walks, at the admission batch sizes the serving sweep uses. Run with
// -benchmem: the fused path's advantage is as much the collapsed per-node
// tape bookkeeping as the kernel shape.

func benchModel(b *testing.B) (*Model, []traj.MatchedOD) {
	b.Helper()
	g, recs := testWorld(b, 60)
	m, err := New(tinyConfig(), g)
	if err != nil {
		b.Fatal(err)
	}
	ods := make([]traj.MatchedOD, len(recs))
	for i := range recs {
		ods[i] = recs[i].Matched
	}
	return m, ods
}

func BenchmarkEstimateBatchFused(b *testing.B) {
	m, ods := benchModel(b)
	for _, bs := range []int{4, 16, 64} {
		if bs > len(ods) {
			continue
		}
		batch := ods[:bs]
		b.Run(fmt.Sprintf("B%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.EstimateBatchFused(batch)
			}
		})
	}
}

func BenchmarkEstimateBatchPerSample(b *testing.B) {
	m, ods := benchModel(b)
	for _, bs := range []int{4, 16, 64} {
		if bs > len(ods) {
			continue
		}
		batch := ods[:bs]
		b.Run(fmt.Sprintf("B%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.EstimateBatch(batch)
			}
		})
	}
}
