package core

import (
	"context"
	"testing"

	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// TestEstimateSpansJoinTrace checks the online-estimation stages surface
// as spans in a request trace: estimate_batch under the caller's span,
// with each trip's encode and estimate stages under the batch.
func TestEstimateSpansJoinTrace(t *testing.T) {
	gcfg := roadnet.SmallCity("trace", 3)
	gcfg.Rows, gcfg.Cols = 4, 4
	g, err := roadnet.GenerateCity(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	ods := []traj.MatchedOD{
		{OriginEdge: 0, DestEdge: roadnet.EdgeID(g.NumEdges() - 1), RStart: 0.2, REnd: 0.3, DepartSec: 600},
		{OriginEdge: 1, DestEdge: 2, RStart: 0.5, REnd: 0.5, DepartSec: 1200},
	}

	ctx, tr := obs.StartTrace(context.Background(), "core-estimate", "/test")
	rctx, root := obs.StartSpan(ctx, "root")
	secs := m.EstimateBatchCtx(rctx, ods)
	d := root.End()
	if len(secs) != 2 {
		t.Fatalf("EstimateBatchCtx returned %d estimates", len(secs))
	}
	for i, sec := range secs {
		if sec < 0 {
			t.Fatalf("estimate %d = %v, want non-negative", i, sec)
		}
	}

	ts := obs.NewTraceStore(obs.NewRegistry(), obs.TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	if kept, _ := ts.Offer(tr, d); !kept {
		t.Fatal("trace not retained at SampleRate=1")
	}
	rec := ts.Traces(obs.TraceFilter{})[0]

	// Expected tree: root → estimate_batch → (encode, estimate) × 2.
	if len(rec.Spans) != 6 {
		t.Fatalf("got %d spans, want 6: %+v", len(rec.Spans), rec.Spans)
	}
	if rec.Spans[0].Name != "root" || rec.Spans[0].Parent != -1 {
		t.Fatalf("span 0 = %+v, want root", rec.Spans[0])
	}
	if rec.Spans[1].Name != "estimate_batch" || rec.Spans[1].Parent != 0 {
		t.Fatalf("span 1 = %+v, want estimate_batch under root", rec.Spans[1])
	}
	for i, want := range []string{"encode", "estimate", "encode", "estimate"} {
		sp := rec.Spans[2+i]
		if sp.Name != want || sp.Parent != 1 {
			t.Fatalf("span %d = %+v, want %s under estimate_batch", 2+i, sp, want)
		}
	}
	var count any
	for _, a := range rec.Spans[1].Attrs {
		if a.Key == "count" {
			count = a.Value
		}
	}
	if count != 2 {
		t.Fatalf("estimate_batch count attr = %v, want 2", count)
	}
}
