package core

import (
	"math"
	"testing"
	"time"

	"deepod/internal/citysim"
	"deepod/internal/dataset"
	"deepod/internal/metrics"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// testWorld builds a small deterministic city + orders for reuse by tests.
func testWorld(t testing.TB, numOrders int) (*roadnet.Graph, []traj.TripRecord) {
	t.Helper()
	cfg := roadnet.SmallCity("test", 5)
	cfg.Rows, cfg.Cols = 6, 6
	g, err := roadnet.GenerateCity(cfg)
	if err != nil {
		t.Fatalf("GenerateCity: %v", err)
	}
	tf, err := citysim.NewTraffic(g, 14*24*3600, 5)
	if err != nil {
		t.Fatalf("NewTraffic: %v", err)
	}
	grid, err := citysim.NewSpeedGridder(tf, 300, 900)
	if err != nil {
		t.Fatalf("NewSpeedGridder: %v", err)
	}
	ocfg := citysim.DefaultOrderConfig(numOrders, 5)
	gen, err := citysim.NewGenerator(tf, grid, ocfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	recs, err := gen.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g, recs
}

func tinyConfig() Config {
	c := SmallConfig()
	c.Ds, c.Dt = 8, 8
	c.D1m, c.D2m, c.D3m, c.D4m = 16, 8, 16, 8
	c.D5m, c.D6m, c.D7m, c.D9m = 16, 8, 16, 16
	c.Dh, c.Dtraf = 16, 8
	c.SlotDelta = 30 * time.Minute
	c.BatchSize = 32
	c.Epochs = 4
	c.EmbedWalks, c.EmbedEpochs = 4, 2
	return c
}

func TestConfigValidation(t *testing.T) {
	good := SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("SmallConfig invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	bad := good
	bad.Ds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero Ds accepted")
	}
	bad = good
	bad.AuxWeight = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("AuxWeight > 1 accepted")
	}
	bad = good
	bad.TimeInit = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("bad TimeInit accepted")
	}
	if good.D8m() != good.D4m {
		t.Fatal("D8m must equal D4m")
	}
}

func TestNewRejectsContradictoryAblation(t *testing.T) {
	g, _ := testWorld(t, 5)
	c := tinyConfig()
	c.NoSpatial, c.NoTemporal = true, true
	if _, err := New(c, g); err == nil {
		t.Fatal("N-sp + N-tp without NoTrajectory should be rejected")
	}
}

// TestTrainImprovesOverMean is the core end-to-end check: a briefly trained
// DeepOD must clearly beat the predict-the-training-mean baseline on held
// out data.
func TestTrainImprovesOverMean(t *testing.T) {
	g, recs := testWorld(t, 700)
	split, err := dataset.PaperSplit(recs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Train(split.Train, split.Valid, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || len(stats.Curve) == 0 {
		t.Fatalf("no training happened: %+v", stats)
	}

	var meanTrain float64
	for i := range split.Train {
		meanTrain += split.Train[i].TravelSec
	}
	meanTrain /= float64(len(split.Train))

	actual := make([]float64, len(split.Test))
	pred := make([]float64, len(split.Test))
	constPred := make([]float64, len(split.Test))
	for i := range split.Test {
		actual[i] = split.Test[i].TravelSec
		pred[i] = m.Estimate(&split.Test[i].Matched)
		constPred[i] = meanTrain
	}
	modelMAE := metrics.MAE(actual, pred)
	constMAE := metrics.MAE(actual, constPred)
	if modelMAE >= constMAE*0.9 {
		t.Fatalf("DeepOD MAE %.1f not clearly better than mean baseline %.1f", modelMAE, constMAE)
	}
	for _, p := range pred {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("invalid prediction %v", p)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	g, recs := testWorld(t, 80)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	od := &split.Test[0].Matched
	a, b := m.Estimate(od), m.Estimate(od)
	if a != b {
		t.Fatalf("Estimate not deterministic: %v vs %v", a, b)
	}
}

func TestTrainingDeterministicAcrossRuns(t *testing.T) {
	g, recs := testWorld(t, 80)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		cfg := tinyConfig()
		cfg.Epochs = 1
		m, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(split.Train, split.Valid, TrainOptions{}); err != nil {
			t.Fatal(err)
		}
		return m.Estimate(&split.Test[0].Matched)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different models: %v vs %v", a, b)
	}
}

func TestAblationVariantsTrain(t *testing.T) {
	g, recs := testWorld(t, 100)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*Config){
		"N-st":    func(c *Config) { c.NoTrajectory = true },
		"N-sp":    func(c *Config) { c.NoSpatial = true },
		"N-tp":    func(c *Config) { c.NoTemporal = true },
		"N-other": func(c *Config) { c.NoExternal = true },
		"T-one":   func(c *Config) { c.TimeInit = TimeOneHot },
		"T-day":   func(c *Config) { c.TimeInit = TimeDayGraph },
		"T-stamp": func(c *Config) { c.TimeInit = TimeStamp },
		"R-one":   func(c *Config) { c.RoadInit = RoadOneHot },
	}
	for name, mod := range variants {
		mod := mod
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig()
			cfg.Epochs = 1
			mod(&cfg)
			m, err := New(cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 3}); err != nil {
				t.Fatal(err)
			}
			y := m.Estimate(&split.Test[0].Matched)
			if math.IsNaN(y) || y < 0 {
				t.Fatalf("variant %s produced invalid estimate %v", name, y)
			}
		})
	}
}

func TestExternalFeaturesOptionalAtEstimate(t *testing.T) {
	g, recs := testWorld(t, 80)
	split, err := dataset.ChronoSplit(recs, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	m, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(split.Train, split.Valid, TrainOptions{MaxSteps: 2}); err != nil {
		t.Fatal(err)
	}
	od := split.Test[0].Matched
	od.External = nil // estimation must still work without external data
	y := m.Estimate(&od)
	if math.IsNaN(y) || y < 0 {
		t.Fatalf("estimate without external features: %v", y)
	}
}

func TestTimeScaleGuards(t *testing.T) {
	g, _ := testWorld(t, 5)
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTimeScale(120)
	if m.TimeScale() != 120 {
		t.Fatal("SetTimeScale did not stick")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive time scale accepted")
		}
	}()
	m.SetTimeScale(0)
}

func TestModelSizeReporting(t *testing.T) {
	g, _ := testWorld(t, 5)
	m, err := New(tinyConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumWeights() <= 0 {
		t.Fatal("model has no weights")
	}
	if m.Params().SizeBytes() != m.NumWeights()*8 {
		t.Fatal("size bytes mismatch")
	}
}
