package traj

import (
	"math"
	"testing"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
)

// lineGraph builds a 3-vertex path network 0→1→2 with both edges 100 m.
func lineGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.NewGraph(
		[]roadnet.Vertex{
			{ID: 0, Pos: geo.Point{X: 0}},
			{ID: 1, Pos: geo.Point{X: 100}},
			{ID: 2, Pos: geo.Point{X: 200}},
		},
		[]roadnet.Edge{
			{ID: 0, From: 0, To: 1, Length: 100, FreeSpeed: 10},
			{ID: 1, From: 1, To: 2, Length: 100, FreeSpeed: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRawValidate(t *testing.T) {
	r := Raw{Points: []GPSPoint{{T: 0}, {T: 5}, {T: 3}}}
	if err := r.Validate(); err == nil {
		t.Fatal("decreasing timestamps accepted")
	}
	r = Raw{Points: []GPSPoint{{T: 0}}}
	if err := r.Validate(); err == nil {
		t.Fatal("single point accepted")
	}
	r = Raw{Points: []GPSPoint{{T: 0}, {T: 5}}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Duration() != 5 {
		t.Fatalf("Duration = %v", r.Duration())
	}
}

func validTraj() Trajectory {
	return Trajectory{
		Path: []Step{
			{Edge: 0, Enter: 0, Exit: 8},
			{Edge: 1, Enter: 8, Exit: 20},
		},
		RStart: 0.25,
		REnd:   0.4,
	}
}

func TestTrajectoryValidate(t *testing.T) {
	g := lineGraph(t)
	tr := validTraj()
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}

	bad := validTraj()
	bad.Path = nil
	if err := bad.Validate(g); err == nil {
		t.Fatal("empty path accepted")
	}
	bad = validTraj()
	bad.RStart = 1.5
	if err := bad.Validate(g); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
	bad = validTraj()
	bad.Path[1].Exit = 5 // exit before enter
	if err := bad.Validate(g); err == nil {
		t.Fatal("reversed interval accepted")
	}
	bad = validTraj()
	bad.Path[1].Enter = 4 // overlaps step 0
	if err := bad.Validate(g); err == nil {
		t.Fatal("overlapping intervals accepted")
	}
	bad = validTraj()
	bad.Path[1].Edge = 0 // disconnected (0→1 then 0→1)
	if err := bad.Validate(g); err == nil {
		t.Fatal("disconnected path accepted")
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	g := lineGraph(t)
	tr := validTraj()
	if tt := tr.TravelTime(); tt != 20 {
		t.Fatalf("TravelTime = %v", tt)
	}
	if d := tr.DepartureTime(); d != 0 {
		t.Fatalf("DepartureTime = %v", d)
	}
	es := tr.Edges()
	if len(es) != 2 || es[0] != 0 || es[1] != 1 {
		t.Fatalf("Edges = %v", es)
	}
	// Length: (1-0.25)*100 + (1-0.4)*100 = 75 + 60 = 135.
	if l := tr.Length(g); math.Abs(l-135) > 1e-9 {
		t.Fatalf("Length = %v, want 135", l)
	}
}

func TestSingleEdgeTrajectoryLength(t *testing.T) {
	g := lineGraph(t)
	tr := Trajectory{
		Path:   []Step{{Edge: 0, Enter: 0, Exit: 5}},
		RStart: 0.2,
		REnd:   0.3,
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Origin at 0.2, destination at 1-0.3=0.7 → 50 m.
	if l := tr.Length(g); math.Abs(l-50) > 1e-9 {
		t.Fatalf("single-edge Length = %v, want 50", l)
	}
}
