// Package traj defines the trajectory domain model of the paper's Section 2:
// raw GPS trajectories, spatio-temporal paths (sequences of road segments
// with time intervals), position ratios, OD inputs, and complete trip
// records. These types are shared between the city simulator (which
// synthesizes them), the map matcher (which reconstructs them from GPS
// points) and the prediction models (which consume them).
package traj

import (
	"fmt"

	"deepod/internal/geo"
	"deepod/internal/roadnet"
)

// GPSPoint is one sample of a raw trajectory: ⟨[x, y], t⟩ with t in seconds
// since the dataset's base timestamp.
type GPSPoint struct {
	Pos geo.Point
	T   float64
}

// Raw is a raw trajectory: a time-ordered sequence of GPS points.
type Raw struct {
	Points []GPSPoint
}

// Validate checks that timestamps are non-decreasing.
func (r *Raw) Validate() error {
	if len(r.Points) < 2 {
		return fmt.Errorf("traj: raw trajectory needs at least 2 points, got %d", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].T < r.Points[i-1].T {
			return fmt.Errorf("traj: timestamps decrease at index %d (%v → %v)", i, r.Points[i-1].T, r.Points[i].T)
		}
	}
	return nil
}

// Duration returns the elapsed seconds between first and last points.
func (r *Raw) Duration() float64 {
	return r.Points[len(r.Points)-1].T - r.Points[0].T
}

// Step is one element ⟨eᵢ, [tᵢ[1], tᵢ[−1]]⟩ of a spatio-temporal path: a
// road segment together with the time interval the trajectory spends on it.
type Step struct {
	Edge  roadnet.EdgeID
	Enter float64 // tᵢ[1]
	Exit  float64 // tᵢ[−1]
}

// Trajectory is Definition 1 of the paper: a spatio-temporal path SP plus
// two position ratios PR = ⟨r[1], r[−1]⟩ locating the exact origin and
// destination within the first and last segments.
type Trajectory struct {
	Path []Step
	// RStart is r[1] = |v¹₁ → g[1]| / |v¹₁ → v⁻¹₁|.
	RStart float64
	// REnd is r[−1] = |g[−1] → v⁻¹₋₁| / |v¹₋₁ → v⁻¹₋₁|.
	REnd float64
}

// Validate checks structural invariants: non-empty path, connected edges,
// ordered non-overlapping intervals, ratios in [0, 1].
func (t *Trajectory) Validate(g *roadnet.Graph) error {
	if len(t.Path) == 0 {
		return fmt.Errorf("traj: empty spatio-temporal path")
	}
	if t.RStart < 0 || t.RStart > 1 || t.REnd < 0 || t.REnd > 1 {
		return fmt.Errorf("traj: position ratios out of [0,1]: r[1]=%v r[-1]=%v", t.RStart, t.REnd)
	}
	for i, s := range t.Path {
		if s.Exit < s.Enter {
			return fmt.Errorf("traj: step %d has exit %v before enter %v", i, s.Exit, s.Enter)
		}
		if i > 0 {
			if t.Path[i-1].Exit > s.Enter+1e-9 {
				return fmt.Errorf("traj: step %d enters (%v) before step %d exits (%v)", i, s.Enter, i-1, t.Path[i-1].Exit)
			}
			if g != nil && g.Edges[t.Path[i-1].Edge].To != g.Edges[s.Edge].From {
				return fmt.Errorf("traj: path disconnected between steps %d and %d", i-1, i)
			}
		}
	}
	return nil
}

// Edges returns the edge sequence of the path.
func (t *Trajectory) Edges() []roadnet.EdgeID {
	es := make([]roadnet.EdgeID, len(t.Path))
	for i, s := range t.Path {
		es[i] = s.Edge
	}
	return es
}

// TravelTime returns the elapsed seconds from the first enter to the last
// exit.
func (t *Trajectory) TravelTime() float64 {
	return t.Path[len(t.Path)-1].Exit - t.Path[0].Enter
}

// DepartureTime returns the first enter timestamp.
func (t *Trajectory) DepartureTime() float64 { return t.Path[0].Enter }

// PosAt returns the on-network position at time sec, interpolating linearly
// within each step's time interval and respecting the partial first/last
// segments. Times before departure clamp to the origin, times after arrival
// to the destination. The caller guarantees a non-empty Path (Validate).
func (t *Trajectory) PosAt(g *roadnet.Graph, sec float64) geo.Point {
	for i := range t.Path {
		s := &t.Path[i]
		if sec <= s.Exit || i == len(t.Path)-1 {
			from, to := 0.0, 1.0
			if i == 0 {
				from = t.RStart
			}
			if i == len(t.Path)-1 {
				to = 1 - t.REnd
			}
			span := s.Exit - s.Enter
			f := 1.0
			if span > 0 {
				f = (sec - s.Enter) / span
			}
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
			return g.PointAlongEdge(s.Edge, from+(to-from)*f)
		}
	}
	last := t.Path[len(t.Path)-1]
	return g.PointAlongEdge(last.Edge, 1-t.REnd)
}

// Length returns the travelled distance in meters, accounting for the
// partial first and last segments via the position ratios.
func (t *Trajectory) Length(g *roadnet.Graph) float64 {
	if len(t.Path) == 1 {
		// Origin and destination on the same segment.
		e := g.Edges[t.Path[0].Edge]
		return e.Length * ((1 - t.REnd) - t.RStart)
	}
	var s float64
	for i, st := range t.Path {
		l := g.Edges[st.Edge].Length
		switch i {
		case 0:
			s += l * (1 - t.RStart)
		case len(t.Path) - 1:
			s += l * (1 - t.REnd)
		default:
			s += l
		}
	}
	return s
}

// ODInput is Definition 2: an origin point, a destination point, a
// departure time, and optional external features.
type ODInput struct {
	Origin    geo.Point
	Dest      geo.Point
	DepartSec float64
	// External features (Definition 2's f); nil when unavailable.
	External *ExternalFeatures
}

// ExternalFeatures bundles the paper's two external signals (§4.5): the
// weather type (index into N_wea one-hot categories) and the current
// traffic condition as a grid speed matrix (row-major Rows×Cols, m/s; 0 for
// cells with no observations).
type ExternalFeatures struct {
	Weather   int
	SpeedGrid []float64
	GridRows  int
	GridCols  int
}

// MatchedOD is an OD input whose endpoints have been matched onto road
// segments: the paper represents g[1] and g[−1] by their segments (e₁, eₙ)
// and position ratios (r[1], r[−1]).
type MatchedOD struct {
	OriginEdge roadnet.EdgeID
	DestEdge   roadnet.EdgeID
	RStart     float64
	REnd       float64
	DepartSec  float64
	External   *ExternalFeatures
}

// TripRecord is one historical taxi order: the OD input, the affiliated
// trajectory it travelled, and the ground-truth travel time in seconds.
// Trajectories exist only for training records; at prediction time only the
// OD part is available (the paper's central premise).
type TripRecord struct {
	OD         ODInput
	Matched    MatchedOD
	Trajectory Trajectory
	TravelSec  float64
	// RawPoints is the number of GPS points before map matching (reported
	// in Table 2's "Avg # of points").
	RawPoints int
}
