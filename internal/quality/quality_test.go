package quality

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deepod/internal/geo"
	"deepod/internal/metrics"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// fakeClock is a mutex-guarded manual clock for deterministic rotation and
// TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// gridCells quantizes X into 100 m columns — enough to give distinct OD
// pairs distinct cells.
type gridCells struct{}

func (gridCells) CellIndex(p geo.Point) int { return int(p.X) / 100 }

func odAt(x float64, depart float64) traj.ODInput {
	return traj.ODInput{Origin: geo.Point{X: x, Y: 0}, Dest: geo.Point{X: x + 1000, Y: 0}, DepartSec: depart}
}

func newTestMonitor(t *testing.T, clk *fakeClock, mut func(*Config)) *Monitor {
	t.Helper()
	cfg := Config{
		Window:     time.Minute,
		PendingTTL: 10 * time.Minute,
		Cells:      gridCells{},
		Slotter:    timeslot.MustNew(5 * time.Minute),
		Registry:   obs.NewRegistry(),
		Now:        clk.now,
	}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg)
}

func TestRecordJoinMatchesOfflineMetrics(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, nil)

	preds := []float64{100, 250, 400, 60}
	actuals := []float64{110, 240, 500, 45}
	var ids []string
	for _, p := range preds {
		ids = append(ids, m.RecordPrediction(odAt(0, 600), p, "m1", 1))
	}
	for i, id := range ids {
		res, err := m.Feedback(id, actuals[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Joined || res.PredictedSeconds != preds[i] || res.Model != "m1" {
			t.Fatalf("feedback %d = %+v", i, res)
		}
		if want := math.Abs(actuals[i] - preds[i]); res.AbsErrorSeconds != want {
			t.Fatalf("abs error = %v, want %v", res.AbsErrorSeconds, want)
		}
	}

	st := m.State()
	if st.Counters.Predictions != 4 || st.Counters.Joined != 4 || st.Counters.Orphaned != 0 {
		t.Fatalf("counters = %+v", st.Counters)
	}
	// The windowed aggregates must agree with the offline metrics package on
	// the same joined pairs.
	if got, want := float64(st.Current.MAESeconds), metrics.MAE(actuals, preds); math.Abs(got-want) > 1e-9 {
		t.Fatalf("window MAE = %v, offline MAE = %v", got, want)
	}
	if got, want := float64(st.Current.MAPE), metrics.MAPE(actuals, preds); math.Abs(got-want) > 1e-9 {
		t.Fatalf("window MAPE = %v, offline MAPE = %v", got, want)
	}
	if got, want := float64(st.Current.MARE), metrics.MARE(actuals, preds); math.Abs(got-want) > 1e-9 {
		t.Fatalf("window MARE = %v, offline MARE = %v", got, want)
	}
	if st.Current.Count != 4 || st.Pending.Size != 0 {
		t.Fatalf("count=%d pending=%d", st.Current.Count, st.Pending.Size)
	}
	// Running gauges track the same values live.
	if g := m.maeGauge.Value(); math.Abs(g-metrics.MAE(actuals, preds)) > 1e-9 {
		t.Fatalf("mae gauge = %v", g)
	}
}

func TestFeedbackOrphansAndValidation(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, nil)

	if res, err := m.Feedback("nope", 100); err != nil || res.Joined {
		t.Fatalf("unknown id: res=%+v err=%v", res, err)
	}
	id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
	if _, err := m.Feedback(id, 100); err != nil {
		t.Fatal(err)
	}
	// Double feedback on the same ID is an orphan, not a double count.
	if res, err := m.Feedback(id, 100); err != nil || res.Joined {
		t.Fatalf("double join: res=%+v err=%v", res, err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -5} {
		if _, err := m.Feedback(id, bad); err == nil {
			t.Fatalf("actual=%v accepted", bad)
		}
	}
	st := m.State()
	if st.Counters.Joined != 1 || st.Counters.Orphaned != 2 {
		t.Fatalf("counters = %+v", st.Counters)
	}
}

func TestPendingTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, func(c *Config) { c.PendingTTL = time.Minute; c.Window = time.Hour })

	early := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
	clk.advance(50 * time.Second)
	late := m.RecordPrediction(odAt(0, 0), 200, "m1", 1)
	clk.advance(30 * time.Second) // early is now 80s old, late 30s

	if res, _ := m.Feedback(early, 100); res.Joined {
		t.Fatal("expired prediction joined")
	}
	if res, _ := m.Feedback(late, 200); !res.Joined {
		t.Fatal("live prediction did not join")
	}
	st := m.State()
	if st.Pending.Expired != 1 || st.Counters.Orphaned != 1 || st.Counters.Joined != 1 {
		t.Fatalf("expired=%d counters=%+v", st.Pending.Expired, st.Counters)
	}
	if st.Pending.Size != 0 {
		t.Fatalf("pending size = %d", st.Pending.Size)
	}
}

func TestPendingCapacityEviction(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, func(c *Config) { c.PendingMax = 3 })

	ids := make([]string, 5)
	for i := range ids {
		ids[i] = m.RecordPrediction(odAt(0, 0), float64(100+i), "m1", 1)
	}
	st := m.State()
	if st.Pending.Size != 3 || st.Pending.Evicted != 2 {
		t.Fatalf("size=%d evicted=%d", st.Pending.Size, st.Pending.Evicted)
	}
	// The two oldest are gone; the three newest still join.
	for i, id := range ids {
		res, _ := m.Feedback(id, 100)
		if wantJoin := i >= 2; res.Joined != wantJoin {
			t.Fatalf("id %d joined=%v, want %v", i, res.Joined, wantJoin)
		}
	}
}

func TestWindowRotation(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, func(c *Config) { c.MaxWindows = 2 })
	start := clk.now()

	join := func(pred, actual float64) {
		id := m.RecordPrediction(odAt(0, 0), pred, "m1", 1)
		if res, err := m.Feedback(id, actual); err != nil || !res.Joined {
			t.Fatalf("join failed: %+v %v", res, err)
		}
	}

	join(100, 110) // window 0: MAE 10
	clk.advance(time.Minute)
	join(100, 120) // window 1: MAE 20
	clk.advance(time.Minute)
	join(100, 130) // window 2: MAE 30
	clk.advance(time.Minute)
	// A long idle gap: no empty windows are fabricated.
	clk.advance(30 * time.Minute)
	join(100, 140) // window 33: MAE 40

	st := m.State()
	if len(st.Windows) != 2 { // MaxWindows caps retention
		t.Fatalf("closed windows = %d, want 2", len(st.Windows))
	}
	// Newest first: window 2 (MAE 30) then window 1 (MAE 20).
	if got := float64(st.Windows[0].MAESeconds); got != 30 {
		t.Fatalf("newest closed MAE = %v, want 30", got)
	}
	if got := float64(st.Windows[1].MAESeconds); got != 20 {
		t.Fatalf("older closed MAE = %v, want 20", got)
	}
	if float64(st.Current.MAESeconds) != 40 || st.Current.Count != 1 {
		t.Fatalf("current = %+v", st.Current)
	}
	// Window boundaries stay aligned to the first start across the gap.
	if off := st.Current.Start.Sub(start) % time.Minute; off != 0 {
		t.Fatalf("current window start misaligned by %v", off)
	}
	if !st.Windows[0].End.Equal(st.Windows[0].Start.Add(time.Minute)) {
		t.Fatalf("closed window end %v != start+window", st.Windows[0])
	}
}

func TestDriftDetection(t *testing.T) {
	clk := newFakeClock()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	// Training-time reference: errors concentrated in the lowest bins.
	ref := metrics.RefDistOf([]float64{2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 7, 8, 9, 8, 7, 6, 5, 4, 3, 2}, nil)
	m := newTestMonitor(t, clk, func(c *Config) {
		c.Reference = ref
		c.ReferenceModel = "m1"
		c.MinDriftSamples = 10
		c.DriftThreshold = 0.2
		c.Logger = logger
	})

	// Live errors land in a far bin (|500-100| = 400 s) — a hard shift.
	for i := 0; i < 15; i++ {
		id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
		if _, err := m.Feedback(id, 500); err != nil {
			t.Fatal(err)
		}
	}
	st := m.State()
	if !st.Drift.Enabled || !st.Drift.Drifting {
		t.Fatalf("drift = %+v", st.Drift)
	}
	if psi := float64(st.Drift.PSI); !(psi > 0.2) {
		t.Fatalf("PSI = %v, want > threshold", psi)
	}
	if g := m.driftGauge.Value(); !(g > 0.2) {
		t.Fatalf("drift gauge = %v", g)
	}
	if m.driftAlerts.Value() != 1 {
		t.Fatalf("alerts = %d, want exactly 1 per window", m.driftAlerts.Value())
	}
	if !strings.Contains(logBuf.String(), "quality drift") {
		t.Fatalf("no drift warning logged: %q", logBuf.String())
	}
	if st.Drift.ReferenceModel != "m1" || st.Drift.ReferenceSamples != uint64(ref.Total()) {
		t.Fatalf("drift reference = %+v", st.Drift)
	}

	// Next window re-arms the alert.
	clk.advance(time.Minute)
	for i := 0; i < 12; i++ {
		id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
		if _, err := m.Feedback(id, 500); err != nil {
			t.Fatal(err)
		}
	}
	if m.driftAlerts.Value() != 2 {
		t.Fatalf("alerts after second window = %d, want 2", m.driftAlerts.Value())
	}
}

func TestDriftStableDistribution(t *testing.T) {
	clk := newFakeClock()
	ref := metrics.RefDistOf([]float64{4, 4, 4, 4, 8, 8, 8, 8, 15, 15, 15, 15, 25, 25, 25, 25}, nil)
	m := newTestMonitor(t, clk, func(c *Config) {
		c.Reference = ref
		c.MinDriftSamples = 16
	})
	// Live errors drawn from the same distribution: PSI stays small.
	for _, e := range []float64{4, 4, 4, 4, 8, 8, 8, 8, 15, 15, 15, 15, 25, 25, 25, 25} {
		id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
		if _, err := m.Feedback(id, 100+e); err != nil {
			t.Fatal(err)
		}
	}
	st := m.State()
	if st.Drift.Drifting {
		t.Fatalf("stable distribution flagged as drifting: %+v", st.Drift)
	}
	if psi := float64(st.Drift.PSI); math.IsNaN(psi) || psi > 0.05 {
		t.Fatalf("PSI = %v, want ~0", psi)
	}
	if m.driftAlerts.Value() != 0 {
		t.Fatal("alert fired on a stable distribution")
	}
}

func TestSetReferenceSwap(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, nil)
	if st := m.State(); st.Drift.Enabled {
		t.Fatal("drift enabled without a reference")
	}
	id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
	if _, err := m.Feedback(id, 110); err != nil {
		t.Fatal(err)
	}

	ref := metrics.RefDistOf([]float64{5, 10, 15}, nil)
	m.SetReference(ref, "m2")
	st := m.State()
	if !st.Drift.Enabled || st.Drift.ReferenceModel != "m2" {
		t.Fatalf("drift after SetReference = %+v", st.Drift)
	}
	// The pre-swap join is not binned against the new edges.
	m.mu.Lock()
	var binned float64
	for _, c := range m.cur.driftCounts {
		binned += c
	}
	m.mu.Unlock()
	if binned != 0 {
		t.Fatalf("drift counts carried across reference swap: %v", binned)
	}
	// An invalid reference is rejected and disables drift.
	m.SetReference(&metrics.RefDist{Uppers: []float64{2, 1}, Counts: make([]uint64, 3)}, "bad")
	if st := m.State(); st.Drift.Enabled {
		t.Fatal("invalid reference accepted")
	}
}

func TestHeatmapsAndGenerations(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, func(c *Config) { c.TopK = 2 })

	joinOK := func(od traj.ODInput, pred, actual float64, model string, gen uint64) {
		id := m.RecordPrediction(od, pred, model, gen)
		if res, err := m.Feedback(id, actual); err != nil || !res.Joined {
			t.Fatalf("join: %+v %v", res, err)
		}
	}

	// Cell 0 (x=0..99): error 50. Cell 50 (x=5000): error 200. Cell 90
	// (x=9000): error 5. Dest cells are origin+10.
	joinOK(traj.ODInput{Origin: geo.Point{X: 0}, Dest: geo.Point{X: 1000}, DepartSec: 0}, 100, 150, "m1", 1)
	joinOK(traj.ODInput{Origin: geo.Point{X: 5000}, Dest: geo.Point{X: 6000}, DepartSec: 300}, 100, 300, "m1", 1)
	joinOK(traj.ODInput{Origin: geo.Point{X: 9000}, Dest: geo.Point{X: 10000}, DepartSec: 600}, 100, 105, "m2", 2)

	st := m.State()
	cells := st.Current.WorstCells
	if len(cells) != 2 { // TopK caps the heatmap
		t.Fatalf("worst cells = %+v", cells)
	}
	// Worst first: cells 50 and 60 tie at MAE 200; count ties too, so the
	// lower key (50) wins the top slot.
	if cells[0].Key != 50 || float64(cells[0].MAESeconds) != 200 {
		t.Fatalf("worst cell = %+v", cells[0])
	}
	if cells[1].Key != 60 {
		t.Fatalf("second worst cell = %+v", cells[1])
	}
	slots := st.Current.WorstSlots
	if len(slots) != 2 || slots[0].Key != 1 { // depart 300 s / 300 s slots
		t.Fatalf("worst slots = %+v", slots)
	}

	gens := st.Current.Generations
	if len(gens) != 2 || gens[0].Generation != 1 || gens[1].Generation != 2 {
		t.Fatalf("generations = %+v", gens)
	}
	if gens[0].Count != 2 || float64(gens[0].MAESeconds) != 125 || gens[0].Model != "m1" {
		t.Fatalf("gen 1 = %+v", gens[0])
	}
	if gens[1].Count != 1 || float64(gens[1].MAESeconds) != 5 || gens[1].Model != "m2" {
		t.Fatalf("gen 2 = %+v", gens[1])
	}
}

func TestQuantilesFromWindowHistogram(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, nil)
	// 100 joins with abs error 10 s: every quantile lands in the (7.5, 10]
	// bucket.
	for i := 0; i < 100; i++ {
		id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
		if _, err := m.Feedback(id, 110); err != nil {
			t.Fatal(err)
		}
	}
	st := m.State()
	for _, q := range []float64{float64(st.Current.P50AbsError), float64(st.Current.P95AbsError), float64(st.Current.P99AbsError)} {
		if q <= 7.5 || q > 10 {
			t.Fatalf("quantile %v outside the (7.5, 10] bucket", q)
		}
	}
}

func TestJSONFloat(t *testing.T) {
	b, err := json.Marshal(struct {
		A JSONFloat `json:"a"`
		B JSONFloat `json:"b"`
		C JSONFloat `json:"c"`
	}{JSONFloat(math.NaN()), JSONFloat(math.Inf(1)), JSONFloat(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"a":null,"b":null,"c":1.5}` {
		t.Fatalf("marshal = %s", b)
	}
	var back struct {
		A JSONFloat `json:"a"`
		C JSONFloat `json:"c"`
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back.A)) || float64(back.C) != 1.5 {
		t.Fatalf("unmarshal = %+v", back)
	}
}

func TestHandler(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, nil)
	id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
	if _, err := m.Feedback(id, 120); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/quality", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", rec.Code, rec.Body)
	}
	var st State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON %q: %v", rec.Body, err)
	}
	if st.Current == nil || st.Current.Count != 1 || float64(st.Current.MAESeconds) != 20 {
		t.Fatalf("state = %+v", st.Current)
	}
	// An empty-window PSI serializes as null and decodes back to NaN.
	if !math.IsNaN(float64(st.Current.PSI)) {
		t.Fatalf("PSI = %v, want NaN via null", st.Current.PSI)
	}

	rec = httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/quality", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", rec.Code)
	}
}

func TestConcurrentRecordAndFeedback(t *testing.T) {
	clk := newFakeClock()
	m := newTestMonitor(t, clk, func(c *Config) { c.PendingMax = 256 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := m.RecordPrediction(odAt(float64(g*100), 60), 100, "m1", 1)
				if i%2 == 0 {
					if _, err := m.Feedback(id, 100+float64(i%30)); err != nil {
						t.Error(err)
						return
					}
				}
				if i%50 == 0 {
					_ = m.State()
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.State()
	if st.Counters.Predictions != 1600 {
		t.Fatalf("predictions = %d", st.Counters.Predictions)
	}
	joined := st.Counters.Joined + st.Counters.Orphaned
	if joined != 800 {
		t.Fatalf("feedback total = %d", joined)
	}
}

// fakeSink records AlertSink calls for assertions.
type fakeSink struct {
	mu    sync.Mutex
	calls []fakeSinkCall
}

type fakeSinkCall struct {
	name     string
	firing   bool
	severity string
	value    float64
}

func (s *fakeSink) SetAlert(name string, firing bool, severity string, value float64, _ map[string]any) {
	s.mu.Lock()
	s.calls = append(s.calls, fakeSinkCall{name, firing, severity, value})
	s.mu.Unlock()
}

func (s *fakeSink) last(t *testing.T) fakeSinkCall {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.calls) == 0 {
		t.Fatal("alert sink never called")
	}
	return s.calls[len(s.calls)-1]
}

// TestDriftAlertSink covers the alert-manager routing: with a sink wired,
// drift reports level-triggered through it (firing on divergence, cleared
// on recovery) and the slog warning stays silent.
func TestDriftAlertSink(t *testing.T) {
	clk := newFakeClock()
	var logBuf bytes.Buffer
	sink := &fakeSink{}
	ref := metrics.RefDistOf([]float64{4, 4, 4, 4, 8, 8, 8, 8, 15, 15, 15, 15, 25, 25, 25, 25}, nil)
	m := newTestMonitor(t, clk, func(c *Config) {
		c.Reference = ref
		c.ReferenceModel = "m1"
		c.MinDriftSamples = 10
		c.DriftThreshold = 0.2
		c.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
		c.Alerts = sink
	})

	// Divergent errors: the sink sees quality:drift firing.
	for i := 0; i < 15; i++ {
		id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
		if _, err := m.Feedback(id, 500); err != nil {
			t.Fatal(err)
		}
	}
	call := sink.last(t)
	if call.name != "quality:drift" || !call.firing || call.severity != "ticket" {
		t.Fatalf("sink call = %+v, want quality:drift firing ticket", call)
	}
	if !(call.value > 0.2) {
		t.Fatalf("sink PSI = %v, want > threshold", call.value)
	}
	if m.driftAlerts.Value() != 1 {
		t.Fatalf("drift alert counter = %d, want 1", m.driftAlerts.Value())
	}
	if strings.Contains(logBuf.String(), "quality drift") {
		t.Fatalf("drift logged despite sink: %q", logBuf.String())
	}

	// Next window with in-distribution errors: the condition clears.
	clk.advance(time.Minute)
	for _, e := range []float64{4, 4, 4, 4, 8, 8, 8, 8, 15, 15, 15, 15, 25, 25, 25, 25} {
		id := m.RecordPrediction(odAt(0, 0), 100, "m1", 1)
		if _, err := m.Feedback(id, 100+e); err != nil {
			t.Fatal(err)
		}
	}
	call = sink.last(t)
	if call.firing {
		t.Fatalf("sink still firing after recovery: %+v", call)
	}
	if !(call.value < 0.2) {
		t.Fatalf("recovered PSI = %v, want < threshold", call.value)
	}
}
