package quality

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"time"

	"deepod/internal/metrics"
)

// JSONFloat marshals NaN and ±Inf as null — encoding/json rejects them —
// so empty-window metrics (MAE of nothing is NaN, see internal/metrics)
// serialize cleanly.
type JSONFloat float64

// MarshalJSON renders non-finite values as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON reads null back as NaN.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// GenerationSummary is one model generation's error within a window —
// after a hot reload, a window can mix predictions from both models and
// this is where a regression in the new one shows first.
type GenerationSummary struct {
	Generation uint64    `json:"generation"`
	Model      string    `json:"model"`
	Count      int       `json:"count"`
	MAESeconds JSONFloat `json:"mae_seconds"`
}

// HeatmapEntry is one cell (roadnet grid index) or time slot of the
// worst-K error heatmap.
type HeatmapEntry struct {
	Key        int       `json:"key"`
	Count      int       `json:"count"`
	MAESeconds JSONFloat `json:"mae_seconds"`
}

// WindowSummary is the exported aggregate of one aggregation window.
type WindowSummary struct {
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	Count       int       `json:"count"`
	MAESeconds  JSONFloat `json:"mae_seconds"`
	MAPE        JSONFloat `json:"mape"`
	MAPESkipped int       `json:"mape_skipped,omitempty"`
	MARE        JSONFloat `json:"mare"`
	P50AbsError JSONFloat `json:"p50_abs_error_seconds"`
	P95AbsError JSONFloat `json:"p95_abs_error_seconds"`
	P99AbsError JSONFloat `json:"p99_abs_error_seconds"`
	// PSI is the window's drift statistic vs the reference (null when
	// drift is disabled or the window is under MinDriftSamples).
	PSI         JSONFloat           `json:"psi"`
	Generations []GenerationSummary `json:"generations,omitempty"`
	WorstCells  []HeatmapEntry      `json:"worst_cells,omitempty"`
	WorstSlots  []HeatmapEntry      `json:"worst_slots,omitempty"`
}

// PendingStats describes the pending-prediction table.
type PendingStats struct {
	Size       int     `json:"size"`
	Capacity   int     `json:"capacity"`
	TTLSeconds float64 `json:"ttl_seconds"`
	Expired    uint64  `json:"expired"`
	Evicted    uint64  `json:"evicted"`
}

// Counters are the monitor's lifetime totals.
type Counters struct {
	Predictions uint64 `json:"predictions"`
	Joined      uint64 `json:"joined"`
	Orphaned    uint64 `json:"orphaned"`
}

// DriftStatus reports the detector's live state.
type DriftStatus struct {
	// Enabled is false until a reference distribution is installed.
	Enabled   bool      `json:"enabled"`
	PSI       JSONFloat `json:"psi"`
	Threshold float64   `json:"threshold"`
	// Drifting is true when the current window's PSI exceeds Threshold.
	Drifting         bool   `json:"drifting"`
	ReferenceModel   string `json:"reference_model,omitempty"`
	ReferenceSamples uint64 `json:"reference_samples,omitempty"`
	WindowSamples    int    `json:"window_samples"`
	MinSamples       int    `json:"min_samples"`
}

// State is the full /debug/quality payload.
type State struct {
	WindowSeconds float64          `json:"window_seconds"`
	Current       *WindowSummary   `json:"current"`
	Windows       []*WindowSummary `json:"windows"` // closed, newest first
	Pending       PendingStats     `json:"pending"`
	Counters      Counters         `json:"counters"`
	Drift         DriftStatus      `json:"drift"`
}

// State snapshots the monitor: it rotates/sweeps first so the answer
// reflects the clock, then summarizes under the lock.
func (m *Monitor) State() State {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rotateLocked(now)
	m.sweepLocked(now)

	st := State{
		WindowSeconds: m.cfg.Window.Seconds(),
		Current:       m.summarizeLocked(m.cur, now),
		Pending: PendingStats{
			Size:       len(m.pending),
			Capacity:   m.cfg.PendingMax,
			TTLSeconds: m.cfg.PendingTTL.Seconds(),
			Expired:    m.expiredTotal.Value(),
			Evicted:    m.evictedTotal.Value(),
		},
		Counters: Counters{
			Predictions: m.predictions.Value(),
			Joined:      m.joinedTotal.Value(),
			Orphaned:    m.orphanTotal.Value(),
		},
	}
	for i := len(m.closed) - 1; i >= 0; i-- { // newest first
		st.Windows = append(st.Windows, m.closed[i])
	}

	st.Drift = DriftStatus{
		Enabled:        m.ref != nil,
		PSI:            JSONFloat(math.NaN()),
		Threshold:      m.cfg.DriftThreshold,
		ReferenceModel: m.refModel,
		WindowSamples:  m.cur.n,
		MinSamples:     m.cfg.MinDriftSamples,
	}
	if m.ref != nil {
		st.Drift.ReferenceSamples = m.ref.Total()
		if psi := float64(st.Current.PSI); !math.IsNaN(psi) {
			st.Drift.PSI = JSONFloat(psi)
			st.Drift.Drifting = psi > m.cfg.DriftThreshold
		}
	}
	return st
}

// summarizeLocked renders a window into its exported form. end is the
// window's closing instant (its aligned boundary for closed windows, now
// for the running one).
func (m *Monitor) summarizeLocked(w *window, end time.Time) *WindowSummary {
	s := &WindowSummary{
		Start:       w.start,
		End:         end,
		Count:       w.n,
		MAESeconds:  JSONFloat(math.NaN()),
		MAPE:        JSONFloat(math.NaN()),
		MAPESkipped: w.apeSkip,
		MARE:        JSONFloat(math.NaN()),
		P50AbsError: JSONFloat(w.hist.Quantile(0.50)),
		P95AbsError: JSONFloat(w.hist.Quantile(0.95)),
		P99AbsError: JSONFloat(w.hist.Quantile(0.99)),
		PSI:         JSONFloat(math.NaN()),
	}
	if w.n > 0 {
		s.MAESeconds = JSONFloat(w.sumAbs / float64(w.n))
	}
	if n := w.n - w.apeSkip; n > 0 {
		s.MAPE = JSONFloat(w.sumAPE / float64(n))
	}
	if w.sumActual > 0 {
		s.MARE = JSONFloat(w.sumAbs / w.sumActual)
	}
	if w.driftCounts != nil && w.n >= m.cfg.MinDriftSamples {
		s.PSI = JSONFloat(metrics.PSI(m.refProbs, w.driftCounts))
	}
	for gen, g := range w.gens {
		s.Generations = append(s.Generations, GenerationSummary{
			Generation: gen,
			Model:      g.model,
			Count:      g.n,
			MAESeconds: JSONFloat(g.sumAbs / float64(g.n)),
		})
	}
	sort.Slice(s.Generations, func(i, j int) bool {
		return s.Generations[i].Generation < s.Generations[j].Generation
	})
	s.WorstCells = worstK(w.cells, m.cfg.TopK)
	s.WorstSlots = worstK(w.slots, m.cfg.TopK)
	return s
}

// worstK ranks heatmap accumulators by mean absolute error, descending,
// with deterministic tie-breaking (count desc, then key asc).
func worstK(mp map[int]*accum, k int) []HeatmapEntry {
	if len(mp) == 0 {
		return nil
	}
	out := make([]HeatmapEntry, 0, len(mp))
	for key, a := range mp {
		out = append(out, HeatmapEntry{Key: key, Count: a.n, MAESeconds: JSONFloat(a.sumAbs / float64(a.n))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MAESeconds != out[j].MAESeconds {
			return out[i].MAESeconds > out[j].MAESeconds
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Handler serves GET /debug/quality: the monitor's full state as JSON.
// Like /metrics and /debug/traces it is served raw — reading quality state
// must not create predictions or traces.
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.State())
	})
}
