// Package quality is the online model-quality monitor: it closes the loop
// between served travel-time predictions and the ground truth that arrives
// when trips actually complete, and exports the paper's evaluation metrics
// (§6.1: MAE, MAPE, MARE) as live, windowed observables.
//
// The flow:
//
//  1. The inference engine stamps every served estimate with a prediction
//     ID (Monitor implements infer.PredictionRecorder) and the monitor
//     retains it in a bounded, TTL-evicted pending table: predicted value,
//     model generation, origin/destination grid cells and departure slot.
//  2. POST /feedback (internal/serve) reports the actual travel time under
//     the echoed prediction ID; the monitor joins it against the pending
//     entry — correctly even when feedback is late or the model was
//     hot-reloaded in between, because the entry carries the generation
//     that produced the prediction.
//  3. Joined samples aggregate into rotating time windows: MAE/MAPE/MARE,
//     absolute-error quantiles (p50/p95/p99 via the obs histogram
//     machinery), per-generation errors, and per-grid-cell / per-time-slot
//     error heatmaps (top-K worst).
//  4. A drift detector bins live absolute errors into the reference error
//     distribution recorded at training time (metrics.RefDist, stored in
//     the checkpoint by ttetrain) and computes the Population Stability
//     Index. tte_quality_drift crossing Config.DriftThreshold raises the
//     level-triggered "quality:drift" alert through Config.Alerts (one
//     slog warning per window as fallback when no sink is wired) +
//     tte_quality_drift_alerts_total.
//
// Exported metric families (through the obs registry):
//
//	tte_quality_predictions_total      counter, stamped predictions
//	tte_quality_feedback_total         counter {result=joined|orphan}
//	tte_quality_pending                gauge, live pending-table entries
//	tte_quality_pending_events_total   counter {event=expired|evicted}
//	tte_quality_mae_seconds            gauge, current-window running MAE
//	tte_quality_mape                   gauge, current-window running MAPE
//	tte_quality_mare                   gauge, current-window running MARE
//	tte_quality_drift                  gauge, current-window PSI vs reference
//	tte_quality_drift_alerts_total     counter, threshold crossings
//	tte_quality_abs_error_seconds      histogram, cumulative |y − ŷ|
//
// GET /debug/quality (see Handler) serves the full state as JSON: current
// and closed windows, heatmaps, drift status, and join/orphan/expired
// counters.
package quality

import (
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"deepod/internal/geo"
	"deepod/internal/metrics"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// Quantizer maps a point onto a stable coarse spatial cell — the same
// contract the inference engine's estimate cache uses (implemented by
// roadnet.EdgeIndex).
type Quantizer interface {
	CellIndex(p geo.Point) int
}

// Config assembles a Monitor. The zero value of every field has a usable
// default; Cells, Slotter, Reference and Logger are optional.
type Config struct {
	// Window is the metric aggregation window (default 1m). Windows are
	// aligned to the first one's start and rotate lazily.
	Window time.Duration
	// MaxWindows bounds how many closed windows are retained for
	// /debug/quality (default 8).
	MaxWindows int
	// PendingTTL bounds how long a prediction waits for feedback before it
	// is evicted as expired (default 10m) — simulated trips complete in
	// minutes, and an unjoined prediction must not pin memory forever.
	PendingTTL time.Duration
	// PendingMax bounds the pending table (default 65536). When full, the
	// oldest entry is evicted to admit the new one.
	PendingMax int
	// TopK is how many worst cells/slots each window reports (default 10).
	TopK int
	// DriftThreshold is the PSI above which the quality monitor warns
	// (default 0.2 — the conventional "significant shift" bound).
	DriftThreshold float64
	// MinDriftSamples is the window sample count below which PSI is not
	// computed (default 20; a handful of trips says nothing about the
	// distribution).
	MinDriftSamples int
	// Reference is the training-time error distribution drift is measured
	// against (from the checkpoint; nil disables drift until SetReference).
	Reference *metrics.RefDist
	// ReferenceModel names the snapshot the reference came from.
	ReferenceModel string
	// Cells quantizes OD endpoints for the per-cell heatmap (nil disables
	// the heatmap).
	Cells Quantizer
	// Slotter quantizes departure times for the per-slot heatmap (nil
	// disables it).
	Slotter *timeslot.Slotter
	// Registry receives the monitor's metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger receives drift warnings (nil logs nowhere). When Alerts is
	// set it takes over and the logger is only the fallback surface.
	Logger *slog.Logger
	// Alerts, when set, receives the drift condition as a level-triggered
	// alert named "quality:drift" — firing while PSI exceeds the
	// threshold, cleared when it recedes — so drift shares one alert
	// surface with burn-rate and shed alerts instead of an ad-hoc log
	// line. Typically *slo.Manager through its SetAlert method.
	Alerts AlertSink
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// AlertSink is the narrow alert surface the monitor reports drift through.
// It is satisfied by slo.(*Manager).SetAlert; a local interface keeps this
// package decoupled from the slo package's types.
type AlertSink interface {
	SetAlert(name string, firing bool, severity string, value float64, annotations map[string]any)
}

// absErrBuckets are the per-window quantile histogram bounds, finer than
// the drift reference bins at the low end where most errors live.
var absErrBuckets = []float64{1, 2, 3, 5, 7.5, 10, 15, 20, 30, 45, 60, 90, 120, 180, 300, 600, 1200}

// pendingPred is one stamped prediction awaiting ground truth.
type pendingPred struct {
	sec        float64 // predicted travel seconds
	model      string  // snapshot ID that produced it
	generation uint64
	oCell      int // origin grid cell (-1 when Cells is nil)
	dCell      int // destination grid cell
	slot       int // departure time slot (-1 when Slotter is nil)
	at         time.Time
}

// accum is a running (count, Σ|err|) pair — the per-cell/slot/generation
// heatmap unit.
type accum struct {
	n      int
	sumAbs float64
}

type genAccum struct {
	accum
	model string
}

// window is one open aggregation window.
type window struct {
	start       time.Time
	n           int
	sumAbs      float64
	sumAPE      float64
	apeSkip     int
	sumActual   float64
	hist        *obs.Histogram // abs-error quantiles
	driftCounts []float64      // per reference bin; nil when drift disabled
	gens        map[uint64]*genAccum
	cells       map[int]*accum
	slots       map[int]*accum
}

// Monitor joins served predictions with ground-truth feedback and
// aggregates quality metrics. All methods are safe for concurrent use.
type Monitor struct {
	cfg      Config
	reg      *obs.Registry
	now      func() time.Time
	logger   *slog.Logger
	idPrefix string
	seq      atomic.Uint64

	mu       sync.Mutex
	pending  map[string]*pendingPred
	queue    []string // insertion (= expiry) order; joined IDs stay as tombstones
	head     int
	ref      *metrics.RefDist
	refModel string
	refProbs []float64
	cur      *window
	closed   []*WindowSummary // oldest first
	alerted  bool             // one drift warning per window

	predictions  *obs.Counter
	joinedTotal  *obs.Counter
	orphanTotal  *obs.Counter
	expiredTotal *obs.Counter
	evictedTotal *obs.Counter
	pendingGauge *obs.Gauge
	maeGauge     *obs.Gauge
	mapeGauge    *obs.Gauge
	mareGauge    *obs.Gauge
	driftGauge   *obs.Gauge
	driftAlerts  *obs.Counter
	absErrHist   *obs.Histogram
}

// New builds a Monitor. It never fails: every config field defaults.
func New(cfg Config) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = 8
	}
	if cfg.PendingTTL <= 0 {
		cfg.PendingTTL = 10 * time.Minute
	}
	if cfg.PendingMax <= 0 {
		cfg.PendingMax = 65536
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.2
	}
	if cfg.MinDriftSamples <= 0 {
		cfg.MinDriftSamples = 20
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_quality_predictions_total", "Served estimates stamped with a prediction ID.")
	reg.Help("tte_quality_feedback_total", "Ground-truth feedback received, by join result.")
	reg.Help("tte_quality_pending", "Predictions awaiting ground-truth feedback.")
	reg.Help("tte_quality_pending_events_total", "Pending-table evictions: expired (TTL) or evicted (capacity).")
	reg.Help("tte_quality_mae_seconds", "Current-window running mean absolute error, seconds.")
	reg.Help("tte_quality_mape", "Current-window running mean absolute percent error, fraction.")
	reg.Help("tte_quality_mare", "Current-window running mean absolute relative error, fraction.")
	reg.Help("tte_quality_drift", "PSI of the current window's error distribution vs the training-time reference.")
	reg.Help("tte_quality_drift_alerts_total", "Windows whose error distribution crossed the drift threshold.")
	reg.Help("tte_quality_abs_error_seconds", "Absolute error of joined predictions, cumulative.")
	m := &Monitor{
		cfg:      cfg,
		reg:      reg,
		now:      cfg.Now,
		logger:   cfg.Logger,
		idPrefix: fmt.Sprintf("%08x", rand.Uint32()),
		pending:  make(map[string]*pendingPred),

		predictions:  reg.Counter("tte_quality_predictions_total"),
		joinedTotal:  reg.Counter("tte_quality_feedback_total", "result", "joined"),
		orphanTotal:  reg.Counter("tte_quality_feedback_total", "result", "orphan"),
		expiredTotal: reg.Counter("tte_quality_pending_events_total", "event", "expired"),
		evictedTotal: reg.Counter("tte_quality_pending_events_total", "event", "evicted"),
		pendingGauge: reg.Gauge("tte_quality_pending"),
		maeGauge:     reg.Gauge("tte_quality_mae_seconds"),
		mapeGauge:    reg.Gauge("tte_quality_mape"),
		mareGauge:    reg.Gauge("tte_quality_mare"),
		driftGauge:   reg.Gauge("tte_quality_drift"),
		driftAlerts:  reg.Counter("tte_quality_drift_alerts_total"),
		absErrHist:   reg.Histogram("tte_quality_abs_error_seconds", metrics.DefaultAbsErrorUppers),
	}
	m.setReferenceLocked(cfg.Reference, cfg.ReferenceModel)
	m.cur = m.newWindow(m.now())
	return m
}

func (m *Monitor) newWindow(start time.Time) *window {
	w := &window{
		start: start,
		hist:  obs.NewHistogram(absErrBuckets),
		gens:  make(map[uint64]*genAccum),
		cells: make(map[int]*accum),
		slots: make(map[int]*accum),
	}
	if m.ref != nil {
		w.driftCounts = make([]float64, len(m.ref.Counts))
	}
	return w
}

// SetReference swaps the drift reference distribution — called after a hot
// reload installs a checkpoint with its own training-time error
// distribution. The current window's drift counts are reset (they were
// binned against the old edges); quality metrics are unaffected. A nil ref
// disables drift detection.
func (m *Monitor) SetReference(ref *metrics.RefDist, model string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setReferenceLocked(ref, model)
	if m.cur != nil {
		if m.ref != nil {
			m.cur.driftCounts = make([]float64, len(m.ref.Counts))
		} else {
			m.cur.driftCounts = nil
		}
	}
}

func (m *Monitor) setReferenceLocked(ref *metrics.RefDist, model string) {
	if ref != nil {
		if err := ref.Validate(); err != nil {
			if m.logger != nil {
				m.logger.Warn("quality: rejecting reference distribution", "err", err)
			}
			ref = nil
		}
	}
	m.ref, m.refModel, m.refProbs = ref, model, nil
	if ref != nil {
		m.refProbs = ref.Probs()
	}
}

// RecordPrediction stamps one served estimate: it stores the prediction in
// the pending table and returns the ID to echo to the client. It
// implements infer.PredictionRecorder. od must already be validated (the
// engine rejects non-finite inputs before serving).
func (m *Monitor) RecordPrediction(od traj.ODInput, seconds float64, model string, generation uint64) string {
	id := m.idPrefix + "-" + strconv.FormatUint(m.seq.Add(1), 36)
	now := m.now()
	p := &pendingPred{
		sec:        seconds,
		model:      model,
		generation: generation,
		oCell:      -1,
		dCell:      -1,
		slot:       -1,
		at:         now,
	}
	if m.cfg.Cells != nil {
		p.oCell = m.cfg.Cells.CellIndex(od.Origin)
		p.dCell = m.cfg.Cells.CellIndex(od.Dest)
	}
	if m.cfg.Slotter != nil && od.DepartSec >= 0 {
		p.slot = m.cfg.Slotter.Slot(od.DepartSec)
	}

	m.mu.Lock()
	m.rotateLocked(now)
	m.sweepLocked(now)
	for len(m.pending) >= m.cfg.PendingMax {
		if !m.evictHeadLocked(m.evictedTotal) {
			break
		}
	}
	m.pending[id] = p
	m.queue = append(m.queue, id)
	m.pendingGauge.Set(float64(len(m.pending)))
	m.mu.Unlock()

	m.predictions.Inc()
	return id
}

// FeedbackResult reports what happened to one ground-truth observation.
type FeedbackResult struct {
	// Joined is true when the ID matched a pending prediction.
	Joined bool
	// PredictedSeconds and AbsErrorSeconds are set on a join.
	PredictedSeconds float64
	AbsErrorSeconds  float64
	// Model is the snapshot that produced the joined prediction.
	Model string
}

// Feedback joins the actual travel time of a completed trip against the
// pending prediction stamped id. Unknown, already-joined and expired IDs
// count as orphans (the monitor cannot tell these apart — the entry is
// simply gone). actual must be a finite, non-negative number of seconds.
func (m *Monitor) Feedback(id string, actual float64) (FeedbackResult, error) {
	if math.IsNaN(actual) || math.IsInf(actual, 0) || actual < 0 {
		return FeedbackResult{}, fmt.Errorf("quality: actual travel time must be a finite non-negative number, got %v", actual)
	}
	now := m.now()
	m.mu.Lock()
	m.rotateLocked(now)
	m.sweepLocked(now)
	p, ok := m.pending[id]
	if !ok {
		m.mu.Unlock()
		m.orphanTotal.Inc()
		return FeedbackResult{}, nil
	}
	delete(m.pending, id) // its queue slot becomes a tombstone
	m.pendingGauge.Set(float64(len(m.pending)))
	m.joinLocked(p, actual)
	m.mu.Unlock()

	m.joinedTotal.Inc()
	return FeedbackResult{
		Joined:           true,
		PredictedSeconds: p.sec,
		AbsErrorSeconds:  math.Abs(actual - p.sec),
		Model:            p.model,
	}, nil
}

// joinLocked folds one (prediction, actual) pair into the current window
// and updates the running gauges and the drift detector.
func (m *Monitor) joinLocked(p *pendingPred, actual float64) {
	absErr := math.Abs(actual - p.sec)
	w := m.cur
	w.n++
	w.sumAbs += absErr
	if actual != 0 {
		w.sumAPE += absErr / actual
	} else {
		w.apeSkip++
	}
	w.sumActual += actual
	w.hist.Observe(absErr)
	m.absErrHist.Observe(absErr)

	g := w.gens[p.generation]
	if g == nil {
		g = &genAccum{model: p.model}
		w.gens[p.generation] = g
	}
	g.n++
	g.sumAbs += absErr
	if p.oCell >= 0 {
		bump(w.cells, p.oCell, absErr)
		if p.dCell != p.oCell {
			bump(w.cells, p.dCell, absErr)
		}
	}
	if p.slot >= 0 {
		bump(w.slots, p.slot, absErr)
	}

	m.maeGauge.Set(w.sumAbs / float64(w.n))
	if n := w.n - w.apeSkip; n > 0 {
		m.mapeGauge.Set(w.sumAPE / float64(n))
	}
	if w.sumActual > 0 {
		m.mareGauge.Set(w.sumAbs / w.sumActual)
	}

	if w.driftCounts != nil {
		w.driftCounts[m.ref.Bin(absErr)]++
		if w.n >= m.cfg.MinDriftSamples {
			psi := metrics.PSI(m.refProbs, w.driftCounts)
			m.driftGauge.Set(psi)
			firing := psi > m.cfg.DriftThreshold
			if m.cfg.Alerts != nil {
				// Level-triggered: the manager dedups repeats and turns
				// edges into notifications, so report the current truth
				// every time PSI is recomputed.
				m.cfg.Alerts.SetAlert("quality:drift", firing, "ticket", psi, map[string]any{
					"threshold":          m.cfg.DriftThreshold,
					"window_samples":     w.n,
					"reference_model":    m.refModel,
					"window_mae_seconds": w.sumAbs / float64(w.n),
				})
			}
			if firing && !m.alerted {
				m.alerted = true
				m.driftAlerts.Inc()
				if m.cfg.Alerts == nil && m.logger != nil {
					m.logger.Warn("quality drift: live error distribution diverged from the training-time reference",
						"psi", psi,
						"threshold", m.cfg.DriftThreshold,
						"window_samples", w.n,
						"reference_model", m.refModel,
						"window_mae_seconds", w.sumAbs/float64(w.n),
					)
				}
			}
		}
	}
}

func bump(mp map[int]*accum, key int, absErr float64) {
	a := mp[key]
	if a == nil {
		a = &accum{}
		mp[key] = a
	}
	a.n++
	a.sumAbs += absErr
}

// rotateLocked closes the current window when its period has elapsed. A
// gap longer than one window does not fabricate empty windows: the next
// window starts at the aligned boundary containing now.
func (m *Monitor) rotateLocked(now time.Time) {
	elapsed := now.Sub(m.cur.start)
	if elapsed < m.cfg.Window {
		return
	}
	if m.cur.n > 0 {
		m.closed = append(m.closed, m.summarizeLocked(m.cur, m.cur.start.Add(m.cfg.Window)))
		if len(m.closed) > m.cfg.MaxWindows {
			m.closed = m.closed[len(m.closed)-m.cfg.MaxWindows:]
		}
	}
	k := elapsed / m.cfg.Window
	m.cur = m.newWindow(m.cur.start.Add(k * m.cfg.Window))
	m.alerted = false
}

// sweepLocked evicts pending entries whose TTL has elapsed. The TTL is
// constant, so queue order is expiry order and the sweep stops at the
// first live entry.
func (m *Monitor) sweepLocked(now time.Time) {
	cutoff := now.Add(-m.cfg.PendingTTL)
	for m.head < len(m.queue) {
		id := m.queue[m.head]
		p, ok := m.pending[id]
		if !ok { // tombstone: already joined or evicted
			m.head++
			continue
		}
		if !p.at.Before(cutoff) {
			break
		}
		delete(m.pending, id)
		m.head++
		m.expiredTotal.Inc()
	}
	m.compactLocked()
	m.pendingGauge.Set(float64(len(m.pending)))
}

// evictHeadLocked removes the oldest live pending entry (capacity
// pressure), counting it in evicted. Returns false when nothing is left.
func (m *Monitor) evictHeadLocked(counter *obs.Counter) bool {
	for m.head < len(m.queue) {
		id := m.queue[m.head]
		m.head++
		if _, ok := m.pending[id]; ok {
			delete(m.pending, id)
			counter.Inc()
			m.compactLocked()
			return true
		}
	}
	m.compactLocked()
	return false
}

// compactLocked reclaims the consumed queue prefix once it dominates.
func (m *Monitor) compactLocked() {
	if m.head > 1024 && m.head > len(m.queue)/2 {
		m.queue = append([]string(nil), m.queue[m.head:]...)
		m.head = 0
	}
}
