package traffic

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"deepod/internal/obs"
	"deepod/internal/roadnet"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := roadnet.SmallCity("traffic", 8)
	g, err := roadnet.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testStore(t testing.TB, cfg StoreConfig) (*Store, *roadnet.Graph) {
	t.Helper()
	g := testGraph(t)
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s, err := NewStore(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestStoreHarmonicMeanSpeed(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 3})
	// Two observations in one window: 100 m in 10 s and 50 m in 15 s —
	// distance-weighted mean speed 150/25 = 6 m/s.
	s.Record(0, 100, 10, 30)
	s.Record(0, 50, 15, 40)
	s.Publish(40)
	sn := s.Snapshot()
	v, ok := sn.Speed(0)
	if !ok {
		t.Fatal("edge 0 not covered")
	}
	if math.Abs(v-6) > 1e-3 {
		t.Fatalf("speed = %v, want 6", v)
	}
	if sn.Covered != 1 {
		t.Fatalf("covered = %d, want 1", sn.Covered)
	}
	if hw := s.HighWaterSec(); hw != 40 {
		t.Fatalf("high water = %v, want 40", hw)
	}
}

func TestStoreWindowDecay(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 4, Decay: 0.5})
	// Old window: slow (2 m/s). Fresh window: fast (10 m/s). The decayed
	// aggregate must sit between, closer to fresh.
	s.Record(0, 120, 60, 30)  // window 0, 2 m/s
	s.Record(0, 600, 60, 150) // window 2, 10 m/s
	s.Publish(150)
	v, ok := s.Snapshot().Speed(0)
	if !ok {
		t.Fatal("edge 0 not covered")
	}
	// weights: window 2 age 0 → 1.0, window 0 age 2 → 0.25.
	want := (1.0*600 + 0.25*120) / (1.0*60 + 0.25*60)
	if math.Abs(v-want) > 1e-3 {
		t.Fatalf("decayed speed = %v, want %v", v, want)
	}
	if v <= 6 || v >= 10 {
		t.Fatalf("decayed speed %v not between plain mean and fresh speed", v)
	}
}

func TestStoreRingEviction(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 2})
	s.Record(0, 100, 10, 30) // window 0
	s.Publish(30)
	if _, ok := s.Snapshot().Speed(0); !ok {
		t.Fatal("fresh observation not visible")
	}
	// Two windows later the ring has rotated past window 0 entirely.
	s.Record(1, 100, 10, 150) // window 2, different edge
	s.Publish(150)
	sn := s.Snapshot()
	if _, ok := sn.Speed(0); ok {
		t.Fatal("evicted window still visible")
	}
	if _, ok := sn.Speed(1); !ok {
		t.Fatal("fresh edge missing")
	}
	// An untouched edge also ages out by publish time alone.
	s.Publish(500)
	if s.Snapshot().Covered != 0 {
		t.Fatalf("covered = %d after everything aged out", s.Snapshot().Covered)
	}
}

func TestStoreLateObservationsDropped(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 2})
	s.Record(0, 100, 10, 300) // window 5
	s.Record(0, 999, 10, 100) // window 1 — older than the ring, dropped
	if st := s.Stats(); st.Late != 1 || st.Recorded != 1 {
		t.Fatalf("late = %d recorded = %d, want 1/1", st.Late, st.Recorded)
	}
	s.Publish(300)
	v, _ := s.Snapshot().Speed(0)
	if math.Abs(v-10) > 1e-3 {
		t.Fatalf("late observation leaked into aggregate: speed = %v", v)
	}
}

func TestStoreZeroSpeedCountsAsCovered(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 3})
	s.Record(0, 0, 30, 30) // stopped vehicle: 0 m in 30 s
	s.Publish(30)
	v, ok := s.Snapshot().Speed(0)
	if !ok {
		t.Fatal("0 m/s observation should count as coverage")
	}
	if v > 0.01 {
		t.Fatalf("stationary edge speed = %v, want ~0", v)
	}
}

func TestStoreEpochSemantics(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 3, EpochDelta: 0.05})
	if got := s.Stats().Epoch; got != 0 {
		t.Fatalf("initial epoch = %d", got)
	}
	s.Record(0, 600, 60, 30) // 10 m/s
	s.Publish(30)
	e1 := s.Snapshot().Epoch
	if e1 == 0 {
		t.Fatal("first data must bump the epoch")
	}
	// Same conditions re-published: no bump.
	s.Record(0, 600, 60, 35)
	s.Publish(35)
	if e := s.Snapshot().Epoch; e != e1 {
		t.Fatalf("epoch bumped without a shift: %d -> %d", e1, e)
	}
	// Halve the speed: well past EpochDelta, must bump.
	s.Record(0, 300, 180, 90)
	s.Publish(90)
	if e := s.Snapshot().Epoch; e <= e1 {
		t.Fatalf("epoch did not bump on a condition shift: %d", e)
	}
}

func TestStoreSnapshotImmutable(t *testing.T) {
	s, _ := testStore(t, StoreConfig{WindowSec: 60, Windows: 3})
	s.Record(0, 600, 60, 30)
	s.Publish(30)
	sn := s.Snapshot()
	v1, _ := sn.Speed(0)
	// New writes and publishes must not mutate the old snapshot.
	s.Record(0, 60, 60, 40)
	s.Publish(40)
	v2, _ := sn.Speed(0)
	if v1 != v2 {
		t.Fatalf("published snapshot mutated: %v -> %v", v1, v2)
	}
	if fresh, _ := s.Snapshot().Speed(0); fresh == v1 {
		t.Fatal("new snapshot did not pick up the new observation")
	}
}

// TestStoreConcurrentIngestWhileRead hammers Record/Publish/Snapshot from
// many goroutines; run under -race this is the store's memory-safety proof.
func TestStoreConcurrentIngestWhileRead(t *testing.T) {
	s, g := testStore(t, StoreConfig{WindowSec: 10, Windows: 4, PublishEverySec: 1})
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := roadnet.EdgeID((w*perWriter + i) % g.NumEdges())
				at := float64(i) / 10
				s.Record(e, 50, 5, at)
				if i%64 == 0 {
					s.MaybePublish(at)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readErr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if sn := s.Snapshot(); sn != nil {
				cov := 0
				for e := range sn.SpeedMPS {
					if sn.SpeedMPS[e] != 0 {
						cov++
					}
				}
				if cov != sn.Covered {
					readErr = errMismatch{cov, sn.Covered}
					return
				}
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	s.Publish(perWriter / 10)
	if s.Snapshot().Covered == 0 {
		t.Fatal("no coverage after concurrent ingest")
	}
	// Writers interleave arbitrary sim times, so some observations land
	// behind rings other writers already rotated — those are counted late,
	// never lost silently.
	if st := s.Stats(); st.Recorded+st.Late != writers*perWriter {
		t.Fatalf("recorded %d + late %d != %d", st.Recorded, st.Late, writers*perWriter)
	}
}

type errMismatch [2]int

func (e errMismatch) Error() string {
	return "snapshot covered count inconsistent with speeds"
}
