package traffic

import (
	"testing"

	"deepod/internal/geo"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// testPrior builds a constant prior matrix matching the source's grid dims.
func testPrior(g *roadnet.Graph, cellMeters, speed float64) (PriorFunc, int) {
	grid, err := geo.NewGrid(g.Bounds(), cellMeters)
	if err != nil {
		panic(err)
	}
	n := grid.NumCells()
	mat := make([]float64, n)
	for i := range mat {
		mat[i] = speed
	}
	return func(sec float64) *traj.ExternalFeatures {
		return &traj.ExternalFeatures{
			Weather:   int(sec) % 3,
			SpeedGrid: mat,
			GridRows:  grid.Rows,
			GridCols:  grid.Cols,
		}
	}, n
}

func featureFixture(t *testing.T, cfg FeatureConfig) (*FeatureSource, *Store, *roadnet.Graph) {
	t.Helper()
	g := testGraph(t)
	s, err := NewStore(g, StoreConfig{WindowSec: 60, Windows: 4, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	prior, _ := testPrior(g, 250, 8)
	fs, err := NewFeatureSource(g, s, prior, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs, s, g
}

func TestFeatureSourceColdServesPrior(t *testing.T) {
	fs, _, _ := featureFixture(t, FeatureConfig{})
	ext, live := fs.External(100)
	if ext == nil {
		t.Fatal("nil features")
	}
	if live {
		t.Fatal("cold source reported live features")
	}
	for _, v := range ext.SpeedGrid {
		if v != 8 {
			t.Fatalf("cold source altered the prior: cell = %v", v)
		}
	}
	if fs.Epoch() != 0 {
		t.Fatalf("cold epoch = %d, want 0", fs.Epoch())
	}
}

func TestFeatureSourceMergesLiveSpeeds(t *testing.T) {
	fs, s, g := featureFixture(t, FeatureConfig{MinCoverage: 1e-9})
	// Saturate edge 0 with slow traffic (2 m/s) around sim-time 100.
	s.Record(0, 120, 60, 100)
	s.Publish(100)
	ext, live := fs.External(100)
	if !live {
		t.Fatal("merged features not reported as live")
	}
	// The cells crossed by edge 0 must now read below the 8 m/s prior.
	changed := 0
	for ci, edges := range fs.cellEdges {
		touches := false
		for _, e := range edges {
			if e == 0 {
				touches = true
			}
		}
		v := ext.SpeedGrid[ci]
		if touches && v < 8 {
			changed++
		}
		if !touches && v != 8 {
			// Cells whose edges have no data keep the prior.
			for _, e := range edges {
				if _, has := s.Snapshot().Speed(e); has {
					touches = true
				}
			}
			if !touches {
				t.Fatalf("cell %d without live data changed: %v", ci, v)
			}
		}
	}
	if changed == 0 {
		t.Fatal("no cell picked up the live slowdown")
	}
	if fs.Epoch() == 0 {
		t.Fatal("live epoch still 0")
	}
	_ = g
}

func TestFeatureSourceStaleFallsBack(t *testing.T) {
	fs, s, _ := featureFixture(t, FeatureConfig{MinCoverage: 1e-9, StaleAfterSec: 120})
	s.Record(0, 120, 60, 100)
	s.Publish(100)
	// Departure 1h after the newest probe: live layer says nothing.
	ext, liveFlag := fs.External(100 + 3600)
	if liveFlag {
		t.Fatal("stale source reported live features")
	}
	for _, v := range ext.SpeedGrid {
		if v != 8 {
			t.Fatalf("stale source altered the prior: cell = %v", v)
		}
	}
	// A departure near the data still merges.
	ext, liveFlag = fs.External(150)
	if !liveFlag {
		t.Fatal("fresh departure not reported as live")
	}
	live := false
	for _, v := range ext.SpeedGrid {
		if v != 8 {
			live = true
		}
	}
	if !live {
		t.Fatal("fresh departure did not merge live data")
	}
}

func TestFeatureSourceLowCoverageFallsBack(t *testing.T) {
	fs, s, _ := featureFixture(t, FeatureConfig{MinCoverage: 0.99})
	s.Record(0, 120, 60, 100)
	s.Publish(100)
	ext, live := fs.External(100)
	if live {
		t.Fatal("sub-coverage source reported live features")
	}
	for _, v := range ext.SpeedGrid {
		if v != 8 {
			t.Fatalf("sub-coverage source altered the prior: cell = %v", v)
		}
	}
}

func TestFeatureSourceMergeCached(t *testing.T) {
	fs, s, _ := featureFixture(t, FeatureConfig{MinCoverage: 1e-9, Registry: obs.NewRegistry()})
	s.Record(0, 120, 60, 100)
	s.Publish(100)
	a, _ := fs.External(100)
	b, _ := fs.External(101)
	if &a.SpeedGrid[0] != &b.SpeedGrid[0] {
		t.Fatal("same snapshot + prior produced two merge allocations")
	}
	// Weather must still track the request, not the cached matrix.
	if a.Weather == b.Weather {
		t.Fatalf("weather frozen by the merge cache: %d vs %d", a.Weather, b.Weather)
	}
	// A new snapshot invalidates the cached matrix.
	s.Record(0, 600, 60, 110)
	s.Publish(110)
	c, _ := fs.External(110)
	if &c.SpeedGrid[0] == &a.SpeedGrid[0] {
		t.Fatal("stale merged matrix served after a new snapshot")
	}
}
