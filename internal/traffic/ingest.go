package traffic

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"deepod/internal/geo"
	"deepod/internal/mapmatch"
	"deepod/internal/obs"
	"deepod/internal/traj"
)

// Probe is one GPS report on the firehose wire (NDJSON body of
// POST /probes). T is sim-seconds since the dataset base.
type Probe struct {
	Vehicle string  `json:"vehicle"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	T       float64 `json:"t"`
}

// IngestConfig tunes the probe ingest pipeline.
type IngestConfig struct {
	// Workers is the matching worker count (default 1). Each worker owns
	// its vehicles exclusively (hash routing), so matching never locks.
	Workers int
	// QueueDepth is the per-worker queue capacity in batches (default 64).
	// Full queues shed: the firehose must never apply backpressure to the
	// serving process.
	QueueDepth int
	// Tracker configures per-vehicle session management.
	Tracker mapmatch.TrackerConfig
	// SweepEverySec is how often (sim time) each worker evicts idle
	// vehicle sessions (default the tracker TTL).
	SweepEverySec float64
	// Registry receives tte_traffic_* metrics (default obs.Default()).
	Registry *obs.Registry
}

func (c *IngestConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SweepEverySec <= 0 {
		c.SweepEverySec = c.Tracker.SessionTTLSec
		if c.SweepEverySec <= 0 {
			c.SweepEverySec = 300
		}
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
}

// IngestStats is a point-in-time counter summary for /debug/traffic.
type IngestStats struct {
	Accepted   uint64 `json:"probes_accepted"`
	Shed       uint64 `json:"probes_shed"`
	OutOfOrder uint64 `json:"probes_out_of_order"`
	Duplicate  uint64 `json:"probes_duplicate"`
	Sessions   int    `json:"sessions"`
	Evicted    uint64 `json:"sessions_evicted"`
	Workers    int    `json:"workers"`
}

// Ingestor fans probe batches out to matching workers by vehicle hash.
// Each worker runs its vehicles' map-matching sessions and feeds the
// emitted per-segment observations into the store.
// ingestWork is one queue element: a probe batch, or a flush request when
// ack is non-nil.
type ingestWork struct {
	probes []Probe
	ack    chan<- struct{}
}

type Ingestor struct {
	cfg   IngestConfig
	store *Store
	chans []chan ingestWork
	wg    sync.WaitGroup

	accepted   atomic.Uint64
	shed       atomic.Uint64
	outOfOrder atomic.Uint64
	duplicate  atomic.Uint64
	sessions   []atomic.Uint64 // per worker: live sessions (low) — read loosely
	evicted    []atomic.Uint64

	mAccepted *obs.Counter
	mShed     *obs.Counter
	mOOO      *obs.Counter
	mDup      *obs.Counter
	mSessions *obs.Gauge
}

// NewIngestor starts the worker pool. Close releases it.
func NewIngestor(m *mapmatch.Matcher, store *Store, cfg IngestConfig) (*Ingestor, error) {
	cfg.fill()
	if m == nil || store == nil {
		return nil, fmt.Errorf("traffic: ingestor needs a matcher and a store")
	}
	reg := cfg.Registry
	reg.Help("tte_traffic_probes_total", "GPS probes received on the firehose, by result.")
	reg.Help("tte_traffic_sessions", "Live vehicle map-matching sessions.")
	in := &Ingestor{
		cfg:       cfg,
		store:     store,
		chans:     make([]chan ingestWork, cfg.Workers),
		sessions:  make([]atomic.Uint64, cfg.Workers),
		evicted:   make([]atomic.Uint64, cfg.Workers),
		mAccepted: reg.Counter("tte_traffic_probes_total", "result", "accepted"),
		mShed:     reg.Counter("tte_traffic_probes_total", "result", "shed"),
		mOOO:      reg.Counter("tte_traffic_probes_total", "result", "out_of_order"),
		mDup:      reg.Counter("tte_traffic_probes_total", "result", "duplicate"),
		mSessions: reg.Gauge("tte_traffic_sessions"),
	}
	for w := 0; w < cfg.Workers; w++ {
		in.chans[w] = make(chan ingestWork, cfg.QueueDepth)
		in.wg.Add(1)
		go in.work(w, m)
	}
	return in, nil
}

// Ingest routes a probe batch to the matching workers and returns how many
// probes were accepted vs shed. The batch is not retained; per-worker
// sub-batches are copied out. Never blocks: a full worker queue sheds that
// worker's share of the batch.
func (in *Ingestor) Ingest(batch []Probe) (accepted, shed int) {
	if len(batch) == 0 {
		return 0, 0
	}
	nw := uint32(len(in.chans))
	if nw == 1 {
		return in.send(0, append([]Probe(nil), batch...))
	}
	parts := make([][]Probe, nw)
	for _, p := range batch {
		w := vehicleHash(p.Vehicle) % nw
		parts[w] = append(parts[w], p)
	}
	for w, part := range parts {
		if len(part) == 0 {
			continue
		}
		a, s := in.send(w, part)
		accepted += a
		shed += s
	}
	return accepted, shed
}

func (in *Ingestor) send(w int, part []Probe) (accepted, shed int) {
	select {
	case in.chans[w] <- ingestWork{probes: part}:
		in.accepted.Add(uint64(len(part)))
		in.mAccepted.Add(uint64(len(part)))
		return len(part), 0
	default:
		in.shed.Add(uint64(len(part)))
		in.mShed.Add(uint64(len(part)))
		return 0, len(part)
	}
}

// Drain blocks until every batch queued before the call has been matched
// and recorded, then force-publishes a snapshot. Test and benchmark hook —
// unlike Ingest it may block on full queues.
func (in *Ingestor) Drain() {
	done := make(chan struct{}, len(in.chans))
	for _, ch := range in.chans {
		ch <- ingestWork{ack: done}
	}
	for range in.chans {
		<-done
	}
	in.store.Publish(in.store.HighWaterSec())
}

// Close stops the workers. Queued batches are dropped.
func (in *Ingestor) Close() {
	for _, ch := range in.chans {
		close(ch)
	}
	in.wg.Wait()
}

// Stats summarizes the ingest pipeline.
func (in *Ingestor) Stats() IngestStats {
	st := IngestStats{
		Accepted:   in.accepted.Load(),
		Shed:       in.shed.Load(),
		OutOfOrder: in.outOfOrder.Load(),
		Duplicate:  in.duplicate.Load(),
		Workers:    in.cfg.Workers,
	}
	for w := range in.sessions {
		st.Sessions += int(in.sessions[w].Load())
		st.Evicted += in.evicted[w].Load()
	}
	return st
}

// Status summarizes the whole live pipeline — ingest counters plus the
// store's coverage and epoch — as the /debug/traffic payload and the
// /readyz warm-state detail. "warm" means the published snapshot covers at
// least one edge: estimates are flowing through the live channel rather
// than the prior.
func (in *Ingestor) Status() map[string]any {
	ig := in.Stats()
	st := in.store.Stats()
	return map[string]any{
		"ingest": ig,
		"store":  st,
		"warm":   st.Covered > 0,
	}
}

func (in *Ingestor) work(w int, m *mapmatch.Matcher) {
	defer in.wg.Done()
	tr := m.NewTracker(in.cfg.Tracker)
	lastSweep := 0.0
	maxT := 0.0
	for wk := range in.chans[w] {
		if wk.ack != nil {
			wk.ack <- struct{}{}
			continue
		}
		batch := wk.probes
		for i := range batch {
			p := &batch[i]
			obsList, err := tr.Advance(p.Vehicle, traj.GPSPoint{Pos: geo.Point{X: p.X, Y: p.Y}, T: p.T})
			switch err {
			case nil:
			case mapmatch.ErrOutOfOrder:
				in.outOfOrder.Add(1)
				in.mOOO.Inc()
				continue
			case mapmatch.ErrDuplicate:
				in.duplicate.Add(1)
				in.mDup.Inc()
				continue
			default:
				continue
			}
			if p.T > maxT {
				maxT = p.T
			}
			for _, o := range obsList {
				in.store.Record(o.Edge, o.Meters, o.ExitSec-o.EnterSec, o.ExitSec)
			}
		}
		if maxT-lastSweep >= in.cfg.SweepEverySec {
			tr.Sweep(maxT)
			lastSweep = maxT
		}
		in.sessions[w].Store(uint64(tr.Sessions()))
		in.evicted[w].Store(tr.Evicted())
		in.mSessions.Set(in.sessionsTotal())
		in.store.MaybePublish(maxT)
	}
}

func (in *Ingestor) sessionsTotal() float64 {
	var n uint64
	for w := range in.sessions {
		n += in.sessions[w].Load()
	}
	return float64(n)
}

// vehicleHash is FNV-1a over the vehicle ID: the worker routing must be
// deterministic so a vehicle's session always lives on one goroutine.
func vehicleHash(v string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return h
}

// staleness helper shared by the feature source and /debug endpoint.
func staleness(departSec, asOfSec float64) float64 {
	return math.Abs(departSec - asOfSec)
}
