// Package traffic is the live traffic state of the serving system: GPS
// probes POSTed to the firehose endpoint are incrementally map-matched into
// per-segment speed observations (internal/mapmatch sessions) which
// accumulate in a sharded per-edge rolling speed store. The serve path
// reads copy-on-read snapshots of the store and merges them over the
// model's training-time congestion prior, so estimates react to conditions
// the model has never seen — the real-time counterpart of the paper's
// traffic-condition feature (§4.5), which is otherwise frozen at training
// time.
//
// All timestamps in this package are sim-seconds (seconds since the
// dataset's base time), matching probe payloads and OD departure times.
// Freshness is therefore judged against the store's high-water probe time,
// not the wall clock: replayed historical data and live feeds both work.
package traffic

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"deepod/internal/obs"
	"deepod/internal/roadnet"
)

// StoreConfig tunes the per-edge rolling speed store.
type StoreConfig struct {
	// WindowSec is the width of one aggregation window (default 60).
	WindowSec float64
	// Windows is the ring length per edge (default 5): observations older
	// than Windows×WindowSec are evicted by ring rotation.
	Windows int
	// Shards is the stripe count for write locking, rounded up to a power
	// of two (default 16).
	Shards int
	// Decay is the per-window age discount applied when aggregating the
	// ring into a speed (default 0.7): the freshest window has weight 1,
	// one window back 0.7, then 0.49, …
	Decay float64
	// PublishEverySec is the minimum sim-time between snapshot rebuilds
	// (default 5).
	PublishEverySec float64
	// EpochDelta is the mean relative speed change (vs the last epoch's
	// reference) that bumps the snapshot epoch and thereby invalidates
	// estimate-cache entries (default 0.05).
	EpochDelta float64
	// Registry receives tte_traffic_* metrics (default obs.Default()).
	Registry *obs.Registry
}

func (c *StoreConfig) fill() {
	if c.WindowSec <= 0 {
		c.WindowSec = 60
	}
	if c.Windows <= 0 {
		c.Windows = 5
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards++
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.7
	}
	if c.PublishEverySec <= 0 {
		c.PublishEverySec = 5
	}
	if c.EpochDelta <= 0 {
		c.EpochDelta = 0.05
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
}

// Snapshot is an immutable copy-on-read view of the store, published
// atomically; readers never block writers.
type Snapshot struct {
	// Epoch increments only when aggregate conditions moved by more than
	// EpochDelta since the last bump — the estimate cache keys on it.
	Epoch uint64
	// AsOfSec is the store's high-water probe time at publish.
	AsOfSec float64
	// SpeedMPS is the decayed mean speed per edge; 0 = no recent data.
	SpeedMPS []float32
	// Covered counts edges with recent data.
	Covered int
}

// Coverage returns the fraction of edges with recent data.
func (sn *Snapshot) Coverage() float64 {
	if sn == nil || len(sn.SpeedMPS) == 0 {
		return 0
	}
	return float64(sn.Covered) / float64(len(sn.SpeedMPS))
}

// Speed returns the live speed of an edge and whether data exists.
func (sn *Snapshot) Speed(e roadnet.EdgeID) (float64, bool) {
	if sn == nil || int(e) >= len(sn.SpeedMPS) || sn.SpeedMPS[e] == 0 {
		return 0, false
	}
	return float64(sn.SpeedMPS[e]), true
}

type storeShard struct {
	mu sync.Mutex
	_  [6]uint64 // pad to a cache line so shard locks don't false-share
}

// Store accumulates per-segment speed observations into a ring of
// time-decayed windows per edge. Writes take one striped mutex; reads go
// through atomically published snapshots.
type Store struct {
	cfg    StoreConfig
	nedges int
	mask   uint32
	shards []storeShard

	// Dense per-edge state, guarded by the edge's shard lock. meters/secs
	// are edge-major rings: edge e's window slot w lives at e*Windows+w.
	lastWin []int64
	meters  []float64
	secs    []float64

	highWater atomic.Uint64 // float64 bits; max observation time seen
	recorded  atomic.Uint64
	late      atomic.Uint64

	snap       atomic.Pointer[Snapshot]
	publishing atomic.Bool
	lastPub    atomic.Uint64 // float64 bits
	epoch      atomic.Uint64
	publishes  atomic.Uint64
	epochMu    sync.Mutex
	epochRef   []float32 // speeds at the last epoch bump

	mRecorded  *obs.Counter
	mLate      *obs.Counter
	mPublishes *obs.Counter
	mEpoch     *obs.Gauge
	mCovered   *obs.Gauge
	mHighWater *obs.Gauge
}

// NewStore builds a store over the graph's edge set.
func NewStore(g *roadnet.Graph, cfg StoreConfig) (*Store, error) {
	cfg.fill()
	n := g.NumEdges()
	if n == 0 {
		return nil, fmt.Errorf("traffic: graph has no edges")
	}
	reg := cfg.Registry
	reg.Help("tte_traffic_obs_total", "Per-segment speed observations recorded, by result.")
	reg.Help("tte_traffic_publishes_total", "Store snapshot rebuilds.")
	reg.Help("tte_traffic_epoch", "Current traffic epoch (bumps when conditions shift).")
	reg.Help("tte_traffic_edges_covered", "Edges with recent speed data in the published snapshot.")
	reg.Help("tte_traffic_high_water_sec", "Newest observation time seen, sim-seconds.")
	s := &Store{
		cfg:        cfg,
		nedges:     n,
		mask:       uint32(cfg.Shards - 1),
		shards:     make([]storeShard, cfg.Shards),
		lastWin:    make([]int64, n),
		meters:     make([]float64, n*cfg.Windows),
		secs:       make([]float64, n*cfg.Windows),
		mRecorded:  reg.Counter("tte_traffic_obs_total", "result", "recorded"),
		mLate:      reg.Counter("tte_traffic_obs_total", "result", "late"),
		mPublishes: reg.Counter("tte_traffic_publishes_total"),
		mEpoch:     reg.Gauge("tte_traffic_epoch"),
		mCovered:   reg.Gauge("tte_traffic_edges_covered"),
		mHighWater: reg.Gauge("tte_traffic_high_water_sec"),
	}
	for i := range s.lastWin {
		s.lastWin[i] = math.MinInt64 / 2 // "never written"
	}
	return s, nil
}

// Record accumulates one observation: the vehicle covered meters on edge e
// in secs seconds, ending at sim-time atSec. Zero meters with positive secs
// is a valid 0 m/s congestion observation. Observations older than the ring
// are dropped and counted as late.
func (s *Store) Record(e roadnet.EdgeID, meters, secs, atSec float64) {
	if int(e) >= s.nedges || secs <= 0 || meters < 0 {
		return
	}
	W := int64(s.cfg.Windows)
	win := int64(atSec / s.cfg.WindowSec)
	sh := &s.shards[uint32(e)&s.mask]
	sh.mu.Lock()
	lw := s.lastWin[e]
	switch {
	case win > lw:
		// Rotating forward: zero every slot the ring skipped past.
		from := win - W + 1
		if lw+1 > from {
			from = lw + 1
		}
		for x := from; x <= win; x++ {
			slot := int(e)*s.cfg.Windows + int(((x%W)+W)%W)
			s.meters[slot], s.secs[slot] = 0, 0
		}
		s.lastWin[e] = win
	case win <= lw-W:
		sh.mu.Unlock()
		s.late.Add(1)
		s.mLate.Inc()
		return
	}
	slot := int(e)*s.cfg.Windows + int(((win%W)+W)%W)
	s.meters[slot] += meters
	s.secs[slot] += secs
	sh.mu.Unlock()
	s.recorded.Add(1)
	s.mRecorded.Inc()
	s.maxHighWater(atSec)
}

func (s *Store) maxHighWater(t float64) {
	for {
		old := s.highWater.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if s.highWater.CompareAndSwap(old, math.Float64bits(t)) {
			s.mHighWater.Set(t)
			return
		}
	}
}

// HighWaterSec returns the newest observation time seen.
func (s *Store) HighWaterSec() float64 {
	return math.Float64frombits(s.highWater.Load())
}

// Snapshot returns the last published view (nil before the first publish).
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// MaybePublish rebuilds the snapshot if PublishEverySec has elapsed since
// the last publish (in sim time). Safe to call from every ingest worker on
// every batch: at most one rebuild runs at a time and the rest return
// immediately.
func (s *Store) MaybePublish(nowSec float64) {
	last := math.Float64frombits(s.lastPub.Load())
	if s.snap.Load() != nil && nowSec-last < s.cfg.PublishEverySec {
		return
	}
	if !s.publishing.CompareAndSwap(false, true) {
		return
	}
	defer s.publishing.Store(false)
	s.publish(nowSec)
}

// Publish forces an immediate snapshot rebuild (tests, shutdown flushes).
func (s *Store) Publish(nowSec float64) { s.publish(nowSec) }

func (s *Store) publish(nowSec float64) {
	W := s.cfg.Windows
	curWin := int64(nowSec / s.cfg.WindowSec)
	speeds := make([]float32, s.nedges)
	covered := 0
	// Scan shard by shard so each lock is held for ~1/Shards of the edges.
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for e := si; e < s.nedges; e += len(s.shards) {
			lw := s.lastWin[e]
			if lw <= curWin-int64(W) {
				continue // everything in the ring has aged out
			}
			var wm, ws float64
			oldest := curWin - int64(W) + 1
			if lw-int64(W)+1 > oldest {
				oldest = lw - int64(W) + 1
			}
			for x := oldest; x <= lw; x++ {
				slot := e*W + int(((x%int64(W))+int64(W))%int64(W))
				if s.secs[slot] <= 0 {
					continue
				}
				weight := math.Pow(s.cfg.Decay, float64(curWin-x))
				wm += weight * s.meters[slot]
				ws += weight * s.secs[slot]
			}
			if ws > 0 {
				v := float32(wm / ws)
				if v <= 0 {
					// A pure 0 m/s ring still counts as covered data; keep
					// it distinguishable from "no data".
					v = 1e-6
				}
				speeds[e] = v
				covered++
			}
		}
		sh.mu.Unlock()
	}

	// The edge index maps each undirected street to shards by edge ID, so
	// sharded scans above see a consistent-enough view: windows are only
	// appended to, never mutated in place.
	s.epochMu.Lock()
	epoch := s.epoch.Load()
	if s.epochShifted(speeds, covered) {
		epoch = s.epoch.Add(1)
		s.epochRef = speeds
	}
	s.epochMu.Unlock()

	s.snap.Store(&Snapshot{Epoch: epoch, AsOfSec: s.HighWaterSec(), SpeedMPS: speeds, Covered: covered})
	s.lastPub.Store(math.Float64bits(nowSec))
	s.publishes.Add(1)
	s.mPublishes.Inc()
	s.mEpoch.Set(float64(epoch))
	s.mCovered.Set(float64(covered))
}

// epochShifted reports whether aggregate conditions moved enough from the
// last epoch's reference to warrant invalidating cached estimates. Called
// with epochMu held.
func (s *Store) epochShifted(speeds []float32, covered int) bool {
	if covered == 0 {
		return false
	}
	if s.epochRef == nil {
		return true // first data is always a shift from "nothing"
	}
	var rel float64
	n := 0
	for e, v := range speeds {
		ref := s.epochRef[e]
		switch {
		case v == 0 && ref == 0:
			continue
		case v == 0 || ref == 0:
			rel++ // coverage change counts as full relative shift
		default:
			rel += math.Abs(float64(v-ref)) / float64(ref)
		}
		n++
	}
	return n > 0 && rel/float64(n) > s.cfg.EpochDelta
}

// StoreStats is a point-in-time counter summary for /debug/traffic.
type StoreStats struct {
	Recorded     uint64  `json:"observations"`
	Late         uint64  `json:"late_observations"`
	Publishes    uint64  `json:"publishes"`
	Epoch        uint64  `json:"epoch"`
	Covered      int     `json:"edges_covered"`
	Edges        int     `json:"edges_total"`
	Coverage     float64 `json:"coverage"`
	HighWaterSec float64 `json:"high_water_sec"`
}

// Stats summarizes the store.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Recorded:     s.recorded.Load(),
		Late:         s.late.Load(),
		Publishes:    s.publishes.Load(),
		Epoch:        s.epoch.Load(),
		Edges:        s.nedges,
		HighWaterSec: s.HighWaterSec(),
	}
	if sn := s.snap.Load(); sn != nil {
		st.Covered = sn.Covered
		st.Coverage = sn.Coverage()
	}
	return st
}
