package traffic

import (
	"fmt"
	"testing"

	"deepod/internal/mapmatch"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
)

func testMatcher(t testing.TB, g *roadnet.Graph) *mapmatch.Matcher {
	t.Helper()
	m, err := mapmatch.New(g, mapmatch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// probesAlongEdge fabricates a vehicle driving edge e end to end at the
// given speed, sampled every periodSec.
func probesAlongEdge(g *roadnet.Graph, vehicle string, e roadnet.EdgeID, speed, startSec, periodSec float64) []Probe {
	length := g.Edges[e].Length
	var ps []Probe
	for d := 0.0; d <= length; d += speed * periodSec {
		p := g.PointAlongEdge(e, d/length)
		ps = append(ps, Probe{Vehicle: vehicle, X: p.X, Y: p.Y, T: startSec + d/speed})
	}
	return ps
}

func TestIngestorEndToEnd(t *testing.T) {
	g := testGraph(t)
	m := testMatcher(t, g)
	s, err := NewStore(g, StoreConfig{WindowSec: 120, Windows: 4, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(m, s, IngestConfig{Workers: 2, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// A fleet of vehicles crawling distinct edges at 4 m/s.
	var batch []Probe
	edges := []roadnet.EdgeID{0, 5, 9, 14}
	for i, e := range edges {
		batch = append(batch, probesAlongEdge(g, fmt.Sprintf("veh-%d", i), e, 4, 10, 5)...)
	}
	acc, shed := in.Ingest(batch)
	if shed != 0 || acc != len(batch) {
		t.Fatalf("accepted %d shed %d of %d", acc, shed, len(batch))
	}
	in.Drain()

	sn := s.Snapshot()
	if sn == nil {
		t.Fatal("no snapshot after drain")
	}
	if sn.Covered == 0 {
		t.Fatal("no edges covered after ingesting a fleet")
	}
	// At least one driven street must read close to the driven speed. The
	// matcher may settle on an edge's twin, so scan all covered edges.
	ok := false
	for e := range sn.SpeedMPS {
		if v, has := sn.Speed(roadnet.EdgeID(e)); has && v > 2 && v < 8 {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("no covered edge near the driven 4 m/s")
	}
	st := in.Stats()
	if st.Accepted != uint64(len(batch)) {
		t.Fatalf("stats accepted = %d, want %d", st.Accepted, len(batch))
	}
	if st.Sessions == 0 {
		t.Fatal("no live sessions after ingest")
	}
}

func TestIngestorShedsWhenSaturated(t *testing.T) {
	g := testGraph(t)
	m := testMatcher(t, g)
	s, err := NewStore(g, StoreConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(m, s, IngestConfig{Workers: 1, QueueDepth: 1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the single worker with a flush handshake we never complete…
	// no: flushes are internal. Instead saturate with many batches while the
	// worker grinds through the first ones; with depth 1 most must shed.
	p := g.PointAlongEdge(0, 0.5)
	var shedTotal int
	for i := 0; i < 200; i++ {
		batch := make([]Probe, 50)
		for j := range batch {
			batch[j] = Probe{Vehicle: fmt.Sprintf("v%d-%d", i, j), X: p.X, Y: p.Y, T: float64(i)}
		}
		_, shed := in.Ingest(batch)
		shedTotal += shed
	}
	in.Drain()
	in.Close()
	st := in.Stats()
	if st.Shed == 0 || shedTotal == 0 {
		t.Fatal("queue-depth-1 ingestor never shed under a 10k-probe burst")
	}
	if st.Accepted+st.Shed != 200*50 {
		t.Fatalf("accepted %d + shed %d != 10000", st.Accepted, st.Shed)
	}
}

func TestIngestorRoutesVehiclesConsistently(t *testing.T) {
	// The same vehicle must always hash to the same worker, or its session
	// state would split across trackers.
	for _, v := range []string{"a", "veh-42", "迷路", ""} {
		w1 := vehicleHash(v) % 4
		for i := 0; i < 8; i++ {
			if w2 := vehicleHash(v) % 4; w2 != w1 {
				t.Fatalf("vehicle %q routed to %d then %d", v, w1, w2)
			}
		}
	}
}

func TestIngestorCountsBadTimestamps(t *testing.T) {
	g := testGraph(t)
	m := testMatcher(t, g)
	s, err := NewStore(g, StoreConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(m, s, IngestConfig{Workers: 1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	p := g.PointAlongEdge(0, 0.5)
	in.Ingest([]Probe{
		{Vehicle: "v", X: p.X, Y: p.Y, T: 100},
		{Vehicle: "v", X: p.X, Y: p.Y, T: 100}, // duplicate
		{Vehicle: "v", X: p.X, Y: p.Y, T: 50},  // out of order
		{Vehicle: "v", X: p.X, Y: p.Y, T: 110},
	})
	in.Drain()
	st := in.Stats()
	if st.Duplicate != 1 || st.OutOfOrder != 1 {
		t.Fatalf("duplicate = %d out-of-order = %d, want 1/1", st.Duplicate, st.OutOfOrder)
	}
}
