package traffic

import (
	"fmt"
	"sync/atomic"

	"deepod/internal/geo"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// FeatureConfig tunes how live edge speeds become serving-time model
// features.
type FeatureConfig struct {
	// CellMeters must match the speed-grid cell size the model was trained
	// with (default 250): the live layer overwrites cells of the same
	// matrix the OD encoder consumes.
	CellMeters float64
	// MinCoverage is the store coverage below which the live layer is
	// ignored entirely and the prior served as-is (default 0.02): a handful
	// of probes must not distort city-wide features.
	MinCoverage float64
	// StaleAfterSec bounds |departure − newest probe| (default 600): beyond
	// it the live view says nothing about the requested departure time and
	// the prior is served as-is. Covers both directions — a store that
	// stopped receiving probes, and a request for a far-future departure.
	StaleAfterSec float64
	// Registry receives tte_traffic_* metrics (default obs.Default()).
	Registry *obs.Registry
}

func (c *FeatureConfig) fill() {
	if c.CellMeters <= 0 {
		c.CellMeters = 250
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.02
	}
	if c.StaleAfterSec <= 0 {
		c.StaleAfterSec = 600
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
}

// PriorFunc returns the training-time external features (congestion prior)
// for a departure time — typically citysim.SpeedGridder.External or a
// checkpoint-loaded equivalent.
type PriorFunc func(departSec float64) *traj.ExternalFeatures

// mergedEntry caches one merged matrix, keyed by the identity of its
// inputs: snapshots are immutable and the prior gridder returns one cached
// matrix per period, so data-pointer equality is exact. Only the matrix is
// cached — the wrapper (whose Weather may change between grid periods) is
// rebuilt per request.
type mergedEntry struct {
	snap      *Snapshot
	priorGrid *float64 // &prior.SpeedGrid[0]
	grid      []float64
}

// FeatureSource feeds live traffic into the model's traffic-condition
// feature: per-cell mean speeds from the store snapshot overwrite the
// matching cells of the training-time prior matrix, and the result is
// handed to the OD encoder as the request's ExternalFeatures. When the
// store is cold or stale relative to the requested departure, the prior is
// served unchanged — estimates degrade to exactly the pre-traffic behavior,
// never to garbage.
type FeatureSource struct {
	cfg   FeatureConfig
	store *Store
	prior PriorFunc
	grid  *geo.Grid
	// cellEdges replicates the trainer's SpeedGridder mapping so live cell
	// means aggregate the same edge sets the prior's cells do.
	cellEdges [][]roadnet.EdgeID

	cached atomic.Pointer[mergedEntry]

	mLive     *obs.Counter
	mPrior    *obs.Counter
	mMerges   *obs.Counter
	mCoverage *obs.Gauge
}

// NewFeatureSource builds a source over the graph's cell grid. prior must
// be non-nil; store may be warming.
func NewFeatureSource(g *roadnet.Graph, store *Store, prior PriorFunc, cfg FeatureConfig) (*FeatureSource, error) {
	cfg.fill()
	if store == nil || prior == nil {
		return nil, fmt.Errorf("traffic: feature source needs a store and a prior")
	}
	grid, err := geo.NewGrid(g.Bounds(), cfg.CellMeters)
	if err != nil {
		return nil, fmt.Errorf("traffic: feature grid: %w", err)
	}
	fs := &FeatureSource{
		cfg:       cfg,
		store:     store,
		prior:     prior,
		grid:      grid,
		cellEdges: make([][]roadnet.EdgeID, grid.NumCells()),
	}
	for eid := range g.Edges {
		a, b := g.EdgePoints(roadnet.EdgeID(eid))
		steps := int(geo.Dist(a, b)/cfg.CellMeters) + 1
		seen := map[int]bool{}
		for s := 0; s <= steps; s++ {
			ci := grid.CellIndex(geo.Lerp(a, b, float64(s)/float64(steps)))
			if !seen[ci] {
				seen[ci] = true
				fs.cellEdges[ci] = append(fs.cellEdges[ci], roadnet.EdgeID(eid))
			}
		}
	}
	reg := cfg.Registry
	reg.Help("tte_traffic_features_total", "External features served, by source (live = merged, prior = fallback).")
	reg.Help("tte_traffic_merges_total", "Live-over-prior matrix merges computed (cache misses).")
	reg.Help("tte_traffic_feature_coverage", "Store coverage at the last feature request.")
	fs.mLive = reg.Counter("tte_traffic_features_total", "source", "live")
	fs.mPrior = reg.Counter("tte_traffic_features_total", "source", "prior")
	fs.mMerges = reg.Counter("tte_traffic_merges_total")
	fs.mCoverage = reg.Gauge("tte_traffic_feature_coverage")
	return fs, nil
}

// Epoch returns the store's current traffic epoch for estimate-cache keys
// (0 while no snapshot is published, matching the no-traffic behavior).
func (fs *FeatureSource) Epoch() uint64 {
	if sn := fs.store.Snapshot(); sn != nil {
		return sn.Epoch
	}
	return 0
}

// External returns the features for a departure: the prior with live cell
// speeds merged in, or the prior untouched when the store is cold, stale
// for this departure, or dimensioned differently from the model's grid.
// The second return reports which path answered — true when live speeds
// were merged, false on the prior fallback — so the flight recorder can
// stamp each served estimate with the feature provenance replay needs.
// Safe for concurrent use by the inference workers.
func (fs *FeatureSource) External(departSec float64) (*traj.ExternalFeatures, bool) {
	p := fs.prior(departSec)
	sn := fs.store.Snapshot()
	if sn == nil {
		fs.mPrior.Inc()
		return p, false
	}
	fs.mCoverage.Set(sn.Coverage())
	if sn.Coverage() < fs.cfg.MinCoverage ||
		staleness(departSec, sn.AsOfSec) > fs.cfg.StaleAfterSec ||
		p == nil || p.GridRows != fs.grid.Rows || p.GridCols != fs.grid.Cols ||
		len(p.SpeedGrid) != len(fs.cellEdges) || len(p.SpeedGrid) == 0 {
		fs.mPrior.Inc()
		return p, false
	}
	grid := fs.mergedGrid(sn, p)
	fs.mLive.Inc()
	return &traj.ExternalFeatures{
		Weather:   p.Weather,
		SpeedGrid: grid,
		GridRows:  p.GridRows,
		GridCols:  p.GridCols,
	}, true
}

func (fs *FeatureSource) mergedGrid(sn *Snapshot, p *traj.ExternalFeatures) []float64 {
	if e := fs.cached.Load(); e != nil && e.snap == sn && e.priorGrid == &p.SpeedGrid[0] {
		return e.grid
	}
	grid := make([]float64, len(p.SpeedGrid))
	copy(grid, p.SpeedGrid)
	for ci, edges := range fs.cellEdges {
		var sum float64
		n := 0
		for _, e := range edges {
			if v, ok := sn.Speed(e); ok {
				sum += v
				n++
			}
		}
		if n > 0 {
			grid[ci] = sum / float64(n)
		}
	}
	fs.cached.Store(&mergedEntry{snap: sn, priorGrid: &p.SpeedGrid[0], grid: grid})
	fs.mMerges.Inc()
	return grid
}
