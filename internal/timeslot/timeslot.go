// Package timeslot implements the paper's time discretization (§4.2):
// timestamps are projected onto discrete time slots of size Δt relative to
// a base timestamp t0 (Formula 2), with a remainder preserving the exact
// instant (Formula 3). Slots wrap onto a one-week temporal graph of
// 7·(day/Δt) nodes (Figure 5b), capturing weekly periodicity.
package timeslot

import (
	"fmt"
	"time"
)

// SecondsPerDay and SecondsPerWeek are plain clock constants.
const (
	SecondsPerDay  = 24 * 60 * 60
	SecondsPerWeek = 7 * SecondsPerDay
)

// Slotter projects timestamps (seconds since t0) onto time slots.
type Slotter struct {
	// Delta is the slot size Δt in seconds (the paper's default is 5 min).
	Delta float64
	// SlotsPerDay and SlotsPerWeek are derived from Delta.
	SlotsPerDay  int
	SlotsPerWeek int
}

// New returns a Slotter for slot size delta. delta must evenly divide one
// day so the week wrap of the temporal graph is exact.
func New(delta time.Duration) (*Slotter, error) {
	sec := delta.Seconds()
	if sec <= 0 {
		return nil, fmt.Errorf("timeslot: Δt must be positive, got %v", delta)
	}
	perDay := float64(SecondsPerDay) / sec
	if perDay != float64(int(perDay)) {
		return nil, fmt.Errorf("timeslot: Δt %v must evenly divide one day", delta)
	}
	return &Slotter{
		Delta:        sec,
		SlotsPerDay:  int(perDay),
		SlotsPerWeek: 7 * int(perDay),
	}, nil
}

// MustNew is New but panics on error; for constants in tests and examples.
func MustNew(delta time.Duration) *Slotter {
	s, err := New(delta)
	if err != nil {
		panic(err)
	}
	return s
}

// Slot returns the absolute slot index tp = ⌊(t−t0)/Δt⌋ (Formula 2).
// t is seconds since the base timestamp and must be non-negative (the paper
// requires t0 ≤ every timestamp in the data).
func (s *Slotter) Slot(t float64) int {
	if t < 0 {
		panic(fmt.Sprintf("timeslot: timestamp %v is before the base timestamp", t))
	}
	return int(t / s.Delta)
}

// Remainder returns tr = t − t0 − tp·Δt ∈ [0, Δt) (Formula 3).
func (s *Slotter) Remainder(t float64) float64 {
	return t - float64(s.Slot(t))*s.Delta
}

// Split returns both the slot and the remainder of t.
func (s *Slotter) Split(t float64) (slot int, remainder float64) {
	slot = s.Slot(t)
	return slot, t - float64(slot)*s.Delta
}

// WeekSlot maps an absolute slot index onto the temporal graph node
// tp % SlotsPerWeek (the paper's tp % 2016 for Δt = 5 min).
func (s *Slotter) WeekSlot(slot int) int {
	if slot < 0 {
		panic(fmt.Sprintf("timeslot: negative slot %d", slot))
	}
	return slot % s.SlotsPerWeek
}

// NormalizedRemainder scales a remainder to [0, 1) so it can enter a neural
// network alongside other unit-scale features.
func (s *Slotter) NormalizedRemainder(t float64) float64 {
	return s.Remainder(t) / s.Delta
}

// SlotSpan returns how many slots the closed interval [t1, t2] touches:
// Δd = tp(t2) − tp(t1) + 1 (Formula 4).
func (s *Slotter) SlotSpan(t1, t2 float64) int {
	if t2 < t1 {
		panic(fmt.Sprintf("timeslot: interval end %v before start %v", t2, t1))
	}
	return s.Slot(t2) - s.Slot(t1) + 1
}

// DayOfWeek returns the zero-based day (0=the week's first day) of a week
// slot.
func (s *Slotter) DayOfWeek(weekSlot int) int { return weekSlot / s.SlotsPerDay }

// SlotOfDay returns the position of a week slot within its day.
func (s *Slotter) SlotOfDay(weekSlot int) int { return weekSlot % s.SlotsPerDay }
