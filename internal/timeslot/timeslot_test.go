package timeslot

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero Δt accepted")
	}
	if _, err := New(-time.Minute); err == nil {
		t.Fatal("negative Δt accepted")
	}
	if _, err := New(7 * time.Minute); err == nil {
		t.Fatal("Δt not dividing a day accepted")
	}
	s, err := New(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's canonical counts: 288 slots/day, 2016 slots/week.
	if s.SlotsPerDay != 288 || s.SlotsPerWeek != 2016 {
		t.Fatalf("5-minute slots: perDay=%d perWeek=%d", s.SlotsPerDay, s.SlotsPerWeek)
	}
}

func TestSlotAndRemainder(t *testing.T) {
	s := MustNew(5 * time.Minute)
	// Formula 2/3: t = 17 minutes → slot 3, remainder 120 s.
	slot, rem := s.Split(17 * 60)
	if slot != 3 || rem != 120 {
		t.Fatalf("Split(17min) = (%d, %v)", slot, rem)
	}
	if s.Slot(0) != 0 || s.Remainder(0) != 0 {
		t.Fatal("base timestamp should map to slot 0, remainder 0")
	}
	if nr := s.NormalizedRemainder(17 * 60); nr != 120.0/300.0 {
		t.Fatalf("NormalizedRemainder = %v", nr)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative timestamp accepted")
		}
	}()
	s.Slot(-1)
}

// Property: t == slot*Δt + remainder and 0 ≤ remainder < Δt (Formulas 2-3).
func TestSplitRoundTrip(t *testing.T) {
	s := MustNew(15 * time.Minute)
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := rng.Float64() * 60 * SecondsPerDay
		slot, rem := s.Split(tt)
		if rem < 0 || rem >= s.Delta {
			return false
		}
		return abs(float64(slot)*s.Delta+rem-tt) < 1e-6
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestWeekSlotWraps(t *testing.T) {
	s := MustNew(5 * time.Minute)
	// Slot 2016 is the first slot of week 2 → node 0 (tp % 2016).
	if ws := s.WeekSlot(2016); ws != 0 {
		t.Fatalf("WeekSlot(2016) = %d", ws)
	}
	if ws := s.WeekSlot(2015); ws != 2015 {
		t.Fatalf("WeekSlot(2015) = %d", ws)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative slot accepted")
		}
	}()
	s.WeekSlot(-1)
}

func TestSlotSpan(t *testing.T) {
	s := MustNew(5 * time.Minute)
	// Formula 4: an interval within one slot spans Δd = 1.
	if d := s.SlotSpan(10, 20); d != 1 {
		t.Fatalf("SlotSpan same slot = %d", d)
	}
	// Interval straddling one boundary spans 2.
	if d := s.SlotSpan(290, 310); d != 2 {
		t.Fatalf("SlotSpan straddle = %d", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reversed interval accepted")
		}
	}()
	s.SlotSpan(20, 10)
}

func TestDayOfWeekSlotOfDay(t *testing.T) {
	s := MustNew(time.Hour)
	if s.SlotsPerDay != 24 {
		t.Fatalf("hourly slots per day = %d", s.SlotsPerDay)
	}
	// Week slot 25 = day 1, hour 1.
	if s.DayOfWeek(25) != 1 || s.SlotOfDay(25) != 1 {
		t.Fatalf("slot 25 maps to day %d slot %d", s.DayOfWeek(25), s.SlotOfDay(25))
	}
}
