// Package tsne implements exact-gradient t-SNE (van der Maaten & Hinton,
// 2008) for small point sets. The paper uses t-SNE to project the learned
// time-slot embeddings to one dimension for the heatmap of Figure 14b; with
// at most a few thousand slots, the exact O(n²) gradient is affordable.
package tsne

import (
	"fmt"
	"math"
	"math/rand"
)

// Config tunes the optimization.
type Config struct {
	// OutDims is the target dimensionality (1 for the paper's heatmap).
	OutDims int
	// Perplexity controls the effective neighborhood size.
	Perplexity float64
	// Iters is the number of gradient iterations.
	Iters int
	// LearningRate scales the gradient step.
	LearningRate float64
	// Seed drives the random initialization.
	Seed int64
}

// DefaultConfig returns settings adequate for embedding a week of time
// slots.
func DefaultConfig(outDims int) Config {
	return Config{OutDims: outDims, Perplexity: 30, Iters: 300, LearningRate: 100, Seed: 1}
}

// Embed projects n points (rows of x, each of dimension d) to OutDims
// dimensions. It returns an n×OutDims row-major matrix.
func Embed(x [][]float64, cfg Config) ([][]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("tsne: no input points")
	}
	if cfg.OutDims <= 0 || cfg.Iters <= 0 || cfg.Perplexity <= 1 {
		return nil, fmt.Errorf("tsne: invalid config %+v", cfg)
	}
	if float64(n) <= cfg.Perplexity {
		cfg.Perplexity = float64(n) / 3
		if cfg.Perplexity <= 1 {
			cfg.Perplexity = 2
		}
	}
	d := len(x[0])
	for i := range x {
		if len(x[i]) != d {
			return nil, fmt.Errorf("tsne: ragged input at row %d", i)
		}
	}

	p := condProbabilities(x, cfg.Perplexity)
	// Symmetrize and normalize.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j], p[j][i] = v, v
		}
		p[i][i] = 1e-12
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	y := make([][]float64, n)
	vel := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, cfg.OutDims)
		vel[i] = make([]float64, cfg.OutDims)
		for k := range y[i] {
			y[i][k] = rng.NormFloat64() * 1e-2
		}
	}

	num := make([][]float64, n)
	for i := range num {
		num[i] = make([]float64, n)
	}
	grad := make([]float64, cfg.OutDims)
	for iter := 0; iter < cfg.Iters; iter++ {
		// Early exaggeration for the first quarter of the run.
		exag := 1.0
		if iter < cfg.Iters/4 {
			exag = 4
		}
		momentum := 0.5
		if iter >= 20 {
			momentum = 0.8
		}
		// Student-t numerators and normalizer.
		var z float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var d2 float64
				for k := 0; k < cfg.OutDims; k++ {
					df := y[i][k] - y[j][k]
					d2 += df * df
				}
				q := 1 / (1 + d2)
				num[i][j], num[j][i] = q, q
				z += 2 * q
			}
		}
		if z < 1e-12 {
			z = 1e-12
		}
		for i := 0; i < n; i++ {
			for k := range grad {
				grad[k] = 0
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				q := num[i][j] / z
				mult := (exag*p[i][j] - q) * num[i][j]
				for k := 0; k < cfg.OutDims; k++ {
					grad[k] += 4 * mult * (y[i][k] - y[j][k])
				}
			}
			for k := 0; k < cfg.OutDims; k++ {
				vel[i][k] = momentum*vel[i][k] - cfg.LearningRate*grad[k]
				y[i][k] += vel[i][k]
			}
		}
	}
	return y, nil
}

// condProbabilities computes the conditional Gaussian probabilities p_{j|i}
// with per-point bandwidths found by binary search on the perplexity.
func condProbabilities(x [][]float64, perplexity float64) [][]float64 {
	n := len(x)
	logU := math.Log(perplexity)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := range d2[i] {
			var s float64
			for k := range x[i] {
				df := x[i][k] - x[j][k]
				s += df * df
			}
			d2[i][j] = s
		}
	}
	p := make([][]float64, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for iter := 0; iter < 50; iter++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2[i][j] * beta)
				sum += row[j]
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			// Shannon entropy of the row distribution.
			var h float64
			for j := 0; j < n; j++ {
				if j == i || row[j] <= 0 {
					continue
				}
				pj := row[j] / sum
				h -= pj * math.Log(pj)
			}
			if math.Abs(h-logU) < 1e-4 {
				break
			}
			if h > logU {
				lo = beta
				if hi == 1e20 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
			_ = lo
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			p[i][j] = row[j] / sum
		}
	}
	return p
}
