package tsne

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmbedSeparatesClusters(t *testing.T) {
	// Two well-separated Gaussian blobs in 5-D must stay separated in 1-D.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	for i := 0; i < 30; i++ {
		p := make([]float64, 5)
		for k := range p {
			p[k] = rng.NormFloat64() * 0.1
		}
		if i >= 15 {
			p[0] += 10
		}
		x = append(x, p)
	}
	cfg := DefaultConfig(1)
	cfg.Iters = 200
	y, err := Embed(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 30 || len(y[0]) != 1 {
		t.Fatalf("output shape %dx%d", len(y), len(y[0]))
	}
	var meanA, meanB float64
	for i := 0; i < 15; i++ {
		meanA += y[i][0]
		meanB += y[i+15][0]
	}
	meanA /= 15
	meanB /= 15
	var spreadA float64
	for i := 0; i < 15; i++ {
		spreadA += math.Abs(y[i][0] - meanA)
	}
	spreadA /= 15
	if math.Abs(meanA-meanB) < 3*spreadA {
		t.Fatalf("clusters not separated: means %.2f vs %.2f, spread %.2f", meanA, meanB, spreadA)
	}
}

func TestEmbedPreservesRingOrderLocally(t *testing.T) {
	// Points on a circle: 1-D t-SNE cannot keep the ring, but neighbors
	// should stay closer than antipodes on average.
	var x [][]float64
	n := 24
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		x = append(x, []float64{math.Cos(a), math.Sin(a)})
	}
	cfg := DefaultConfig(1)
	cfg.Perplexity = 4
	cfg.Iters = 150
	y, err := Embed(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var near, far float64
	for i := 0; i < n; i++ {
		near += math.Abs(y[i][0] - y[(i+1)%n][0])
		far += math.Abs(y[i][0] - y[(i+n/2)%n][0])
	}
	if near >= far {
		t.Fatalf("local structure lost: near %.2f >= far %.2f", near, far)
	}
}

func TestEmbedValidation(t *testing.T) {
	if _, err := Embed(nil, DefaultConfig(1)); err == nil {
		t.Fatal("empty input accepted")
	}
	bad := DefaultConfig(0)
	if _, err := Embed([][]float64{{1}}, bad); err == nil {
		t.Fatal("zero output dims accepted")
	}
	if _, err := Embed([][]float64{{1, 2}, {3}}, DefaultConfig(1)); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestEmbedDeterministic(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}, {5, 5}, {6, 5}, {5, 6}}
	cfg := DefaultConfig(1)
	cfg.Iters = 50
	a, err := Embed(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatal("t-SNE not deterministic with a fixed seed")
		}
	}
}
