package infer

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"deepod/internal/core"
	"deepod/internal/metrics"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// Snapshot is one immutable serving model. The engine holds the live
// snapshot behind an atomic pointer; Swap installs a new one without
// blocking traffic, and in-flight batches keep the pointer they loaded, so
// they finish on the model they started with.
type Snapshot struct {
	// ID names the snapshot to operators (/version, estimate responses).
	// LoadCheckpoint uses a truncated SHA-256 of the checkpoint file.
	ID string
	// Estimate answers a matched OD on this snapshot's weights. It must be
	// safe for concurrent callers (core.Model.Estimate is; see the -race
	// test in internal/core). The context carries the request's trace so
	// model-internal spans (encode, estimate) join the request tree.
	Estimate func(ctx context.Context, od *traj.MatchedOD) float64
	// EstimateBatch answers a whole drained admission batch in one fused
	// [B×d] forward (core.EstimateBatchFusedCtx, bit-identical to per-OD
	// Estimate calls). Nil snapshots fall back to per-request Estimate —
	// stub snapshots in tests and recordings that predate the fused path.
	EstimateBatch func(ctx context.Context, ods []traj.MatchedOD) []float64
	// Meta carries operator-facing facts merged into /version output
	// (weight count, checkpoint path, ...).
	Meta map[string]any
	// Slotter is the model's time discretizer, handed to the engine for
	// cache-key quantization (nil for stub snapshots in tests).
	Slotter *timeslot.Slotter
	// RefDist is the training-time error distribution carried in the
	// checkpoint — the drift reference the quality monitor re-arms with on
	// every hot reload. Nil for checkpoints that predate it.
	RefDist *metrics.RefDist
	// LoadedAt is when the snapshot was built (set by Swap if zero).
	LoadedAt time.Time
}

// ModelSnapshot wraps a trained core model as a serving snapshot. When the
// model carries an admitted float32 head (core.Model.EnableF32), both entry
// points route through it; otherwise the float64 paths serve, with the
// fused batch forward behind EstimateBatch.
func ModelSnapshot(id string, m *core.Model) *Snapshot {
	s := &Snapshot{
		ID:            id,
		Estimate:      m.EstimateCtx,
		EstimateBatch: m.EstimateBatchFusedCtx,
		Meta: map[string]any{
			"weights": m.NumWeights(),
			"edges":   m.Graph().NumEdges(),
		},
		Slotter:  m.Slotter(),
		RefDist:  m.RefDist(),
		LoadedAt: time.Now(),
	}
	if m.F32Enabled() {
		s.Estimate = m.EstimateF32Ctx
		s.EstimateBatch = m.EstimateBatchF32Ctx
		s.Meta["f32"] = true
		s.Meta["f32_mae_delta"] = m.F32MAEDelta()
	}
	return s
}

// CheckpointOptions tunes snapshot construction from a checkpoint file.
type CheckpointOptions struct {
	// Float32 requests the quantized float32 serving head. The head is
	// admitted only if its accuracy gate passes on the checkpoint's
	// calibration set (core.Model.EnableF32); otherwise the load FAILS with
	// the gate's error — an operator asking for f32 must never silently get
	// float64.
	Float32 bool
	// F32Threshold overrides the gate's maximum relative MAE delta
	// (<= 0 means core.DefaultF32Threshold, 0.1%).
	F32Threshold float64
}

// LoadCheckpoint reads a checkpoint written by core.Model.Save, validates
// it against the live road network (core.Load rejects a mismatched edge
// count) and returns a snapshot whose ID is the first 12 hex digits of the
// file's SHA-256 — so /version answers exactly which bytes are serving.
func LoadCheckpoint(path string, g *roadnet.Graph) (*Snapshot, error) {
	return LoadCheckpointCtx(context.Background(), path, g)
}

// LoadCheckpointCtx is LoadCheckpoint with trace context: the load is
// recorded as an "infer.snapshot_load" span carrying the checkpoint path
// and resulting hash, so reload traces show how long the disk read and
// weight validation took.
func LoadCheckpointCtx(ctx context.Context, path string, g *roadnet.Graph) (*Snapshot, error) {
	return LoadCheckpointOpts(ctx, path, g, CheckpointOptions{})
}

// LoadCheckpointOpts is LoadCheckpointCtx with options (the float32 head).
func LoadCheckpointOpts(ctx context.Context, path string, g *roadnet.Graph, opts CheckpointOptions) (*Snapshot, error) {
	_, span := obs.StartSpan(ctx, "infer.snapshot_load")
	defer span.End()
	span.SetStr("checkpoint", path)
	b, err := os.ReadFile(path)
	if err != nil {
		err = fmt.Errorf("infer: reading checkpoint: %w", err)
		span.Fail(err)
		return nil, err
	}
	sum := sha256.Sum256(b)
	m, err := core.Load(bytes.NewReader(b), g)
	if err != nil {
		err = fmt.Errorf("infer: loading checkpoint %s: %w", path, err)
		span.Fail(err)
		return nil, err
	}
	if opts.Float32 {
		if err := m.EnableF32(opts.F32Threshold); err != nil {
			err = fmt.Errorf("infer: refusing float32 snapshot for %s: %w", path, err)
			span.Fail(err)
			return nil, err
		}
		span.SetInt("f32", 1)
	}
	s := ModelSnapshot(hex.EncodeToString(sum[:])[:12], m)
	s.Meta["checkpoint"] = path
	span.SetStr("snapshot", s.ID)
	return s, nil
}
