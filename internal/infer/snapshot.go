package infer

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"deepod/internal/core"
	"deepod/internal/roadnet"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// Snapshot is one immutable serving model. The engine holds the live
// snapshot behind an atomic pointer; Swap installs a new one without
// blocking traffic, and in-flight batches keep the pointer they loaded, so
// they finish on the model they started with.
type Snapshot struct {
	// ID names the snapshot to operators (/version, estimate responses).
	// LoadCheckpoint uses a truncated SHA-256 of the checkpoint file.
	ID string
	// Estimate answers a matched OD on this snapshot's weights. It must be
	// safe for concurrent callers (core.Model.Estimate is; see the -race
	// test in internal/core).
	Estimate func(*traj.MatchedOD) float64
	// Meta carries operator-facing facts merged into /version output
	// (weight count, checkpoint path, ...).
	Meta map[string]any
	// Slotter is the model's time discretizer, handed to the engine for
	// cache-key quantization (nil for stub snapshots in tests).
	Slotter *timeslot.Slotter
	// LoadedAt is when the snapshot was built (set by Swap if zero).
	LoadedAt time.Time
}

// ModelSnapshot wraps a trained core model as a serving snapshot.
func ModelSnapshot(id string, m *core.Model) *Snapshot {
	return &Snapshot{
		ID:       id,
		Estimate: m.Estimate,
		Meta: map[string]any{
			"weights": m.NumWeights(),
			"edges":   m.Graph().NumEdges(),
		},
		Slotter:  m.Slotter(),
		LoadedAt: time.Now(),
	}
}

// LoadCheckpoint reads a checkpoint written by core.Model.Save, validates
// it against the live road network (core.Load rejects a mismatched edge
// count) and returns a snapshot whose ID is the first 12 hex digits of the
// file's SHA-256 — so /version answers exactly which bytes are serving.
func LoadCheckpoint(path string, g *roadnet.Graph) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("infer: reading checkpoint: %w", err)
	}
	sum := sha256.Sum256(b)
	m, err := core.Load(bytes.NewReader(b), g)
	if err != nil {
		return nil, fmt.Errorf("infer: loading checkpoint %s: %w", path, err)
	}
	s := ModelSnapshot(hex.EncodeToString(sum[:])[:12], m)
	s.Meta["checkpoint"] = path
	return s, nil
}
