// Package infer is the inference engine between the HTTP surface
// (internal/serve) and the DeepOD model (internal/core) — the layer that
// turns the paper's cheap online estimation (Algorithm 1: OD encoder +
// estimator MLP only) into a production serving path:
//
//   - Admission control: a bounded queue in front of a fixed worker pool.
//     When the queue is full the request is shed immediately
//     (ErrOverloaded → 429); when it waits longer than QueueTimeout it is
//     abandoned (ErrQueueTimeout → 503). Requests never hang.
//   - Micro-batching: each worker drains up to MaxBatch queued requests at
//     once and serves the whole batch against a single snapshot load, so a
//     hot reload can never split one batch across two models.
//   - Caching: a sharded LRU+TTL cache keyed by (origin cell, dest cell,
//     time slot). The spatial cells come from roadnet's uniform grid index
//     and the slot from timeslot.Slotter — the same quantizations the model
//     itself uses, so a cache hit answers with the estimate of an
//     indistinguishable input.
//   - Hot reload: the model lives behind an atomic snapshot pointer. Swap
//     installs a new checkpoint without dropping a single in-flight
//     request; generation tags make every cached estimate from the old
//     model invisible the moment the swap lands.
//
// Every stage is instrumented in internal/obs:
//
//	tte_infer_queue_depth            gauge, queued requests
//	tte_infer_queue_wait_seconds     histogram, admission → worker pickup
//	tte_infer_batch_size             histogram, requests per worker batch
//	tte_infer_cache_events_total     counter {event=hit|miss|evict_lru|evict_ttl|evict_stale}
//	tte_infer_cache_entries          gauge, live cache entries
//	tte_infer_requests_total         counter, valid requests (shed-rate SLO denominator)
//	tte_infer_shed_total             counter {reason=queue_full|queue_timeout}
//	tte_infer_reloads_total          counter, snapshot swaps
package infer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deepod/internal/geo"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// Sentinel errors mapped to HTTP statuses by internal/serve.
var (
	// ErrOverloaded means the admission queue was full (serve → 429).
	ErrOverloaded = errors.New("infer: admission queue full")
	// ErrQueueTimeout means the request waited longer than QueueTimeout
	// for a worker (serve → 503).
	ErrQueueTimeout = errors.New("infer: timed out waiting for a worker")
	// ErrInvalidInput means the OD input had non-finite coordinates or a
	// negative departure time (serve → 400).
	ErrInvalidInput = errors.New("infer: invalid OD input")
	// ErrClosed means Do was called after Close.
	ErrClosed = errors.New("infer: engine closed")
)

// MatchError wraps a map-matching failure so serve can answer 422 (the
// request was well-formed but no road segment fits it).
type MatchError struct{ Err error }

func (e *MatchError) Error() string { return fmt.Sprintf("infer: map matching failed: %v", e.Err) }
func (e *MatchError) Unwrap() error { return e.Err }

// Quantizer maps a point onto a stable coarse spatial cell. Implemented by
// roadnet.EdgeIndex; stubs suffice for tests.
type Quantizer interface {
	CellIndex(p geo.Point) int
}

// PredictionRecorder is notified of every served estimate and returns a
// prediction ID that is echoed to the client, so ground-truth feedback can
// be joined back to the exact prediction (and model generation) that was
// served. Implemented by quality.Monitor; must be safe for concurrent use.
type PredictionRecorder interface {
	RecordPrediction(od traj.ODInput, seconds float64, snapshotID string, generation uint64) string
}

// TrafficSource feeds live traffic state into estimation. External returns
// the external-feature bundle (traffic-condition matrix + weather) the
// model should see for a departure time — live edge speeds merged over the
// training-time prior, or the prior alone when the live view is cold or
// stale — plus whether the live view was actually used (false means the
// prior fallback answered; the flight recorder stamps this on the wide
// event so replay knows which answers depended on live state). Epoch
// identifies the current traffic regime: it becomes part of every cache
// key, so cached estimates stop being served the moment conditions shift.
// Implemented by traffic.FeatureSource; must be safe for concurrent use.
type TrafficSource interface {
	Epoch() uint64
	External(departSec float64) (ext *traj.ExternalFeatures, live bool)
}

// ServeEvent is the wide-event payload handed to a FlightRecorder after
// every Do call — one record carrying every input that determined the
// answer, so a served estimate can be reproduced and re-scored offline.
type ServeEvent struct {
	// OD is the request exactly as the engine admitted it.
	OD traj.ODInput
	// Seconds is the served estimate (zero when Err is non-nil).
	Seconds float64
	// Cached reports whether the answer came from the estimate cache.
	Cached bool
	// SnapshotID and Generation identify the model that answered; empty/
	// current-generation when the request errored before reaching a model.
	SnapshotID string
	Generation uint64
	// TrafficEpoch is the live-traffic regime the answer was computed
	// under (0 with no traffic source). TrafficLive reports whether the
	// worker actually merged live speeds into the features — false means
	// the prior fallback (or a cache hit, whose features were fixed when
	// the entry was computed).
	TrafficEpoch uint64
	TrafficLive  bool
	// QueueWait is admission-to-pickup time (zero on cache hits and
	// queue-full sheds; QueueTimeout on timeout sheds).
	QueueWait time.Duration
	// Latency is the full Do duration as the caller saw it.
	Latency time.Duration
	// Err is the Do error: nil, ErrOverloaded, ErrQueueTimeout,
	// ErrInvalidInput, ErrClosed, a *MatchError, or a context error.
	Err error
}

// FlightRecorder captures wide events for the flight recorder. Implemented
// by recorder.Recorder; must be safe for concurrent use and must not
// block — it runs on the serve path after the answer is computed.
type FlightRecorder interface {
	RecordServe(ctx context.Context, ev ServeEvent)
}

// Config assembles an Engine.
type Config struct {
	// Match snaps an OD input onto road segments. Required. It is called
	// from worker goroutines and must be safe for concurrent use
	// (mapmatch.Matcher.MatchPoint is read-only after construction). The
	// context is the requesting caller's — it carries the trace so match
	// spans land in the right tree; Match should not treat its cancellation
	// as fatal mid-batch.
	Match func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error)
	// Snapshot is the initial serving model. Required.
	Snapshot *Snapshot

	// Workers is the number of serving goroutines (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 256). A full queue
	// sheds new requests with ErrOverloaded.
	QueueDepth int
	// MaxBatch caps how many queued requests one worker drains per batch
	// (default 16).
	MaxBatch int
	// QueueTimeout bounds how long an admitted request may wait for a
	// worker before it is abandoned with ErrQueueTimeout (default 2s).
	QueueTimeout time.Duration

	// CacheEntries is the total estimate-cache capacity; 0 disables
	// caching. When enabled, Cells and Slotter are required for key
	// quantization.
	CacheEntries int
	// CacheTTL bounds estimate staleness (default 5m). Traffic drifts
	// within a slot, so entries expire even if their slot is still
	// current.
	CacheTTL time.Duration
	// CacheShards is the lock-domain count (default 16, rounded up to a
	// power of two).
	CacheShards int
	// Cells quantizes origins/destinations for cache keys.
	Cells Quantizer
	// Slotter quantizes departure times for cache keys.
	Slotter *timeslot.Slotter

	// Traffic, when non-nil, overrides each request's external features
	// with the live traffic view at estimate time and keys the cache by the
	// traffic epoch. Nil leaves the request's own features untouched; the
	// only cost left on the serve path is one nil check per stage (see
	// TestTrafficDisabledOverhead).
	Traffic TrafficSource

	// Recorder, when non-nil, stamps every served estimate (cache hits
	// included — a cached answer is still a served prediction) with an ID
	// for ground-truth joining. Nil disables stamping; the only cost left
	// on the serve path is one nil check (see the overhead gate test).
	Recorder PredictionRecorder

	// Flight, when non-nil, receives one wide event per Do call — every
	// input that determined the answer, for offline replay and regression
	// diffing. Nil disables capture; the only cost left on the serve path
	// is one nil check (see TestFlightDisabledOverhead).
	Flight FlightRecorder

	// Registry receives engine metrics (default obs.Default()).
	Registry *obs.Registry
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Result is one answered estimate.
type Result struct {
	// Seconds is the estimated travel time.
	Seconds float64
	// Cached reports whether the answer came from the estimate cache.
	Cached bool
	// SnapshotID names the model snapshot that produced the estimate (for
	// cached answers, the snapshot that originally computed it — which by
	// the generation check is the live one).
	SnapshotID string
	// PredictionID is the quality monitor's join handle for this estimate;
	// empty when no Recorder is configured.
	PredictionID string
}

// installed pairs a snapshot with its generation number. The generation
// strictly increases across swaps and tags cache entries, so a reload
// instantly invalidates every estimate the previous model produced.
type installed struct {
	snap *Snapshot
	gen  uint64
}

type outcome struct {
	sec    float64
	snapID string
	predID string
	err    error
	// Flight-recorder facts known only worker-side.
	wait  time.Duration
	gen   uint64
	epoch uint64
	live  bool
}

// serveDetail carries the per-request facts the flight-recorder wrapper
// needs beyond the Result: the generation and traffic regime that
// determined the answer, and where the request spent its time.
type serveDetail struct {
	wait  time.Duration
	gen   uint64
	epoch uint64
	live  bool
}

type job struct {
	od       traj.ODInput
	enqueued time.Time
	// ctx is the requesting caller's context; it carries the trace so the
	// worker's batch/match/model spans join the request's tree.
	ctx context.Context
	// qspan is the request's "infer.queue" span, started at admission and
	// ended by whichever side resolves the job first: the worker at pickup
	// or the caller on shed/abandon (Span.End is first-wins).
	qspan *obs.Span
	// picked is set by the worker taking the job; abandoned by a caller
	// that gave up. The pair resolves the shed-vs-serve race: a worker
	// skips abandoned jobs, and a caller whose queue timer fires after
	// pickup keeps waiting (the timeout bounds queue wait, not service).
	picked    atomic.Bool
	abandoned atomic.Bool
	done      chan outcome
}

// Engine mediates all estimate traffic: admission, batching, caching and
// snapshot management. Construct with New, serve with Do, upgrade with
// Swap, stop with Close.
type Engine struct {
	cfg   Config
	reg   *obs.Registry
	now   func() time.Time
	cur   atomic.Pointer[installed]
	gen   atomic.Uint64
	queue chan *job
	cache *estimateCache

	// reloadErr holds the message of the most recent failed reload attempt
	// (RecordReloadFailure); a successful Swap clears it. /readyz reports
	// 503 while it is set.
	reloadErr atomic.Pointer[string]

	mu     sync.RWMutex // guards closed against concurrent enqueue
	closed bool
	wg     sync.WaitGroup

	depthGauge  *obs.Gauge
	queueWait   *obs.Histogram
	batchSize   *obs.Histogram
	requests    *obs.Counter
	shedFull    *obs.Counter
	shedTimeout *obs.Counter
	reloads     *obs.Counter
}

// batchSizeBuckets cover 1..MaxBatch for typical settings.
var batchSizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// New validates cfg, installs the initial snapshot and starts the worker
// pool.
func New(cfg Config) (*Engine, error) {
	if cfg.Match == nil {
		return nil, fmt.Errorf("infer: Config.Match is required")
	}
	if cfg.Snapshot == nil || cfg.Snapshot.Estimate == nil {
		return nil, fmt.Errorf("infer: Config.Snapshot with an Estimate func is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	if cfg.CacheTTL <= 0 {
		cfg.CacheTTL = 5 * time.Minute
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.CacheEntries > 0 && (cfg.Cells == nil || cfg.Slotter == nil) {
		return nil, fmt.Errorf("infer: caching needs Config.Cells and Config.Slotter for key quantization")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	reg := cfg.Registry
	reg.Help("tte_infer_queue_depth", "Requests waiting in the inference admission queue.")
	reg.Help("tte_infer_queue_wait_seconds", "Time from admission to worker pickup.")
	reg.Help("tte_infer_batch_size", "Requests served per worker micro-batch.")
	reg.Help("tte_infer_cache_events_total", "Estimate cache events: hit, miss, evict_lru, evict_ttl, evict_stale.")
	reg.Help("tte_infer_cache_entries", "Live entries in the estimate cache.")
	reg.Help("tte_infer_requests_total", "Valid estimate requests admitted to the engine (cache hits included).")
	reg.Help("tte_infer_shed_total", "Requests shed by admission control, by reason.")
	reg.Help("tte_infer_reloads_total", "Model snapshot hot swaps since start.")
	e := &Engine{
		cfg:   cfg,
		reg:   reg,
		now:   cfg.Now,
		queue: make(chan *job, cfg.QueueDepth),

		depthGauge:  reg.Gauge("tte_infer_queue_depth"),
		queueWait:   reg.Histogram("tte_infer_queue_wait_seconds", obs.DefBuckets),
		batchSize:   reg.Histogram("tte_infer_batch_size", batchSizeBuckets),
		requests:    reg.Counter("tte_infer_requests_total"),
		shedFull:    reg.Counter("tte_infer_shed_total", "reason", "queue_full"),
		shedTimeout: reg.Counter("tte_infer_shed_total", "reason", "queue_timeout"),
		reloads:     reg.Counter("tte_infer_reloads_total"),
	}
	if cfg.CacheEntries > 0 {
		e.cache = newEstimateCache(cfg.CacheEntries, cfg.CacheShards, cfg.CacheTTL, reg)
	}
	e.install(cfg.Snapshot)
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// install atomically publishes snap under a fresh generation.
func (e *Engine) install(snap *Snapshot) {
	if snap.LoadedAt.IsZero() {
		snap.LoadedAt = e.now()
	}
	e.cur.Store(&installed{snap: snap, gen: e.gen.Add(1)})
}

// Swap atomically replaces the serving snapshot and returns the previous
// one. In-flight batches finish on the snapshot they loaded; cache entries
// produced by the previous model become invisible immediately (generation
// mismatch) and are dropped lazily on lookup.
func (e *Engine) Swap(snap *Snapshot) (previous *Snapshot, err error) {
	return e.SwapCtx(context.Background(), snap)
}

// SwapCtx is Swap with trace context: the reload is recorded as an
// "infer.reload" span carrying the old and new snapshot IDs. A successful
// swap clears any failed-reload state (see RecordReloadFailure).
func (e *Engine) SwapCtx(ctx context.Context, snap *Snapshot) (previous *Snapshot, err error) {
	_, span := e.reg.StartSpan(ctx, "infer.reload")
	defer span.End()
	if snap == nil || snap.Estimate == nil {
		err = fmt.Errorf("infer: Swap needs a snapshot with an Estimate func")
		span.Fail(err)
		return nil, err
	}
	old := e.cur.Load()
	e.install(snap)
	e.reloadErr.Store(nil)
	e.reloads.Inc()
	span.SetStr("snapshot", snap.ID)
	span.SetStr("previous", old.snap.ID)
	return old.snap, nil
}

// RecordReloadFailure marks the engine as being in a failed-reload state:
// /readyz answers 503 until the next successful Swap. Call it when a
// checkpoint load or swap attempt fails so orchestrators stop routing new
// traffic to a replica that can no longer follow model rollouts. A nil err
// is ignored.
func (e *Engine) RecordReloadFailure(err error) {
	if err == nil {
		return
	}
	msg := err.Error()
	e.reloadErr.Store(&msg)
}

// Readiness reports whether the engine should receive traffic, with a
// detail payload for /readyz: the serving checkpoint hash, queue depth and
// capacity, and — when not ready — the reason.
func (e *Engine) Readiness() (bool, map[string]any) {
	detail := map[string]any{
		"queue_len":      len(e.queue),
		"queue_capacity": e.cfg.QueueDepth,
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	inst := e.cur.Load()
	ready := true
	switch {
	case closed:
		ready = false
		detail["reason"] = "engine closed"
	case inst == nil || inst.snap == nil:
		ready = false
		detail["reason"] = "no model snapshot loaded"
	default:
		detail["model"] = inst.snap.ID
	}
	if msg := e.reloadErr.Load(); msg != nil {
		ready = false
		detail["reason"] = "last reload failed"
		detail["last_reload_error"] = *msg
	}
	return ready, detail
}

// Snapshot returns the currently serving snapshot.
func (e *Engine) Snapshot() *Snapshot { return e.cur.Load().snap }

// Version reports the live snapshot and engine configuration for the
// /version endpoint.
func (e *Engine) Version() map[string]any {
	inst := e.cur.Load()
	v := map[string]any{
		"model":           inst.snap.ID,
		"model_loaded_at": inst.snap.LoadedAt.UTC().Format(time.RFC3339),
		"generation":      inst.gen,
		"reloads":         e.reloads.Value(),
		"workers":         e.cfg.Workers,
		"queue_depth":     e.cfg.QueueDepth,
		"max_batch":       e.cfg.MaxBatch,
		"queue_timeout":   e.cfg.QueueTimeout.String(),
		"cache_entries":   e.cfg.CacheEntries,
		"cache_ttl":       e.cfg.CacheTTL.String(),
	}
	if e.cfg.Traffic != nil {
		v["traffic"] = "live"
		v["traffic_epoch"] = e.cfg.Traffic.Epoch()
	} else {
		v["traffic"] = "disabled"
	}
	for k, val := range inst.snap.Meta {
		v[k] = val
	}
	return v
}

// Stats is a point-in-time counter snapshot for tests and benchmarks.
type Stats struct {
	Requests   uint64
	Shed       uint64
	CacheHits  uint64
	CacheMiss  uint64
	Reloads    uint64
	CacheItems int
}

// Stats reads the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Requests: e.requests.Value(),
		Shed:     e.shedFull.Value() + e.shedTimeout.Value(),
		Reloads:  e.reloads.Value(),
	}
	if e.cache != nil {
		s.CacheHits = e.cache.hitTotal.Value()
		s.CacheMiss = e.cache.missTotal.Value()
		s.CacheItems = e.cache.len()
	}
	return s
}

// validate rejects inputs that would poison downstream stages: non-finite
// coordinates break map matching's distance math, and a negative departure
// is before the dataset epoch (timeslot.Slotter panics on it by design).
func validate(od traj.ODInput) error {
	for _, v := range [5]float64{od.Origin.X, od.Origin.Y, od.Dest.X, od.Dest.Y, od.DepartSec} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrInvalidInput
		}
	}
	if od.DepartSec < 0 {
		return ErrInvalidInput
	}
	return nil
}

func (e *Engine) keyOf(od traj.ODInput) cacheKey {
	return cacheKey{
		originCell: e.cfg.Cells.CellIndex(od.Origin),
		destCell:   e.cfg.Cells.CellIndex(od.Dest),
		slot:       e.cfg.Slotter.Slot(od.DepartSec),
		epoch:      e.trafficEpoch(),
	}
}

// trafficEpoch is the cache key's traffic component: 0 without a traffic
// source (keys identical to the pre-traffic engine), otherwise the source's
// current epoch.
func (e *Engine) trafficEpoch() uint64 {
	if e.cfg.Traffic == nil {
		return 0
	}
	return e.cfg.Traffic.Epoch()
}

// Do serves one estimate: cache lookup, admission, then a worker batch
// answers it. It returns ErrOverloaded / ErrQueueTimeout when shed, a
// *MatchError when the OD cannot be snapped to the network, or the
// context's error if the caller gave up first. When ctx carries a trace,
// every stage shows up as a span: infer.cache (hit attr), infer.queue
// (depth, wait, shed reason), and the worker-side infer.batch /
// infer.match / infer.model tree. With a flight recorder configured,
// every call — success, shed, or error — leaves one wide event behind.
func (e *Engine) Do(ctx context.Context, od traj.ODInput) (Result, error) {
	if e.cfg.Flight == nil {
		res, _, err := e.do(ctx, od)
		return res, err
	}
	start := e.now()
	res, d, err := e.do(ctx, od)
	e.flightCapture(ctx, od, start, res, d, err)
	return res, err
}

// flightCapture hands one finished request to the flight recorder. This is
// the only flight-recorder cost on the serve path; disabled it must stay a
// nanosecond-scale nil check (enforced by TestFlightDisabledOverhead).
func (e *Engine) flightCapture(ctx context.Context, od traj.ODInput, start time.Time, res Result, d serveDetail, err error) {
	if e.cfg.Flight == nil {
		return
	}
	e.cfg.Flight.RecordServe(ctx, ServeEvent{
		OD:           od,
		Seconds:      res.Seconds,
		Cached:       res.Cached,
		SnapshotID:   res.SnapshotID,
		Generation:   d.gen,
		TrafficEpoch: d.epoch,
		TrafficLive:  d.live,
		QueueWait:    d.wait,
		Latency:      e.now().Sub(start),
		Err:          err,
	})
}

// do is Do's pipeline, also reporting the serveDetail the flight recorder
// captures. The detail stores are plain scalar writes and cost nothing
// measurable even with the recorder off.
func (e *Engine) do(ctx context.Context, od traj.ODInput) (Result, serveDetail, error) {
	var d serveDetail
	if err := validate(od); err != nil {
		return Result{}, d, err
	}
	// The shed-rate SLO's denominator: tte_infer_shed_total / this ratio is
	// the fraction of valid requests admission control turned away.
	e.requests.Inc()
	inst := e.cur.Load()
	d.gen = inst.gen
	if e.cache != nil {
		key := e.keyOf(od)
		d.epoch = key.epoch
		_, cspan := e.reg.StartSpan(ctx, "infer.cache")
		sec, ok := e.cache.get(key, inst.gen, e.now())
		cspan.SetBool("hit", ok)
		cspan.End()
		if ok {
			return Result{Seconds: sec, Cached: true, SnapshotID: inst.snap.ID,
				PredictionID: e.stamp(od, sec, inst)}, d, nil
		}
	} else {
		d.epoch = e.trafficEpoch()
	}

	_, qspan := e.reg.StartSpan(ctx, "infer.queue")
	qspan.SetInt("queue_depth", len(e.queue))
	j := &job{od: od, enqueued: e.now(), ctx: ctx, qspan: qspan, done: make(chan outcome, 1)}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		qspan.Fail(ErrClosed)
		qspan.End()
		return Result{}, d, ErrClosed
	}
	select {
	case e.queue <- j:
		e.mu.RUnlock()
		e.depthGauge.Set(float64(len(e.queue)))
	default:
		e.mu.RUnlock()
		e.shedFull.Inc()
		qspan.SetStr("shed", "queue_full")
		qspan.Fail(ErrOverloaded)
		qspan.End()
		return Result{}, d, ErrOverloaded
	}

	timer := time.NewTimer(e.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case out := <-j.done:
		return out.result(&d)
	case <-ctx.Done():
		j.abandoned.Store(true)
		qspan.SetStr("shed", "abandoned")
		qspan.End()
		return Result{}, d, ctx.Err()
	case <-timer.C:
		if !j.picked.Load() {
			j.abandoned.Store(true)
			e.shedTimeout.Inc()
			qspan.SetStr("shed", "queue_timeout")
			qspan.Fail(ErrQueueTimeout)
			qspan.End()
			d.wait = e.cfg.QueueTimeout
			return Result{}, d, ErrQueueTimeout
		}
		// A worker took the job just in time: the timeout only bounds
		// queue wait, so keep waiting for the in-progress answer.
		select {
		case out := <-j.done:
			return out.result(&d)
		case <-ctx.Done():
			j.abandoned.Store(true)
			return Result{}, d, ctx.Err()
		}
	}
}

// result converts a worker outcome, folding its authoritative detail facts
// (queue wait, generation, traffic regime) into d.
func (out outcome) result(d *serveDetail) (Result, serveDetail, error) {
	d.wait = out.wait
	d.gen = out.gen
	d.epoch = out.epoch
	d.live = out.live
	if out.err != nil {
		return Result{}, *d, out.err
	}
	return Result{Seconds: out.sec, SnapshotID: out.snapID, PredictionID: out.predID}, *d, nil
}

// stamp hands one served estimate to the prediction recorder, returning
// the ID to echo, or "" with no recorder. This is the only quality-monitor
// cost on the serve path; disabled it must stay a nanosecond-scale nil
// check (enforced by TestPredictionStampDisabledOverhead).
func (e *Engine) stamp(od traj.ODInput, sec float64, inst *installed) string {
	if e.cfg.Recorder == nil {
		return ""
	}
	return e.cfg.Recorder.RecordPrediction(od, sec, inst.snap.ID, inst.gen)
}

// pendingJob is a batch member that survived admission and map matching
// and is waiting for its model answer.
type pendingJob struct {
	j       *job
	matched traj.MatchedOD
	wait    time.Duration
	bctx    context.Context
	bspan   *obs.Span
	epoch   uint64
	live    bool
}

// worker serves batches until the queue closes. The snapshot is loaded
// once per batch: every request in a batch is answered by the same model,
// and a concurrent Swap only affects subsequent batches.
//
// Each batch runs in two phases: per-request map matching and traffic
// overrides first, then one model call for every request that survived.
// When the snapshot provides EstimateBatch and more than one request is
// pending, that call is the fused [B×d] forward; the fused result is
// bit-identical to per-request Estimate calls (see core.EstimateBatchFused),
// so batching never changes an answer.
func (e *Engine) worker() {
	defer e.wg.Done()
	batch := make([]*job, 0, e.cfg.MaxBatch)
	pending := make([]pendingJob, 0, e.cfg.MaxBatch)
	ods := make([]traj.MatchedOD, 0, e.cfg.MaxBatch)
	for first := range e.queue {
		batch = append(batch[:0], first)
	drain:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case j, ok := <-e.queue:
				if !ok {
					break drain
				}
				batch = append(batch, j)
			default:
				break drain
			}
		}
		e.depthGauge.Set(float64(len(e.queue)))
		e.batchSize.Observe(float64(len(batch)))
		inst := e.cur.Load()
		now := e.now()
		pending = pending[:0]
		for _, j := range batch {
			wait := now.Sub(j.enqueued)
			e.queueWait.Observe(wait.Seconds())
			j.qspan.SetFloat("wait_ms", float64(wait)/float64(time.Millisecond))
			j.qspan.End()
			j.picked.Store(true)
			if j.abandoned.Load() {
				continue // caller already answered 503/ctx error
			}
			bctx, bspan := e.reg.StartSpan(j.ctx, "infer.batch")
			bspan.SetInt("batch_size", len(batch))
			bspan.SetStr("snapshot", inst.snap.ID)
			epoch := e.trafficEpoch()
			mctx, mspan := e.reg.StartSpan(bctx, "infer.match")
			matched, err := e.cfg.Match(mctx, j.od)
			if err != nil {
				mspan.Fail(err)
				mspan.End()
				bspan.End()
				j.done <- outcome{err: &MatchError{Err: err},
					wait: wait, gen: inst.gen, epoch: epoch}
				continue
			}
			mspan.End()
			live := false
			if e.cfg.Traffic != nil {
				// The live view is authoritative at estimate time; it falls
				// back to the training-time prior internally when cold or
				// stale, so matched never loses its features entirely.
				matched.External, live = e.cfg.Traffic.External(j.od.DepartSec)
			}
			pending = append(pending, pendingJob{j: j, matched: matched,
				wait: wait, bctx: bctx, bspan: bspan, epoch: epoch, live: live})
		}
		if len(pending) > 1 && inst.snap.EstimateBatch != nil {
			// Fused path: one [B×d] forward answers the whole batch. The
			// model span hangs off the first pending request's trace; every
			// request's own infer.batch span records that it was answered
			// fused and at what batch size.
			ods = ods[:0]
			for i := range pending {
				ods = append(ods, pending[i].matched)
			}
			ectx, espan := e.reg.StartSpan(pending[0].bctx, "infer.model")
			espan.SetInt("fused", len(ods))
			secs := inst.snap.EstimateBatch(ectx, ods)
			espan.End()
			for i := range pending {
				pending[i].bspan.SetInt("fused", len(ods))
				e.finish(&pending[i], secs[i], inst)
			}
		} else {
			for i := range pending {
				p := &pending[i]
				ectx, espan := e.reg.StartSpan(p.bctx, "infer.model")
				sec := inst.snap.Estimate(ectx, &p.matched)
				espan.End()
				e.finish(p, sec, inst)
			}
		}
	}
}

// finish caches, records and delivers one model answer.
func (e *Engine) finish(p *pendingJob, sec float64, inst *installed) {
	if e.cache != nil {
		// Tagged with the batch's generation: if a Swap landed mid-batch
		// this entry is already stale and will never be served.
		e.cache.put(e.keyOf(p.j.od), sec, inst.gen, e.now())
	}
	p.bspan.End()
	p.j.done <- outcome{sec: sec, snapID: inst.snap.ID, predID: e.stamp(p.j.od, sec, inst),
		wait: p.wait, gen: inst.gen, epoch: p.epoch, live: p.live}
}

// Close stops admission, waits for queued work to finish and stops the
// workers. Do returns ErrClosed afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	e.wg.Wait()
}
