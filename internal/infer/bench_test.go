package infer

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// benchEstimate burns a few microseconds of pure float math, standing in
// for a model forward pass so the benchmarks compare serving overheads
// (queueing, batching, caching) against a realistic per-request cost
// without building a road network.
func benchEstimate(_ context.Context, m *traj.MatchedOD) float64 {
	x := 1.0 + m.DepartSec
	for i := 0; i < 2000; i++ {
		x += 1.0 / x
	}
	return x
}

// benchWorkload is a fixed cycle of distinct ODs, the repeated-OD traffic
// shape the cache is designed for.
func benchWorkload(n int) []traj.ODInput {
	ods := make([]traj.ODInput, n)
	for i := range ods {
		ods[i] = od(float64(i%17), float64(i%23), float64(3+i%13), float64(5+i%7), float64(60*(i%12)))
	}
	return ods
}

func benchEngine(b *testing.B, cacheEntries int) *Engine {
	b.Helper()
	e, err := New(Config{
		Match:        okMatch,
		Snapshot:     &Snapshot{ID: "bench", Estimate: benchEstimate},
		Workers:      runtime.GOMAXPROCS(0),
		QueueDepth:   4096,
		MaxBatch:     16,
		QueueTimeout: time.Minute,
		CacheEntries: cacheEntries,
		CacheTTL:     time.Hour,
		Cells:        gridQuantizer{},
		Slotter:      timeslot.MustNew(5 * time.Minute),
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	return e
}

// BenchmarkDirect is the pre-engine serving path: one synchronous
// match+estimate per request on the caller's goroutine.
func BenchmarkDirect(b *testing.B) {
	ods := benchWorkload(64)
	var next atomic.Int64
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			in := ods[int(next.Add(1))%len(ods)]
			matched, err := okMatch(ctx, in)
			if err != nil {
				b.Fatal(err)
			}
			benchEstimate(ctx, &matched)
		}
	})
}

// BenchmarkEngineNoCache measures the engine's queue+batch overhead with
// the cache disabled: every request pays the full estimate.
func BenchmarkEngineNoCache(b *testing.B) {
	e := benchEngine(b, 0)
	ods := benchWorkload(64)
	var next atomic.Int64
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Do(ctx, ods[int(next.Add(1))%len(ods)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineCached is the full engine on the repeated-OD workload:
// after one cold pass the 64 distinct keys are resident, so nearly every
// request is a cache hit.
func BenchmarkEngineCached(b *testing.B) {
	e := benchEngine(b, 4096)
	ods := benchWorkload(64)
	var next atomic.Int64
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Do(ctx, ods[int(next.Add(1))%len(ods)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheGet isolates the sharded cache's hot read path.
func BenchmarkCacheGet(b *testing.B) {
	c := newEstimateCache(4096, 16, time.Hour, obs.NewRegistry())
	now := time.Unix(1700000000, 0)
	for i := 0; i < 1024; i++ {
		c.put(cacheKey{originCell: i, destCell: i * 3, slot: i % 288}, float64(i), 1, now)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % 1024
			c.get(cacheKey{originCell: i, destCell: i * 3, slot: i % 288}, 1, now)
		}
	})
}
