package infer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/traj"
)

// stubFlight appends every wide event it is handed.
type stubFlight struct {
	mu     sync.Mutex
	events []ServeEvent
}

func (f *stubFlight) RecordServe(_ context.Context, ev ServeEvent) {
	f.mu.Lock()
	f.events = append(f.events, ev)
	f.mu.Unlock()
}

func (f *stubFlight) all() []ServeEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]ServeEvent(nil), f.events...)
}

// TestFlightCapturesServePaths: one wide event per Do call, on the worker
// path, the cache-hit path, and error paths alike, carrying the facts
// replay needs (estimate, snapshot, generation, cached flag, latency).
func TestFlightCapturesServePaths(t *testing.T) {
	fl := &stubFlight{}
	cfg := testConfig(t, constSnapshot("m1", 42))
	cfg.Flight = fl
	e := newTestEngine(t, cfg)

	if _, err := e.Do(context.Background(), od(1, 1, 5, 5, 600)); err != nil {
		t.Fatal(err)
	}
	// Same cells + slot: cache hit, still one event.
	if _, err := e.Do(context.Background(), od(1.2, 1.2, 5.2, 5.2, 700)); err != nil {
		t.Fatal(err)
	}
	// Invalid input: the error must be captured too.
	if _, err := e.Do(context.Background(), od(1, 1, 5, 5, -10)); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("err = %v, want ErrInvalidInput", err)
	}

	evs := fl.all()
	if len(evs) != 3 {
		t.Fatalf("captured %d events, want 3", len(evs))
	}
	worker, hit, bad := evs[0], evs[1], evs[2]
	if worker.Seconds != 42 || worker.Cached || worker.SnapshotID != "m1" ||
		worker.Generation == 0 || worker.Err != nil {
		t.Fatalf("worker event = %+v", worker)
	}
	if worker.Latency <= 0 {
		t.Fatalf("worker event latency = %v, want > 0", worker.Latency)
	}
	if !hit.Cached || hit.Seconds != 42 || hit.SnapshotID != "m1" {
		t.Fatalf("cache-hit event = %+v", hit)
	}
	if !errors.Is(bad.Err, ErrInvalidInput) || bad.Seconds != 0 {
		t.Fatalf("invalid-input event = %+v", bad)
	}
	if bad.OD.DepartSec != -10 {
		t.Fatalf("invalid-input event OD = %+v, want the raw request", bad.OD)
	}
}

// TestFlightCapturesShed: a queue-full shed leaves a wide event carrying
// ErrOverloaded — errors and shed requests are the events replay analysis
// needs at 100% capture, so the engine must emit them all.
func TestFlightCapturesShed(t *testing.T) {
	fl := &stubFlight{}
	block := make(chan struct{})
	blockOnce := sync.OnceFunc(func() { close(block) })
	t.Cleanup(blockOnce)
	slow := &Snapshot{ID: "slow", Estimate: func(context.Context, *traj.MatchedOD) float64 {
		<-block
		return 1
	}}
	cfg := testConfig(t, slow)
	cfg.Flight = fl
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.MaxBatch = 1
	cfg.CacheEntries = 0
	e := newTestEngine(t, cfg)

	// One request occupies the single worker; pile on until some shed.
	var wg sync.WaitGroup
	shed := atomic.Int64{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Do(context.Background(), od(1, 1, 5, 5, float64(600+i))); errors.Is(err, ErrOverloaded) {
				shed.Add(1)
			}
		}(i)
	}
	for shed.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	blockOnce()
	wg.Wait()

	var shedEvents int
	for _, ev := range fl.all() {
		if errors.Is(ev.Err, ErrOverloaded) {
			shedEvents++
		}
	}
	if int64(shedEvents) != shed.Load() {
		t.Fatalf("captured %d shed events, want %d", shedEvents, shed.Load())
	}
}

// TestFlightDisabledOverhead gates the cost wide-event capture adds to the
// serve path when it is turned off: flightCapture with a nil recorder must
// stay a nanosecond-scale nil check. The bound leaves slack for noisy CI
// machines; what it catches is an accidental allocation, event build or
// interface call sneaking onto the disabled path.
func TestFlightDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate, skipped under the race detector")
	}
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	in := od(1, 1, 5, 5, 600)
	start := time.Now()
	var sink atomic.Int64

	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		r := testing.Benchmark(func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				e.flightCapture(context.Background(), in, start, Result{}, serveDetail{}, nil)
				n++
			}
			sink.Store(int64(n))
		})
		if d := time.Duration(r.NsPerOp()); d < best {
			best = d
		}
	}
	const bound = 100 * time.Nanosecond
	if best > bound {
		t.Fatalf("disabled flight-recorder overhead = %v per estimate, want <= %v", best, bound)
	}
	t.Logf("disabled flight-recorder overhead: %v per estimate", best)
}
