package infer

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestSLORequestAccountingOverhead gates the per-request cost the SLO
// layer adds to the serve path. The whole burn-rate pipeline is
// snapshot-driven — evaluation happens on the evaluator's goroutine, never
// on a request — so the only per-request addition is the
// tte_infer_requests_total increment in Engine.Do (the shed-rate SLO's
// denominator). That increment must stay a single uncontended atomic add;
// the bound catches a lock, map lookup or allocation sneaking in.
func TestSLORequestAccountingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate, skipped under the race detector")
	}
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	var sink atomic.Uint64

	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.requests.Inc()
			}
			sink.Store(e.requests.Value())
		})
		if d := time.Duration(r.NsPerOp()); d < best {
			best = d
		}
	}
	const bound = 100 * time.Nanosecond
	if best > bound {
		t.Fatalf("SLO request accounting = %v per request, want <= %v", best, bound)
	}
	t.Logf("SLO request accounting: %v per request", best)
}
