package infer

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"deepod/internal/obs"
)

// cacheKey identifies one estimate in the cache: the origin and destination
// quantized onto the road network's spatial grid plus the departure time
// quantized onto the model's time slots. Two requests that land in the same
// cells and slot are close enough (within one grid cell and one Δt) that
// DeepOD's OD encoder sees near-identical inputs, so the cached estimate is
// a faithful answer for both. epoch is the traffic epoch the estimate was
// computed under (always 0 without a traffic source): when live conditions
// shift enough to bump the epoch, every earlier entry silently misses, so
// hot cells never serve pre-shift ETAs.
type cacheKey struct {
	originCell int
	destCell   int
	slot       int
	epoch      uint64
}

// hash mixes the key fields with an FNV-1a-style fold; used only to pick a
// shard, so quality requirements are modest.
func (k cacheKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [4]int{k.originCell, k.destCell, k.slot, int(k.epoch)} {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	return h
}

// cacheEntry is one cached estimate. gen records which model snapshot
// produced it: entries from a superseded snapshot are treated as misses and
// dropped, so a hot reload implicitly invalidates the whole cache without
// stalling traffic to sweep it.
type cacheEntry struct {
	key    cacheKey
	sec    float64
	gen    uint64
	expire time.Time
}

// cacheShard is one lock domain of the cache: a map for lookup plus an LRU
// list (front = most recently used) for eviction order.
type cacheShard struct {
	mu  sync.Mutex
	m   map[cacheKey]*list.Element
	lru list.List
}

// estimateCache is a sharded LRU+TTL cache of travel-time estimates.
// Sharding bounds lock contention under concurrent workers; each shard
// holds at most perShard entries.
type estimateCache struct {
	shards   []cacheShard
	perShard int
	ttl      time.Duration
	size     atomic.Int64

	entriesGauge *obs.Gauge
	hitTotal     *obs.Counter
	missTotal    *obs.Counter
	evictLRU     *obs.Counter
	evictTTL     *obs.Counter
	evictStale   *obs.Counter
}

// newEstimateCache sizes the cache for capacity total entries across
// shards (shards is rounded up to a power of two).
func newEstimateCache(capacity, shards int, ttl time.Duration, reg *obs.Registry) *estimateCache {
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	shards = pow
	if capacity < shards {
		capacity = shards
	}
	c := &estimateCache{
		shards:   make([]cacheShard, shards),
		perShard: (capacity + shards - 1) / shards,
		ttl:      ttl,

		entriesGauge: reg.Gauge("tte_infer_cache_entries"),
		hitTotal:     reg.Counter("tte_infer_cache_events_total", "event", "hit"),
		missTotal:    reg.Counter("tte_infer_cache_events_total", "event", "miss"),
		evictLRU:     reg.Counter("tte_infer_cache_events_total", "event", "evict_lru"),
		evictTTL:     reg.Counter("tte_infer_cache_events_total", "event", "evict_ttl"),
		evictStale:   reg.Counter("tte_infer_cache_events_total", "event", "evict_stale"),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*list.Element, c.perShard)
	}
	return c
}

func (c *estimateCache) shard(k cacheKey) *cacheShard {
	return &c.shards[k.hash()&uint64(len(c.shards)-1)]
}

// get returns the cached estimate for k if it exists, was produced by model
// generation gen, and has not passed its TTL. Entries failing the gen or
// TTL check are removed on the spot (counted as evict_stale / evict_ttl)
// and reported as misses.
func (c *estimateCache) get(k cacheKey, gen uint64, now time.Time) (float64, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.missTotal.Inc()
		return 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.remove(s, el)
		s.mu.Unlock()
		c.evictStale.Inc()
		c.missTotal.Inc()
		return 0, false
	}
	if now.After(e.expire) {
		c.remove(s, el)
		s.mu.Unlock()
		c.evictTTL.Inc()
		c.missTotal.Inc()
		return 0, false
	}
	s.lru.MoveToFront(el)
	sec := e.sec
	s.mu.Unlock()
	c.hitTotal.Inc()
	return sec, true
}

// put stores an estimate produced by model generation gen, evicting the
// least recently used entry of the shard when it is full.
func (c *estimateCache) put(k cacheKey, sec float64, gen uint64, now time.Time) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		e := el.Value.(*cacheEntry)
		e.sec, e.gen, e.expire = sec, gen, now.Add(c.ttl)
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	el := s.lru.PushFront(&cacheEntry{key: k, sec: sec, gen: gen, expire: now.Add(c.ttl)})
	s.m[k] = el
	c.size.Add(1)
	var evicted bool
	if s.lru.Len() > c.perShard {
		c.remove(s, s.lru.Back())
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictLRU.Inc()
	}
	c.entriesGauge.Set(float64(c.size.Load()))
}

// remove unlinks el from its shard. The shard lock must be held.
func (c *estimateCache) remove(s *cacheShard, el *list.Element) {
	e := el.Value.(*cacheEntry)
	delete(s.m, e.key)
	s.lru.Remove(el)
	c.size.Add(-1)
	c.entriesGauge.Set(float64(c.size.Load()))
}

// len returns the total number of live entries (including any not yet
// expired-on-read); for tests and the entries gauge.
func (c *estimateCache) len() int { return int(c.size.Load()) }
