package infer

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/geo"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// gridQuantizer is a stub Quantizer: unit cells on integer coordinates.
type gridQuantizer struct{}

func (gridQuantizer) CellIndex(p geo.Point) int {
	return int(math.Floor(p.X)) + 1000*int(math.Floor(p.Y))
}

// constSnapshot answers every request with sec.
func constSnapshot(id string, sec float64) *Snapshot {
	return &Snapshot{
		ID:       id,
		Estimate: func(context.Context, *traj.MatchedOD) float64 { return sec },
	}
}

// okMatch matches everything, carrying the departure through.
func okMatch(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
	return traj.MatchedOD{DepartSec: od.DepartSec}, nil
}

func testConfig(t *testing.T, snap *Snapshot) Config {
	t.Helper()
	return Config{
		Match:        okMatch,
		Snapshot:     snap,
		Workers:      2,
		QueueDepth:   64,
		MaxBatch:     8,
		QueueTimeout: 2 * time.Second,
		CacheEntries: 256,
		CacheTTL:     time.Minute,
		Cells:        gridQuantizer{},
		Slotter:      timeslot.MustNew(5 * time.Minute),
		Registry:     obs.NewRegistry(),
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func od(x1, y1, x2, y2, depart float64) traj.ODInput {
	return traj.ODInput{
		Origin:    geo.Point{X: x1, Y: y1},
		Dest:      geo.Point{X: x2, Y: y2},
		DepartSec: depart,
	}
}

func TestDoAnswersAndCaches(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	r1, err := e.Do(context.Background(), od(1, 1, 5, 5, 600))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seconds != 42 || r1.Cached || r1.SnapshotID != "m1" {
		t.Fatalf("first result = %+v", r1)
	}
	r2, err := e.Do(context.Background(), od(1.2, 1.2, 5.2, 5.2, 700))
	if err != nil {
		t.Fatal(err)
	}
	// Same cells, same 5-minute slot → must be a cache hit.
	if !r2.Cached || r2.Seconds != 42 {
		t.Fatalf("second result = %+v, want cached 42", r2)
	}
	// Different slot → miss.
	r3, err := e.Do(context.Background(), od(1, 1, 5, 5, 600+3600))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatalf("different slot served from cache: %+v", r3)
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.CacheMiss != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestInvalidInputRejected(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 1)))
	cases := []traj.ODInput{
		od(math.NaN(), 1, 5, 5, 600),
		od(1, 1, math.Inf(1), 5, 600),
		od(1, 1, 5, 5, math.NaN()),
		od(1, 1, 5, 5, -10),
	}
	for i, bad := range cases {
		if _, err := e.Do(context.Background(), bad); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("case %d: err = %v, want ErrInvalidInput", i, err)
		}
	}
}

func TestMatchFailureIsMatchError(t *testing.T) {
	cfg := testConfig(t, constSnapshot("m1", 1))
	sentinel := errors.New("no segment")
	cfg.Match = func(context.Context, traj.ODInput) (traj.MatchedOD, error) { return traj.MatchedOD{}, sentinel }
	e := newTestEngine(t, cfg)
	_, err := e.Do(context.Background(), od(1, 1, 5, 5, 0))
	var matchErr *MatchError
	if !errors.As(err, &matchErr) || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want *MatchError wrapping sentinel", err)
	}
}

// blockingEngine builds a 1-worker engine whose estimates signal started
// and then park on gate, so tests can hold the worker busy and fill the
// queue deterministically.
func blockingEngine(t *testing.T, queueDepth int, timeout time.Duration) (e *Engine, gate, started chan struct{}) {
	gate = make(chan struct{})
	started = make(chan struct{}, 16)
	snap := &Snapshot{
		ID: "blocking",
		Estimate: func(context.Context, *traj.MatchedOD) float64 {
			started <- struct{}{}
			<-gate
			return 7
		},
	}
	cfg := Config{
		Match:        okMatch,
		Snapshot:     snap,
		Workers:      1,
		QueueDepth:   queueDepth,
		MaxBatch:     1,
		QueueTimeout: timeout,
		Registry:     obs.NewRegistry(),
	}
	var err error
	e, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(gate)
		e.Close()
	})
	return e, gate, started
}

func TestQueueFullSheds(t *testing.T) {
	e, gate, started := blockingEngine(t, 1, 5*time.Second)
	// Occupy the single worker.
	first := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), od(1, 1, 2, 2, 0))
		first <- err
	}()
	<-started // the worker is now parked inside Estimate
	// Fill the queue slot.
	second := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), od(2, 2, 3, 3, 0))
		second <- err
	}()
	waitFor(t, func() bool { return len(e.queue) == 1 })
	// Queue is full: this one must shed immediately.
	start := time.Now()
	_, err := e.Do(context.Background(), od(3, 3, 4, 4, 0))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v, want immediate", d)
	}
	if got := e.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	gate <- struct{}{} // release first
	gate <- struct{}{} // release second
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second request failed: %v", err)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	e, gate, started := blockingEngine(t, 4, 30*time.Millisecond)
	// Park the worker.
	parked := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), od(1, 1, 2, 2, 0))
		parked <- err
	}()
	<-started
	// This request sits in the queue past QueueTimeout.
	start := time.Now()
	_, err := e.Do(context.Background(), od(2, 2, 3, 3, 0))
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("timed-out request blocked %v", d)
	}
	gate <- struct{}{}
	if err := <-parked; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}

func TestContextCancelAbandons(t *testing.T) {
	e, gate, started := blockingEngine(t, 4, 5*time.Second)
	parked := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), od(1, 1, 2, 2, 0))
		parked <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, od(2, 2, 3, 3, 0))
		done <- err
	}()
	waitFor(t, func() bool { return len(e.queue) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	gate <- struct{}{}
	if err := <-parked; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	cfg := testConfig(t, constSnapshot("m1", 1))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Do(context.Background(), od(1, 1, 2, 2, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestSwapServesNewModelAndInvalidatesCache(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("old", 100)))
	in := od(1, 1, 5, 5, 600)

	r, err := e.Do(context.Background(), in)
	if err != nil || r.Seconds != 100 {
		t.Fatalf("pre-swap result = %+v, err %v", r, err)
	}
	// Warm the cache, verify the hit.
	r, err = e.Do(context.Background(), in)
	if err != nil || !r.Cached || r.Seconds != 100 {
		t.Fatalf("expected warm cache hit of 100, got %+v, err %v", r, err)
	}

	prev, err := e.Swap(constSnapshot("new", 200))
	if err != nil {
		t.Fatal(err)
	}
	if prev.ID != "old" {
		t.Fatalf("Swap returned previous %q, want old", prev.ID)
	}

	// The cached 100 must never be served again: generation changed.
	r, err = e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached || r.Seconds != 200 || r.SnapshotID != "new" {
		t.Fatalf("post-swap result = %+v, want fresh 200 from new", r)
	}
	// And the re-cached value is the new model's.
	r, err = e.Do(context.Background(), in)
	if err != nil || !r.Cached || r.Seconds != 200 {
		t.Fatalf("post-swap cache = %+v, err %v, want cached 200", r, err)
	}
	if st := e.Stats(); st.Reloads != 1 {
		t.Fatalf("reload counter = %d, want 1", st.Reloads)
	}
}

// TestReloadUnderLoadZeroFailures drives concurrent traffic through the
// engine while snapshots are swapped mid-flight, asserting the ISSUE's
// acceptance bar: every request succeeds and answers with one of the two
// models' values — a swap never drops or corrupts an in-flight request.
// The clients run for as long as the swapper does, so every swap lands
// under live load.
func TestReloadUnderLoadZeroFailures(t *testing.T) {
	cfg := testConfig(t, constSnapshot("A", 100))
	cfg.Workers = 4
	cfg.QueueDepth = 4096
	cfg.QueueTimeout = 10 * time.Second
	e := newTestEngine(t, cfg)

	const clients = 8
	const swaps = 20
	var wrong, failed, total atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// Spread ODs so caching doesn't absorb all traffic.
				in := od(float64(c), float64(i%50), float64(c+3), float64((i+7)%50), float64(600+i))
				r, err := e.Do(context.Background(), in)
				total.Add(1)
				if err != nil {
					failed.Add(1)
					continue
				}
				if r.Seconds != 100 && r.Seconds != 200 {
					wrong.Add(1)
				}
			}
		}(c)
	}

	// Alternate A↔B under load, ending on B.
	for i := 1; i <= swaps; i++ {
		time.Sleep(time.Millisecond)
		id, val := "A", 100.0
		if i%2 == 0 { // even iterations install B; the last (i=swaps) is even
			id, val = "B", 200.0
		}
		if _, err := e.Swap(constSnapshot(id, val)); err != nil {
			t.Fatalf("Swap %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during reloads, want 0", n, total.Load())
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d requests returned a value from neither model", n)
	}
	if total.Load() == 0 {
		t.Fatal("clients made no requests")
	}
	// The last installed snapshot must be what serves now — with a fresh
	// OD so the answer cannot come from any cache generation.
	r, err := e.Do(context.Background(), od(900, 900, 901, 901, 600))
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds != 200 || r.SnapshotID != "B" {
		t.Fatalf("post-load result = %+v, want 200 from B", r)
	}
}

// TestVersionReflectsSwap checks the /version plumbing: snapshot identity
// and reload count update across Swap.
func TestVersionReflectsSwap(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("v1", 1)))
	v := e.Version()
	if v["model"] != "v1" {
		t.Fatalf("version model = %v, want v1", v["model"])
	}
	if _, err := e.Swap(constSnapshot("v2", 2)); err != nil {
		t.Fatal(err)
	}
	v = e.Version()
	if v["model"] != "v2" {
		t.Fatalf("post-swap version model = %v, want v2", v["model"])
	}
	if v["reloads"] != uint64(1) {
		t.Fatalf("post-swap reloads = %v, want 1", v["reloads"])
	}
}

// waitFor polls cond for up to 2s; the engine's handoffs are all local
// channel sends, so this converges in microseconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition not reached within 2s")
}
