package infer

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/traj"
)

// stubTraffic is a controllable TrafficSource: External returns a bundle
// whose SpeedGrid[0] holds `speed`, and Epoch is settable.
type stubTraffic struct {
	epoch atomic.Uint64
	speed atomic.Uint64 // float64 bits
	calls atomic.Uint64
}

func (s *stubTraffic) Epoch() uint64 { return s.epoch.Load() }

func (s *stubTraffic) External(departSec float64) (*traj.ExternalFeatures, bool) {
	s.calls.Add(1)
	return &traj.ExternalFeatures{
		SpeedGrid: []float64{math.Float64frombits(s.speed.Load())},
		GridRows:  1, GridCols: 1,
	}, true
}

// TestTrafficExternalOverride: with a traffic source bound, the worker must
// hand the model the live features, not whatever the request carried.
func TestTrafficExternalOverride(t *testing.T) {
	src := &stubTraffic{}
	src.speed.Store(math.Float64bits(7))
	// The snapshot answers with the live speed it sees, proving the
	// override reached the model.
	snap := &Snapshot{ID: "live", Estimate: func(_ context.Context, m *traj.MatchedOD) float64 {
		if m.External == nil || len(m.External.SpeedGrid) == 0 {
			return -1
		}
		return m.External.SpeedGrid[0]
	}}
	cfg := testConfig(t, snap)
	cfg.CacheEntries = 0
	cfg.Traffic = src
	e := newTestEngine(t, cfg)

	in := od(1, 1, 5, 5, 600)
	in.External = &traj.ExternalFeatures{SpeedGrid: []float64{999}, GridRows: 1, GridCols: 1}
	r, err := e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds != 7 {
		t.Fatalf("estimate = %v, want the live feature value 7", r.Seconds)
	}
	if src.calls.Load() == 0 {
		t.Fatal("traffic source never consulted")
	}

	// The live view changes; the next uncached estimate must see it.
	src.speed.Store(math.Float64bits(3))
	r, err = e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds != 3 {
		t.Fatalf("estimate = %v after live shift, want 3", r.Seconds)
	}
}

// TestTrafficEpochInvalidatesCache: cached estimates must stop being served
// the moment the traffic epoch bumps — without any model reload.
func TestTrafficEpochInvalidatesCache(t *testing.T) {
	src := &stubTraffic{}
	src.speed.Store(math.Float64bits(10))
	snap := &Snapshot{ID: "live", Estimate: func(_ context.Context, m *traj.MatchedOD) float64 {
		return m.External.SpeedGrid[0]
	}}
	cfg := testConfig(t, snap)
	cfg.Traffic = src
	e := newTestEngine(t, cfg)

	in := od(1, 1, 5, 5, 600)
	r1, err := e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Seconds != r1.Seconds {
		t.Fatalf("second identical request not served from cache: %+v", r2)
	}

	// Conditions shift: epoch bump + new live speeds. Same OD, same slot —
	// but the cached pre-shift entry must not be served.
	src.epoch.Add(1)
	src.speed.Store(math.Float64bits(4))
	r3, err := e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("pre-shift estimate served from cache after an epoch bump")
	}
	if r3.Seconds != 4 {
		t.Fatalf("post-shift estimate = %v, want 4", r3.Seconds)
	}
	if e.Stats().Reloads != 0 {
		t.Fatal("epoch invalidation must not involve a reload")
	}

	// Within the new epoch the cache works again.
	r4, err := e.Do(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Cached || r4.Seconds != 4 {
		t.Fatalf("post-shift request not cached: %+v", r4)
	}
}

func TestTrafficVersionReporting(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	if v := e.Version(); v["traffic"] != "disabled" {
		t.Fatalf("traffic = %v without a source", v["traffic"])
	}
	src := &stubTraffic{}
	src.epoch.Store(5)
	cfg := testConfig(t, constSnapshot("m2", 42))
	cfg.Traffic = src
	e2 := newTestEngine(t, cfg)
	v := e2.Version()
	if v["traffic"] != "live" || v["traffic_epoch"] != uint64(5) {
		t.Fatalf("traffic version = %v / %v", v["traffic"], v["traffic_epoch"])
	}
}

// TestTrafficDisabledOverhead gates the cost the traffic channel adds to
// the serve path when it is not configured: the epoch lookup with a nil
// source must stay a nanosecond-scale nil check.
func TestTrafficDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate, skipped under the race detector")
	}
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	var sink atomic.Uint64

	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		r := testing.Benchmark(func(b *testing.B) {
			var n uint64
			for i := 0; i < b.N; i++ {
				n += e.trafficEpoch()
			}
			sink.Store(n)
		})
		if d := time.Duration(r.NsPerOp()); d < best {
			best = d
		}
	}
	const bound = 50 * time.Nanosecond
	if best > bound {
		t.Fatalf("disabled traffic overhead = %v per estimate, want <= %v", best, bound)
	}
	t.Logf("disabled traffic overhead: %v per estimate", best)
}
