package infer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/traj"
)

// stubRecorder records every stamp it hands out.
type stubRecorder struct {
	mu    sync.Mutex
	seq   int
	calls []recordedStamp
}

type recordedStamp struct {
	od         traj.ODInput
	seconds    float64
	snapshotID string
	generation uint64
}

func (r *stubRecorder) RecordPrediction(od traj.ODInput, seconds float64, snapshotID string, generation uint64) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.calls = append(r.calls, recordedStamp{od, seconds, snapshotID, generation})
	return fmt.Sprintf("p-%d", r.seq)
}

func TestPredictionStamping(t *testing.T) {
	rec := &stubRecorder{}
	cfg := testConfig(t, constSnapshot("m1", 42))
	cfg.Recorder = rec
	e := newTestEngine(t, cfg)

	r1, err := e.Do(context.Background(), od(1, 1, 5, 5, 600))
	if err != nil {
		t.Fatal(err)
	}
	if r1.PredictionID != "p-1" {
		t.Fatalf("worker-path result = %+v, want prediction p-1", r1)
	}
	// A cache hit is still a served prediction: it gets its own fresh ID.
	r2, err := e.Do(context.Background(), od(1.2, 1.2, 5.2, 5.2, 700))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.PredictionID != "p-2" {
		t.Fatalf("cache-hit result = %+v, want cached with prediction p-2", r2)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.calls) != 2 {
		t.Fatalf("recorder saw %d calls, want 2", len(rec.calls))
	}
	for i, c := range rec.calls {
		if c.seconds != 42 || c.snapshotID != "m1" || c.generation == 0 {
			t.Fatalf("call %d = %+v", i, c)
		}
	}
	if rec.calls[0].generation != rec.calls[1].generation {
		t.Fatalf("generations diverged without a swap: %+v", rec.calls)
	}
}

// After a hot reload the stamp carries the new snapshot and generation, so
// late feedback for pre-swap predictions still attributes to the old model.
func TestPredictionStampingAcrossSwap(t *testing.T) {
	rec := &stubRecorder{}
	cfg := testConfig(t, constSnapshot("m1", 42))
	cfg.CacheEntries = 0 // force the worker path both times
	cfg.Recorder = rec
	e := newTestEngine(t, cfg)

	if _, err := e.Do(context.Background(), od(1, 1, 5, 5, 600)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Swap(constSnapshot("m2", 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(context.Background(), od(1, 1, 5, 5, 600)); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.calls) != 2 {
		t.Fatalf("recorder saw %d calls, want 2", len(rec.calls))
	}
	before, after := rec.calls[0], rec.calls[1]
	if before.snapshotID != "m1" || after.snapshotID != "m2" {
		t.Fatalf("snapshots = %q, %q", before.snapshotID, after.snapshotID)
	}
	if after.generation != before.generation+1 {
		t.Fatalf("generations = %d, %d; want +1 across the swap", before.generation, after.generation)
	}
}

func TestNoRecorderMeansNoID(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	r, err := e.Do(context.Background(), od(1, 1, 5, 5, 600))
	if err != nil {
		t.Fatal(err)
	}
	if r.PredictionID != "" {
		t.Fatalf("prediction ID %q without a recorder", r.PredictionID)
	}
}

// TestPredictionStampDisabledOverhead gates the cost quality monitoring
// adds to the serve path when it is turned off: stamp with a nil recorder
// must stay a nanosecond-scale nil check. The bound leaves slack for noisy
// CI machines; what it catches is an accidental allocation, lock or
// interface call sneaking onto the disabled path.
func TestPredictionStampDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate, skipped under the race detector")
	}
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))
	inst := e.cur.Load()
	in := od(1, 1, 5, 5, 600)
	var sink atomic.Int64

	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		r := testing.Benchmark(func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				if id := e.stamp(in, 42, inst); id == "" {
					n++
				}
			}
			sink.Store(int64(n))
		})
		if d := time.Duration(r.NsPerOp()); d < best {
			best = d
		}
	}
	const bound = 50 * time.Nanosecond
	if best > bound {
		t.Fatalf("disabled stamp overhead = %v per estimate, want <= %v", best, bound)
	}
	t.Logf("disabled stamp overhead: %v per estimate", best)
}
