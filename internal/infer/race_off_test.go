//go:build !race

package infer

// raceEnabled reports whether the race detector is instrumenting this
// build; timing gates skip under it (its per-access instrumentation makes
// nanosecond bounds meaningless).
const raceEnabled = false
