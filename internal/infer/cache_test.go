package infer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"deepod/internal/obs"
)

var cacheEpoch = time.Unix(1700000000, 0)

func k(o, d, slot int) cacheKey { return cacheKey{originCell: o, destCell: d, slot: slot} }

// newTestCache builds a single-shard cache so eviction order is
// observable, with its own registry for counter assertions.
func newTestCache(capacity int, ttl time.Duration) (*estimateCache, *obs.Registry) {
	reg := obs.NewRegistry()
	return newEstimateCache(capacity, 1, ttl, reg), reg
}

func TestCacheHitAndMiss(t *testing.T) {
	c, _ := newTestCache(4, time.Minute)
	now := cacheEpoch
	if _, ok := c.get(k(1, 2, 3), 1, now); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(k(1, 2, 3), 42, 1, now)
	sec, ok := c.get(k(1, 2, 3), 1, now.Add(time.Second))
	if !ok || sec != 42 {
		t.Fatalf("get = %v, %v; want 42, true", sec, ok)
	}
	if c.hitTotal.Value() != 1 || c.missTotal.Value() != 1 {
		t.Fatalf("counters hit=%d miss=%d, want 1/1", c.hitTotal.Value(), c.missTotal.Value())
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c, _ := newTestCache(2, time.Minute)
	now := cacheEpoch
	c.put(k(1, 0, 0), 1, 1, now)
	c.put(k(2, 0, 0), 2, 1, now)
	// Touch k1 so k2 becomes the least recently used.
	if _, ok := c.get(k(1, 0, 0), 1, now); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.put(k(3, 0, 0), 3, 1, now)
	if _, ok := c.get(k(2, 0, 0), 1, now); ok {
		t.Fatal("k2 survived eviction; LRU order wrong")
	}
	if _, ok := c.get(k(1, 0, 0), 1, now); !ok {
		t.Fatal("k1 (recently used) was evicted")
	}
	if _, ok := c.get(k(3, 0, 0), 1, now); !ok {
		t.Fatal("k3 (just inserted) missing")
	}
	if c.evictLRU.Value() != 1 {
		t.Fatalf("evict_lru = %d, want 1", c.evictLRU.Value())
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestCacheTTLExpiry covers the satellite's "TTL expiry across a slot
// boundary": an entry keyed to one time slot must stop being served once
// its TTL passes, even though later requests in the *same* slot would
// still produce the same key.
func TestCacheTTLExpiry(t *testing.T) {
	ttl := 2 * time.Minute
	c, _ := newTestCache(4, ttl)
	now := cacheEpoch
	slotKey := k(1, 2, 7) // one fixed (origin, dest, slot) identity
	c.put(slotKey, 99, 1, now)
	if _, ok := c.get(slotKey, 1, now.Add(ttl-time.Second)); !ok {
		t.Fatal("entry expired before its TTL")
	}
	// Past the TTL — same slot key, but the estimate is now stale.
	if _, ok := c.get(slotKey, 1, now.Add(ttl+time.Second)); ok {
		t.Fatal("entry served after its TTL")
	}
	if c.evictTTL.Value() != 1 {
		t.Fatalf("evict_ttl = %d, want 1", c.evictTTL.Value())
	}
	if c.len() != 0 {
		t.Fatalf("expired entry still resident: len = %d", c.len())
	}
	// Re-inserting after expiry works and refreshes the deadline.
	c.put(slotKey, 100, 1, now.Add(ttl+2*time.Second))
	if sec, ok := c.get(slotKey, 1, now.Add(ttl+3*time.Second)); !ok || sec != 100 {
		t.Fatalf("re-inserted entry: %v, %v; want 100, true", sec, ok)
	}
}

func TestCacheStaleGenerationInvalidated(t *testing.T) {
	c, _ := newTestCache(4, time.Minute)
	now := cacheEpoch
	c.put(k(1, 2, 3), 111, 1, now)
	// Model reloaded: generation moved to 2. The old estimate must not
	// be served, and the entry is dropped on the spot.
	if _, ok := c.get(k(1, 2, 3), 2, now); ok {
		t.Fatal("stale-generation entry was served after reload")
	}
	if c.evictStale.Value() != 1 {
		t.Fatalf("evict_stale = %d, want 1", c.evictStale.Value())
	}
	if c.len() != 0 {
		t.Fatalf("stale entry still resident: len = %d", c.len())
	}
}

func TestCachePutUpdatesExisting(t *testing.T) {
	c, _ := newTestCache(2, time.Minute)
	now := cacheEpoch
	c.put(k(1, 0, 0), 1, 1, now)
	c.put(k(1, 0, 0), 5, 2, now)
	if c.len() != 1 {
		t.Fatalf("duplicate key grew the cache: len = %d", c.len())
	}
	if sec, ok := c.get(k(1, 0, 0), 2, now); !ok || sec != 5 {
		t.Fatalf("updated entry = %v, %v; want 5, true", sec, ok)
	}
}

func TestCacheSharding(t *testing.T) {
	reg := obs.NewRegistry()
	c := newEstimateCache(1024, 5, time.Minute, reg) // rounds up to 8 shards
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8 (next power of two)", len(c.shards))
	}
	now := cacheEpoch
	for i := 0; i < 64; i++ {
		c.put(k(i, i*7, i*13), float64(i), 1, now)
	}
	for i := 0; i < 64; i++ {
		if sec, ok := c.get(k(i, i*7, i*13), 1, now); !ok || sec != float64(i) {
			t.Fatalf("key %d: got %v, %v", i, sec, ok)
		}
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	reg := obs.NewRegistry()
	c := newEstimateCache(128, 8, time.Minute, reg)
	now := cacheEpoch
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := k(i%32, w, i%11)
				c.put(key, float64(i), uint64(1+i%2), now.Add(time.Duration(i)*time.Millisecond))
				c.get(key, uint64(1+(i+1)%2), now.Add(time.Duration(i)*time.Millisecond))
			}
		}(w)
	}
	wg.Wait()
	if c.len() < 0 || c.len() > 128+8 {
		t.Fatalf("cache size drifted out of bounds: %d", c.len())
	}
}

func TestCacheKeyHashSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[k(i, 2*i, 3*i).hash()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("hash collapsed: %d distinct hashes of 100 keys", len(seen))
	}
	if k(1, 2, 3).hash() == k(2, 1, 3).hash() {
		t.Fatal("origin/dest swap collides")
	}
	_ = fmt.Sprintf("%v", k(1, 2, 3)) // keys must be printable for debugging
}
