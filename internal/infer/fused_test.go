package infer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

import "deepod/internal/traj"

// TestFusedBatchServesDrainedBatches pins the worker's fused routing: when
// the snapshot provides EstimateBatch and a drain picks up more than one
// request, the whole batch must be answered by one fused call — and every
// answer must be what the per-request path would have produced. The first
// request is held inside the model until the queue fills, so a multi-request
// drain is guaranteed rather than timing-dependent.
func TestFusedBatchServesDrainedBatches(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	estimate := func(od *traj.MatchedOD) float64 { return od.DepartSec * 2 }
	var fusedCalls, fusedItems, singleCalls atomic.Int64
	snap := &Snapshot{
		ID: "fused",
		Estimate: func(_ context.Context, od *traj.MatchedOD) float64 {
			singleCalls.Add(1)
			<-gate
			return estimate(od)
		},
		EstimateBatch: func(_ context.Context, ods []traj.MatchedOD) []float64 {
			if len(ods) < 2 {
				t.Errorf("fused call with batch size %d; singles must use Estimate", len(ods))
			}
			fusedCalls.Add(1)
			fusedItems.Add(int64(len(ods)))
			out := make([]float64, len(ods))
			for i := range ods {
				out[i] = estimate(&ods[i])
			}
			return out
		},
	}
	cfg := testConfig(t, snap)
	cfg.Workers = 1
	cfg.MaxBatch = 16
	cfg.QueueDepth = 128
	e := newTestEngine(t, cfg)

	const n = 48
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct spatial cells and slots per request, so nothing is
			// answered from cache and every request reaches the model.
			depart := float64(600 + 3600*i)
			r, err := e.Do(context.Background(), od(float64(10*i), 1, 5, 5, depart))
			if err != nil {
				errs <- err
				return
			}
			if r.Seconds != depart*2 {
				errs <- fmt.Errorf("request %d: got %v, want %v", i, r.Seconds, depart*2)
			}
		}(i)
	}
	// Let the queue fill behind the gated first request, then release it.
	time.Sleep(100 * time.Millisecond)
	gateOnce.Do(func() { close(gate) })
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fusedCalls.Load() == 0 {
		t.Fatalf("no fused batches formed (singles=%d)", singleCalls.Load())
	}
	if got := fusedItems.Load() + singleCalls.Load(); got != n {
		t.Fatalf("answered %d requests across fused+single paths, want %d", got, n)
	}
}

// TestFusedNilFallsBack: a snapshot without EstimateBatch (stubs, old
// recordings) must serve every request per-sample regardless of batch size.
func TestFusedNilFallsBack(t *testing.T) {
	cfg := testConfig(t, constSnapshot("plain", 7))
	cfg.Workers = 1
	e := newTestEngine(t, cfg)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := e.Do(context.Background(), od(float64(10*i), 1, 5, 5, float64(600+3600*i)))
			if err != nil {
				t.Error(err)
				return
			}
			if r.Seconds != 7 {
				t.Errorf("request %d: got %v, want 7", i, r.Seconds)
			}
		}(i)
	}
	wg.Wait()
}
