package infer

import (
	"context"
	"errors"
	"testing"
)

// TestReadinessLifecycle walks the /readyz contract: ready while a
// snapshot serves, not ready after a failed reload until the next
// successful Swap, and never ready once closed.
func TestReadinessLifecycle(t *testing.T) {
	e := newTestEngine(t, testConfig(t, constSnapshot("m1", 42)))

	ready, detail := e.Readiness()
	if !ready {
		t.Fatalf("fresh engine not ready: %v", detail)
	}
	if detail["model"] != "m1" || detail["queue_capacity"] != 64 {
		t.Fatalf("ready detail = %v", detail)
	}
	if _, ok := detail["queue_len"].(int); !ok {
		t.Fatalf("ready detail missing queue_len: %v", detail)
	}

	e.RecordReloadFailure(nil) // nil errors are ignored
	if ready, _ := e.Readiness(); !ready {
		t.Fatal("nil reload failure flipped readiness")
	}

	e.RecordReloadFailure(errors.New("checkpoint is corrupt"))
	ready, detail = e.Readiness()
	if ready {
		t.Fatal("engine ready despite failed reload")
	}
	if detail["reason"] != "last reload failed" || detail["last_reload_error"] != "checkpoint is corrupt" {
		t.Fatalf("failed-reload detail = %v", detail)
	}
	// The engine still serves during the failed-reload state: readiness
	// gates new traffic routing, not in-flight correctness.
	if r, err := e.Do(context.Background(), od(1, 1, 2, 2, 600)); err != nil || r.Seconds != 42 {
		t.Fatalf("Do during failed-reload state = %+v, %v", r, err)
	}

	if _, err := e.Swap(constSnapshot("m2", 7)); err != nil {
		t.Fatal(err)
	}
	ready, detail = e.Readiness()
	if !ready || detail["model"] != "m2" {
		t.Fatalf("post-swap readiness = %v, %v", ready, detail)
	}

	e.Close()
	ready, detail = e.Readiness()
	if ready || detail["reason"] != "engine closed" {
		t.Fatalf("closed readiness = %v, %v", ready, detail)
	}
}
