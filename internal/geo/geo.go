// Package geo provides the planar geometry used by the road-network,
// map-matching and traffic substrates: points, segment projections, bounding
// boxes and uniform grids.
//
// Coordinates are in meters on a local planar frame (the synthetic cities
// are small enough that projection distortion is irrelevant, matching the
// paper's use of compact city extents: CRN is 8.2 km × 8.3 km).
package geo

import (
	"fmt"
	"math"
)

// Point is a planar position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance |p → q| (the paper's |·→·|).
func Dist(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Lerp linearly interpolates between p and q at fraction t ∈ [0,1].
func Lerp(p, q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// ProjectOnSegment projects p onto segment (a, b) and returns the closest
// point, the fraction t ∈ [0,1] along the segment, and the distance from p
// to that closest point.
func ProjectOnSegment(p, a, b Point) (closest Point, t, dist float64) {
	abx, aby := b.X-a.X, b.Y-a.Y
	len2 := abx*abx + aby*aby
	if len2 == 0 {
		return a, 0, Dist(p, a)
	}
	t = ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / len2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest = Point{X: a.X + t*abx, Y: a.Y + t*aby}
	return closest, t, Dist(p, closest)
}

// Rect is an axis-aligned bounding box.
type Rect struct {
	Min, Max Point
}

// Width and Height return the box extents in meters.
func (r Rect) Width() float64  { return r.Max.X - r.Min.X }
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside the box (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand grows the box to include p.
func (r *Rect) Expand(p Point) {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
}

// EmptyRect returns a box that Expand can grow from.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// Grid partitions a Rect into equal square cells of side CellSize. It backs
// both the spatial edge index used by map matching and the speed matrices of
// the paper's traffic-condition feature (§4.5: "split the whole area into
// different grids with the same size, e.g. 200m × 200m").
type Grid struct {
	Bounds   Rect
	CellSize float64
	Rows     int // number of cells along Y (latitude in the paper)
	Cols     int // number of cells along X (longitude in the paper)
}

// NewGrid builds a grid covering bounds with the given cell size; partial
// cells at the far edges are included (ceiling division, as in the paper's
// ⌈L/l⌉ grid dimensions).
func NewGrid(bounds Rect, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size must be positive, got %v", cellSize)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("geo: degenerate bounds %+v", bounds)
	}
	return &Grid{
		Bounds:   bounds,
		CellSize: cellSize,
		Rows:     int(math.Ceil(bounds.Height() / cellSize)),
		Cols:     int(math.Ceil(bounds.Width() / cellSize)),
	}, nil
}

// NumCells returns Rows*Cols.
func (g *Grid) NumCells() int { return g.Rows * g.Cols }

// Cell returns the (row, col) of the cell containing p, clamped to the grid.
func (g *Grid) Cell(p Point) (row, col int) {
	row = int((p.Y - g.Bounds.Min.Y) / g.CellSize)
	col = int((p.X - g.Bounds.Min.X) / g.CellSize)
	if row < 0 {
		row = 0
	} else if row >= g.Rows {
		row = g.Rows - 1
	}
	if col < 0 {
		col = 0
	} else if col >= g.Cols {
		col = g.Cols - 1
	}
	return row, col
}

// CellIndex returns the flattened cell index of p.
func (g *Grid) CellIndex(p Point) int {
	r, c := g.Cell(p)
	return r*g.Cols + c
}

// CellCenter returns the center point of cell (row, col).
func (g *Grid) CellCenter(row, col int) Point {
	return Point{
		X: g.Bounds.Min.X + (float64(col)+0.5)*g.CellSize,
		Y: g.Bounds.Min.Y + (float64(row)+0.5)*g.CellSize,
	}
}

// NeighborCells calls f for every cell within radius cells (Chebyshev) of
// the cell containing p, clipped to the grid.
func (g *Grid) NeighborCells(p Point, radius int, f func(row, col int)) {
	r0, c0 := g.Cell(p)
	for r := r0 - radius; r <= r0+radius; r++ {
		if r < 0 || r >= g.Rows {
			continue
		}
		for c := c0 - radius; c <= c0+radius; c++ {
			if c < 0 || c >= g.Cols {
				continue
			}
			f(r, c)
		}
	}
}
