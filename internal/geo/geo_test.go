package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := Dist(Point{1, 1}, Point{1, 1}); d != 0 {
		t.Fatalf("Dist same point = %v", d)
	}
}

func TestLerp(t *testing.T) {
	p := Lerp(Point{0, 0}, Point{10, 20}, 0.5)
	if p.X != 5 || p.Y != 10 {
		t.Fatalf("Lerp midpoint = %+v", p)
	}
	if q := Lerp(Point{1, 2}, Point{3, 4}, 0); q != (Point{1, 2}) {
		t.Fatalf("Lerp t=0 = %+v", q)
	}
	if q := Lerp(Point{1, 2}, Point{3, 4}, 1); q != (Point{3, 4}) {
		t.Fatalf("Lerp t=1 = %+v", q)
	}
}

func TestProjectOnSegment(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	// Point above the middle.
	c, frac, d := ProjectOnSegment(Point{5, 3}, a, b)
	if c.X != 5 || c.Y != 0 || frac != 0.5 || d != 3 {
		t.Fatalf("projection = %+v frac %v dist %v", c, frac, d)
	}
	// Point beyond the end clamps to t=1.
	c, frac, d = ProjectOnSegment(Point{20, 0}, a, b)
	if frac != 1 || c.X != 10 || d != 10 {
		t.Fatalf("clamped projection = %+v frac %v dist %v", c, frac, d)
	}
	// Degenerate segment.
	c, frac, d = ProjectOnSegment(Point{1, 1}, a, a)
	if frac != 0 || c != a || math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("degenerate projection = %+v frac %v dist %v", c, frac, d)
	}
}

// Property: the projection is never farther than either endpoint.
func TestProjectionOptimality(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Point{rng.Float64() * 100, rng.Float64() * 100}
		b := Point{rng.Float64() * 100, rng.Float64() * 100}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		_, _, d := ProjectOnSegment(p, a, b)
		return d <= Dist(p, a)+1e-9 && d <= Dist(p, b)+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := EmptyRect()
	r.Expand(Point{1, 2})
	r.Expand(Point{-3, 5})
	if r.Min.X != -3 || r.Min.Y != 2 || r.Max.X != 1 || r.Max.Y != 5 {
		t.Fatalf("expanded rect = %+v", r)
	}
	if r.Width() != 4 || r.Height() != 3 {
		t.Fatalf("width/height = %v/%v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 3}) || r.Contains(Point{2, 3}) {
		t.Fatal("Contains misbehaves")
	}
}

func TestGrid(t *testing.T) {
	g, err := NewGrid(Rect{Min: Point{0, 0}, Max: Point{1000, 500}}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 5 || g.Rows != 3 {
		t.Fatalf("grid dims %dx%d, want 3x5", g.Rows, g.Cols)
	}
	if g.NumCells() != 15 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	r, c := g.Cell(Point{450, 250})
	if r != 1 || c != 2 {
		t.Fatalf("Cell = (%d,%d), want (1,2)", r, c)
	}
	// Out-of-bounds points clamp.
	r, c = g.Cell(Point{-50, 10000})
	if r != 2 || c != 0 {
		t.Fatalf("clamped Cell = (%d,%d)", r, c)
	}
	if g.CellIndex(Point{450, 250}) != 1*5+2 {
		t.Fatalf("CellIndex = %d", g.CellIndex(Point{450, 250}))
	}
	ctr := g.CellCenter(1, 2)
	if ctr.X != 500 || ctr.Y != 300 {
		t.Fatalf("CellCenter = %+v", ctr)
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(Rect{Min: Point{0, 0}, Max: Point{10, 10}}, 0); err == nil {
		t.Fatal("zero cell size accepted")
	}
	if _, err := NewGrid(Rect{Min: Point{5, 5}, Max: Point{5, 5}}, 1); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
}

func TestNeighborCells(t *testing.T) {
	g, err := NewGrid(Rect{Min: Point{0, 0}, Max: Point{300, 300}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var visited int
	g.NeighborCells(Point{150, 150}, 1, func(r, c int) { visited++ })
	if visited != 9 {
		t.Fatalf("radius-1 neighborhood visited %d cells, want 9", visited)
	}
	visited = 0
	g.NeighborCells(Point{0, 0}, 1, func(r, c int) { visited++ })
	if visited != 4 {
		t.Fatalf("corner neighborhood visited %d cells, want 4", visited)
	}
}
