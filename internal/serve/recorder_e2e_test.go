package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/recorder"
	"deepod/internal/traj"
)

// TestRecorderE2E drives estimates through a server wired to a real engine
// with the flight recorder on, then reads the captures back through the
// mounted /debug/recorder routes — the full path an operator uses: serve a
// request, find its wide event, download the segment it persisted to.
func TestRecorderE2E(t *testing.T) {
	rec, err := recorder.New(recorder.Config{
		SampleRate: 1,
		Dir:        t.TempDir(),
		Meta:       map[string]string{"city": "test-city"},
		Registry:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)

	eng, err := infer.New(infer.Config{
		Snapshot: &infer.Snapshot{ID: "m1", Estimate: func(context.Context, *traj.MatchedOD) float64 { return 42 }},
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Workers:  1,
		Flight:   rec,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)

	s := newInferServer(t, eng.Do, func(c *Config) { c.Recorder = rec })
	h := s.Handler()

	if r := postEstimate(t, h, `{"origin":{"X":1,"Y":1},"dest":{"X":5,"Y":5},"depart_sec":600}`); r.Code != http.StatusOK {
		t.Fatalf("estimate = %d: %s", r.Code, r.Body)
	}
	// An invalid request the engine rejects must be captured too. The
	// server's validator catches negative departures before the engine, so
	// poison the input via matching instead: NaN passes JSON as a string?
	// No — drive the engine directly, as the serve validator owns that gate.
	if _, err := eng.Do(context.Background(), traj.ODInput{DepartSec: -1}); err == nil {
		t.Fatal("want engine rejection")
	}
	rec.Sync()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/recorder", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /debug/recorder = %d: %s", w.Code, w.Body)
	}
	var body struct {
		Count  int `json:"count"`
		Events []struct {
			Snapshot    string  `json:"snapshot"`
			EstimateSec float64 `json:"estimate_sec"`
			Err         string  `json:"err"`
		} `json:"events"`
		Segments []struct {
			Name string `json:"name"`
		} `json:"segments"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON %q: %v", w.Body, err)
	}
	if body.Count != 2 {
		t.Fatalf("captured %d events, want the estimate and the rejection", body.Count)
	}
	// Newest-first: the rejection leads.
	if body.Events[0].Err != "invalid_input" || body.Events[1].EstimateSec != 42 || body.Events[1].Snapshot != "m1" {
		t.Fatalf("events = %+v", body.Events)
	}
	if len(body.Segments) == 0 {
		t.Fatal("no segments listed")
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/recorder/segments/"+body.Segments[0].Name, nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"tte-flight/1"`) {
		t.Fatalf("segment download = %d: %s", w.Code, w.Body)
	}

	// Filters pass through the mount.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/recorder?errors=true", nil))
	var filtered struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &filtered); err != nil || filtered.Count != 1 {
		t.Fatalf("errors filter = %d (%v): %s", filtered.Count, err, w.Body)
	}
}
